(* The paper's core claim, as a runnable demo: sweep the offered load and
   watch head-of-line blocking destroy the tail of the size-unaware
   designs while size-aware sharding holds a flat p99.

   Run with: dune exec examples/size_aware_comparison.exe
*)

let loads = [ 1.0; 2.0; 3.0; 4.0; 5.0 ]

let () =
  let spec = Workload.Spec.default in
  let cfg = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  Printf.printf "default workload: 95:5 GET:PUT, pL=%.3f%%, sL=%dKB, zipf %.2f\n\n"
    spec.Workload.Spec.p_large
    (spec.Workload.Spec.s_large_max / 1000)
    spec.Workload.Spec.zipf_theta;
  let results =
    List.map
      (fun design ->
        (design, Minos.Experiment.sweep ~cfg design spec ~loads_mops:loads))
      Minos.Experiment.all_designs
  in
  (* p99 per design per load. *)
  Printf.printf "%-14s" "p99 (us)";
  List.iter (fun l -> Printf.printf "%10.1fM" l) loads;
  print_newline ();
  List.iter
    (fun (design, points) ->
      Printf.printf "%-14s" (Minos.Experiment.design_name design);
      List.iter
        (fun (_, m) ->
          if m.Kvserver.Metrics.stable then
            Printf.printf "%11.1f" m.Kvserver.Metrics.p99_us
          else Printf.printf "%11s" "sat")
        points;
      print_newline ())
    results;
  print_newline ();
  (* Where does each design stop meeting the strict SLO? *)
  let slo = 50.0 in
  List.iter
    (fun (design, points) ->
      let ok =
        List.filter
          (fun (_, m) ->
            m.Kvserver.Metrics.stable && m.Kvserver.Metrics.p99_us <= slo)
          points
      in
      let best = List.fold_left (fun acc (l, _) -> Float.max acc l) 0.0 ok in
      Printf.printf "%-8s sustains %.1f Mops within p99 <= %.0fus\n"
        (Minos.Experiment.design_name design)
        best slo)
    results
