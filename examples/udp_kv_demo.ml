(* End-to-end demo over a real kernel UDP socket on loopback.

   A server domain answers Minos wire-protocol requests against a real
   Kvstore.Store; the client (main domain) performs PUTs and GETs —
   including a 300 KB value that is fragmented into ~200 UDP datagrams and
   reassembled on both sides, exactly as §4.1 describes (minus DPDK).

   Run with: dune exec examples/udp_kv_demo.exe
*)

let port = 47_621
let server_addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* Loopback happily carries datagrams larger than the Ethernet MTU, but we
   fragment exactly as the DPDK path would. *)
let max_datagram = Netsim.Frame.max_udp_payload

let send_message sock dest ~msg_id payload =
  List.iter
    (fun frag -> ignore (Unix.sendto sock frag 0 (Bytes.length frag) [] dest))
    (Proto.Fragment.split ~msg_id payload)

let recv_message sock reassembler =
  let buf = Bytes.create (max_datagram + 64) in
  let rec loop () =
    let len, from = Unix.recvfrom sock buf 0 (Bytes.length buf) [] in
    match Proto.Fragment.offer reassembler (Bytes.sub buf 0 len) with
    | Some (_, msg) -> (msg, from)
    | None -> loop ()
  in
  loop ()

let server_loop sock store stop =
  let reassembler = Proto.Fragment.create_reassembler () in
  while not (Atomic.get stop) do
    match recv_message sock reassembler with
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> Thread.yield ()
    | msg, client -> (
        match Proto.Wire.decode_request msg with
        | Error _ -> () (* malformed datagrams are dropped, like any UDP server *)
        | Ok req ->
            let reply =
              match req.Proto.Wire.op with
              | Proto.Wire.Get -> (
                  match Kvstore.Store.get store req.Proto.Wire.key with
                  | Some value ->
                      { Proto.Wire.id = req.Proto.Wire.id; status = Proto.Wire.Ok;
                        value = Some value; client_ts = req.Proto.Wire.client_ts }
                  | None ->
                      { Proto.Wire.id = req.Proto.Wire.id; status = Proto.Wire.Not_found;
                        value = None; client_ts = req.Proto.Wire.client_ts })
              | Proto.Wire.Put ->
                  Kvstore.Store.put store ~guard:`Lock req.Proto.Wire.key
                    (Option.value ~default:Bytes.empty req.Proto.Wire.value);
                  { Proto.Wire.id = req.Proto.Wire.id; status = Proto.Wire.Ok;
                    value = None; client_ts = req.Proto.Wire.client_ts }
              | Proto.Wire.Delete ->
                  let existed = Kvstore.Store.delete store ~guard:`Lock req.Proto.Wire.key in
                  { Proto.Wire.id = req.Proto.Wire.id;
                    status = (if existed then Proto.Wire.Ok else Proto.Wire.Not_found);
                    value = None; client_ts = req.Proto.Wire.client_ts }
              | Proto.Wire.Scan ->
                  let count =
                    Option.value ~default:0
                      (Option.bind req.Proto.Wire.value Proto.Wire.decode_scan_count)
                  in
                  let visited =
                    Kvstore.Store.scan store ~start:req.Proto.Wire.key ~count
                      (fun _key _size -> ())
                  in
                  { Proto.Wire.id = req.Proto.Wire.id;
                    status = (if visited > 0 then Proto.Wire.Ok else Proto.Wire.Not_found);
                    value = None; client_ts = req.Proto.Wire.client_ts }
            in
            send_message sock client ~msg_id:req.Proto.Wire.id
              (Proto.Wire.encode_reply reply))
  done

let () =
  let store =
    Kvstore.Store.create ~partition_bits:3 ~bucket_bits:8
      ~value_arena_bytes:(16 * 1024 * 1024) ()
  in
  Kvstore.Store.ensure_ordered store;
  let server_sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind server_sock server_addr;
  (* Generous kernel buffers: a 300 KB value arrives as a burst of ~200
     datagrams. *)
  Unix.setsockopt_int server_sock Unix.SO_RCVBUF (4 * 1024 * 1024);
  let stop = Atomic.make false in
  let server = Domain.spawn (fun () -> server_loop server_sock store stop) in

  let client_sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt_int client_sock Unix.SO_RCVBUF (4 * 1024 * 1024);
  let reassembler = Proto.Fragment.create_reassembler () in
  let next_id = ref 0L in
  let rpc op key value =
    next_id := Int64.add !next_id 1L;
    let req =
      { Proto.Wire.id = !next_id; op; key; value; client_ts = 0L; target_rx = 0 }
    in
    send_message client_sock server_addr ~msg_id:!next_id (Proto.Wire.encode_request req);
    let msg, _ = recv_message client_sock reassembler in
    match Proto.Wire.decode_reply msg with
    | Ok reply -> reply
    | Error e -> Format.kasprintf failwith "bad reply: %a" Proto.Wire.pp_error e
  in

  (* Small PUT + GET. *)
  let r = rpc Proto.Wire.Put "greeting" (Some (Bytes.of_string "hello over UDP")) in
  assert (r.Proto.Wire.status = Proto.Wire.Ok);
  let r = rpc Proto.Wire.Get "greeting" None in
  Printf.printf "GET greeting -> %S\n"
    (Bytes.to_string (Option.value ~default:Bytes.empty r.Proto.Wire.value));

  (* Large PUT: fragmented into ~200 datagrams each way. *)
  let big = Bytes.init 300_000 (fun i -> Char.chr (i mod 256)) in
  let r = rpc Proto.Wire.Put "blob" (Some big) in
  assert (r.Proto.Wire.status = Proto.Wire.Ok);
  let r = rpc Proto.Wire.Get "blob" None in
  let got = Option.value ~default:Bytes.empty r.Proto.Wire.value in
  Printf.printf "GET blob     -> %d bytes, %s\n" (Bytes.length got)
    (if Bytes.equal got big then "intact after fragmentation/reassembly" else "CORRUPTED");

  (* Miss and delete. *)
  let r = rpc Proto.Wire.Get "missing" None in
  Printf.printf "GET missing  -> %s\n"
    (match r.Proto.Wire.status with
    | Proto.Wire.Not_found -> "Not_found"
    | Proto.Wire.Overloaded -> "Overloaded?"
    | Proto.Wire.Ok -> "Ok?");
  let r = rpc Proto.Wire.Delete "greeting" None in
  assert (r.Proto.Wire.status = Proto.Wire.Ok);

  (* An ordered SCAN over whatever keys remain (v2 wire opcode). *)
  let r = rpc Proto.Wire.Scan "a" (Some (Proto.Wire.encode_scan_count 8)) in
  Printf.printf "SCAN from 'a' -> %s\n"
    (match r.Proto.Wire.status with
    | Proto.Wire.Ok -> "Ok"
    | Proto.Wire.Not_found -> "Not_found"
    | Proto.Wire.Overloaded -> "Overloaded?");

  (* A small closed-loop latency measurement, like Figure 1's setup. *)
  let n = 2000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    ignore (rpc Proto.Wire.Get (if i mod 2 = 0 then "blob" else "missing") None)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%d closed-loop RPCs (half 300KB GETs): %.1f us mean round-trip\n" n
    (1.0e6 *. dt /. float_of_int n);

  Atomic.set stop true;
  (* Unblock the server's recvfrom with one last datagram. *)
  ignore
    (Unix.sendto client_sock (Bytes.create 1) 0 1 [] server_addr);
  Domain.join server;
  Unix.close client_sock;
  Unix.close server_sock;
  let stats = Kvstore.Store.stats store in
  Printf.printf "server store at shutdown: %d items\n" stats.Kvstore.Store.items
