(* Watch Minos' control loop in action (§6.6): the percentage of large
   requests steps up and back down; the controller re-derives the size
   threshold and re-allocates cores between the small and large pools
   every epoch, keeping the 99th percentile flat.

   Run with: dune exec examples/dynamic_adaptation.exe
*)

let () =
  (* Three phases: calm (pL = 0.125%), heavy (0.75%), calm again.  The
     paper uses 20-second phases; we scale to 300 ms each. *)
  let phase p = { Workload.Dynamic.duration_us = 300_000.0; p_large = p } in
  let schedule = Workload.Dynamic.create (List.map phase [ 0.125; 0.75; 0.125 ]) in
  let total = Workload.Dynamic.total_duration schedule in
  let cfg =
    {
      (Minos.Experiment.config_of_scale Minos.Experiment.quick_scale) with
      Kvserver.Config.duration_us = total;
      warmup_us = 0.0;
      epoch_us = 30_000.0;
      window_us = Some 50_000.0;
    }
  in
  let run design =
    Minos.Experiment.run ~cfg ~dynamic:schedule design Workload.Spec.default
      ~offered_mops:2.0
  in
  let minos = run Kvserver.Design.minos in
  let ws = run Kvserver.Design.hkh_ws in
  let cores_at t =
    List.fold_left
      (fun acc (ct, n) -> if ct <= t then n else acc)
      0 minos.Kvserver.Metrics.large_core_series
  in
  Printf.printf "pL steps 0.125%% -> 0.75%% -> 0.125%% every 300 ms (2.0 Mops)\n\n";
  Printf.printf "%8s  %12s  %12s  %s\n" "t (ms)" "Minos p99" "HKH+WS p99" "large cores";
  List.iter2
    (fun (t, p99_minos) (_, p99_ws) ->
      Printf.printf "%8.0f  %10.1fus  %10.1fus  %d\n" (t /. 1000.0) p99_minos p99_ws
        (cores_at t))
    minos.Kvserver.Metrics.p99_series ws.Kvserver.Metrics.p99_series;
  Printf.printf "\nfinal threshold: %.0f bytes; the controller tracked the p99 item size\n"
    minos.Kvserver.Metrics.final_threshold
