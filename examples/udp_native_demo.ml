(* The full native stack end-to-end over kernel UDP on loopback:

     client --UDP--> per-core sockets (RX queues) --> reader domains
            --> lock-free rings --> size-aware worker domains
            --> real KV store --> reply pump --UDP--> client

   with Wire-protocol encoding, UDP-level fragmentation for big values,
   client-side retransmission and server-side request-id deduplication.

   Run with: dune exec examples/udp_native_demo.exe
*)

let () =
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:10
      ~value_arena_bytes:(64 * 1024 * 1024) ()
  in
  let udp = Runtime.Udp.start ~base_port:47911 store in
  let client =
    Runtime.Udp.Client.connect ~base_port:47911 ~queues:(Runtime.Udp.queues udp) ()
  in

  (* A spread of item sizes across the tiny/small/large classes. *)
  let items =
    [ ("config:flag", 1); ("user:42", 120); ("session:9", 1_390);
      ("thumb:7", 24_000); ("asset:3", 150_000) ]
  in
  List.iter
    (fun (key, size) ->
      Runtime.Udp.Client.put client key (Bytes.init size (fun i -> Char.chr (i mod 256))))
    items;
  List.iter
    (fun (key, size) ->
      match Runtime.Udp.Client.get client key with
      | Some v when Bytes.length v = size -> Printf.printf "GET %-12s -> %6d B ok\n" key size
      | Some v -> Printf.printf "GET %-12s -> WRONG SIZE %d\n" key (Bytes.length v)
      | None -> Printf.printf "GET %-12s -> MISSING\n" key)
    items;
  ignore (Runtime.Udp.Client.delete client "config:flag");
  Printf.printf "after DELETE: config:flag -> %s\n"
    (match Runtime.Udp.Client.get client "config:flag" with
    | None -> "Not_found (correct)"
    | Some _ -> "still there?!");

  (* A quick closed-loop burst to exercise the scheduler. *)
  let t0 = Unix.gettimeofday () in
  let n = 3000 in
  for i = 1 to n do
    ignore (Runtime.Udp.Client.get client (fst (List.nth items (1 + (i mod 4)))))
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%d GETs in %.2fs (%.0f rps, mixed sizes incl. 150KB)\n" n dt
    (float_of_int n /. dt);

  let stats = Runtime.Server.stats (Runtime.Udp.server udp) in
  Printf.printf
    "server: %d served, %d handoffs, threshold %.0f B, %d small / %d large cores\n"
    (Array.fold_left ( + ) 0 stats.Runtime.Server.served)
    stats.Runtime.Server.handoffs stats.Runtime.Server.threshold
    stats.Runtime.Server.n_small stats.Runtime.Server.n_large;
  Runtime.Udp.Client.close client;
  Runtime.Udp.stop udp
