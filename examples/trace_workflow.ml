(* The §6.2 production workflow, end to end:

   1. capture a trace of the live workload;
   2. analyze it offline (the static size threshold = p99 of item sizes);
   3. run Minos with the static threshold (no per-request profiling) and
      compare against the fully adaptive control loop;
   4. replay the trace itself through the simulator (trace-driven runs).

   Run with: dune exec examples/trace_workflow.exe
*)

let () =
  let spec = Workload.Spec.default in
  let dataset = Minos.Experiment.dataset_for spec in
  let gen = Workload.Generator.create ~seed:2025 dataset in

  (* 1. capture + persist *)
  let trace = Workload.Trace.capture gen ~n:500_000 in
  let path = Filename.temp_file "minos_trace" ".bin" in
  Workload.Trace.save path trace;
  Printf.printf "captured %d requests -> %s (%d bytes)\n"
    (Workload.Trace.length trace) path
    (let st = open_in_bin path in
     let n = in_channel_length st in
     close_in st;
     n);

  (* 2. offline analysis *)
  let threshold = Workload.Trace.size_percentile trace 0.99 in
  Printf.printf "offline analysis: %.3f%% large requests, mean item %.0f B\n"
    (Workload.Trace.percent_large trace)
    (Workload.Trace.mean_item_size trace);
  Printf.printf "static threshold = p99 of item sizes = %.0f B\n\n" threshold;

  (* 3. adaptive vs static at a demanding load *)
  let scale = Minos.Experiment.quick_scale in
  let base = Minos.Experiment.config_of_scale scale in
  let show label cfg =
    let m = Minos.Experiment.run ~cfg Kvserver.Design.minos spec ~offered_mops:5.0 in
    Printf.printf "%-22s p50=%5.1fus p99=%6.1fus tput=%.2fM threshold=%.0fB\n" label
      m.Kvserver.Metrics.p50_us m.Kvserver.Metrics.p99_us
      m.Kvserver.Metrics.throughput_mops m.Kvserver.Metrics.final_threshold
  in
  show "adaptive control loop" base;
  show "static threshold"
    { base with Kvserver.Config.static_threshold = Some threshold };

  (* 4. trace-driven replay (same requests, not resampled) *)
  let m =
    Minos.Experiment.run_trace ~cfg:base Kvserver.Design.minos
      (Workload.Trace.load path) ~spec ~offered_mops:5.0
  in
  Printf.printf "%-22s p50=%5.1fus p99=%6.1fus tput=%.2fM threshold=%.0fB\n"
    "trace-driven replay" m.Kvserver.Metrics.p50_us m.Kvserver.Metrics.p99_us
    m.Kvserver.Metrics.throughput_mops m.Kvserver.Metrics.final_threshold;
  Sys.remove path
