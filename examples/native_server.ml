(* The native multicore Minos: size-aware sharding running on real OCaml 5
   domains against the real KV store, compared with keyhash mode.

   On a machine with >= 5 hardware threads the latency gap mirrors the
   paper; on smaller machines the domains time-slice, so focus on the
   functional picture: the control loop converging on the threshold, cores
   splitting into pools, and large requests flowing through handoffs.

   Run with: dune exec examples/native_server.exe
*)

let spec =
  {
    Workload.Spec.default with
    Workload.Spec.n_keys = 5_000;
    n_large_keys = 50;
    s_large_max = 64_000;
    p_large = 1.0 (* denser large traffic so a short demo shows handoffs *);
  }

let requests = 40_000

let run_mode mode =
  let dataset = Workload.Dataset.create spec in
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:9
      ~value_arena_bytes:(128 * 1024 * 1024) ()
  in
  Runtime.Loadgen.populate store dataset;
  let config = { Runtime.Server.default_config with Runtime.Server.mode } in
  let server = Runtime.Server.start ~config store in
  let t0 = Unix.gettimeofday () in
  let result = Runtime.Loadgen.run ~server ~dataset ~requests ~seed:17 () in
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Runtime.Server.stats server in
  Runtime.Server.stop server;
  (result, stats, elapsed)

let () =
  Printf.printf "native runtime: %d requests, %d worker domains, pL=%.1f%%\n\n" requests
    Runtime.Server.default_config.Runtime.Server.cores spec.Workload.Spec.p_large;
  List.iter
    (fun (label, mode) ->
      let result, stats, elapsed = run_mode mode in
      let qs =
        Stats.Quantile.many_of_vec result.Runtime.Loadgen.latencies [ 0.5; 0.99 ]
      in
      Printf.printf "%s:\n" label;
      Printf.printf "  completed %d ops in %.2fs (%.0f kops/s), p50=%.0fus p99=%.0fus\n"
        result.Runtime.Loadgen.completed elapsed
        (float_of_int result.Runtime.Loadgen.completed /. elapsed /. 1000.0)
        (List.nth qs 0) (List.nth qs 1);
      Printf.printf "  per-core serves: %s\n"
        (String.concat " "
           (Array.to_list (Array.map string_of_int stats.Runtime.Server.served)));
      (match mode with
      | Runtime.Server.Size_aware ->
          Printf.printf
            "  control loop: %d epochs, threshold=%.0fB, %d small + %d large cores, %d handoffs\n"
            stats.Runtime.Server.epochs stats.Runtime.Server.threshold
            stats.Runtime.Server.n_small stats.Runtime.Server.n_large
            stats.Runtime.Server.handoffs
      | Runtime.Server.Keyhash -> ());
      print_newline ())
    [ ("size-aware (Minos)", Runtime.Server.Size_aware);
      ("keyhash (HKH baseline)", Runtime.Server.Keyhash) ]
