(* Quickstart: the two front doors of the library.

   1. The embedded key-value store (Kvstore): a MICA-style hash store with
      optimistic reads and slab-allocated values.
   2. The evaluation harness (Minos.Experiment): simulate a size-aware
      server design on a paper workload and read off tail latencies.

   Run with: dune exec examples/quickstart.exe
*)

let () =
  (* --- 1. The key-value store ------------------------------------- *)
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:10
      ~value_arena_bytes:(16 * 1024 * 1024) ()
  in
  Kvstore.Store.put store ~guard:`Lock "user:42" (Bytes.of_string "Ada Lovelace");
  Kvstore.Store.put store ~guard:`Lock "user:43" (Bytes.of_string "Alan Turing");
  (match Kvstore.Store.get store "user:42" with
  | Some v -> Printf.printf "GET user:42 -> %s\n" (Bytes.to_string v)
  | None -> print_endline "GET user:42 -> (not found)");
  Printf.printf "size_of user:43 -> %d bytes\n"
    (Option.value ~default:0 (Kvstore.Store.size_of store "user:43"));
  ignore (Kvstore.Store.delete store ~guard:`Lock "user:43");
  let stats = Kvstore.Store.stats store in
  Printf.printf "store: %d items, %d value bytes, %d partitions\n\n"
    stats.Kvstore.Store.items stats.Kvstore.Store.value_bytes
    stats.Kvstore.Store.partitions;

  (* --- 2. One simulated experiment -------------------------------- *)
  (* The paper's default workload: 95:5 GET:PUT, zipf 0.99, 0.125% of
     requests touch large (up to 500 KB) items. *)
  let spec = Workload.Spec.default in
  let cfg = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  print_endline "simulating 3.0 Mops on an 8-core server, all four designs:";
  List.iter
    (fun design ->
      let m = Minos.Experiment.run ~cfg design spec ~offered_mops:3.0 in
      Printf.printf "  %-8s p50=%5.1fus  p99=%6.1fus  p999=%7.1fus  nic=%2.0f%%\n"
        m.Kvserver.Metrics.design m.Kvserver.Metrics.p50_us m.Kvserver.Metrics.p99_us
        m.Kvserver.Metrics.p999_us
        (100.0 *. m.Kvserver.Metrics.nic_tx_utilization))
    Minos.Experiment.all_designs;
  print_endline "\nnote how size-aware sharding (Minos) keeps the 99th percentile";
  print_endline "an order of magnitude below keyhash sharding (HKH) at equal load."
