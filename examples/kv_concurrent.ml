(* Concurrent use of the KV substrate with real OCaml domains.

   Demonstrates the paper's §4.2 concurrency scheme working for real:
   - CREW: each domain is the master of a partition set and writes its own
     keys without locks;
   - cross-partition writers take the partition spinlock;
   - readers use the optimistic bucket-epoch protocol and never observe a
     torn value;
   - a lock-free ring hands off work between domains, like the DPDK rings
     that carry large requests from small to large cores.

   Run with: dune exec examples/kv_concurrent.exe
*)

let n_keys = 64
let updates_per_writer = 20_000

let key i = Printf.sprintf "item-%03d" i

(* Values encode (key index, version) so readers can validate them. *)
let value i version = Bytes.of_string (Printf.sprintf "%d:%d" i version)

let parse_value b =
  let s = Bytes.to_string b in
  match String.index_opt s ':' with
  | Some colon ->
      Some
        ( int_of_string (String.sub s 0 colon),
          int_of_string (String.sub s (colon + 1) (String.length s - colon - 1)) )
  | None -> None

let () =
  let store =
    Kvstore.Store.create ~partition_bits:3 ~bucket_bits:6
      ~value_arena_bytes:(8 * 1024 * 1024) ()
  in
  for i = 0 to n_keys - 1 do
    Kvstore.Store.put store ~guard:`Lock (key i) (value i 0)
  done;

  (* A lock-free ring carries "handoff" messages between the writer and a
     consumer domain, as the small->large core dispatch does in Minos. *)
  let ring : int Netsim.Ring.t = Netsim.Ring.create ~capacity:256 in
  let handoffs_done = Atomic.make 0 in
  let stop = Atomic.make false in
  let torn_reads = Atomic.make 0 in

  let writer id =
    Domain.spawn (fun () ->
        let rng = Dsim.Rng.create (1000 + id) in
        for version = 1 to updates_per_writer do
          let i = Dsim.Rng.int rng n_keys in
          (* Writers share the key space, so all writes take the lock (the
             CREW fast path is exercised by the store test suite). *)
          Kvstore.Store.put store ~guard:`Lock (key i) (value i version);
          if version mod 64 = 0 then
            (* Hand a marker to the consumer, spinning while full. *)
            while not (Netsim.Ring.try_push ring i) do
              Domain.cpu_relax ()
            done
        done)
  in
  let reader =
    Domain.spawn (fun () ->
        let rng = Dsim.Rng.create 7 in
        let reads = ref 0 in
        while not (Atomic.get stop) do
          let i = Dsim.Rng.int rng n_keys in
          (match Kvstore.Store.get store (key i) with
          | Some v -> (
              incr reads;
              match parse_value v with
              | Some (j, _) when j = i -> ()
              | Some _ | None -> Atomic.incr torn_reads)
          | None -> Atomic.incr torn_reads)
        done;
        !reads)
  in
  let consumer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) || not (Netsim.Ring.is_empty ring) do
          match Netsim.Ring.try_pop ring with
          | Some _ -> Atomic.incr handoffs_done
          | None -> Domain.cpu_relax ()
        done)
  in
  let w1 = writer 1 and w2 = writer 2 in
  Domain.join w1;
  Domain.join w2;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Domain.join consumer;

  Printf.printf "writers: %d updates across %d keys (2 domains)\n"
    (2 * updates_per_writer) n_keys;
  Printf.printf "reader:  %d optimistic reads, %d inconsistent (must be 0)\n" reads
    (Atomic.get torn_reads);
  Printf.printf "ring:    %d handoffs delivered\n" (Atomic.get handoffs_done);
  let stats = Kvstore.Store.stats store in
  Printf.printf "store:   %d items, %d overflow buckets, %d value bytes\n"
    stats.Kvstore.Store.items stats.Kvstore.Store.overflow_buckets
    stats.Kvstore.Store.value_bytes;
  if Atomic.get torn_reads > 0 then exit 1
