(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index) plus ablations and Bechamel
   microbenchmarks of the hot data structures.

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- fig3 fig10   # selected targets
     QUICK=1 dune exec bench/main.exe         # reduced scale (CI-sized)
*)

let quick =
  match Sys.getenv_opt "QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let scale = if quick then Minos.Experiment.quick_scale else Minos.Experiment.full_scale

let fig2_requests = if quick then 60_000 else 300_000

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core data structures. *)

let micro_tests () =
  let open Bechamel in
  (* KV store pre-populated with 10k keys.  Key names are materialized up
     front: the staged closures must time store operations, not
     [Printf.sprintf] (format interpretation used to dominate them). *)
  let micro_keys = Array.init 10_000 (Printf.sprintf "key-%d") in
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:10
      ~value_arena_bytes:(1 lsl 24) ()
  in
  Array.iter
    (fun key -> Kvstore.Store.put store ~guard:`Lock key (Bytes.create 64))
    micro_keys;
  let get_i = ref 0 in
  let kv_get =
    Test.make ~name:"kvstore.get(64B)"
      (Staged.stage (fun () ->
           get_i := (!get_i + 1) land 0x1FFF;
           ignore (Kvstore.Store.get store micro_keys.(!get_i))))
  in
  let put_value = Bytes.create 64 in
  let put_i = ref 0 in
  let kv_put =
    Test.make ~name:"kvstore.put(64B)"
      (Staged.stage (fun () ->
           put_i := (!put_i + 1) land 0x1FFF;
           Kvstore.Store.put store ~guard:`Lock micro_keys.(!put_i) put_value))
  in
  let ring = Netsim.Ring.create ~capacity:1024 in
  let ring_cycle =
    Test.make ~name:"ring.push+pop"
      (Staged.stage (fun () ->
           ignore (Netsim.Ring.try_push ring 42);
           ignore (Netsim.Ring.try_pop ring)))
  in
  let heap = Dsim.Heap.create ~dummy:() () in
  let heap_seq = ref 0 in
  let heap_cycle =
    Test.make ~name:"heap.add+pop"
      (Staged.stage (fun () ->
           incr heap_seq;
           Dsim.Heap.add heap ~time:(float_of_int (!heap_seq land 0xFF)) ~seq:!heap_seq ();
           ignore (Dsim.Heap.pop_min heap)))
  in
  let wheel = Dsim.Wheel.create ~dummy:() () in
  let wheel_seq = ref 0 in
  let wheel_cycle =
    Test.make ~name:"wheel.add+pop"
      (Staged.stage (fun () ->
           incr wheel_seq;
           Dsim.Wheel.add wheel
             ~time:(float_of_int (!wheel_seq land 0xFF))
             ~seq:!wheel_seq ();
           ignore (Dsim.Wheel.pop wheel)))
  in
  let toeplitz =
    Test.make ~name:"toeplitz.hash_ipv4"
      (Staged.stage (fun () ->
           ignore
             (Netsim.Toeplitz.hash_ipv4 ~src_ip:0x0A000001l ~dst_ip:0x0A000002l
                ~src_port:12345 ~dst_port:11211 ())))
  in
  let zipf = Dsim.Dist.Zipf.create ~n:1_000_000 ~theta:0.99 in
  let zipf_rng = Dsim.Rng.create 1 in
  let zipf_sample =
    Test.make ~name:"zipf.sample(1M keys)"
      (Staged.stage (fun () -> ignore (Dsim.Dist.Zipf.sample zipf zipf_rng)))
  in
  let hist =
    Stats.Log_histogram.create ~buckets_per_decade:32 ~min_value:1.0 ~max_value:2.0e6 ()
  in
  let hist_rng = Dsim.Rng.create 2 in
  let hist_record =
    Test.make ~name:"log_histogram.record"
      (Staged.stage (fun () ->
           Stats.Log_histogram.record hist
             (float_of_int (1 + Dsim.Rng.int hist_rng 500_000))))
  in
  let slab = Kvstore.Slab.create ~capacity:(1 lsl 24) in
  let slab_cycle =
    Test.make ~name:"slab.alloc+free(100B)"
      (Staged.stage (fun () ->
           let r = Kvstore.Slab.alloc slab 100 in
           Kvstore.Slab.free slab r))
  in
  let req =
    {
      Proto.Wire.id = 42L;
      op = Proto.Wire.Get;
      key = "some-key";
      value = None;
      client_ts = 123456L;
      target_rx = 3;
    }
  in
  let encode =
    Test.make ~name:"wire.encode_request(get)"
      (Staged.stage (fun () -> ignore (Proto.Wire.encode_request req)))
  in
  let encoded = Proto.Wire.encode_request req in
  let decode =
    Test.make ~name:"wire.decode_request(get)"
      (Staged.stage (fun () -> ignore (Proto.Wire.decode_request encoded)))
  in
  let big = Bytes.create 100_000 in
  let fragment =
    Test.make ~name:"fragment.split(100KB)"
      (Staged.stage (fun () -> ignore (Proto.Fragment.split ~msg_id:1L big)))
  in
  [
    kv_get; kv_put; ring_cycle; heap_cycle; wheel_cycle; toeplitz; zipf_sample; hist_record;
    slab_cycle; encode; decode; fragment;
  ]

let run_micro () =
  let open Bechamel in
  Minos.Report.section "Microbenchmarks (Bechamel, ns per call)";
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.2 else 0.5))
      ~kde:None ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let grouped = Test.make_grouped ~name:"micro" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> Printf.sprintf "%.1f" x
          | Some [] | None -> "-"
        in
        [ name; ns ] :: acc)
      results []
    |> List.sort compare
  in
  Minos.Report.table ~title:"hot-path operations" ~headers:[ "operation"; "ns/call" ]
    rows

(* ------------------------------------------------------------------ *)
(* Hot-path performance profile.  Three numbers the CI perf step tracks:
   heap ns per add+pop, simulator events/sec and minor words allocated per
   simulated request, plus the wall-clock of one figure sweep.  Written to
   BENCH_perf.json so runs can be compared across commits. *)

let perf_heap_ns () =
  let heap = Dsim.Heap.create ~dummy:() () in
  for i = 1 to 64 do
    Dsim.Heap.add heap ~time:(float_of_int i) ~seq:i ()
  done;
  for _ = 1 to 64 do
    ignore (Dsim.Heap.pop heap)
  done;
  let iters = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    Dsim.Heap.add heap ~time:(float_of_int (i land 0xFF)) ~seq:i ();
    ignore (Dsim.Heap.pop heap)
  done;
  1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters

(* Same cycle through the timing wheel (the queue the simulator actually
   uses since the wheel kernel landed). *)
let perf_wheel_ns () =
  let wheel = Dsim.Wheel.create ~dummy:() () in
  for i = 1 to 64 do
    Dsim.Wheel.add wheel ~time:(float_of_int i) ~seq:i ()
  done;
  for _ = 1 to 64 do
    Dsim.Wheel.drop wheel
  done;
  let iters = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    Dsim.Wheel.add wheel ~time:(float_of_int (i land 0xFF)) ~seq:i ();
    Dsim.Wheel.drop wheel
  done;
  1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters

(* One Minos run at a fixed 4 Mops on the default workload, instrumented
   for allocation rate and event throughput. *)
let perf_sim () =
  let cfg = Minos.Experiment.config_of_scale scale in
  let spec = Workload.Spec.default in
  let dataset = Minos.Experiment.dataset_for spec in
  let gen =
    Workload.Generator.create ~seed:101 ~p_large:spec.Workload.Spec.p_large
      ~get_ratio:spec.Workload.Spec.get_ratio dataset
  in
  let eng = Kvserver.Engine.create cfg gen ~offered_mops:4.0 in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let m = Kvserver.Engine.run eng (Minos.Experiment.maker Kvserver.Design.minos) in
  let dt = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. minor0 in
  let events = Dsim.Sim.events_processed (Kvserver.Engine.sim eng) in
  let issued = m.Kvserver.Metrics.issued in
  ( float_of_int events /. dt,
    minor /. float_of_int (max 1 issued),
    events, issued )

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead: the same fixed-load Minos run as [perf_sim],
   once without an instrument and once fully sampled.  The "off" numbers
   price merely compiling the hooks in (CI compares them against a fresh
   BENCH_perf.json: <= 2 extra minor words/request, <= 3% events/sec);
   the "on" numbers price actual recording.  Written to BENCH_obs.json. *)

let obs_run ?obs () =
  let cfg = Minos.Experiment.config_of_scale scale in
  let spec = Workload.Spec.default in
  let dataset = Minos.Experiment.dataset_for spec in
  let gen =
    Workload.Generator.create ~seed:101 ~p_large:spec.Workload.Spec.p_large
      ~get_ratio:spec.Workload.Spec.get_ratio dataset
  in
  let eng = Kvserver.Engine.create ?obs cfg gen ~offered_mops:4.0 in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let m = Kvserver.Engine.run eng (Minos.Experiment.maker Kvserver.Design.minos) in
  let dt = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. minor0 in
  let events = Dsim.Sim.events_processed (Kvserver.Engine.sim eng) in
  let issued = m.Kvserver.Metrics.issued in
  (float_of_int events /. dt, minor /. float_of_int (max 1 issued))

let run_obs () =
  Minos.Report.section "Flight-recorder overhead (recorder off vs on)";
  let cfg = Minos.Experiment.config_of_scale scale in
  let ev_off, w_off = obs_run () in
  let obs =
    Obs.Instrument.create ~spans:65536 ~cores:cfg.Kvserver.Config.cores ~seed:1 ()
  in
  let ev_on, w_on = obs_run ~obs () in
  let recorded = Obs.Recorder.recorded obs.Obs.Instrument.recorder in
  Minos.Report.table ~title:"recorder cost"
    ~headers:[ "metric"; "obs off"; "obs on"; "delta" ]
    [
      [
        "dsim events/sec";
        Printf.sprintf "%.0f" ev_off;
        Printf.sprintf "%.0f" ev_on;
        Printf.sprintf "%+.1f%%" (100.0 *. ((ev_on /. ev_off) -. 1.0));
      ];
      [
        "minor words/request";
        Printf.sprintf "%.2f" w_off;
        Printf.sprintf "%.2f" w_on;
        Printf.sprintf "%+.2f" (w_on -. w_off);
      ];
    ];
  Minos.Report.note "%d spans recorded while on" recorded;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    {|{
  "quick": %b,
  "events_per_sec_off": %.0f,
  "events_per_sec_on": %.0f,
  "minor_words_per_request_off": %.2f,
  "minor_words_per_request_on": %.2f,
  "spans_recorded": %d
}
|}
    quick ev_off ev_on w_off w_on recorded;
  close_out oc;
  Printf.printf "[recorder overhead written to BENCH_obs.json]\n%!"

(* ------------------------------------------------------------------ *)
(* Closed-form capacity model: the numbers that explain where each curve
   saturates. *)

let run_capacity () =
  Minos.Report.section "Capacity model (closed form, see Queueing.Capacity)";
  let cost = Kvserver.Cost_model.default in
  let rows =
    List.map
      (fun (label, spec) ->
        let p = Queueing.Capacity.profile spec cost in
        [
          label;
          Printf.sprintf "%.2f" p.Queueing.Capacity.mean_cpu_us;
          Printf.sprintf "%.0f" p.Queueing.Capacity.mean_tx_bytes;
          Printf.sprintf "%.1f" p.Queueing.Capacity.mean_service_latency_us;
          Printf.sprintf "%.2f" (Queueing.Capacity.nic_bound_mops spec cost ~gbps:40.0);
          Printf.sprintf "%.2f" (Queueing.Capacity.cpu_bound_mops spec cost ~cores:8 ());
          string_of_int
            (Queueing.Capacity.expected_large_cores spec cost ~cores:8 ~percentile:0.99);
        ])
      [
        ("default (95:5)", Workload.Spec.default);
        ("write-intensive", Workload.Spec.write_intensive);
        ("pL=0.75", Workload.Spec.with_p_large Workload.Spec.default 0.75);
        ("sL=1MB", Workload.Spec.with_s_large Workload.Spec.default 1_000_000);
      ]
  in
  Minos.Report.table ~title:"per-workload bounds"
    ~headers:
      [ "workload"; "cpu us/op"; "tx B/op"; "svc lat us"; "NIC Mops"; "CPU Mops";
        "large cores" ]
    rows;
  Minos.Report.note "HoL exposure (HKH, default, 1 Mops): %.1f%% of arrivals land behind a large request"
    (100.0
    *. Queueing.Capacity.hol_exposure Workload.Spec.default cost ~cores:8
         ~offered_mops:1.0)

let run_numa () =
  Minos.Report.section "Multi-NUMA scaling (independent per-domain instances, §3)";
  let cfg = Minos.Experiment.config_of_scale scale in
  let rows =
    List.map
      (fun domains ->
        let r =
          Minos.Numa.run ~cfg ~domains Workload.Spec.default
            ~offered_mops:(3.0 *. float_of_int domains)
        in
        [
          string_of_int domains;
          Printf.sprintf "%.2f" r.Minos.Numa.total_throughput_mops;
          Minos.Report.f1 r.Minos.Numa.p50_us;
          Minos.Report.f1 r.Minos.Numa.p99_us;
          (if r.Minos.Numa.stable then "yes" else "no");
        ])
      [ 1; 2; 4 ]
  in
  Minos.Report.table ~title:"Minos at 3 Mops per domain"
    ~headers:[ "domains"; "tput Mops"; "p50 us"; "p99 us"; "stable" ]
    rows

(* ------------------------------------------------------------------ *)
(* Chaos harness: every canned fault plan against the guarded Minos, the
   plain Minos and HKH+WS.  The JSON is the record CI compares: for the
   core-stall and loss plans the guarded p99 must beat the unguarded one,
   and a rerun at the same seed must be byte-identical. *)

let run_chaos () =
  let cfg = Minos.Experiment.config_of_scale scale in
  let t = Minos.Chaos.run ~cfg ~seed:1 () in
  Minos.Chaos.print t;
  let oc = open_out "BENCH_chaos.json" in
  output_string oc (Minos.Chaos.to_json t);
  close_out oc;
  Printf.printf "[chaos results written to BENCH_chaos.json]\n%!"

(* ------------------------------------------------------------------ *)
(* Cluster scale-out: 4 shard servers behind the client-side router,
   size-aware Minos vs the keyhash baseline at the same offered load.
   The JSON is the record CI compares: multi-GET p99 must grow with the
   fan-out degree, per-server Minos p99 must stay strictly below the
   keyhash baseline's, cluster loss accounting must telescope exactly,
   and a rerun at the same seed (any MINOS_JOBS) must be byte-identical. *)

let run_cluster () =
  let cfg = Minos.Experiment.config_of_scale scale in
  let t =
    Minos.Cluster.run ~cfg ~seed:1 ~servers:4 Workload.Scenario.default
      ~offered_mops:8.0
  in
  Minos.Cluster.print t;
  let oc = open_out "BENCH_cluster.json" in
  output_string oc (Minos.Cluster.to_json t);
  close_out oc;
  Printf.printf "[cluster results written to BENCH_cluster.json]\n%!"

(* Elastic resharding: the add-remove plan (a server joins mid-run, then
   server 1 drains out) against a 4-shard cluster at 8 Mops, size-aware
   Minos vs the keyhash baseline over the same routing table.  The JSON
   is the record CI compares: loss accounting must telescope exactly
   across the reshard events, the key-conservation audit must report
   zero lost/duplicated/stale keys, the p99 during migration must stay
   within 3x of steady state, and a rerun at the same seed (any
   MINOS_JOBS) must be byte-identical. *)

let run_reshard () =
  let cfg =
    {
      (Minos.Experiment.config_of_scale scale) with
      Kvserver.Config.window_us = Some scale.Minos.Experiment.window_us;
    }
  in
  let plan =
    Option.get
      (Shardmgr.Plan.canned "add-remove"
         ~warmup_us:cfg.Kvserver.Config.warmup_us
         ~duration_us:cfg.Kvserver.Config.duration_us)
  in
  let t =
    Minos.Reshard.run ~cfg ~seed:1 ~servers:4 ~plan Workload.Scenario.default
      ~offered_mops:8.0 ()
  in
  Minos.Reshard.print t;
  let oc = open_out "BENCH_reshard.json" in
  output_string oc (Minos.Reshard.to_json t);
  close_out oc;
  Printf.printf "[reshard results written to BENCH_reshard.json]\n%!"

(* Scenario suite: every registry scenario beyond the paper's static
   Poisson mix — diurnal ramps, bursts, TTL churn, scan-heavy, and the
   larger-than-memory cold tier — size-aware Minos vs the keyhash
   baseline.  The JSON is the record CI compares: the extended
   loss-accounting identity (with the expired-miss leg) must hold
   exactly in every row, size-aware p99 must beat keyhash on the
   scan-heavy scenario, and a rerun at the same seed (any MINOS_JOBS)
   must be byte-identical. *)

let run_scenarios () =
  let cfg = Minos.Experiment.config_of_scale scale in
  let t = Minos.Scenarios.run ~cfg ~seed:1 () in
  Minos.Scenarios.print t;
  let oc = open_out "BENCH_scenarios.json" in
  output_string oc (Minos.Scenarios.to_json t);
  close_out oc;
  Printf.printf "[scenario results written to BENCH_scenarios.json]\n%!"

(* Replica-aware tail-cutting: the hedged/tied/unhedged variant grid
   against a 4-shard, 1-mirror cluster at 8 Mops, fault-free and under
   the canned kill-server plan.  The JSON is the chaos-SLO record CI
   asserts: copy accounting must telescope exactly in every variant, the
   key audit across the crash must be clean, the hedged size-aware p99
   under the kill must stay within 3x of fault-free while the unhedged
   one degrades by at least 10x, and a rerun at the same seed (any
   MINOS_JOBS) must be byte-identical. *)

let run_hedge () =
  let t =
    Minos.Hedge.run
      ~config:(Minos.Hedge.config_of_scale scale)
      ~seed:1 ~offered_mops:8.0 ()
  in
  Minos.Hedge.print t;
  let oc = open_out "BENCH_hedge.json" in
  output_string oc (Minos.Hedge.to_json t);
  close_out oc;
  Printf.printf "[hedge results written to BENCH_hedge.json]\n%!"

let targets : (string * string * (unit -> unit)) list =
  [
    ("fig1", "service time vs item size", fun () -> Minos.Figures.print_fig1 ());
    ( "fig2",
      "queueing models of size-unaware sharding",
      fun () -> Minos.Figures.print_fig2 ~requests:fig2_requests () );
    ("table1", "item size variability profiles", fun () -> Minos.Figures.print_table1 ());
    ( "fig3",
      "throughput vs 99p, default workload",
      fun () -> Minos.Figures.print_fig3 ~scale () );
    ("fig4", "99p of large requests", fun () -> Minos.Figures.print_fig4 ~scale ());
    ("fig5", "throughput vs 99p, 50:50", fun () -> Minos.Figures.print_fig5 ~scale ());
    ( "fig6",
      "max throughput under SLO vs pL",
      fun () -> Minos.Figures.print_fig6 ~scale () );
    ( "fig7",
      "max throughput under SLO vs sL",
      fun () -> Minos.Figures.print_fig7 ~scale () );
    ( "fig8",
      "network bandwidth scaling (sampling)",
      fun () -> Minos.Figures.print_fig8 ~scale () );
    ("fig9", "per-core load breakdown", fun () -> Minos.Figures.print_fig9 ~scale ());
    ("fig10", "dynamic workload", fun () -> Minos.Figures.print_fig10 ~scale ());
    ( "fanout",
      "tail-at-scale fan-out analysis",
      fun () -> Minos.Figures.print_fanout ~scale () );
    ( "ablation-threshold",
      "adaptive vs static threshold",
      fun () -> Minos.Figures.print_ablation_threshold ~scale () );
    ( "ablation-cost",
      "control-loop cost functions",
      fun () -> Minos.Figures.print_ablation_cost_fn ~scale () );
    ( "ablation-steal",
      "large-core RX stealing variant",
      fun () -> Minos.Figures.print_ablation_steal ~scale () );
    ( "ablation-epoch",
      "epoch length / smoothing sensitivity",
      fun () -> Minos.Figures.print_ablation_epoch ~scale () );
    ( "ablation-erew",
      "HKH CREW vs EREW dispatch under skew",
      fun () -> Minos.Figures.print_ablation_erew ~scale () );
    ("capacity", "closed-form capacity model", run_capacity);
    ("chaos", "fault plans vs hardened/plain designs", run_chaos);
    ("cluster", "multi-server sharding + fan-out multi-GET", run_cluster);
    ("reshard", "elastic resharding: live migration + replicas", run_reshard);
    ("hedge", "replica-aware tail-cutting vs kill-server chaos", run_hedge);
    ("scenarios", "scenario suite: arrivals/TTL/scans/cold-tier", run_scenarios);
    ("obs", "flight-recorder overhead on/off", run_obs);
    ("numa", "multi-NUMA-domain scaling", run_numa);
    ("micro", "bechamel microbenchmarks", run_micro);
  ]

let run_perf sweep_target =
  Minos.Report.section "Hot-path performance profile";
  let heap_ns = perf_heap_ns () in
  let wheel_ns = perf_wheel_ns () in
  let events_per_sec, words_per_req, events, issued = perf_sim () in
  let sweep_fn =
    match List.find_opt (fun (n, _, _) -> n = sweep_target) targets with
    | Some (_, _, f) -> f
    | None ->
        Printf.eprintf "perf: unknown sweep target %s\n" sweep_target;
        exit 1
  in
  let t0 = Unix.gettimeofday () in
  sweep_fn ();
  let sweep_s = Unix.gettimeofday () -. t0 in
  Minos.Report.table ~title:"perf summary" ~headers:[ "metric"; "value" ]
    [
      [ "heap add+pop ns/op"; Printf.sprintf "%.1f" heap_ns ];
      [ "wheel add+pop ns/op"; Printf.sprintf "%.1f" wheel_ns ];
      [ "dsim events/sec"; Printf.sprintf "%.0f" events_per_sec ];
      [ "minor words/request"; Printf.sprintf "%.1f" words_per_req ];
      [ sweep_target ^ " sweep seconds"; Printf.sprintf "%.2f" sweep_s ];
    ];
  let oc = open_out "BENCH_perf.json" in
  Printf.fprintf oc
    {|{
  "quick": %b,
  "jobs": %d,
  "heap_add_pop_ns": %.2f,
  "wheel_add_pop_ns": %.2f,
  "dsim_events_per_sec": %.0f,
  "minor_words_per_request": %.2f,
  "sim_events": %d,
  "sim_issued": %d,
  "sweep_target": %S,
  "sweep_seconds": %.3f
}
|}
    quick (Minos.Par.jobs ()) heap_ns wheel_ns events_per_sec words_per_req events
    issued sweep_target sweep_s;
  close_out oc;
  Printf.printf "[perf profile written to BENCH_perf.json]\n%!"

let usage () =
  print_endline "usage: bench/main.exe [target ...]   (default: all targets)";
  print_endline "       bench/main.exe perf [sweep-target]";
  print_endline
    "  perf measures heap ns/op, dsim events/sec, minor words/request and";
  print_endline
    "  the wall-clock of one sweep (default fig3); writes BENCH_perf.json.";
  print_endline "targets:";
  List.iter (fun (name, doc, _) -> Printf.printf "  %-20s %s\n" name doc) targets

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--help" ] | [ "-h" ] -> usage ()
  | "perf" :: rest ->
      let sweep_target = match rest with [] -> "fig3" | t :: _ -> t in
      run_perf sweep_target
  | [ "profsim" ] ->
      (* Undocumented: loop the perf_sim workload so a sampling profiler
         (gprofng, perf) sees only the simulator hot path. *)
      for _ = 1 to 5 do
        let ev, w, _, _ = perf_sim () in
        Printf.printf "events/sec %.0f  words/req %.1f\n%!" ev w
      done
  | [] ->
      Printf.printf "Minos benchmark harness (%s scale)\n"
        (if quick then "quick" else "full");
      List.iter
        (fun (name, _, f) ->
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0))
        targets
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) targets with
          | Some (_, _, f) -> f ()
          | None ->
              Printf.eprintf "unknown target %s\n" name;
              usage ();
              exit 1)
        names
