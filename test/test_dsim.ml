(* Tests for the simulation substrate: RNG, distributions, event heap and
   the simulation engine. *)

open Dsim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let approx tolerance = Alcotest.float tolerance

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 1234 and b = Rng.create 1234 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check bool "different seeds differ" true !differs

let test_rng_copy () =
  let a = Rng.create 99 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy replays" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* The split stream must not equal the parent's continued stream. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check int "no collisions expected" 0 !same

let test_rng_int_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.fail "Rng.int out of bounds"
  done;
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_int_uniformity () =
  (* Loose chi-square-style check over 8 cells. *)
  let r = Rng.create 11 in
  let n = 80_000 and cells = 8 in
  let counts = Array.make cells 0 in
  for _ = 1 to n do
    let v = Rng.int r cells in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int n /. float_of_int cells in
  Array.iter
    (fun c ->
      let dev = abs_float (float_of_int c -. expected) /. expected in
      if dev > 0.05 then
        Alcotest.failf "cell deviates %.1f%% from uniform" (100.0 *. dev))
    counts

let test_rng_unit_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.unit_float r in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "unit_float out of [0,1)"
  done

let test_rng_exponential_mean () =
  let r = Rng.create 17 in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:5.0
  done;
  check (approx 0.1) "empirical mean" 5.0 (!sum /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Dist.Zipf *)

let test_zipf_prob_sums_to_one () =
  let z = Dist.Zipf.create ~n:1000 ~theta:0.99 in
  let sum = ref 0.0 in
  for k = 0 to 999 do
    sum := !sum +. Dist.Zipf.prob z k
  done;
  check (approx 1e-9) "probabilities sum to 1" 1.0 !sum

let test_zipf_monotone () =
  let z = Dist.Zipf.create ~n:100 ~theta:0.9 in
  for k = 0 to 98 do
    if Dist.Zipf.prob z k < Dist.Zipf.prob z (k + 1) then
      Alcotest.fail "zipf probabilities must be nonincreasing in rank"
  done

let test_zipf_sample_range_and_skew () =
  let n = 10_000 in
  let z = Dist.Zipf.create ~n ~theta:0.99 in
  let r = Rng.create 23 in
  let draws = 100_000 in
  let rank0 = ref 0 in
  for _ = 1 to draws do
    let v = Dist.Zipf.sample z r in
    if v < 0 || v >= n then Alcotest.fail "zipf sample out of range";
    if v = 0 then incr rank0
  done;
  let expected = Dist.Zipf.prob z 0 in
  let got = float_of_int !rank0 /. float_of_int draws in
  (* Rank 0 is ~11% for n=10k, theta=.99; demand agreement within 10% rel. *)
  if abs_float (got -. expected) /. expected > 0.1 then
    Alcotest.failf "rank-0 frequency %.4f vs expected %.4f" got expected

let test_zipf_theta_zero_is_uniform () =
  let n = 16 in
  let z = Dist.Zipf.create ~n ~theta:0.0 in
  List.iter
    (fun k -> check (approx 1e-9) "uniform prob" (1.0 /. float_of_int n)
        (Dist.Zipf.prob z k))
    [ 0; 7; 15 ]

let test_zipf_single_key () =
  let z = Dist.Zipf.create ~n:1 ~theta:0.5 in
  let r = Rng.create 2 in
  for _ = 1 to 100 do
    check int "only rank 0" 0 (Dist.Zipf.sample z r)
  done

(* ------------------------------------------------------------------ *)
(* Dist.Alias *)

let test_alias_empirical () =
  let weights = [| 1.0; 3.0; 6.0 |] in
  let a = Dist.Alias.create weights in
  let r = Rng.create 31 in
  let n = 200_000 in
  let counts = Array.make 3 0 in
  for _ = 1 to n do
    let v = Dist.Alias.sample a r in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i w ->
      let expected = w /. 10.0 in
      let got = float_of_int counts.(i) /. float_of_int n in
      if abs_float (got -. expected) > 0.01 then
        Alcotest.failf "alias cell %d: %.3f vs %.3f" i got expected)
    weights

let test_alias_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.create: empty weights")
    (fun () -> ignore (Dist.Alias.create [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Alias.create: negative weight") (fun () ->
      ignore (Dist.Alias.create [| 1.0; -1.0 |]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Alias.create: total weight must be > 0") (fun () ->
      ignore (Dist.Alias.create [| 0.0; 0.0 |]))

let prop_alias_in_range =
  QCheck.Test.make ~name:"alias samples in range" ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) (float_bound_inclusive 10.0))
    (fun ws ->
      QCheck.assume (List.exists (fun w -> w > 0.0) ws);
      let a = Dist.Alias.create (Array.of_list ws) in
      let r = Rng.create 1 in
      let k = List.length ws in
      List.for_all
        (fun _ ->
          let v = Dist.Alias.sample a r in
          v >= 0 && v < k)
        (List.init 100 Fun.id))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~dummy:"" () in
  Heap.add h ~time:3.0 ~seq:0 "c";
  Heap.add h ~time:1.0 ~seq:1 "a";
  Heap.add h ~time:2.0 ~seq:2 "b";
  let pop () = match Heap.pop_min h with Some (_, _, v) -> v | None -> "?" in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  check bool "empty" true (Heap.is_empty h)

let test_heap_tie_break_by_seq () =
  let h = Heap.create ~dummy:"" () in
  Heap.add h ~time:1.0 ~seq:5 "later";
  Heap.add h ~time:1.0 ~seq:2 "earlier";
  (match Heap.pop_min h with
  | Some (_, seq, v) ->
      check int "lowest seq first" 2 seq;
      check Alcotest.string "value" "earlier" v
  | None -> Alcotest.fail "expected element");
  ignore (Heap.pop_min h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted key order" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_nat))
    (fun pairs ->
      let h = Heap.create ~dummy:0 () in
      List.iteri (fun i (t, _) -> Heap.add h ~time:t ~seq:i i) pairs;
      let rec drain acc =
        match Heap.pop_min h with
        | Some (t, s, _) -> drain ((t, s) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.sort compare popped in
      popped = sorted)

let test_heap_peek () =
  let h = Heap.create ~dummy:0 () in
  check bool "peek empty" true (Heap.peek_min h = None);
  Heap.add h ~time:9.0 ~seq:0 42;
  (match Heap.peek_min h with
  | Some (t, _, v) ->
      check (approx 0.0) "peek time" 9.0 t;
      check int "peek value" 42 v
  | None -> Alcotest.fail "expected element");
  check int "peek does not remove" 1 (Heap.length h)

(* Random add/pop interleavings against a sorted-list model: every pop
   must return the live element with the least (time, seq) key, not just
   a fully-built heap drained at the end. *)
let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap interleaved add/pop matches model" ~count:300
    QCheck.(list (option (float_bound_inclusive 100.0)))
    (fun ops ->
      let h = Heap.create ~dummy:(-1) () in
      let model = ref [] (* ascending by (time, seq) *) in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some time ->
              Heap.add h ~time ~seq:!seq !seq;
              model := List.merge compare !model [ (time, !seq) ];
              incr seq;
              true
          | None -> (
              match (Heap.pop_min h, !model) with
              | None, [] -> true
              | Some (t, s, v), (mt, ms) :: rest ->
                  model := rest;
                  t = mt && s = ms && v = ms
              | Some _, [] | None, _ :: _ -> false))
        ops)

let test_heap_nonallocating_accessors () =
  let h = Heap.create ~dummy:"" () in
  Alcotest.check_raises "min_time empty"
    (Invalid_argument "Heap.min_time: empty heap") (fun () ->
      ignore (Heap.min_time h));
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty heap")
    (fun () -> ignore (Heap.pop h));
  Heap.add h ~time:3.0 ~seq:9 "x";
  check (approx 0.0) "min_time" 3.0 (Heap.min_time h);
  check int "min_seq" 9 (Heap.min_seq h);
  check Alcotest.string "pop" "x" (Heap.pop h)

let test_heap_capacity_steady_state () =
  let h = Heap.create ~dummy:0 () in
  for i = 1 to 64 do
    Heap.add h ~time:(float_of_int i) ~seq:i i
  done;
  for _ = 1 to 64 do
    ignore (Heap.pop h)
  done;
  let cap = Heap.capacity h in
  check bool "warmed capacity" true (cap >= 64);
  for i = 1 to 10_000 do
    Heap.add h ~time:(float_of_int (i land 0xFF)) ~seq:i i;
    ignore (Heap.pop h)
  done;
  check int "steady-state add/pop never grows" cap (Heap.capacity h)

let test_heap_clear_retains_capacity () =
  let h = Heap.create ~dummy:0 () in
  for i = 1 to 100 do
    Heap.add h ~time:(float_of_int i) ~seq:i i
  done;
  let cap = Heap.capacity h in
  Heap.clear h;
  check int "empty after clear" 0 (Heap.length h);
  check int "capacity retained" cap (Heap.capacity h);
  Heap.add h ~time:1.0 ~seq:0 7;
  check int "usable after clear" 1 (Heap.length h)

let test_heap_releases_values () =
  (* Regression: [pop] and [clear] must overwrite vacated value slots
     with [dummy].  The heap once left the last popped value (and, after
     [clear], the whole former contents) reachable through its backing
     array, pinning arbitrarily large closures across simulations. *)
  let h = Heap.create ~dummy:"" () in
  let wk = Weak.create 2 in
  (let v = Bytes.to_string (Bytes.make 64 'x') in
   Weak.set wk 0 (Some v);
   Heap.add h ~time:1.0 ~seq:0 v);
  (let v = Bytes.to_string (Bytes.make 64 'y') in
   Weak.set wk 1 (Some v);
   Heap.add h ~time:2.0 ~seq:1 v);
  ignore (Heap.pop h : string);
  Heap.clear h;
  Gc.full_major ();
  Gc.full_major ();
  check bool "popped value collected" true (Weak.get wk 0 = None);
  check bool "cleared value collected" true (Weak.get wk 1 = None)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_runs_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule_at sim 5.0 (fun () -> log := 5 :: !log);
  Sim.schedule_at sim 1.0 (fun () -> log := 1 :: !log);
  Sim.schedule_at sim 3.0 (fun () -> log := 3 :: !log);
  Sim.run_until_idle sim;
  check (Alcotest.list int) "order" [ 1; 3; 5 ] (List.rev !log);
  check (approx 0.0) "clock at last event" 5.0 (Sim.now sim)

let test_sim_schedule_after () =
  let sim = Sim.create () in
  let fired_at = ref 0.0 in
  Sim.schedule_at sim 10.0 (fun () ->
      Sim.schedule_after sim 2.5 (fun () -> fired_at := Sim.now sim));
  Sim.run_until_idle sim;
  check (approx 1e-9) "relative scheduling" 12.5 !fired_at

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Sim.schedule_after sim 1.0 tick
  in
  Sim.schedule_at sim 0.0 tick;
  Sim.run sim ~until:10.5;
  (* Events at 0,1,...,10 fire: 11 total; the clock ends at [until]. *)
  check int "events within horizon" 11 !count;
  check (approx 1e-9) "clock stops at until" 10.5 (Sim.now sim);
  check int "one event still pending" 1 (Sim.pending_events sim)

let test_sim_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule_at sim 5.0 (fun () ->
      match Sim.schedule_at sim 1.0 ignore with
      | () -> Alcotest.fail "scheduling in the past must raise"
      | exception Invalid_argument _ -> ());
  Sim.run_until_idle sim

let test_sim_same_time_fifo () =
  (* Events scheduled for the same instant run in scheduling order. *)
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule_at sim 1.0 (fun () -> log := i :: !log)
  done;
  Sim.run_until_idle sim;
  check (Alcotest.list int) "fifo at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_events_processed_counter () =
  let sim = Sim.create () in
  for i = 1 to 4 do
    Sim.schedule_at sim (float_of_int i) ignore
  done;
  Sim.run_until_idle sim;
  check int "processed" 4 (Sim.events_processed sim)

let () =
  Alcotest.run "dsim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniformity;
          Alcotest.test_case "unit_float range" `Quick test_rng_unit_float_range;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "probs sum to 1" `Quick test_zipf_prob_sums_to_one;
          Alcotest.test_case "monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "sample range and skew" `Slow test_zipf_sample_range_and_skew;
          Alcotest.test_case "theta 0 uniform" `Quick test_zipf_theta_zero_is_uniform;
          Alcotest.test_case "single key" `Quick test_zipf_single_key;
        ] );
      ( "alias",
        [
          Alcotest.test_case "empirical distribution" `Slow test_alias_empirical;
          Alcotest.test_case "validation" `Quick test_alias_validation;
        ]
        @ qsuite [ prop_alias_in_range ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "tie break by seq" `Quick test_heap_tie_break_by_seq;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "non-allocating accessors" `Quick
            test_heap_nonallocating_accessors;
          Alcotest.test_case "steady-state capacity" `Quick
            test_heap_capacity_steady_state;
          Alcotest.test_case "releases values" `Quick test_heap_releases_values;
          Alcotest.test_case "clear retains capacity" `Quick
            test_heap_clear_retains_capacity;
        ]
        @ qsuite [ prop_heap_sorts; prop_heap_interleaved ] );
      ( "sim",
        [
          Alcotest.test_case "time order" `Quick test_sim_runs_in_time_order;
          Alcotest.test_case "schedule after" `Quick test_sim_schedule_after;
          Alcotest.test_case "run until" `Quick test_sim_run_until;
          Alcotest.test_case "rejects past" `Quick test_sim_rejects_past;
          Alcotest.test_case "same-time fifo" `Quick test_sim_same_time_fifo;
          Alcotest.test_case "events processed" `Quick test_sim_events_processed_counter;
        ] );
    ]
