(* Queue-contract tests for the timing wheel.

   The wheel replaced the binary heap as the simulator's event queue on
   the promise of an *identical* (time, seq) total order — every
   simulation golden depends on it.  The heap stays in the tree as the
   executable specification: the differential property below drives both
   structures through random interleavings (same-timestamp ties, bucket
   boundaries, far-future overflow) and requires bit-identical behaviour.
   Deterministic cases pin the cascade edges (level boundaries, horizon
   overflow, clear/rewind reuse, lazy cancellation), and a Sim-level
   property checks conservation of the event accounting. *)

open Dsim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let approx t = Alcotest.float t

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* ------------------------------------------------------------------ *)
(* Differential: wheel = heap *)

(* Deltas relative to the current front (time of the last pop): exact
   duplicates and near-ties exercise same-tick ordering; 63.99/64.0/64.01
   straddle the level-0 wrap (256 slots x 0.25 us); 6553.6 lands deep in
   level 1; 16384+ and 1e6 overflow the horizon into the far heap.  The
   front only moves forward, matching the simulator's
   no-scheduling-in-the-past contract. *)
let delta_pool =
  [|
    0.0; 0.0; 1e-9; 0.1; 0.25; 0.25; 0.5; 1.0; 3.7; 63.99; 64.0; 64.01;
    127.75; 6553.6; 16383.75; 16384.0; 16500.0; 1.0e6;
  |]

let gen_ops = QCheck.(list (pair bool (int_bound (Array.length delta_pool - 1))))

let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel = heap on random interleavings" ~count:300 gen_ops
    (fun ops ->
      let w = Wheel.create ~dummy:(-1) () in
      let h = Heap.create ~dummy:(-1) () in
      let seq = ref 0 in
      let front = ref 0.0 in
      let ok = ref true in
      let step (is_add, d) =
        if is_add then begin
          let time = !front +. delta_pool.(d) in
          (* alternate payload forms: even seqs closure, odd seqs typed *)
          if !seq land 1 = 0 then Wheel.add w ~time ~seq:!seq !seq
          else Wheel.add_call w ~time ~seq:!seq ~tag:7 ~i:!seq ~j:0;
          Heap.add h ~time ~seq:!seq !seq;
          incr seq
        end
        else if not (Heap.is_empty h) then begin
          let ht = Heap.min_time h and hs = Heap.min_seq h in
          let hv = Heap.pop h in
          if Wheel.is_empty w then ok := false
          else begin
            let same_key = Wheel.min_time w = ht && Wheel.min_seq w = hs in
            let same_val =
              if Wheel.min_tag w >= 0 then begin
                let v = Wheel.min_i w in
                Wheel.drop w;
                v = hv
              end
              else Wheel.pop w = hv
            in
            ok :=
              !ok && same_key && same_val && Wheel.length w = Heap.length h;
            front := ht
          end
        end
      in
      List.iter step ops;
      while (not (Heap.is_empty h)) && !ok do
        step (false, 0)
      done;
      !ok && Wheel.is_empty w && Wheel.length w = 0)

let prop_sim_run_until_horizons =
  (* Sim.run ~until must fire exactly the events due by the horizon, in
     (time, scheduling order), across several mid-run horizons. *)
  QCheck.Test.make ~name:"Sim.run ~until fires exactly the due prefix" ~count:200
    QCheck.(
      pair
        (list (float_bound_inclusive 100.0))
        (list (float_bound_inclusive 120.0)))
    (fun (times, horizons) ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iteri
        (fun i t -> Sim.schedule_at sim t (fun () -> fired := (t, i) :: !fired))
        times;
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> compare (a : float) b)
          (List.mapi (fun i t -> (t, i)) times)
      in
      let ok = ref true in
      List.iter
        (fun u ->
          Sim.run sim ~until:u;
          let due = List.filter (fun (t, _) -> t <= u) expected in
          ok := !ok && List.rev !fired = due)
        (List.sort_uniq compare horizons);
      Sim.run_until_idle sim;
      !ok && List.rev !fired = expected)

(* ------------------------------------------------------------------ *)
(* Cascade edge cases *)

let drain_seqs w =
  let out = ref [] in
  while not (Wheel.is_empty w) do
    out := Wheel.min_seq w :: !out;
    Wheel.drop w
  done;
  List.rev !out

let test_bucket_boundaries () =
  (* Ascending times planted on level-0 slot edges, the level-0 wrap, the
     level-1 cascade points and past the horizon must pop in insertion
     order. *)
  let w = Wheel.create ~dummy:(-1) () in
  let times =
    [
      0.0; 0.125; 0.25; 63.75; 64.0; 64.25; 127.75; 128.0; 6553.6; 16383.75;
      16384.0; 16384.25; 1.0e9;
    ]
  in
  List.iteri (fun i t -> Wheel.add w ~time:t ~seq:i i) times;
  check (Alcotest.list int) "boundary order"
    (List.mapi (fun i _ -> i) times)
    (drain_seqs w);
  check bool "empty after drain" true (Wheel.is_empty w)

let test_far_future_overflow () =
  (* Events beyond the wheel horizon live in the far heap until the
     cursor approaches; interleaving near and far events must still pop
     in global (time, seq) order, including a same-time far tie. *)
  let w = Wheel.create ~dummy:(-1) () in
  Wheel.add w ~time:20000.0 ~seq:0 0;
  Wheel.add w ~time:1.0 ~seq:1 1;
  Wheel.add w ~time:20000.0 ~seq:2 2;
  Wheel.add w ~time:17000.0 ~seq:3 3;
  Wheel.add w ~time:0.5 ~seq:4 4;
  check (Alcotest.list int) "near/far interleave" [ 4; 1; 3; 0; 2 ]
    (drain_seqs w)

let test_clear_rewinds_cursor () =
  (* [clear] rewinds to time zero: events earlier than anything popped
     before the clear must be accepted and served. *)
  let w = Wheel.create ~dummy:(-1) () in
  Wheel.add w ~time:5000.0 ~seq:0 0;
  Wheel.add w ~time:9000.0 ~seq:1 1;
  Wheel.drop w;
  (* cursor now sits at ~5000 us *)
  Wheel.clear w;
  check int "cleared" 0 (Wheel.length w);
  check bool "empty" true (Wheel.is_empty w);
  Wheel.add w ~time:0.25 ~seq:2 2;
  Wheel.add w ~time:0.1 ~seq:3 3;
  check (approx 0.0) "rewound head" 0.1 (Wheel.min_time w);
  check (Alcotest.list int) "post-clear order" [ 3; 2 ] (drain_seqs w)

let test_cancellation () =
  let w = Wheel.create ~dummy:(-1) () in
  let h1 = Wheel.add_timer w ~time:1.0 ~seq:0 ~tag:1 ~i:10 ~j:0 in
  let h2 = Wheel.add_timer w ~time:2.0 ~seq:1 ~tag:1 ~i:20 ~j:0 in
  let h3 = Wheel.add_timer w ~time:20000.0 ~seq:2 ~tag:1 ~i:30 ~j:0 in
  check bool "cancel pending" true (Wheel.cancel w h2);
  check bool "double cancel" false (Wheel.cancel w h2);
  check int "length excludes cancelled" 2 (Wheel.length w);
  check (approx 0.0) "head unaffected" 1.0 (Wheel.min_time w);
  check bool "cancel far-future" true (Wheel.cancel w h3);
  check int "far cancel counted" 1 (Wheel.length w);
  Wheel.drop w;
  check bool "stale handle after pop" false (Wheel.cancel w h1);
  check bool "empty: cancelled never surface" true (Wheel.is_empty w)

let test_cancelled_slots_reclaimed () =
  (* The hedged-request pattern: a completion event at t and a backup
     timer slightly later, the timer cancelled when the completion fires
     first.  Cancellation is lazy, so the dead entries must be reclaimed
     as the cursor sweeps past them — churning many rounds keeps the
     arena at its steady-state size instead of growing per hedge. *)
  let w = Wheel.create ~dummy:(-1) () in
  let seq = ref 0 in
  let stale = ref (-1) in
  for round = 1 to 20_000 do
    let now = float_of_int round in
    Wheel.add w ~time:now ~seq:!seq round;
    incr seq;
    let h =
      Wheel.add_timer w ~time:(now +. 0.5) ~seq:!seq ~tag:1 ~i:round ~j:0
    in
    incr seq;
    check int "completion pops first" round (Wheel.pop w);
    check bool "pending backup cancels" true (Wheel.cancel w h);
    if round = 1 then stale := h
  done;
  check int "no live timers left" 0 (Wheel.length w);
  check bool "stale handle stays dead" false (Wheel.cancel w !stale);
  check bool "cancelled slots reclaimed: arena stays small" true
    (Wheel.capacity w < 1024)

let test_values_released () =
  (* Neither popping nor [clear] may keep closure payloads reachable
     through the arena (the [dummy] reset). *)
  let w = Wheel.create ~dummy:"" () in
  let wk = Weak.create 2 in
  (let v = Bytes.to_string (Bytes.make 64 'x') in
   Weak.set wk 0 (Some v);
   Wheel.add w ~time:1.0 ~seq:0 v);
  (let v = Bytes.to_string (Bytes.make 64 'y') in
   Weak.set wk 1 (Some v);
   Wheel.add w ~time:2.0 ~seq:1 v);
  ignore (Wheel.pop w : string);
  Wheel.clear w;
  Gc.full_major ();
  Gc.full_major ();
  check bool "popped value collected" true (Weak.get wk 0 = None);
  check bool "cleared value collected" true (Weak.get wk 1 = None)

(* ------------------------------------------------------------------ *)
(* Conservation *)

let prop_event_conservation =
  (* Every scheduled event is exactly one of: processed, still pending,
     or cancelled — at any run horizon and at the end. *)
  QCheck.Test.make ~name:"scheduled = processed + pending + cancelled"
    ~count:200
    QCheck.(
      triple
        (list (float_bound_inclusive 100.0))
        (list (float_bound_inclusive 100.0))
        (float_bound_inclusive 100.0))
    (fun (closure_times, timer_times, until) ->
      let sim = Sim.create () in
      let tag = Sim.register_handler sim (fun _ _ -> ()) in
      List.iter (fun t -> Sim.schedule_at sim t ignore) closure_times;
      let handles =
        List.map
          (fun t -> Sim.schedule_timer_after sim t ~tag ~i:0 ~j:0)
          timer_times
      in
      let cancelled = ref 0 in
      List.iteri
        (fun i h -> if i land 1 = 0 && Sim.cancel sim h then incr cancelled)
        handles;
      let scheduled = List.length closure_times + List.length timer_times in
      Sim.run sim ~until;
      let mid =
        Sim.events_processed sim + Sim.pending_events sim + !cancelled
        = scheduled
      in
      Sim.run_until_idle sim;
      mid
      && Sim.events_processed sim + !cancelled = scheduled
      && Sim.pending_events sim = 0)

let () =
  Alcotest.run "wheel"
    [
      ( "differential",
        qsuite [ prop_wheel_matches_heap; prop_sim_run_until_horizons ] );
      ( "cascade",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "far-future overflow" `Quick
            test_far_future_overflow;
          Alcotest.test_case "clear rewinds cursor" `Quick
            test_clear_rewinds_cursor;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "cancelled slots reclaimed" `Quick
            test_cancelled_slots_reclaimed;
          Alcotest.test_case "values released" `Quick test_values_released;
        ] );
      ("conservation", qsuite [ prop_event_conservation ]);
    ]
