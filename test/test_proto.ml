(* Tests for the wire protocol: codecs and fragmentation/reassembly. *)

open Proto

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let req ?(id = 7L) ?(op = Wire.Get) ?(key = "mykey") ?value ?(ts = 123456789L)
    ?(rx = 3) () =
  { Wire.id; op; key; value; client_ts = ts; target_rx = rx }

(* ------------------------------------------------------------------ *)
(* Wire *)

let test_request_roundtrip_get () =
  let r = req () in
  match Wire.decode_request (Wire.encode_request r) with
  | Ok r' ->
      check Alcotest.int64 "id" r.Wire.id r'.Wire.id;
      check bool "op" true (r'.Wire.op = Wire.Get);
      check Alcotest.string "key" "mykey" r'.Wire.key;
      check bool "no value" true (r'.Wire.value = None);
      check Alcotest.int64 "ts" r.Wire.client_ts r'.Wire.client_ts;
      check int "rx" 3 r'.Wire.target_rx
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_request_roundtrip_put () =
  let value = Bytes.of_string (String.make 5000 'v') in
  let r = req ~op:Wire.Put ~value () in
  match Wire.decode_request (Wire.encode_request r) with
  | Ok r' ->
      check bool "op" true (r'.Wire.op = Wire.Put);
      check (Alcotest.option Alcotest.bytes) "value" (Some value) r'.Wire.value
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_empty_value_distinct_from_none () =
  (* A PUT of a zero-length value is not the same as a GET's absent
     value. *)
  let r = req ~op:Wire.Put ~value:Bytes.empty () in
  match Wire.decode_request (Wire.encode_request r) with
  | Ok r' -> check (Alcotest.option Alcotest.bytes) "empty value" (Some Bytes.empty) r'.Wire.value
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_reply_roundtrip () =
  let rep =
    { Wire.id = 99L; status = Wire.Ok; value = Some (Bytes.of_string "data");
      client_ts = 42L }
  in
  (match Wire.decode_reply (Wire.encode_reply rep) with
  | Ok r ->
      check Alcotest.int64 "id" 99L r.Wire.id;
      check bool "status" true (r.Wire.status = Wire.Ok);
      check (Alcotest.option Alcotest.string) "value" (Some "data")
        (Option.map Bytes.to_string r.Wire.value)
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e);
  let nf = { Wire.id = 1L; status = Wire.Not_found; value = None; client_ts = 0L } in
  match Wire.decode_reply (Wire.encode_reply nf) with
  | Ok r -> check bool "not found" true (r.Wire.status = Wire.Not_found)
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_decode_errors () =
  let good = Wire.encode_request (req ()) in
  (match Wire.decode_request (Bytes.sub good 0 5) with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  let bad_magic = Bytes.copy good in
  Bytes.set_uint8 bad_magic 0 0x00;
  (match Wire.decode_request bad_magic with
  | Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  let bad_op = Bytes.copy good in
  Bytes.set_uint8 bad_op 2 200;
  (match Wire.decode_request bad_op with
  | Error Wire.Bad_op -> ()
  | _ -> Alcotest.fail "expected Bad_op");
  (* Truncated value payload. *)
  let put = Wire.encode_request (req ~op:Wire.Put ~value:(Bytes.create 100) ()) in
  match Wire.decode_request (Bytes.sub put 0 (Bytes.length put - 1)) with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated value"

let test_version_in_header () =
  (* Byte 1 of every message is the protocol version, after the magic. *)
  let r = Wire.encode_request (req ()) in
  check int "request version byte" Wire.version (Bytes.get_uint8 r 1);
  let rep = { Wire.id = 1L; status = Wire.Ok; value = None; client_ts = 0L } in
  let e = Wire.encode_reply rep in
  check int "reply version byte" Wire.version (Bytes.get_uint8 e 1);
  (* Round trip: what we encode, we accept. *)
  (match Wire.decode_request r with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "same-version decode failed: %a" Wire.pp_error e);
  match Wire.decode_reply e with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "same-version reply decode failed: %a" Wire.pp_error e

let test_unknown_version_rejected () =
  (* Forward compatibility: a well-formed message from a future protocol
     version is rejected cleanly (not mis-parsed under current offsets). *)
  let future = Wire.encode_request (req ~op:Wire.Put ~value:(Bytes.create 8) ()) in
  Bytes.set_uint8 future 1 (Wire.version + 1);
  (match Wire.decode_request future with
  | Error (Wire.Bad_version v) -> check int "reported version" (Wire.version + 1) v
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error e -> Alcotest.failf "expected Bad_version, got: %a" Wire.pp_error e);
  let rep = { Wire.id = 9L; status = Wire.Overloaded; value = None; client_ts = 4L } in
  let old = Wire.encode_reply rep in
  Bytes.set_uint8 old 1 0;
  (match Wire.decode_reply old with
  | Error (Wire.Bad_version 0) -> ()
  | _ -> Alcotest.fail "version-0 reply accepted");
  (* Version is checked before the opcode: a future message with an opcode
     we do not know must still report the version mismatch. *)
  let both = Wire.encode_request (req ()) in
  Bytes.set_uint8 both 1 7;
  Bytes.set_uint8 both 2 250;
  match Wire.decode_request both with
  | Error (Wire.Bad_version 7) -> ()
  | _ -> Alcotest.fail "expected Bad_version before Bad_op"

let test_size_accessors_match_encoding () =
  let get = req () in
  check int "request_size get" (Bytes.length (Wire.encode_request get))
    (Wire.request_size get);
  check int "get_request_size" (Bytes.length (Wire.encode_request get))
    (Wire.get_request_size ~key_len:5);
  let put = req ~op:Wire.Put ~value:(Bytes.create 321) () in
  check int "put_request_size" (Bytes.length (Wire.encode_request put))
    (Wire.put_request_size ~key_len:5 ~value_len:321);
  let rep = { Wire.id = 1L; status = Wire.Ok; value = Some (Bytes.create 77);
              client_ts = 0L } in
  check int "get_reply_size" (Bytes.length (Wire.encode_reply rep))
    (Wire.get_reply_size ~value_len:77);
  let prep = { Wire.id = 1L; status = Wire.Ok; value = None; client_ts = 0L } in
  check int "put_reply_size" (Bytes.length (Wire.encode_reply prep)) Wire.put_reply_size

let prop_decode_never_crashes =
  (* Fuzz: arbitrary bytes must decode to Ok/Error, never raise — a UDP
     server feeds attacker-controlled datagrams straight into these. *)
  QCheck.Test.make ~name:"decoders total on arbitrary input" ~count:1000
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let b = Bytes.of_string s in
      (match Wire.decode_request b with Ok _ | Error _ -> ());
      (match Wire.decode_reply b with Ok _ | Error _ -> ());
      true)

let prop_fragment_offer_never_crashes =
  QCheck.Test.make ~name:"reassembler total on arbitrary datagrams" ~count:500
    QCheck.(list_of_size Gen.(1 -- 20) (string_of_size Gen.(0 -- 100)))
    (fun datagrams ->
      let r = Fragment.create_reassembler () in
      List.iter (fun s -> ignore (Fragment.offer r (Bytes.of_string s))) datagrams;
      true)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec roundtrip" ~count:300
    QCheck.(quad small_string (option (string_of_size Gen.(0 -- 3000)))
              (int_bound 0xFFFF) (int_bound 1000000))
    (fun (key, value, rx, id) ->
      let op = match value with Some _ -> Wire.Put | None -> Wire.Get in
      let r =
        { Wire.id = Int64.of_int id; op; key;
          value = Option.map Bytes.of_string value;
          client_ts = Int64.of_int (id * 3); target_rx = rx }
      in
      match Wire.decode_request (Wire.encode_request r) with
      | Ok r' ->
          r'.Wire.key = key && r'.Wire.target_rx = rx
          && Option.map Bytes.to_string r'.Wire.value = value
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Fragment *)

let test_fragment_counts () =
  check int "empty -> 1" 1 (Fragment.fragments_for 0);
  check int "fits" 1 (Fragment.fragments_for Fragment.max_fragment_payload);
  check int "one over" 2 (Fragment.fragments_for (Fragment.max_fragment_payload + 1));
  check int "header size" 15 Fragment.header_size

let test_split_respects_mtu () =
  let msg = Bytes.create 10_000 in
  let frags = Fragment.split ~msg_id:5L msg in
  check int "fragment count" (Fragment.fragments_for 10_000) (List.length frags);
  List.iter
    (fun f ->
      if Bytes.length f > Netsim.Frame.max_udp_payload then
        Alcotest.fail "fragment exceeds UDP payload")
    frags

let test_reassembly_in_order () =
  let msg = Bytes.init 5000 (fun i -> Char.chr (i mod 256)) in
  let frags = Fragment.split ~msg_id:9L msg in
  let r = Fragment.create_reassembler () in
  let rec feed = function
    | [] -> Alcotest.fail "never completed"
    | [ last ] -> (
        match Fragment.offer r last with
        | Some (id, out) ->
            check Alcotest.int64 "msg id" 9L id;
            check Alcotest.bytes "payload" msg out
        | None -> Alcotest.fail "final fragment should complete")
    | f :: rest ->
        (match Fragment.offer r f with
        | None -> ()
        | Some _ -> Alcotest.fail "completed early");
        feed rest
  in
  feed frags;
  check int "nothing pending" 0 (Fragment.pending r)

let test_reassembly_out_of_order_and_interleaved () =
  let m1 = Bytes.init 4000 (fun i -> Char.chr (i mod 251)) in
  let m2 = Bytes.init 6000 (fun i -> Char.chr ((i * 7) mod 253)) in
  let f1 = Fragment.split ~msg_id:1L m1 in
  let f2 = Fragment.split ~msg_id:2L m2 in
  let r = Fragment.create_reassembler () in
  let completed = Hashtbl.create 4 in
  (* Interleave reversed fragment lists of two messages. *)
  let rec weave a b =
    match (a, b) with
    | [], [] -> ()
    | x :: xs, b ->
        (match Fragment.offer r x with
        | Some (id, out) -> Hashtbl.replace completed id out
        | None -> ());
        weave b xs
    | [], x :: xs ->
        (match Fragment.offer r x with
        | Some (id, out) -> Hashtbl.replace completed id out
        | None -> ());
        weave [] xs
  in
  weave (List.rev f1) (List.rev f2);
  check (Alcotest.option Alcotest.bytes) "m1" (Some m1) (Hashtbl.find_opt completed 1L);
  check (Alcotest.option Alcotest.bytes) "m2" (Some m2) (Hashtbl.find_opt completed 2L)

let test_duplicate_fragments_ignored () =
  let msg = Bytes.create 4000 in
  let frags = Fragment.split ~msg_id:3L msg in
  let r = Fragment.create_reassembler () in
  match frags with
  | first :: rest ->
      ignore (Fragment.offer r first);
      ignore (Fragment.offer r first);
      (* duplicate *)
      let final = List.fold_left (fun _ f -> Fragment.offer r f) None rest in
      (match final with
      | Some (_, out) -> check int "length preserved" 4000 (Bytes.length out)
      | None -> Alcotest.fail "should have completed")
  | [] -> Alcotest.fail "expected fragments"

let test_garbage_datagrams_ignored () =
  let r = Fragment.create_reassembler () in
  check bool "short" true (Fragment.offer r (Bytes.create 3) = None);
  let junk = Bytes.make 100 '\x42' in
  check bool "bad magic" true (Fragment.offer r junk = None);
  check int "no partials" 0 (Fragment.pending r)

let test_drop_incomplete () =
  let msg = Bytes.create 4000 in
  let r = Fragment.create_reassembler () in
  (match Fragment.split ~msg_id:8L msg with
  | f :: _ -> ignore (Fragment.offer r f)
  | [] -> ());
  check int "one pending" 1 (Fragment.pending r);
  Fragment.drop_incomplete r;
  check int "dropped" 0 (Fragment.pending r)

let prop_fragment_roundtrip =
  QCheck.Test.make ~name:"fragment/reassemble roundtrip, shuffled" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 20_000)) small_nat)
    (fun (payload, seed) ->
      let msg = Bytes.of_string payload in
      let frags = Array.of_list (Fragment.split ~msg_id:77L msg) in
      (* Fisher-Yates shuffle with a deterministic RNG. *)
      let rng = Dsim.Rng.create seed in
      for i = Array.length frags - 1 downto 1 do
        let j = Dsim.Rng.int rng (i + 1) in
        let tmp = frags.(i) in
        frags.(i) <- frags.(j);
        frags.(j) <- tmp
      done;
      let r = Fragment.create_reassembler () in
      let result =
        Array.fold_left
          (fun acc f -> match Fragment.offer r f with Some (_, m) -> Some m | None -> acc)
          None frags
      in
      result = Some msg)

(* Wire messages larger than one frame survive the full encode -> fragment
   -> reassemble -> decode pipeline. *)
let test_end_to_end_large_put () =
  let value = Bytes.init 300_000 (fun i -> Char.chr (i mod 256)) in
  let r = req ~op:Wire.Put ~value () in
  let encoded = Wire.encode_request r in
  let frags = Fragment.split ~msg_id:55L encoded in
  check bool "multi-frame" true (List.length frags > 100);
  let re = Fragment.create_reassembler () in
  let out = List.fold_left (fun acc f ->
      match Fragment.offer re f with Some (_, m) -> Some m | None -> acc)
      None frags
  in
  match out with
  | Some m -> (
      match Wire.decode_request m with
      | Ok r' -> check (Alcotest.option Alcotest.bytes) "value intact" (Some value) r'.Wire.value
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e)
  | None -> Alcotest.fail "reassembly failed"

let () =
  Alcotest.run "proto"
    [
      ( "wire",
        [
          Alcotest.test_case "get roundtrip" `Quick test_request_roundtrip_get;
          Alcotest.test_case "put roundtrip" `Quick test_request_roundtrip_put;
          Alcotest.test_case "empty vs absent value" `Quick
            test_empty_value_distinct_from_none;
          Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "version in header" `Quick test_version_in_header;
          Alcotest.test_case "unknown version rejected" `Quick
            test_unknown_version_rejected;
          Alcotest.test_case "size accessors" `Quick test_size_accessors_match_encoding;
        ]
        @ qsuite
            [ prop_request_roundtrip; prop_decode_never_crashes;
              prop_fragment_offer_never_crashes ] );
      ( "fragment",
        [
          Alcotest.test_case "counts" `Quick test_fragment_counts;
          Alcotest.test_case "split respects mtu" `Quick test_split_respects_mtu;
          Alcotest.test_case "in-order reassembly" `Quick test_reassembly_in_order;
          Alcotest.test_case "out of order + interleaved" `Quick
            test_reassembly_out_of_order_and_interleaved;
          Alcotest.test_case "duplicates ignored" `Quick test_duplicate_fragments_ignored;
          Alcotest.test_case "garbage ignored" `Quick test_garbage_datagrams_ignored;
          Alcotest.test_case "drop incomplete" `Quick test_drop_incomplete;
          Alcotest.test_case "end-to-end large put" `Quick test_end_to_end_large_put;
        ]
        @ qsuite [ prop_fragment_roundtrip ] );
    ]
