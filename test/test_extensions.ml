(* Tests for the extension features: trace capture/replay and offline
   threshold analysis (§6.2 workflow), and multi-NUMA operation (§3). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let small_spec =
  { Workload.Spec.default with Workload.Spec.n_keys = 20_000; n_large_keys = 100 }

let make_trace n =
  let dataset = Workload.Dataset.create small_spec in
  let gen = Workload.Generator.create dataset in
  Workload.Trace.capture gen ~n

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_capture () =
  let t = make_trace 1000 in
  check int "length" 1000 (Workload.Trace.length t);
  check bool "untimed" false (Workload.Trace.timed t);
  Array.iter
    (fun (r : Workload.Generator.request) ->
      if r.Workload.Generator.item_size < 1 then Alcotest.fail "bad size")
    (Workload.Trace.requests t)

let test_trace_save_load_roundtrip () =
  let t = make_trace 5000 in
  let path = Filename.temp_file "minos_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace.save path t;
      let t' = Workload.Trace.load path in
      check int "count preserved" (Workload.Trace.length t) (Workload.Trace.length t');
      let reqs' = Workload.Trace.requests t' in
      Array.iteri
        (fun i (r : Workload.Generator.request) ->
          let r' = reqs'.(i) in
          if
            r.Workload.Generator.op <> r'.Workload.Generator.op
            || r.Workload.Generator.key_id <> r'.Workload.Generator.key_id
            || r.Workload.Generator.item_size <> r'.Workload.Generator.item_size
            || r.Workload.Generator.is_large <> r'.Workload.Generator.is_large
          then Alcotest.failf "record %d differs" i)
        (Workload.Trace.requests t))

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "minos_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOT A TRACE FILE AT ALL";
      close_out oc;
      match Workload.Trace.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let test_trace_replayer () =
  let t = make_trace 5 in
  let next = Workload.Trace.replayer t in
  let reqs = Workload.Trace.requests t in
  for i = 0 to 4 do
    match next () with
    | Some r ->
        check int (Printf.sprintf "record %d" i) reqs.(i).Workload.Generator.key_id
          r.Workload.Generator.key_id
    | None -> Alcotest.fail "ended early"
  done;
  check bool "exhausted" true (next () = None);
  (* Looping replayer wraps around. *)
  let next = Workload.Trace.replayer ~loop:true t in
  for _ = 1 to 12 do
    if next () = None then Alcotest.fail "looping replayer must not end"
  done

let test_trace_offline_threshold_matches_online () =
  (* The §6.2 workflow: the threshold derived offline from a trace must
     agree with what the online controller converges to. *)
  let t = make_trace 100_000 in
  let offline = Workload.Trace.size_percentile t 0.99 in
  let cfg =
    Minos.Experiment.config_of_scale Minos.Experiment.quick_scale
  in
  let m = Minos.Experiment.run ~cfg Kvserver.Design.minos small_spec ~offered_mops:2.0 in
  let online = m.Kvserver.Metrics.final_threshold in
  (* The online value is a log-bucket upper bound; allow one bucket plus
     sampling noise. *)
  if abs_float (online -. offline) /. offline > 0.2 then
    Alcotest.failf "offline %.0f vs online %.0f" offline online

let test_trace_stats () =
  let t = make_trace 200_000 in
  let pl = Workload.Trace.percent_large t in
  if abs_float (pl -. 0.125) > 0.06 then Alcotest.failf "percent_large %.3f" pl;
  let mean = Workload.Trace.mean_item_size t in
  (* ~427B small mean + large contribution. *)
  if mean < 350.0 || mean > 900.0 then Alcotest.failf "mean item size %.0f" mean

let test_trace_driven_simulation () =
  (* Replaying a captured trace through the engine gives the same picture
     as the generator that produced it. *)
  let trace = make_trace 200_000 in
  let cfg = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  let replayed =
    Minos.Experiment.run_trace ~cfg Kvserver.Design.minos trace ~spec:small_spec
      ~offered_mops:2.0
  in
  let synthetic =
    Minos.Experiment.run ~cfg Kvserver.Design.minos small_spec ~offered_mops:2.0
  in
  Alcotest.(check bool) "stable" true replayed.Kvserver.Metrics.stable;
  let rel a b = abs_float (a -. b) /. b in
  if rel replayed.Kvserver.Metrics.p50_us synthetic.Kvserver.Metrics.p50_us > 0.25 then
    Alcotest.failf "replayed p50 %.1f vs synthetic %.1f"
      replayed.Kvserver.Metrics.p50_us synthetic.Kvserver.Metrics.p50_us;
  Alcotest.(check int)
    "same large-core allocation" synthetic.Kvserver.Metrics.final_large_cores
    replayed.Kvserver.Metrics.final_large_cores

(* ------------------------------------------------------------------ *)
(* NUMA *)

let test_numa_domains_scale_throughput () =
  let cfg = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  let one = Minos.Numa.run ~cfg ~domains:1 small_spec ~offered_mops:3.0 in
  let two = Minos.Numa.run ~cfg ~domains:2 small_spec ~offered_mops:6.0 in
  check bool "single stable" true one.Minos.Numa.stable;
  check bool "dual stable at 2x load" true two.Minos.Numa.stable;
  if two.Minos.Numa.total_throughput_mops < 1.9 *. one.Minos.Numa.total_throughput_mops
  then
    Alcotest.failf "2 domains: %.2f vs 1 domain: %.2f"
      two.Minos.Numa.total_throughput_mops one.Minos.Numa.total_throughput_mops;
  (* Latency distribution is per-domain, so p99 stays in the same band. *)
  if two.Minos.Numa.p99_us > 2.0 *. one.Minos.Numa.p99_us then
    Alcotest.failf "p99 degraded: %.1f vs %.1f" two.Minos.Numa.p99_us one.Minos.Numa.p99_us

let test_numa_validation () =
  Alcotest.check_raises "domains" (Invalid_argument "Numa.run: need at least one domain")
    (fun () -> ignore (Minos.Numa.run ~domains:0 small_spec ~offered_mops:1.0))

let () =
  Alcotest.run "extensions"
    [
      ( "trace",
        [
          Alcotest.test_case "capture" `Quick test_trace_capture;
          Alcotest.test_case "save/load roundtrip" `Quick test_trace_save_load_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_load_rejects_garbage;
          Alcotest.test_case "replayer" `Quick test_trace_replayer;
          Alcotest.test_case "offline threshold" `Slow
            test_trace_offline_threshold_matches_online;
          Alcotest.test_case "stats" `Quick test_trace_stats;
          Alcotest.test_case "trace-driven simulation" `Slow test_trace_driven_simulation;
        ] );
      ( "numa",
        [
          Alcotest.test_case "throughput scales" `Slow test_numa_domains_scale_throughput;
          Alcotest.test_case "validation" `Quick test_numa_validation;
        ] );
    ]
