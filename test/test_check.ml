(* Model-checker tests: the interleaving explorer must (a) pass the real
   Ring/Spinlock on exhaustively explored small histories, (b) catch the
   bugs seeded in Check.Model.Buggy, and (c) agree with the literal
   (no-sleep-set) enumeration on small histories. *)

open Check

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let no_violation name (st : Trace_sched.stats) =
  (match st.violation with
  | None -> ()
  | Some (msg, sched) ->
      Alcotest.failf "%s: violation %s after schedule %s" name msg
        (String.concat "," (List.map string_of_int sched)));
  check bool (name ^ ": search complete") true st.complete;
  check int (name ^ ": no truncated schedules") 0 st.truncated;
  check bool (name ^ ": explored at least one schedule") true (st.executions > 0)

let has_violation name (st : Trace_sched.stats) =
  match st.violation with
  | Some _ -> ()
  | None ->
      Alcotest.failf "%s: expected a violation, explored %d schedules" name
        st.executions

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_spsc () =
  let st =
    Trace_sched.explore
      (Model.ring_conservation ~capacity:4 ~producers:1 ~pushes_per_producer:2
         ~consumers:1 ~pops_per_consumer:2 ())
  in
  no_violation "spsc 2-push/2-pop" st

let test_ring_2p1c () =
  (* The acceptance history: 2 producers x 1 push + 1 consumer pop,
     explored exhaustively. *)
  let st =
    Trace_sched.explore
      (Model.ring_conservation ~capacity:2 ~producers:2 ~pushes_per_producer:1
         ~consumers:1 ~pops_per_consumer:1 ())
  in
  no_violation "2p/1c 3-op" st;
  (* Sleep sets prune most schedules, so count branch points rather than
     completed executions: ~14 executions but >100 explored-or-pruned. *)
  check bool "2p/1c 3-op: nontrivial state space" true
    (st.executions + st.pruned > 100)

let test_ring_2p1c_deeper () =
  let st =
    Trace_sched.explore
      (Model.ring_conservation ~capacity:2 ~producers:2 ~pushes_per_producer:1
         ~consumers:1 ~pops_per_consumer:2 ())
  in
  no_violation "2p/1c 4-op" st

let test_ring_wraparound () =
  (* Advance head/tail well past capacity first: slot reuse and sequence
     wrap-around under concurrency. *)
  let st =
    Trace_sched.explore
      (Model.ring_conservation ~pre_cycles:3 ~capacity:2 ~producers:1
         ~pushes_per_producer:2 ~consumers:1 ~pops_per_consumer:2 ())
  in
  no_violation "wraparound spsc" st

let test_ring_mpsc_bounded () =
  (* 3 producers under a preemption bound: bigger history, bounded
     search. *)
  let st =
    Trace_sched.explore ~preemption_bound:2
      (Model.ring_conservation ~capacity:4 ~producers:3 ~pushes_per_producer:1
         ~consumers:1 ~pops_per_consumer:2 ())
  in
  (match st.violation with
  | None -> ()
  | Some (msg, _) -> Alcotest.failf "mpsc bounded: violation %s" msg);
  check int "mpsc bounded: no truncated schedules" 0 st.truncated

let test_ring_shed_conservation () =
  (* Three pushes race one consumer over a 2-slot ring, so schedules
     exist where the full ring forces the shed path; no request may be
     lost or double-counted across served/queued/shed. *)
  let st =
    Trace_sched.explore
      (Model.ring_shed_conservation ~capacity:2 ~producers:1
         ~pushes_per_producer:3 ~consumers:1 ~pops_per_consumer:1 ())
  in
  no_violation "shed conservation 1p/1c" st

let test_ring_shed_conservation_deeper () =
  let st =
    Trace_sched.explore
      (Model.ring_shed_conservation ~capacity:2 ~producers:2
         ~pushes_per_producer:2 ~consumers:1 ~pops_per_consumer:2 ())
  in
  no_violation "shed conservation 2p/1c deeper" st

let test_ring_length_bounds () =
  let st =
    Trace_sched.explore
      (Model.ring_length_bounds ~capacity:2 ~producers:2 ~pushes_per_producer:1
         ~observations:2 ())
  in
  no_violation "length bounds" st

let test_sleep_set_cross_validation () =
  (* The sleep-set reduction must agree with the literal enumeration on
     violation-freeness, explore no more schedules, and — the real
     soundness criterion — reach exactly the same set of observable final
     outcomes. *)
  let outcomes = Hashtbl.create 16 in
  let scenario () : Trace_sched.scenario =
   fun () ->
    let r = Model.Ring.create ~capacity:2 in
    let pushed = ref false in
    let popped = ref None in
    let procs =
      [|
        (fun () -> pushed := Model.Ring.try_push r 7);
        (fun () -> popped := Model.Ring.try_pop r);
      |]
    in
    let final () =
      let drained = match Model.Ring.try_pop r with Some v -> [ v ] | None -> [] in
      Hashtbl.replace outcomes (!pushed, !popped, drained) ()
    in
    (procs, final)
  in
  let collect ~sleep_sets =
    Hashtbl.clear outcomes;
    let st = Trace_sched.explore ~sleep_sets (scenario ()) in
    let keys = Hashtbl.fold (fun k () acc -> k :: acc) outcomes [] in
    (st, List.sort compare keys)
  in
  let reduced, reduced_outcomes = collect ~sleep_sets:true in
  let literal, literal_outcomes = collect ~sleep_sets:false in
  no_violation "reduced" reduced;
  no_violation "literal" literal;
  check bool "reduction explores no more schedules" true
    (reduced.executions <= literal.executions);
  check bool "reduction reaches every outcome" true
    (reduced_outcomes = literal_outcomes);
  check bool "multiple outcomes reachable" true (List.length literal_outcomes > 1)

(* ------------------------------------------------------------------ *)
(* Spinlock *)

let test_spinlock_mutex () =
  let st =
    Trace_sched.explore (Model.spinlock_mutex ~domains:2 ~iters:1 ~retries:2 ())
  in
  no_violation "2-domain mutex" st;
  check bool "2-domain mutex: nontrivial state space" true
    (st.executions + st.pruned > 10)

let test_spinlock_mutex_two_rounds () =
  let st =
    Trace_sched.explore (Model.spinlock_mutex ~domains:2 ~iters:2 ~retries:2 ())
  in
  no_violation "2-domain mutex, 2 rounds" st

(* ------------------------------------------------------------------ *)
(* The checker itself: seeded bugs must be caught *)

let test_catches_late_write () =
  let st = Trace_sched.explore (Model.Buggy.late_write_ring_scenario ()) in
  has_violation "late-write ring" st

let test_catches_tas_lock () =
  let st = Trace_sched.explore (Model.Buggy.tas_lock_scenario ~domains:2 ()) in
  has_violation "non-atomic TAS lock" st

let test_catches_tas_lock_without_sleep_sets () =
  let st =
    Trace_sched.explore ~sleep_sets:false
      (Model.Buggy.tas_lock_scenario ~domains:2 ())
  in
  has_violation "non-atomic TAS lock (literal)" st

let () =
  Alcotest.run "check"
    [
      ( "ring",
        [
          Alcotest.test_case "spsc conservation" `Quick test_ring_spsc;
          Alcotest.test_case "2p/1c exhaustive" `Quick test_ring_2p1c;
          Alcotest.test_case "2p/1c deeper" `Slow test_ring_2p1c_deeper;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "mpsc preemption-bounded" `Slow
            test_ring_mpsc_bounded;
          Alcotest.test_case "shed conservation" `Quick
            test_ring_shed_conservation;
          Alcotest.test_case "shed conservation deeper" `Slow
            test_ring_shed_conservation_deeper;
          Alcotest.test_case "length bounds" `Quick test_ring_length_bounds;
          Alcotest.test_case "sleep-set cross-validation" `Quick
            test_sleep_set_cross_validation;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutex;
          Alcotest.test_case "mutual exclusion, 2 rounds" `Slow
            test_spinlock_mutex_two_rounds;
        ] );
      ( "checker-validation",
        [
          Alcotest.test_case "catches late slot write" `Quick
            test_catches_late_write;
          Alcotest.test_case "catches non-atomic TAS" `Quick
            test_catches_tas_lock;
          Alcotest.test_case "catches non-atomic TAS (literal)" `Quick
            test_catches_tas_lock_without_sleep_sets;
        ] );
    ]
