(* Tests for the statistics library: vectors, quantiles, histograms,
   summaries, windows and reservoirs. *)

open Stats

let check = Alcotest.check
let int = Alcotest.int
let approx t = Alcotest.float t

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* ------------------------------------------------------------------ *)
(* Float_vec *)

let test_float_vec_basics () =
  let v = Float_vec.create ~capacity:2 () in
  check int "empty" 0 (Float_vec.length v);
  for i = 1 to 100 do
    Float_vec.push v (float_of_int i)
  done;
  check int "length" 100 (Float_vec.length v);
  check (approx 0.0) "get" 42.0 (Float_vec.get v 41);
  check (approx 0.0) "fold sum" 5050.0 (Float_vec.fold ( +. ) 0.0 v);
  Alcotest.check_raises "oob" (Invalid_argument "Float_vec.get: index out of bounds")
    (fun () -> ignore (Float_vec.get v 100));
  Float_vec.clear v;
  check int "cleared" 0 (Float_vec.length v)

let test_float_vec_to_array () =
  let v = Float_vec.create () in
  List.iter (Float_vec.push v) [ 3.0; 1.0; 2.0 ];
  check (Alcotest.array (approx 0.0)) "to_array" [| 3.0; 1.0; 2.0 |]
    (Float_vec.to_array v)

(* ------------------------------------------------------------------ *)
(* Quantile *)

let test_quantile_nearest_rank () =
  let sorted = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check (approx 0.0) "p50 of 1..100" 50.0 (Quantile.of_sorted sorted 0.5);
  check (approx 0.0) "p99 of 1..100" 99.0 (Quantile.of_sorted sorted 0.99);
  check (approx 0.0) "p100" 100.0 (Quantile.of_sorted sorted 1.0);
  check (approx 0.0) "p1" 1.0 (Quantile.of_sorted sorted 0.01)

let test_quantile_unsorted_input () =
  check (approx 0.0) "of_array sorts" 3.0 (Quantile.of_array [| 5.0; 1.0; 3.0 |] 0.5)

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.of_sorted: empty sample")
    (fun () -> ignore (Quantile.of_sorted [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile.of_sorted: q out of (0, 1]") (fun () ->
      ignore (Quantile.of_sorted [| 1.0 |] 1.5))

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantile lies within sample bounds" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
              (float_range 0.01 1.0))
    (fun (xs, q) ->
      let arr = Array.of_list xs in
      let v = Quantile.of_array arr q in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      lo <= v && v <= hi)

let prop_quantile_monotone_in_q =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:300
    QCheck.(triple (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
              (float_range 0.01 1.0) (float_range 0.01 1.0))
    (fun (xs, q1, q2) ->
      let arr = Array.of_list xs in
      let lo = min q1 q2 and hi = max q1 q2 in
      Quantile.of_array arr lo <= Quantile.of_array arr hi)

let test_many_of_vec () =
  let v = Float_vec.create () in
  for i = 1 to 100 do
    Float_vec.push v (float_of_int i)
  done;
  check (Alcotest.list (approx 0.0)) "many" [ 50.0; 95.0; 99.0 ]
    (Quantile.many_of_vec v [ 0.5; 0.95; 0.99 ]);
  check (approx 1e-9) "mean" 50.5 (Quantile.mean_of_vec v)

(* ------------------------------------------------------------------ *)
(* Log_histogram *)

let test_hist_record_and_total () =
  let h = Log_histogram.create ~min_value:1.0 ~max_value:1.0e6 () in
  check Alcotest.bool "empty" true (Log_histogram.is_empty h);
  Log_histogram.record h 100.0;
  Log_histogram.record_n h 5000.0 3.0;
  check (approx 1e-9) "total" 4.0 (Log_histogram.total h)

let test_hist_quantile_resolution () =
  (* The histogram quantile over-estimates by at most one bucket (~7.5%
     with 32 buckets per decade). *)
  let h = Log_histogram.create ~min_value:1.0 ~max_value:1.0e6 () in
  for i = 1 to 1000 do
    Log_histogram.record h (float_of_int i)
  done;
  let q99 = Log_histogram.quantile h 0.99 in
  if q99 < 990.0 || q99 > 990.0 *. 1.16 then
    Alcotest.failf "p99 %.1f outside [990, 1148]" q99

let test_hist_quantile_extremes () =
  let h = Log_histogram.create ~min_value:1.0 ~max_value:1000.0 () in
  Log_histogram.record h 0.5;
  (* below min: first bucket *)
  Log_histogram.record h 5000.0;
  (* above max: last bucket *)
  let q_low = Log_histogram.quantile h 0.5 in
  if q_low > 1.2 then Alcotest.failf "low quantile %.2f should be ~min" q_low;
  let q_high = Log_histogram.quantile h 1.0 in
  if q_high < 1000.0 then Alcotest.failf "high quantile %.0f should be >= max" q_high

let test_hist_merge () =
  let a = Log_histogram.create ~min_value:1.0 ~max_value:1.0e3 () in
  let b = Log_histogram.create ~min_value:1.0 ~max_value:1.0e3 () in
  Log_histogram.record a 10.0;
  Log_histogram.record b 10.0;
  Log_histogram.record b 100.0;
  Log_histogram.merge_into ~dst:a b;
  check (approx 1e-9) "merged total" 3.0 (Log_histogram.total a);
  let c = Log_histogram.create ~min_value:2.0 ~max_value:1.0e3 () in
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Log_histogram.merge_into: layout mismatch") (fun () ->
      Log_histogram.merge_into ~dst:a c)

let test_hist_smooth () =
  let prev = Log_histogram.create ~min_value:1.0 ~max_value:1.0e3 () in
  let cur = Log_histogram.create ~min_value:1.0 ~max_value:1.0e3 () in
  Log_histogram.record_n prev 10.0 10.0;
  Log_histogram.record_n cur 10.0 20.0;
  let s = Log_histogram.smooth ~prev ~current:cur ~alpha:0.9 in
  (* 0.1 * 10 + 0.9 * 20 = 19 *)
  check (approx 1e-9) "ema total" 19.0 (Log_histogram.total s);
  (* alpha = 1 keeps only the new epoch *)
  let s1 = Log_histogram.smooth ~prev ~current:cur ~alpha:1.0 in
  check (approx 1e-9) "alpha=1" 20.0 (Log_histogram.total s1)

let test_hist_reset_and_copy () =
  let h = Log_histogram.create ~min_value:1.0 ~max_value:1.0e3 () in
  Log_histogram.record h 50.0;
  let c = Log_histogram.copy h in
  Log_histogram.reset h;
  check Alcotest.bool "reset empties" true (Log_histogram.is_empty h);
  check (approx 1e-9) "copy unaffected" 1.0 (Log_histogram.total c)

let prop_hist_quantile_close_to_exact =
  QCheck.Test.make ~name:"histogram p-quantile within one bucket of exact" ~count:50
    QCheck.(list_of_size Gen.(10 -- 200) (float_range 1.0 100000.0))
    (fun xs ->
      let h = Log_histogram.create ~min_value:1.0 ~max_value:1.0e6 () in
      List.iter (Log_histogram.record h) xs;
      let exact = Quantile.of_array (Array.of_list xs) 0.9 in
      let est = Log_histogram.quantile h 0.9 in
      (* upper bound of the containing bucket: est in [exact, exact*gamma^2) *)
      est >= exact *. 0.93 && est <= exact *. 1.16)

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_moments () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check int "count" 8 (Summary.count s);
  check (approx 1e-9) "mean" 5.0 (Summary.mean s);
  check (approx 1e-9) "sample variance" (32.0 /. 7.0) (Summary.variance s);
  check (approx 1e-9) "min" 2.0 (Summary.min s);
  check (approx 1e-9) "max" 9.0 (Summary.max s);
  check (approx 1e-9) "sum" 40.0 (Summary.sum s)

let test_summary_merge_equals_pooled () =
  let a = Summary.create () and b = Summary.create () and all = Summary.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Summary.add a) xs;
  List.iter (Summary.add b) ys;
  List.iter (Summary.add all) (xs @ ys);
  let m = Summary.merge a b in
  check (approx 1e-9) "merged mean" (Summary.mean all) (Summary.mean m);
  check (approx 1e-6) "merged variance" (Summary.variance all) (Summary.variance m);
  check int "merged count" (Summary.count all) (Summary.count m)

let test_summary_empty () =
  let s = Summary.create () in
  check (approx 0.0) "mean of empty" 0.0 (Summary.mean s);
  check (approx 0.0) "variance of empty" 0.0 (Summary.variance s)

(* ------------------------------------------------------------------ *)
(* Windowed *)

let test_windowed_routing () =
  let w = Windowed.create ~width:10.0 () in
  Windowed.add w ~time:1.0 100.0;
  Windowed.add w ~time:9.9 200.0;
  Windowed.add w ~time:10.0 300.0;
  Windowed.add w ~time:25.0 400.0;
  let windows = Windowed.windows w in
  check int "three windows" 3 (List.length windows);
  let starts = List.map (fun x -> x.Windowed.start_time) windows in
  check (Alcotest.list (approx 1e-9)) "window starts" [ 0.0; 10.0; 20.0 ] starts

let test_windowed_quantile_series () =
  let w = Windowed.create ~width:10.0 () in
  for i = 1 to 100 do
    Windowed.add w ~time:5.0 (float_of_int i)
  done;
  Windowed.add w ~time:15.0 7.0;
  (match Windowed.quantile_series w 0.99 with
  | [ (t0, q0); (t1, q1) ] ->
      check (approx 1e-9) "t0" 0.0 t0;
      check (approx 0.0) "q0" 99.0 q0;
      check (approx 1e-9) "t1" 10.0 t1;
      check (approx 0.0) "q1" 7.0 q1
  | _ -> Alcotest.fail "expected two windows");
  match Windowed.mean_series w with
  | [ (_, m0); (_, m1) ] ->
      check (approx 1e-9) "mean0" 50.5 m0;
      check (approx 1e-9) "mean1" 7.0 m1
  | _ -> Alcotest.fail "expected two windows"

let test_windowed_out_of_order () =
  let w = Windowed.create ~width:1.0 () in
  Windowed.add w ~time:5.5 1.0;
  Windowed.add w ~time:2.5 2.0;
  (* earlier timestamp arrives later *)
  let starts = List.map (fun x -> x.Windowed.start_time) (Windowed.windows w) in
  check (Alcotest.list (approx 1e-9)) "sorted" [ 2.0; 5.0 ] starts

(* ------------------------------------------------------------------ *)
(* Reservoir *)

let test_reservoir_under_capacity () =
  let r = Reservoir.create ~capacity:10 () in
  List.iter (Reservoir.add r) [ 5.0; 1.0; 3.0 ];
  check int "seen" 3 (Reservoir.seen r);
  check int "size" 3 (Reservoir.size r);
  let sorted = Reservoir.to_array r in
  Array.sort compare sorted;
  check (Alcotest.array (approx 0.0)) "contents" [| 1.0; 3.0; 5.0 |] sorted

let test_reservoir_bounded () =
  let r = Reservoir.create ~capacity:100 () in
  for i = 1 to 10_000 do
    Reservoir.add r (float_of_int i)
  done;
  check int "seen all" 10_000 (Reservoir.seen r);
  check int "bounded" 100 (Reservoir.size r);
  (* A uniform subsample of 1..10000 should have a median far from the
     extremes. *)
  let q50 = Reservoir.quantile r 0.5 in
  if q50 < 2000.0 || q50 > 8000.0 then
    Alcotest.failf "median %.0f suggests biased sampling" q50

let () =
  Alcotest.run "stats"
    [
      ( "float_vec",
        [
          Alcotest.test_case "basics" `Quick test_float_vec_basics;
          Alcotest.test_case "to_array" `Quick test_float_vec_to_array;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "nearest rank" `Quick test_quantile_nearest_rank;
          Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "errors" `Quick test_quantile_errors;
          Alcotest.test_case "many + mean" `Quick test_many_of_vec;
        ]
        @ qsuite [ prop_quantile_bounds; prop_quantile_monotone_in_q ] );
      ( "log_histogram",
        [
          Alcotest.test_case "record and total" `Quick test_hist_record_and_total;
          Alcotest.test_case "quantile resolution" `Quick test_hist_quantile_resolution;
          Alcotest.test_case "quantile extremes" `Quick test_hist_quantile_extremes;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "smooth" `Quick test_hist_smooth;
          Alcotest.test_case "reset and copy" `Quick test_hist_reset_and_copy;
        ]
        @ qsuite [ prop_hist_quantile_close_to_exact ] );
      ( "summary",
        [
          Alcotest.test_case "moments" `Quick test_summary_moments;
          Alcotest.test_case "merge" `Quick test_summary_merge_equals_pooled;
          Alcotest.test_case "empty" `Quick test_summary_empty;
        ] );
      ( "windowed",
        [
          Alcotest.test_case "routing" `Quick test_windowed_routing;
          Alcotest.test_case "quantile series" `Quick test_windowed_quantile_series;
          Alcotest.test_case "out of order" `Quick test_windowed_out_of_order;
        ] );
      ( "reservoir",
        [
          Alcotest.test_case "under capacity" `Quick test_reservoir_under_capacity;
          Alcotest.test_case "bounded" `Quick test_reservoir_bounded;
        ] );
    ]
