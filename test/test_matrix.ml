(* Matrix test: every server design against every Table 1 workload
   profile, at a moderate load.  Asserts the invariants that must hold
   everywhere: request conservation, stability, sane percentile ordering,
   and Minos' tail dominance over HKH. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let cfg =
  {
    (Minos.Experiment.config_of_scale Minos.Experiment.quick_scale) with
    Kvserver.Config.duration_us = 80_000.0;
    warmup_us = 25_000.0;
    epoch_us = 10_000.0;
  }

let profiles =
  List.map
    (fun (p_large, s_large_max) ->
      { Workload.Spec.default with Workload.Spec.p_large; s_large_max })
    Workload.Spec.table1_profiles

(* A load every profile can sustain (pL = 0.75 is NIC-bound near 2.1). *)
let offered_mops = 1.5

let run design spec = Minos.Experiment.run ~cfg design spec ~offered_mops

let test_invariants_for design () =
  List.iter
    (fun spec ->
      let m = run design spec in
      let label =
        Printf.sprintf "%s pL=%.4f sL=%d" m.Kvserver.Metrics.design
          spec.Workload.Spec.p_large spec.Workload.Spec.s_large_max
      in
      check bool (label ^ " stable") true m.Kvserver.Metrics.stable;
      let processed = Array.fold_left ( + ) 0 m.Kvserver.Metrics.per_core_ops in
      check int (label ^ " conservation") m.Kvserver.Metrics.issued
        (processed + m.Kvserver.Metrics.in_flight_end);
      check bool (label ^ " ordering") true
        (m.Kvserver.Metrics.p50_us <= m.Kvserver.Metrics.p99_us
        && m.Kvserver.Metrics.p99_us <= m.Kvserver.Metrics.p999_us);
      check bool (label ^ " floor") true (m.Kvserver.Metrics.p50_us > 4.0);
      if abs_float (m.Kvserver.Metrics.throughput_mops -. offered_mops) > 0.15 then
        Alcotest.failf "%s throughput %.2f" label m.Kvserver.Metrics.throughput_mops)
    profiles

let test_minos_dominates_everywhere () =
  (* On every profile, Minos' p99 beats HKH's at this load. *)
  List.iter
    (fun spec ->
      let minos = run Kvserver.Design.minos spec in
      let hkh = run Kvserver.Design.hkh spec in
      if not (minos.Kvserver.Metrics.p99_us < hkh.Kvserver.Metrics.p99_us) then
        Alcotest.failf "pL=%.4f sL=%d: Minos %.1f vs HKH %.1f"
          spec.Workload.Spec.p_large spec.Workload.Spec.s_large_max
          minos.Kvserver.Metrics.p99_us hkh.Kvserver.Metrics.p99_us)
    profiles

let test_minos_allocation_scales_with_pl () =
  (* More large traffic -> at least as many large cores. *)
  let large_cores p =
    (run Kvserver.Design.minos (Workload.Spec.with_p_large Workload.Spec.default p))
      .Kvserver.Metrics.final_large_cores
  in
  let l0 = large_cores 0.0625
  and l1 = large_cores 0.25
  and l2 = large_cores 0.75 in
  check bool "monotone allocation" true (l0 <= l1 && l1 <= l2);
  check bool "heavy traffic gets >= 2 cores" true (l2 >= 2)

let () =
  Alcotest.run "matrix"
    [
      ( "invariants",
        List.map
          (fun design ->
            Alcotest.test_case (Minos.Experiment.design_name design) `Slow
              (test_invariants_for design))
          Minos.Experiment.all_designs );
      ( "cross-design",
        [
          Alcotest.test_case "minos dominates everywhere" `Slow
            test_minos_dominates_everywhere;
          Alcotest.test_case "allocation scales with pL" `Slow
            test_minos_allocation_scales_with_pl;
        ] );
    ]
