(* Tests for the Figures API itself (quick-scale): data-shape properties
   of each figure's returned structure, beyond the paper-claim assertions
   in test_integration. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let scale = Minos.Experiment.quick_scale

let test_fig2_series_complete () =
  let series = Minos.Figures.fig2 ~requests:30_000 ~loads:[ 0.2; 0.6 ] () in
  (* 3 disciplines x 4 K values. *)
  check int "12 series" 12 (List.length series);
  List.iter
    (fun (s : Minos.Figures.fig2_series) ->
      check int "two points" 2 (List.length s.Minos.Figures.points);
      List.iter
        (fun (_, p99) -> if p99 < 1.0 then Alcotest.fail "p99 below service time")
        s.Minos.Figures.points)
    series

let test_fig2_k_monotone () =
  (* At fixed load and discipline, p99 is nondecreasing in K. *)
  let series = Minos.Figures.fig2 ~requests:60_000 ~loads:[ 0.5 ] () in
  List.iter
    (fun d ->
      let p99_of k =
        match
          List.find_opt
            (fun s -> s.Minos.Figures.discipline = d && s.Minos.Figures.k = k)
            series
        with
        | Some s -> snd (List.hd s.Minos.Figures.points)
        | None -> Alcotest.fail "missing series"
      in
      let p1 = p99_of 1.0 and p100 = p99_of 100.0 and p1000 = p99_of 1000.0 in
      check bool "K=100 worse than K=1" true (p100 >= p1);
      check bool "K=1000 worse than K=100" true (p1000 >= p100))
    [ Queueing.Models.Per_core_queues; Queueing.Models.Single_queue;
      Queueing.Models.Work_stealing ]

let test_fig9_shares_sum_to_one () =
  let rows = Minos.Figures.fig9 ~scale ~p_values:[ 0.125 ] () in
  List.iter
    (fun r ->
      let sum a = Array.fold_left ( +. ) 0.0 a in
      if abs_float (sum r.Minos.Figures.ops_share -. 1.0) > 0.01 then
        Alcotest.fail "ops shares do not sum to 1";
      if abs_float (sum r.Minos.Figures.packet_share -. 1.0) > 0.01 then
        Alcotest.fail "packet shares do not sum to 1";
      check bool "has small pool" true (r.Minos.Figures.n_small >= 1))
    rows

let test_fig8_sampling_monotone () =
  let series =
    Minos.Figures.fig8 ~scale ~samplings:[ 1.0; 0.5 ] ~loads:[ 1.0 ] ()
  in
  match series with
  | [ full; half ] ->
      let util (s : Minos.Figures.fig8_series) =
        (snd (List.hd s.Minos.Figures.points)).Kvserver.Metrics.nic_tx_utilization
      in
      check bool "less sampling, less nic" true (util half < util full)
  | _ -> Alcotest.fail "expected two series"

let test_fig4_has_large_percentiles () =
  let curves = Minos.Figures.fig4 ~scale ~loads:[ 2.0 ] () in
  check int "two designs" 2 (List.length curves);
  List.iter
    (fun (c : Minos.Figures.curve) ->
      let _, m = List.hd c.Minos.Figures.points in
      check bool "large p99 measured" true
        ((not (Float.is_nan m.Kvserver.Metrics.large_p99_us))
        && m.Kvserver.Metrics.large_p99_us > m.Kvserver.Metrics.p99_us))
    curves

let test_fanout_analysis () =
  let rows = Minos.Figures.fanout ~scale ~fanouts:[ 1; 50 ] ~load:3.0 () in
  match rows with
  | [ one; fifty ] ->
      (* Fan-out response times are monotone in N for both designs. *)
      check bool "minos monotone" true
        (fifty.Minos.Figures.minos_p99_us >= one.Minos.Figures.minos_p99_us);
      check bool "hkh monotone" true
        (fifty.Minos.Figures.hkh_p99_us >= one.Minos.Figures.hkh_p99_us);
      (* Minos wins at any fan-out; the relative gap is largest at N=1. *)
      check bool "minos wins at N=1" true
        (one.Minos.Figures.minos_p99_us < one.Minos.Figures.hkh_p99_us);
      check bool "minos wins at N=50" true
        (fifty.Minos.Figures.minos_p99_us < fifty.Minos.Figures.hkh_p99_us);
      let gap (r : Minos.Figures.fanout_row) =
        r.Minos.Figures.hkh_p99_us /. r.Minos.Figures.minos_p99_us
      in
      check bool "gap shrinks with fanout" true (gap one > gap fifty)
  | _ -> Alcotest.fail "expected two rows"

let test_print_functions_do_not_raise () =
  (* The cheap printers; the expensive ones are exercised by bench runs. *)
  Minos.Figures.print_fig1 ();
  Minos.Figures.print_table1 ();
  Format.printf "%a@." Kvserver.Metrics.pp_row
    (Minos.Experiment.run
       ~cfg:(Minos.Experiment.config_of_scale scale)
       Kvserver.Design.hkh Workload.Spec.default ~offered_mops:1.0);
  Format.printf "%a@." Workload.Spec.pp Workload.Spec.default;
  check bool "printed" true true

let () =
  Alcotest.run "figures"
    [
      ( "fig2",
        [
          Alcotest.test_case "series complete" `Quick test_fig2_series_complete;
          Alcotest.test_case "monotone in K" `Slow test_fig2_k_monotone;
        ] );
      ("fig9", [ Alcotest.test_case "shares sum to one" `Slow test_fig9_shares_sum_to_one ]);
      ("fig8", [ Alcotest.test_case "sampling monotone" `Slow test_fig8_sampling_monotone ]);
      ("fig4", [ Alcotest.test_case "large percentiles" `Slow test_fig4_has_large_percentiles ]);
      ("fanout", [ Alcotest.test_case "analysis" `Slow test_fanout_analysis ]);
      ( "printers",
        [ Alcotest.test_case "do not raise" `Quick test_print_functions_do_not_raise ] );
    ]
