(* Tests for the server library: cost model, configuration, the Minos
   control loop, and engine/design mechanics on miniature runs. *)

open Kvserver

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let approx t = Alcotest.float t

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* ------------------------------------------------------------------ *)
(* Cost_model *)

let test_reply_sizes () =
  (* GET replies carry the value; PUT replies do not. *)
  let g = Cost_model.reply_payload Cost_model.Get ~item_size:1000 in
  let p = Cost_model.reply_payload Cost_model.Put ~item_size:1000 in
  check bool "get reply bigger" true (g > 1000);
  check bool "put reply small" true (p < 100)

let test_request_sizes () =
  let g = Cost_model.request_payload Cost_model.Get ~item_size:500_000 in
  let p = Cost_model.request_payload Cost_model.Put ~item_size:500_000 in
  check bool "get request small regardless of item" true (g < 100);
  check bool "put request carries value" true (p > 500_000)

let test_frames () =
  check int "small get: 1 frame reply" 1
    (Cost_model.reply_frames Cost_model.Get ~item_size:100);
  check bool "large get: many frames" true
    (Cost_model.reply_frames Cost_model.Get ~item_size:500_000 > 300);
  check int "put reply: 1 frame" 1 (Cost_model.reply_frames Cost_model.Put ~item_size:500_000);
  check bool "large put request: many frames" true
    (Cost_model.request_frames Cost_model.Put ~item_size:500_000 > 300)

let test_cpu_monotone_in_size () =
  let c = Cost_model.default in
  let t1 = Cost_model.cpu_time c Cost_model.Get ~item_size:10 in
  let t2 = Cost_model.cpu_time c Cost_model.Get ~item_size:10_000 in
  let t3 = Cost_model.cpu_time c Cost_model.Get ~item_size:500_000 in
  check bool "monotone" true (t1 < t2 && t2 < t3);
  (* Calibration targets (DESIGN.md §3): ~1 µs small, tens of µs for
     250 KB. *)
  if t1 > 2.0 then Alcotest.failf "small GET cpu %.2f too high" t1;
  let t250 = Cost_model.cpu_time c Cost_model.Get ~item_size:250_000 in
  if t250 < 30.0 || t250 > 150.0 then Alcotest.failf "250KB cpu %.1f out of band" t250

let test_cost_fn () =
  (* Packets: GET cost follows the reply, PUT cost follows the request. *)
  let large = 500_000 in
  check (approx 1e-9) "get packets"
    (float_of_int (Cost_model.reply_frames Cost_model.Get ~item_size:large))
    (Cost_model.request_cost Cost_model.Packets Cost_model.Get ~item_size:large);
  check (approx 1e-9) "put packets"
    (float_of_int (Cost_model.request_frames Cost_model.Put ~item_size:large))
    (Cost_model.request_cost Cost_model.Packets Cost_model.Put ~item_size:large);
  check (approx 1e-9) "bytes" 1234.0
    (Cost_model.request_cost Cost_model.Bytes Cost_model.Get ~item_size:1234);
  check (approx 1e-9) "const+bytes" 1334.0
    (Cost_model.request_cost (Cost_model.Constant_plus_bytes 100.0) Cost_model.Get
       ~item_size:1234);
  check Alcotest.string "names" "packets" (Cost_model.cost_fn_name Cost_model.Packets)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_validate () =
  check bool "default ok" true (Config.validate Config.default = Ok ());
  let bad c = Config.validate c <> Ok () in
  check bool "cores" true (bad { Config.default with Config.cores = 1 });
  check bool "batch" true (bad { Config.default with Config.batch = 0 });
  check bool "sampling" true (bad { Config.default with Config.sampling = 0.0 });
  check bool "warmup" true
    (bad { Config.default with Config.warmup_us = 2.0e6; duration_us = 1.0e6 });
  check bool "alpha" true (bad { Config.default with Config.alpha = 1.5 });
  check bool "handoff" true (bad { Config.default with Config.handoff_cores = 8 })

(* ------------------------------------------------------------------ *)
(* Control *)

let size_hist () =
  Stats.Log_histogram.create ~buckets_per_decade:32 ~min_value:1.0 ~max_value:2.0e6 ()

(* A synthetic histogram shaped like the default workload. *)
let default_like_hist ?(n = 100_000) ?(p_large = 0.00125) () =
  let h = size_hist () in
  let rng = Dsim.Rng.create 2 in
  for _ = 1 to n do
    let size =
      if Dsim.Rng.unit_float rng < p_large then
        float_of_int (1500 + Dsim.Rng.int rng 498_500)
      else if Dsim.Rng.unit_float rng < 0.4 then float_of_int (1 + Dsim.Rng.int rng 13)
      else float_of_int (14 + Dsim.Rng.int rng 1387)
    in
    Stats.Log_histogram.record h size
  done;
  h

let compute ?threshold_override ?extra_large_core hist =
  Control.compute ~cores:8 ~cost_fn:Cost_model.Packets ~percentile:0.99
    ?threshold_override ?extra_large_core hist

let test_control_initial () =
  let p = Control.initial ~cores:8 in
  check int "all small" 8 p.Control.n_small;
  check int "no large" 0 p.Control.n_large;
  check bool "infinite threshold" true (p.Control.threshold = infinity);
  check int "standby is last" 7 (Control.standby_core ~cores:8)

let test_control_empty_hist_is_initial () =
  let p = compute (size_hist ()) in
  check int "standby mode" 0 p.Control.n_large

let test_control_threshold_is_p99 () =
  let h = default_like_hist () in
  let p = compute h in
  let q99 = Stats.Log_histogram.quantile h 0.99 in
  check (approx 1e-9) "threshold = hist p99" q99 p.Control.threshold;
  (* For the default-like workload the p99 of sizes sits inside the small
     class (~1.2-1.5 KB). *)
  if p.Control.threshold < 900.0 || p.Control.threshold > 1600.0 then
    Alcotest.failf "threshold %.0f outside expected band" p.Control.threshold

let test_control_default_allocates_one_large () =
  let p = compute (default_like_hist ()) in
  check int "one large core (paper, default workload)" 1 p.Control.n_large;
  check int "seven small" 7 p.Control.n_small

let test_control_heavy_large_allocates_more () =
  let p = compute (default_like_hist ~p_large:0.0075 ()) in
  (* pL = 0.75%: the paper's Fig 10 shows ~4 large cores. *)
  if p.Control.n_large < 2 || p.Control.n_large > 5 then
    Alcotest.failf "n_large %d out of band for pL=0.75" p.Control.n_large

let test_control_all_small_when_no_large () =
  let h = size_hist () in
  for i = 1 to 1000 do
    Stats.Log_histogram.record h (float_of_int (1 + (i mod 100)))
  done;
  let p = compute h in
  check int "standby mode" 0 p.Control.n_large;
  (* route still sends an (unexpected) large request somewhere: the
     standby core. *)
  check (Alcotest.option int) "routes to standby" (Some 0) (Control.route p 5000.0);
  check int "standby physical id" 7 (Control.large_core_id p ~cores:8 0)

let test_control_ranges_cover_and_are_ordered () =
  let p = compute (default_like_hist ~p_large:0.01 ()) in
  let n = Array.length p.Control.ranges in
  check int "ranges = n_large" p.Control.n_large n;
  if n > 0 then begin
    let lo0, _ = p.Control.ranges.(0) in
    check (approx 1e-9) "first range starts at threshold" p.Control.threshold lo0;
    for i = 0 to n - 2 do
      let _, hi = p.Control.ranges.(i) in
      let lo', _ = p.Control.ranges.(i + 1) in
      check (approx 1e-9) "contiguous" hi lo'
    done;
    let _, last_hi = p.Control.ranges.(n - 1) in
    check bool "open ended" true (last_hi = infinity)
  end

let test_control_route () =
  let p = compute (default_like_hist ~p_large:0.01 ()) in
  check (Alcotest.option int) "small routes to None" None
    (Control.route p (p.Control.threshold -. 1.0));
  (match Control.route p (p.Control.threshold +. 1.0) with
  | Some 0 -> ()
  | Some j -> Alcotest.failf "smallest large should go to core 0, got %d" j
  | None -> Alcotest.fail "should be large");
  (match Control.route p 1.0e9 with
  | Some j -> check int "oversized goes to last" (p.Control.n_large - 1) j
  | None -> Alcotest.fail "oversized must route");
  check bool "is_small_core" true (Control.is_small_core p 0);
  check bool "large ids at tail" true
    (not (Control.is_small_core p (Control.large_core_id p ~cores:8 0)))

let test_control_static_threshold_override () =
  let p = compute ~threshold_override:1472.0 (default_like_hist ()) in
  check (approx 1e-9) "override respected" 1472.0 p.Control.threshold

let test_control_extra_large_core () =
  let base = compute (default_like_hist ()) in
  let extra = compute ~extra_large_core:true (default_like_hist ()) in
  check int "one more large" (base.Control.n_large + 1) extra.Control.n_large

let prop_ranges_balance_cost =
  (* The size ranges assigned to large cores carry approximately equal
     cost: no range may exceed twice the per-core average (one oversized
     histogram bucket can exceed perfect balance, but not by more). *)
  QCheck.Test.make ~name:"large-core ranges balance cost" ~count:100
    QCheck.(pair (float_range 0.002 0.03) small_nat)
    (fun (p_large, salt) ->
      let h = default_like_hist ~n:(30_000 + salt) ~p_large () in
      let p = compute h in
      QCheck.assume (p.Control.n_large >= 2);
      let module H = Stats.Log_histogram in
      let cost_of_range (lo, hi) =
        H.fold
          (fun i count acc ->
            let ub = H.bucket_upper_bound h i in
            if ub > lo && ub <= hi then
              acc +. (count *. Cost_model.cost_of_size Cost_model.Packets ub)
            else acc)
          h 0.0
      in
      let costs = Array.map cost_of_range p.Control.ranges in
      let total = Array.fold_left ( +. ) 0.0 costs in
      let avg = total /. float_of_int p.Control.n_large in
      Array.for_all (fun c -> c <= 2.2 *. avg +. 1.0) costs)

let prop_route_total =
  QCheck.Test.make ~name:"route always answers for positive sizes" ~count:200
    QCheck.(pair (float_range 1.0 2.0e6) (float_range 0.0001 0.05))
    (fun (size, p_large) ->
      let p = compute (default_like_hist ~n:20_000 ~p_large ()) in
      match Control.route p size with
      | None -> size <= p.Control.threshold
      | Some j -> size > p.Control.threshold && j >= 0 && j < max 1 p.Control.n_large)

(* ------------------------------------------------------------------ *)
(* Engine + designs: miniature runs *)

let mini_cfg =
  {
    Config.default with
    Config.duration_us = 50_000.0;
    warmup_us = 10_000.0;
    epoch_us = 5_000.0;
  }

let mini_spec =
  { Workload.Spec.default with Workload.Spec.n_keys = 50_000; n_large_keys = 64 }

let run_design ?(cfg = mini_cfg) ?(offered = 2.0) maker =
  let dataset = Workload.Dataset.create mini_spec in
  let gen = Workload.Generator.create dataset in
  let eng = Engine.create cfg gen ~offered_mops:offered in
  Engine.run eng maker

let test_engine_conservation () =
  (* Every issued request is either processed or still in flight. *)
  List.iter
    (fun maker ->
      let m = run_design maker in
      let processed = Array.fold_left ( + ) 0 m.Metrics.per_core_ops in
      check int "issued = processed + in flight" m.Metrics.issued
        (processed + m.Metrics.in_flight_end))
    [ (Design.make Design.minos); (Design.make Design.hkh); (Design.make Design.hkh_ws); (Design.make Design.sho) ]

let test_engine_throughput_tracks_offered () =
  List.iter
    (fun maker ->
      let m = run_design maker in
      check bool "stable at moderate load" true m.Metrics.stable;
      if abs_float (m.Metrics.throughput_mops -. 2.0) > 0.15 then
        Alcotest.failf "%s throughput %.2f vs offered 2.0" m.Metrics.design
          m.Metrics.throughput_mops)
    [ (Design.make Design.minos); (Design.make Design.hkh); (Design.make Design.hkh_ws); (Design.make Design.sho) ]

let test_engine_latencies_sane () =
  let m = run_design (Design.make Design.minos) in
  check bool "p50 above service floor" true (m.Metrics.p50_us > 4.0);
  check bool "p50 below 20us at 2 Mops" true (m.Metrics.p50_us < 20.0);
  check bool "p99 >= p50" true (m.Metrics.p99_us >= m.Metrics.p50_us);
  check bool "p999 >= p99" true (m.Metrics.p999_us >= m.Metrics.p99_us);
  check bool "mean between p50-ish and p999" true
    (m.Metrics.mean_us > 0.5 *. m.Metrics.p50_us && m.Metrics.mean_us < m.Metrics.p999_us)

let test_minos_forms_plan () =
  let m = run_design (Design.make Design.minos) in
  check int "one large core on default-like workload" 1 m.Metrics.final_large_cores;
  if m.Metrics.final_threshold < 900.0 || m.Metrics.final_threshold > 1600.0 then
    Alcotest.failf "threshold %.0f" m.Metrics.final_threshold

let test_minos_isolates_small_requests () =
  let minos = run_design ~offered:4.0 (Design.make Design.minos) in
  let hkh = run_design ~offered:4.0 (Design.make Design.hkh) in
  check bool "minos p99 well below hkh p99" true
    (minos.Metrics.p99_us *. 3.0 < hkh.Metrics.p99_us)

let test_minos_small_large_split_visible_in_ops () =
  let m = run_design ~offered:4.0 (Design.make Design.minos) in
  let n = Array.length m.Metrics.per_core_ops in
  let large_ops = m.Metrics.per_core_ops.(n - 1) in
  let small_ops = m.Metrics.per_core_ops.(0) in
  (* The large core serves ~1% of requests; small cores ~14% each. *)
  check bool "large core serves far fewer ops" true (large_ops * 5 < small_ops)

let test_minos_standby_when_no_larges () =
  let spec = { mini_spec with Workload.Spec.p_large = 0.0 } in
  let dataset = Workload.Dataset.create spec in
  let gen = Workload.Generator.create dataset in
  let eng = Engine.create mini_cfg gen ~offered_mops:2.0 in
  let m = Engine.run eng (Design.make Design.minos) in
  check int "no large cores" 0 m.Metrics.final_large_cores;
  check bool "stable" true m.Metrics.stable;
  let processed = Array.fold_left ( + ) 0 m.Metrics.per_core_ops in
  check int "conservation" m.Metrics.issued (processed + m.Metrics.in_flight_end)

let test_minos_static_threshold () =
  let cfg = { mini_cfg with Config.static_threshold = Some 1472.0 } in
  let m = run_design ~cfg (Design.make Design.minos) in
  check (approx 1e-9) "threshold pinned" 1472.0 m.Metrics.final_threshold;
  check bool "stable" true m.Metrics.stable

let test_minos_large_rx_steal_variant () =
  let cfg = { mini_cfg with Config.large_rx_steal = true } in
  let m = run_design ~cfg ~offered:4.0 (Design.make Design.minos) in
  check bool "stable" true m.Metrics.stable;
  check int "over-allocates one large core" 2 m.Metrics.final_large_cores;
  let processed = Array.fold_left ( + ) 0 m.Metrics.per_core_ops in
  check int "conservation" m.Metrics.issued (processed + m.Metrics.in_flight_end)

let test_sampling_reduces_nic_load () =
  let full = run_design ~offered:3.0 (Design.make Design.minos) in
  let sampled =
    run_design ~cfg:{ mini_cfg with Config.sampling = 0.25 } ~offered:3.0 (Design.make Design.minos)
  in
  check bool "nic util drops with sampling" true
    (sampled.Metrics.nic_tx_utilization < 0.6 *. full.Metrics.nic_tx_utilization);
  (* Throughput counts processed ops either way. *)
  if abs_float (sampled.Metrics.throughput_mops -. 3.0) > 0.2 then
    Alcotest.failf "sampled throughput %.2f" sampled.Metrics.throughput_mops

let test_sho_handoff_bottleneck () =
  (* With one handoff core, SHO cannot dispatch much beyond ~1/handoff_us;
     drive it past that and it must go unstable while Minos stays up. *)
  let over = 6.5 in
  let sho = run_design ~cfg:{ mini_cfg with Config.handoff_cores = 1 } ~offered:over
      (Design.make Design.sho)
  in
  let minos = run_design ~offered:over (Design.make Design.minos) in
  check bool "sho saturates first" true
    ((not sho.Metrics.stable) || sho.Metrics.p99_us > minos.Metrics.p99_us)

let test_dynamic_adapts_large_cores () =
  let schedule =
    Workload.Dynamic.create
      [ { Workload.Dynamic.duration_us = 60_000.0; p_large = 0.125 };
        { Workload.Dynamic.duration_us = 60_000.0; p_large = 0.75 } ]
  in
  let cfg = { mini_cfg with Config.duration_us = 120_000.0; warmup_us = 0.0 } in
  let dataset = Workload.Dataset.create mini_spec in
  let gen = Workload.Generator.create dataset in
  let eng = Engine.create ~dynamic:schedule cfg gen ~offered_mops:2.0 in
  let m = Engine.run eng (Design.make Design.minos) in
  (* After the switch to pL=0.75 the controller must raise n_large. *)
  let early =
    List.filter (fun (t, _) -> t < 55_000.0) m.Metrics.large_core_series
    |> List.map snd
  in
  let late =
    List.filter (fun (t, _) -> t > 80_000.0) m.Metrics.large_core_series
    |> List.map snd
  in
  let max_l = List.fold_left max 0 in
  check bool "more large cores under heavy large traffic" true
    (max_l late > max_l early || (max_l early = 0 && max_l late > 0))

let test_minos_no_epoch_during_run () =
  (* Epoch longer than the whole run: Minos never leaves cold-start
     standby mode, and must still serve everything (large requests route
     through the standby core). *)
  let cfg = { mini_cfg with Config.epoch_us = 10.0e6 } in
  let m = run_design ~cfg (Design.make Design.minos) in
  check bool "stable" true m.Metrics.stable;
  check int "standby the whole run" 0 m.Metrics.final_large_cores;
  let processed = Array.fold_left ( + ) 0 m.Metrics.per_core_ops in
  check int "conservation" m.Metrics.issued (processed + m.Metrics.in_flight_end)

let test_minimal_core_count () =
  (* Two cores is the minimum topology: one small + one large (or
     standby). *)
  let cfg = { mini_cfg with Config.cores = 2 } in
  List.iter
    (fun maker ->
      let m = run_design ~cfg ~offered:0.8 maker in
      check bool (m.Metrics.design ^ " stable on 2 cores") true m.Metrics.stable;
      let processed = Array.fold_left ( + ) 0 m.Metrics.per_core_ops in
      check int "conservation" m.Metrics.issued (processed + m.Metrics.in_flight_end))
    [ (Design.make Design.minos); (Design.make Design.hkh); (Design.make Design.hkh_ws); (Design.make Design.sho) ]

let test_batch_size_one () =
  let cfg = { mini_cfg with Config.batch = 1 } in
  let m = run_design ~cfg (Design.make Design.minos) in
  check bool "stable with batch=1" true m.Metrics.stable;
  (* Per-request polling costs more CPU but everything still completes. *)
  let processed = Array.fold_left ( + ) 0 m.Metrics.per_core_ops in
  check int "conservation" m.Metrics.issued (processed + m.Metrics.in_flight_end)

let test_aggressive_sampling () =
  let cfg = { mini_cfg with Config.sampling = 0.01 } in
  let m = run_design ~cfg (Design.make Design.minos) in
  (* 95% GETs sampled at 1% + 5% PUTs always replied: ~6% of ops produce
     latency samples, yet throughput still counts all processed ops and
     the percentiles remain computable. *)
  if abs_float (m.Metrics.throughput_mops -. 2.0) > 0.15 then
    Alcotest.failf "throughput %.2f" m.Metrics.throughput_mops;
  check bool "p99 still measurable" true (not (Float.is_nan m.Metrics.p99_us));
  check bool "stable" true m.Metrics.stable

let test_put_master_spread () =
  (* PUT dispatch must hit every core with roughly uniform frequency. *)
  let dataset = Workload.Dataset.create mini_spec in
  let gen = Workload.Generator.create ~get_ratio:0.0 dataset in
  let eng = Engine.create mini_cfg gen ~offered_mops:1.0 in
  let counts = Array.make (Engine.cores eng) 0 in
  for id = 0 to 9999 do
    let req =
      {
        Engine.slot = 0;
        op = Cost_model.Put;
        key_id = id;
        item_size = 100;
        is_large_truth = false;
        frames_in = 1;
        rx_queue = 0;
        span = -1;
        scan_len = 0;
        miss = false;
      }
    in
    let q = Engine.put_master eng req in
    counts.(q) <- counts.(q) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = 10000 / Array.length counts in
      if abs (c - expected) > expected / 2 then
        Alcotest.failf "core %d receives %d of 10000 puts" i c)
    counts

let test_size_aware_execution_invariant () =
  (* THE invariant, observed directly: once the control loop is running,
     requests above the live threshold execute on large cores and requests
     below it on small cores.  Legitimate exceptions exist (cold start,
     role-change leftovers, standby transitions), so we demand >= 99.5 %
     compliance after warm-up rather than 100 %. *)
  let dataset = Workload.Dataset.create mini_spec in
  let gen = Workload.Generator.create dataset in
  let eng = Engine.create mini_cfg gen ~offered_mops:3.0 in
  let design = ref None in
  let checked = ref 0 and violations = ref 0 in
  Engine.set_probe eng (fun ~core req ->
      match !design with
      | None -> ()
      | Some (d : Engine.design) ->
          let threshold = d.Engine.current_threshold () in
          let n_large = d.Engine.large_core_count () in
          if
            Engine.now eng > mini_cfg.Config.warmup_us
            && (not (Float.is_nan threshold))
            && threshold < infinity && n_large > 0
          then begin
            incr checked;
            let n_small = Engine.cores eng - n_large in
            let is_large_req = float_of_int req.Engine.item_size > threshold in
            let on_large_core = core >= n_small in
            if is_large_req <> on_large_core then incr violations
          end);
  let m =
    Engine.run eng (fun e ->
        let d = (Design.make Design.minos) e in
        design := Some d;
        d)
  in
  check bool "ran" true (m.Metrics.completed > 0);
  check bool "probe saw traffic" true (!checked > 100_000);
  let rate = float_of_int !violations /. float_of_int (max 1 !checked) in
  if rate > 0.005 then
    Alcotest.failf "size-aware invariant violated for %.2f%% of executions (%d/%d)"
      (100.0 *. rate) !violations !checked

let test_standby_acts_as_large_core () =
  (* Regression: at pL = 0.0625% the cost share of large requests rounds
     to zero large cores (standby mode), yet large traffic is steady.  The
     engaged standby core must behave as a true large core — other cores
     drain its RX queue — or every batch it pulls suffers HoL and the p99
     collapses to baseline levels. *)
  let spec = { mini_spec with Workload.Spec.p_large = 0.0625 } in
  let dataset = Workload.Dataset.create spec in
  let gen = Workload.Generator.create dataset in
  let eng = Engine.create mini_cfg gen ~offered_mops:4.5 in
  let m = Engine.run eng (Design.make Design.minos) in
  check bool "stable" true m.Metrics.stable;
  check int "engaged standby reported as one large core" 1 m.Metrics.final_large_cores;
  if m.Metrics.p99_us > 40.0 then
    Alcotest.failf "p99 %.1f: standby head-of-line blocking is back" m.Metrics.p99_us

let test_latency_breakdown () =
  (* Stage means must compose into the end-to-end mean (minus the constant
     pipeline latency), and head-of-line blocking must show up in HKH's
     queue-wait stage specifically. *)
  let minos = run_design ~offered:4.0 (Design.make Design.minos) in
  let hkh = run_design ~offered:4.0 (Design.make Design.hkh) in
  List.iter
    (fun (m : Metrics.t) ->
      check bool "waits nonnegative" true
        (m.Metrics.mean_queue_wait_us >= 0.0 && m.Metrics.mean_tx_wait_us >= 0.0);
      check bool "service in calibrated band" true
        (m.Metrics.mean_service_us > 0.5 && m.Metrics.mean_service_us < 5.0);
      let stages =
        m.Metrics.mean_queue_wait_us +. m.Metrics.mean_service_us
        +. m.Metrics.mean_tx_wait_us
        +. Cost_model.default.Cost_model.pipeline_latency_us
      in
      (* Sampling drops some TX stages and the stage windows differ
         slightly from the latency window, so allow a loose band. *)
      if stages < 0.5 *. m.Metrics.mean_us || stages > 2.0 *. m.Metrics.mean_us then
        Alcotest.failf "%s stages %.1f vs mean %.1f" m.Metrics.design stages
          m.Metrics.mean_us)
    [ minos; hkh ];
  check bool "HoL lives in the queue-wait stage" true
    (hkh.Metrics.mean_queue_wait_us > 5.0 *. minos.Metrics.mean_queue_wait_us)

let test_engine_with_real_store () =
  (* Route simulated ops through a real Kvstore.Store. *)
  let spec = { mini_spec with Workload.Spec.n_keys = 2_000; n_large_keys = 8 } in
  let dataset = Workload.Dataset.create spec in
  let store = Kvstore.Store.create ~partition_bits:3 ~bucket_bits:8
      ~value_arena_bytes:(1 lsl 22) ()
  in
  for id = 0 to Workload.Dataset.n_keys dataset - 1 do
    (* Store a marker value; sizes live in the dataset. *)
    Kvstore.Store.put store ~guard:`Lock (Workload.Dataset.key_name id)
      (Bytes.create 8)
  done;
  let gen = Workload.Generator.create dataset in
  let cfg = { mini_cfg with Config.duration_us = 20_000.0; warmup_us = 5_000.0 } in
  let eng = Engine.create ~store cfg gen ~offered_mops:1.0 in
  let m = Engine.run eng (Design.make Design.minos) in
  check bool "ran" true (m.Metrics.completed > 0);
  check bool "store intact" true ((Kvstore.Store.stats store).Kvstore.Store.items = 2_000)

let test_windowed_series () =
  let cfg = { mini_cfg with Config.window_us = Some 10_000.0 } in
  let m = run_design ~cfg (Design.make Design.hkh) in
  check bool "has windows" true (List.length m.Metrics.p99_series >= 3);
  List.iter (fun (_, p99) -> if p99 <= 0.0 then Alcotest.fail "bad window p99")
    m.Metrics.p99_series

let () =
  Alcotest.run "kvserver"
    [
      ( "cost_model",
        [
          Alcotest.test_case "reply sizes" `Quick test_reply_sizes;
          Alcotest.test_case "request sizes" `Quick test_request_sizes;
          Alcotest.test_case "frames" `Quick test_frames;
          Alcotest.test_case "cpu monotone" `Quick test_cpu_monotone_in_size;
          Alcotest.test_case "cost fn" `Quick test_cost_fn;
        ] );
      ("config", [ Alcotest.test_case "validate" `Quick test_config_validate ]);
      ( "control",
        [
          Alcotest.test_case "initial" `Quick test_control_initial;
          Alcotest.test_case "empty hist" `Quick test_control_empty_hist_is_initial;
          Alcotest.test_case "threshold is p99" `Quick test_control_threshold_is_p99;
          Alcotest.test_case "default: 1 large core" `Quick
            test_control_default_allocates_one_large;
          Alcotest.test_case "heavy large: more cores" `Quick
            test_control_heavy_large_allocates_more;
          Alcotest.test_case "standby when all small" `Quick
            test_control_all_small_when_no_large;
          Alcotest.test_case "ranges contiguous" `Quick
            test_control_ranges_cover_and_are_ordered;
          Alcotest.test_case "route" `Quick test_control_route;
          Alcotest.test_case "static override" `Quick test_control_static_threshold_override;
          Alcotest.test_case "extra large core" `Quick test_control_extra_large_core;
        ]
        @ qsuite [ prop_route_total; prop_ranges_balance_cost ] );
      ( "engine",
        [
          Alcotest.test_case "conservation" `Slow test_engine_conservation;
          Alcotest.test_case "throughput tracks offered" `Slow
            test_engine_throughput_tracks_offered;
          Alcotest.test_case "latencies sane" `Quick test_engine_latencies_sane;
          Alcotest.test_case "windowed series" `Quick test_windowed_series;
          Alcotest.test_case "real store integration" `Quick test_engine_with_real_store;
          Alcotest.test_case "no epoch during run" `Quick test_minos_no_epoch_during_run;
          Alcotest.test_case "minimal core count" `Quick test_minimal_core_count;
          Alcotest.test_case "batch size one" `Quick test_batch_size_one;
          Alcotest.test_case "aggressive sampling" `Quick test_aggressive_sampling;
          Alcotest.test_case "put master spread" `Quick test_put_master_spread;
          Alcotest.test_case "latency breakdown" `Slow test_latency_breakdown;
          Alcotest.test_case "standby acts as large core" `Slow
            test_standby_acts_as_large_core;
          Alcotest.test_case "size-aware execution invariant" `Slow
            test_size_aware_execution_invariant;
        ] );
      ( "designs",
        [
          Alcotest.test_case "minos forms plan" `Quick test_minos_forms_plan;
          Alcotest.test_case "minos isolates smalls" `Slow test_minos_isolates_small_requests;
          Alcotest.test_case "minos op split" `Quick test_minos_small_large_split_visible_in_ops;
          Alcotest.test_case "minos standby" `Quick test_minos_standby_when_no_larges;
          Alcotest.test_case "minos static threshold" `Quick test_minos_static_threshold;
          Alcotest.test_case "minos rx-steal variant" `Quick
            test_minos_large_rx_steal_variant;
          Alcotest.test_case "sampling" `Quick test_sampling_reduces_nic_load;
          Alcotest.test_case "sho handoff bottleneck" `Slow test_sho_handoff_bottleneck;
          Alcotest.test_case "dynamic adaptation" `Slow test_dynamic_adapts_large_cores;
        ] );
    ]
