(* Tests for the exactly-once machinery: the server-side reply cache
   (Dedup) and the client-side retransmission driver (Retry), separately
   and composed over a lossy channel. *)

open Proto

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* ------------------------------------------------------------------ *)
(* Dedup *)

let test_dedup_executes_once () =
  let d = Dedup.create () in
  let executions = ref 0 in
  let op () =
    incr executions;
    "reply"
  in
  let r1, k1 = Dedup.execute d ~id:7L op in
  let r2, k2 = Dedup.execute d ~id:7L op in
  check Alcotest.string "same reply" r1 r2;
  check bool "first fresh" true (k1 = `Fresh);
  check bool "second replayed" true (k2 = `Replayed);
  check int "executed once" 1 !executions

let test_dedup_distinct_ids () =
  let d = Dedup.create () in
  let _ = Dedup.execute d ~id:1L (fun () -> "a") in
  let _ = Dedup.execute d ~id:2L (fun () -> "b") in
  check (Alcotest.option Alcotest.string) "id 1" (Some "a") (Dedup.find d 1L);
  check (Alcotest.option Alcotest.string) "id 2" (Some "b") (Dedup.find d 2L);
  check int "two entries" 2 (Dedup.size d)

let test_dedup_fifo_eviction () =
  let d = Dedup.create ~capacity:3 () in
  for i = 1 to 5 do
    ignore (Dedup.execute d ~id:(Int64.of_int i) (fun () -> i))
  done;
  check int "bounded" 3 (Dedup.size d);
  check bool "oldest evicted" false (Dedup.mem d 1L);
  check bool "newest kept" true (Dedup.mem d 5L);
  (* A re-arriving evicted id re-executes (at-most-once within the
     retention window, which the client's retry budget must respect). *)
  let _, kind = Dedup.execute d ~id:1L (fun () -> 99) in
  check bool "evicted id is fresh again" true (kind = `Fresh)

let test_dedup_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Dedup.create: capacity must be >= 1")
    (fun () -> ignore (Dedup.create ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Retry *)

let test_retry_first_try () =
  let sends = ref 0 in
  let r =
    Retry.call
      ~send:(fun ~attempt:_ -> incr sends)
      ~wait_reply:(fun ~timeout_us:_ -> Some "ok")
      ()
  in
  check bool "ok" true (r = Ok "ok");
  check int "one send" 1 !sends

let test_retry_eventual_success () =
  let sends = ref 0 in
  let r =
    Retry.call
      ~config:{ Retry.max_attempts = 5; timeout_us = 10.0; backoff = 2.0; cap_us = infinity }
      ~send:(fun ~attempt:_ -> incr sends)
      ~wait_reply:(fun ~timeout_us:_ -> if !sends >= 3 then Some "late" else None)
      ()
  in
  check bool "ok" true (r = Ok "late");
  check int "three sends" 3 !sends

let test_retry_timeout () =
  let sends = ref 0 in
  let timeouts = ref [] in
  let r =
    Retry.call
      ~config:{ Retry.max_attempts = 3; timeout_us = 10.0; backoff = 2.0; cap_us = infinity }
      ~send:(fun ~attempt:_ -> incr sends)
      ~wait_reply:(fun ~timeout_us ->
        timeouts := timeout_us :: !timeouts;
        None)
      ()
  in
  check bool "timed out after 3" true (r = Error (`Timed_out 3));
  check int "three sends" 3 !sends;
  check (Alcotest.list (Alcotest.float 1e-9)) "exponential backoff" [ 10.0; 20.0; 40.0 ]
    (List.rev !timeouts)

let test_retry_budget () =
  let c = { Retry.max_attempts = 3; timeout_us = 10.0; backoff = 2.0; cap_us = infinity } in
  check (Alcotest.float 1e-9) "budget" 70.0 (Retry.total_budget_us c)

let test_retry_budget_exhaustion () =
  (* Capacity 2, no earning: the first transmission is free, the next two
     spend the bucket, and the fourth transmission is refused. *)
  let budget = Retry.Budget.create ~capacity:2.0 ~earn_per_call:0.0 () in
  let sends = ref 0 in
  let r =
    Retry.call
      ~config:{ Retry.max_attempts = 10; timeout_us = 1.0; backoff = 2.0; cap_us = infinity }
      ~budget
      ~send:(fun ~attempt:_ -> incr sends)
      ~wait_reply:(fun ~timeout_us:_ -> None)
      ()
  in
  check bool "budget exhausted after 3 sends" true (r = Error (`Budget_exhausted 3));
  check int "three sends" 3 !sends;
  check bool "bucket empty" true (Retry.Budget.tokens budget < 1.0)

let test_retry_budget_earn () =
  let budget = Retry.Budget.create ~capacity:2.0 ~earn_per_call:0.5 () in
  check bool "spend" true (Retry.Budget.try_spend budget);
  check bool "spend" true (Retry.Budget.try_spend budget);
  check bool "empty" false (Retry.Budget.try_spend budget);
  Retry.Budget.earn budget;
  check bool "half a token is not enough" false (Retry.Budget.try_spend budget);
  Retry.Budget.earn budget;
  check bool "earned a whole token" true (Retry.Budget.try_spend budget);
  for _ = 1 to 100 do Retry.Budget.earn budget done;
  check (Alcotest.float 1e-9) "earning caps at capacity" 2.0
    (Retry.Budget.tokens budget)

(* Replay the documented decorrelated-jitter schedule: attempt 1 waits
   exactly [timeout_us]; attempt [n+1] waits
   [timeout_us + u * (min cap (t_n * backoff) - timeout_us)]. *)
let expected_schedule c ~seed ~attempts =
  let rng = Dsim.Rng.create seed in
  let rec go n prev acc =
    if n > attempts then List.rev acc
    else
      let t =
        if n = 1 then Float.min c.Retry.timeout_us c.Retry.cap_us
        else
          let ceiling = Float.min c.Retry.cap_us (prev *. c.Retry.backoff) in
          let u = Dsim.Rng.unit_float rng in
          c.Retry.timeout_us +. (u *. (ceiling -. c.Retry.timeout_us))
      in
      go (n + 1) t (t :: acc)
  in
  go 1 0.0 []

let observed_schedule c ~seed =
  let rng = Dsim.Rng.create seed in
  let timeouts = ref [] in
  (match
     Retry.call ~config:c ~rng
       ~send:(fun ~attempt:_ -> ())
       ~wait_reply:(fun ~timeout_us ->
         timeouts := timeout_us :: !timeouts;
         None)
       ()
   with
  | Ok _ -> Alcotest.fail "unreachable: wait_reply never succeeds"
  | Error _ -> ());
  List.rev !timeouts

let prop_jitter_bounds_and_determinism =
  QCheck.Test.make ~name:"jittered schedule: bounded, capped, reproducible"
    ~count:300
    QCheck.(
      quad (int_range 2 8) (int_range 1 1000) (int_range 0 10000) bool)
    (fun (attempts, base_int, seed, capped) ->
      let base = float_of_int base_int in
      let c =
        {
          Retry.max_attempts = attempts;
          timeout_us = base;
          backoff = 2.0;
          cap_us = (if capped then base *. 3.0 else infinity);
        }
      in
      let sched = observed_schedule c ~seed in
      List.length sched = attempts
      (* Every attempt stays within the documented bounds... *)
      && List.for_all
           (fun t -> t >= c.Retry.timeout_us && t <= c.Retry.cap_us)
           sched
      (* ...the nth never exceeds the deterministic schedule... *)
      && List.mapi
           (fun i t ->
             t <= Float.min c.Retry.cap_us (base *. (2.0 ** float_of_int i)) +. 1e-9)
           sched
         |> List.for_all Fun.id
      (* ...the total wait lands inside [min_budget, total_budget]... *)
      && (let total = List.fold_left ( +. ) 0.0 sched in
          total >= Retry.min_budget_us c -. 1e-6
          && total <= Retry.total_budget_us c +. 1e-6)
      (* ...and the same seed reproduces the schedule exactly. *)
      && sched = observed_schedule c ~seed
      && sched = expected_schedule c ~seed ~attempts)

let prop_jitter_decorrelates =
  QCheck.Test.make ~name:"different seeds draw different schedules" ~count:50
    QCheck.(int_range 0 5000)
    (fun seed ->
      let c =
        { Retry.max_attempts = 6; timeout_us = 100.0; backoff = 2.0; cap_us = infinity }
      in
      observed_schedule c ~seed <> observed_schedule c ~seed:(seed + 1))

let test_retry_validation () =
  Alcotest.check_raises "attempts" (Invalid_argument "Retry: max_attempts must be >= 1")
    (fun () ->
      ignore
        (Retry.call
           ~config:{ Retry.max_attempts = 0; timeout_us = 1.0; backoff = 1.0; cap_us = infinity }
           ~send:(fun ~attempt:_ -> ())
           ~wait_reply:(fun ~timeout_us:_ -> None)
           ()))

(* ------------------------------------------------------------------ *)
(* Composition: retries over a lossy channel against a deduplicating
   server must execute each operation's side effect exactly once, and the
   client must succeed whenever at least one round trip survives. *)

let prop_exactly_once_over_lossy_channel =
  QCheck.Test.make ~name:"retry + dedup = exactly-once over lossy channel" ~count:200
    QCheck.(pair (int_range 0 80) small_nat)
    (fun (loss_pct, seed) ->
      let rng = Dsim.Rng.create (seed + 1) in
      let lossy () = Dsim.Rng.int rng 100 < loss_pct in
      let dedup = Dedup.create () in
      let counter = ref 0 in
      (* counter increments are the side effect that must happen exactly
         once per request id. *)
      let requests = 50 in
      let successes = ref 0 in
      for id = 1 to requests do
        let in_flight = ref None in
        let send ~attempt:_ =
          (* Request datagram may be dropped. *)
          if not (lossy ()) then begin
            let reply, _ =
              Dedup.execute dedup ~id:(Int64.of_int id) (fun () ->
                  incr counter;
                  !counter)
            in
            (* Reply datagram may be dropped too. *)
            if not (lossy ()) then in_flight := Some reply
          end
        in
        let wait_reply ~timeout_us:_ =
          let r = !in_flight in
          in_flight := None;
          r
        in
        match
          Retry.call
            ~config:{ Retry.max_attempts = 8; timeout_us = 1.0; backoff = 1.5; cap_us = infinity }
            ~send ~wait_reply ()
        with
        | Ok _ -> incr successes
        | Error (`Timed_out _ | `Budget_exhausted _) -> ()
      done;
      (* Side effects happened at most once per request, and exactly once
         for every request the client saw succeed. *)
      !counter <= requests && !counter >= !successes)

let () =
  Alcotest.run "exactly_once"
    [
      ( "dedup",
        [
          Alcotest.test_case "executes once" `Quick test_dedup_executes_once;
          Alcotest.test_case "distinct ids" `Quick test_dedup_distinct_ids;
          Alcotest.test_case "fifo eviction" `Quick test_dedup_fifo_eviction;
          Alcotest.test_case "validation" `Quick test_dedup_validation;
        ] );
      ( "retry",
        [
          Alcotest.test_case "first try" `Quick test_retry_first_try;
          Alcotest.test_case "eventual success" `Quick test_retry_eventual_success;
          Alcotest.test_case "timeout + backoff" `Quick test_retry_timeout;
          Alcotest.test_case "budget" `Quick test_retry_budget;
          Alcotest.test_case "budget exhaustion" `Quick
            test_retry_budget_exhaustion;
          Alcotest.test_case "budget earning" `Quick test_retry_budget_earn;
          Alcotest.test_case "validation" `Quick test_retry_validation;
        ] );
      ( "jitter",
        qsuite [ prop_jitter_bounds_and_determinism; prop_jitter_decorrelates ]
      );
      ("composition", qsuite [ prop_exactly_once_over_lossy_channel ]);
    ]
