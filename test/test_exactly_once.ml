(* Tests for the exactly-once machinery: the server-side reply cache
   (Dedup) and the client-side retransmission driver (Retry), separately
   and composed over a lossy channel. *)

open Proto

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* ------------------------------------------------------------------ *)
(* Dedup *)

let test_dedup_executes_once () =
  let d = Dedup.create () in
  let executions = ref 0 in
  let op () =
    incr executions;
    "reply"
  in
  let r1, k1 = Dedup.execute d ~id:7L op in
  let r2, k2 = Dedup.execute d ~id:7L op in
  check Alcotest.string "same reply" r1 r2;
  check bool "first fresh" true (k1 = `Fresh);
  check bool "second replayed" true (k2 = `Replayed);
  check int "executed once" 1 !executions

let test_dedup_distinct_ids () =
  let d = Dedup.create () in
  let _ = Dedup.execute d ~id:1L (fun () -> "a") in
  let _ = Dedup.execute d ~id:2L (fun () -> "b") in
  check (Alcotest.option Alcotest.string) "id 1" (Some "a") (Dedup.find d 1L);
  check (Alcotest.option Alcotest.string) "id 2" (Some "b") (Dedup.find d 2L);
  check int "two entries" 2 (Dedup.size d)

let test_dedup_fifo_eviction () =
  let d = Dedup.create ~capacity:3 () in
  for i = 1 to 5 do
    ignore (Dedup.execute d ~id:(Int64.of_int i) (fun () -> i))
  done;
  check int "bounded" 3 (Dedup.size d);
  check bool "oldest evicted" false (Dedup.mem d 1L);
  check bool "newest kept" true (Dedup.mem d 5L);
  (* A re-arriving evicted id re-executes (at-most-once within the
     retention window, which the client's retry budget must respect). *)
  let _, kind = Dedup.execute d ~id:1L (fun () -> 99) in
  check bool "evicted id is fresh again" true (kind = `Fresh)

let test_dedup_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Dedup.create: capacity must be >= 1")
    (fun () -> ignore (Dedup.create ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Retry *)

let test_retry_first_try () =
  let sends = ref 0 in
  let r =
    Retry.call
      ~send:(fun ~attempt:_ -> incr sends)
      ~wait_reply:(fun ~timeout_us:_ -> Some "ok")
      ()
  in
  check bool "ok" true (r = Ok "ok");
  check int "one send" 1 !sends

let test_retry_eventual_success () =
  let sends = ref 0 in
  let r =
    Retry.call
      ~config:{ Retry.max_attempts = 5; timeout_us = 10.0; backoff = 2.0 }
      ~send:(fun ~attempt:_ -> incr sends)
      ~wait_reply:(fun ~timeout_us:_ -> if !sends >= 3 then Some "late" else None)
      ()
  in
  check bool "ok" true (r = Ok "late");
  check int "three sends" 3 !sends

let test_retry_timeout () =
  let sends = ref 0 in
  let timeouts = ref [] in
  let r =
    Retry.call
      ~config:{ Retry.max_attempts = 3; timeout_us = 10.0; backoff = 2.0 }
      ~send:(fun ~attempt:_ -> incr sends)
      ~wait_reply:(fun ~timeout_us ->
        timeouts := timeout_us :: !timeouts;
        None)
      ()
  in
  check bool "timed out after 3" true (r = Error (`Timed_out 3));
  check int "three sends" 3 !sends;
  check (Alcotest.list (Alcotest.float 1e-9)) "exponential backoff" [ 10.0; 20.0; 40.0 ]
    (List.rev !timeouts)

let test_retry_budget () =
  let c = { Retry.max_attempts = 3; timeout_us = 10.0; backoff = 2.0 } in
  check (Alcotest.float 1e-9) "budget" 70.0 (Retry.total_budget_us c)

let test_retry_validation () =
  Alcotest.check_raises "attempts" (Invalid_argument "Retry: max_attempts must be >= 1")
    (fun () ->
      ignore
        (Retry.call
           ~config:{ Retry.max_attempts = 0; timeout_us = 1.0; backoff = 1.0 }
           ~send:(fun ~attempt:_ -> ())
           ~wait_reply:(fun ~timeout_us:_ -> None)
           ()))

(* ------------------------------------------------------------------ *)
(* Composition: retries over a lossy channel against a deduplicating
   server must execute each operation's side effect exactly once, and the
   client must succeed whenever at least one round trip survives. *)

let prop_exactly_once_over_lossy_channel =
  QCheck.Test.make ~name:"retry + dedup = exactly-once over lossy channel" ~count:200
    QCheck.(pair (int_range 0 80) small_nat)
    (fun (loss_pct, seed) ->
      let rng = Dsim.Rng.create (seed + 1) in
      let lossy () = Dsim.Rng.int rng 100 < loss_pct in
      let dedup = Dedup.create () in
      let counter = ref 0 in
      (* counter increments are the side effect that must happen exactly
         once per request id. *)
      let requests = 50 in
      let successes = ref 0 in
      for id = 1 to requests do
        let in_flight = ref None in
        let send ~attempt:_ =
          (* Request datagram may be dropped. *)
          if not (lossy ()) then begin
            let reply, _ =
              Dedup.execute dedup ~id:(Int64.of_int id) (fun () ->
                  incr counter;
                  !counter)
            in
            (* Reply datagram may be dropped too. *)
            if not (lossy ()) then in_flight := Some reply
          end
        in
        let wait_reply ~timeout_us:_ =
          let r = !in_flight in
          in_flight := None;
          r
        in
        match
          Retry.call
            ~config:{ Retry.max_attempts = 8; timeout_us = 1.0; backoff = 1.5 }
            ~send ~wait_reply ()
        with
        | Ok _ -> incr successes
        | Error (`Timed_out _) -> ()
      done;
      (* Side effects happened at most once per request, and exactly once
         for every request the client saw succeed. *)
      !counter <= requests && !counter >= !successes)

let () =
  Alcotest.run "exactly_once"
    [
      ( "dedup",
        [
          Alcotest.test_case "executes once" `Quick test_dedup_executes_once;
          Alcotest.test_case "distinct ids" `Quick test_dedup_distinct_ids;
          Alcotest.test_case "fifo eviction" `Quick test_dedup_fifo_eviction;
          Alcotest.test_case "validation" `Quick test_dedup_validation;
        ] );
      ( "retry",
        [
          Alcotest.test_case "first try" `Quick test_retry_first_try;
          Alcotest.test_case "eventual success" `Quick test_retry_eventual_success;
          Alcotest.test_case "timeout + backoff" `Quick test_retry_timeout;
          Alcotest.test_case "budget" `Quick test_retry_budget;
          Alcotest.test_case "validation" `Quick test_retry_validation;
        ] );
      ("composition", qsuite [ prop_exactly_once_over_lossy_channel ]);
    ]
