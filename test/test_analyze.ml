(* End-to-end tests for the interprocedural analyzer (lib/analyze).
   Each probe program is compiled to .cmt files with the installed
   ocamlc, then pushed through the real Loader/Scan/Graph pipeline with
   the same roots/allowlist plumbing `dune build @analyze` uses:

   - functor instantiation resolves the body against the argument;
   - first-class module calls resolve against every packed module;
   - higher-order heads yield unknown-callee verdicts;
   - Simplif-eliminable refs pass, captured refs are findings;
   - taint sources reach sinks through calls;
   - allowlist suppression works and stale entries fail the run. *)

open Analyze

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let with_dir f =
  let dir = Filename.temp_file "minos_analyze_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let write dir name contents =
  Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
      Out_channel.output_string oc contents)

(* Compile the probe sources in order (later units see earlier .cmi) and
   run the full analysis over the resulting .cmt files. *)
let analyze ?(allow = "") ~roots dir sources : Analyze_core.result =
  List.iter (fun (name, contents) -> write dir name contents) sources;
  let files =
    String.concat " " (List.map (fun (n, _) -> Filename.quote n) sources)
  in
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -w -a -c %s"
      (Filename.quote dir) files
  in
  check int ("probe compiles: " ^ files) 0 (Sys.command cmd);
  write dir "roots.txt" roots;
  write dir "allow.txt" allow;
  Analyze_core.run ~cmt_roots:[ dir ]
    ~roots_file:(Filename.concat dir "roots.txt")
    ~allow_file:(Filename.concat dir "allow.txt")

let containing (f : Ir.finding) =
  match List.rev f.Ir.witness with (fn, _) :: _ -> fn | [] -> f.Ir.root

let test_simplif_refs () =
  with_dir (fun dir ->
      let r =
        analyze dir
          ~roots:"hot Probe.sum\nhot Probe.captured\n"
          [
            ( "probe.ml",
              {|
let sum n =
  let acc = ref 0 in
  let i = ref 0 in
  while !i < n do
    acc := !acc + !i;
    incr i
  done;
  !acc

let captured n =
  let r = ref 0 in
  let bump () = r := !r + 1 in
  bump ();
  !r + n
|}
            );
          ]
      in
      check (Alcotest.list string) "no roots/allow errors" [] r.errors;
      (* [sum]'s refs are eliminated by Simplif: no finding may name it. *)
      check int "eliminable ref loop is allocation-free" 0
        (List.length
           (List.filter (fun f -> f.Ir.root = "Probe.sum") r.alloc_findings));
      (* [captured]'s ref is captured by a closure: the cell is real. *)
      check bool "captured ref is a finding" true
        (List.exists
           (fun f -> f.Ir.root = "Probe.captured" && f.Ir.category = "alloc-ref")
           r.alloc_findings))

let test_functor_instantiation () =
  with_dir (fun dir ->
      let r =
        analyze dir ~roots:"hot Probe.hot_entry\n"
          [
            ( "probe.ml",
              {|
module type S = sig val make : int -> int array end
module Impl = struct let make n = Array.make n 0 end
module Make (A : S) = struct let step n = Array.length (A.make n) end
module M = Make (Impl)
let hot_entry n = M.step n
|}
            );
          ]
      in
      check (Alcotest.list string) "no roots/allow errors" [] r.errors;
      (* The [A.make] call inside the functor body must resolve through
         the instantiation to [Impl.make] and surface its Array.make. *)
      let hits =
        List.filter
          (fun f ->
            f.Ir.category = "alloc-stdlib" && f.Ir.ident = "Array.make")
          r.alloc_findings
      in
      check int "Array.make reached through the functor" 1 (List.length hits);
      let f = List.hd hits in
      check string "finding sits in the instantiated argument"
        "Probe.Impl.make" (containing f);
      check string "rooted at the entry point" "Probe.hot_entry" f.Ir.root;
      check int "witness spells the instantiation path" 3
        (List.length f.Ir.witness))

let test_first_class_dispatch () =
  with_dir (fun dir ->
      let r =
        analyze dir ~roots:"hot Probe.drive\n"
          [
            ("probe_impl.ml", "let go n = [ n ]\n");
            ( "probe.ml",
              {|
module type D = sig val go : int -> int list end
let pick () = (module Probe_impl : D)
let drive n =
  let (module M) = pick () in
  M.go n
|}
            );
          ]
      in
      check (Alcotest.list string) "no roots/allow errors" [] r.errors;
      (* [M.go] is a first-class call: every packed module providing
         [go] is a candidate, so the list cons in Probe_impl is found. *)
      check bool "packed module's allocation found" true
        (List.exists
           (fun f ->
             f.Ir.category = "alloc-construct"
             && containing f = "Probe_impl.go"
             && f.Ir.root = "Probe.drive")
           r.alloc_findings))

let test_higher_order_and_allowlist () =
  let sources = [ ("probe.ml", "let apply f x = f x\n") ] in
  let roots = "hot Probe.apply\n" in
  with_dir (fun dir ->
      let r = analyze dir ~roots sources in
      check bool "unknown callee fails the run" false r.ok;
      check bool "higher-order head is an unknown-callee verdict" true
        (List.exists
           (fun f -> f.Ir.category = "unknown-callee" && f.Ir.ident = "f")
           r.alloc_findings));
  with_dir (fun dir ->
      let r =
        analyze dir ~roots
          ~allow:"Probe.apply unknown-callee:f  # reviewed dispatch\n" sources
      in
      check bool "allowlisted verdict passes" true r.ok;
      check int "finding suppressed" 0 (List.length r.alloc_findings));
  with_dir (fun dir ->
      let r =
        analyze dir ~roots
          ~allow:
            "Probe.apply unknown-callee:f  # reviewed dispatch\n\
             Probe.apply alloc-ref  # covers nothing\n"
          sources
      in
      check bool "stale allowlist entry fails the run" false r.ok;
      check int "stale entry reported" 1 (List.length r.errors))

let test_taint_reaches_sink () =
  with_dir (fun dir ->
      let r =
        analyze dir ~roots:"sink Probe\n"
          [
            ( "probe.ml",
              {|
let pure x = x + 1
let stamp () = Sys.time ()
let write_row x = ignore (stamp ()); pure x
|}
            );
          ]
      in
      check bool "wall-clock read fails the sink proof" false r.ok;
      check bool "Sys.time is the reported source" true
        (List.exists
           (fun f -> f.Ir.category = "taint" && f.Ir.ident = "Sys.time")
           r.taint_findings);
      check int "three sink functions" 3 r.sink_roots)

let test_attribute_roots_and_rot () =
  with_dir (fun dir ->
      let sources =
        [ ("probe.ml", "let[@hot] spin n = Array.make n 0\n") ]
      in
      let r = analyze dir ~roots:"# no file roots\n" sources in
      check int "[@hot] attribute registers a root" 1 r.hot_roots;
      check bool "attribute root is analyzed" true
        (List.exists
           (fun f -> f.Ir.root = "Probe.spin" && f.Ir.category = "alloc-stdlib")
           r.alloc_findings);
      (* A roots line naming no function must fail, not silently pass. *)
      let r = analyze dir ~roots:"hot Probe.nope\n" sources in
      check bool "stale roots line fails the run" false r.ok;
      check int "stale roots line reported" 1 (List.length r.errors))

let () =
  Alcotest.run "analyze"
    [
      ( "graph",
        [
          Alcotest.test_case "functor instantiation" `Quick
            test_functor_instantiation;
          Alcotest.test_case "first-class dispatch" `Quick
            test_first_class_dispatch;
          Alcotest.test_case "higher-order verdicts + allowlist" `Quick
            test_higher_order_and_allowlist;
        ] );
      ( "passes",
        [
          Alcotest.test_case "Simplif ref elimination" `Quick
            test_simplif_refs;
          Alcotest.test_case "taint reaches sink" `Quick
            test_taint_reaches_sink;
          Alcotest.test_case "attribute roots + rot" `Quick
            test_attribute_roots_and_rot;
        ] );
    ]
