(* Tests for the MICA-style KV store: keyhash, slab allocator, spinlock,
   and the store with its optimistic-read / CREW concurrency scheme. *)

open Kvstore

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* ------------------------------------------------------------------ *)
(* Keyhash *)

let test_keyhash_deterministic () =
  check Alcotest.int64 "same key same hash" (Keyhash.hash "hello") (Keyhash.hash "hello");
  if Keyhash.hash "hello" = Keyhash.hash "hellp" then
    Alcotest.fail "close keys should differ"

let test_keyhash_field_ranges () =
  List.iter
    (fun key ->
      let h = Keyhash.hash key in
      let p = Keyhash.partition_of h ~bits:4 in
      if p < 0 || p >= 16 then Alcotest.failf "partition %d out of range" p;
      let b = Keyhash.bucket_of h ~bits:10 in
      if b < 0 || b >= 1024 then Alcotest.failf "bucket %d out of range" b;
      let t = Keyhash.tag_of h in
      if t < 1 || t > 0xFFFF then Alcotest.failf "tag %d out of range" t)
    [ ""; "a"; "key1"; "key2"; String.make 100 'x' ]

let test_keyhash_partition_spread () =
  (* 4 partition bits over 4096 sequential keys: every partition hit. *)
  let seen = Array.make 16 0 in
  for i = 0 to 4095 do
    let p = Keyhash.partition_of (Keyhash.hash (Printf.sprintf "key-%d" i)) ~bits:4 in
    seen.(p) <- seen.(p) + 1
  done;
  Array.iteri
    (fun i c -> if c = 0 then Alcotest.failf "partition %d never hit" i)
    seen

let test_keyhash_bits_validation () =
  let h = Keyhash.hash "x" in
  Alcotest.check_raises "negative bits" (Invalid_argument "Keyhash: bits out of [0, 30]")
    (fun () -> ignore (Keyhash.partition_of h ~bits:(-1)));
  Alcotest.check_raises "too many bits" (Invalid_argument "Keyhash: bits out of [0, 30]")
    (fun () -> ignore (Keyhash.bucket_of h ~bits:31));
  (* bits = 0 is the degenerate single-partition case. *)
  check int "0 bits -> partition 0" 0 (Keyhash.partition_of h ~bits:0)

let prop_tag_never_zero =
  QCheck.Test.make ~name:"tag never 0 (0 marks empty slots)" ~count:500
    QCheck.small_string
    (fun key -> Keyhash.tag_of (Keyhash.hash key) <> 0)

(* ------------------------------------------------------------------ *)
(* Slab *)

let test_slab_class_rounding () =
  check int "min class" 16 (Slab.class_of_size 0);
  check int "exact" 16 (Slab.class_of_size 16);
  check int "rounds up" 32 (Slab.class_of_size 17);
  check int "large" 262144 (Slab.class_of_size 250_000)

let test_slab_alloc_write_read () =
  let s = Slab.create ~capacity:4096 in
  let r = Slab.alloc s 10 in
  Slab.write s r (Bytes.of_string "0123456789");
  check Alcotest.string "roundtrip" "0123456789" (Bytes.to_string (Slab.read s r));
  check int "len" 10 r.Slab.len;
  check int "cap is class" 16 r.Slab.cap;
  check int "used" 16 (Slab.used_bytes s);
  check int "live" 1 (Slab.live_regions s)

let test_slab_free_and_reuse () =
  let s = Slab.create ~capacity:64 in
  let r1 = Slab.alloc s 30 in
  (* class 32 *)
  Slab.free s r1;
  check int "used after free" 0 (Slab.used_bytes s);
  let r2 = Slab.alloc s 25 in
  (* same class: reuses the freed region, no new arena consumption *)
  check int "recycled offset" r1.Slab.off r2.Slab.off;
  let r3 = Slab.alloc s 20 in
  (* fresh region from the remaining 32 bytes *)
  check bool "distinct offsets" true (r3.Slab.off <> r2.Slab.off)

let test_slab_double_free () =
  let s = Slab.create ~capacity:64 in
  let r = Slab.alloc s 8 in
  Slab.free s r;
  Alcotest.check_raises "double free" (Invalid_argument "Slab.free: double free")
    (fun () -> Slab.free s r)

let test_slab_out_of_memory () =
  let s = Slab.create ~capacity:32 in
  ignore (Slab.alloc s 32);
  (match Slab.alloc s 1 with
  | _ -> Alcotest.fail "expected Out_of_memory"
  | exception Slab.Out_of_memory 1 -> ()
  | exception Slab.Out_of_memory n -> Alcotest.failf "wrong size in exn: %d" n)

let test_slab_write_overflow () =
  let s = Slab.create ~capacity:64 in
  let r = Slab.alloc s 8 in
  Alcotest.check_raises "write too big"
    (Invalid_argument "Slab.write: data exceeds region capacity") (fun () ->
      Slab.write s r (Bytes.create 17))

let prop_slab_many_alloc_free =
  QCheck.Test.make ~name:"slab conserves accounting through alloc/free churn"
    ~count:50
    QCheck.(list_of_size Gen.(1 -- 50) (int_range 1 500))
    (fun sizes ->
      let s = Slab.create ~capacity:(1 lsl 20) in
      let regions = List.map (fun n -> Slab.alloc s n) sizes in
      let live_ok = Slab.live_regions s = List.length sizes in
      List.iter (Slab.free s) regions;
      live_ok && Slab.live_regions s = 0 && Slab.used_bytes s = 0)

(* ------------------------------------------------------------------ *)
(* Spinlock *)

let test_spinlock_basic () =
  let l = Spinlock.create () in
  check bool "acquire free lock" true (Spinlock.try_lock l);
  check bool "contended try fails" false (Spinlock.try_lock l);
  Spinlock.unlock l;
  check bool "re-acquire" true (Spinlock.try_lock l);
  Spinlock.unlock l

let test_spinlock_mutual_exclusion () =
  (* Two domains increment a plain (non-atomic) counter under the lock:
     the final count is exact only if the lock provides mutual exclusion. *)
  let l = Spinlock.create () in
  let counter = ref 0 in
  let per_domain = 50_000 in
  let worker () =
    Domain.spawn (fun () ->
        for _ = 1 to per_domain do
          Spinlock.with_lock l (fun () -> incr counter)
        done)
  in
  let d1 = worker () and d2 = worker () in
  Domain.join d1;
  Domain.join d2;
  check int "no lost updates" (2 * per_domain) !counter

let test_spinlock_releases_on_exception () =
  let l = Spinlock.create () in
  (try Spinlock.with_lock l (fun () -> failwith "boom") with Failure _ -> ());
  check bool "released after exception" true (Spinlock.try_lock l);
  Spinlock.unlock l

(* The specialized default must behave like [Make (Atomic_ops.Native)] —
   the default exists only to avoid functor indirection on the hot path. *)
module NativeLock = Spinlock.Make (Atomic_ops.Native)

let test_spinlock_functor_equivalence () =
  let d = Spinlock.create () and n = NativeLock.create () in
  let ops =
    [ `Try; `Try; `Unlock; `Lock; `Try; `Unlock; `Try; `Unlock; `Try ]
  in
  List.iter
    (fun op ->
      match op with
      | `Try ->
          check bool "try_lock agrees" (NativeLock.try_lock n)
            (Spinlock.try_lock d)
      | `Lock ->
          Spinlock.lock d;
          NativeLock.lock n
      | `Unlock ->
          Spinlock.unlock d;
          NativeLock.unlock n)
    ops;
  Spinlock.unlock d;
  NativeLock.unlock n;
  let counter = ref 0 in
  NativeLock.with_lock n (fun () -> incr counter);
  check int "with_lock runs the body" 1 !counter;
  check bool "released after with_lock" true (NativeLock.try_lock n)

(* ------------------------------------------------------------------ *)
(* Store *)

let small_store () = Store.create ~partition_bits:2 ~bucket_bits:4 ~value_arena_bytes:(1 lsl 20) ()

let test_store_put_get () =
  let s = small_store () in
  Store.put s ~guard:`Lock "alpha" (Bytes.of_string "one");
  Store.put s ~guard:`Lock "beta" (Bytes.of_string "two");
  check (Alcotest.option Alcotest.string) "get alpha" (Some "one")
    (Option.map Bytes.to_string (Store.get s "alpha"));
  check (Alcotest.option Alcotest.string) "get beta" (Some "two")
    (Option.map Bytes.to_string (Store.get s "beta"));
  check (Alcotest.option Alcotest.string) "get missing" None
    (Option.map Bytes.to_string (Store.get s "gamma"));
  check int "item count" 2 (Store.stats s).Store.items

let test_store_update_in_place () =
  let s = small_store () in
  Store.put s ~guard:`Crew "k" (Bytes.of_string "short");
  Store.put s ~guard:`Crew "k" (Bytes.of_string "a much longer replacement value");
  check (Alcotest.option Alcotest.string) "updated" (Some "a much longer replacement value")
    (Option.map Bytes.to_string (Store.get s "k"));
  check int "still one item" 1 (Store.stats s).Store.items;
  (* The old region must have been freed: churn the same key and verify
     arena usage stays bounded. *)
  for i = 1 to 1000 do
    Store.put s ~guard:`Crew "k" (Bytes.of_string (Printf.sprintf "value-%d" i))
  done;
  let used = (Store.stats s).Store.value_bytes in
  if used > 1024 then Alcotest.failf "arena leak: %d bytes for one small item" used

let test_store_size_of () =
  let s = small_store () in
  Store.put s ~guard:`Lock "k" (Bytes.create 12345);
  check (Alcotest.option int) "size_of" (Some 12345) (Store.size_of s "k");
  check (Alcotest.option int) "size_of missing" None (Store.size_of s "nope");
  check bool "mem" true (Store.mem s "k")

let test_store_delete () =
  let s = small_store () in
  Store.put s ~guard:`Lock "k" (Bytes.of_string "v");
  check bool "delete present" true (Store.delete s ~guard:`Lock "k");
  check bool "delete absent" false (Store.delete s ~guard:`Lock "k");
  check (Alcotest.option int) "gone" None (Store.size_of s "k");
  check int "count" 0 (Store.stats s).Store.items;
  (* The slot is reusable. *)
  Store.put s ~guard:`Lock "k" (Bytes.of_string "w");
  check (Alcotest.option Alcotest.string) "reinserted" (Some "w")
    (Option.map Bytes.to_string (Store.get s "k"))

let test_store_overflow_chains () =
  (* 1 partition x 2 buckets x 7 slots = 14 slots; 200 keys force overflow
     bucket chaining, and every key must remain reachable. *)
  let s = Store.create ~partition_bits:0 ~bucket_bits:1 ~value_arena_bytes:(1 lsl 20) () in
  for i = 1 to 200 do
    Store.put s ~guard:`Lock (Printf.sprintf "key%d" i)
      (Bytes.of_string (Printf.sprintf "v%d" i))
  done;
  check int "all stored" 200 (Store.stats s).Store.items;
  if (Store.stats s).Store.overflow_buckets = 0 then
    Alcotest.fail "expected overflow buckets";
  for i = 1 to 200 do
    check (Alcotest.option Alcotest.string)
      (Printf.sprintf "key%d survives" i)
      (Some (Printf.sprintf "v%d" i))
      (Option.map Bytes.to_string (Store.get s (Printf.sprintf "key%d" i)))
  done

let test_store_iter () =
  let s = small_store () in
  for i = 1 to 50 do
    Store.put s ~guard:`Lock (Printf.sprintf "k%d" i) (Bytes.create i)
  done;
  let count = ref 0 and bytes = ref 0 in
  Store.iter s (fun _ size ->
      incr count;
      bytes := !bytes + size);
  check int "iter count" 50 !count;
  check int "iter sizes" (50 * 51 / 2) !bytes

let test_store_concurrent_readers_writer () =
  (* One writer updates keys with self-describing values; reader domains
     must never observe a value inconsistent with its key.  Exercises the
     bucket-epoch optimistic read protocol for real. *)
  let s = Store.create ~partition_bits:2 ~bucket_bits:4 ~value_arena_bytes:(1 lsl 22) () in
  let keys = Array.init 16 (fun i -> Printf.sprintf "key-%d" i) in
  Array.iteri
    (fun i k -> Store.put s ~guard:`Lock k (Bytes.of_string (Printf.sprintf "%d:0" i)))
    keys;
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let reader () =
    Domain.spawn (fun () ->
        let r = Dsim.Rng.create (Domain.self () :> int) in
        while not (Atomic.get stop) do
          let i = Dsim.Rng.int r 16 in
          match Store.get s keys.(i) with
          | Some v ->
              let str = Bytes.to_string v in
              (match String.index_opt str ':' with
              | Some colon ->
                  if int_of_string (String.sub str 0 colon) <> i then
                    Atomic.incr violations
              | None -> Atomic.incr violations)
          | None -> Atomic.incr violations
        done)
  in
  let writer =
    Domain.spawn (fun () ->
        for round = 1 to 20_000 do
          let i = round mod 16 in
          Store.put s ~guard:`Lock keys.(i)
            (Bytes.of_string (Printf.sprintf "%d:%d" i round))
        done;
        Atomic.set stop true)
  in
  let r1 = reader () and r2 = reader () in
  Domain.join writer;
  Domain.join r1;
  Domain.join r2;
  check int "no torn reads" 0 (Atomic.get violations)

let test_store_concurrent_mixed_churn () =
  (* Four domains doing mixed put/get/delete churn on a shared key space:
     no crashes, no torn reads, and a sane final state. *)
  let s = Store.create ~partition_bits:2 ~bucket_bits:3 ~value_arena_bytes:(1 lsl 22) () in
  let n_keys = 32 in
  let keys = Array.init n_keys (fun i -> Printf.sprintf "churn-%d" i) in
  let errors = Atomic.make 0 in
  let worker seed =
    Domain.spawn (fun () ->
        let rng = Dsim.Rng.create seed in
        for _ = 1 to 20_000 do
          let i = Dsim.Rng.int rng n_keys in
          match Dsim.Rng.int rng 4 with
          | 0 | 1 -> (
              (* The value length encodes the key index. *)
              match Store.get s keys.(i) with
              | Some v -> if Bytes.length v mod n_keys <> i then Atomic.incr errors
              | None -> ())
          | 2 -> Store.put s ~guard:`Lock keys.(i) (Bytes.create (i + (n_keys * Dsim.Rng.int rng 4)))
          | _ -> ignore (Store.delete s ~guard:`Lock keys.(i))
        done)
  in
  let ds = List.init 4 (fun d -> worker (100 + d)) in
  List.iter Domain.join ds;
  check int "no inconsistent reads" 0 (Atomic.get errors);
  (* Every surviving key must still be internally consistent. *)
  Array.iteri
    (fun i k ->
      match Store.get s k with
      | Some v -> if Bytes.length v mod n_keys <> i then Alcotest.fail "corrupt survivor"
      | None -> ())
    keys

let prop_store_model_check =
  (* Compare the store against a Hashtbl model under a random op sequence. *)
  QCheck.Test.make ~name:"store agrees with model" ~count:30
    QCheck.(list_of_size Gen.(1 -- 200)
              (triple (int_bound 20) (int_bound 2) (int_range 0 64)))
    (fun ops ->
      let s = Store.create ~partition_bits:1 ~bucket_bits:2
          ~value_arena_bytes:(1 lsl 20) ()
      in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (key_idx, op, size) ->
          let key = Printf.sprintf "key%d" key_idx in
          match op with
          | 0 ->
              let v = Bytes.make size 'x' in
              Store.put s ~guard:`Lock key v;
              Hashtbl.replace model key size;
              true
          | 1 ->
              let expected = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Store.delete s ~guard:`Lock key = expected
          | _ -> Store.size_of s key = Hashtbl.find_opt model key)
        ops
      && (Store.stats s).Store.items = Hashtbl.length model)

let () =
  Alcotest.run "kvstore"
    [
      ( "keyhash",
        [
          Alcotest.test_case "deterministic" `Quick test_keyhash_deterministic;
          Alcotest.test_case "field ranges" `Quick test_keyhash_field_ranges;
          Alcotest.test_case "partition spread" `Quick test_keyhash_partition_spread;
          Alcotest.test_case "bits validation" `Quick test_keyhash_bits_validation;
        ]
        @ qsuite [ prop_tag_never_zero ] );
      ( "slab",
        [
          Alcotest.test_case "class rounding" `Quick test_slab_class_rounding;
          Alcotest.test_case "alloc write read" `Quick test_slab_alloc_write_read;
          Alcotest.test_case "free and reuse" `Quick test_slab_free_and_reuse;
          Alcotest.test_case "double free" `Quick test_slab_double_free;
          Alcotest.test_case "out of memory" `Quick test_slab_out_of_memory;
          Alcotest.test_case "write overflow" `Quick test_slab_write_overflow;
        ]
        @ qsuite [ prop_slab_many_alloc_free ] );
      ( "spinlock",
        [
          Alcotest.test_case "basic" `Quick test_spinlock_basic;
          Alcotest.test_case "mutual exclusion" `Slow test_spinlock_mutual_exclusion;
          Alcotest.test_case "exception safety" `Quick test_spinlock_releases_on_exception;
          Alcotest.test_case "functor equivalence" `Quick
            test_spinlock_functor_equivalence;
        ] );
      ( "store",
        [
          Alcotest.test_case "put get" `Quick test_store_put_get;
          Alcotest.test_case "update in place" `Quick test_store_update_in_place;
          Alcotest.test_case "size_of" `Quick test_store_size_of;
          Alcotest.test_case "delete" `Quick test_store_delete;
          Alcotest.test_case "overflow chains" `Quick test_store_overflow_chains;
          Alcotest.test_case "iter" `Quick test_store_iter;
          Alcotest.test_case "concurrent readers/writer" `Slow
            test_store_concurrent_readers_writer;
          Alcotest.test_case "concurrent mixed churn" `Slow
            test_store_concurrent_mixed_churn;
        ]
        @ qsuite [ prop_store_model_check ] );
    ]
