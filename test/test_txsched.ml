(* Tests for the frame-level round-robin TX scheduler — the piece that
   keeps small replies from serializing behind multi-hundred-frame large
   replies on the wire.  Driven by a real Dsim simulation so completion
   times are exact. *)

let check = Alcotest.check
let approx t = Alcotest.float t
let bool = Alcotest.bool
let int = Alcotest.int

(* 40 Gbps -> 0.0002 us/byte.  A full frame (1472B payload -> 1538 wire
   bytes) takes 0.3076 us. *)
let us_per_byte = 8.0e-3 /. 40.0

let full_frame_wire = Netsim.Frame.wire_bytes_for_frame_payload Netsim.Frame.max_udp_payload

(* The scheduler reports completions through one [on_complete] callback
   keyed by the sender's token; for test ergonomics, [send] below assigns
   tokens from a counter and dispatches to a per-send closure, recovering
   the old per-send [~on_complete] shape. *)
let cbs : (float -> unit) array ref = ref [||]
let ncb = ref 0

let make_sched sim ~queues =
  cbs := Array.make 64 (fun (_ : float) -> ());
  ncb := 0;
  (* Tie the creation knot the same way the engine does: [schedule] fires
     [frame_done] on the scheduler it is creating. *)
  let tx_cell = ref None in
  let tx =
    Netsim.Txsched.create ~gbps:40.0 ~queues
      ~schedule:(fun d ->
        Dsim.Sim.schedule_after sim d (fun () ->
            match !tx_cell with
            | Some tx -> Netsim.Txsched.frame_done tx
            | None -> assert false))
      ~now:(fun () -> Dsim.Sim.now sim)
      ~on_complete:(fun tok t -> !cbs.(tok) t)
  in
  tx_cell := Some tx;
  tx

let send tx ~queue ~payload_bytes ~on_complete =
  let tok = !ncb in
  incr ncb;
  if tok >= Array.length !cbs then begin
    let n = Array.make (2 * Array.length !cbs) (fun (_ : float) -> ()) in
    Array.blit !cbs 0 n 0 (Array.length !cbs);
    cbs := n
  end;
  !cbs.(tok) <- on_complete;
  Netsim.Txsched.send tx ~queue ~payload_bytes ~token:tok

let test_single_message_timing () =
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:4 in
  let done_at = ref 0.0 in
  send tx ~queue:0 ~payload_bytes:1000
    ~on_complete:(fun t -> done_at := t);
  Dsim.Sim.run_until_idle sim;
  let expected = float_of_int (Netsim.Frame.wire_bytes_for_payload 1000) *. us_per_byte in
  check (approx 1e-9) "one frame, wire time" expected !done_at;
  check int "bytes accounted" (Netsim.Frame.wire_bytes_for_payload 1000)
    (Netsim.Txsched.total_bytes tx)

let test_multi_frame_message () =
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:2 in
  let done_at = ref 0.0 in
  (* 3 full fragments + remainder. *)
  let payload = (3 * Netsim.Frame.max_udp_payload) + 100 in
  send tx ~queue:0 ~payload_bytes:payload
    ~on_complete:(fun t -> done_at := t);
  Dsim.Sim.run_until_idle sim;
  let expected = float_of_int (Netsim.Frame.wire_bytes_for_payload payload) *. us_per_byte in
  check (approx 1e-6) "all frames serialized" expected !done_at

let test_exact_multiple_payload () =
  (* A payload that is an exact multiple of the fragment size must not
     emit a zero-byte trailer frame. *)
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:1 in
  let done_at = ref 0.0 in
  let payload = 2 * Netsim.Frame.max_udp_payload in
  send tx ~queue:0 ~payload_bytes:payload
    ~on_complete:(fun t -> done_at := t);
  Dsim.Sim.run_until_idle sim;
  check (approx 1e-6) "exactly two frames"
    (float_of_int (2 * full_frame_wire) *. us_per_byte)
    !done_at;
  check int "no trailer bytes" (2 * full_frame_wire) (Netsim.Txsched.total_bytes tx)

let test_small_interleaves_past_large () =
  (* THE property: a 1-frame reply on queue 1, submitted while a 100-frame
     reply drains on queue 0, completes after ~2 frame times — not after
     100. *)
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:2 in
  let large_done = ref 0.0 and small_done = ref 0.0 in
  let large_payload = 100 * Netsim.Frame.max_udp_payload in
  send tx ~queue:0 ~payload_bytes:large_payload
    ~on_complete:(fun t -> large_done := t);
  send tx ~queue:1 ~payload_bytes:100
    ~on_complete:(fun t -> small_done := t);
  Dsim.Sim.run_until_idle sim;
  let frame_time = float_of_int full_frame_wire *. us_per_byte in
  check bool "small done within ~2 frame times" true (!small_done < 2.5 *. frame_time);
  (* The large message still transmits all of its frames. *)
  let large_alone =
    float_of_int (Netsim.Frame.wire_bytes_for_payload large_payload) *. us_per_byte
  in
  check bool "large takes at least its solo time" true (!large_done >= large_alone);
  check bool "large stretched by the interleaved frame" true
    (!large_done > large_alone)

let test_fifo_within_queue () =
  (* Messages on the SAME queue are FIFO: a later message cannot overtake. *)
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:2 in
  let first = ref 0.0 and second = ref 0.0 in
  send tx ~queue:0 ~payload_bytes:50_000 ~on_complete:(fun t -> first := t);
  send tx ~queue:0 ~payload_bytes:10 ~on_complete:(fun t -> second := t);
  Dsim.Sim.run_until_idle sim;
  check bool "same-queue order preserved" true (!second > !first)

let test_round_robin_fair_shares () =
  (* Two queues with equal standing backlogs finish within one frame of
     each other. *)
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:2 in
  let d0 = ref 0.0 and d1 = ref 0.0 in
  let payload = 50 * Netsim.Frame.max_udp_payload in
  send tx ~queue:0 ~payload_bytes:payload ~on_complete:(fun t -> d0 := t);
  send tx ~queue:1 ~payload_bytes:payload ~on_complete:(fun t -> d1 := t);
  Dsim.Sim.run_until_idle sim;
  let frame_time = float_of_int full_frame_wire *. us_per_byte in
  check bool "fair finish" true (abs_float (!d0 -. !d1) <= 1.5 *. frame_time)

let test_utilization_and_reset () =
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:1 in
  send tx ~queue:0 ~payload_bytes:1000 ~on_complete:(fun _ -> ());
  Dsim.Sim.run_until_idle sim;
  let busy = float_of_int (Netsim.Frame.wire_bytes_for_payload 1000) *. us_per_byte in
  check (approx 1e-9) "utilization" (busy /. 10.0) (Netsim.Txsched.utilization tx ~elapsed:10.0);
  Netsim.Txsched.reset_counters tx;
  check (approx 1e-9) "reset" 0.0 (Netsim.Txsched.utilization tx ~elapsed:10.0);
  check int "bytes reset" 0 (Netsim.Txsched.total_bytes tx)

let test_idle_restart () =
  (* The wire goes idle, then a later message starts immediately at its
     submission time. *)
  let sim = Dsim.Sim.create () in
  let tx = make_sched sim ~queues:1 in
  let d = ref 0.0 in
  send tx ~queue:0 ~payload_bytes:100 ~on_complete:(fun _ -> ());
  Dsim.Sim.schedule_at sim 50.0 (fun () ->
      send tx ~queue:0 ~payload_bytes:100 ~on_complete:(fun t -> d := t));
  Dsim.Sim.run_until_idle sim;
  let wire = float_of_int (Netsim.Frame.wire_bytes_for_payload 100) *. us_per_byte in
  check (approx 1e-9) "starts at submit time" (50.0 +. wire) !d;
  check bool "idle afterwards" true (not (Netsim.Txsched.busy tx));
  check int "nothing pending" 0 (Netsim.Txsched.pending_messages tx)

let prop_all_messages_complete =
  QCheck.Test.make ~name:"every submitted message completes exactly once" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_bound 3) (int_bound 20_000)))
    (fun msgs ->
      let sim = Dsim.Sim.create () in
      let tx = make_sched sim ~queues:4 in
      let completions = ref 0 in
      List.iter
        (fun (q, payload) ->
          send tx ~queue:q ~payload_bytes:payload
            ~on_complete:(fun _ -> incr completions))
        msgs;
      Dsim.Sim.run_until_idle sim;
      !completions = List.length msgs && Netsim.Txsched.pending_messages tx = 0)

let prop_total_bytes_conserved =
  QCheck.Test.make ~name:"wire bytes = sum of message wire bytes" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_bound 50_000))
    (fun payloads ->
      let sim = Dsim.Sim.create () in
      let tx = make_sched sim ~queues:3 in
      List.iteri
        (fun i p ->
          send tx ~queue:(i mod 3) ~payload_bytes:p
            ~on_complete:(fun _ -> ()))
        payloads;
      Dsim.Sim.run_until_idle sim;
      let expected =
        List.fold_left (fun acc p -> acc + Netsim.Frame.wire_bytes_for_payload p) 0 payloads
      in
      Netsim.Txsched.total_bytes tx = expected)

let prop_single_queue_matches_txlink =
  (* With one queue and back-to-back submissions, frame-level scheduling
     degenerates to the simple FIFO line model: both models must give the
     same completion time for the last message. *)
  QCheck.Test.make ~name:"single queue degenerates to Txlink" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (int_bound 50_000))
    (fun payloads ->
      let sim = Dsim.Sim.create () in
      let tx = make_sched sim ~queues:1 in
      let last_sched = ref 0.0 in
      List.iter
        (fun p ->
          send tx ~queue:0 ~payload_bytes:p
            ~on_complete:(fun t -> last_sched := t))
        payloads;
      Dsim.Sim.run_until_idle sim;
      let link = Netsim.Txlink.create ~gbps:40.0 in
      let last_link =
        List.fold_left
          (fun _ p ->
            Netsim.Txlink.transmit link ~now:0.0
              ~bytes:(Netsim.Frame.wire_bytes_for_payload p))
          0.0 payloads
      in
      abs_float (!last_sched -. last_link) < 1e-6)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "txsched"
    [
      ( "timing",
        [
          Alcotest.test_case "single message" `Quick test_single_message_timing;
          Alcotest.test_case "multi frame" `Quick test_multi_frame_message;
          Alcotest.test_case "exact multiple payload" `Quick test_exact_multiple_payload;
          Alcotest.test_case "idle restart" `Quick test_idle_restart;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "small interleaves past large" `Quick
            test_small_interleaves_past_large;
          Alcotest.test_case "fifo within queue" `Quick test_fifo_within_queue;
          Alcotest.test_case "round robin fairness" `Quick test_round_robin_fair_shares;
        ] );
      ( "accounting",
        [ Alcotest.test_case "utilization + reset" `Quick test_utilization_and_reset ]
        @ qsuite
            [ prop_all_messages_complete; prop_total_bytes_conserved;
              prop_single_queue_matches_txlink ] );
    ]
