(* Tests for the network substrate: framing arithmetic, Toeplitz RSS hash
   (Microsoft verification vectors), lock-free ring, FIFO and TX line. *)

open Netsim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Frame *)

let test_frame_constants () =
  check int "max udp payload" 1472 Frame.max_udp_payload

let test_frames_for_payload () =
  check int "0 bytes -> 1 frame" 1 (Frame.frames_for_payload 0);
  check int "1 byte" 1 (Frame.frames_for_payload 1);
  check int "exactly one frame" 1 (Frame.frames_for_payload 1472);
  check int "one byte over" 2 (Frame.frames_for_payload 1473);
  check int "500KB" ((500_000 + 1471) / 1472) (Frame.frames_for_payload 500_000);
  Alcotest.check_raises "negative" (Invalid_argument "Frame.frames_for_payload: negative size")
    (fun () -> ignore (Frame.frames_for_payload (-1)))

let test_wire_bytes () =
  let per_frame_overhead =
    Frame.udp_header + Frame.ip_header + Frame.eth_header + Frame.eth_overhead_on_wire
  in
  check int "empty payload still costs headers" per_frame_overhead
    (Frame.wire_bytes_for_payload 0);
  check int "single full frame" (1472 + per_frame_overhead)
    (Frame.wire_bytes_for_payload 1472);
  check int "two frames" (1473 + (2 * per_frame_overhead))
    (Frame.wire_bytes_for_payload 1473)

let prop_wire_bytes_monotonic =
  QCheck.Test.make ~name:"wire bytes monotonic in payload" ~count:500
    QCheck.(pair (int_bound 2_000_000) (int_bound 2_000_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Frame.wire_bytes_for_payload lo <= Frame.wire_bytes_for_payload hi)

let prop_frames_match_wire_bytes =
  QCheck.Test.make ~name:"wire bytes consistent with frame count" ~count:500
    QCheck.(int_bound 2_000_000)
    (fun n ->
      let per_frame_overhead =
        Frame.udp_header + Frame.ip_header + Frame.eth_header + Frame.eth_overhead_on_wire
      in
      Frame.wire_bytes_for_payload n
      = n + (Frame.frames_for_payload n * per_frame_overhead))

(* ------------------------------------------------------------------ *)
(* Toeplitz: the canonical Microsoft RSS verification suite (IPv4 with
   ports). *)

let ip a b c d = Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)

let microsoft_vectors =
  [
    (ip 66 9 149 187, 2794, ip 161 142 100 80, 1766, 0x51ccc178l);
    (ip 199 92 111 2, 14230, ip 65 69 140 83, 4739, 0xc626b0eal);
    (ip 24 19 198 95, 12898, ip 12 22 207 184, 38024, 0x5c2b394al);
    (ip 38 27 205 30, 48228, ip 209 142 163 6, 2217, 0xafc7327fl);
    (ip 153 39 163 191, 44251, ip 202 188 127 2, 1303, 0x10e828a2l);
  ]

let test_toeplitz_vectors () =
  List.iter
    (fun (src_ip, src_port, dst_ip, dst_port, expected) ->
      let h = Toeplitz.hash_ipv4 ~src_ip ~dst_ip ~src_port ~dst_port () in
      check Alcotest.int32 "MS vector" expected h)
    microsoft_vectors

let test_toeplitz_queue_targeting () =
  (* The §5.1 port-probing procedure must land each flow on the intended
     queue. *)
  let src_ip = ip 10 0 0 1 and dst_ip = ip 10 0 0 2 in
  for target = 0 to 7 do
    let port =
      Toeplitz.find_src_port ~src_ip ~dst_ip ~dst_port:11211 ~queues:8
        ~target_queue:target ()
    in
    let h = Toeplitz.hash_ipv4 ~src_ip ~dst_ip ~src_port:port ~dst_port:11211 () in
    check int "probed port hits queue" target (Toeplitz.queue_of_hash h ~queues:8)
  done

let prop_toeplitz_deterministic =
  QCheck.Test.make ~name:"toeplitz deterministic" ~count:200
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, p, q) ->
      let src_ip = Int32.of_int a and dst_ip = Int32.of_int b in
      let src_port = p land 0xFFFF and dst_port = q land 0xFFFF in
      Toeplitz.hash_ipv4 ~src_ip ~dst_ip ~src_port ~dst_port ()
      = Toeplitz.hash_ipv4 ~src_ip ~dst_ip ~src_port ~dst_port ())

(* ------------------------------------------------------------------ *)
(* Flow director *)

let test_fdir_exact_match_beats_rss () =
  let fd = Flow_director.create ~queues:8 () in
  (match Flow_director.add_rule fd { Flow_director.dst_port = 7000; src_port = None }
           ~queue:5 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rule rejected");
  check int "rule wins over hash" 5
    (Flow_director.dispatch fd ~src_ip:1l ~dst_ip:2l ~src_port:1234 ~dst_port:7000);
  (* A non-matching packet falls back to RSS deterministically. *)
  let rss =
    Toeplitz.queue_of_hash
      (Toeplitz.hash_ipv4 ~src_ip:1l ~dst_ip:2l ~src_port:1234 ~dst_port:9999 ())
      ~queues:8
  in
  check int "fallback is rss" rss
    (Flow_director.dispatch fd ~src_ip:1l ~dst_ip:2l ~src_port:1234 ~dst_port:9999)

let test_fdir_specificity () =
  let fd = Flow_director.create ~queues:8 () in
  ignore (Flow_director.add_rule fd { Flow_director.dst_port = 7000; src_port = None } ~queue:1);
  ignore
    (Flow_director.add_rule fd
       { Flow_director.dst_port = 7000; src_port = Some 4242 }
       ~queue:6);
  check int "pair rule wins" 6
    (Flow_director.dispatch fd ~src_ip:1l ~dst_ip:2l ~src_port:4242 ~dst_port:7000);
  check int "dst-only for other sources" 1
    (Flow_director.dispatch fd ~src_ip:1l ~dst_ip:2l ~src_port:1 ~dst_port:7000);
  check bool "remove" true
    (Flow_director.remove_rule fd { Flow_director.dst_port = 7000; src_port = Some 4242 });
  check int "back to dst-only" 1
    (Flow_director.dispatch fd ~src_ip:1l ~dst_ip:2l ~src_port:4242 ~dst_port:7000)

let test_fdir_capacity_and_validation () =
  let fd = Flow_director.create ~capacity:2 ~queues:4 () in
  ignore (Flow_director.add_rule fd { Flow_director.dst_port = 1; src_port = None } ~queue:0);
  ignore (Flow_director.add_rule fd { Flow_director.dst_port = 2; src_port = None } ~queue:1);
  (match Flow_director.add_rule fd { Flow_director.dst_port = 3; src_port = None } ~queue:2 with
  | Error `Table_full -> ()
  | _ -> Alcotest.fail "expected Table_full");
  (* Updating an existing rule is allowed at capacity. *)
  (match Flow_director.add_rule fd { Flow_director.dst_port = 1; src_port = None } ~queue:3 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update rejected");
  (match Flow_director.add_rule fd { Flow_director.dst_port = 4; src_port = None } ~queue:9 with
  | Error `Bad_queue -> ()
  | _ -> Alcotest.fail "expected Bad_queue");
  check int "count" 2 (Flow_director.rule_count fd)

let test_fdir_identity_program () =
  (* The §4.1 configuration: clients name the queue in the destination
     port, no port probing needed. *)
  let fd = Flow_director.create ~queues:8 () in
  Flow_director.program_identity fd ~base_port:47700;
  for q = 0 to 7 do
    check int "identity dispatch" q
      (Flow_director.dispatch fd ~src_ip:1l ~dst_ip:2l ~src_port:55555
         ~dst_port:(47700 + q))
  done

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_capacity_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Ring.create: capacity must be a power of two >= 2") (fun () ->
      ignore (Ring.create ~capacity:3));
  Alcotest.check_raises "capacity 1"
    (Invalid_argument "Ring.create: capacity must be a power of two >= 2") (fun () ->
      ignore (Ring.create ~capacity:1))

let test_ring_fifo_order () =
  let r = Ring.create ~capacity:8 in
  for i = 1 to 8 do
    check bool "push succeeds" true (Ring.try_push r i)
  done;
  check bool "push on full fails" false (Ring.try_push r 9);
  for i = 1 to 8 do
    check (Alcotest.option int) "pop order" (Some i) (Ring.try_pop r)
  done;
  check (Alcotest.option int) "pop on empty" None (Ring.try_pop r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for round = 0 to 99 do
    assert (Ring.try_push r round);
    assert (Ring.try_push r (round + 1000));
    check (Alcotest.option int) "wrap pop 1" (Some round) (Ring.try_pop r);
    check (Alcotest.option int) "wrap pop 2" (Some (round + 1000)) (Ring.try_pop r)
  done;
  check bool "empty at end" true (Ring.is_empty r)

let test_ring_concurrent () =
  (* Two producer domains, two consumer domains; every pushed element must
     be popped exactly once. *)
  let r = Ring.create ~capacity:64 in
  let per_producer = 5_000 in
  let produced = 2 * per_producer in
  let consumed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let producer base =
    Domain.spawn (fun () ->
        for i = base to base + per_producer - 1 do
          while not (Ring.try_push r i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let consumer () =
    Domain.spawn (fun () ->
        let continue = ref true in
        while !continue do
          match Ring.try_pop r with
          | Some v ->
              ignore (Atomic.fetch_and_add sum v);
              ignore (Atomic.fetch_and_add consumed 1)
          | None -> if Atomic.get consumed >= produced then continue := false
        done)
  in
  let p1 = producer 0 and p2 = producer per_producer in
  let c1 = consumer () and c2 = consumer () in
  Domain.join p1;
  Domain.join p2;
  Domain.join c1;
  Domain.join c2;
  check int "all consumed" produced (Atomic.get consumed);
  check int "sum preserved" (produced * (produced - 1) / 2) (Atomic.get sum)

let prop_ring_drain_matches_fill =
  QCheck.Test.make ~name:"ring preserves sequence" ~count:100
    QCheck.(list_of_size Gen.(int_bound 64) small_nat)
    (fun xs ->
      let r = Ring.create ~capacity:128 in
      List.iter (fun x -> assert (Ring.try_push r x)) xs;
      let rec drain acc =
        match Ring.try_pop r with Some v -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = xs)

let test_ring_pop_exn () =
  let r = Ring.create ~capacity:4 in
  Alcotest.check_raises "empty raises" Ring.Empty (fun () ->
      ignore (Ring.pop_exn r));
  assert (Ring.try_push r 1);
  assert (Ring.try_push r 2);
  check int "pop_exn order 1" 1 (Ring.pop_exn r);
  check int "pop_exn order 2" 2 (Ring.pop_exn r);
  Alcotest.check_raises "empty again" Ring.Empty (fun () ->
      ignore (Ring.pop_exn r))

let test_ring_push_pop_alloc_free () =
  (* The point of the sentinel representation: steady-state
     try_push + pop_exn must not allocate (no [Some v] boxing).  The
     measurement itself boxes a couple of floats, hence the slack: any
     per-op allocation would cost >= 2000 words here. *)
  let r = Ring.create ~capacity:8 in
  assert (Ring.try_push r 1);
  ignore (Ring.pop_exn r);
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    assert (Ring.try_push r i);
    ignore (Ring.pop_exn r)
  done;
  let words = Gc.minor_words () -. before in
  check bool
    (Printf.sprintf "allocated %.0f words over 1000 push+pop cycles" words)
    true (words < 100.)

let test_ring_length_clamped () =
  let r = Ring.create ~capacity:4 in
  check int "empty" 0 (Ring.length r);
  assert (Ring.try_push r 1);
  assert (Ring.try_push r 2);
  check int "two elements" 2 (Ring.length r);
  ignore (Ring.pop_exn r);
  check int "after pop" 1 (Ring.length r);
  (* Wrap the counters well past capacity: length must stay exact. *)
  for i = 0 to 99 do
    assert (Ring.try_push r i);
    ignore (Ring.pop_exn r)
  done;
  check int "after wrap" 1 (Ring.length r);
  (* Concurrent snapshots must stay inside the documented [0, capacity]. *)
  let stop = Atomic.make false in
  let observer =
    Domain.spawn (fun () ->
        let ok = ref true in
        while not (Atomic.get stop) do
          let len = Ring.length r in
          if len < 0 || len > 4 then ok := false
        done;
        !ok)
  in
  for i = 0 to 49_999 do
    if Ring.try_push r i then ignore (Ring.try_pop r)
  done;
  Atomic.set stop true;
  check bool "all snapshots in [0, capacity]" true (Domain.join observer)

let test_ring_mpsc_stress () =
  (* 4 producer domains, 2 consumer domains: conservation (every pushed
     element popped exactly once) and per-producer FIFO within each
     consumer's pop sequence. *)
  let r = Ring.create ~capacity:32 in
  let producers = 4 and consumers = 2 in
  let per_producer = 5_000 in
  let produced = producers * per_producer in
  let consumed = Atomic.make 0 in
  let producer p =
    Domain.spawn (fun () ->
        for i = 0 to per_producer - 1 do
          while not (Ring.try_push r ((p * per_producer) + i)) do
            Domain.cpu_relax ()
          done
        done)
  in
  let consumer () =
    Domain.spawn (fun () ->
        let got = ref [] in
        let continue = ref true in
        while !continue do
          match Ring.try_pop r with
          | Some v ->
              got := v :: !got;
              ignore (Atomic.fetch_and_add consumed 1)
          | None -> if Atomic.get consumed >= produced then continue := false
        done;
        List.rev !got)
  in
  let ps = List.init producers producer in
  let cs = List.init consumers (fun _ -> consumer ()) in
  List.iter Domain.join ps;
  let seqs = List.map Domain.join cs in
  (* Conservation: the union of consumer sequences is exactly the pushed
     set. *)
  let all = List.concat seqs in
  check int "popped count" produced (List.length all);
  let sorted = List.sort Int.compare all in
  check bool "every value exactly once" true
    (List.mapi (fun i v -> i = v) sorted |> List.for_all Fun.id);
  (* Per-producer FIFO within each consumer. *)
  List.iter
    (fun seq ->
      let last = Array.make producers (-1) in
      List.iter
        (fun v ->
          let p = v / per_producer in
          check bool "producer order preserved" true (v > last.(p));
          last.(p) <- v)
        seq)
    seqs

(* Specialized default vs [Make (Atomic_ops.Native)]: same observable
   behaviour on random push/pop programs (the bench guard's correctness
   half — the default exists only to avoid functor indirection). *)
module NativeRing = Ring.Make (Atomic_ops.Native)

let prop_ring_functor_equivalence =
  QCheck.Test.make ~name:"Make(Native) equivalent to default" ~count:200
    QCheck.(list_of_size Gen.(int_bound 100) (option small_nat))
    (fun ops ->
      (* [Some v] = push v, [None] = pop. *)
      let d = Ring.create ~capacity:8 in
      let n = NativeRing.create ~capacity:8 in
      List.for_all
        (fun op ->
          match op with
          | Some v -> Ring.try_push d v = NativeRing.try_push n v
          | None -> Ring.try_pop d = NativeRing.try_pop n)
        ops
      && Ring.length d = NativeRing.length n
      && Ring.is_empty d = NativeRing.is_empty n)

let prop_ring_mpsc_conservation =
  (* Randomized domain counts/sizes: conservation under real parallelism. *)
  QCheck.Test.make ~name:"mpsc conservation" ~count:10
    QCheck.(pair (1 -- 4) (1 -- 200))
    (fun (producers, per_producer) ->
      let r = Ring.create ~capacity:16 in
      let produced = producers * per_producer in
      let consumed = Atomic.make 0 in
      let sum = Atomic.make 0 in
      let producer p =
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              while not (Ring.try_push r ((p * per_producer) + i)) do
                Domain.cpu_relax ()
              done
            done)
      in
      let consumer =
        Domain.spawn (fun () ->
            let continue = ref true in
            while !continue do
              match Ring.try_pop r with
              | Some v ->
                  ignore (Atomic.fetch_and_add sum v);
                  ignore (Atomic.fetch_and_add consumed 1)
              | None -> if Atomic.get consumed >= produced then continue := false
            done)
      in
      let ps = List.init producers producer in
      List.iter Domain.join ps;
      Domain.join consumer;
      Atomic.get consumed = produced
      && Atomic.get sum = produced * (produced - 1) / 2)

(* ------------------------------------------------------------------ *)
(* Fifo *)

let test_fifo_basic () =
  let f = Fifo.create ~dummy:"" () in
  check bool "fresh empty" true (Fifo.is_empty f);
  Fifo.push f "a";
  Fifo.push f "b";
  check int "length" 2 (Fifo.length f);
  check (Alcotest.option Alcotest.string) "peek" (Some "a") (Fifo.peek f);
  check (Alcotest.option Alcotest.string) "pop" (Some "a") (Fifo.pop f);
  check (Alcotest.option Alcotest.string) "pop 2" (Some "b") (Fifo.pop f);
  check (Alcotest.option Alcotest.string) "pop empty" None (Fifo.pop f);
  check int "total enqueued survives pops" 2 (Fifo.total_enqueued f);
  check int "high water" 2 (Fifo.max_occupancy f)

(* ------------------------------------------------------------------ *)
(* Txlink *)

let test_txlink_serialization () =
  let tx = Txlink.create ~gbps:40.0 in
  (* 5000 bytes at 40 Gbps = 1 µs. *)
  let done1 = Txlink.transmit tx ~now:0.0 ~bytes:5000 in
  check (Alcotest.float 1e-9) "first transmission" 1.0 done1;
  (* Second transmission queues behind the first. *)
  let done2 = Txlink.transmit tx ~now:0.5 ~bytes:5000 in
  check (Alcotest.float 1e-9) "second queues" 2.0 done2;
  (* After the line is idle, transmission starts at [now]. *)
  let done3 = Txlink.transmit tx ~now:10.0 ~bytes:5000 in
  check (Alcotest.float 1e-9) "idle restart" 11.0 done3;
  check int "byte accounting" 15000 (Txlink.total_bytes tx)

let test_txlink_utilization () =
  let tx = Txlink.create ~gbps:40.0 in
  ignore (Txlink.transmit tx ~now:0.0 ~bytes:5000);
  (* 1 µs busy over 4 µs elapsed = 25 %. *)
  check (Alcotest.float 1e-9) "utilization" 0.25 (Txlink.utilization tx ~elapsed:4.0);
  Txlink.reset_counters tx;
  check (Alcotest.float 1e-9) "reset" 0.0 (Txlink.utilization tx ~elapsed:4.0)

(* ------------------------------------------------------------------ *)
(* Nic *)

let test_nic_delivery () =
  let nic = Nic.create ~queues:4 ~tx_gbps:40.0 ~dummy:"" in
  Nic.deliver nic ~queue:2 ~wire_bytes:100 ~frames:1 "req1";
  Nic.deliver nic ~queue:2 ~wire_bytes:3000 ~frames:3 "req2";
  let s = Nic.rx_stats nic 2 in
  check int "frames" 4 s.Nic.frames;
  check int "bytes" 3100 s.Nic.wire_bytes;
  check int "queue length" 2 (Fifo.length (Nic.rx nic 2));
  check int "other queue untouched" 0 (Fifo.length (Nic.rx nic 0));
  check int "total rx bytes" 3100 (Nic.total_rx_wire_bytes nic)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "netsim"
    [
      ( "frame",
        [
          Alcotest.test_case "constants" `Quick test_frame_constants;
          Alcotest.test_case "frames for payload" `Quick test_frames_for_payload;
          Alcotest.test_case "wire bytes" `Quick test_wire_bytes;
        ]
        @ qsuite [ prop_wire_bytes_monotonic; prop_frames_match_wire_bytes ] );
      ( "toeplitz",
        [
          Alcotest.test_case "microsoft vectors" `Quick test_toeplitz_vectors;
          Alcotest.test_case "queue targeting" `Quick test_toeplitz_queue_targeting;
        ]
        @ qsuite [ prop_toeplitz_deterministic ] );
      ( "flow_director",
        [
          Alcotest.test_case "exact match beats rss" `Quick test_fdir_exact_match_beats_rss;
          Alcotest.test_case "specificity" `Quick test_fdir_specificity;
          Alcotest.test_case "capacity + validation" `Quick
            test_fdir_capacity_and_validation;
          Alcotest.test_case "identity program" `Quick test_fdir_identity_program;
        ] );
      ( "ring",
        [
          Alcotest.test_case "capacity validation" `Quick test_ring_capacity_validation;
          Alcotest.test_case "fifo order" `Quick test_ring_fifo_order;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "pop_exn" `Quick test_ring_pop_exn;
          Alcotest.test_case "push+pop_exn allocation-free" `Quick
            test_ring_push_pop_alloc_free;
          Alcotest.test_case "length clamped" `Quick test_ring_length_clamped;
          Alcotest.test_case "concurrent domains" `Slow test_ring_concurrent;
          Alcotest.test_case "mpsc stress 4p/2c" `Slow test_ring_mpsc_stress;
        ]
        @ qsuite
            [
              prop_ring_drain_matches_fill;
              prop_ring_functor_equivalence;
              prop_ring_mpsc_conservation;
            ] );
      ("fifo", [ Alcotest.test_case "basic" `Quick test_fifo_basic ]);
      ( "txlink",
        [
          Alcotest.test_case "serialization" `Quick test_txlink_serialization;
          Alcotest.test_case "utilization" `Quick test_txlink_utilization;
        ] );
      ("nic", [ Alcotest.test_case "delivery" `Quick test_nic_delivery ]);
    ]
