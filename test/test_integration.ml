(* Integration tests: miniature versions of the paper's experiments,
   asserting the qualitative claims each figure makes.  These use
   [Experiment.quick_scale]; the full-size runs live in bench/. *)

let check = Alcotest.check
let bool = Alcotest.bool

let scale = Minos.Experiment.quick_scale
let cfg = Minos.Experiment.config_of_scale scale

let run ?(cfg = cfg) design load =
  Minos.Experiment.run ~cfg design Workload.Spec.default ~offered_mops:load

(* ------------------------------------------------------------------ *)
(* Figure 3 claims *)

let test_fig3_minos_dominates_tail () =
  (* "Minos does better than HKH at any load, with improvements reaching
     an order of magnitude as soon as the load exceeds 1 Mops." *)
  List.iter
    (fun load ->
      let minos = run Kvserver.Design.minos load in
      let hkh = run Kvserver.Design.hkh load in
      check bool
        (Printf.sprintf "minos < hkh p99 at %.1fM" load)
        true
        (minos.Kvserver.Metrics.p99_us < hkh.Kvserver.Metrics.p99_us))
    [ 1.0; 3.0; 5.0 ];
  let minos = run Kvserver.Design.minos 3.0 in
  let hkh = run Kvserver.Design.hkh 3.0 in
  check bool "order of magnitude at 3 Mops" true
    (10.0 *. minos.Kvserver.Metrics.p99_us < hkh.Kvserver.Metrics.p99_us)

let test_fig3_ws_between () =
  (* Work stealing mitigates HoL at moderate load but degrades toward HKH
     as load grows. *)
  let at load =
    ( (run Kvserver.Design.minos load).Kvserver.Metrics.p99_us,
      (run Kvserver.Design.hkh_ws load).Kvserver.Metrics.p99_us,
      (run Kvserver.Design.hkh load).Kvserver.Metrics.p99_us )
  in
  let m3, w3, h3 = at 3.0 in
  check bool "minos < ws at 3M" true (m3 < w3);
  check bool "ws < hkh at 3M" true (w3 < h3)

let test_fig3_minos_meets_strict_slo_near_peak () =
  (* Minos keeps p99 <= 50us (10x mean service time) deep into the load
     range. *)
  let m = run Kvserver.Design.minos 5.5 in
  check bool "stable" true m.Kvserver.Metrics.stable;
  check bool "p99 within 50us at 5.5 Mops" true (m.Kvserver.Metrics.p99_us <= 50.0)

let test_fig3_peaks () =
  (* All hardware-dispatch systems reach a similar peak; SHO peaks lower
     (software handoff bound). *)
  let peak design =
    let rec highest_stable best = function
      | [] -> best
      | load :: rest ->
          let m =
            if Kvserver.Design.equal design Kvserver.Design.sho then
              Minos.Experiment.run_sho_best ~cfg Workload.Spec.default ~offered_mops:load
            else run design load
          in
          if m.Kvserver.Metrics.stable then
            highest_stable (Float.max best m.Kvserver.Metrics.throughput_mops) rest
          else best
    in
    highest_stable 0.0 [ 5.0; 5.5; 6.0; 6.3 ]
  in
  let minos = peak Kvserver.Design.minos in
  let hkh = peak Kvserver.Design.hkh in
  let sho = peak Kvserver.Design.sho in
  check bool "minos within 10% of hkh peak" true (minos >= 0.9 *. hkh);
  check bool "sho below hkh peak" true (sho <= 0.97 *. hkh)

(* ------------------------------------------------------------------ *)
(* Figure 4 claim *)

let test_fig4_large_requests_pay_a_bounded_price () =
  (* Minos penalizes large requests (bounded, ~2x before saturation). *)
  let minos = run Kvserver.Design.minos 4.0 in
  let ws = run Kvserver.Design.hkh_ws 4.0 in
  let ml = minos.Kvserver.Metrics.large_p99_us in
  let wl = ws.Kvserver.Metrics.large_p99_us in
  check bool "minos large p99 finite" true ((not (Float.is_nan ml)) && ml > 0.0);
  (* Penalty factor stays within ~4x of the stealing baseline at this
     moderate load (paper: up to 2x near saturation). *)
  check bool "bounded penalty" true (ml < 4.0 *. wl);
  (* ...and the overall p99 win is much larger than the large-request
     loss. *)
  check bool "trade is worth it" true
    (ws.Kvserver.Metrics.p99_us /. minos.Kvserver.Metrics.p99_us > 2.0)

(* ------------------------------------------------------------------ *)
(* Figure 5 claim *)

let test_fig5_write_intensive () =
  (* Minos keeps its tail advantage on 50:50. *)
  let spec = Workload.Spec.write_intensive in
  let minos = Minos.Experiment.run ~cfg Kvserver.Design.minos spec ~offered_mops:4.0 in
  let hkh = Minos.Experiment.run ~cfg Kvserver.Design.hkh spec ~offered_mops:4.0 in
  check bool "tail advantage holds under writes" true
    (minos.Kvserver.Metrics.p99_us < hkh.Kvserver.Metrics.p99_us)

(* ------------------------------------------------------------------ *)
(* Figure 6/7 claim (one representative point) *)

let test_fig6_slo_speedup () =
  (* Under the strict 50us SLO, Minos sustains a multiple of HKH's load. *)
  let eval design rate =
    Minos.Experiment.run ~cfg design Workload.Spec.default ~offered_mops:rate
  in
  let max_of design =
    (Minos.Slo_search.search
       ~eval:(eval design)
       ~slo_p99_us:50.0 ~lo_mops:0.25 ~hi_mops:7.0 ~iters:6)
      .Minos.Slo_search.max_mops
  in
  let minos = max_of Kvserver.Design.minos in
  let hkh = max_of Kvserver.Design.hkh in
  check bool "minos sustains load under slo" true (minos > 3.0);
  check bool "speedup > 2x" true (minos > 2.0 *. hkh)

(* ------------------------------------------------------------------ *)
(* Figure 8 claim *)

let test_fig8_sampling_shifts_bottleneck () =
  let spec = Workload.Spec.with_p_large Workload.Spec.default 0.75 in
  let with_sampling s load =
    Minos.Experiment.run
      ~cfg:{ cfg with Kvserver.Config.sampling = s }
      Kvserver.Design.minos spec ~offered_mops:load
  in
  (* At the same offered load, sampling frees NIC bandwidth... *)
  let full = with_sampling 1.0 1.5 in
  let quarter = with_sampling 0.25 1.5 in
  check bool "nic util drops" true
    (quarter.Kvserver.Metrics.nic_tx_utilization
    < 0.5 *. full.Kvserver.Metrics.nic_tx_utilization);
  (* ...which lets the system sustain loads that saturate the full-reply
     configuration. *)
  let full_hi = with_sampling 1.0 3.5 in
  let quarter_hi = with_sampling 0.25 3.5 in
  check bool "sampled sustains higher load" true
    (quarter_hi.Kvserver.Metrics.stable
    && ((not full_hi.Kvserver.Metrics.stable)
       || quarter_hi.Kvserver.Metrics.p99_us < full_hi.Kvserver.Metrics.p99_us))

(* ------------------------------------------------------------------ *)
(* Figure 9 claim *)

let test_fig9_balanced_packets () =
  (* Packets processed per core are roughly uniform across cores, even
     though ops per core differ wildly between small and large cores. *)
  let m = run Kvserver.Design.minos 4.0 in
  let packets = m.Kvserver.Metrics.per_core_packets in
  let total = Array.fold_left ( + ) 0 packets in
  let n = Array.length packets in
  let mean = float_of_int total /. float_of_int n in
  Array.iteri
    (fun i p ->
      let ratio = float_of_int p /. mean in
      if ratio < 0.4 || ratio > 1.8 then
        Alcotest.failf "core %d handles %.2fx the mean packet load" i ratio)
    packets

(* ------------------------------------------------------------------ *)
(* Figure 10 claim *)

let test_fig10_dynamic () =
  let r = Minos.Figures.fig10 ~scale ~rate_mops:2.0 () in
  check bool "has p99 series" true (List.length r.Minos.Figures.minos_p99 > 3);
  (* Minos must beat HKH+WS in the heavy-large middle phases. *)
  let mid lo hi series =
    List.filter (fun (t, _) -> t >= lo && t <= hi) series |> List.map snd
  in
  let total = 7.0 *. scale.Minos.Experiment.phase_us /. 1.0e6 in
  let lo = 0.4 *. total and hi = 0.6 *. total in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
  let minos_mid = mean (mid lo hi r.Minos.Figures.minos_p99) in
  let ws_mid = mean (mid lo hi r.Minos.Figures.hkh_ws_p99) in
  check bool "minos wins in heavy phase" true (minos_mid < ws_mid);
  (* The large-core count must rise toward the middle and fall back. *)
  let cores_at t =
    List.fold_left (fun acc (ct, n) -> if ct <= t then n else acc) 0
      r.Minos.Figures.large_cores
  in
  let early = cores_at (0.15 *. total) and middle = cores_at (0.55 *. total) in
  check bool "controller adds large cores in heavy phase" true (middle > early)

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let test_table1_mc_matches_analytic () =
  (* Large requests are ~0.1% of samples, so the byte-share estimate needs
     a big sample to stabilize (625 large draws at 500k samples).  Even
     then the estimate carries irreducible dataset-realization variance:
     the dataset has only 625 large keys whose sizes are drawn once at
     creation, so the realized mean large-item size sits a few percent off
     the analytic expectation for any particular RNG stream (more request
     samples do not shrink this).  Hence the wide tolerance. *)
  List.iter
    (fun (_, _, analytic, mc) ->
      if abs_float (analytic -. mc) > 5.0 then
        Alcotest.failf "analytic %.1f vs measured %.1f" analytic mc)
    (Minos.Figures.table1 ~mc_samples:500_000 ())

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

let test_fig1_span () =
  let data = Minos.Figures.fig1 () in
  let small = List.assoc 64 data and big = List.assoc 1_000_000 data in
  check bool "hundreds of times slower" true (big /. small > 100.0);
  (* Monotone in size. *)
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check bool "monotone" true (monotone data)

(* ------------------------------------------------------------------ *)
(* SLO search unit behavior *)

let synthetic_metrics rate p99 =
  {
    Kvserver.Metrics.design = "synthetic";
    offered_mops = rate;
    issued = 1000;
    completed = 1000;
    throughput_mops = rate;
    mean_us = 0.0;
    p50_us = 0.0;
    p95_us = 0.0;
    p99_us = p99;
    p999_us = 0.0;
    small_p99_us = 0.0;
    large_p99_us = 0.0;
    nic_tx_utilization = 0.0;
    stable = true;
    per_core_ops = [||];
    per_core_packets = [||];
    final_large_cores = 0;
    final_threshold = Float.nan;
    p99_series = [];
    large_core_series = [];
    in_flight_end = 0;
    mean_queue_wait_us = 0.0;
    mean_service_us = 0.0;
    mean_tx_wait_us = 0.0;
    served_total = 1000;
    net_dropped = 0;
    rx_dropped = 0;
    shed_small = 0;
    shed_large = 0;
    expired_misses = 0;
    expired_keys = 0;
    evicted_keys = 0;
  }

let test_slo_search_mechanics () =
  (* A synthetic convex latency curve: p99 = 10 + load^3. *)
  let eval rate = synthetic_metrics rate (10.0 +. (rate ** 3.0)) in
  let r =
    Minos.Slo_search.search ~eval ~slo_p99_us:50.0 ~lo_mops:0.5 ~hi_mops:8.0 ~iters:12
  in
  (* p99 = 50 at load = 40^(1/3) = 3.42. *)
  if abs_float (r.Minos.Slo_search.max_mops -. 3.42) > 0.05 then
    Alcotest.failf "found %.3f, expected ~3.42" r.Minos.Slo_search.max_mops;
  (* Infeasible SLO. *)
  let r0 = Minos.Slo_search.search ~eval ~slo_p99_us:5.0 ~lo_mops:0.5 ~hi_mops:8.0 ~iters:4 in
  check (Alcotest.float 0.0) "infeasible -> 0" 0.0 r0.Minos.Slo_search.max_mops;
  (* SLO met everywhere. *)
  let r8 =
    Minos.Slo_search.search ~eval ~slo_p99_us:1.0e6 ~lo_mops:0.5 ~hi_mops:8.0 ~iters:4
  in
  check (Alcotest.float 0.0) "hi when always met" 8.0 r8.Minos.Slo_search.max_mops

let test_replication_stability () =
  (* Three seeds at a moderate load: p99s agree within a few times their
     spread, and every run is stable.  Guards against seed-sensitive
     artifacts in the reported numbers. *)
  let r =
    Minos.Experiment.run_replicated ~cfg Kvserver.Design.minos Workload.Spec.default
      ~offered_mops:3.0
  in
  check bool "all stable" true
    (List.for_all (fun m -> m.Kvserver.Metrics.stable) r.Minos.Experiment.runs);
  check bool "p99 positive" true (r.Minos.Experiment.p99_mean > 0.0);
  if r.Minos.Experiment.p99_stddev > 0.35 *. r.Minos.Experiment.p99_mean then
    Alcotest.failf "p99 %.1f +- %.1f: too seed-sensitive" r.Minos.Experiment.p99_mean
      r.Minos.Experiment.p99_stddev

let test_csv_export () =
  let dir = Filename.get_temp_dir_name () in
  Unix.putenv "MINOS_CSV_DIR" dir;
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MINOS_CSV_DIR" "")
    (fun () ->
      Minos.Report.table ~title:"CSV Export Check!" ~headers:[ "a"; "b" ]
        [ [ "1"; "x,y" ]; [ "2"; "plain" ] ];
      let path = Filename.concat dir "csv_export_check_.csv" in
      check bool "file written" true (Sys.file_exists path);
      let ic = open_in path in
      let line1 = input_line ic in
      let line2 = input_line ic in
      close_in ic;
      Sys.remove path;
      check bool "header row" true (line1 = "a,b");
      check bool "quoted comma cell" true (line2 = "1,\"x,y\""))

let test_design_names_roundtrip () =
  List.iter
    (fun d ->
      match Minos.Experiment.design_of_name (Minos.Experiment.design_name d) with
      | Some d' -> check bool "roundtrip" true (Kvserver.Design.equal d d')
      | None -> Alcotest.fail "name did not parse")
    Minos.Experiment.all_designs;
  check bool "unknown rejected" true (Minos.Experiment.design_of_name "nope" = None)

let () =
  Alcotest.run "integration"
    [
      ( "fig3",
        [
          Alcotest.test_case "minos dominates tail" `Slow test_fig3_minos_dominates_tail;
          Alcotest.test_case "ws between" `Slow test_fig3_ws_between;
          Alcotest.test_case "strict slo near peak" `Slow
            test_fig3_minos_meets_strict_slo_near_peak;
          Alcotest.test_case "peaks" `Slow test_fig3_peaks;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "large request price" `Slow
            test_fig4_large_requests_pay_a_bounded_price;
        ] );
      ("fig5", [ Alcotest.test_case "write intensive" `Slow test_fig5_write_intensive ]);
      ("fig6", [ Alcotest.test_case "slo speedup" `Slow test_fig6_slo_speedup ]);
      ( "fig8",
        [
          Alcotest.test_case "sampling bottleneck shift" `Slow
            test_fig8_sampling_shifts_bottleneck;
        ] );
      ("fig9", [ Alcotest.test_case "balanced packets" `Slow test_fig9_balanced_packets ]);
      ("fig10", [ Alcotest.test_case "dynamic workload" `Slow test_fig10_dynamic ]);
      ( "table1",
        [ Alcotest.test_case "mc vs analytic" `Quick test_table1_mc_matches_analytic ] );
      ("fig1", [ Alcotest.test_case "service time span" `Quick test_fig1_span ]);
      ( "harness",
        [
          Alcotest.test_case "slo search mechanics" `Quick test_slo_search_mechanics;
          Alcotest.test_case "design names" `Quick test_design_names_roundtrip;
          Alcotest.test_case "replication stability" `Slow test_replication_stability;
          Alcotest.test_case "csv export" `Quick test_csv_export;
        ] );
    ]
