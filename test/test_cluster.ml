(* Cluster layer tests: router math (ring balance, range-map edges,
   rebalance), the max-of-k fan-out analytics against closed-form order
   statistics, and miniature end-to-end cluster runs pinning the
   determinism contract (same seed => byte-identical, any MINOS_JOBS)
   and the headline claim (per-server size-aware sharding beats the
   keyhash baseline at p99 under fan-out). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_jobs n f =
  Minos.Par.set_jobs (Some n);
  Fun.protect ~finally:(fun () -> Minos.Par.set_jobs None) f

(* ------------------------------------------------------------------ *)
(* Ring *)

let ring_counts ring ~servers ~keys =
  let counts = Array.make servers 0 in
  for k = 0 to keys - 1 do
    let s = Kvcluster.Ring.lookup ring k in
    check bool "owner in range" true (s >= 0 && s < servers);
    counts.(s) <- counts.(s) + 1
  done;
  counts

let test_ring_balance () =
  (* 128 vnodes/server must keep the heaviest shard within ~1.35x of the
     mean over a dense key range — the classic consistent-hashing bound
     for this vnode count. *)
  List.iter
    (fun servers ->
      let ring = Kvcluster.Ring.create ~vnodes:128 ~servers () in
      let keys = 100_000 in
      let counts = ring_counts ring ~servers ~keys in
      let max_c = Array.fold_left max 0 counts in
      let mean_c = float_of_int keys /. float_of_int servers in
      check bool
        (Printf.sprintf "%d servers: max/mean %.3f < 1.35" servers
           (float_of_int max_c /. mean_c))
        true
        (float_of_int max_c /. mean_c < 1.35);
      check int
        (Printf.sprintf "%d servers: every key owned" servers)
        keys
        (Array.fold_left ( + ) 0 counts))
    [ 2; 4; 8 ]

let test_ring_deterministic () =
  let a = Kvcluster.Ring.create ~vnodes:64 ~servers:5 () in
  let b = Kvcluster.Ring.create ~vnodes:64 ~servers:5 () in
  for k = 0 to 9_999 do
    if Kvcluster.Ring.lookup a k <> Kvcluster.Ring.lookup b k then
      Alcotest.failf "lookup diverges at key %d" k
  done

let test_ring_remove_stability () =
  (* Removing one server must only move the keys that server owned;
     every other key keeps its owner (the point of consistent hashing). *)
  let servers = 6 in
  let ring = Kvcluster.Ring.create ~vnodes:128 ~servers () in
  let victim = 2 in
  let shrunk = Kvcluster.Ring.remove ring victim in
  let moved_wrongly = ref 0 in
  let reassigned = ref 0 in
  for k = 0 to 49_999 do
    let before = Kvcluster.Ring.lookup ring k in
    let after = Kvcluster.Ring.lookup shrunk k in
    if before = victim then begin
      incr reassigned;
      check bool "victim's keys go elsewhere" true (after <> victim)
    end
    else if after <> before then incr moved_wrongly
  done;
  check int "no key moves unless its owner left" 0 !moved_wrongly;
  check bool "victim owned some keys" true (!reassigned > 0)

let test_ring_remove_last_server_rejected () =
  let ring = Kvcluster.Ring.create ~servers:1 () in
  Alcotest.check_raises "cannot empty the ring"
    (Invalid_argument "Ring.remove: cannot remove the last server") (fun () ->
      ignore (Kvcluster.Ring.remove ring 0))

(* ------------------------------------------------------------------ *)
(* Range map *)

let test_range_map_edges () =
  let m = Kvcluster.Range_map.create ~servers:4 ~n_keys:100 () in
  check int "key 0 -> shard 0" 0 (Kvcluster.Range_map.lookup m 0);
  check int "key 24 -> shard 0" 0 (Kvcluster.Range_map.lookup m 24);
  check int "boundary key 25 -> shard 1" 1 (Kvcluster.Range_map.lookup m 25);
  check int "boundary key 75 -> shard 3" 3 (Kvcluster.Range_map.lookup m 75);
  check int "last key -> last shard" 3 (Kvcluster.Range_map.lookup m 99);
  List.iter
    (fun k ->
      match Kvcluster.Range_map.lookup m k with
      | _ -> Alcotest.failf "lookup %d should raise" k
      | exception Invalid_argument _ -> ())
    [ -1; 100 ]

let test_range_map_explicit_starts () =
  let m =
    Kvcluster.Range_map.create ~starts:[| 0; 10; 90 |] ~servers:3 ~n_keys:100 ()
  in
  check int "narrow head" 0 (Kvcluster.Range_map.lookup m 9);
  check int "wide middle" 1 (Kvcluster.Range_map.lookup m 89);
  check int "narrow tail" 2 (Kvcluster.Range_map.lookup m 90);
  List.iter
    (fun starts ->
      match
        Kvcluster.Range_map.create ~starts ~servers:3 ~n_keys:100 ()
      with
      | _ -> Alcotest.fail "invalid starts accepted"
      | exception Invalid_argument _ -> ())
    [ [| 0; 10 |]; [| 1; 10; 90 |]; [| 0; 90; 10 |]; [| 0; 10; 10 |]; [| 0; 10; 100 |] ]

let test_range_rebalance_reduces_imbalance () =
  (* All the weight in the first quarter of the keyspace: an equal-width
     map sends ~all of it to shard 0; the re-cut map must spread it. *)
  let n_keys = 1_000 and servers = 4 in
  let buckets = 128 in
  let weights =
    Array.init buckets (fun b -> if b < buckets / 4 then 8.0 else 0.25)
  in
  let m = Kvcluster.Range_map.create ~servers ~n_keys () in
  let m' = Kvcluster.Range_map.rebalance m ~weights in
  let load map =
    let acc = Array.make servers 0.0 in
    for b = 0 to buckets - 1 do
      let key = b * n_keys / buckets in
      acc.(Kvcluster.Range_map.lookup map key) <-
        acc.(Kvcluster.Range_map.lookup map key) +. weights.(b)
    done;
    acc
  in
  let imb map =
    let l = load map in
    let max_l = Array.fold_left Float.max 0.0 l in
    max_l /. (Array.fold_left ( +. ) 0.0 l /. float_of_int servers)
  in
  let before = imb m and after = imb m' in
  check bool
    (Printf.sprintf "imbalance %.2f -> %.2f improves" before after)
    true (after < before);
  check bool "near-even after re-cut" true (after < 1.5)

let test_range_rebalance_bad_weights_typed () =
  (* Degenerate weight vectors raise a typed error instead of silently
     returning the old cuts (the old no-op behavior hid probe bugs). *)
  let m = Kvcluster.Range_map.create ~servers:3 ~n_keys:99 () in
  let expect err weights =
    match Kvcluster.Range_map.rebalance m ~weights with
    | _ -> Alcotest.failf "expected Bad_weights"
    | exception Kvcluster.Range_map.Bad_weights e ->
        check Alcotest.string "error"
          (Kvcluster.Range_map.weight_error_to_string err)
          (Kvcluster.Range_map.weight_error_to_string e)
  in
  expect Kvcluster.Range_map.All_zero (Array.make 16 0.0);
  let w = Array.make 16 1.0 in
  w.(3) <- -2.0;
  expect (Kvcluster.Range_map.Negative 3) w;
  let w = Array.make 16 1.0 in
  w.(7) <- Float.nan;
  expect (Kvcluster.Range_map.Not_finite 7) w;
  expect
    (Kvcluster.Range_map.Too_few_buckets { buckets = 2; servers = 3 })
    (Array.make 2 1.0);
  (* check_weights is the same validation without the raise *)
  check bool "check_weights ok on sane input" true
    (Kvcluster.Range_map.check_weights m ~weights:(Array.make 16 1.0)
     = Ok ());
  check bool "check_weights flags all-zero" true
    (Kvcluster.Range_map.check_weights m ~weights:(Array.make 16 0.0)
     = Error Kvcluster.Range_map.All_zero)

(* ------------------------------------------------------------------ *)
(* Ring membership properties (qcheck) *)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* Pinned for ring.mli's of_members stability contract: removing one
   member only moves the keys that member owned, and routes identically
   to building the ring without it in the first place. *)
let qcheck_ring_remove_only_victim_moves =
  QCheck.Test.make ~name:"remove moves only the victim's keys" ~count:50
    QCheck.(
      triple (int_range 2 8) (int_range 8 64) (int_range 0 7))
    (fun (servers, vnodes, victim_raw) ->
      let victim = victim_raw mod servers in
      let members = List.init servers Fun.id in
      let ring = Kvcluster.Ring.of_members ~vnodes members in
      let shrunk = Kvcluster.Ring.remove ring victim in
      let rebuilt =
        Kvcluster.Ring.of_members ~vnodes
          (List.filter (fun s -> s <> victim) members)
      in
      let ok = ref true in
      for k = 0 to 4_999 do
        let before = Kvcluster.Ring.lookup ring k in
        let after = Kvcluster.Ring.lookup shrunk k in
        if before <> victim && after <> before then ok := false;
        if after = victim then ok := false;
        if Kvcluster.Ring.lookup rebuilt k <> after then ok := false
      done;
      !ok)

let qcheck_ring_add_only_new_server_gains =
  QCheck.Test.make ~name:"adding a member only moves keys it now owns"
    ~count:50
    QCheck.(pair (int_range 1 7) (int_range 8 64))
    (fun (servers, vnodes) ->
      let members = List.init servers Fun.id in
      let ring = Kvcluster.Ring.of_members ~vnodes members in
      let grown = Kvcluster.Ring.of_members ~vnodes (members @ [ servers ]) in
      let ok = ref true in
      for k = 0 to 4_999 do
        let before = Kvcluster.Ring.lookup ring k in
        let after = Kvcluster.Ring.lookup grown k in
        if after <> before && after <> servers then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Fan-out analytics *)

let test_analytic_max_of_k_vs_order_statistics () =
  (* p99 of the max of k iid draws is the q^(1/k) quantile of one draw —
     check the helper against the closed form on a known grid. *)
  let n = 10_000 in
  let sorted = Array.init n (fun i -> float_of_int (i + 1)) in
  List.iter
    (fun k ->
      let got = Kvcluster.Fanout.analytic_max_quantile sorted ~k ~q:0.99 in
      let expected = Stats.Quantile.of_sorted sorted (0.99 ** (1.0 /. float_of_int k)) in
      check (Alcotest.float 1e-9) (Printf.sprintf "k=%d" k) expected got;
      (* and the closed form itself is monotone in k *)
      if k > 1 then
        check bool "max-of-k above single-shot p99" true
          (got >= Stats.Quantile.of_sorted sorted 0.99))
    [ 1; 2; 4; 8; 16 ]

let test_analytic_matches_sampled_max () =
  (* Monte-Carlo max of k draws from an empirical distribution must land
     close to the analytic order-statistic quantile. *)
  let n = 8_192 in
  let rng = Dsim.Rng.create 42 in
  let samples = Array.init n (fun _ -> Dsim.Rng.exponential rng ~mean:100.0) in
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let k = 4 in
  let trials = 50_000 in
  let maxes = Array.make trials 0.0 in
  for t = 0 to trials - 1 do
    let m = ref neg_infinity in
    for _ = 1 to k do
      let x = samples.(Dsim.Rng.int rng n) in
      if x > !m then m := x
    done;
    maxes.(t) <- !m
  done;
  Array.sort Float.compare maxes;
  let sampled = Stats.Quantile.of_sorted maxes 0.99 in
  let analytic = Kvcluster.Fanout.analytic_max_quantile sorted ~k ~q:0.99 in
  let rel = Float.abs (sampled -. analytic) /. analytic in
  check bool
    (Printf.sprintf "sampled %.1f vs analytic %.1f (rel %.3f)" sampled analytic rel)
    true (rel < 0.05)

let test_hedge_quantile_degenerate_cases () =
  (* The hedged CDF G(x) = F(x) + (1 - F(x)) F(x - d) pins both ends:
     a delay beyond the largest sample means the backup can never win
     (unhedged quantile, exactly), and d = 0 is min-of-two — the base
     quantile at 1 - sqrt(1 - q).  In between the quantile is monotone
     in the delay. *)
  let n = 10_000 in
  let sorted = Array.init n (fun i -> float_of_int (i + 1)) in
  let q = 0.99 in
  let exact_at p = sorted.(int_of_float (Float.ceil (p *. float_of_int n)) - 1) in
  check (Alcotest.float 1e-9) "large d recovers the unhedged quantile"
    (exact_at q)
    (Kvcluster.Fanout.analytic_hedge_quantile sorted ~d:1.0e9 ~q);
  let tied = Kvcluster.Fanout.analytic_hedge_quantile sorted ~d:0.0 ~q in
  check bool "d = 0 is min-of-two" true
    (Float.abs (tied -. exact_at (1.0 -. sqrt (1.0 -. q))) <= 1.0);
  let prev = ref tied in
  List.iter
    (fun d ->
      let x = Kvcluster.Fanout.analytic_hedge_quantile sorted ~d ~q in
      check bool
        (Printf.sprintf "monotone in the delay (d=%g)" d)
        true
        (x >= !prev -. 1e-9);
      prev := x)
    [ 10.0; 100.0; 1_000.0; 20_000.0 ];
  let rejects f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check bool "empty samples rejected" true
    (rejects (fun () ->
         Kvcluster.Fanout.analytic_hedge_quantile [||] ~d:1.0 ~q:0.5));
  check bool "negative delay rejected" true
    (rejects (fun () ->
         Kvcluster.Fanout.analytic_hedge_quantile sorted ~d:(-1.0) ~q:0.5));
  check bool "q outside (0, 1] rejected" true
    (rejects (fun () ->
         Kvcluster.Fanout.analytic_hedge_quantile sorted ~d:1.0 ~q:0.0))

let prop_hedge_quantile_matches_sampled =
  (* Monte-Carlo resampling of min(X1, d + X2) must converge to the
     closed-form hedged quantile across delays and target quantiles. *)
  let n = 4_096 in
  let sorted =
    let rng = Dsim.Rng.create 19 in
    let a = Array.init n (fun _ -> Dsim.Rng.exponential rng ~mean:100.0) in
    Array.sort Float.compare a;
    a
  in
  QCheck.Test.make ~name:"analytic hedge quantile = sampled" ~count:30
    QCheck.(pair (float_bound_inclusive 400.0) (int_bound 2))
    (fun (d, qi) ->
      let q = [| 0.5; 0.95; 0.99 |].(qi) in
      let analytic = Kvcluster.Fanout.analytic_hedge_quantile sorted ~d ~q in
      let sampled =
        Kvcluster.Fanout.sample_hedge_quantile ~rng:(Dsim.Rng.create 7) sorted
          ~d ~q ~trials:30_000 ()
      in
      Float.abs (sampled -. analytic) /. Float.max 1.0 analytic < 0.06)

let test_fanout_p99_grows_with_degree () =
  (* Synthetic 4-shard cluster with identical per-shard latency vecs:
     completion p99 must be monotone non-decreasing in the fan-out degree
     and strictly higher at 8 than at 1. *)
  let shards = 4 in
  let rng = Dsim.Rng.create 7 in
  let latencies =
    Array.init shards (fun _ ->
        let v = Stats.Float_vec.create () in
        for _ = 1 to 4_096 do
          Stats.Float_vec.push v (Dsim.Rng.exponential rng ~mean:50.0)
        done;
        v)
  in
  let points =
    Kvcluster.Fanout.measure
      ~rng:(Dsim.Rng.create 11)
      ~route:(fun k -> k mod shards)
      ~sample_key:(fun rng -> Dsim.Rng.int rng 1_000_000)
      ~latencies ~trials:20_000 ~fanouts:[ 1; 2; 4; 8 ] ()
  in
  let p99 = List.map (fun p -> p.Kvcluster.Fanout.p99_us) points in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        check bool "non-decreasing" true (b >= a -. 1e-9);
        monotone rest
    | _ -> ()
  in
  monotone p99;
  check bool "fanout 8 strictly above fanout 1" true
    (List.nth p99 3 > List.hd p99)

(* ------------------------------------------------------------------ *)
(* End-to-end cluster runs (quick scale) *)

let scale = Minos.Experiment.quick_scale
let cfg = Minos.Experiment.config_of_scale scale

let cluster_run ?(servers = 2) ?policy ?rebalance () =
  Minos.Cluster.run ~cfg ?policy ?rebalance ~servers ~seed:3
    ~fanouts:[ 1; 2; 4; 8 ] ~trials:5_000 Workload.Scenario.default
    ~offered_mops:4.0

let test_cluster_deterministic_across_jobs () =
  (* The whole point of the probe/thinning construction: reruns at the
     same seed are byte-identical, sequential or on 4 domains. *)
  let a = with_jobs 1 (fun () -> Minos.Cluster.to_json (cluster_run ())) in
  let b = with_jobs 4 (fun () -> Minos.Cluster.to_json (cluster_run ())) in
  let c = with_jobs 4 (fun () -> Minos.Cluster.to_json (cluster_run ())) in
  check Alcotest.string "jobs=1 vs jobs=4" a b;
  check Alcotest.string "rerun at jobs=4" b c

let test_cluster_telescopes () =
  let t = cluster_run () in
  check bool "main loss accounting exact" true
    (Kvcluster.Metrics.telescopes t.Minos.Cluster.main.Kvcluster.Run.metrics);
  check bool "baseline loss accounting exact" true
    (Kvcluster.Metrics.telescopes t.Minos.Cluster.baseline.Kvcluster.Run.metrics)

let test_cluster_minos_beats_keyhash_under_fanout () =
  (* The headline: at the same offered load and identical shard split,
     per-server size-aware sharding keeps every shard's p99 — and the
     multi-GET completion p99 at every fan-out degree — strictly below
     the keyhash baseline's. *)
  let t = cluster_run () in
  let mm = t.Minos.Cluster.main.Kvcluster.Run.metrics in
  let bm = t.Minos.Cluster.baseline.Kvcluster.Run.metrics in
  Array.iteri
    (fun s (sm : Kvserver.Metrics.t) ->
      let bs = bm.Kvcluster.Metrics.per_shard.(s) in
      check bool
        (Printf.sprintf "shard %d minos p99 < keyhash p99" s)
        true
        (sm.Kvserver.Metrics.p99_us < bs.Kvserver.Metrics.p99_us))
    mm.Kvcluster.Metrics.per_shard;
  check bool "identical shard shares" true
    (mm.Kvcluster.Metrics.shard_share = bm.Kvcluster.Metrics.shard_share);
  List.iter2
    (fun (m : Kvcluster.Fanout.point) (b : Kvcluster.Fanout.point) ->
      check int "same degree" m.Kvcluster.Fanout.fanout b.Kvcluster.Fanout.fanout;
      check bool
        (Printf.sprintf "fanout %d: minos completion p99 < keyhash"
           m.Kvcluster.Fanout.fanout)
        true
        (m.Kvcluster.Fanout.p99_us < b.Kvcluster.Fanout.p99_us))
    t.Minos.Cluster.main.Kvcluster.Run.fanout
    t.Minos.Cluster.baseline.Kvcluster.Run.fanout

let test_cluster_range_rebalance_improves () =
  let t = cluster_run ~policy:Kvcluster.Run.Range ~rebalance:true () in
  match t.Minos.Cluster.main.Kvcluster.Run.rebalance with
  | None -> Alcotest.fail "rebalance info missing"
  | Some rb ->
      check bool
        (Printf.sprintf "imbalance %.3f -> %.3f no worse"
           rb.Kvcluster.Run.imbalance_before rb.Kvcluster.Run.imbalance_after)
        true
        (rb.Kvcluster.Run.imbalance_after
         <= rb.Kvcluster.Run.imbalance_before +. 1e-9);
      check bool "moved share sane" true
        (rb.Kvcluster.Run.moved_share >= 0.0 && rb.Kvcluster.Run.moved_share <= 1.0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "balance within bound at 128 vnodes" `Quick
            test_ring_balance;
          Alcotest.test_case "construction deterministic" `Quick
            test_ring_deterministic;
          Alcotest.test_case "remove moves only the victim's keys" `Quick
            test_ring_remove_stability;
          Alcotest.test_case "cannot remove last server" `Quick
            test_ring_remove_last_server_rejected;
        ] );
      ( "range-map",
        [
          Alcotest.test_case "lookup edges" `Quick test_range_map_edges;
          Alcotest.test_case "explicit starts + validation" `Quick
            test_range_map_explicit_starts;
          Alcotest.test_case "rebalance reduces imbalance" `Quick
            test_range_rebalance_reduces_imbalance;
          Alcotest.test_case "degenerate weights raise typed errors" `Quick
            test_range_rebalance_bad_weights_typed;
        ] );
      ( "ring-membership",
        qsuite
          [
            qcheck_ring_remove_only_victim_moves;
            qcheck_ring_add_only_new_server_gains;
          ] );
      ( "fanout",
        [
          Alcotest.test_case "analytic max-of-k = order statistic" `Quick
            test_analytic_max_of_k_vs_order_statistics;
          Alcotest.test_case "analytic matches sampled max" `Quick
            test_analytic_matches_sampled_max;
          Alcotest.test_case "completion p99 grows with degree" `Quick
            test_fanout_p99_grows_with_degree;
          Alcotest.test_case "hedged quantile: degenerate ends" `Quick
            test_hedge_quantile_degenerate_cases;
        ]
        @ qsuite [ prop_hedge_quantile_matches_sampled ] );
      ( "cluster-run",
        [
          Alcotest.test_case "deterministic across MINOS_JOBS" `Slow
            test_cluster_deterministic_across_jobs;
          Alcotest.test_case "loss accounting telescopes" `Slow
            test_cluster_telescopes;
          Alcotest.test_case "minos beats keyhash p99 under fan-out" `Slow
            test_cluster_minos_beats_keyhash_under_fanout;
          Alcotest.test_case "range rebalance improves imbalance" `Slow
            test_cluster_range_rebalance_improves;
        ] );
    ]
