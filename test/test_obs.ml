(* lib/obs: flight recorder, latency anatomy and the Chrome trace exporter.

   The exporter tests parse the emitted JSON with a small recursive-descent
   parser (the repo deliberately has no JSON dependency): well-formedness,
   per-track B/E nesting and async b/e pairing are checked on a real
   instrumented simulation, and traces must be byte-identical across runs
   of the same seed — including with the domain pool enabled. *)

open Alcotest

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser: enough for trace-event files. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\x00' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_body () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                (* keep the escape verbatim; the exporter never emits \u *)
                Buffer.add_string b "\\u"
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | '\x00' -> fail "unterminated string"
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while num_char (peek ()) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or } in object"
            in
            Obj (members [])
          end
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  elements (v :: acc)
              | ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ] in array"
            in
            List (elements [])
          end
      | '"' -> Str (string_body ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (number ())
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let str_exn = function Str s -> s | _ -> failwith "Json: expected string"

  let num_exn = function Num f -> f | _ -> failwith "Json: expected number"
end

(* ------------------------------------------------------------------ *)
(* One shared instrumented run (the sweeps are the expensive part). *)

let spec = Workload.Spec.default

let instrumented_run ?(seed = 1) ?(spans = 4096) () =
  let cfg = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  let obs =
    Obs.Instrument.create ~spans ~cores:cfg.Kvserver.Config.cores ~seed ()
  in
  let metrics =
    Minos.Experiment.run ~cfg ~obs Kvserver.Design.minos spec ~offered_mops:2.0
  in
  (obs, metrics)

let shared = lazy (instrumented_run ())

(* ------------------------------------------------------------------ *)

let test_recorder_sampling () =
  let r = Obs.Recorder.create ~capacity:4 ~seed:7 () in
  check int "empty" 0 (Obs.Recorder.recorded r);
  let slots = List.init 6 (fun _ -> Obs.Recorder.try_sample r) in
  check (list int) "first 4 admitted, rest dropped" [ 0; 1; 2; 3; -1; -1 ] slots;
  check int "full" 4 (Obs.Recorder.recorded r);
  check int "dropped" 2 (Obs.Recorder.dropped r);
  check bool "incomplete until ts_end" false (Obs.Recorder.complete r 0);
  Obs.Recorder.set_ts r 0 Obs.Span.ts_end 42.0;
  check bool "complete once ts_end set" true (Obs.Recorder.complete r 0);
  Obs.Recorder.reset r;
  check int "reset empties" 0 (Obs.Recorder.recorded r);
  (* slot state is cleared lazily on re-acquisition *)
  check int "reacquire from slot 0" 0 (Obs.Recorder.try_sample r);
  check bool "reacquired slot starts incomplete" false (Obs.Recorder.complete r 0)

let test_recorder_sample_rate () =
  let r = Obs.Recorder.create ~capacity:4096 ~sample_rate:0.25 ~seed:3 () in
  let admitted = ref 0 in
  for _ = 1 to 4000 do
    if Obs.Recorder.try_sample r >= 0 then incr admitted
  done;
  check bool
    (Printf.sprintf "rate 0.25 admitted %d of 4000" !admitted)
    true
    (!admitted > 800 && !admitted < 1200);
  (* id-hash sampling is a pure function of the id *)
  let r2 = Obs.Recorder.create ~capacity:16 ~sample_rate:0.5 ~seed:3 () in
  let a = Obs.Recorder.try_sample_id r2 ~id:1234 >= 0 in
  Obs.Recorder.reset r2;
  let b = Obs.Recorder.try_sample_id r2 ~id:1234 >= 0 in
  check bool "try_sample_id deterministic per id" a b;
  (* stream sampling depends on the seed: different seeds admit different
     request subsets (at rate 1.0 the seed is irrelevant — all admitted) *)
  let admissions seed =
    let r = Obs.Recorder.create ~capacity:256 ~sample_rate:0.5 ~seed () in
    List.init 64 (fun _ -> Obs.Recorder.try_sample r >= 0)
  in
  check bool "same seed, same sample set" true (admissions 3 = admissions 3);
  check bool "different seed, different sample set" false
    (admissions 3 = admissions 4)

let test_recorder_alloc_free () =
  (* The record path must not allocate: spans live in preallocated flat
     arrays.  The measurement itself boxes a few floats, hence the
     slack — any per-span boxing would cost thousands of words here. *)
  let r = Obs.Recorder.create ~capacity:2048 ~seed:5 () in
  ignore (Obs.Recorder.try_sample r);
  Obs.Recorder.set_ts r 0 Obs.Span.ts_rx_enq 0.0;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    let s = Obs.Recorder.try_sample r in
    Obs.Recorder.set_ts r s Obs.Span.ts_rx_enq 1.0;
    Obs.Recorder.set_ts r s Obs.Span.ts_service_start 2.0;
    Obs.Recorder.set_ts r s Obs.Span.ts_end 3.0;
    Obs.Recorder.set_meta r s Obs.Span.meta_seq s;
    Obs.Recorder.set_meta r s Obs.Span.meta_size 64
  done;
  let words = Gc.minor_words () -. before in
  check bool
    (Printf.sprintf "allocated %.0f words over 1000 spans" words)
    true (words < 100.)

let test_timeline_and_decisions () =
  let tl = Obs.Timeline.create ~cores:2 ~interval_us:100.0 ~capacity:3 in
  let s0 = Obs.Timeline.start_sample tl ~now:0.0 in
  Obs.Timeline.set_core tl ~sample:s0 ~core:0 ~depth:5 ~busy_us:50.0;
  Obs.Timeline.set_core tl ~sample:s0 ~core:1 ~depth:0 ~busy_us:0.0;
  let s1 = Obs.Timeline.start_sample tl ~now:100.0 in
  Obs.Timeline.set_core tl ~sample:s1 ~core:0 ~depth:2 ~busy_us:130.0;
  Obs.Timeline.set_core tl ~sample:s1 ~core:1 ~depth:1 ~busy_us:10.0;
  check int "two samples" 2 (Obs.Timeline.samples tl);
  check int "depth readback" 2 (Obs.Timeline.depth tl s1 0);
  (* busy is cumulative; utilization is the per-interval delta *)
  check (float 1e-6) "utilization from busy delta" 0.8
    (Obs.Timeline.utilization tl s1 0);
  ignore (Obs.Timeline.start_sample tl ~now:200.0);
  check int "capacity clamps" (-1) (Obs.Timeline.start_sample tl ~now:300.0);
  let dl = Obs.Decision_log.create ~capacity:2 () in
  Obs.Decision_log.record dl ~now:1.0 ~threshold:1000.0 ~n_small:6 ~n_large:2 ();
  Obs.Decision_log.record dl ~now:2.0 ~threshold:1500.0 ~n_small:5 ~n_large:3 ();
  Obs.Decision_log.record dl ~now:3.0 ~threshold:1500.0 ~n_small:5 ~n_large:3 ();
  check int "log bounded" 2 (Obs.Decision_log.length dl);
  check int "overflow counted" 1 (Obs.Decision_log.dropped dl);
  check int "core moves counted" 1 (Obs.Decision_log.moves dl)

let test_anatomy_sums () =
  let obs, metrics = Lazy.force shared in
  let a = Obs.Anatomy.compute obs.Obs.Instrument.recorder in
  check bool "run completed requests" true (metrics.Kvserver.Metrics.completed > 0);
  check bool
    (Printf.sprintf "anatomy used %d spans" a.Obs.Anatomy.spans_used)
    true
    (a.Obs.Anatomy.spans_used > 1000);
  check bool
    (Printf.sprintf "components sum to end-to-end (max error %.6f us)"
       a.Obs.Anatomy.max_sum_error_us)
    true
    (a.Obs.Anatomy.max_sum_error_us < 0.01);
  check int "one row per component" Obs.Span.n_components
    (List.length a.Obs.Anatomy.rows);
  (* the e2e mean must also telescope at the aggregate level *)
  let sum_means =
    List.fold_left
      (fun acc r -> acc +. r.Obs.Anatomy.all.Obs.Anatomy.mean)
      0.0 a.Obs.Anatomy.rows
  in
  check (float 0.01) "mean components telescope"
    a.Obs.Anatomy.end_to_end.Obs.Anatomy.all.Obs.Anatomy.mean sum_means

let trace_string (obs : Obs.Instrument.t) =
  let buf = Buffer.create (1 lsl 16) in
  Obs.Chrome_trace.to_buffer ~name:"test Minos"
    ?timeline:obs.Obs.Instrument.timeline
    ~decisions:obs.Obs.Instrument.decisions obs.Obs.Instrument.recorder buf;
  Buffer.contents buf

let test_trace_well_formed () =
  let obs, _ = Lazy.force shared in
  let json = Json.parse (trace_string obs) in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List es) -> es
    | _ -> fail "no traceEvents array"
  in
  check bool "has events" true (List.length events > 1000);
  let count ph =
    List.length
      (List.filter
         (fun e -> match Json.member "ph" e with
           | Some (Json.Str s) -> s = ph
           | _ -> false)
         events)
  in
  let b = count "b" and e = count "e" in
  let sb = count "B" and se = count "E" in
  check int "async begin/end paired" b e;
  check int "service begin/end paired" sb se;
  check bool "service spans present" true (sb > 0);
  check bool "tx slices present" true (count "X" > 0);
  check bool "counters present" true (count "C" > 0);
  check bool "metadata present" true (count "M" > 0);
  (* per-track nesting: walking each tid's B/E events in time order never
     closes an unopened span and ends balanced *)
  let by_tid = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match Json.member "ph" ev with
      | Some (Json.Str ("B" | "E" as ph)) ->
          let tid =
            int_of_float (Json.num_exn (Option.get (Json.member "tid" ev)))
          in
          let ts = Json.num_exn (Option.get (Json.member "ts" ev)) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_tid tid) in
          Hashtbl.replace by_tid tid ((ts, ph) :: prev)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun tid evs ->
      let evs =
        List.sort
          (fun (t1, p1) (t2, p2) ->
            match Float.compare t1 t2 with
            | 0 -> compare (p1 = "B") (p2 = "B") (* E before B at equal ts *)
            | c -> c)
          (List.rev evs)
      in
      let depth =
        List.fold_left
          (fun d (_, ph) ->
            let d = if ph = "B" then d + 1 else d - 1 in
            if d < 0 then
              fail (Printf.sprintf "tid %d closes an unopened span" tid);
            d)
          0 evs
      in
      check int (Printf.sprintf "tid %d balanced" tid) 0 depth)
    by_tid;
  (* run-to-completion cores never nest *)
  Hashtbl.iter
    (fun tid evs ->
      let evs =
        List.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) (List.rev evs)
      in
      ignore
        (List.fold_left
           (fun d (_, ph) ->
             let d = if ph = "B" then d + 1 else d - 1 in
             check bool (Printf.sprintf "tid %d depth <= 1" tid) true (d <= 1);
             d)
           0 evs))
    by_tid;
  match Json.member "displayTimeUnit" json with
  | Some (Json.Str "ms") -> ()
  | _ -> fail "missing displayTimeUnit"

let test_trace_deterministic () =
  let obs1, _ = instrumented_run ~spans:1024 () in
  let obs2, _ = instrumented_run ~spans:1024 () in
  check bool "same seed, byte-identical trace" true
    (String.equal (trace_string obs1) (trace_string obs2));
  (* the domain pool must not perturb an instrumented run *)
  let saved = Minos.Par.jobs () in
  Minos.Par.set_jobs (Some 4);
  let obs3, _ = instrumented_run ~spans:1024 () in
  Minos.Par.set_jobs (Some saved);
  check bool "byte-identical under MINOS_JOBS=4" true
    (String.equal (trace_string obs1) (trace_string obs3))

let test_runtime_instrumented () =
  (* The other execution path: real domains, id-hash sampling.  Spans and
     the trace must hold the same invariants as the simulator's. *)
  let spec =
    {
      Workload.Spec.default with
      Workload.Spec.n_keys = 2_000;
      n_large_keys = 20;
      s_large_max = 32_000;
    }
  in
  let dataset = Workload.Dataset.create spec in
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:8
      ~value_arena_bytes:(32 * 1024 * 1024) ()
  in
  Runtime.Loadgen.populate store dataset;
  let config = Runtime.Server.default_config in
  let obs =
    Obs.Instrument.create ~spans:8192 ~cores:config.Runtime.Server.cores ~seed:1 ()
  in
  let server = Runtime.Server.start ~obs ~config store in
  let r =
    Fun.protect
      ~finally:(fun () -> Runtime.Server.stop server)
      (fun () -> Runtime.Loadgen.run ~server ~dataset ~requests:5_000 ~seed:3 ())
  in
  check int "all answered" 5_000 r.Runtime.Loadgen.completed;
  let a = Obs.Anatomy.compute obs.Obs.Instrument.recorder in
  check bool
    (Printf.sprintf "runtime spans recorded (%d)" a.Obs.Anatomy.spans_used)
    true
    (a.Obs.Anatomy.spans_used > 1000);
  check bool
    (Printf.sprintf "runtime components telescope (max error %.6f us)"
       a.Obs.Anatomy.max_sum_error_us)
    true
    (a.Obs.Anatomy.max_sum_error_us < 0.01);
  (* the exporter must stay parseable on runtime data too *)
  match Json.parse (trace_string obs) with
  | Json.Obj _ -> ()
  | _ -> fail "runtime trace is not a JSON object"

let test_trace_metadata_escaping () =
  let obs = Obs.Instrument.create ~spans:4 ~cores:2 ~seed:1 ~timeline:false () in
  let buf = Buffer.create 256 in
  Obs.Chrome_trace.to_buffer ~name:{|quo"te\back|} obs.Obs.Instrument.recorder buf;
  let json = Json.parse (Buffer.contents buf) in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List es) -> es
    | _ -> fail "no traceEvents array"
  in
  let name =
    List.find_map
      (fun e ->
        match Json.member "name" e with
        | Some (Json.Str "process_name") ->
            Option.map
              (fun a -> Json.str_exn (Option.get (Json.member "name" a)))
              (Json.member "args" e)
        | _ -> None)
      events
  in
  check (option string) "escaped metadata round-trips" (Some {|quo"te\back|}) name

let test_cluster_trace_pids () =
  (* A merged cluster trace tags each section's events with the owning
     recorder's server id as the Chrome pid. *)
  let ins s = Obs.Instrument.create ~server:s ~spans:16 ~cores:2 ~seed:(s + 1) () in
  let buf = Buffer.create 1024 in
  Obs.Chrome_trace.cluster_to_buffer [ ("shard 0", ins 0); ("shard 1", ins 1) ] buf;
  let events =
    match Json.member "traceEvents" (Json.parse (Buffer.contents buf)) with
    | Some (Json.List es) -> es
    | _ -> fail "no traceEvents array"
  in
  let process_names =
    List.filter_map
      (fun e ->
        match (Json.member "name" e, Json.member "pid" e, Json.member "args" e) with
        | Some (Json.Str "process_name"), Some pid, Some args ->
            Some
              ( int_of_float (Json.num_exn pid),
                Json.str_exn (Option.get (Json.member "name" args)) )
        | _ -> None)
      events
  in
  check (list (pair int string)) "one process group per shard"
    [ (0, "shard 0"); (1, "shard 1") ]
    process_names;
  List.iter
    (fun e ->
      match Json.member "pid" e with
      | Some pid ->
          let p = int_of_float (Json.num_exn pid) in
          check bool "pid is a server id" true (p = 0 || p = 1)
      | None -> fail "event without pid")
    events

let () =
  run "obs"
    [
      ( "recorder",
        [
          test_case "sampling and capacity" `Quick test_recorder_sampling;
          test_case "sample rate" `Quick test_recorder_sample_rate;
          test_case "record path is allocation-free" `Quick
            test_recorder_alloc_free;
          test_case "timeline and decision log" `Quick test_timeline_and_decisions;
        ] );
      ( "anatomy",
        [ test_case "components sum to end-to-end" `Slow test_anatomy_sums ] );
      ( "trace",
        [
          test_case "well-formed JSON with nested tracks" `Slow
            test_trace_well_formed;
          test_case "byte-identical across runs and domain pools" `Slow
            test_trace_deterministic;
          test_case "string escaping" `Quick test_trace_metadata_escaping;
          test_case "cluster trace: one pid per shard" `Quick
            test_cluster_trace_pids;
        ] );
      ( "runtime",
        [ test_case "native server spans and trace" `Slow test_runtime_instrumented ]
      );
    ]
