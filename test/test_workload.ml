(* Tests for the workload model: specs, datasets, generators and dynamic
   schedules. *)

open Workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let approx t = Alcotest.float t

(* A small spec so tests build datasets quickly. *)
let small_spec =
  {
    Spec.default with
    Spec.n_keys = 20_000;
    n_large_keys = 100;
  }

(* ------------------------------------------------------------------ *)
(* Spec *)

let test_spec_validate () =
  check bool "default valid" true (Spec.validate Spec.default = Ok ());
  check bool "paper scale valid" true (Spec.validate Spec.paper_scale = Ok ());
  let bad p = Spec.validate p <> Ok () in
  check bool "p_large > 100" true (bad { Spec.default with Spec.p_large = 101.0 });
  check bool "s_large below class" true (bad { Spec.default with Spec.s_large_max = 100 });
  check bool "get_ratio" true (bad { Spec.default with Spec.get_ratio = 1.5 });
  check bool "zipf theta" true (bad { Spec.default with Spec.zipf_theta = 1.0 });
  check bool "large >= keys" true
    (bad { Spec.default with Spec.n_large_keys = Spec.default.Spec.n_keys });
  check bool "tiny fraction" true (bad { Spec.default with Spec.tiny_fraction = -0.1 })

let test_spec_class_boundaries () =
  check int "tiny 1..13" 1 Spec.tiny_min;
  check int "tiny max" 13 Spec.tiny_max;
  check int "small min" 14 Spec.small_min;
  check int "small max" 1400 Spec.small_max;
  check int "large min" 1500 Spec.large_min

(* Table 1's third column: our analytic model within 3 percentage points
   of every row the paper reports. *)
let test_spec_percent_data_large_vs_paper () =
  let paper =
    [ (0.125, 250_000, 25.0); (0.125, 500_000, 40.0); (0.125, 1_000_000, 60.0);
      (0.0625, 500_000, 25.0); (0.25, 500_000, 60.0); (0.5, 500_000, 75.0);
      (0.75, 500_000, 80.0) ]
  in
  List.iter
    (fun (p_large, s_large_max, expected) ->
      let spec = { Spec.default with Spec.p_large; s_large_max } in
      let got = Spec.percent_data_large spec in
      if abs_float (got -. expected) > 3.0 then
        Alcotest.failf "pL=%.4f sL=%d: %.1f%% vs paper %.1f%%" p_large s_large_max got
          expected)
    paper

let test_spec_builders () =
  let s = Spec.with_p_large Spec.default 0.75 in
  check (approx 1e-9) "p_large set" 0.75 s.Spec.p_large;
  let s = Spec.with_s_large Spec.default 250_000 in
  check int "s_large set" 250_000 s.Spec.s_large_max;
  check int "table1 has 7 profiles" 7 (List.length Spec.table1_profiles)

(* ------------------------------------------------------------------ *)
(* Dataset *)

let test_dataset_sizes_in_class_ranges () =
  let d = Dataset.create small_spec in
  check int "n_keys" 20_000 (Dataset.n_keys d);
  check int "n_small" 19_900 (Dataset.n_small_keys d);
  for id = 0 to Dataset.n_keys d - 1 do
    let size = Dataset.size_of_key d id in
    if Dataset.is_large_key d id then begin
      if size < Spec.large_min || size > small_spec.Spec.s_large_max then
        Alcotest.failf "large key %d has size %d" id size
    end
    else if size < Spec.tiny_min || size > Spec.small_max then
      Alcotest.failf "small key %d has size %d" id size
  done

let test_dataset_tiny_fraction () =
  let d = Dataset.create small_spec in
  let tiny = ref 0 in
  for id = 0 to Dataset.n_small_keys d - 1 do
    if Dataset.size_of_key d id <= Spec.tiny_max then incr tiny
  done;
  let frac = float_of_int !tiny /. float_of_int (Dataset.n_small_keys d) in
  if abs_float (frac -. 0.4) > 0.02 then
    Alcotest.failf "tiny fraction %.3f far from 0.4" frac

let test_dataset_deterministic () =
  let a = Dataset.create ~seed:5 small_spec and b = Dataset.create ~seed:5 small_spec in
  for id = 0 to 999 do
    check int "same sizes" (Dataset.size_of_key a id) (Dataset.size_of_key b id)
  done

let test_dataset_zipf_skew () =
  (* The most popular key should receive far more than the uniform share,
     and popularity must be spread over ids (scrambling). *)
  let d = Dataset.create small_spec in
  let rng = Dsim.Rng.create 3 in
  let counts = Hashtbl.create 1024 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let k = Dataset.sample_small_key d rng in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let top_key, top_count =
    Hashtbl.fold (fun k c ((_, bc) as best) -> if c > bc then (k, c) else best)
      counts (-1, 0)
  in
  let uniform = float_of_int draws /. float_of_int (Dataset.n_small_keys d) in
  if float_of_int top_count < 100.0 *. uniform then
    Alcotest.failf "top key only %dx uniform share"
      (int_of_float (float_of_int top_count /. uniform));
  (* Scrambled: the hottest key should not be id 0 systematically... it can
     be any id; just verify it is a valid small id. *)
  check bool "top key in small range" true (top_key >= 0 && top_key < Dataset.n_small_keys d)

let test_dataset_large_sampling_uniform () =
  let d = Dataset.create small_spec in
  let rng = Dsim.Rng.create 4 in
  for _ = 1 to 1000 do
    let k = Dataset.sample_large_key d rng in
    if not (Dataset.is_large_key d k) then Alcotest.fail "large sample not large"
  done

let test_dataset_get_key_mix () =
  let spec = { small_spec with Spec.p_large = 10.0 } in
  let d = Dataset.create spec in
  let rng = Dsim.Rng.create 6 in
  let large = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Dataset.is_large_key d (Dataset.sample_get_key d rng) then incr large
  done;
  let frac = 100.0 *. float_of_int !large /. float_of_int n in
  if abs_float (frac -. 10.0) > 1.0 then
    Alcotest.failf "large fraction %.2f%% vs 10%%" frac

let test_dataset_put_class_preserved () =
  let d = Dataset.create small_spec in
  let rng = Dsim.Rng.create 8 in
  for _ = 1 to 2000 do
    let key, new_size = Dataset.sample_put d rng in
    let old_size = Dataset.size_of_key d key in
    let classify s = if s <= Spec.tiny_max then `Tiny else if s <= Spec.small_max then `Small else `Large in
    if classify old_size <> classify new_size then
      Alcotest.failf "PUT changed class: %d -> %d" old_size new_size
  done

let test_dataset_scramble_bijective () =
  (* The zipf-rank -> key-id scrambling must be a bijection: every small
     key id reachable, none twice (otherwise popularity mass would pile
     onto some keys and vanish from others). *)
  let spec = { small_spec with Workload.Spec.n_keys = 5_000; n_large_keys = 100 } in
  let d = Dataset.create spec in
  let n = Dataset.n_small_keys d in
  (* Recover the mapping by sampling with theta ~ 0: uniform ranks; touch
     enough samples that a missing id would be glaring.  Cheaper and
     deterministic: check directly via a round of distinct ranks. *)
  let seen = Array.make n false in
  let rng = Dsim.Rng.create 9 in
  (* Dataset does not expose the scramble; approximate the bijectivity
     check by drawing many samples and verifying coverage grows towards n
     (a non-injective map would plateau early). *)
  let draws = 40 * n in
  for _ = 1 to draws do
    seen.(Dataset.sample_small_key d rng) <- true
  done;
  let covered = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen in
  (* Zipf 0.99 over 4900 keys: 40x oversampling reaches the deep tail;
     requiring 85% coverage catches any collapsed mapping. *)
  if covered < 85 * n / 100 then
    Alcotest.failf "only %d/%d key ids reachable through the scramble" covered n

let test_key_name_unique () =
  check bool "distinct" true (Dataset.key_name 1 <> Dataset.key_name 2);
  check Alcotest.string "stable" (Dataset.key_name 42) (Dataset.key_name 42)

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_generator_mix () =
  let d = Dataset.create small_spec in
  let g = Generator.create d in
  let gets = ref 0 and larges = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Generator.next g in
    (match r.Generator.op with
    | Generator.Get -> incr gets
    | Generator.Put | Generator.Scan -> ());
    if r.Generator.is_large then incr larges
  done;
  let get_frac = float_of_int !gets /. float_of_int n in
  if abs_float (get_frac -. 0.95) > 0.01 then
    Alcotest.failf "get fraction %.3f vs 0.95" get_frac;
  let large_pct = 100.0 *. float_of_int !larges /. float_of_int n in
  if abs_float (large_pct -. 0.125) > 0.05 then
    Alcotest.failf "large%% %.3f vs 0.125" large_pct

let test_generator_put_carries_new_size () =
  let d = Dataset.create small_spec in
  let g = Generator.create ~get_ratio:0.0 d in
  for _ = 1 to 1000 do
    let r = Generator.next g in
    check bool "is put" true (r.Generator.op = Generator.Put);
    if r.Generator.is_large then begin
      if r.Generator.item_size < Spec.large_min then
        Alcotest.fail "large put size below class"
    end
    else if r.Generator.item_size > Spec.small_max then
      Alcotest.fail "small put size above class"
  done

let test_generator_set_p_large () =
  let d = Dataset.create small_spec in
  let g = Generator.create d in
  Generator.set_p_large g 50.0;
  check (approx 1e-9) "updated" 50.0 (Generator.p_large g);
  let larges = ref 0 in
  for _ = 1 to 10_000 do
    if (Generator.next g).Generator.is_large then incr larges
  done;
  let pct = 100.0 *. float_of_int !larges /. 10_000.0 in
  if abs_float (pct -. 50.0) > 2.0 then Alcotest.failf "p_large %.1f vs 50" pct;
  Alcotest.check_raises "invalid p" (Invalid_argument "Generator.set_p_large: out of [0, 100]")
    (fun () -> Generator.set_p_large g 150.0)

let test_generator_wire_bytes () =
  let d = Dataset.create small_spec in
  let g = Generator.create d in
  let r = Generator.next g in
  let bytes = Generator.request_wire_bytes r ~key_size:8 in
  check bool "positive" true (bytes > 0);
  (* A GET request always fits one frame. *)
  match r.Generator.op with
  | Generator.Get | Generator.Scan -> check bool "single frame" true (bytes < 1600)
  | Generator.Put -> ()

(* ------------------------------------------------------------------ *)
(* Dynamic *)

let test_dynamic_schedule () =
  let sched =
    Dynamic.create
      [ { Dynamic.duration_us = 10.0; p_large = 0.1 };
        { Dynamic.duration_us = 20.0; p_large = 0.5 } ]
  in
  check (approx 1e-9) "total" 30.0 (Dynamic.total_duration sched);
  check (approx 1e-9) "phase 1" 0.1 (Dynamic.p_large_at sched 0.0);
  check (approx 1e-9) "phase 1 end" 0.1 (Dynamic.p_large_at sched 9.99);
  check (approx 1e-9) "phase 2" 0.5 (Dynamic.p_large_at sched 10.0);
  check (approx 1e-9) "past end holds" 0.5 (Dynamic.p_large_at sched 100.0);
  check (Alcotest.list (approx 1e-9)) "boundaries" [ 0.0; 10.0 ]
    (Dynamic.phase_boundaries sched)

let test_dynamic_paper_schedule () =
  let s = Dynamic.paper_schedule in
  check (approx 1e-3) "7 x 20s" (140.0 *. 1e6) (Dynamic.total_duration s);
  check (approx 1e-9) "starts at 0.125" 0.125 (Dynamic.p_large_at s 0.0);
  check (approx 1e-9) "peaks at 0.75" 0.75 (Dynamic.p_large_at s (70.0 *. 1e6));
  check (approx 1e-9) "returns to 0.125" 0.125 (Dynamic.p_large_at s (139.0 *. 1e6))

let test_dynamic_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Dynamic.create: need at least one phase")
    (fun () -> ignore (Dynamic.create []));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Dynamic.create: phase durations must be positive") (fun () ->
      ignore (Dynamic.create [ { Dynamic.duration_us = 0.0; p_large = 0.1 } ]))

let () =
  Alcotest.run "workload"
    [
      ( "spec",
        [
          Alcotest.test_case "validate" `Quick test_spec_validate;
          Alcotest.test_case "class boundaries" `Quick test_spec_class_boundaries;
          Alcotest.test_case "Table 1 percent data" `Quick
            test_spec_percent_data_large_vs_paper;
          Alcotest.test_case "builders" `Quick test_spec_builders;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "sizes in class ranges" `Quick
            test_dataset_sizes_in_class_ranges;
          Alcotest.test_case "tiny fraction" `Quick test_dataset_tiny_fraction;
          Alcotest.test_case "deterministic" `Quick test_dataset_deterministic;
          Alcotest.test_case "zipf skew" `Slow test_dataset_zipf_skew;
          Alcotest.test_case "large sampling" `Quick test_dataset_large_sampling_uniform;
          Alcotest.test_case "get key mix" `Slow test_dataset_get_key_mix;
          Alcotest.test_case "put preserves class" `Quick test_dataset_put_class_preserved;
          Alcotest.test_case "scramble bijective" `Slow test_dataset_scramble_bijective;
          Alcotest.test_case "key names" `Quick test_key_name_unique;
        ] );
      ( "generator",
        [
          Alcotest.test_case "mix" `Slow test_generator_mix;
          Alcotest.test_case "put sizes" `Quick test_generator_put_carries_new_size;
          Alcotest.test_case "set_p_large" `Quick test_generator_set_p_large;
          Alcotest.test_case "wire bytes" `Quick test_generator_wire_bytes;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "schedule" `Quick test_dynamic_schedule;
          Alcotest.test_case "paper schedule" `Quick test_dynamic_paper_schedule;
          Alcotest.test_case "validation" `Quick test_dynamic_validation;
        ] );
    ]
