(* Tests for the fault-injection subsystem: the plan language and its
   parser, the seeded injector's determinism, the watchdog's hysteresis,
   and the end-to-end chaos contracts — byte-identical reruns at a fixed
   (plan, seed) and exact loss accounting under overload. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Plan: validation and parser round-trip *)

let stall ?(core = 1) ?(from_us = 0.0) ?(until_us = 100.0) ?(factor = 2.0) () =
  Fault.Plan.Core_stall { core; from_us; until_us; factor }

let plan events = { Fault.Plan.name = "test"; events }

let test_plan_validate () =
  let ok p = check bool "valid" true (Result.is_ok (Fault.Plan.validate p)) in
  let bad p = check bool "invalid" true (Result.is_error (Fault.Plan.validate p)) in
  ok (plan [ stall () ]);
  ok Fault.Plan.empty;
  bad (plan [ stall ~factor:0.5 () ]);
  bad (plan [ stall ~from_us:10.0 ~until_us:10.0 () ]);
  bad
    (plan
       [
         Fault.Plan.Net_fault
           {
             queue = Fault.Plan.all;
             from_us = 0.0;
             until_us = 100.0;
             drop = 0.6;
             dup = 0.5;
             reorder = 0.0;
             reorder_max_us = 10.0;
           };
       ]);
  bad
    (plan
       [
         Fault.Plan.Ring_squeeze
           { queue = 0; from_us = 0.0; until_us = 100.0; capacity = 0 };
       ])

let test_plan_canned_names () =
  List.iter
    (fun name ->
      match
        Fault.Plan.canned name ~cores:8 ~warmup_us:1000.0 ~duration_us:10000.0
      with
      | Some p ->
          check string "canned plan keeps its name" name p.Fault.Plan.name;
          check bool "canned plan validates" true
            (Result.is_ok (Fault.Plan.validate p))
      | None -> Alcotest.failf "canned plan %s missing" name)
    Fault.Plan.canned_names;
  check bool "unknown canned name" true
    (Fault.Plan.canned "no-such-plan" ~cores:8 ~warmup_us:0.0
       ~duration_us:1000.0
    = None)

let test_plan_round_trip () =
  (* to_string |> of_string must reproduce every canned plan exactly:
     the rendering is the on-disk format `minos chaos --fault-plan`
     loads. *)
  List.iter
    (fun name ->
      let p =
        Option.get
          (Fault.Plan.canned name ~cores:8 ~warmup_us:1000.0
             ~duration_us:10000.0)
      in
      let rendered = Fault.Plan.to_string p in
      match Fault.Plan.of_string ~name rendered with
      | Error e -> Alcotest.failf "%s: reparse failed: %s" name e
      | Ok p' ->
          check string
            (name ^ ": round-trip is a fixed point")
            rendered (Fault.Plan.to_string p');
          check int
            (name ^ ": event count survives")
            (List.length p.Fault.Plan.events)
            (List.length p'.Fault.Plan.events))
    Fault.Plan.canned_names

let test_plan_parse_forms () =
  let src =
    "# comment\n\
     core-stall core=* from=0 until=end factor=50\n\
     net queue=2 from=100 until=200 drop=0.1 dup=0 reorder=0.05 \
     reorder-max=30\n\
     squeeze queue=* from=0 until=end capacity=256\n\
     ctrl-delay from=800 until=end\n\
     ctrl-corrupt from=500 until=800 mode=x3.5\n\
     ctrl-corrupt from=100 until=200 mode=nan\n"
  in
  match Fault.Plan.of_string ~name:"forms" src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      check int "six events" 6 (List.length p.Fault.Plan.events);
      (match List.hd p.Fault.Plan.events with
      | Fault.Plan.Core_stall { core; until_us; _ } ->
          check int "core wildcard" Fault.Plan.all core;
          check bool "until=end is infinity" true (until_us = infinity)
      | _ -> Alcotest.fail "first event is not a core stall");
      check bool "garbage rejected" true
        (Result.is_error (Fault.Plan.of_string "not an event"))

let test_plan_kill_recover () =
  (* The crash events: validation bounds, parse forms, and the textual
     round-trip the hedge bench's canned plan relies on. *)
  let ok p = check bool "valid" true (Result.is_ok (Fault.Plan.validate p)) in
  let bad p =
    check bool "invalid" true (Result.is_error (Fault.Plan.validate p))
  in
  let p =
    plan
      [
        Fault.Plan.Kill_server { server = 2; at_us = 700.0 };
        Fault.Plan.Recover_server { server = 2; at_us = 1100.0 };
      ]
  in
  ok p;
  ok (plan [ Fault.Plan.Kill_server { server = Fault.Plan.all; at_us = 0.0 } ]);
  bad (plan [ Fault.Plan.Kill_server { server = -2; at_us = 0.0 } ]);
  bad (plan [ Fault.Plan.Kill_server { server = 0; at_us = -1.0 } ]);
  bad (plan [ Fault.Plan.Recover_server { server = 0; at_us = nan } ]);
  let rendered = Fault.Plan.to_string p in
  (match Fault.Plan.of_string ~name:"test" rendered with
  | Error e -> Alcotest.failf "kill plan does not re-parse: %s" e
  | Ok p' ->
      check string "kill/recover round-trip is a fixed point" rendered
        (Fault.Plan.to_string p'));
  match
    Fault.Plan.of_string ~name:"k"
      "kill-server server=* at=500\nrecover-server server=1 at=900\n"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p -> (
      match p.Fault.Plan.events with
      | [ Fault.Plan.Kill_server { server; at_us } ; Fault.Plan.Recover_server _ ] ->
          check int "server wildcard" Fault.Plan.all server;
          check bool "instant parsed" true (at_us = 500.0)
      | _ -> Alcotest.fail "unexpected event shapes")

(* ------------------------------------------------------------------ *)
(* Inject: seeded determinism and window semantics *)

let loss_plan =
  plan
    [
      Fault.Plan.Net_fault
        {
          queue = Fault.Plan.all;
          from_us = 100.0;
          until_us = 1000.0;
          drop = 0.3;
          dup = 0.2;
          reorder = 0.1;
          reorder_max_us = 50.0;
        };
    ]

let fates inj ~n ~now =
  List.init n (fun i ->
      Fault.Inject.fate inj ~queue:(i mod 4) ~now)

let test_inject_fate_determinism () =
  let a = Fault.Inject.create ~seed:7 loss_plan in
  let b = Fault.Inject.create ~seed:7 loss_plan in
  check bool "same (plan, seed): same fates" true
    (fates a ~n:1000 ~now:500.0 = fates b ~n:1000 ~now:500.0);
  let c = Fault.Inject.create ~seed:8 loss_plan in
  check bool "different seed: different fates" true
    (fates a ~n:1000 ~now:500.0 <> fates c ~n:1000 ~now:500.0)

let test_inject_fate_outside_window () =
  (* Queries outside any net window are Pass and consume no randomness:
     the stream an in-window consumer sees must not depend on how many
     healthy requests preceded it. *)
  let a = Fault.Inject.create ~seed:7 loss_plan in
  let b = Fault.Inject.create ~seed:7 loss_plan in
  List.iter
    (fun f -> check bool "healthy fate" true (f = Fault.Inject.Pass))
    (fates a ~n:100 ~now:50.0);
  check bool "out-of-window queries draw nothing" true
    (fates a ~n:100 ~now:500.0 = fates b ~n:100 ~now:500.0)

let test_inject_slowdown_windows () =
  let p =
    plan [ stall ~core:1 ~from_us:100.0 ~until_us:200.0 ~factor:50.0 () ]
  in
  let inj = Fault.Inject.create ~seed:1 p in
  let f = Alcotest.float 1e-9 in
  check f "inside window" 50.0 (Fault.Inject.slowdown inj ~core:1 ~now:150.0);
  check f "other core" 1.0 (Fault.Inject.slowdown inj ~core:0 ~now:150.0);
  check f "before window" 1.0 (Fault.Inject.slowdown inj ~core:1 ~now:50.0);
  check f "window is half-open" 1.0
    (Fault.Inject.slowdown inj ~core:1 ~now:200.0);
  check f "stall end inside" 200.0
    (Fault.Inject.stall_end inj ~core:1 ~now:150.0);
  check f "stall end outside is now" 42.0
    (Fault.Inject.stall_end inj ~core:1 ~now:42.0)

let test_inject_rx_capacity_and_ctrl () =
  let p =
    plan
      [
        Fault.Plan.Ring_squeeze
          { queue = Fault.Plan.all; from_us = 100.0; until_us = 200.0; capacity = 7 };
        Fault.Plan.Ctrl_delay { from_us = 300.0; until_us = 400.0 };
        Fault.Plan.Ctrl_corrupt
          { from_us = 500.0; until_us = 600.0; mode = Fault.Plan.Nan };
        Fault.Plan.Ctrl_corrupt
          { from_us = 600.0; until_us = 700.0; mode = Fault.Plan.Scale 3.0 };
      ]
  in
  let inj = Fault.Inject.create ~seed:1 p in
  check int "squeezed" 7 (Fault.Inject.rx_capacity inj ~queue:3 ~now:150.0);
  check int "unconstrained" max_int
    (Fault.Inject.rx_capacity inj ~queue:3 ~now:250.0);
  check bool "ctrl delayed inside" true (Fault.Inject.ctrl_delayed inj ~now:350.0);
  check bool "ctrl live outside" false (Fault.Inject.ctrl_delayed inj ~now:450.0);
  check bool "nan corruption" true
    (Float.is_nan (Fault.Inject.corrupt_threshold inj ~now:550.0 128.0));
  check (Alcotest.float 1e-9) "scale corruption" 384.0
    (Fault.Inject.corrupt_threshold inj ~now:650.0 128.0);
  check (Alcotest.float 1e-9) "identity outside" 128.0
    (Fault.Inject.corrupt_threshold inj ~now:750.0 128.0)

let test_inject_server_dead_windows () =
  (* A kill window opens at the kill instant and closes at the earliest
     matching recover (never, when unmatched); wildcard kills cover
     every server; [dead_windows] exposes the compiled pairing. *)
  let p =
    plan
      [
        Fault.Plan.Kill_server { server = 2; at_us = 700.0 };
        Fault.Plan.Recover_server { server = 2; at_us = 1100.0 };
        Fault.Plan.Kill_server { server = 0; at_us = 400.0 };
      ]
  in
  let inj = Fault.Inject.create ~seed:1 p in
  let dead s now = Fault.Inject.server_dead inj ~server:s ~now in
  check bool "before the kill" false (dead 2 600.0);
  check bool "the kill instant opens the window" true (dead 2 700.0);
  check bool "inside the window" true (dead 2 900.0);
  check bool "the recover instant closes it" false (dead 2 1100.0);
  check bool "other servers unaffected" false (dead 1 900.0);
  check bool "unmatched kill is forever" true (dead 0 1.0e12);
  let windows = List.sort compare (Fault.Inject.dead_windows inj) in
  check bool "compiled windows pair kills with recovers" true
    (windows = [ (0, 400.0, infinity); (2, 700.0, 1100.0) ]);
  (* Wildcard: one kill event covers every server id. *)
  let w =
    Fault.Inject.create ~seed:1
      (plan [ Fault.Plan.Kill_server { server = Fault.Plan.all; at_us = 10.0 } ])
  in
  check bool "wildcard kills server 0" true
    (Fault.Inject.server_dead w ~server:0 ~now:10.0);
  check bool "wildcard kills server 7" true
    (Fault.Inject.server_dead w ~server:7 ~now:10.0);
  check bool "wildcard window in dead_windows" true
    (Fault.Inject.dead_windows w = [ (Fault.Plan.all, 10.0, infinity) ])

(* ------------------------------------------------------------------ *)
(* Watchdog: hysteresis of exclusion and readmission *)

let epoch wd ~sick =
  (* Healthy cores serve 1000 ops/epoch with shallow queues; the sick
     core serves nothing and its queue is backed up. *)
  let ops = Array.make 4 0 in
  let cum = Array.make 4 0 in
  fun () ->
    Array.iteri (fun i c -> cum.(i) <- c + (if i = 1 && sick () then 0 else 1000)) cum;
    Array.blit cum 0 ops 0 4;
    Kvserver.Watchdog.observe wd ~ops
      ~depth:(fun c -> if c = 1 && sick () then 500 else 3)

let test_watchdog_condemns_after_hysteresis () =
  let wd = Kvserver.Watchdog.create ~cores:4 () in
  let tick = epoch wd ~sick:(fun () -> true) in
  check bool "first sick epoch: no change" true (tick () = Kvserver.Watchdog.No_change);
  (match tick () with
  | Kvserver.Watchdog.Exclude c -> check int "condemned core" 1 c
  | _ -> Alcotest.fail "second sick epoch should condemn");
  check int "excluded" 1 (Kvserver.Watchdog.excluded wd)

let test_watchdog_readmits_on_probation () =
  let wd = Kvserver.Watchdog.create ~forgive_after:3 ~cores:4 () in
  let sick = ref true in
  let tick = epoch wd ~sick:(fun () -> !sick) in
  ignore (tick ());
  ignore (tick ());
  check int "excluded" 1 (Kvserver.Watchdog.excluded wd);
  sick := false;
  ignore (tick ());
  ignore (tick ());
  (match tick () with
  | Kvserver.Watchdog.Readmit c -> check int "readmitted core" 1 c
  | _ -> Alcotest.fail "probation should end in readmission");
  check int "none excluded" (-1) (Kvserver.Watchdog.excluded wd);
  (* A recovered core stays in service. *)
  for _ = 1 to 8 do
    check bool "healthy: no change" true (tick () = Kvserver.Watchdog.No_change)
  done

let test_watchdog_healthy_quiet () =
  let wd = Kvserver.Watchdog.create ~cores:4 () in
  let tick = epoch wd ~sick:(fun () -> false) in
  for _ = 1 to 20 do
    check bool "no change" true (tick () = Kvserver.Watchdog.No_change)
  done

let test_watchdog_never_below_two_cores () =
  let wd = Kvserver.Watchdog.create ~cores:2 () in
  let cum = ref 0 in
  for _ = 1 to 10 do
    cum := !cum + 1000;
    let verdict =
      Kvserver.Watchdog.observe wd
        ~ops:[| !cum; 0 |]
        ~depth:(fun c -> if c = 1 then 500 else 3)
    in
    check bool "2 cores: never excludes" true
      (verdict = Kvserver.Watchdog.No_change)
  done

let test_watchdog_depth_floor () =
  (* No progress but an empty queue is idleness, not sickness. *)
  let wd = Kvserver.Watchdog.create ~cores:4 () in
  let cum = Array.make 4 0 in
  for _ = 1 to 10 do
    Array.iteri (fun i c -> cum.(i) <- c + (if i = 1 then 0 else 1000)) cum;
    check bool "shallow queue: no exclusion" true
      (Kvserver.Watchdog.observe wd ~ops:(Array.copy cum) ~depth:(fun _ -> 0)
      = Kvserver.Watchdog.No_change)
  done

(* ------------------------------------------------------------------ *)
(* End to end: determinism and loss accounting on the dsim engine *)

let tiny_config () =
  let c = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  { c with Kvserver.Config.warmup_us = 20_000.0; duration_us = 120_000.0 }

let canned_for cfg name =
  Option.get
    (Fault.Plan.canned name ~cores:cfg.Kvserver.Config.cores
       ~warmup_us:cfg.Kvserver.Config.warmup_us
       ~duration_us:cfg.Kvserver.Config.duration_us)

let test_chaos_rerun_byte_identical () =
  (* The acceptance contract: a fixed (plan, seed) reproduces the chaos
     table byte for byte, including under parallel variant execution. *)
  Minos.Par.set_jobs (Some 4);
  let cfg = tiny_config () in
  let plan = canned_for cfg "loss10" in
  let run () =
    {
      Minos.Chaos.seed = 5;
      rows = Minos.Chaos.run_plan ~cfg ~seed:5 ~offered_mops:7.0 plan;
    }
  in
  let a = Minos.Chaos.to_json (run ()) in
  let b = Minos.Chaos.to_json (run ()) in
  check string "rerun at fixed (plan, seed) is byte-identical" a b

let test_chaos_trace_byte_identical () =
  (* Same contract for the flight recorder: two instrumented faulty runs
     at the same seed emit byte-identical Chrome traces. *)
  let cfg = tiny_config () in
  let plan = canned_for cfg "core-stall" in
  let trace () =
    let obs =
      Obs.Instrument.create ~spans:4096 ~sample_rate:0.1
        ~cores:cfg.Kvserver.Config.cores ~seed:11 ()
    in
    let fault = Fault.Inject.create ~seed:3 plan in
    let m =
      Minos.Experiment.run ~cfg ~obs ~fault ~seed:3 Kvserver.Design.minos
        Workload.Spec.default ~offered_mops:2.0
    in
    let buf = Buffer.create 65536 in
    Obs.Chrome_trace.to_buffer ?timeline:obs.Obs.Instrument.timeline
      ~decisions:obs.Obs.Instrument.decisions obs.Obs.Instrument.recorder buf;
    (m, Buffer.contents buf)
  in
  let m1, t1 = trace () in
  let m2, t2 = trace () in
  check bool "metrics identical" true (m1 = m2);
  check string "traces byte-identical" t1 t2;
  check bool "trace is non-trivial" true (String.length t1 > 1000)

let telescope (m : Kvserver.Metrics.t) =
  m.Kvserver.Metrics.served_total + m.Kvserver.Metrics.net_dropped
  + m.Kvserver.Metrics.rx_dropped + m.Kvserver.Metrics.shed_small
  + m.Kvserver.Metrics.shed_large + m.Kvserver.Metrics.in_flight_end

let test_overload_telescopes () =
  (* Under the overload plan every issued request must be accounted for:
     served, dropped by the NIC, tail-dropped at a squeezed ring, shed by
     admission control, or still in flight at the end — nothing lost,
     nothing double-counted. *)
  let cfg = tiny_config () in
  let plan = canned_for cfg "overload" in
  let shed_seen = ref false in
  List.iter
    (fun (label, design, cfg) ->
      let fault = Fault.Inject.create ~seed:5 plan in
      let m =
        Minos.Experiment.run ~cfg ~fault ~seed:5 design Workload.Spec.default
          ~offered_mops:8.0
      in
      check int (label ^ ": issued telescopes exactly")
        m.Kvserver.Metrics.issued (telescope m);
      if Kvserver.Metrics.shed_total m > 0 then shed_seen := true)
    [
      ("Minos+guard", Kvserver.Design.minos, Minos.Chaos.guard_config cfg);
      ("Minos", Kvserver.Design.minos, cfg);
    ];
  check bool "admission control shed under overload" true !shed_seen

let test_healthy_runs_lose_nothing () =
  let cfg = tiny_config () in
  let m =
    Minos.Experiment.run ~cfg ~seed:5 Kvserver.Design.minos
      Workload.Spec.default ~offered_mops:2.0
  in
  check int "no loss without faults" 0 (Kvserver.Metrics.lost_total m);
  check int "telescope holds when healthy" m.Kvserver.Metrics.issued
    (telescope m)

let test_plan_load_scaling () =
  let f = Alcotest.float 1e-9 in
  check f "default base" 4.0 (Minos.Chaos.plan_load "core-stall");
  check f "loss10 scaled" 7.0 (Minos.Chaos.plan_load "loss10");
  check f "overload scaled" 8.0 (Minos.Chaos.plan_load "overload");
  check f "base override" 3.5 (Minos.Chaos.plan_load ~base:2.0 "loss10")

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validate;
          Alcotest.test_case "canned plans" `Quick test_plan_canned_names;
          Alcotest.test_case "parser round-trip" `Quick test_plan_round_trip;
          Alcotest.test_case "parse forms" `Quick test_plan_parse_forms;
          Alcotest.test_case "kill/recover events" `Quick
            test_plan_kill_recover;
        ] );
      ( "inject",
        [
          Alcotest.test_case "fate determinism" `Quick
            test_inject_fate_determinism;
          Alcotest.test_case "no draws outside windows" `Quick
            test_inject_fate_outside_window;
          Alcotest.test_case "slowdown windows" `Quick
            test_inject_slowdown_windows;
          Alcotest.test_case "rx capacity + control faults" `Quick
            test_inject_rx_capacity_and_ctrl;
          Alcotest.test_case "server-dead windows" `Quick
            test_inject_server_dead_windows;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "condemns after hysteresis" `Quick
            test_watchdog_condemns_after_hysteresis;
          Alcotest.test_case "readmits on probation" `Quick
            test_watchdog_readmits_on_probation;
          Alcotest.test_case "healthy stays quiet" `Quick
            test_watchdog_healthy_quiet;
          Alcotest.test_case "never below two cores" `Quick
            test_watchdog_never_below_two_cores;
          Alcotest.test_case "depth floor" `Quick test_watchdog_depth_floor;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "rerun byte-identical" `Quick
            test_chaos_rerun_byte_identical;
          Alcotest.test_case "trace byte-identical" `Quick
            test_chaos_trace_byte_identical;
          Alcotest.test_case "overload telescopes" `Quick
            test_overload_telescopes;
          Alcotest.test_case "healthy runs lose nothing" `Quick
            test_healthy_runs_lose_nothing;
          Alcotest.test_case "per-plan loads" `Quick test_plan_load_scaling;
        ] );
    ]
