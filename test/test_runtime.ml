(* Tests for the native multicore runtime: real domains, real rings, real
   store, real control loop.  These assert functional properties —
   completeness, classification, adaptation, CREW safety — not latency
   (domains time-slice on small CI machines). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* A dataset small enough to materialize fully (values are real bytes). *)
let runtime_spec =
  {
    Workload.Spec.default with
    Workload.Spec.n_keys = 3_000;
    n_large_keys = 30;
    s_large_max = 64_000; (* large class: 1.5KB - 64KB *)
  }

let with_server ?config f =
  let dataset = Workload.Dataset.create runtime_spec in
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:8
      ~value_arena_bytes:(64 * 1024 * 1024) ()
  in
  Runtime.Loadgen.populate store dataset;
  let server = Runtime.Server.start ?config store in
  Fun.protect ~finally:(fun () -> Runtime.Server.stop server) (fun () -> f server dataset)

let test_all_requests_answered () =
  with_server (fun server dataset ->
      let r =
        Runtime.Loadgen.run ~server ~dataset ~requests:20_000 ~seed:3 ()
      in
      check int "every request answered" 20_000 r.Runtime.Loadgen.completed;
      check int "no spurious misses" 0 r.Runtime.Loadgen.not_found;
      check int "latency per request" 20_000
        (Stats.Float_vec.length r.Runtime.Loadgen.latencies))

let test_served_counts_conserve () =
  with_server (fun server dataset ->
      let r = Runtime.Loadgen.run ~server ~dataset ~requests:10_000 ~seed:5 () in
      let stats = Runtime.Server.stats server in
      let total = Array.fold_left ( + ) 0 stats.Runtime.Server.served in
      check int "per-core serves sum to completions" r.Runtime.Loadgen.completed total)

let test_controller_converges () =
  with_server (fun server dataset ->
      (* Enough traffic to span several 50 ms epochs. *)
      let _ = Runtime.Loadgen.run ~server ~dataset ~requests:60_000 ~seed:7 () in
      let stats = Runtime.Server.stats server in
      check bool "control loop ran" true (stats.Runtime.Server.epochs >= 1);
      (* The p99 item size of this spec sits inside the small class. *)
      if
        stats.Runtime.Server.threshold < 900.0
        || stats.Runtime.Server.threshold > 1600.0
      then Alcotest.failf "threshold %.0f out of band" stats.Runtime.Server.threshold;
      check bool "big requests produced handoffs" true
        (stats.Runtime.Server.handoffs > 0);
      check bool "small pool + large pool = cores" true
        (stats.Runtime.Server.n_small + stats.Runtime.Server.n_large
        = Runtime.Server.default_config.Runtime.Server.cores))

let test_keyhash_mode () =
  let config =
    { Runtime.Server.default_config with Runtime.Server.mode = Runtime.Server.Keyhash }
  in
  with_server ~config (fun server dataset ->
      let r = Runtime.Loadgen.run ~server ~dataset ~requests:10_000 ~seed:9 () in
      check int "completed" 10_000 r.Runtime.Loadgen.completed;
      let stats = Runtime.Server.stats server in
      check int "keyhash mode never hands off" 0 stats.Runtime.Server.handoffs)

let test_store_consistent_after_run () =
  let dataset = Workload.Dataset.create runtime_spec in
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:8
      ~value_arena_bytes:(64 * 1024 * 1024) ()
  in
  Runtime.Loadgen.populate store dataset;
  let before = (Kvstore.Store.stats store).Kvstore.Store.items in
  let server = Runtime.Server.start store in
  let _ = Runtime.Loadgen.run ~server ~dataset ~requests:15_000 ~seed:11 () in
  Runtime.Server.stop server;
  (* PUTs overwrite existing keys, so the item count is unchanged and
     every key still resolves with a class-consistent size. *)
  check int "item count preserved" before (Kvstore.Store.stats store).Kvstore.Store.items;
  for id = 0 to Workload.Dataset.n_keys dataset - 1 do
    match Kvstore.Store.size_of store (Workload.Dataset.key_name id) with
    | None -> Alcotest.failf "key %d lost" id
    | Some size ->
        let large = Workload.Dataset.is_large_key dataset id in
        if large && size < Workload.Spec.large_min then
          Alcotest.failf "large key %d shrank to %d" id size;
        if (not large) && size > Workload.Spec.small_max then
          Alcotest.failf "small key %d grew to %d" id size
  done

let test_concurrent_clients () =
  (* Several client domains submitting at once: exercises multi-producer
     RX rings, the shared reply ring and the collector demux.  Every
     request must be answered exactly once to its own client. *)
  with_server (fun server dataset ->
      let r =
        Runtime.Loadgen.run_concurrent ~clients:3 ~server ~dataset
          ~requests_per_client:4_000 ~seed:21 ()
      in
      check int "all clients fully answered" 12_000 r.Runtime.Loadgen.completed;
      check int "no misses" 0 r.Runtime.Loadgen.not_found;
      check int "one latency per request" 12_000
        (Stats.Float_vec.length r.Runtime.Loadgen.latencies))

let test_delete_through_scheduler () =
  (* DELETE is a "special PUT": it dispatches by keyhash and flows through
     the workers like any write. *)
  let store =
    Kvstore.Store.create ~partition_bits:3 ~bucket_bits:6
      ~value_arena_bytes:(1 lsl 22) ()
  in
  Kvstore.Store.put store ~guard:`Lock "victim" (Bytes.of_string "doomed");
  let server = Runtime.Server.start store in
  Fun.protect
    ~finally:(fun () -> Runtime.Server.stop server)
    (fun () ->
      let submit op =
        let req =
          { Runtime.Message.id = Int64.of_int (Hashtbl.hash op);
            op; key = "victim"; submitted_at = Unix.gettimeofday ();
            obs_slot = -1 }
        in
        while not (Runtime.Server.submit server req) do
          Domain.cpu_relax ()
        done;
        let rec wait () =
          match Runtime.Server.poll_reply server with
          | Some r -> r
          | None ->
              Domain.cpu_relax ();
              wait ()
        in
        wait ()
      in
      let r = submit Runtime.Message.Delete in
      check bool "delete ok" true (r.Runtime.Message.status = Runtime.Message.Ok);
      let r = submit Runtime.Message.Get in
      check bool "gone" true (r.Runtime.Message.status = Runtime.Message.Not_found);
      check bool "store empty" true ((Kvstore.Store.stats store).Kvstore.Store.items = 0))

let test_stop_is_idempotent () =
  with_server (fun server _ ->
      Runtime.Server.stop server;
      Runtime.Server.stop server;
      (* [with_server]'s finally will call it a third time. *)
      check bool "stopped" true true)

let test_submit_refused_after_stop () =
  let dataset = Workload.Dataset.create runtime_spec in
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:8
      ~value_arena_bytes:(8 * 1024 * 1024) ()
  in
  let server = Runtime.Server.start store in
  Runtime.Server.stop server;
  let accepted =
    Runtime.Server.submit server
      { Runtime.Message.id = 1L; op = Runtime.Message.Get;
        key = Workload.Dataset.key_name 0; submitted_at = 0.0; obs_slot = -1 }
  in
  ignore dataset;
  check bool "refused" false accepted

let test_config_validation () =
  let store = Kvstore.Store.create ~value_arena_bytes:(1 lsl 20) () in
  Alcotest.check_raises "cores" (Invalid_argument "Server.start: need at least 2 cores")
    (fun () ->
      ignore
        (Runtime.Server.start
           ~config:{ Runtime.Server.default_config with Runtime.Server.cores = 1 }
           store))

(* ------------------------------------------------------------------ *)
(* UDP front end *)

let with_udp ?(base_port = 48111) f =
  let store =
    Kvstore.Store.create ~partition_bits:4 ~bucket_bits:8
      ~value_arena_bytes:(32 * 1024 * 1024) ()
  in
  let udp = Runtime.Udp.start ~base_port store in
  let client =
    Runtime.Udp.Client.connect ~base_port ~queues:(Runtime.Udp.queues udp) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Runtime.Udp.Client.close client;
      Runtime.Udp.stop udp)
    (fun () -> f udp client store)

let test_udp_roundtrip () =
  with_udp (fun _udp client _store ->
      Runtime.Udp.Client.put client "hello" (Bytes.of_string "world");
      check (Alcotest.option Alcotest.string) "get" (Some "world")
        (Option.map Bytes.to_string (Runtime.Udp.Client.get client "hello"));
      check (Alcotest.option Alcotest.string) "miss" None
        (Option.map Bytes.to_string (Runtime.Udp.Client.get client "absent"));
      check bool "delete present" true (Runtime.Udp.Client.delete client "hello");
      check bool "delete absent" false (Runtime.Udp.Client.delete client "hello");
      check (Alcotest.option Alcotest.string) "gone" None
        (Option.map Bytes.to_string (Runtime.Udp.Client.get client "hello")))

let test_udp_large_value_fragmentation () =
  with_udp ~base_port:48211 (fun _udp client _store ->
      (* ~80 fragments each way. *)
      let big = Bytes.init 120_000 (fun i -> Char.chr (i mod 251)) in
      Runtime.Udp.Client.put client "blob" big;
      match Runtime.Udp.Client.get client "blob" with
      | Some v -> check bool "intact" true (Bytes.equal v big)
      | None -> Alcotest.fail "blob lost")

let test_udp_many_operations () =
  with_udp ~base_port:48311 (fun udp client store ->
      for i = 1 to 300 do
        Runtime.Udp.Client.put client
          (Printf.sprintf "k%03d" i)
          (Bytes.make (1 + (i mod 1400)) 'x')
      done;
      for i = 1 to 300 do
        match Runtime.Udp.Client.get client (Printf.sprintf "k%03d" i) with
        | Some v -> check int "size" (1 + (i mod 1400)) (Bytes.length v)
        | None -> Alcotest.failf "k%03d lost" i
      done;
      check int "store item count" 300 (Kvstore.Store.stats store).Kvstore.Store.items;
      (* Every op went through the size-aware scheduler. *)
      let stats = Runtime.Server.stats (Runtime.Udp.server udp) in
      check int "server served the RPCs" 600
        (Array.fold_left ( + ) 0 stats.Runtime.Server.served))

let test_udp_dead_endpoint_fails_fast () =
  (* Nothing listens on the port, so the kernel answers the connected
     socket with ICMP port-unreachable: the client must surface
     [Server_dead] immediately — no retransmission schedule — and leave
     the retry budget untouched (crash failover is the caller's job;
     burning tokens on a dead endpoint would only delay it). *)
  let retry =
    { Proto.Retry.max_attempts = 3; timeout_us = 200_000.0; backoff = 2.0; cap_us = infinity }
  in
  let budget = Proto.Retry.Budget.create ~capacity:2.0 ~earn_per_call:0.0 () in
  let client =
    Runtime.Udp.Client.connect ~retry ~budget ~seed:9 ~base_port:48911
      ~queues:4 ()
  in
  Fun.protect
    ~finally:(fun () -> Runtime.Udp.Client.close client)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 3 do
        try
          Runtime.Udp.Client.put client "k" (Bytes.of_string "v");
          Alcotest.fail "put against a dead endpoint must raise Server_dead"
        with Runtime.Udp.Client.Server_dead -> ()
      done;
      let elapsed_us = 1.0e6 *. (Unix.gettimeofday () -. t0) in
      check bool "fail-fast: well inside one retry timeout" true
        (elapsed_us < retry.Proto.Retry.timeout_us);
      check (Alcotest.float 1e-9) "retry budget untouched" 2.0
        (Proto.Retry.Budget.tokens budget))

let test_udp_silent_endpoint_backoff () =
  (* A silently dead endpoint — sockets bound but never answering, so no
     ICMP is generated — must still run the whole retransmission
     schedule and surface [Timeout].  The wall-clock wait brackets the
     schedule exactly — at least the fully-jittered minimum, at most the
     deterministic total (plus scheduling slack) — which fails both if
     wait_reply returns early (EINTR, spurious wakeups) and if a
     retransmission is skipped. *)
  let base_port = 48961 and queues = 4 in
  let silent =
    List.init queues (fun q ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + q));
        s)
  in
  let retry =
    { Proto.Retry.max_attempts = 3; timeout_us = 20_000.0; backoff = 2.0; cap_us = infinity }
  in
  let budget = Proto.Retry.Budget.create ~capacity:2.0 ~earn_per_call:0.0 () in
  let client =
    Runtime.Udp.Client.connect ~retry ~budget ~seed:9 ~base_port ~queues ()
  in
  Fun.protect
    ~finally:(fun () ->
      Runtime.Udp.Client.close client;
      List.iter Unix.close silent)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      (try
         Runtime.Udp.Client.put client "k" (Bytes.of_string "v");
         Alcotest.fail "put against a silent endpoint must time out"
       with Runtime.Udp.Client.Timeout -> ());
      let elapsed_us = 1.0e6 *. (Unix.gettimeofday () -. t0) in
      check bool "waited at least the jittered minimum" true
        (elapsed_us >= Proto.Retry.min_budget_us retry);
      check bool "waited at most the schedule + slack" true
        (elapsed_us <= Proto.Retry.total_budget_us retry +. 200_000.0);
      check int "no Overloaded replies involved" 0
        (Runtime.Udp.Client.sheds client);
      (* The two retransmissions drained the budget; the next call must
         fail fast instead of re-running the schedule. *)
      let t1 = Unix.gettimeofday () in
      (try
         Runtime.Udp.Client.put client "k" (Bytes.of_string "v");
         Alcotest.fail "second put must exhaust the retry budget"
       with Runtime.Udp.Client.Budget_exhausted -> ());
      let second_us = 1.0e6 *. (Unix.gettimeofday () -. t1) in
      check bool "fail-fast: one timeout, no retransmissions" true
        (second_us <= (2.0 *. retry.Proto.Retry.timeout_us) +. 200_000.0))

let () =
  Alcotest.run "runtime"
    [
      ( "udp",
        [
          Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "dead endpoint: Server_dead, budget intact"
            `Quick test_udp_dead_endpoint_fails_fast;
          Alcotest.test_case "silent endpoint: full backoff, then budget"
            `Quick test_udp_silent_endpoint_backoff;
          Alcotest.test_case "large value fragmentation" `Quick
            test_udp_large_value_fragmentation;
          Alcotest.test_case "many operations" `Slow test_udp_many_operations;
        ] );
      ( "server",
        [
          Alcotest.test_case "all requests answered" `Slow test_all_requests_answered;
          Alcotest.test_case "served counts conserve" `Slow test_served_counts_conserve;
          Alcotest.test_case "controller converges" `Slow test_controller_converges;
          Alcotest.test_case "keyhash mode" `Slow test_keyhash_mode;
          Alcotest.test_case "store consistent after run" `Slow
            test_store_consistent_after_run;
          Alcotest.test_case "concurrent clients" `Slow test_concurrent_clients;
          Alcotest.test_case "delete through scheduler" `Quick
            test_delete_through_scheduler;
          Alcotest.test_case "stop idempotent" `Quick test_stop_is_idempotent;
          Alcotest.test_case "submit after stop" `Quick test_submit_refused_after_stop;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
