(* Hedged-cluster tests: configuration validation, the copy-level
   telescoping identity across the mode x route x fault grid, seeded
   determinism (including across MINOS_JOBS for the experiment driver),
   the router's dead-replica contract, cancellation accounting for
   hedged and tied backups, retry-budget denial under crash failover,
   and the chaos SLO itself — a hedged cluster's p99 under kill-server
   stays near fault-free while the unhedged tail degrades by the
   failure-detector timeout. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_jobs n f =
  Minos.Par.set_jobs (Some n);
  Fun.protect ~finally:(fun () -> Minos.Par.set_jobs None) f

let workload = Workload.Spec.default
let dataset = Minos.Experiment.dataset_for workload

(* 2 shards x 1 mirror (4 servers), 40 ms of simulated time: big enough
   for the kill window, the detector and the recovery to all land inside
   the measured region, small enough to keep the whole suite quick. *)
let tiny ?(shards = 2) ?(mirrors = 1) ?(cores = 4) ?(sizeaware = true)
    ?(mode = Kvhedge.Config.Off) ?(route = Kvhedge.Config.Spread) ?detect_us ()
    =
  {
    Kvhedge.Config.default with
    Kvhedge.Config.shards;
    mirrors;
    cores;
    sizeaware;
    mode;
    route;
    detect_us;
    duration_us = 40_000.0;
    warmup_us = 10_000.0;
    epoch_us = 8_000.0;
    window_us = 8_000.0;
  }

(* Kill the mirror of shard 0 (server 2 in the k * shards + s layout)
   30 % into the measured window, recover it at 80 % — the same canned
   shape Minos.Hedge uses. *)
let kill ?(server = 2) ?(at_us = 19_000.0) ?(recover_us = 34_000.0) () =
  {
    Fault.Plan.name = "kill-server";
    events =
      [
        Fault.Plan.Kill_server { server; at_us };
        Fault.Plan.Recover_server { server; at_us = recover_us };
      ];
  }

let run ?plan ?(seed = 7) cfg =
  Kvhedge.Cluster.run cfg ~dataset ~offered_mops:2.0 ?plan ~seed ()

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_validate () =
  let ok c = check bool "valid" true (Result.is_ok (Kvhedge.Config.validate c)) in
  let bad c =
    check bool "invalid" true (Result.is_error (Kvhedge.Config.validate c))
  in
  ok Kvhedge.Config.default;
  ok (tiny ());
  bad { (tiny ()) with Kvhedge.Config.shards = 0 };
  bad { (tiny ()) with Kvhedge.Config.mirrors = -1 };
  bad { (tiny ()) with Kvhedge.Config.cores = 1 }
  (* size-aware needs a large and a small pool *);
  ok { (tiny ~sizeaware:false ()) with Kvhedge.Config.cores = 1 };
  bad { (tiny ()) with Kvhedge.Config.hedge_delay_us = 0.0 };
  bad { (tiny ()) with Kvhedge.Config.hedge_quantile = 0.0 };
  bad { (tiny ()) with Kvhedge.Config.hedge_quantile = 1.5 };
  bad { (tiny ()) with Kvhedge.Config.min_delay_samples = 0 };
  bad { (tiny ()) with Kvhedge.Config.detect_us = Some (-1.0) };
  bad { (tiny ()) with Kvhedge.Config.warmup_us = 40_000.0 };
  bad { (tiny ()) with Kvhedge.Config.epoch_us = 0.0 };
  bad { (tiny ()) with Kvhedge.Config.queue_capacity = Some 0 };
  bad { (tiny ()) with Kvhedge.Config.budget_capacity = -1.0 };
  check int "servers counts every replica" 4 (Kvhedge.Config.servers (tiny ()));
  check bool "unset detector scales with the measured window" true
    (Kvhedge.Config.detect_us (tiny ()) = 0.15 *. 30_000.0);
  check bool "set detector wins" true
    (Kvhedge.Config.detect_us (tiny ~detect_us:42.0 ()) = 42.0)

let test_names_round_trip () =
  List.iter
    (fun m ->
      check bool "mode round-trips" true
        (Kvhedge.Config.mode_of_name (Kvhedge.Config.mode_name m) = Some m))
    [ Kvhedge.Config.Off; Kvhedge.Config.Hedged; Kvhedge.Config.Tied ];
  List.iter
    (fun r ->
      check bool "route round-trips" true
        (Kvhedge.Config.route_of_name (Kvhedge.Config.route_name r) = Some r))
    [ Kvhedge.Config.Spread; Kvhedge.Config.P2c ];
  check bool "unknown mode" true (Kvhedge.Config.mode_of_name "nope" = None);
  check bool "unknown route" true (Kvhedge.Config.route_of_name "nope" = None)

(* ------------------------------------------------------------------ *)
(* Accounting: every copy resolves into exactly one telescoping leg *)

let test_telescoping_grid () =
  List.iter
    (fun sizeaware ->
      List.iter
        (fun mode ->
          List.iter
            (fun route ->
              List.iter
                (fun plan ->
                  let label =
                    Printf.sprintf "%s+%s+%s/%s"
                      (if sizeaware then "sizeaware" else "keyhash")
                      (Kvhedge.Config.mode_name mode)
                      (Kvhedge.Config.route_name route)
                      (match plan with None -> "none" | Some _ -> "kill")
                  in
                  let m = run ?plan (tiny ~sizeaware ~mode ~route ()) in
                  check bool (label ^ ": telescopes") true
                    (Kvhedge.Metrics.telescopes m);
                  check bool (label ^ ": requests account") true
                    (Kvhedge.Metrics.requests_account m);
                  check bool (label ^ ": served work") true
                    (m.Kvhedge.Metrics.served > 0);
                  match plan with
                  | None ->
                      check int (label ^ ": no kill") 0
                        m.Kvhedge.Metrics.server_killed
                  | Some _ ->
                      check int (label ^ ": one kill") 1
                        m.Kvhedge.Metrics.server_killed;
                      check int (label ^ ": one recover") 1
                        m.Kvhedge.Metrics.server_recovered;
                      check bool (label ^ ": the crash dropped copies") true
                        (m.Kvhedge.Metrics.net_dropped > 0))
                [ None; Some (kill ()) ])
            [ Kvhedge.Config.Spread; Kvhedge.Config.P2c ])
        [ Kvhedge.Config.Off; Kvhedge.Config.Hedged; Kvhedge.Config.Tied ])
    [ true; false ]

let test_determinism () =
  let cfg = tiny ~mode:Kvhedge.Config.Hedged ~route:Kvhedge.Config.P2c () in
  let a = run ~plan:(kill ()) cfg in
  let b = run ~plan:(kill ()) cfg in
  check bool "same (config, plan, seed): identical metrics" true
    (compare a b = 0);
  let c = run ~plan:(kill ()) ~seed:8 cfg in
  check bool "a different seed moves the run" true (compare a c <> 0)

(* ------------------------------------------------------------------ *)
(* Routing: a detected-dead replica is never picked *)

let test_router_avoids_dead_replica () =
  let cfg =
    tiny ~route:Kvhedge.Config.P2c ~detect_us:1_000.0 ()
  in
  let c =
    Kvhedge.Cluster.create cfg ~dataset ~offered_mops:2.0 ~plan:(kill ())
      ~seed:11 ()
  in
  let sim = Kvhedge.Cluster.sim c in
  check int "servers probe" 4 (Kvhedge.Cluster.servers c);
  Dsim.Sim.run sim ~until:25_000.0;
  (* past kill (19 ms) + detect (1 ms) *)
  check bool "killed server not alive" false
    (Kvhedge.Cluster.alive_snapshot c).(2);
  check bool "killed server not routable" false
    (Kvhedge.Cluster.routable_snapshot c).(2);
  for _ = 1 to 200 do
    check int "p2c only ever picks the live replica" 0
      (Kvhedge.Cluster.pick_replica c ~shard:0 ~exclude:(-1))
  done;
  check int "excluding the last survivor leaves nothing" (-1)
    (Kvhedge.Cluster.pick_replica c ~shard:0 ~exclude:0);
  Dsim.Sim.run sim ~until:36_000.0;
  (* past recover (34 ms) *)
  check bool "recovered server alive" true
    (Kvhedge.Cluster.alive_snapshot c).(2);
  check bool "recovered server routable" true
    (Kvhedge.Cluster.routable_snapshot c).(2);
  let saw = Array.make 4 false in
  for _ = 1 to 200 do
    let s = Kvhedge.Cluster.pick_replica c ~shard:0 ~exclude:(-1) in
    check bool "pick stays inside shard 0's replica set" true (s = 0 || s = 2);
    saw.(s) <- true
  done;
  check bool "both replicas are picked again" true (saw.(0) && saw.(2))

(* ------------------------------------------------------------------ *)
(* Cancellation: losers leave through cancelled / hedged_wasted *)

let test_hedged_cancellation () =
  (* A mid-distribution quantile makes the delay short, so plenty of
     hedges fire and plenty of losers must be reaped. *)
  let cfg =
    {
      (tiny ~mode:Kvhedge.Config.Hedged ()) with
      Kvhedge.Config.hedge_delay_us = 2.0;
      hedge_quantile = 0.5;
    }
  in
  let m = run cfg in
  check bool "hedges issued" true (m.Kvhedge.Metrics.hedges_issued > 0);
  check bool "losers reaped" true
    (m.Kvhedge.Metrics.cancelled + m.Kvhedge.Metrics.hedged_wasted > 0);
  check bool "delay re-estimated each epoch" true
    (m.Kvhedge.Metrics.hedge_delay_series <> []);
  check bool "final delay is positive" true
    (m.Kvhedge.Metrics.hedge_delay_final_us > 0.0);
  check bool "telescopes" true (Kvhedge.Metrics.telescopes m)

let test_tied_cancellation () =
  let m = run (tiny ~mode:Kvhedge.Config.Tied ()) in
  check bool "ties issued" true (m.Kvhedge.Metrics.ties_issued > 0);
  check bool "tied losers cancelled" true (m.Kvhedge.Metrics.cancelled > 0);
  check bool "telescopes" true (Kvhedge.Metrics.telescopes m)

(* ------------------------------------------------------------------ *)
(* Chaos SLO *)

let test_hedged_cuts_kill_tail () =
  let clean = run (tiny ()) in
  let unhedged = run ~plan:(kill ()) (tiny ()) in
  let hedged = run ~plan:(kill ()) (tiny ~mode:Kvhedge.Config.Hedged ()) in
  check bool "unhedged tail degrades by the detector timeout" true
    (unhedged.Kvhedge.Metrics.p99_us > 10.0 *. clean.Kvhedge.Metrics.p99_us);
  check bool "hedged tail stays near fault-free" true
    (hedged.Kvhedge.Metrics.p99_us < 3.0 *. clean.Kvhedge.Metrics.p99_us);
  check bool "hedged beats unhedged under the crash" true
    (hedged.Kvhedge.Metrics.p99_us < unhedged.Kvhedge.Metrics.p99_us)

let test_failover_budget () =
  let cfg = tiny ~detect_us:500.0 () in
  let granted = run ~plan:(kill ()) cfg in
  check bool "failovers granted" true (granted.Kvhedge.Metrics.failovers > 0);
  check int "no denials with a full bucket" 0
    granted.Kvhedge.Metrics.budget_exhausted;
  check bool "tokens spent" true (granted.Kvhedge.Metrics.budget_spent > 0.0);
  let starved =
    {
      cfg with
      Kvhedge.Config.budget_capacity = 0.0;
      budget_earn_per_request = 0.0;
    }
  in
  let m = run ~plan:(kill ()) starved in
  check int "no failovers without budget" 0 m.Kvhedge.Metrics.failovers;
  check bool "denials counted" true (m.Kvhedge.Metrics.budget_exhausted > 0);
  check bool "denied requests fail" true (m.Kvhedge.Metrics.failed > 0);
  check bool "telescopes" true (Kvhedge.Metrics.telescopes m)

(* ------------------------------------------------------------------ *)
(* Experiment driver: the nine-variant grid, jobs-invariant, audited *)

let test_experiment_grid () =
  let go () = Minos.Hedge.run ~config:(tiny ()) ~seed:3 ~offered_mops:2.0 () in
  let t1 = with_jobs 1 go in
  let t4 = with_jobs 4 go in
  check bool "byte-identical at any MINOS_JOBS" true (compare t1 t4 = 0);
  check int "nine variants" 9 (List.length t1.Minos.Hedge.entries);
  List.iter
    (fun (e : Minos.Hedge.entry) ->
      check bool (e.label ^ ": telescopes") true
        (Kvhedge.Metrics.telescopes e.metrics);
      check bool (e.label ^ ": requests account") true
        (Kvhedge.Metrics.requests_account e.metrics))
    t1.Minos.Hedge.entries;
  check bool "hedge tax priced" true (t1.Minos.Hedge.hedge_tax >= 0.0);
  check int "the canned crash kills the first mirror" t1.Minos.Hedge.shards
    t1.Minos.Hedge.killed_server;
  check bool "kill window inside the measured region" true
    (t1.Minos.Hedge.kill_at_us > 10_000.0
    && t1.Minos.Hedge.recover_at_us < 40_000.0
    && t1.Minos.Hedge.kill_at_us < t1.Minos.Hedge.recover_at_us);
  check bool "crash audit is key-lossless" true
    (Shardmgr.Protocol.ok t1.Minos.Hedge.audit);
  check bool "recovery resynced the mirror" true
    (t1.Minos.Hedge.audit.Shardmgr.Protocol.transferred > 0);
  check bool "tail-cutting needs a replica: mirrors=0 rejected" true
    (match Minos.Hedge.run ~config:(tiny ~mirrors:0 ()) ~offered_mops:1.0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "hedge"
    [
      ( "config",
        [
          Alcotest.test_case "validate" `Quick test_config_validate;
          Alcotest.test_case "names round-trip" `Quick test_names_round_trip;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "telescoping grid" `Quick test_telescoping_grid;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "routing",
        [
          Alcotest.test_case "dead replica never picked" `Quick
            test_router_avoids_dead_replica;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "hedged losers reaped" `Quick
            test_hedged_cancellation;
          Alcotest.test_case "tied losers cancelled" `Quick
            test_tied_cancellation;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "hedged cuts the kill tail" `Quick
            test_hedged_cuts_kill_tail;
          Alcotest.test_case "failover spends the retry budget" `Quick
            test_failover_budget;
        ] );
      ( "experiment",
        [ Alcotest.test_case "nine-variant grid" `Quick test_experiment_grid ] );
    ]
