(* Tests for the queueing library: analytic formulas (against textbook
   values) and the discrete-event models (against the analytic formulas —
   the strongest correctness check we have for the simulator core). *)

open Queueing

let check = Alcotest.check
let approx t = Alcotest.float t
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Analytic *)

let test_mm1_mean () =
  (* rho = 0.5, mu = 1: T = 1/(1-0.5) = 2 *)
  check (approx 1e-9) "mm1 mean" 2.0 (Analytic.mm1_mean_response ~lambda:0.5 ~mu:1.0);
  Alcotest.check_raises "unstable" (Invalid_argument "Analytic: unstable queue (lambda >= mu)")
    (fun () -> ignore (Analytic.mm1_mean_response ~lambda:2.0 ~mu:1.0))

let test_mm1_quantile () =
  (* p99 of exp(mu - lambda): -ln(0.01)/(mu-lambda) *)
  let v = Analytic.mm1_response_quantile ~lambda:0.5 ~mu:1.0 ~q:0.99 in
  check (approx 1e-6) "mm1 p99" (-.log 0.01 /. 0.5) v

let test_mg1_pollaczek_khinchine () =
  (* Deterministic service (M/D/1): E(S)=1, E(S^2)=1, rho=0.5:
     W = 0.5*1/(2*0.5) = 0.5 *)
  check (approx 1e-9) "md1 wait" 0.5 (Analytic.mg1_mean_wait ~lambda:0.5 ~es:1.0 ~es2:1.0);
  (* Exponential service (M/M/1): E(S^2) = 2/mu^2; W = rho/(mu - lambda) *)
  let w = Analytic.mg1_mean_wait ~lambda:0.5 ~es:1.0 ~es2:2.0 in
  check (approx 1e-9) "mm1 via pk" 1.0 w;
  check (approx 1e-9) "response = wait + service" 2.0
    (Analytic.mg1_mean_response ~lambda:0.5 ~es:1.0 ~es2:2.0)

let test_erlang_c_known_values () =
  (* Single server: Erlang C = rho. *)
  check (approx 1e-9) "n=1" 0.3 (Analytic.mmn_erlang_c ~n:1 ~offered:0.3);
  (* Textbook value: n=2, offered a=1 -> C = 1/3. *)
  check (approx 1e-9) "n=2 a=1" (1.0 /. 3.0) (Analytic.mmn_erlang_c ~n:2 ~offered:1.0);
  (* Erlang C decreases with more servers at the same per-server load. *)
  let c2 = Analytic.mmn_erlang_c ~n:2 ~offered:1.0 in
  let c8 = Analytic.mmn_erlang_c ~n:8 ~offered:4.0 in
  check bool "pooling helps" true (c8 < c2)

let test_mmn_mean_wait () =
  (* n=1 reduces to M/M/1: W = rho/(mu - lambda). *)
  let w = Analytic.mmn_mean_wait ~n:1 ~lambda:0.5 ~mu:1.0 in
  check (approx 1e-9) "n=1 wait" 1.0 w

let test_bimodal_moments () =
  let es, es2 = Analytic.bimodal_moments ~p_large:0.00125 ~small:1.0 ~large:100.0 in
  check (approx 1e-9) "E(S)" (0.99875 +. 0.125) es;
  check (approx 1e-6) "E(S2)" (0.99875 +. 12.5) es2

(* ------------------------------------------------------------------ *)
(* Models vs analytic *)

let run_model ?(requests = 400_000) discipline ~cores ~load ~p_large ~k ~seed =
  Models.run discipline
    { Models.cores; load; p_large; k; requests; warmup_fraction = 0.1; seed }

(* Single core, no large requests: M/D/1.  The simulated mean response
   must match Pollaczek-Khinchine within a few percent. *)
let test_md1_mean_vs_pk () =
  List.iter
    (fun load ->
      let r = run_model Models.Per_core_queues ~cores:1 ~load ~p_large:0.0 ~k:1.0 ~seed:3 in
      let expected = Analytic.mg1_mean_response ~lambda:load ~es:1.0 ~es2:1.0 in
      let err = abs_float (r.Models.mean -. expected) /. expected in
      if err > 0.05 then
        Alcotest.failf "load %.1f: mean %.3f vs PK %.3f (%.1f%% off)" load r.Models.mean
          expected (100.0 *. err))
    [ 0.3; 0.5; 0.7 ]

(* Single core, bimodal service: M/G/1 with the paper's service mix. *)
let test_mg1_bimodal_vs_pk () =
  let p_large = 0.00125 and k = 100.0 in
  let es, es2 = Analytic.bimodal_moments ~p_large ~small:1.0 ~large:k in
  List.iter
    (fun load ->
      let lambda = load in
      (* load is normalized to small-only capacity; for 1 core that's
         requests per time unit. *)
      let r = run_model ~requests:800_000 Models.Per_core_queues ~cores:1 ~load ~p_large ~k ~seed:5 in
      let expected = Analytic.mg1_mean_response ~lambda ~es ~es2 in
      let err = abs_float (r.Models.mean -. expected) /. expected in
      if err > 0.10 then
        Alcotest.failf "load %.2f: mean %.2f vs PK %.2f (%.1f%% off)" load r.Models.mean
          expected (100.0 *. err))
    [ 0.3; 0.5 ]

(* The Figure 2 qualitative claims. *)
let test_fig2_ordering_at_high_load () =
  let cfg d = run_model d ~cores:8 ~load:0.5 ~p_large:0.00125 ~k:1000.0 ~seed:7 in
  let per_core = cfg Models.Per_core_queues in
  let single = cfg Models.Single_queue in
  let steal = cfg Models.Work_stealing in
  (* Late binding and stealing beat early binding on p99. *)
  check bool "single < per-core p99" true (single.Models.p99 < per_core.Models.p99);
  check bool "stealing < per-core p99" true (steal.Models.p99 < per_core.Models.p99)

let test_fig2_k1_baseline_flat () =
  (* With K=1 the workload is homogeneous: p99 stays within a small
     multiple of the service time at moderate load. *)
  let r = run_model Models.Per_core_queues ~cores:8 ~load:0.5 ~p_large:0.00125 ~k:1.0 ~seed:9 in
  check bool "modest p99" true (r.Models.p99 < 10.0)

let test_fig2_large_k_hurts_per_core () =
  (* Even at 10% load, K=1000 inflates nxM/G/1's p99 by >= an order of
     magnitude over K=1 — the paper's headline motivation. *)
  let k1 = run_model Models.Per_core_queues ~cores:8 ~load:0.1 ~p_large:0.00125 ~k:1.0 ~seed:11 in
  let k1000 =
    run_model Models.Per_core_queues ~cores:8 ~load:0.1 ~p_large:0.00125 ~k:1000.0 ~seed:11
  in
  check bool "order of magnitude" true (k1000.Models.p99 > 10.0 *. k1.Models.p99)

let test_model_throughput_matches_load () =
  let r = run_model Models.Single_queue ~cores:8 ~load:0.6 ~p_large:0.0 ~k:1.0 ~seed:13 in
  if abs_float (r.Models.throughput -. 0.6) > 0.05 then
    Alcotest.failf "throughput %.3f vs offered 0.6" r.Models.throughput

let test_model_completes_all () =
  let cfg =
    { Models.default_config with Models.requests = 50_000; load = 0.4; seed = 15 }
  in
  let r = Models.run Models.Work_stealing cfg in
  (* 10% warmup excluded. *)
  check Alcotest.int "completed" 45_000 r.Models.completed

let test_model_validation () =
  Alcotest.check_raises "no cores" (Invalid_argument "Models.run: need at least one core")
    (fun () ->
      ignore (Models.run Models.Single_queue { Models.default_config with Models.cores = 0 }));
  Alcotest.check_raises "no load" (Invalid_argument "Models.run: load must be > 0")
    (fun () ->
      ignore (Models.run Models.Single_queue { Models.default_config with Models.load = 0.0 }))

let test_discipline_names () =
  check Alcotest.string "names" "nxM/G/1" (Models.discipline_name Models.Per_core_queues);
  check Alcotest.string "names" "M/G/n" (Models.discipline_name Models.Single_queue);
  check Alcotest.string "names" "nxM/G/1+WS" (Models.discipline_name Models.Work_stealing)

let () =
  Alcotest.run "queueing"
    [
      ( "analytic",
        [
          Alcotest.test_case "mm1 mean" `Quick test_mm1_mean;
          Alcotest.test_case "mm1 quantile" `Quick test_mm1_quantile;
          Alcotest.test_case "pollaczek-khinchine" `Quick test_mg1_pollaczek_khinchine;
          Alcotest.test_case "erlang c" `Quick test_erlang_c_known_values;
          Alcotest.test_case "mmn wait" `Quick test_mmn_mean_wait;
          Alcotest.test_case "bimodal moments" `Quick test_bimodal_moments;
        ] );
      ( "models",
        [
          Alcotest.test_case "M/D/1 vs PK" `Slow test_md1_mean_vs_pk;
          Alcotest.test_case "bimodal M/G/1 vs PK" `Slow test_mg1_bimodal_vs_pk;
          Alcotest.test_case "fig2 ordering" `Slow test_fig2_ordering_at_high_load;
          Alcotest.test_case "fig2 K=1 flat" `Quick test_fig2_k1_baseline_flat;
          Alcotest.test_case "fig2 K=1000 hurts" `Quick test_fig2_large_k_hurts_per_core;
          Alcotest.test_case "throughput = load" `Quick test_model_throughput_matches_load;
          Alcotest.test_case "completes all" `Quick test_model_completes_all;
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "names" `Quick test_discipline_names;
        ] );
    ]
