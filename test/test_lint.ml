(* Tests for the hot-path lint: each rule fires on a seeded violation,
   scoping (hot vs everywhere) is honoured, the allowlist suppresses and
   reports stale entries, and unparseable input is itself a finding. *)

open Lint

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let with_source contents f =
  let path = Filename.temp_file "minos_lint_test" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc contents);
      f path)

let rules_of ~hot contents =
  with_source contents (fun path ->
      Lint_core.lint_file ~hot path |> List.map (fun v -> v.Lint_core.rule))

let test_hot_rules () =
  let cases =
    [
      ("let f a b = compare a b", [ "polymorphic-compare" ]);
      ("let f a b = Stdlib.compare a b", [ "polymorphic-compare" ]);
      ("let f x = Hashtbl.hash x", [ "polymorphic-hash" ]);
      ("let f x = Printf.sprintf \"%d\" x", [ "printf-in-hot-path" ]);
      ("let f x = Format.asprintf \"%d\" x", [ "printf-in-hot-path" ]);
      ("let f () = Random.int 10", [ "global-random" ]);
      ("let f st = Random.State.int st 10", []);
      ("let f () = Unix.gettimeofday ()", [ "wallclock" ]);
      ("let f () = Sys.time ()", [ "wallclock" ]);
      ("let f x = Obj.magic x", [ "obj-magic" ]);
      ("let f x = Obj.repr x", [ "obj-primitive" ]);
      ("let f a b = Int.compare a b", []);
      ("let f a b = String.compare a b", []);
    ]
  in
  List.iter
    (fun (src, expected) ->
      check (Alcotest.list Alcotest.string) src expected (rules_of ~hot:true src))
    cases

let test_cold_scope () =
  (* Outside hot paths only the Obj rules apply. *)
  check (Alcotest.list Alcotest.string) "printf fine when cold" []
    (rules_of ~hot:false "let f x = Printf.sprintf \"%d\" x");
  check (Alcotest.list Alcotest.string) "compare fine when cold" []
    (rules_of ~hot:false "let f a b = compare a b");
  check (Alcotest.list Alcotest.string) "Obj.magic banned everywhere"
    [ "obj-magic" ]
    (rules_of ~hot:false "let f x = Obj.magic x")

let test_parse_error () =
  check (Alcotest.list Alcotest.string) "unparseable file" [ "parse-error" ]
    (rules_of ~hot:true "let let let")

let test_is_hot_path () =
  check bool "dsim is hot" true (Lint_core.is_hot_path "lib/dsim/sim.ml");
  check bool "netsim is hot" true (Lint_core.is_hot_path "lib/netsim/ring.ml");
  check bool "absolute path classifies" true
    (Lint_core.is_hot_path "/root/repo/lib/kv/store.ml");
  check bool "stats is hot" true (Lint_core.is_hot_path "lib/stats/quantile.ml");
  check bool "obs is hot" true (Lint_core.is_hot_path "lib/obs/recorder.ml");
  check bool "fault is hot" true (Lint_core.is_hot_path "lib/fault/inject.ml");
  check bool "check is cold" false
    (Lint_core.is_hot_path "lib/check/trace_sched.ml")

let test_allowlist () =
  with_source "let f x = Obj.magic x\nlet g () = Random.int 3\n" (fun path ->
      (* Temp files land outside lib/, so classify as hot explicitly via
         lint_file and drive the report plumbing through lint_tree on the
         single file: is_hot_path says cold, so only Obj fires there. *)
      let base = Filename.basename path in
      let allow =
        [
          { Lint_core.allow_path = base; allow_ident = "Obj.magic" };
          { Lint_core.allow_path = "nonexistent.ml"; allow_ident = "Obj.magic" };
        ]
      in
      let report = Lint_core.lint_tree ~allow [ path ] in
      check int "violation suppressed" 1 (List.length report.suppressed);
      check int "no unsuppressed violations" 0 (List.length report.violations);
      check int "stale entry reported" 1 (List.length report.stale);
      check bool "stale entry fails the run" false (Lint_core.report_clean report));
  (* Same allowlist minus the stale entry: clean. *)
  with_source "let f x = Obj.magic x\n" (fun path ->
      let allow =
        [ { Lint_core.allow_path = Filename.basename path; allow_ident = "Obj.magic" } ]
      in
      check bool "clean with exact allowlist" true
        (Lint_core.report_clean (Lint_core.lint_tree ~allow [ path ])))

let test_allowlist_parsing () =
  let path = Filename.temp_file "minos_lint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            "# comment\n\nlib/a.ml Printf.sprintf  # trailing comment\n\tlib/b.ml\tObj.magic\n");
      let entries = Lint_core.parse_allowlist path in
      check int "two entries" 2 (List.length entries);
      let e = List.nth entries 0 in
      check Alcotest.string "path" "lib/a.ml" e.Lint_core.allow_path;
      check Alcotest.string "ident" "Printf.sprintf" e.Lint_core.allow_ident)

let test_tree_walk () =
  (* End-to-end over a synthetic tree: hot-path classification comes from
     the directory, the walk recurses, and the allowlist keys on the
     path suffix.  (The real repo configuration is enforced by the @lint
     alias, which CI builds.) *)
  let root = Filename.temp_file "minos_lint_tree" "" in
  Sys.remove root;
  let mkdir = Unix.mkdir in
  mkdir root 0o755;
  mkdir (Filename.concat root "lib") 0o755;
  mkdir (Filename.concat root "lib/dsim") 0o755;
  mkdir (Filename.concat root "lib/check") 0o755;
  let write rel contents =
    Out_channel.with_open_text (Filename.concat root rel) (fun oc ->
        Out_channel.output_string oc contents)
  in
  write "lib/dsim/engine.ml" "let f x = Printf.sprintf \"%d\" x\n";
  write "lib/check/report.ml" "let f x = Printf.sprintf \"%d\" x\n";
  Fun.protect
    ~finally:(fun () ->
      Sys.remove (Filename.concat root "lib/dsim/engine.ml");
      Sys.remove (Filename.concat root "lib/check/report.ml");
      Unix.rmdir (Filename.concat root "lib/dsim");
      Unix.rmdir (Filename.concat root "lib/check");
      Unix.rmdir (Filename.concat root "lib");
      Unix.rmdir root)
    (fun () ->
      let report = Lint_core.lint_tree ~allow:[] [ root ] in
      check int "hot file flagged, cold file not" 1
        (List.length report.violations);
      let v = List.hd report.violations in
      check Alcotest.string "rule" "printf-in-hot-path" v.Lint_core.rule;
      let allow =
        [
          {
            Lint_core.allow_path = "lib/dsim/engine.ml";
            allow_ident = "Printf.sprintf";
          };
        ]
      in
      let report = Lint_core.lint_tree ~allow [ root ] in
      check bool "suffix-keyed allowlist suppresses" true
        (Lint_core.report_clean report))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "hot-path rules" `Quick test_hot_rules;
          Alcotest.test_case "cold scope" `Quick test_cold_scope;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "hot path classification" `Quick test_is_hot_path;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppression + staleness" `Quick test_allowlist;
          Alcotest.test_case "file parsing" `Quick test_allowlist_parsing;
        ] );
      ("tree", [ Alcotest.test_case "walk + classification" `Quick test_tree_walk ]);
    ]
