(* Tests for the scenario engine: the versioned trace format (timed
   round-trips and the decode-error contract), TTL expiry (lazy reads vs
   the background sweep must agree), the eviction conservation identity,
   SCAN against a sorted reference, and the scenario suite's determinism
   contract (byte-identical at any MINOS_JOBS). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let tmp_file name = Filename.concat (Filename.get_temp_dir_name ()) name

(* A small dataset so the residency/store tests stay fast. *)
let small_spec =
  { Workload.Spec.default with Workload.Spec.n_keys = 2_000; n_large_keys = 16 }

let small_dataset = Workload.Dataset.create small_spec

(* ------------------------------------------------------------------ *)
(* Trace format *)

let sample_requests n =
  let gen =
    Workload.Generator.create ~seed:7 ~scan_ratio:0.1 ~scan_len:8 small_dataset
  in
  Array.init n (fun _ -> Workload.Generator.next gen)

let test_trace_timed_roundtrip () =
  let reqs = sample_requests 257 in
  let ts = Array.init 257 (fun i -> 3.5 *. float_of_int i) in
  let trace = Workload.Trace.of_timed reqs ts in
  let path = tmp_file "minos_trace_v2.bin" in
  Workload.Trace.save path trace;
  let back = Workload.Trace.load path in
  Sys.remove path;
  check bool "timed" true (Workload.Trace.timed back);
  check int "length" 257 (Workload.Trace.length back);
  check bool "requests equal" true (Workload.Trace.requests back = reqs);
  check bool "timestamps equal" true (Workload.Trace.timestamps back = ts)

let test_trace_untimed_stays_v1 () =
  (* A scan-free untimed capture must keep the original v1 format so old
     files and old readers stay compatible. *)
  let gen = Workload.Generator.create ~seed:9 small_dataset in
  let trace = Workload.Trace.capture gen ~n:100 in
  let path = tmp_file "minos_trace_v1.bin" in
  Workload.Trace.save path trace;
  let ic = open_in_bin path in
  let header = really_input_string ic 6 in
  close_in ic;
  let back = Workload.Trace.load path in
  Sys.remove path;
  check string "v1 header" "MNTR1\n" header;
  check bool "untimed" false (Workload.Trace.timed back);
  check bool "requests equal" true
    (Workload.Trace.requests back = Workload.Trace.requests trace)

let expect_load_failure name path =
  (match Workload.Trace.load path with
  | _ -> Alcotest.failf "%s: load should have raised" name
  | exception Failure _ -> ());
  Sys.remove path

let write_valid_trace path =
  let gen = Workload.Generator.create ~seed:11 small_dataset in
  Workload.Trace.save path (Workload.Trace.capture gen ~n:32)

let test_trace_rejects_garbage () =
  (* Trailing bytes after the declared records. *)
  let path = tmp_file "minos_trace_garbage.bin" in
  write_valid_trace path;
  let oc = open_out_gen [ Open_append; Open_binary ] 0o600 path in
  output_string oc "xx";
  close_out oc;
  expect_load_failure "trailing garbage" path;
  (* Truncation. *)
  let path = tmp_file "minos_trace_trunc.bin" in
  write_valid_trace path;
  let len = (Unix.stat path).Unix.st_size in
  let ic = open_in_bin path in
  let data = really_input_string ic (len - 5) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc;
  expect_load_failure "truncated" path;
  (* Item-size field overflow: corrupt the first record's size field
     (file offset 6-byte header + 8-byte count + op + is_large + key_id). *)
  let path = tmp_file "minos_trace_overflow.bin" in
  write_valid_trace path;
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
  ignore (Unix.lseek fd 24 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff\xff\xff\x7f") 0 4);
  Unix.close fd;
  expect_load_failure "size overflow" path

let test_trace_rejects_future_version () =
  (* Forward compatibility: a version we do not know is an explicit
     decode error, never a silent misparse. *)
  let path = tmp_file "minos_trace_v9.bin" in
  write_valid_trace path;
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
  ignore (Unix.lseek fd 4 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "9") 0 1);
  Unix.close fd;
  expect_load_failure "future version" path;
  let path = tmp_file "minos_trace_magic.bin" in
  write_valid_trace path;
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
  ignore (Unix.write fd (Bytes.of_string "XXXX") 0 4);
  Unix.close fd;
  expect_load_failure "bad magic" path

(* ------------------------------------------------------------------ *)
(* TTL expiry: lazy reads and the background sweep must agree. *)

let ttl_store () =
  Kvstore.Store.create ~partition_bits:2 ~bucket_bits:8
    ~value_arena_bytes:(1 lsl 22) ()

let ttl_keys = Array.init 200 Workload.Dataset.key_name

let populate_ttl store =
  Array.iteri
    (fun i key ->
      (* Even ids lapse at t=100, odd ids live until t=1000. *)
      let expires_at = if i mod 2 = 0 then 100.0 else 1000.0 in
      Kvstore.Store.put ~expires_at store ~guard:`Lock key (Bytes.create 32))
    ttl_keys

let test_ttl_lazy_vs_sweep () =
  let lazy_store = ttl_store () and sweep_store = ttl_store () in
  populate_ttl lazy_store;
  populate_ttl sweep_store;
  let now = 500.0 in
  (* Sweep store: one background pass reclaims every lapsed item. *)
  let swept = Kvstore.Store.expire_sweep sweep_store ~now in
  (* Lazy store: read every key; a lazy miss reclaims via [expire]. *)
  let lazy_reclaimed = ref 0 in
  Array.iter
    (fun key ->
      match Kvstore.Store.get ~now lazy_store key with
      | Some _ -> ()
      | None ->
          if Kvstore.Store.expire lazy_store ~guard:`Lock ~now key then
            incr lazy_reclaimed)
    ttl_keys;
  check int "same reclaim count" swept !lazy_reclaimed;
  check int "expired stat agrees"
    (Kvstore.Store.stats sweep_store).Kvstore.Store.expired
    (Kvstore.Store.stats lazy_store).Kvstore.Store.expired;
  (* Both stores now hold exactly the same (odd-id) survivors. *)
  Array.iteri
    (fun i key ->
      let expect = i mod 2 = 1 in
      check bool "lazy survivor" expect (Kvstore.Store.mem ~now lazy_store key);
      check bool "sweep survivor" expect (Kvstore.Store.mem ~now sweep_store key))
    ttl_keys

let test_residency_lazy_vs_sweep () =
  (* The model-side residency tracker: sweeping early must reclaim the
     same keys a lazy read pass would, with identical expiry counts. *)
  let make () =
    let r = Kvserver.Residency.create ~ttl_us:100.0 small_dataset in
    ignore (Kvserver.Residency.populate r ~now:0.0);
    r
  in
  let lazy_r = make () and sweep_r = make () in
  let n = Workload.Dataset.n_keys small_dataset in
  let live = ref 0 in
  for id = 0 to n - 1 do
    if Kvserver.Residency.on_get lazy_r ~now:250.0 id then incr live
  done;
  let reclaimed = ref 0 in
  while
    let got = Kvserver.Residency.sweep_step sweep_r ~now:250.0 ~chunk:64 in
    reclaimed := !reclaimed + got;
    Kvserver.Residency.resident sweep_r > 0
  do
    ()
  done;
  check int "everything lapsed" 0 !live;
  check int "sweep reclaims the same keys" n !reclaimed;
  check int "expired counts agree"
    (Kvserver.Residency.expired_keys lazy_r)
    (Kvserver.Residency.expired_keys sweep_r);
  check int "lazy misses recorded" n (Kvserver.Residency.expired_misses lazy_r)

(* ------------------------------------------------------------------ *)
(* Eviction conservation *)

let test_eviction_conservation () =
  let budget = Workload.Dataset.total_value_bytes small_dataset / 4 in
  let r =
    Kvserver.Residency.create ~ttl_us:5_000.0 ~budget_bytes:budget small_dataset
  in
  let populated = Kvserver.Residency.populate r ~now:0.0 in
  check bool "dataset larger than memory" true
    (populated < Workload.Dataset.n_keys small_dataset);
  let rng = Dsim.Rng.create 42 in
  let n = Workload.Dataset.n_keys small_dataset in
  for i = 1 to 20_000 do
    let now = float_of_int i in
    let id = Dsim.Rng.int rng n in
    if Dsim.Rng.int rng 100 < 30 then Kvserver.Residency.on_put r ~now rng id
    else ignore (Kvserver.Residency.on_get r ~now id);
    if i mod 512 = 0 then ignore (Kvserver.Residency.sweep_step r ~now ~chunk:32)
  done;
  check bool "memory within budget" true
    (Kvserver.Residency.mem_used r <= Kvserver.Residency.budget_bytes r);
  check bool "eviction happened" true (Kvserver.Residency.evicted_keys r > 0);
  check bool "expiry happened" true (Kvserver.Residency.expired_keys r > 0);
  (* The conservation identity: every insertion is still resident or was
     reclaimed by exactly one of the two legs. *)
  check int "inserts = resident + evicted + expired"
    (Kvserver.Residency.inserts r)
    (Kvserver.Residency.resident r
    + Kvserver.Residency.evicted_keys r
    + Kvserver.Residency.expired_keys r)

(* ------------------------------------------------------------------ *)
(* SCAN vs a sorted reference *)

let test_scan_matches_sorted_reference () =
  let store = ttl_store () in
  Kvstore.Store.ensure_ordered store;
  (* A scattered subset of ids, inserted in shuffled order. *)
  let rng = Dsim.Rng.create 5 in
  let ids = Array.init 300 (fun _ -> Dsim.Rng.int rng 100_000) in
  Array.iter
    (fun id ->
      Kvstore.Store.put store ~guard:`Lock (Workload.Dataset.key_name id)
        (Bytes.create ((id mod 50) + 1)))
    ids;
  let sorted =
    List.sort_uniq compare (Array.to_list (Array.map Workload.Dataset.key_name ids))
  in
  let start = Workload.Dataset.key_name 30_000 in
  let expect =
    List.filteri (fun i _ -> i < 40) (List.filter (fun k -> k >= start) sorted)
  in
  let got = ref [] in
  let visited =
    Kvstore.Store.scan store ~start ~count:40 (fun key size ->
        check int "scan reports stored size" ((int_of_string ("0x" ^ String.sub key 1 8) mod 50) + 1) size;
        got := key :: !got)
  in
  check int "visited count" (List.length expect) visited;
  check bool "keys in ascending order" true (List.rev !got = expect);
  (* Deleting a key mid-range removes it from subsequent scans. *)
  match expect with
  | [] | [ _ ] -> Alcotest.fail "reference range unexpectedly small"
  | _ :: victim :: _ ->
      ignore (Kvstore.Store.delete store ~guard:`Lock victim);
      let got' = ref [] in
      ignore
        (Kvstore.Store.scan store ~start ~count:(List.length expect - 1)
           (fun key _ -> got' := key :: !got'));
      check bool "deleted key skipped" true
        (not (List.mem victim (List.rev !got')))

(* ------------------------------------------------------------------ *)
(* Scenario suite determinism *)

let with_jobs n f =
  Minos.Par.set_jobs (Some n);
  Fun.protect ~finally:(fun () -> Minos.Par.set_jobs None) f

let quick_cfg () = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale

let test_scenarios_jobs_identical () =
  let names = [ "ttl-churn"; "scan-heavy" ] in
  let run jobs =
    with_jobs jobs (fun () ->
        Minos.Scenarios.to_json
          (Minos.Scenarios.run ~cfg:(quick_cfg ()) ~seed:3 ~names ()))
  in
  let sequential = run 1 in
  check string "MINOS_JOBS=4 byte-identical" sequential (run 4);
  check string "rerun byte-identical" sequential (run 1)

let test_scenarios_telescope () =
  (* The larger-than-memory scenario must complete with the extended
     loss-accounting identity exact, and actually exercise the new legs. *)
  let t =
    Minos.Scenarios.run ~cfg:(quick_cfg ()) ~seed:1
      ~names:[ "cold-tier"; "diurnal"; "bursts" ] ()
  in
  List.iter
    (fun (r : Minos.Scenarios.row) ->
      check bool
        (Printf.sprintf "%s/%s telescopes" r.Minos.Scenarios.scenario
           r.Minos.Scenarios.design)
        true r.Minos.Scenarios.telescopes)
    t.Minos.Scenarios.rows;
  let cold =
    List.filter
      (fun (r : Minos.Scenarios.row) -> r.Minos.Scenarios.scenario = "cold-tier")
      t.Minos.Scenarios.rows
  in
  check bool "cold-tier ran" true (cold <> []);
  List.iter
    (fun (r : Minos.Scenarios.row) ->
      let m = r.Minos.Scenarios.metrics in
      check bool "cold-tier misses" true (m.Kvserver.Metrics.expired_misses > 0);
      check bool "cold-tier evicts" true (m.Kvserver.Metrics.evicted_keys > 0))
    cold

let test_timed_trace_replay_deterministic () =
  (* A timed capture replayed through the engine must be reproducible,
     and must go down the recorded-pacing path (no Poisson draws). *)
  let sc =
    match Workload.Scenario.parse "bursts" with
    | Ok sc -> sc
    | Error e -> Alcotest.fail e
  in
  let dataset = Minos.Experiment.dataset_for sc.Workload.Scenario.spec in
  let trace =
    Workload.Scenario.capture ~seed:13 sc dataset ~rate_mops:2.0 ~n:20_000
  in
  check bool "capture is timed" true (Workload.Trace.timed trace);
  let run () =
    Minos.Experiment.run_trace ~cfg:(quick_cfg ()) ~seed:2 Kvserver.Design.minos
      trace ~spec:sc.Workload.Scenario.spec ~offered_mops:2.0
  in
  let a = run () and b = run () in
  check bool "identical metrics" true (compare a b = 0);
  check bool "served requests" true (a.Kvserver.Metrics.served_total > 0)

let () =
  Alcotest.run "scenarios"
    [
      ( "trace",
        [
          Alcotest.test_case "timed round-trip" `Quick test_trace_timed_roundtrip;
          Alcotest.test_case "untimed stays v1" `Quick test_trace_untimed_stays_v1;
          Alcotest.test_case "rejects corruption" `Quick test_trace_rejects_garbage;
          Alcotest.test_case "rejects future versions" `Quick
            test_trace_rejects_future_version;
        ] );
      ( "ttl",
        [
          Alcotest.test_case "store lazy vs sweep" `Quick test_ttl_lazy_vs_sweep;
          Alcotest.test_case "residency lazy vs sweep" `Quick
            test_residency_lazy_vs_sweep;
        ] );
      ( "eviction",
        [ Alcotest.test_case "conservation" `Quick test_eviction_conservation ] );
      ( "scan",
        [
          Alcotest.test_case "matches sorted reference" `Quick
            test_scan_matches_sorted_reference;
        ] );
      ( "suite",
        [
          Alcotest.test_case "jobs byte-identical" `Quick
            test_scenarios_jobs_identical;
          Alcotest.test_case "telescoping + cold tier" `Quick
            test_scenarios_telescope;
          Alcotest.test_case "timed replay deterministic" `Quick
            test_timed_trace_replay_deterministic;
        ] );
    ]
