(* Shardmgr tests: plan parsing and validation, the compiled routing
   table's invariants, the manager's hysteresis, the key-conservation
   protocol audit, and miniature end-to-end reshard runs pinning the
   determinism contract — a no-op plan is byte-identical to the static
   cluster run, and mid-run add/remove preserves exact loss accounting
   with zero lost/duplicated keys, at any MINOS_JOBS. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_jobs n f =
  Minos.Par.set_jobs (Some n);
  Fun.protect ~finally:(fun () -> Minos.Par.set_jobs None) f

let scale = Minos.Experiment.quick_scale

let cfg =
  {
    (Minos.Experiment.config_of_scale scale) with
    Kvserver.Config.window_us = Some scale.Minos.Experiment.window_us;
  }

let workload = Workload.Spec.default
let dataset () = Minos.Experiment.dataset_for workload

let canned name =
  Option.get
    (Shardmgr.Plan.canned name ~warmup_us:cfg.Kvserver.Config.warmup_us
       ~duration_us:cfg.Kvserver.Config.duration_us)

let compile ?(servers = 2) ?(offered = 4.0) ?(seed = 3) plan =
  Shardmgr.Table.compile ~seed ~servers ~workload ~dataset:(dataset ())
    ~duration_us:cfg.Kvserver.Config.duration_us ~offered_mops:offered plan

(* ------------------------------------------------------------------ *)
(* Plan *)

let test_plan_round_trip () =
  List.iter
    (fun name ->
      let p = canned name in
      check bool (name ^ " validates") true (Shardmgr.Plan.validate p = Ok ());
      match Shardmgr.Plan.of_string (Shardmgr.Plan.to_string p) with
      | Error e -> Alcotest.failf "%s does not re-parse: %s" name e
      | Ok p' ->
          check bool (name ^ " round-trips") true (compare p p' = 0))
    Shardmgr.Plan.canned_names

let test_plan_rejects_overlapping_windows () =
  let p =
    {
      Shardmgr.Plan.name = "bad";
      events =
        [
          Shardmgr.Plan.Add_server
            { at_us = 1000.0; drain_us = 500.0; dual_us = 2000.0 };
          Shardmgr.Plan.Add_server
            { at_us = 2000.0; drain_us = 500.0; dual_us = 2000.0 };
        ];
    }
  in
  check bool "overlap rejected" true
    (Result.is_error (Shardmgr.Plan.validate p))

let test_plan_parse_errors () =
  List.iter
    (fun line ->
      match Shardmgr.Plan.of_string line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [
      "frobnicate at=10";
      "add-server at=-5";
      "add-server at=nope";
      "remove-server at=10";
      (* missing server= *)
      "add-replica at=10";
      (* missing shard= *)
    ]

(* ------------------------------------------------------------------ *)
(* Table *)

let test_compile_rejects_impossible_steps () =
  let expect plan =
    match compile plan with
    | _ -> Alcotest.fail "impossible plan compiled"
    | exception Invalid_argument _ -> ()
  in
  (* removing a non-member *)
  expect
    {
      Shardmgr.Plan.name = "bad";
      events =
        [
          Shardmgr.Plan.Remove_server
            { server = 5; at_us = 50_000.0; drain_us = 500.0; dual_us = 2000.0 };
        ];
    };
  (* dropping a replica that does not exist *)
  expect
    {
      Shardmgr.Plan.name = "bad";
      events = [ Shardmgr.Plan.Drop_replica { shard = 0; at_us = 50_000.0 } ];
    };
  (* migration window past the run's end *)
  expect
    {
      Shardmgr.Plan.name = "bad";
      events =
        [
          Shardmgr.Plan.Add_server
            {
              at_us = cfg.Kvserver.Config.duration_us -. 1000.0;
              drain_us = 500.0;
              dual_us = 2000.0;
            };
        ];
    }

let test_table_routing_invariants () =
  let table = compile (canned "add-remove") in
  let n = Shardmgr.Table.n_servers table in
  check int "add allocates one fresh id" 3 n;
  let epochs = Shardmgr.Table.epoch_count table in
  check bool "several epochs" true (epochs > 4);
  for e = 0 to epochs - 1 do
    let k = ref 1 in
    while !k < 1_000_000 do
      let tgt = Shardmgr.Table.read_target table ~epoch:e !k in
      let wt = Shardmgr.Table.write_targets table ~epoch:e !k in
      check bool "write set non-empty" true (wt <> []);
      check bool "read target is a write target" true (List.mem tgt wt);
      let fb = Shardmgr.Table.read_fallback table ~epoch:e !k in
      check bool "fallback in range" true (fb >= 0 && fb < n);
      k := (!k * 7) + 13
    done
  done;
  (* routes_to at an epoch's start time agrees with the offline views *)
  let k = 12_345 in
  for e = 0 to epochs - 1 do
    let now = Shardmgr.Table.epoch_start table e in
    check int "epoch_at inverts epoch_start" e
      (Shardmgr.Table.epoch_at table ~now);
    let wt = Shardmgr.Table.write_targets table ~epoch:e k in
    for s = 0 to n - 1 do
      check bool "put routing agrees" (List.mem s wt)
        (Shardmgr.Table.routes_to table ~now ~get:false ~key:k s);
      check bool "get routing agrees"
        (s = Shardmgr.Table.read_target table ~epoch:e k)
        (Shardmgr.Table.routes_to table ~now ~get:true ~key:k s)
    done
  done

let test_table_rates_follow_membership () =
  let table = compile (canned "add-remove") in
  (* server 2 (the fresh id) has rate 0 before its drain starts and
     positive traffic after its cutovers; server 1 drops to 0 after its
     own migration ends. *)
  let first = 0 and last = Shardmgr.Table.epoch_count table - 1 in
  check bool "fresh server parked at start" true
    ((Shardmgr.Table.epoch_rates table first).(2) = 0.0);
  check bool "fresh server serving at end" true
    ((Shardmgr.Table.epoch_rates table last).(2) > 0.0);
  check bool "removed server parked at end" true
    ((Shardmgr.Table.epoch_rates table last).(1) = 0.0);
  check bool "removed server serving at start" true
    ((Shardmgr.Table.epoch_rates table first).(1) > 0.0)

(* ------------------------------------------------------------------ *)
(* Manager *)

let test_manager_hysteresis () =
  let c =
    {
      Shardmgr.Manager.hi_p99_us = 50.0;
      lo_p99_us = 10.0;
      k_up = 2;
      k_down = 2;
      cooldown_us = 25.0;
      max_replicas = 1;
    }
  in
  let series =
    [
      (0.0, 60.0); (10.0, 70.0); (20.0, 5.0); (30.0, 5.0); (40.0, 5.0);
      (50.0, 5.0); (60.0, 5.0);
    ]
  in
  let events = Shardmgr.Manager.decide c ~shard:0 ~window_us:10.0 series in
  check bool "add after k_up hot windows, drop after cooldown + k_down cold"
    true
    (compare events
       [
         Shardmgr.Plan.Add_replica { shard = 0; at_us = 20.0 };
         Shardmgr.Plan.Drop_replica { shard = 0; at_us = 60.0 };
       ]
     = 0);
  (* max_replicas caps additions; a single hot window never triggers *)
  let all_hot = List.init 10 (fun i -> (float_of_int i *. 10.0, 99.0)) in
  let adds =
    Shardmgr.Manager.decide c ~shard:1 ~window_us:10.0 all_hot
    |> List.filter (function Shardmgr.Plan.Add_replica _ -> true | _ -> false)
  in
  check int "capped at max_replicas" 1 (List.length adds);
  check int "one hot window alone is not enough" 0
    (List.length (Shardmgr.Manager.decide c ~shard:0 ~window_us:10.0 [ (0.0, 99.0) ]));
  (* NaN windows (no samples) are skipped, not treated as cold *)
  let with_gap = [ (0.0, 60.0); (10.0, Float.nan); (20.0, 70.0) ] in
  check bool "nan does not break a hot streak" true
    (compare
       (Shardmgr.Manager.decide c ~shard:0 ~window_us:10.0 with_gap)
       [ Shardmgr.Plan.Add_replica { shard = 0; at_us = 30.0 } ]
     = 0)

(* ------------------------------------------------------------------ *)
(* Protocol audit (offline — no engines) *)

let test_protocol_conserves_keys () =
  List.iter
    (fun name ->
      let table = compile (canned name) in
      let p = Shardmgr.Protocol.check ~seed:3 ~workload table in
      check bool (name ^ ": audit clean") true (Shardmgr.Protocol.ok p);
      check int (name ^ ": nothing lost") 0 p.Shardmgr.Protocol.lost;
      check int (name ^ ": nothing duplicated") 0
        p.Shardmgr.Protocol.duplicated;
      check int (name ^ ": nothing stale") 0 p.Shardmgr.Protocol.stale;
      if name <> "noop" then
        check bool (name ^ ": some backlog transferred") true
          (p.Shardmgr.Protocol.transferred > 0))
    Shardmgr.Plan.canned_names

(* ------------------------------------------------------------------ *)
(* Protocol audit under crash faults *)

let replicated_plan =
  {
    Shardmgr.Plan.name = "hedge-replicas";
    events =
      [
        Shardmgr.Plan.Add_replica { shard = 0; at_us = 0.0 };
        Shardmgr.Plan.Add_replica { shard = 1; at_us = 0.0 };
      ];
  }

let kill_fault ~server ~kill ~recover =
  {
    Fault.Plan.name = "kill-server";
    events =
      (Fault.Plan.Kill_server { server; at_us = kill }
      ::
      (match recover with
      | None -> []
      | Some at_us -> [ Fault.Plan.Recover_server { server; at_us } ]));
  }

let test_protocol_crash_failover_lossless () =
  (* A replicated table survives a mirror crash: the kill wipes the
     mirror's store, GETs fall back to the owner's live copies, the
     recover resyncs the restarted mirror from the survivors (counted in
     [transferred]), and the audit stays key-lossless. *)
  let table = compile ~servers:2 replicated_plan in
  let dur = Shardmgr.Table.duration_us table in
  let fault = kill_fault ~server:2 ~kill:(0.4 *. dur) ~recover:(Some (0.8 *. dur)) in
  let p = Shardmgr.Protocol.check ~seed:3 ~fault ~workload table in
  check bool "crash audit clean" true (Shardmgr.Protocol.ok p);
  check int "nothing lost across the crash" 0 p.Shardmgr.Protocol.lost;
  check bool "recovery resynced the mirror" true
    (p.Shardmgr.Protocol.transferred > 0);
  (* An unrecovered mirror is still lossless — the owner holds every
     key — it just stays out of the read set. *)
  let q =
    Shardmgr.Protocol.check ~seed:3
      ~fault:(kill_fault ~server:2 ~kill:(0.4 *. dur) ~recover:None)
      ~workload table
  in
  check bool "unrecovered mirror still lossless" true (Shardmgr.Protocol.ok q)

let test_protocol_unreplicated_crash_loses_keys () =
  (* Killing a sole owner must be *visible*: with no replica or dual
     route holding the keys, the audit reports losses — proving the
     clean result above comes from failover, not from a blind check. *)
  let table = compile ~servers:2 (canned "noop") in
  let dur = Shardmgr.Table.duration_us table in
  let p =
    Shardmgr.Protocol.check ~seed:3
      ~fault:(kill_fault ~server:0 ~kill:(0.5 *. dur) ~recover:None)
      ~workload table
  in
  check bool "sole-owner crash loses keys" true (p.Shardmgr.Protocol.lost > 0);
  check bool "audit flags it" false (Shardmgr.Protocol.ok p);
  (* A kill naming a server outside the table is a caller bug. *)
  check bool "out-of-range server rejected" true
    (match
       Shardmgr.Protocol.check ~seed:3
         ~fault:(kill_fault ~server:99 ~kill:(0.5 *. dur) ~recover:None)
         ~workload table
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_read_owner_covers_spread () =
  (* In every epoch the owner read_owner names must hold the key: the
     spread target sits inside the owner's replica set, and without
     mirrors the owner *is* the target. *)
  let table = compile ~servers:2 replicated_plan in
  for epoch = 0 to Shardmgr.Table.epoch_count table - 1 do
    let replicas = Shardmgr.Table.epoch_replicas table epoch in
    for k = 0 to 499 do
      let owner = Shardmgr.Table.read_owner table ~epoch k in
      let target = Shardmgr.Table.read_target table ~epoch k in
      check bool
        (Printf.sprintf "epoch %d key %d: target in owner's replica set"
           epoch k)
        true
        (Array.exists (fun s -> s = target) replicas.(owner))
    done
  done;
  let bare = compile ~servers:2 (canned "noop") in
  for k = 0 to 499 do
    check int "no mirrors: owner = target"
      (Shardmgr.Table.read_target bare ~epoch:0 k)
      (Shardmgr.Table.read_owner bare ~epoch:0 k)
  done

(* ------------------------------------------------------------------ *)
(* End-to-end runs (quick scale) *)

let reshard_run ?(plan = canned "add-remove") ?(servers = 2) () =
  let table = compile ~servers plan in
  Shardmgr.Run.run ~seed:3 ~map:Minos.Par.map_list ~cfg
    ~design:Kvserver.Design.minos ~workload ~table ()

let test_noop_reproduces_static_cluster () =
  (* The tentpole's base case: under the no-op plan the paced, epoch-
     routed engines must reproduce the static cluster run byte for byte
     — same metrics record, NaNs included. *)
  let r = reshard_run ~plan:Shardmgr.Plan.empty () in
  let c =
    Kvcluster.Run.run ~seed:3 ~trials:128 ~cfg ~design:Kvserver.Design.minos
      ~dataset:(dataset ()) ~servers:2 ~workload ~offered_mops:4.0 ()
  in
  check bool "metrics byte-identical to Kvcluster.Run" true
    (compare r.Shardmgr.Run.metrics c.Kvcluster.Run.metrics = 0);
  check bool "audit clean" true
    (Shardmgr.Protocol.ok r.Shardmgr.Run.protocol)

let test_reshard_preserves_accounting () =
  let r = reshard_run () in
  let m = r.Shardmgr.Run.metrics in
  check bool "telescopes across reshard events" true
    (Kvcluster.Metrics.telescopes m);
  check bool "audit clean" true (Shardmgr.Protocol.ok r.Shardmgr.Run.protocol);
  check bool "dual-phase fallback reads observed" true
    (r.Shardmgr.Run.protocol.Shardmgr.Protocol.fallback_reads >= 0);
  check bool "p99 timeline recorded" true (r.Shardmgr.Run.p99_series <> []);
  check bool "all engines issued something somewhere" true
    (m.Kvcluster.Metrics.issued > 0)

let test_reshard_deterministic_across_jobs () =
  let go () =
    Minos.Reshard.to_json
      (Minos.Reshard.run ~cfg ~seed:3 ~servers:2 ~plan:(canned "add-remove")
         (Workload.Scenario.of_spec workload) ~offered_mops:4.0 ())
  in
  let a = with_jobs 1 go in
  let b = with_jobs 4 go in
  check Alcotest.string "jobs=1 vs jobs=4 byte-identical" a b

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shardmgr"
    [
      ( "plan",
        [
          Alcotest.test_case "canned plans validate and round-trip" `Quick
            test_plan_round_trip;
          Alcotest.test_case "overlapping windows rejected" `Quick
            test_plan_rejects_overlapping_windows;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
        ] );
      ( "table",
        [
          Alcotest.test_case "impossible steps rejected" `Quick
            test_compile_rejects_impossible_steps;
          Alcotest.test_case "routing invariants per epoch" `Quick
            test_table_routing_invariants;
          Alcotest.test_case "rates follow membership" `Quick
            test_table_rates_follow_membership;
        ] );
      ( "manager",
        [ Alcotest.test_case "hysteresis + cooldown" `Quick test_manager_hysteresis ] );
      ( "protocol",
        [
          Alcotest.test_case "canned plans conserve every key" `Quick
            test_protocol_conserves_keys;
          Alcotest.test_case "mirror crash is key-lossless" `Quick
            test_protocol_crash_failover_lossless;
          Alcotest.test_case "sole-owner crash loses keys" `Quick
            test_protocol_unreplicated_crash_loses_keys;
          Alcotest.test_case "read_owner covers the spread" `Quick
            test_read_owner_covers_spread;
        ] );
      ( "reshard-run",
        [
          Alcotest.test_case "no-op plan reproduces the static cluster" `Slow
            test_noop_reproduces_static_cluster;
          Alcotest.test_case "mid-run add+remove preserves accounting" `Slow
            test_reshard_preserves_accounting;
          Alcotest.test_case "deterministic across MINOS_JOBS" `Slow
            test_reshard_deterministic_across_jobs;
        ] );
    ]
