(* Tests for the parallel runner: pool semantics and — the part that
   actually matters — the determinism contract.  A sweep, a replicated
   run and an SLO search must produce bit-identical results whether they
   run on one domain or many. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Run [f] with the job count pinned to [n], restoring the default after. *)
let with_jobs n f =
  Minos.Par.set_jobs (Some n);
  Fun.protect ~finally:(fun () -> Minos.Par.set_jobs None) f

(* ------------------------------------------------------------------ *)
(* Pool semantics *)

let test_map_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  with_jobs 4 (fun () ->
      check (Alcotest.array int) "map = Array.map" expected
        (Minos.Par.map f input))

let test_map_list_matches_sequential () =
  let input = List.init 57 (fun i -> i) in
  let f x = x * 3 in
  with_jobs 3 (fun () ->
      check (Alcotest.list int) "map_list = List.map" (List.map f input)
        (Minos.Par.map_list f input))

let test_map_empty () =
  with_jobs 4 (fun () ->
      check int "empty input" 0 (Array.length (Minos.Par.map (fun x -> x) [||])))

let test_exception_propagates () =
  with_jobs 4 (fun () ->
      match Minos.Par.map (fun x -> if x = 13 then failwith "boom" else x)
              (Array.init 32 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Failure to propagate"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg)

let test_nested_map () =
  (* A job that itself calls [map] must fall back to sequential execution
     inside the worker rather than deadlocking the pool. *)
  with_jobs 4 (fun () ->
      let result =
        Minos.Par.map
          (fun x ->
            Array.fold_left ( + ) 0
              (Minos.Par.map (fun y -> x * y) (Array.init 10 (fun i -> i))))
          (Array.init 8 (fun i -> i))
      in
      let expected = Array.init 8 (fun x -> x * 45) in
      check (Alcotest.array int) "nested map" expected result)

let test_set_jobs_clamps () =
  Minos.Par.set_jobs (Some 0);
  let j = Minos.Par.jobs () in
  Minos.Par.set_jobs None;
  check int "values below 1 clamp to 1" 1 j

(* ------------------------------------------------------------------ *)
(* Determinism: parallel experiment results = sequential results *)

let spec =
  { Workload.Spec.default with n_keys = 20_000; n_large_keys = 50 }

let cfg =
  let base = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  { base with
    Kvserver.Config.duration_us = 30_000.0;
    warmup_us = 10_000.0;
    epoch_us = 5_000.0
  }

(* Structural equality via polymorphic [compare]: metrics records contain
   [nan] fields (e.g. [large_p99_us] with no large samples), which [=]
   would treat as unequal even for identical runs. *)
let same a b = compare a b = 0

let test_sweep_deterministic () =
  let loads = [ 1.0; 2.0; 3.0; 4.0 ] in
  let go () = Minos.Experiment.sweep ~cfg Kvserver.Design.minos spec ~loads_mops:loads in
  let seq = with_jobs 1 go in
  let par = with_jobs 4 go in
  check int "same number of points" (List.length seq) (List.length par);
  check bool "sweep bit-identical across domain counts" true (same seq par)

let test_replicated_deterministic () =
  let go () =
    Minos.Experiment.run_replicated ~cfg ~seeds:[ 1; 2; 3; 4 ]
      Kvserver.Design.hkh spec ~offered_mops:2.5
  in
  let seq = with_jobs 1 go in
  let par = with_jobs 4 go in
  check bool "replicated runs bit-identical" true (same seq par)

let test_slo_search_deterministic () =
  let go () =
    Minos.Slo_search.search
      ~eval:(fun load ->
        Minos.Experiment.run ~cfg Kvserver.Design.minos spec ~offered_mops:load)
      ~slo_p99_us:50.0 ~lo_mops:0.5 ~hi_mops:5.0 ~iters:4
  in
  let seq = with_jobs 1 go in
  let par = with_jobs 4 go in
  check bool "slo search bit-identical" true (same seq par);
  check int "same evaluation count" seq.Minos.Slo_search.evaluations
    par.Minos.Slo_search.evaluations

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map_list matches sequential" `Quick
            test_map_list_matches_sequential;
          Alcotest.test_case "empty input" `Quick test_map_empty;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "set_jobs clamps" `Quick test_set_jobs_clamps;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep" `Slow test_sweep_deterministic;
          Alcotest.test_case "replicated" `Slow test_replicated_deterministic;
          Alcotest.test_case "slo search" `Slow test_slo_search_deterministic;
        ] );
    ]
