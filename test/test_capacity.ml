(* Tests for the closed-form capacity model — including cross-validation
   against the discrete-event simulator, the strongest evidence that both
   are right. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let spec = Workload.Spec.default
let cost = Kvserver.Cost_model.default

let test_profile_calibration () =
  let p = Queueing.Capacity.profile spec cost in
  (* DESIGN.md §3 calibration targets. *)
  if p.Queueing.Capacity.mean_cpu_us < 0.8 || p.Queueing.Capacity.mean_cpu_us > 1.6 then
    Alcotest.failf "mean cpu %.2f" p.Queueing.Capacity.mean_cpu_us;
  if
    p.Queueing.Capacity.mean_service_latency_us < 4.0
    || p.Queueing.Capacity.mean_service_latency_us > 6.5
  then
    Alcotest.failf "mean service latency %.2f (paper: ~5us)"
      p.Queueing.Capacity.mean_service_latency_us;
  (* 95:5 GET:PUT: most wire bytes go out, not in. *)
  check bool "tx dominates rx" true
    (p.Queueing.Capacity.mean_tx_bytes > 3.0 *. p.Queueing.Capacity.mean_rx_bytes)

let test_nic_bound_matches_paper_peak () =
  let peak = Queueing.Capacity.nic_bound_mops spec cost ~gbps:40.0 in
  (* The paper's platform peaks at 6.2 Mops, NIC-bound. *)
  if peak < 5.6 || peak > 7.0 then Alcotest.failf "nic bound %.2f Mops" peak

let test_cpu_bound_above_nic_bound () =
  let nic = Queueing.Capacity.nic_bound_mops spec cost ~gbps:40.0 in
  let cpu = Queueing.Capacity.cpu_bound_mops spec cost ~cores:8 () in
  check bool "NIC binds first on the default workload" true (nic < cpu)

let test_write_intensive_flips_bottleneck () =
  let wi = Workload.Spec.write_intensive in
  let nic = Queueing.Capacity.nic_bound_mops wi cost ~gbps:40.0 in
  let cpu = Queueing.Capacity.cpu_bound_mops wi cost ~cores:8 () in
  (* §6.2: "A write-intensive workload shifts the bottleneck from the NIC
     to the CPU". *)
  check bool "CPU binds on 50:50" true (cpu < nic)

let test_predicted_peak_matches_simulator () =
  (* The simulator's measured peak must sit within ~12% of the closed-form
     prediction. *)
  let predicted = Queueing.Capacity.predicted_peak_mops spec cost ~cores:8 ~gbps:40.0 in
  let cfg = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
  let measured =
    List.fold_left
      (fun acc load ->
        let m = Minos.Experiment.run ~cfg Kvserver.Design.hkh spec ~offered_mops:load in
        if m.Kvserver.Metrics.stable then Float.max acc m.Kvserver.Metrics.throughput_mops
        else acc)
      0.0
      [ 5.5; 6.0; 6.4 ]
  in
  let err = abs_float (measured -. predicted) /. predicted in
  if err > 0.12 then
    Alcotest.failf "predicted %.2f vs measured %.2f (%.0f%%)" predicted measured
      (100.0 *. err)

let test_hol_exposure_explains_hkh () =
  (* At 1 Mops on the default workload the exposure already exceeds 1%, so
     HKH's p99 reflects large service times — the paper's §2.2 point. *)
  let e1 = Queueing.Capacity.hol_exposure spec cost ~cores:8 ~offered_mops:1.0 in
  check bool "exposure > 1% at 1 Mops" true (e1 > 0.01);
  let e0 =
    Queueing.Capacity.hol_exposure
      (Workload.Spec.with_p_large spec 0.0)
      cost ~cores:8 ~offered_mops:1.0
  in
  check bool "no larges, no exposure" true (e0 = 0.0);
  (* Exposure scales with load. *)
  let e5 = Queueing.Capacity.hol_exposure spec cost ~cores:8 ~offered_mops:5.0 in
  check bool "monotone in load" true (e5 > 4.0 *. e1)

let test_expected_large_cores_matches_control () =
  check int "default -> 1 large core" 1
    (Queueing.Capacity.expected_large_cores spec cost ~cores:8 ~percentile:0.99);
  check int "pL=0.0625 -> standby" 0
    (Queueing.Capacity.expected_large_cores
       (Workload.Spec.with_p_large spec 0.0625)
       cost ~cores:8 ~percentile:0.99);
  let heavy =
    Queueing.Capacity.expected_large_cores
      (Workload.Spec.with_p_large spec 0.75)
      cost ~cores:8 ~percentile:0.99
  in
  if heavy < 3 || heavy > 5 then Alcotest.failf "pL=0.75 -> %d large cores" heavy

let test_expected_large_cores_matches_simulator () =
  (* The analytic allocation and the live control loop agree. *)
  List.iter
    (fun p_large ->
      let s = Workload.Spec.with_p_large spec p_large in
      let analytic =
        Queueing.Capacity.expected_large_cores s cost ~cores:8 ~percentile:0.99
      in
      let cfg = Minos.Experiment.config_of_scale Minos.Experiment.quick_scale in
      let m = Minos.Experiment.run ~cfg Kvserver.Design.minos s ~offered_mops:2.0 in
      (* Standby mode reports 1 when engaged; treat analytic 0 as <=1. *)
      let sim = m.Kvserver.Metrics.final_large_cores in
      if analytic = 0 then begin
        if sim > 1 then Alcotest.failf "pL=%.4f: sim %d vs standby" p_large sim
      end
      else if abs (sim - analytic) > 1 then
        Alcotest.failf "pL=%.4f: sim %d vs analytic %d" p_large sim analytic)
    [ 0.125; 0.25; 0.75 ]

let test_minos_small_pool_bound () =
  let bound = Queueing.Capacity.minos_small_pool_bound_mops spec cost ~cores:8 ~n_small:7 in
  (* Seven small cores at ~1.07us + profiling: ~6.2-6.8 Mops. *)
  if bound < 5.0 || bound > 8.0 then Alcotest.failf "small pool bound %.2f" bound

let () =
  Alcotest.run "capacity"
    [
      ( "closed-form",
        [
          Alcotest.test_case "profile calibration" `Quick test_profile_calibration;
          Alcotest.test_case "nic bound = paper peak" `Quick
            test_nic_bound_matches_paper_peak;
          Alcotest.test_case "bottleneck order (95:5)" `Quick test_cpu_bound_above_nic_bound;
          Alcotest.test_case "bottleneck flips (50:50)" `Quick
            test_write_intensive_flips_bottleneck;
          Alcotest.test_case "hol exposure" `Quick test_hol_exposure_explains_hkh;
          Alcotest.test_case "expected large cores" `Quick
            test_expected_large_cores_matches_control;
          Alcotest.test_case "small pool bound" `Quick test_minos_small_pool_bound;
        ] );
      ( "vs simulator",
        [
          Alcotest.test_case "peak throughput" `Slow test_predicted_peak_matches_simulator;
          Alcotest.test_case "large-core allocation" `Slow
            test_expected_large_cores_matches_simulator;
        ] );
    ]
