(* Hot-path lint driver: `minos_lint [--allow FILE] ROOT...`.
   Exit 0 iff no violations and no stale allowlist entries; the `@lint`
   dune alias runs it over lib/ with lint_allow.txt. *)

let usage = "minos_lint [--allow FILE] ROOT..."

let () =
  let allow_file = ref None in
  let roots = ref [] in
  Arg.parse
    [ ("--allow", Arg.String (fun f -> allow_file := Some f), "FILE allowlist") ]
    (fun r -> roots := r :: !roots)
    usage;
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let allow =
    match !allow_file with
    | None -> []
    | Some f -> Lint.Lint_core.parse_allowlist f
  in
  let report = Lint.Lint_core.lint_tree ~allow roots in
  Lint.Lint_core.pp_report Format.std_formatter report;
  if Lint.Lint_core.report_clean report then begin
    Printf.printf "lint: clean (%d suppressed by allowlist)\n"
      (List.length report.suppressed);
    exit 0
  end
  else exit 1
