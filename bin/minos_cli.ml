(* Command-line front end for the Minos reproduction.

   Subcommands:
     run      simulate one (design x workload x load) point
     sweep    throughput vs latency curve for one design
     slo      max throughput under a 99p SLO
     figure   regenerate one of the paper's tables/figures
     queueing run a §2.2 queueing model point
     chaos    fault plans against hardened/plain Minos and HKH+WS
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions *)

let design_names () =
  String.concat "|"
    (List.map
       (fun d -> String.lowercase_ascii (Kvserver.Design.name d))
       (Kvserver.Design.all ()))

let design_conv =
  let parse s =
    match Kvserver.Design.find s with
    | Some d -> Ok d
    | None ->
        Error (`Msg (Printf.sprintf "unknown design %S (%s)" s (design_names ())))
  in
  let print fmt d = Format.pp_print_string fmt (Kvserver.Design.name d) in
  Arg.conv (parse, print)

let design =
  Arg.(
    value
    & opt design_conv Kvserver.Design.minos
    & info [ "d"; "design" ] ~docv:"DESIGN"
        ~doc:(Printf.sprintf "Server design: %s." (design_names ())))

let load =
  Arg.(
    value
    & opt float 3.0
    & info [ "l"; "load" ] ~docv:"MOPS" ~doc:"Offered load in million ops/s.")

let p_large =
  Arg.(
    value
    & opt float 0.125
    & info [ "p-large" ] ~docv:"PCT" ~doc:"Percentage of requests for large items.")

let s_large =
  Arg.(
    value
    & opt int 500_000
    & info [ "s-large" ] ~docv:"BYTES" ~doc:"Maximum large item size in bytes.")

let get_ratio =
  Arg.(
    value
    & opt float 0.95
    & info [ "get-ratio" ] ~docv:"FRAC" ~doc:"Fraction of GET operations (0..1).")

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the reduced (test-sized) run scale.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the run.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel experiment runs (default: the MINOS_JOBS \
           environment variable, else the machine's core count; 1 forces sequential \
           execution).  Results are identical for every value.")

let spec_of ~p_large ~s_large ~get_ratio =
  {
    Workload.Spec.default with
    Workload.Spec.p_large;
    s_large_max = s_large;
    get_ratio;
  }

(* The one composable workload selector: --workload NAME[,k=v,...] picks a
   registered scenario ({!Workload.Scenario}); the legacy --p-large /
   --s-large / --get-ratio knobs still work when it is absent. *)
let workload_conv =
  let parse s =
    match Workload.Scenario.parse s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print fmt (t : Workload.Scenario.t) =
    Format.pp_print_string fmt t.Workload.Scenario.label
  in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    value
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME[,k=v,...]"
        ~doc:
          "Workload scenario from the registry (list with $(b,minos workloads)), \
           with optional knob overrides, e.g. $(b,-w ttl-churn,ttl_ms=20).  \
           Overrides --p-large/--s-large/--get-ratio.")

let trace_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace-file" ] ~docv:"FILE"
        ~doc:
          "Replay a captured trace file (see $(b,minos trace)) instead of the \
           synthetic generator; a timed trace replays at its recorded pacing.")

let scenario_of ~workload ~p_large ~s_large ~get_ratio =
  match workload with
  | Some sc -> sc
  | None -> Workload.Scenario.of_spec (spec_of ~p_large ~s_large ~get_ratio)

let scale_of quick =
  if quick then Minos.Experiment.quick_scale else Minos.Experiment.full_scale

let print_metrics m =
  Format.printf "%a@." Kvserver.Metrics.pp_row m;
  Format.printf
    "  p50=%.1fus p95=%.1fus p99=%.1fus p999=%.1fus small_p99=%.1fus large_p99=%.1fus@."
    m.Kvserver.Metrics.p50_us m.Kvserver.Metrics.p95_us m.Kvserver.Metrics.p99_us
    m.Kvserver.Metrics.p999_us m.Kvserver.Metrics.small_p99_us
    m.Kvserver.Metrics.large_p99_us;
  if m.Kvserver.Metrics.final_large_cores > 0 then
    Format.printf "  large cores=%d threshold=%.0fB@."
      m.Kvserver.Metrics.final_large_cores m.Kvserver.Metrics.final_threshold

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let action design load workload trace_file p_large s_large get_ratio quick seed =
    match trace_file with
    | Some path ->
        let trace = Workload.Trace.load path in
        let sc = scenario_of ~workload ~p_large ~s_large ~get_ratio in
        let cfg = Minos.Experiment.config_of_scale (scale_of quick) in
        let m =
          Minos.Experiment.run_trace ~cfg ~seed design trace
            ~spec:sc.Workload.Scenario.spec ~offered_mops:load
        in
        print_metrics m
    | None ->
        let m =
          Minos.Experiment.Spec.make design
          |> Minos.Experiment.Spec.with_workload
               (scenario_of ~workload ~p_large ~s_large ~get_ratio)
          |> Minos.Experiment.with_scale (scale_of quick)
          |> Minos.Experiment.Spec.with_load load
          |> Minos.Experiment.Spec.with_seed seed
          |> Minos.Experiment.run_spec
        in
        print_metrics m
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one (design, workload, load) point.")
    Term.(
      const action $ design $ load $ workload_arg $ trace_file_arg $ p_large $ s_large
      $ get_ratio $ quick $ seed)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep_cmd =
  let loads_arg =
    Arg.(
      value
      & opt (list float) [ 1.0; 2.0; 3.0; 4.0; 5.0; 5.5; 6.0; 6.5 ]
      & info [ "loads" ] ~docv:"MOPS,..." ~doc:"Comma-separated offered loads.")
  in
  let action design loads p_large s_large get_ratio quick jobs =
    Minos.Par.set_jobs jobs;
    let spec = spec_of ~p_large ~s_large ~get_ratio in
    let cfg = Minos.Experiment.config_of_scale (scale_of quick) in
    List.iter
      (fun (_, m) -> Format.printf "%a@." Kvserver.Metrics.pp_row m)
      (Minos.Experiment.sweep ~cfg design spec ~loads_mops:loads)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Throughput vs latency curve for one design.")
    Term.(
      const action $ design $ loads_arg $ p_large $ s_large $ get_ratio $ quick $ jobs)

(* ------------------------------------------------------------------ *)
(* slo *)

let slo_cmd =
  let slo_us =
    Arg.(
      value
      & opt float 50.0
      & info [ "slo" ] ~docv:"US" ~doc:"The 99p latency bound in microseconds.")
  in
  let action design slo_us p_large s_large get_ratio quick jobs =
    Minos.Par.set_jobs jobs;
    let spec = spec_of ~p_large ~s_large ~get_ratio in
    let scale = scale_of quick in
    let cfg = Minos.Experiment.config_of_scale scale in
    let eval rate = Minos.Experiment.run ~cfg design spec ~offered_mops:rate in
    let r =
      Minos.Slo_search.search ~eval ~slo_p99_us:slo_us ~lo_mops:0.25 ~hi_mops:8.0
        ~iters:scale.Minos.Experiment.slo_iters
    in
    Format.printf "%s: max throughput %.2f Mops under p99 <= %.0f us (%d evaluations)@."
      (Minos.Experiment.design_name design)
      r.Minos.Slo_search.max_mops slo_us r.Minos.Slo_search.evaluations
  in
  Cmd.v
    (Cmd.info "slo" ~doc:"Maximum throughput under a 99p latency SLO.")
    Term.(const action $ design $ slo_us $ p_large $ s_large $ get_ratio $ quick $ jobs)

(* ------------------------------------------------------------------ *)
(* figure *)

let figure_cmd =
  let fig_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE"
          ~doc:"One of: fig1 fig2 table1 fig3 ... fig10 fanout.")
  in
  let action name quick jobs =
    Minos.Par.set_jobs jobs;
    let scale = scale_of quick in
    match name with
    | "fig1" -> Minos.Figures.print_fig1 ()
    | "fig2" -> Minos.Figures.print_fig2 ()
    | "table1" -> Minos.Figures.print_table1 ()
    | "fig3" -> Minos.Figures.print_fig3 ~scale ()
    | "fig4" -> Minos.Figures.print_fig4 ~scale ()
    | "fig5" -> Minos.Figures.print_fig5 ~scale ()
    | "fig6" -> Minos.Figures.print_fig6 ~scale ()
    | "fig7" -> Minos.Figures.print_fig7 ~scale ()
    | "fig8" -> Minos.Figures.print_fig8 ~scale ()
    | "fig9" -> Minos.Figures.print_fig9 ~scale ()
    | "fig10" -> Minos.Figures.print_fig10 ~scale ()
    | "fanout" -> Minos.Figures.print_fanout ~scale ()
    | other ->
        Printf.eprintf "unknown figure %s\n" other;
        exit 1
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's tables or figures.")
    Term.(const action $ fig_name $ quick $ jobs)

(* ------------------------------------------------------------------ *)
(* obs: instrumented run with flight-recorder trace + latency anatomy *)

let obs_cmd =
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the sampled requests (load in \
             Perfetto or chrome://tracing).")
  in
  let sample_rate =
    Arg.(
      value
      & opt float 1.0
      & info [ "sample-rate" ] ~docv:"FRAC"
          ~doc:"Fraction of requests recorded, in (0, 1].")
  in
  let spans =
    Arg.(
      value
      & opt int 65536
      & info [ "spans" ] ~docv:"N" ~doc:"Flight-recorder capacity in spans.")
  in
  let action design load p_large s_large get_ratio quick seed trace_out sample_rate
      spans =
    let spec = spec_of ~p_large ~s_large ~get_ratio in
    ignore
      (Minos.Obs_report.run ~scale:(scale_of quick) ~design ~seed ~spans ~sample_rate
         ?trace_out spec ~offered_mops:load)
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Instrumented simulation: per-request flight-recorder spans, latency-anatomy \
          table, control-loop decisions and an optional Perfetto trace.")
    Term.(
      const action $ design $ load $ p_large $ s_large $ get_ratio $ quick $ seed
      $ trace_out $ sample_rate $ spans)

(* ------------------------------------------------------------------ *)
(* queueing *)

let queueing_cmd =
  let discipline_conv =
    let parse = function
      | "percore" | "nxmg1" -> Ok Queueing.Models.Per_core_queues
      | "single" | "mgn" -> Ok Queueing.Models.Single_queue
      | "steal" | "ws" -> Ok Queueing.Models.Work_stealing
      | s -> Error (`Msg (Printf.sprintf "unknown discipline %S (percore|single|steal)" s))
    in
    let print fmt d = Format.pp_print_string fmt (Queueing.Models.discipline_name d) in
    Arg.conv (parse, print)
  in
  let discipline =
    Arg.(
      value
      & opt discipline_conv Queueing.Models.Per_core_queues
      & info [ "discipline" ] ~docv:"D" ~doc:"percore, single or steal.")
  in
  let k =
    Arg.(value & opt float 100.0 & info [ "k" ] ~docv:"K" ~doc:"Large service multiplier.")
  in
  let qload =
    Arg.(value & opt float 0.5 & info [ "load" ] ~docv:"RHO" ~doc:"Normalized load (0..1).")
  in
  let action discipline k load =
    let r =
      Queueing.Models.run discipline { Queueing.Models.default_config with k; load }
    in
    Format.printf "%s K=%.0f load=%.2f: mean=%.2f p50=%.2f p99=%.2f (small-service units)@."
      (Queueing.Models.discipline_name discipline)
      k load r.Queueing.Models.mean r.Queueing.Models.p50 r.Queueing.Models.p99
  in
  Cmd.v
    (Cmd.info "queueing" ~doc:"Run one point of the §2.2 queueing simulation.")
    Term.(const action $ discipline $ k $ qload)

(* ------------------------------------------------------------------ *)
(* trace: capture a workload trace and run the §6.2 offline analysis *)

let trace_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the trace.")
  in
  let count =
    Arg.(
      value & opt int 500_000 & info [ "n" ] ~docv:"N" ~doc:"Requests to capture.")
  in
  let replay =
    Arg.(
      value
      & opt (some design_conv) None
      & info [ "replay" ] ~docv:"DESIGN"
          ~doc:"After capturing, replay the trace through this design.")
  in
  let action out count workload p_large s_large get_ratio seed replay load quick =
    let sc = scenario_of ~workload ~p_large ~s_large ~get_ratio in
    let spec = sc.Workload.Scenario.spec in
    let dataset = Minos.Experiment.dataset_for spec in
    let trace =
      match workload with
      | Some sc ->
          (* A scenario capture is timed: replaying it reproduces the
             scenario's arrival process at its recorded pacing. *)
          Workload.Scenario.capture ~seed sc dataset ~rate_mops:load ~n:count
      | None ->
          let gen = Workload.Generator.create ~seed ~p_large ~get_ratio dataset in
          Workload.Trace.capture gen ~n:count
    in
    Workload.Trace.save out trace;
    Format.printf "wrote %d%s requests to %s@." count
      (if Workload.Trace.timed trace then " timed" else "")
      out;
    Format.printf "offline analysis: p99 item size = %.0f B (static threshold),@."
      (Workload.Trace.size_percentile trace 0.99);
    Format.printf "  %.3f%% large requests, mean item %.0f B@."
      (Workload.Trace.percent_large trace)
      (Workload.Trace.mean_item_size trace);
    match replay with
    | None -> ()
    | Some design ->
        let cfg = Minos.Experiment.config_of_scale (scale_of quick) in
        let m =
          Minos.Experiment.run_trace ~cfg design trace ~spec ~offered_mops:load
        in
        Format.printf "trace-driven replay:@.";
        print_metrics m
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Capture a workload trace, derive the static size threshold offline, and \
          optionally replay it.")
    Term.(
      const action $ out $ count $ workload_arg $ p_large $ s_large $ get_ratio $ seed
      $ replay $ load $ quick)

(* ------------------------------------------------------------------ *)
(* numa: multi-domain scaling *)

let numa_cmd =
  let domains =
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N" ~doc:"NUMA domains.")
  in
  let action design domains load p_large s_large get_ratio quick =
    let spec = spec_of ~p_large ~s_large ~get_ratio in
    let cfg = Minos.Experiment.config_of_scale (scale_of quick) in
    let r = Minos.Numa.run ~cfg ~design ~domains spec ~offered_mops:load in
    Format.printf
      "%d domains x %s: tput=%.2f Mops p50=%.1fus p99=%.1fus p999=%.1fus%s@." domains
      (Minos.Experiment.design_name design)
      r.Minos.Numa.total_throughput_mops r.Minos.Numa.p50_us r.Minos.Numa.p99_us
      r.Minos.Numa.p999_us
      (if r.Minos.Numa.stable then "" else " UNSTABLE");
    List.iteri
      (fun i m -> Format.printf "  domain %d: %a@." i Kvserver.Metrics.pp_row m)
      r.Minos.Numa.per_domain
  in
  Cmd.v
    (Cmd.info "numa" ~doc:"Scale across NUMA domains (independent instances, §3).")
    Term.(const action $ design $ domains $ load $ p_large $ s_large $ get_ratio $ quick)

(* ------------------------------------------------------------------ *)
(* serve: run the native size-aware KV server over kernel UDP *)

let serve_cmd =
  let port =
    Arg.(value & opt int 47700 & info [ "port" ] ~docv:"PORT" ~doc:"First RX-queue port.")
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~docv:"N" ~doc:"Worker domains (>= 2).")
  in
  let arena_mb =
    Arg.(
      value & opt int 256 & info [ "arena-mb" ] ~docv:"MB" ~doc:"Value arena size in MiB.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log control-loop decisions.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Attach a flight recorder and write a Chrome trace-event JSON of the \
             served requests on shutdown.")
  in
  let action port cores arena_mb verbose trace_out =
    if verbose then begin
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    let store =
      Kvstore.Store.create ~partition_bits:4 ~bucket_bits:12
        ~value_arena_bytes:(arena_mb * 1024 * 1024) ()
    in
    let config = { Runtime.Server.default_config with Runtime.Server.cores } in
    let obs =
      match trace_out with
      | None -> None
      | Some _ -> Some (Obs.Instrument.create ~cores ~seed:1 ())
    in
    let udp = Runtime.Udp.start ?obs ~config ~base_port:port store in
    Format.printf
      "minos: serving on 127.0.0.1 UDP ports %d-%d (%d worker domains)@." port
      (port + cores - 1) cores;
    Format.printf "GETs: any port; PUTs: keyhash port. Ctrl-C to stop.@.";
    let stop = ref false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    while not !stop do
      Unix.sleepf 0.5
    done;
    Format.printf "stopping...@.";
    Runtime.Udp.stop udp;
    let stats = Runtime.Server.stats (Runtime.Udp.server udp) in
    Format.printf "served %d requests (%d handoffs, threshold %.0f B)@."
      (Array.fold_left ( + ) 0 stats.Runtime.Server.served)
      stats.Runtime.Server.handoffs stats.Runtime.Server.threshold;
    match (obs, trace_out) with
    | Some o, Some path ->
        Obs.Chrome_trace.write ~path ~name:"minos serve"
          ?timeline:o.Obs.Instrument.timeline ~decisions:o.Obs.Instrument.decisions
          o.Obs.Instrument.recorder;
        Minos.Obs_report.print_anatomy (Obs.Anatomy.compute o.Obs.Instrument.recorder);
        Format.printf "trace written to %s@." path
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the native size-aware KV server over kernel UDP.")
    Term.(const action $ port $ cores $ arena_mb $ verbose $ trace_out)

(* ------------------------------------------------------------------ *)
(* kv: talk to a running `minos serve` instance *)

let kv_cmd =
  let port =
    Arg.(value & opt int 47700 & info [ "port" ] ~docv:"PORT" ~doc:"Server base port.")
  in
  let queues =
    Arg.(value & opt int 4 & info [ "queues" ] ~docv:"N" ~doc:"Server RX queues (= cores).")
  in
  let op =
    Arg.(
      required
      & pos 0 (some (enum [ ("get", `Get); ("put", `Put); ("del", `Del) ])) None
      & info [] ~docv:"OP" ~doc:"get, put or del.")
  in
  let key = Arg.(required & pos 1 (some string) None & info [] ~docv:"KEY") in
  let value = Arg.(value & pos 2 (some string) None & info [] ~docv:"VALUE") in
  let action port queues op key value =
    let client = Runtime.Udp.Client.connect ~base_port:port ~queues () in
    Fun.protect
      ~finally:(fun () -> Runtime.Udp.Client.close client)
      (fun () ->
        try
          match (op, value) with
          | `Get, _ -> (
              match Runtime.Udp.Client.get client key with
              | Some v ->
                  print_bytes v;
                  print_newline ()
              | None ->
                  prerr_endline "(not found)";
                  exit 1)
          | `Put, Some v -> Runtime.Udp.Client.put client key (Bytes.of_string v)
          | `Put, None ->
              prerr_endline "put requires a VALUE";
              exit 2
          | `Del, _ -> if not (Runtime.Udp.Client.delete client key) then exit 1
        with Runtime.Udp.Client.Timeout ->
          prerr_endline "timeout: is `minos serve` running on this port?";
          exit 3)
  in
  Cmd.v
    (Cmd.info "kv" ~doc:"GET/PUT/DELETE against a running `minos serve` instance.")
    Term.(const action $ port $ queues $ op $ key $ value)

(* ------------------------------------------------------------------ *)
(* loadtest: drive a running server from several client domains *)

let loadtest_cmd =
  let port =
    Arg.(value & opt int 47700 & info [ "port" ] ~docv:"PORT" ~doc:"Server base port.")
  in
  let queues =
    Arg.(value & opt int 4 & info [ "queues" ] ~docv:"N" ~doc:"Server RX queues.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Client domains.")
  in
  let requests =
    Arg.(value & opt int 5000 & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let value_size =
    Arg.(value & opt int 100 & info [ "value-size" ] ~docv:"BYTES" ~doc:"PUT value size.")
  in
  let action port queues clients requests value_size =
    let worker c =
      Domain.spawn (fun () ->
          let client =
            Runtime.Udp.Client.connect ~base_port:port ~queues ()
          in
          Fun.protect
            ~finally:(fun () -> Runtime.Udp.Client.close client)
            (fun () ->
              let latencies = Stats.Float_vec.create ~capacity:requests () in
              let value = Bytes.create value_size in
              for i = 0 to requests - 1 do
                let key = Printf.sprintf "bench-%d-%d" c (i mod 512) in
                let t0 = Unix.gettimeofday () in
                (if i mod 10 = 0 then Runtime.Udp.Client.put client key value
                 else ignore (Runtime.Udp.Client.get client key));
                Stats.Float_vec.push latencies
                  (1.0e6 *. (Unix.gettimeofday () -. t0))
              done;
              latencies))
    in
    let t0 = Unix.gettimeofday () in
    let all = List.map Domain.join (List.map worker (List.init clients Fun.id)) in
    let dt = Unix.gettimeofday () -. t0 in
    let merged = Stats.Float_vec.create () in
    List.iter (fun v -> Stats.Float_vec.iter (Stats.Float_vec.push merged) v) all;
    let qs = Stats.Quantile.many_of_vec merged [ 0.5; 0.99 ] in
    Format.printf "%d clients x %d requests in %.2fs: %.0f rps, p50=%.0fus p99=%.0fus@."
      clients requests dt
      (float_of_int (clients * requests) /. dt)
      (List.nth qs 0) (List.nth qs 1)
  in
  Cmd.v
    (Cmd.info "loadtest" ~doc:"Closed-loop load test against a running `minos serve`.")
    Term.(const action $ port $ queues $ clients $ requests $ value_size)

(* ------------------------------------------------------------------ *)
(* chaos *)

let chaos_cmd =
  let plan_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "fault-plan" ] ~docv:"FILE"
          ~doc:
            "Run a fault plan from a file (see lib/fault/plan.mli for the \
             format) instead of the canned scenarios.")
  in
  let plans_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "plans" ] ~docv:"NAME,..."
          ~doc:
            "Canned plans to run (default: all of core-stall, loss10, overload, \
             ctrl-corrupt).  Ignored with $(b,--fault-plan).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the results as JSON.")
  in
  let chaos_load =
    Arg.(
      value
      & opt (some float) None
      & info [ "l"; "load" ] ~docv:"MOPS"
          ~doc:
            "Base offered load in million ops/s (default 4.0).  Canned plans \
             scale it per plan: loss10 runs at 1.75x, overload at 2x.")
  in
  let action plan_file plans json load workload p_large s_large get_ratio quick seed
      jobs =
    Minos.Par.set_jobs jobs;
    let workload = scenario_of ~workload ~p_large ~s_large ~get_ratio in
    let cfg = Minos.Experiment.config_of_scale (scale_of quick) in
    let t =
      match plan_file with
      | Some file -> (
          match Fault.Plan.of_file file with
          | Error e ->
              Printf.eprintf "chaos: %s\n" e;
              exit 1
          | Ok plan ->
              let offered = Option.value load ~default:4.0 in
              {
                Minos.Chaos.seed;
                rows =
                  Minos.Chaos.run_plan ~cfg ~workload ~seed ~offered_mops:offered
                    plan;
              })
      | None ->
          let plans = match plans with [] -> None | l -> Some l in
          Minos.Chaos.run ~cfg ~workload ~seed ?offered_mops:load ?plans ()
    in
    Minos.Chaos.print t;
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Minos.Chaos.to_json t);
        close_out oc;
        Printf.printf "[chaos results written to %s]\n%!" file
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the chaos harness: deterministic fault plans (core stalls, packet \
          loss, ring squeezes, control corruption) against the hardened Minos, \
          the plain Minos and the HKH+WS baseline.  Fixed (plan, seed) pairs \
          reproduce byte-identical results.")
    Term.(
      const action $ plan_file $ plans_arg $ json_arg $ chaos_load $ workload_arg
      $ p_large $ s_large $ get_ratio $ quick $ seed $ jobs)

(* ------------------------------------------------------------------ *)
(* cluster *)

let cluster_cmd =
  let servers_arg =
    Arg.(
      value
      & opt int 4
      & info [ "servers" ] ~docv:"N" ~doc:"Number of shard servers.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt design_conv Kvserver.Design.hkh
      & info [ "baseline" ] ~docv:"DESIGN"
          ~doc:
            (Printf.sprintf "Per-server baseline design to compare against: %s."
               (design_names ())))
  in
  let policy_conv =
    Arg.enum [ ("hash", Kvcluster.Run.Hash); ("range", Kvcluster.Run.Range) ]
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv Kvcluster.Run.Hash
      & info [ "policy" ] ~docv:"hash|range"
          ~doc:
            "Routing policy: consistent hashing over virtual nodes, or an \
             explicit key-range map.")
  in
  let rebalance_arg =
    Arg.(
      value & flag
      & info [ "rebalance" ]
          ~doc:
            "Re-cut range boundaries from probed per-bucket key load before \
             the measured run (range policy only).")
  in
  let vnodes_arg =
    Arg.(
      value
      & opt int 128
      & info [ "vnodes" ] ~docv:"N" ~doc:"Virtual nodes per server (hash policy).")
  in
  let fanouts_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "fanouts" ] ~docv:"K,..."
          ~doc:"Multi-GET fan-out degrees to measure.")
  in
  let trials_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"N" ~doc:"Multi-GET trials per fan-out degree.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the results as JSON.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a merged Chrome trace of the main run, one process group \
             per shard server.")
  in
  let action design baseline servers policy rebalance vnodes fanouts trials json
      trace_out load workload p_large s_large get_ratio quick seed jobs =
    Minos.Par.set_jobs jobs;
    let workload = scenario_of ~workload ~p_large ~s_large ~get_ratio in
    let cfg = Minos.Experiment.config_of_scale (scale_of quick) in
    let t =
      Minos.Cluster.run ~cfg ~design ~baseline ~policy ~vnodes ~rebalance
        ~fanouts ?trials ~seed ?trace_out ~servers workload ~offered_mops:load
    in
    Minos.Cluster.print t;
    (match trace_out with
    | Some path -> Printf.printf "[cluster trace written to %s]\n%!" path
    | None -> ());
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Minos.Cluster.to_json t);
        close_out oc;
        Printf.printf "[cluster results written to %s]\n%!" file
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Simulate a sharded cluster: N independent servers behind a \
          client-side router, under the chosen design and a baseline at the \
          same offered load.  Reports per-shard and aggregate latency, \
          loss-accounting, and multi-GET completion p99 versus fan-out \
          degree.")
    Term.(
      const action $ design $ baseline_arg $ servers_arg $ policy_arg
      $ rebalance_arg $ vnodes_arg $ fanouts_arg $ trials_arg $ json_arg
      $ trace_arg $ load $ workload_arg $ p_large $ s_large $ get_ratio $ quick
      $ seed $ jobs)

(* ------------------------------------------------------------------ *)
(* reshard *)

let reshard_cmd =
  let servers_arg =
    Arg.(
      value
      & opt int 4
      & info [ "servers" ] ~docv:"N" ~doc:"Initial number of shard servers.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt design_conv Kvserver.Design.hkh
      & info [ "baseline" ] ~docv:"DESIGN"
          ~doc:
            (Printf.sprintf "Per-server baseline design to compare against: %s."
               (design_names ())))
  in
  let plan_file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "reshard-plan" ] ~docv:"FILE"
          ~doc:
            "Run a reshard plan from a file (see lib/shardmgr/plan.mli for \
             the format) instead of a canned scenario.")
  in
  let plan_name_arg =
    Arg.(
      value
      & opt string "add-remove"
      & info [ "plan" ] ~docv:"NAME"
          ~doc:
            "Canned reshard scenario: noop, add-remove (a server joins \
             early, server 1 leaves later) or replica-cycle.  Ignored with \
             $(b,--reshard-plan).")
  in
  let groups_arg =
    Arg.(
      value
      & opt int 8
      & info [ "groups" ] ~docv:"N"
          ~doc:"Key groups cutting over at staggered instants per migration.")
  in
  let vnodes_arg =
    Arg.(
      value
      & opt int 128
      & info [ "vnodes" ] ~docv:"N" ~doc:"Virtual nodes per server.")
  in
  let manage_arg =
    Arg.(
      value & flag
      & info [ "manage" ]
          ~doc:
            "Run the shard-manager control loop: a first membership-only \
             pass records per-shard p99 windows, the manager's hysteresis \
             turns them into add/drop-replica events, and the measured run \
             replays with those appended to the plan.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the results as JSON.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a merged Chrome trace of the main run: one process group \
             per server plus a shardmgr track carrying the reshard schedule.")
  in
  let reshard_load =
    Arg.(
      value
      & opt float 8.0
      & info [ "l"; "load" ] ~docv:"MOPS"
          ~doc:"Total offered load in million ops/s (default 8.0).")
  in
  let action design baseline servers plan_file plan_name groups vnodes manage
      json trace_out load workload p_large s_large get_ratio quick seed jobs =
    Minos.Par.set_jobs jobs;
    let workload = scenario_of ~workload ~p_large ~s_large ~get_ratio in
    let s = scale_of quick in
    let cfg =
      {
        (Minos.Experiment.config_of_scale s) with
        Kvserver.Config.window_us = Some s.Minos.Experiment.window_us;
      }
    in
    let plan =
      match plan_file with
      | Some file -> (
          match Shardmgr.Plan.of_file file with
          | Ok p -> p
          | Error e ->
              Printf.eprintf "reshard: %s\n" e;
              exit 1)
      | None -> (
          match
            Shardmgr.Plan.canned plan_name
              ~warmup_us:cfg.Kvserver.Config.warmup_us
              ~duration_us:cfg.Kvserver.Config.duration_us
          with
          | Some p -> p
          | None ->
              Printf.eprintf "reshard: unknown plan %S (canned: %s)\n"
                plan_name
                (String.concat ", " Shardmgr.Plan.canned_names);
              exit 1)
    in
    let manage = if manage then Some Shardmgr.Manager.default else None in
    let t =
      Minos.Reshard.run ~cfg ~design ~baseline ~vnodes ~groups ~seed ?manage
        ?trace_out ~servers ~plan workload ~offered_mops:load ()
    in
    Minos.Reshard.print t;
    (match trace_out with
    | Some path -> Printf.printf "[reshard trace written to %s]\n%!" path
    | None -> ());
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Minos.Reshard.to_json t);
        close_out oc;
        Printf.printf "[reshard results written to %s]\n%!" file
  in
  Cmd.v
    (Cmd.info "reshard"
       ~doc:
         "Elastic resharding: replay a timed plan of server add/remove and \
          replica events against a live cluster run (drain, dual-route, \
          staggered cutover), under the chosen design and a baseline.  \
          Reports the p99 timeline across the migrations, exact loss \
          accounting and a key-conservation audit; fixed (seed, plan) pairs \
          reproduce byte-identical results.")
    Term.(
      const action $ design $ baseline_arg $ servers_arg $ plan_file_arg
      $ plan_name_arg $ groups_arg $ vnodes_arg $ manage_arg $ json_arg
      $ trace_arg $ reshard_load $ workload_arg $ p_large $ s_large $ get_ratio
      $ quick $ seed $ jobs)

(* ------------------------------------------------------------------ *)
(* hedge *)

let hedge_cmd =
  let shards_arg =
    Arg.(
      value
      & opt int 4
      & info [ "shards" ] ~docv:"N" ~doc:"Number of primary shards.")
  in
  let mirrors_arg =
    Arg.(
      value
      & opt int 1
      & info [ "mirrors" ] ~docv:"N"
          ~doc:"Replicas per shard beyond the primary (at least 1).")
  in
  let cores_arg =
    Arg.(
      value
      & opt int 8
      & info [ "cores" ] ~docv:"N" ~doc:"Worker cores per server.")
  in
  let quantile_arg =
    Arg.(
      value
      & opt float 0.95
      & info [ "hedge-quantile" ] ~docv:"Q"
          ~doc:
            "Completion-latency quantile tracked as the hedge delay \
             (default 0.95: hedge after the windowed p95).")
  in
  let detect_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "detect" ] ~docv:"US"
          ~doc:
            "Failure-detector timeout in microseconds (default: 15% of the \
             measured window).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the results as JSON.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace whose decision track carries the hedged \
             kill-server variant's crash / restart / hedge-delay instants.")
  in
  let hedge_load =
    Arg.(
      value
      & opt float 8.0
      & info [ "l"; "load" ] ~docv:"MOPS"
          ~doc:"Total offered load in million ops/s (default 8.0).")
  in
  let action shards mirrors cores quantile detect json trace_out load workload
      p_large s_large get_ratio quick seed jobs =
    Minos.Par.set_jobs jobs;
    let workload = scenario_of ~workload ~p_large ~s_large ~get_ratio in
    let config =
      {
        (Minos.Hedge.config_of_scale (scale_of quick)) with
        Kvhedge.Config.shards = shards;
        mirrors;
        cores;
        hedge_quantile = quantile;
        detect_us = detect;
      }
    in
    let t =
      Minos.Hedge.run ~config ~seed ?trace_out ~workload ~offered_mops:load ()
    in
    Minos.Hedge.print t;
    (match trace_out with
    | Some path -> Printf.printf "[hedge trace written to %s]\n%!" path
    | None -> ());
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Minos.Hedge.to_json t);
        close_out oc;
        Printf.printf "[hedge results written to %s]\n%!" file
  in
  Cmd.v
    (Cmd.info "hedge"
       ~doc:
         "Replica-aware tail-cutting: spread GETs over shard replicas and \
          race hedged or tied backup copies against a crashed server.  Runs \
          the variant grid (size-aware/keyhash x hedged/tied/off x \
          spread/p2c) fault-free and under a canned kill-server plan, \
          reports exact copy-level loss accounting, the hedge tax and a \
          key-conservation audit across the crash; fixed seeds reproduce \
          byte-identical results.")
    Term.(
      const action $ shards_arg $ mirrors_arg $ cores_arg $ quantile_arg
      $ detect_arg $ json_arg $ trace_arg $ hedge_load $ workload_arg $ p_large
      $ s_large $ get_ratio $ quick $ seed $ jobs)

(* ------------------------------------------------------------------ *)
(* workloads: list the scenario registry *)

let workloads_cmd =
  let action () =
    List.iter
      (fun (i : Workload.Scenario.info) ->
        let aliases =
          match i.Workload.Scenario.aliases with
          | [] -> ""
          | l -> Printf.sprintf " (aliases: %s)" (String.concat ", " l)
        in
        Format.printf "%-16s %s%s@." i.Workload.Scenario.name
          i.Workload.Scenario.summary aliases;
        List.iter
          (fun (k, doc) -> Format.printf "    %-14s %s@." k doc)
          i.Workload.Scenario.knobs)
      (Workload.Scenario.all ());
    Format.printf "@.common knobs (every scenario):@.";
    List.iter
      (fun (k, doc) -> Format.printf "    %-14s %s@." k doc)
      Workload.Scenario.common_knobs
  in
  Cmd.v
    (Cmd.info "workloads"
       ~doc:
         "List the workload scenario registry: names, aliases and the k=v knobs \
          accepted by --workload.")
    Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* scenarios: the scenario suite, size-aware vs keyhash *)

let scenarios_cmd =
  let names_arg =
    Arg.(
      value
      & opt (list string) Minos.Scenarios.suite
      & info [ "names" ] ~docv:"NAME,..."
          ~doc:"Scenarios to run (default: the full suite).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write results as JSON to $(docv).")
  in
  let scen_load =
    Arg.(
      value
      & opt float 2.5
      & info [ "l"; "load" ] ~docv:"MOPS" ~doc:"Offered load in million ops/s.")
  in
  let action names json load quick seed jobs =
    Minos.Par.set_jobs jobs;
    let cfg = Minos.Experiment.config_of_scale (scale_of quick) in
    let t = Minos.Scenarios.run ~cfg ~seed ~offered_mops:load ~names () in
    Minos.Scenarios.print t;
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Minos.Scenarios.to_json t);
        close_out oc;
        Printf.printf "[scenario results written to %s]\n%!" file
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:
         "Run the scenario suite (diurnal ramps, bursts, TTL churn, scan-heavy, \
          larger-than-memory cold tier) size-aware vs keyhash and report p99s \
          plus the extended loss-accounting identity; fixed seeds reproduce \
          byte-identical results at any --jobs.")
    Term.(const action $ names_arg $ json_arg $ scen_load $ quick $ seed $ jobs)

let () =
  let info =
    Cmd.info "minos" ~version:"1.0.0"
      ~doc:"Size-aware sharding for in-memory key-value stores (NSDI'19 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; sweep_cmd; slo_cmd; figure_cmd; obs_cmd; queueing_cmd; trace_cmd;
            numa_cmd; serve_cmd; kv_cmd; loadtest_cmd; chaos_cmd; cluster_cmd;
            reshard_cmd; hedge_cmd; workloads_cmd; scenarios_cmd;
          ]))
