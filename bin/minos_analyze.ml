(* Interprocedural analyzer driver:
     minos_analyze --roots FILE --allow FILE CMT_DIR...
   Loads every implementation .cmt under the given directories, builds
   the whole-program call graph, and proves the hot roots allocation-
   free and the deterministic sinks taint-free.  Exit 0 iff both proofs
   hold and no allowlist/roots entry is stale; the `@analyze` dune
   alias runs it over the install tree. *)

let usage = "minos_analyze [--roots FILE] [--allow FILE] CMT_DIR..."

let () =
  let roots_file = ref "analyze_roots.txt" in
  let allow_file = ref "analyze_allow.txt" in
  let dirs = ref [] in
  Arg.parse
    [
      ("--roots", Arg.Set_string roots_file, "FILE hot/sink roots");
      ("--allow", Arg.Set_string allow_file, "FILE reviewed exceptions");
    ]
    (fun d -> dirs := d :: !dirs)
    usage;
  let dirs = List.rev !dirs in
  if dirs = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let r =
    Analyze.Analyze_core.run ~cmt_roots:dirs ~roots_file:!roots_file
      ~allow_file:!allow_file
  in
  Analyze.Analyze_core.print_result r;
  exit (if r.Analyze.Analyze_core.ok then 0 else 1)
