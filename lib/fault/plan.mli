(** Declarative, deterministic fault plans.

    A plan is a list of typed events over simulated (or, for the native
    runtime, run-relative wall) time, in microseconds.  Plans are pure
    data: all randomness (which packet is dropped, how far a reorder is
    delayed) lives in {!Inject}, seeded separately, so the same
    [(plan, seed)] pair always reproduces the same faulty execution.

    Time windows are half-open [[from_us, until_us)]; [infinity] means
    "until the end of the run".  A queue or core index of {!all} ([-1])
    matches every queue/core. *)

type corrupt =
  | Nan  (** the control loop computes a NaN threshold *)
  | Scale of float  (** threshold multiplied by a wild factor *)

type event =
  | Core_stall of {
      core : int;
      from_us : float;
      until_us : float;
      factor : float;
          (** CPU-time multiplier while the window is open: [2.0] halves
              the core's speed, [infinity] stalls it outright (work
              resumes when the window closes). *)
    }
  | Net_fault of {
      queue : int;  (** RX queue, or {!all} *)
      from_us : float;
      until_us : float;
      drop : float;  (** per-request probability the NIC loses it *)
      dup : float;
          (** probability the request's frames arrive twice (a
              retransmission echo: same request, double the RX frames) *)
      reorder : float;  (** probability of a late, out-of-order delivery *)
      reorder_max_us : float;  (** max extra delivery delay for reorders *)
    }
  | Ring_squeeze of {
      queue : int;  (** RX queue, or {!all} *)
      from_us : float;
      until_us : float;
      capacity : int;  (** arrivals beyond this depth are tail-dropped *)
    }
  | Ctrl_delay of { from_us : float; until_us : float }
      (** the control loop sees no fresh statistics (stale windows) *)
  | Ctrl_corrupt of { from_us : float; until_us : float; mode : corrupt }
      (** the computed threshold is corrupted before it is applied *)
  | Kill_server of { server : int; at_us : float }
      (** the server process crashes at [at_us]: queues freeze, in-service
          requests never complete, arrivals bounce.  Stays dead until a
          matching [Recover_server], else forever. *)
  | Recover_server of { server : int; at_us : float }
      (** the crashed server restarts (empty, warm) at [at_us] *)

type t = { name : string; events : event list }

val all : int
(** Wildcard core/queue index ([-1]). *)

val empty : t

val validate : t -> (unit, string) result
(** Rates in [[0, 1]] with [drop +. dup +. reorder <= 1], windows with
    [from_us < until_us], factors [>= 1], capacities [>= 1]. *)

val canned :
  string -> cores:int -> warmup_us:float -> duration_us:float -> t option
(** The built-in chaos scenarios, window positions scaled to the run:
    ["core-stall"] (a 50x slowdown of core 1 spanning most of the
    measurement window), ["loss10"] (10 % drop + 10 % duplication + 2 %
    reorder on every queue), ["overload"] (every RX ring squeezed to a
    small capacity), ["ctrl-corrupt"] (NaN threshold early, stale stats
    late).  [None] for unknown names. *)

val canned_names : string list

val of_string : ?name:string -> string -> (t, string) result
(** Parse the textual plan format, one event per line:
    {v
    # comment
    core-stall core=1 from=500000 until=1200000 factor=50
    net queue=* from=0 until=end drop=0.1 dup=0.1 reorder=0.02 reorder-max=200
    squeeze queue=* from=0 until=end capacity=256
    ctrl-delay from=800000 until=end
    ctrl-corrupt from=500000 until=800000 mode=nan
    kill-server server=2 at=700000
    recover-server server=2 at=1100000
    v}
    [queue=*]/[core=*] are wildcards; [until=end] means [infinity];
    [mode] is [nan] or [x<float>] (scale).  The result is validated. *)

val of_file : string -> (t, string) result

val to_string : t -> string
(** Round-trippable rendering in the {!of_string} format. *)
