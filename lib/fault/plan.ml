type corrupt = Nan | Scale of float

type event =
  | Core_stall of { core : int; from_us : float; until_us : float; factor : float }
  | Net_fault of {
      queue : int;
      from_us : float;
      until_us : float;
      drop : float;
      dup : float;
      reorder : float;
      reorder_max_us : float;
    }
  | Ring_squeeze of { queue : int; from_us : float; until_us : float; capacity : int }
  | Ctrl_delay of { from_us : float; until_us : float }
  | Ctrl_corrupt of { from_us : float; until_us : float; mode : corrupt }
  | Kill_server of { server : int; at_us : float }
  | Recover_server of { server : int; at_us : float }

type t = { name : string; events : event list }

let all = -1
let empty = { name = "empty"; events = [] }

(* ------------------------------------------------------------------ *)
(* Validation *)

let window_ok ~from_us ~until_us =
  Float.is_finite from_us && from_us >= 0.0 && until_us > from_us
  && not (Float.is_nan until_us)

let rate_ok r = Float.is_finite r && r >= 0.0 && r <= 1.0

let validate_event = function
  | Core_stall { core; from_us; until_us; factor } ->
      if core < all then Error "core-stall: bad core index"
      else if not (window_ok ~from_us ~until_us) then Error "core-stall: bad window"
      else if Float.is_nan factor || factor < 1.0 then
        Error "core-stall: factor must be >= 1"
      else Ok ()
  | Net_fault { queue; from_us; until_us; drop; dup; reorder; reorder_max_us } ->
      if queue < all then Error "net: bad queue index"
      else if not (window_ok ~from_us ~until_us) then Error "net: bad window"
      else if not (rate_ok drop && rate_ok dup && rate_ok reorder) then
        Error "net: rates must be in [0, 1]"
      else if drop +. dup +. reorder > 1.0 then
        Error "net: drop + dup + reorder must be <= 1"
      else if reorder > 0.0 && not (reorder_max_us > 0.0) then
        Error "net: reorder-max must be > 0 when reorder > 0"
      else if Float.is_nan reorder_max_us || reorder_max_us < 0.0 then
        Error "net: bad reorder-max"
      else Ok ()
  | Ring_squeeze { queue; from_us; until_us; capacity } ->
      if queue < all then Error "squeeze: bad queue index"
      else if not (window_ok ~from_us ~until_us) then Error "squeeze: bad window"
      else if capacity < 1 then Error "squeeze: capacity must be >= 1"
      else Ok ()
  | Ctrl_delay { from_us; until_us } ->
      if window_ok ~from_us ~until_us then Ok () else Error "ctrl-delay: bad window"
  | Ctrl_corrupt { from_us; until_us; mode } ->
      if not (window_ok ~from_us ~until_us) then Error "ctrl-corrupt: bad window"
      else (
        match mode with
        | Nan -> Ok ()
        | Scale s ->
            if Float.is_finite s && s > 0.0 then Ok ()
            else Error "ctrl-corrupt: scale must be finite and > 0")
  | Kill_server { server; at_us } ->
      if server < all then Error "kill-server: bad server index"
      else if not (Float.is_finite at_us && at_us >= 0.0) then
        Error "kill-server: bad instant"
      else Ok ()
  | Recover_server { server; at_us } ->
      if server < all then Error "recover-server: bad server index"
      else if not (Float.is_finite at_us && at_us >= 0.0) then
        Error "recover-server: bad instant"
      else Ok ()

let validate t =
  let rec go = function
    | [] -> Ok ()
    | e :: rest -> ( match validate_event e with Ok () -> go rest | Error _ as e -> e)
  in
  go t.events

(* ------------------------------------------------------------------ *)
(* Canned scenarios *)

let canned_names = [ "core-stall"; "loss10"; "overload"; "ctrl-corrupt" ]

let canned name ~cores ~warmup_us ~duration_us =
  let window = duration_us -. warmup_us in
  match name with
  | "core-stall" ->
      (* Slow one small-serving core by 50x across most of the measurement
         window.  Core 1: core 0 also runs the epoch aggregation and the
         tail cores serve larges, so 1 is a plain small core under every
         plan the default workload produces. *)
      let core = min 1 (cores - 1) in
      Some
        {
          name;
          events =
            [
              Core_stall
                {
                  core;
                  from_us = warmup_us +. (0.05 *. window);
                  until_us = warmup_us +. (0.85 *. window);
                  factor = 50.0;
                };
            ];
        }
  | "loss10" ->
      (* A degraded link: 10 % loss, 10 % retransmission echoes (double
         frames), 2 % late deliveries, on every RX queue, from mid-warmup
         to the end of the run. *)
      Some
        {
          name;
          events =
            [
              Net_fault
                {
                  queue = all;
                  from_us = 0.5 *. warmup_us;
                  until_us = infinity;
                  drop = 0.10;
                  dup = 0.10;
                  reorder = 0.02;
                  reorder_max_us = 200.0;
                };
            ];
        }
  | "overload" ->
      (* Every RX ring squeezed to a small capacity for the whole run:
         arrivals beyond the cap are tail-dropped, and a configured shed
         watermark kicks in well before the cap. *)
      Some
        {
          name;
          events =
            [
              Ring_squeeze
                { queue = all; from_us = 0.0; until_us = infinity; capacity = 192 };
            ];
        }
  | "ctrl-corrupt" ->
      (* The control loop misbehaves: NaN thresholds over the first half
         of the window, then stale (frozen) statistics to the end. *)
      Some
        {
          name;
          events =
            [
              Ctrl_corrupt
                {
                  from_us = warmup_us;
                  until_us = warmup_us +. (0.5 *. window);
                  mode = Nan;
                };
              Ctrl_delay
                { from_us = warmup_us +. (0.5 *. window); until_us = infinity };
            ];
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Textual format *)

let fail line msg = Error ("line " ^ string_of_int line ^ ": " ^ msg)

let split_fields s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

let lookup pairs key = List.assoc_opt key pairs

let parse_pairs line fields =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
        match String.index_opt f '=' with
        | None -> fail line ("expected key=value, got '" ^ f ^ "'")
        | Some i ->
            let k = String.sub f 0 i in
            let v = String.sub f (i + 1) (String.length f - i - 1) in
            go ((k, v) :: acc) rest)
  in
  go [] fields

let parse_float line key pairs ~default =
  match lookup pairs key with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> fail line ("missing " ^ key ^ "="))
  | Some "end" | Some "inf" -> Ok infinity
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> fail line ("bad float for " ^ key ^ ": '" ^ v ^ "'"))

let parse_index line key pairs ~default =
  match lookup pairs key with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> fail line ("missing " ^ key ^ "="))
  | Some "*" -> Ok all
  | Some v -> (
      match int_of_string_opt v with
      | Some i when i >= 0 -> Ok i
      | Some _ | None -> fail line ("bad index for " ^ key ^ ": '" ^ v ^ "'"))

let parse_int line key pairs =
  match lookup pairs key with
  | None -> fail line ("missing " ^ key ^ "=")
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> fail line ("bad int for " ^ key ^ ": '" ^ v ^ "'"))

let ( let* ) = Result.bind

let parse_event line keyword fields =
  let* pairs = parse_pairs line fields in
  match keyword with
  | "kill-server" ->
      let* server = parse_index line "server" pairs ~default:None in
      let* at_us = parse_float line "at" pairs ~default:None in
      Ok (Kill_server { server; at_us })
  | "recover-server" ->
      let* server = parse_index line "server" pairs ~default:None in
      let* at_us = parse_float line "at" pairs ~default:None in
      Ok (Recover_server { server; at_us })
  | _ ->
  let* from_us = parse_float line "from" pairs ~default:None in
  let* until_us = parse_float line "until" pairs ~default:None in
  match keyword with
  | "core-stall" ->
      let* core = parse_index line "core" pairs ~default:None in
      let* factor = parse_float line "factor" pairs ~default:(Some infinity) in
      Ok (Core_stall { core; from_us; until_us; factor })
  | "net" ->
      let* queue = parse_index line "queue" pairs ~default:(Some all) in
      let* drop = parse_float line "drop" pairs ~default:(Some 0.0) in
      let* dup = parse_float line "dup" pairs ~default:(Some 0.0) in
      let* reorder = parse_float line "reorder" pairs ~default:(Some 0.0) in
      let* reorder_max_us =
        parse_float line "reorder-max" pairs ~default:(Some 0.0)
      in
      Ok (Net_fault { queue; from_us; until_us; drop; dup; reorder; reorder_max_us })
  | "squeeze" ->
      let* queue = parse_index line "queue" pairs ~default:(Some all) in
      let* capacity = parse_int line "capacity" pairs in
      Ok (Ring_squeeze { queue; from_us; until_us; capacity })
  | "ctrl-delay" -> Ok (Ctrl_delay { from_us; until_us })
  | "ctrl-corrupt" -> (
      match lookup pairs "mode" with
      | None | Some "nan" -> Ok (Ctrl_corrupt { from_us; until_us; mode = Nan })
      | Some v when String.length v > 1 && v.[0] = 'x' -> (
          match float_of_string_opt (String.sub v 1 (String.length v - 1)) with
          | Some s -> Ok (Ctrl_corrupt { from_us; until_us; mode = Scale s })
          | None -> fail line ("bad scale: '" ^ v ^ "'"))
      | Some v -> fail line ("bad mode: '" ^ v ^ "' (want nan or x<float>)"))
  | kw -> fail line ("unknown event '" ^ kw ^ "'")

let of_string ?(name = "custom") src =
  let lines = String.split_on_char '\n' src in
  let rec go n acc name = function
    | [] -> Ok { name; events = List.rev acc }
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match split_fields line with
        | [] -> go (n + 1) acc name rest
        | [ "plan"; plan_name ] -> go (n + 1) acc plan_name rest
        | keyword :: fields -> (
            match parse_event n keyword fields with
            | Ok ev -> go (n + 1) (ev :: acc) name rest
            | Error _ as e -> e))
  in
  let* plan = go 1 [] name lines in
  match validate plan with Ok () -> Ok plan | Error msg -> Error msg

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> of_string ~name:(Filename.remove_extension (Filename.basename path)) src
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Rendering *)

let buf_time b v =
  if v = infinity then Buffer.add_string b "end"
  else Buffer.add_string b (string_of_float v)

let buf_index b i =
  if i = all then Buffer.add_char b '*' else Buffer.add_string b (string_of_int i)

let buf_kv b k f =
  Buffer.add_char b ' ';
  Buffer.add_string b k;
  Buffer.add_char b '=';
  f b

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b ("plan " ^ t.name ^ "\n");
  List.iter
    (fun ev ->
      (match ev with
      | Core_stall { core; from_us; until_us; factor } ->
          Buffer.add_string b "core-stall";
          buf_kv b "core" (fun b -> buf_index b core);
          buf_kv b "from" (fun b -> buf_time b from_us);
          buf_kv b "until" (fun b -> buf_time b until_us);
          buf_kv b "factor" (fun b -> buf_time b factor)
      | Net_fault { queue; from_us; until_us; drop; dup; reorder; reorder_max_us } ->
          Buffer.add_string b "net";
          buf_kv b "queue" (fun b -> buf_index b queue);
          buf_kv b "from" (fun b -> buf_time b from_us);
          buf_kv b "until" (fun b -> buf_time b until_us);
          buf_kv b "drop" (fun b -> Buffer.add_string b (string_of_float drop));
          buf_kv b "dup" (fun b -> Buffer.add_string b (string_of_float dup));
          buf_kv b "reorder" (fun b -> Buffer.add_string b (string_of_float reorder));
          buf_kv b "reorder-max" (fun b ->
              Buffer.add_string b (string_of_float reorder_max_us))
      | Ring_squeeze { queue; from_us; until_us; capacity } ->
          Buffer.add_string b "squeeze";
          buf_kv b "queue" (fun b -> buf_index b queue);
          buf_kv b "from" (fun b -> buf_time b from_us);
          buf_kv b "until" (fun b -> buf_time b until_us);
          buf_kv b "capacity" (fun b -> Buffer.add_string b (string_of_int capacity))
      | Ctrl_delay { from_us; until_us } ->
          Buffer.add_string b "ctrl-delay";
          buf_kv b "from" (fun b -> buf_time b from_us);
          buf_kv b "until" (fun b -> buf_time b until_us)
      | Ctrl_corrupt { from_us; until_us; mode } ->
          Buffer.add_string b "ctrl-corrupt";
          buf_kv b "from" (fun b -> buf_time b from_us);
          buf_kv b "until" (fun b -> buf_time b until_us);
          buf_kv b "mode" (fun b ->
              match mode with
              | Nan -> Buffer.add_string b "nan"
              | Scale s -> Buffer.add_string b ("x" ^ string_of_float s))
      | Kill_server { server; at_us } ->
          Buffer.add_string b "kill-server";
          buf_kv b "server" (fun b -> buf_index b server);
          buf_kv b "at" (fun b -> buf_time b at_us)
      | Recover_server { server; at_us } ->
          Buffer.add_string b "recover-server";
          buf_kv b "server" (fun b -> buf_index b server);
          buf_kv b "at" (fun b -> buf_time b at_us));
      Buffer.add_char b '\n')
    t.events;
  Buffer.contents b
