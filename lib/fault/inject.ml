type fate = Pass | Drop | Duplicate | Reorder

(* Events compiled into parallel arrays per kind: queries scan a handful
   of windows with no allocation and no closure captures. *)
type t = {
  plan : Plan.t;
  rng : Dsim.Rng.t;
  stall_core : int array;
  stall_from : float array;
  stall_until : float array;
  stall_factor : float array;
  net_queue : int array;
  net_from : float array;
  net_until : float array;
  net_drop : float array;
  net_dup : float array;
  net_reorder : float array;
  net_reorder_max : float array;
  sq_queue : int array;
  sq_from : float array;
  sq_until : float array;
  sq_cap : int array;
  cd_from : float array;
  cd_until : float array;
  cc_from : float array;
  cc_until : float array;
  cc_nan : bool array;
  cc_scale : float array;
  dead_server : int array;
  dead_from : float array;
  dead_until : float array;
}

let create ~seed (plan : Plan.t) =
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.Inject.create: " ^ msg));
  let stalls = ref []
  and nets = ref []
  and squeezes = ref []
  and delays = ref []
  and corrupts = ref []
  and kills = ref []
  and recovers = ref [] in
  List.iter
    (fun ev ->
      match (ev : Plan.event) with
      | Plan.Core_stall { core; from_us; until_us; factor } ->
          stalls := (core, from_us, until_us, factor) :: !stalls
      | Plan.Net_fault { queue; from_us; until_us; drop; dup; reorder; reorder_max_us }
        ->
          nets := (queue, from_us, until_us, drop, dup, reorder, reorder_max_us) :: !nets
      | Plan.Ring_squeeze { queue; from_us; until_us; capacity } ->
          squeezes := (queue, from_us, until_us, capacity) :: !squeezes
      | Plan.Ctrl_delay { from_us; until_us } ->
          delays := (from_us, until_us) :: !delays
      | Plan.Ctrl_corrupt { from_us; until_us; mode } ->
          corrupts := (from_us, until_us, mode) :: !corrupts
      | Plan.Kill_server { server; at_us } -> kills := (server, at_us) :: !kills
      | Plan.Recover_server { server; at_us } ->
          recovers := (server, at_us) :: !recovers)
    plan.Plan.events;
  (* Pair each kill with the earliest matching recover after it (same
     server or a wildcard on either side); unmatched kills stay dead to
     the end of the run. *)
  let deads =
    List.rev_map
      (fun (server, at_us) ->
        let until =
          List.fold_left
            (fun acc (s, r_at) ->
              if (s = server || s = Plan.all || server = Plan.all) && r_at > at_us
              then Float.min acc r_at
              else acc)
            infinity !recovers
        in
        (server, at_us, until))
      !kills
    |> Array.of_list
  in
  let stalls = Array.of_list (List.rev !stalls) in
  let nets = Array.of_list (List.rev !nets) in
  let squeezes = Array.of_list (List.rev !squeezes) in
  let delays = Array.of_list (List.rev !delays) in
  let corrupts = Array.of_list (List.rev !corrupts) in
  {
    plan;
    rng = Dsim.Rng.create (seed lxor 0x2FA171);
    stall_core = Array.map (fun (c, _, _, _) -> c) stalls;
    stall_from = Array.map (fun (_, f, _, _) -> f) stalls;
    stall_until = Array.map (fun (_, _, u, _) -> u) stalls;
    stall_factor = Array.map (fun (_, _, _, x) -> x) stalls;
    net_queue = Array.map (fun (q, _, _, _, _, _, _) -> q) nets;
    net_from = Array.map (fun (_, f, _, _, _, _, _) -> f) nets;
    net_until = Array.map (fun (_, _, u, _, _, _, _) -> u) nets;
    net_drop = Array.map (fun (_, _, _, d, _, _, _) -> d) nets;
    net_dup = Array.map (fun (_, _, _, _, d, _, _) -> d) nets;
    net_reorder = Array.map (fun (_, _, _, _, _, r, _) -> r) nets;
    net_reorder_max = Array.map (fun (_, _, _, _, _, _, m) -> m) nets;
    sq_queue = Array.map (fun (q, _, _, _) -> q) squeezes;
    sq_from = Array.map (fun (_, f, _, _) -> f) squeezes;
    sq_until = Array.map (fun (_, _, u, _) -> u) squeezes;
    sq_cap = Array.map (fun (_, _, _, c) -> c) squeezes;
    cd_from = Array.map (fun (f, _) -> f) delays;
    cd_until = Array.map (fun (_, u) -> u) delays;
    cc_from = Array.map (fun (f, _, _) -> f) corrupts;
    cc_until = Array.map (fun (_, u, _) -> u) corrupts;
    cc_nan =
      Array.map
        (fun (_, _, mode) -> match mode with Plan.Nan -> true | Plan.Scale _ -> false)
        corrupts;
    cc_scale =
      Array.map
        (fun (_, _, mode) -> match mode with Plan.Nan -> 1.0 | Plan.Scale s -> s)
        corrupts;
    dead_server = Array.map (fun (s, _, _) -> s) deads;
    dead_from = Array.map (fun (_, f, _) -> f) deads;
    dead_until = Array.map (fun (_, _, u) -> u) deads;
  }

let plan t = t.plan
let in_window ~from_us ~until_us now = now >= from_us && now < until_us

(* The window scans below are top-level recursions over the index, not
   local [let rec]s: a local recursive function captures [t]/[now] in a
   closure allocated on every query, and these run once per event under
   fault plans — the @analyze zero-allocation proof rejects them. *)

let rec slowdown_scan t core now i acc =
  if i >= Array.length t.stall_core then acc
  else
    let acc =
      if
        (t.stall_core.(i) = core || t.stall_core.(i) = Plan.all)
        && in_window ~from_us:t.stall_from.(i) ~until_us:t.stall_until.(i) now
      then Float.max acc t.stall_factor.(i)
      else acc
    in
    slowdown_scan t core now (i + 1) acc

let slowdown t ~core ~now = slowdown_scan t core now 0 1.0

let rec stall_end_scan t core now i acc =
  if i >= Array.length t.stall_core then acc
  else
    let acc =
      if
        (t.stall_core.(i) = core || t.stall_core.(i) = Plan.all)
        && in_window ~from_us:t.stall_from.(i) ~until_us:t.stall_until.(i) now
      then Float.max acc t.stall_until.(i)
      else acc
    in
    stall_end_scan t core now (i + 1) acc

let stall_end t ~core ~now = stall_end_scan t core now 0 now

(* First matching open net window wins; plans with overlapping windows on
   the same queue are legal but only the first listed applies. *)
let rec net_window_scan t queue now i =
  if i >= Array.length t.net_queue then -1
  else if
    (t.net_queue.(i) = queue || t.net_queue.(i) = Plan.all)
    && in_window ~from_us:t.net_from.(i) ~until_us:t.net_until.(i) now
  then i
  else net_window_scan t queue now (i + 1)

let net_window t ~queue ~now = net_window_scan t queue now 0

let fate t ~queue ~now =
  let i = net_window t ~queue ~now in
  if i < 0 then Pass
  else begin
    let u = Dsim.Rng.unit_float t.rng in
    if u < t.net_drop.(i) then Drop
    else if u < t.net_drop.(i) +. t.net_dup.(i) then Duplicate
    else if u < t.net_drop.(i) +. t.net_dup.(i) +. t.net_reorder.(i) then Reorder
    else Pass
  end

let reorder_delay_us t ~queue ~now =
  let i = net_window t ~queue ~now in
  let max_us = if i < 0 then 1.0 else t.net_reorder_max.(i) in
  let u = Dsim.Rng.unit_float t.rng in
  (1.0 -. u) *. max_us

let rec rx_capacity_scan t queue now i acc =
  if i >= Array.length t.sq_queue then acc
  else
    let acc =
      if
        (t.sq_queue.(i) = queue || t.sq_queue.(i) = Plan.all)
        && in_window ~from_us:t.sq_from.(i) ~until_us:t.sq_until.(i) now
      then min acc t.sq_cap.(i)
      else acc
    in
    rx_capacity_scan t queue now (i + 1) acc

let rx_capacity t ~queue ~now = rx_capacity_scan t queue now 0 max_int

let rec ctrl_delayed_scan t now i =
  if i >= Array.length t.cd_from then false
  else if in_window ~from_us:t.cd_from.(i) ~until_us:t.cd_until.(i) now then
    true
  else ctrl_delayed_scan t now (i + 1)

let ctrl_delayed t ~now = ctrl_delayed_scan t now 0

let rec corrupt_scan t now i acc =
  if i >= Array.length t.cc_from then acc
  else
    let acc =
      if in_window ~from_us:t.cc_from.(i) ~until_us:t.cc_until.(i) now then
        if t.cc_nan.(i) then Float.nan else acc *. t.cc_scale.(i)
      else acc
    in
    corrupt_scan t now (i + 1) acc

let corrupt_threshold t ~now threshold = corrupt_scan t now 0 threshold

let rec dead_scan t server now i =
  if i >= Array.length t.dead_server then false
  else if
    (t.dead_server.(i) = server || t.dead_server.(i) = Plan.all)
    && in_window ~from_us:t.dead_from.(i) ~until_us:t.dead_until.(i) now
  then true
  else dead_scan t server now (i + 1)

let server_dead t ~server ~now = dead_scan t server now 0

let dead_windows t =
  Array.to_list
    (Array.init (Array.length t.dead_server) (fun i ->
         (t.dead_server.(i), t.dead_from.(i), t.dead_until.(i))))
