(** Seeded fault injector: the runtime form of a {!Plan}.

    [create ~seed plan] compiles the plan's events into flat arrays so
    every query below is a linear scan over a handful of windows — no
    allocation, safe on the simulator's per-request hot path.  All
    randomness (packet fates, reorder delays) comes from the injector's
    own SplitMix stream: attaching an injector perturbs none of the
    engine's RNG streams, and the same [(plan, seed)] always draws the
    same fates. *)

type t

type fate =
  | Pass
  | Drop  (** the NIC loses the request *)
  | Duplicate  (** frames delivered twice (retransmission echo) *)
  | Reorder  (** delivered late; draw the delay with {!reorder_delay_us} *)

val create : seed:int -> Plan.t -> t
(** Raises [Invalid_argument] when the plan does not {!Plan.validate}. *)

val plan : t -> Plan.t

val slowdown : t -> core:int -> now:float -> float
(** CPU-time multiplier for work started on [core] at [now]: [1.0] when
    healthy, [infinity] inside a full-stall window. *)

val stall_end : t -> core:int -> now:float -> float
(** End of the stall window covering [now] on [core] ([now] itself when
    none): a fully stalled core resumes its in-progress work here. *)

val fate : t -> queue:int -> now:float -> fate
(** Draw the delivery fate for a request arriving on [queue].  Consumes
    one random draw only while a matching net window is open. *)

val reorder_delay_us : t -> queue:int -> now:float -> float
(** Extra delivery delay for a {!Reorder} fate, uniform in
    [(0, reorder_max_us]] of the open window. *)

val rx_capacity : t -> queue:int -> now:float -> int
(** Effective RX ring capacity ([max_int] when unconstrained). *)

val ctrl_delayed : t -> now:float -> bool
(** Whether the control loop's statistics are stale at [now]. *)

val corrupt_threshold : t -> now:float -> float -> float
(** Corrupt a computed control threshold per the open window (identity
    when none). *)

val server_dead : t -> server:int -> now:float -> bool
(** Whether a [kill-server] window covers [now] for [server]: the window
    opens at the kill instant and closes at the earliest matching
    [recover-server] after it (never, when unmatched).  Allocation-free
    scan, safe per-arrival. *)

val dead_windows : t -> (int * float * float) list
(** Compiled [(server, kill_us, recover_us)] windows, [recover_us =
    infinity] when the kill is unmatched.  Cold-path accessor for
    schedulers that want the instants as events. *)
