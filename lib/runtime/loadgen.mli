(** Load generation against the native {!Server}.

    A windowed closed-loop client: keep up to [concurrency] requests
    outstanding, match replies to requests by id, and record end-to-end
    latencies.  Runs in the calling domain. *)

val populate : Kvstore.Store.t -> Workload.Dataset.t -> unit
(** Insert every dataset key with a real value of its assigned size.
    Use dataset specs with a modest [s_large_max] (e.g. 64 KB) and key
    count so the value arena fits in memory. *)

type result = {
  completed : int;
  not_found : int;          (** replies with status Not_found (should be 0
                                after {!populate}) *)
  latencies : Stats.Float_vec.t; (** µs, one per completed request *)
  rejected_submits : int;   (** RX-ring-full backpressure events *)
}

val run :
  ?concurrency:int ->
  ?ttl_s:float ->
  ?scan_ratio:float ->
  ?scan_len:int ->
  server:Server.t ->
  dataset:Workload.Dataset.t ->
  requests:int ->
  seed:int ->
  unit ->
  result
(** [run ~server ~dataset ~requests ~seed ()] issues [requests] operations
    drawn from the dataset's spec (GET:PUT mix, zipf popularity, size
    classes) and waits for all replies.  [concurrency] defaults to 64.
    [ttl_s] attaches a TTL to every PUT; [scan_ratio] diverts that
    fraction of draws to SCANs of [scan_len] entries (default 16). *)

val run_concurrent :
  ?clients:int ->
  ?concurrency:int ->
  server:Server.t ->
  dataset:Workload.Dataset.t ->
  requests_per_client:int ->
  seed:int ->
  unit ->
  result
(** Multiple client domains driving the server at once — the in-process
    analogue of the paper's 7 client machines.  Request ids carry the
    client index in their top bits; a collector domain demultiplexes the
    shared reply stream back to per-client mailboxes.  Results are
    aggregated across clients.  [clients] defaults to 3. *)
