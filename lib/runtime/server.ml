let log_src = Logs.Src.create "minos.runtime" ~doc:"Native Minos server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Size_aware | Keyhash

type config = {
  cores : int;
  batch : int;
  epoch_s : float;
  alpha : float;
  percentile : float;
  cost_fn : Kvserver.Cost_model.cost_fn;
  mode : mode;
  ring_capacity : int;
  idle_backoff_s : float;
  shed_watermark : int option;
  clamp_threshold : float option;
  expiry_sweep_s : float;
  fault : Fault.Inject.t option;
}

let default_config =
  {
    cores = 4;
    batch = 32;
    epoch_s = 0.05;
    alpha = 0.9;
    percentile = 0.99;
    cost_fn = Kvserver.Cost_model.Packets;
    mode = Size_aware;
    ring_capacity = 4096;
    idle_backoff_s = 0.0002;
    shed_watermark = None;
    clamp_threshold = None;
    expiry_sweep_s = 0.0;
    fault = None;
  }

type worker = {
  id : int;
  rx : Message.request Netsim.Ring.t;
  swq : Message.request Netsim.Ring.t;
  hist : Stats.Log_histogram.t Atomic.t;
  served : int Atomic.t;
  busy_ns : int Atomic.t;
      (* cumulative busy time, only maintained while a timeline samples *)
}

type t = {
  cfg : config;
  store : Kvstore.Store.t;
  workers : worker array;
  replies : Message.reply Netsim.Ring.t;
  stash : Message.reply Queue.t; (* replies drained during stop *)
  stash_lock : Mutex.t;
  plan : Kvserver.Control.plan Atomic.t;
  handoffs : int Atomic.t;
  epochs : int Atomic.t;
  shed_small : int Atomic.t;
  shed_large : int Atomic.t;
  rx_rejected : int Atomic.t;
  ctrl_stale : int Atomic.t;
  (* Fault-clock outputs, sampled ~1 ms by a dedicated thread so workers
     read plain atomics instead of scanning the plan's windows. *)
  stall_us : int Atomic.t array; (* per-core extra sleep per iteration *)
  rx_cap : int Atomic.t array; (* per-core effective RX admission cap *)
  ctrl_delayed : bool Atomic.t;
  started_ns : int64; (* monotonic origin of the fault-plan clock *)
  mutable last_good_threshold : float;
  in_flight : int Atomic.t;
  accepting : bool Atomic.t;
  stop_flag : bool Atomic.t;
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
  obs : Obs.Instrument.t option;
}

(* ------------------------------------------------------------------ *)
(* Flight-recorder hooks.  The simulator samples from an RNG stream in
   arrival order; here requests race in from many domains, so sampling
   hashes the request id instead ([Recorder.try_sample_id]) — equally
   deterministic for a fixed id sequence.  Every hook is a conditional
   store into preallocated arrays; none allocates. *)

let now_us () = Unix.gettimeofday () *. 1.0e6

let obs_mark t field (req : Message.request) =
  if req.Message.obs_slot >= 0 then
    match t.obs with
    | None -> ()
    | Some o ->
        Obs.Recorder.set_ts o.Obs.Instrument.recorder req.Message.obs_slot field
          (now_us ())

let obs_sample_submit t (req : Message.request) ~ring_idx =
  match t.obs with
  | None -> ()
  | Some o ->
      let r = o.Obs.Instrument.recorder in
      let slot = Obs.Recorder.try_sample_id r ~id:(Int64.to_int req.Message.id) in
      if slot >= 0 then begin
        req.Message.obs_slot <- slot;
        Obs.Recorder.set_ts r slot Obs.Span.ts_rx_enq (now_us ());
        Obs.Recorder.set_meta r slot Obs.Span.meta_seq (Int64.to_int req.Message.id);
        Obs.Recorder.set_meta r slot Obs.Span.meta_rx_queue ring_idx;
        (* Class and size are unknown until the server looks the item up;
           [classify_and_serve] refines both. *)
        Obs.Recorder.set_meta r slot Obs.Span.meta_class Obs.Span.class_small;
        Obs.Recorder.set_meta r slot Obs.Span.meta_op
          (match req.Message.op with
          | Message.Get -> Obs.Span.op_get
          | Message.Scan _ -> Obs.Span.op_scan
          | Message.Put _ | Message.Put_ttl _ | Message.Delete -> Obs.Span.op_put);
        Obs.Recorder.set_meta r slot Obs.Span.meta_size
          (match req.Message.op with
          | Message.Put v | Message.Put_ttl (v, _) -> Bytes.length v
          | Message.Get | Message.Delete | Message.Scan _ -> 0)
      end

let fresh_hist () =
  Stats.Log_histogram.create ~buckets_per_decade:32 ~min_value:1.0 ~max_value:2.0e6 ()

(* Stateless uniform spreading for GET dispatch: mix the request id so any
   domain can dispatch without a shared RNG. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 29)) 0xC4CEB9FE1A85EC53L) in
  Int64.(logxor z (shift_right_logical z 32))

let key_master t key =
  Kvstore.Keyhash.partition_of (Kvstore.Keyhash.hash key) ~bits:30 mod t.cfg.cores

let dispatch_ring t (req : Message.request) =
  match req.Message.op with
  | Message.Get | Message.Scan _ ->
      Int64.to_int (Int64.rem (mix64 req.Message.id) (Int64.of_int t.cfg.cores)) |> abs
  | Message.Put _ | Message.Put_ttl _ | Message.Delete -> key_master t req.Message.key

let submit t req =
  if not (Atomic.get t.accepting) then false
  else begin
    let ring_idx = dispatch_ring t req in
    (* A ring-capacity squeeze lowers the effective RX depth below the
       ring's physical capacity; beyond it the "NIC" tail-drops. *)
    if Netsim.Ring.length t.workers.(ring_idx).rx >= Atomic.get t.rx_cap.(ring_idx)
    then begin
      Atomic.incr t.rx_rejected;
      false
    end
    else begin
      obs_sample_submit t req ~ring_idx;
      if Netsim.Ring.try_push t.workers.(ring_idx).rx req then begin
        Atomic.incr t.in_flight;
        true
      end
      else begin
        Atomic.incr t.rx_rejected;
        false
      end
    end
  end

let store_of t = t.store

let poll_reply t =
  match Netsim.Ring.try_pop t.replies with
  | Some _ as r -> r
  | None ->
      Mutex.lock t.stash_lock;
      let r = Queue.take_opt t.stash in
      Mutex.unlock t.stash_lock;
      r

(* ------------------------------------------------------------------ *)
(* Request execution on a worker *)

let push_reply t reply =
  (* Spin with backoff: the ring is large and clients are expected to
     drain; during [stop] the stopping thread drains for them. *)
  while not (Netsim.Ring.try_push t.replies reply) do
    Domain.cpu_relax ()
  done;
  Atomic.decr t.in_flight

let serve t (w : worker) (req : Message.request) =
  obs_mark t Obs.Span.ts_service_start req;
  (if req.Message.obs_slot >= 0 then
     match t.obs with
     | None -> ()
     | Some o ->
         let r = o.Obs.Instrument.recorder in
         Obs.Recorder.set_meta r req.Message.obs_slot Obs.Span.meta_core w.id;
         Obs.Recorder.set_meta r req.Message.obs_slot Obs.Span.meta_tx_queue w.id);
  let reply_with status value value_size =
    obs_mark t Obs.Span.ts_service_end req;
    push_reply t
      {
        Message.request_id = req.Message.id;
        status;
        value;
        value_size;
        served_by = w.id;
        completed_at = Unix.gettimeofday ();
      };
    (* The reply sits on the ring until the client drains it; its push is
       the closest native analogue of the reply leaving the wire. *)
    obs_mark t Obs.Span.ts_tx_done req;
    obs_mark t Obs.Span.ts_end req
  in
  (match req.Message.op with
  | Message.Get -> (
      let now = Unix.gettimeofday () in
      match Kvstore.Store.get ~now t.store req.Message.key with
      | Some value -> reply_with Message.Ok (Some value) (Bytes.length value)
      | None ->
          (* Lazy expiry: a miss may be a lapsed slot; reclaim it now so
             memory is not held until the background sweep passes. *)
          let master = key_master t req.Message.key in
          let guard = if master = w.id then `Crew else `Lock in
          ignore (Kvstore.Store.expire t.store ~guard ~now req.Message.key);
          reply_with Message.Not_found None 0)
  | Message.Put value ->
      let master = key_master t req.Message.key in
      (* CREW: the master core writes lock-free; anyone else locks. *)
      let guard = if master = w.id then `Crew else `Lock in
      Kvstore.Store.put t.store ~guard req.Message.key value;
      reply_with Message.Ok None (Bytes.length value)
  | Message.Put_ttl (value, ttl_s) ->
      let master = key_master t req.Message.key in
      let guard = if master = w.id then `Crew else `Lock in
      Kvstore.Store.put
        ~expires_at:(Unix.gettimeofday () +. ttl_s)
        t.store ~guard req.Message.key value;
      reply_with Message.Ok None (Bytes.length value)
  | Message.Scan count ->
      let now = Unix.gettimeofday () in
      let total = ref 0 in
      let visited =
        Kvstore.Store.scan ~now t.store ~start:req.Message.key ~count (fun _ len ->
            total := !total + len)
      in
      reply_with
        (if visited > 0 then Message.Ok else Message.Not_found)
        None !total
  | Message.Delete ->
      let master = key_master t req.Message.key in
      let guard = if master = w.id then `Crew else `Lock in
      let existed = Kvstore.Store.delete t.store ~guard req.Message.key in
      reply_with (if existed then Message.Ok else Message.Not_found) None 0);
  Atomic.incr w.served

(* Size of the item a request touches: the stored size for GETs (the
   lookup the paper's small cores perform), the carried size for PUTs. *)
let request_item_size t (req : Message.request) =
  match req.Message.op with
  | Message.Put value | Message.Put_ttl (value, _) -> Bytes.length value
  | Message.Delete -> 0 (* always "small": frees, never copies *)
  | Message.Get ->
      Option.value ~default:0 (Kvstore.Store.size_of t.store req.Message.key)
  | Message.Scan count ->
      (* The size-aware classifier needs the range's total bytes — the
         same ordered walk the serve path performs, minus the copies. *)
      let total = ref 0 in
      ignore
        (Kvstore.Store.scan t.store ~start:req.Message.key ~count (fun _ len ->
             total := !total + len));
      !total

(* Graceful degradation (shed-large-first): above the watermark the
   worker answers [Overloaded] instead of executing.  Large requests shed
   first; small ones only under 4x the backlog, so the 99% of cheap
   requests keep their latency while the expensive tail absorbs the
   shortfall.  The reply still flows to the client, so in-flight
   accounting stays exact and the client backs off. *)
let try_shed t (w : worker) ~large =
  match t.cfg.shed_watermark with
  | None -> false
  | Some wm ->
      let backlog = Netsim.Ring.length w.rx + Netsim.Ring.length w.swq in
      let limit = if large then wm else 4 * wm in
      if backlog > limit then begin
        Atomic.incr (if large then t.shed_large else t.shed_small);
        true
      end
      else false

let shed_reply t (w : worker) (req : Message.request) =
  push_reply t
    {
      Message.request_id = req.Message.id;
      status = Message.Overloaded;
      value = None;
      value_size = 0;
      served_by = w.id;
      completed_at = Unix.gettimeofday ();
    }

let classify_and_serve t (w : worker) plan req =
  let item_size = request_item_size t req in
  let size = float_of_int item_size in
  Stats.Log_histogram.record (Atomic.get w.hist) size;
  obs_mark t Obs.Span.ts_classify req;
  (if req.Message.obs_slot >= 0 then
     match t.obs with
     | None -> ()
     | Some o ->
         Obs.Recorder.set_meta o.Obs.Instrument.recorder req.Message.obs_slot
           Obs.Span.meta_size item_size);
  match Kvserver.Control.route plan size with
  | None -> if try_shed t w ~large:false then shed_reply t w req else serve t w req
  | Some _ when try_shed t w ~large:true -> shed_reply t w req
  | Some j ->
      let target =
        t.workers.(Kvserver.Control.large_core_id plan ~cores:t.cfg.cores j)
      in
      (if req.Message.obs_slot >= 0 then
         match t.obs with
         | None -> ()
         | Some o ->
             Obs.Recorder.set_meta o.Obs.Instrument.recorder req.Message.obs_slot
               Obs.Span.meta_class Obs.Span.class_large);
      if target.id = w.id then serve t w req
      else if Netsim.Ring.try_push target.swq req then begin
        obs_mark t Obs.Span.ts_handoff_enq req;
        Atomic.incr t.handoffs
      end
      else
        (* Software queue full: serve in place rather than block or drop —
           backpressure degrades to size-unaware behaviour momentarily. *)
        serve t w req

let drain_batch ring limit =
  (* [pop_exn] rather than [try_pop]: this runs once per request per
     scheduling iteration, and the exception variant skips the [Some]
     allocation on every drained element. *)
  let rec go acc n =
    if n >= limit then List.rev acc
    else
      match Netsim.Ring.pop_exn ring with
      | r -> go (r :: acc) (n + 1)
      | exception Netsim.Ring.Empty -> List.rev acc
  in
  go [] 0

(* One scheduling iteration; returns the number of requests handled. *)
let size_aware_iteration t (w : worker) =
  let plan = Atomic.get t.plan in
  if Kvserver.Control.is_small_core plan w.id then begin
    (* Small core: drain own RX plus a fair share of the large cores'. *)
    let batch = drain_batch w.rx t.cfg.batch in
    let ns = max 1 plan.Kvserver.Control.n_small in
    let share = (t.cfg.batch + ns - 1) / ns in
    let extra =
      List.concat
        (List.init (t.cfg.cores - plan.Kvserver.Control.n_small) (fun i ->
             drain_batch t.workers.(plan.Kvserver.Control.n_small + i).rx share))
    in
    (* Standby large duty: serve anything already in our software queue
       first. *)
    let queued = drain_batch w.swq t.cfg.batch in
    List.iter (obs_mark t Obs.Span.ts_handoff_deq) queued;
    List.iter (obs_mark t Obs.Span.ts_poll) batch;
    List.iter (obs_mark t Obs.Span.ts_poll) extra;
    List.iter (serve t w) queued;
    List.iter (classify_and_serve t w plan) batch;
    List.iter (classify_and_serve t w plan) extra;
    List.length batch + List.length extra + List.length queued
  end
  else begin
    (* Large core: serve the software queue; leftover batch items from a
       role change are classified rather than stranded. *)
    let queued = drain_batch w.swq t.cfg.batch in
    List.iter (obs_mark t Obs.Span.ts_handoff_deq) queued;
    List.iter (serve t w) queued;
    let leftover = drain_batch w.rx 0 in
    List.iter (obs_mark t Obs.Span.ts_poll) leftover;
    List.iter (classify_and_serve t w plan) leftover;
    List.length queued
  end

let keyhash_iteration t (w : worker) =
  let batch = drain_batch w.rx t.cfg.batch in
  List.iter (obs_mark t Obs.Span.ts_poll) batch;
  List.iter (serve t w) batch;
  List.length batch

(* ------------------------------------------------------------------ *)
(* Control loop: run by core 0 between batches (as in the paper). *)

let fault_now_us t =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.started_ns) /. 1.0e3

let controller_tick t ~smoothed =
  (* A stat-delay fault starves the controller of fresh histograms; the
     hardened loop skips the epoch (keeping the last good plan) rather
     than recompute from a stale or empty merge. *)
  if Atomic.get t.ctrl_delayed then Atomic.incr t.ctrl_stale
  else begin
  let merged = fresh_hist () in
  Array.iter
    (fun w ->
      let h = Atomic.exchange w.hist (fresh_hist ()) in
      Stats.Log_histogram.merge_into ~dst:merged h)
    t.workers;
  if not (Stats.Log_histogram.is_empty merged) then begin
    let s =
      match !smoothed with
      | None -> merged
      | Some prev -> Stats.Log_histogram.smooth ~prev ~current:merged ~alpha:t.cfg.alpha
    in
    smoothed := Some s;
    (* Same quantile [Control.compute] would take, surfaced so a
       corruption fault can mangle it and [Control.sanitize] can reject
       NaN / clamp runaway movement against the last good value. *)
    let raw = Stats.Log_histogram.quantile s t.cfg.percentile in
    let raw =
      match t.cfg.fault with
      | None -> raw
      | Some f -> Fault.Inject.corrupt_threshold f ~now:(fault_now_us t) raw
    in
    let threshold =
      match t.cfg.clamp_threshold with
      | None -> raw
      | Some _ ->
          Kvserver.Control.sanitize ~last_good:t.last_good_threshold
            ~clamp:t.cfg.clamp_threshold raw
    in
    if Float.is_finite threshold && threshold > 0.0 then
      t.last_good_threshold <- threshold;
    let plan =
      Kvserver.Control.compute ~cores:t.cfg.cores ~cost_fn:t.cfg.cost_fn
        ~percentile:t.cfg.percentile ~threshold_override:threshold s
    in
    let old = Atomic.exchange t.plan plan in
    if
      old.Kvserver.Control.n_large <> plan.Kvserver.Control.n_large
      || abs_float (old.Kvserver.Control.threshold -. plan.Kvserver.Control.threshold)
         > 0.05 *. plan.Kvserver.Control.threshold
    then
      Log.info (fun m ->
          m "epoch %d: threshold %.0fB, %d small + %d large cores"
            (Atomic.get t.epochs + 1)
            plan.Kvserver.Control.threshold plan.Kvserver.Control.n_small
            plan.Kvserver.Control.n_large);
    (match t.obs with
    | None -> ()
    | Some o ->
        (* Only worker 0 runs the controller, so the log needs no lock. *)
        Obs.Decision_log.record o.Obs.Instrument.decisions ~now:(now_us ())
          ~threshold:plan.Kvserver.Control.threshold
          ~n_small:plan.Kvserver.Control.n_small
          ~n_large:plan.Kvserver.Control.n_large ());
    Atomic.incr t.epochs
  end
  end

let timeline_tick t tl ~now =
  let s = Obs.Timeline.start_sample tl ~now:(now *. 1.0e6) in
  if s >= 0 then
    Array.iter
      (fun (w : worker) ->
        Obs.Timeline.set_core tl ~sample:s ~core:w.id
          ~depth:(Netsim.Ring.length w.rx)
          ~busy_us:(float_of_int (Atomic.get w.busy_ns) /. 1.0e3))
      t.workers

let worker_loop t (w : worker) =
  let smoothed = ref None in
  let last_epoch = ref (Unix.gettimeofday ()) in
  let last_tl = ref !last_epoch in
  let idle_streak = ref 0 in
  (* Busy accounting (per-iteration clock reads) only when a timeline is
     attached; the uninstrumented loop keeps its single clock read on
     worker 0. *)
  let tl =
    match t.obs with
    | Some { Obs.Instrument.timeline = Some tl; _ } -> Some tl
    | Some _ | None -> None
  in
  while not (Atomic.get t.stop_flag) do
    let iter_start =
      match tl with Some _ -> Unix.gettimeofday () | None -> 0.0
    in
    let handled =
      match t.cfg.mode with
      | Size_aware -> size_aware_iteration t w
      | Keyhash -> keyhash_iteration t w
    in
    (match tl with
    | Some tl ->
        let now = Unix.gettimeofday () in
        if handled > 0 then
          ignore
            (Atomic.fetch_and_add w.busy_ns
               (int_of_float ((now -. iter_start) *. 1.0e9)));
        if w.id = 0 && now -. !last_tl >= Obs.Timeline.interval_us tl /. 1.0e6
        then begin
          last_tl := now;
          timeline_tick t tl ~now
        end
    | None -> ());
    if w.id = 0 && t.cfg.mode = Size_aware then begin
      let now = Unix.gettimeofday () in
      if now -. !last_epoch >= t.cfg.epoch_s then begin
        last_epoch := now;
        controller_tick t ~smoothed
      end
    end;
    let stall = Atomic.get t.stall_us.(w.id) in
    if stall > 0 then Unix.sleepf (float_of_int stall /. 1.0e6);
    if handled = 0 then begin
      incr idle_streak;
      if !idle_streak > 64 then begin
        idle_streak := 0;
        Unix.sleepf t.cfg.idle_backoff_s
      end
      else Domain.cpu_relax ()
    end
    else idle_streak := 0
  done

(* ------------------------------------------------------------------ *)

(* The fault clock: one posix thread re-samples the plan's windows every
   millisecond into plain atomics.  Workers pay one atomic load per
   iteration whether or not a plan is loaded; all window scanning happens
   here, off the data path.  A slowdown factor f becomes an extra
   (f - 1) x 100 us sleep per scheduling iteration (capped at 5 ms), a
   serviceable stand-in for a core running f times slower. *)
let fault_clock_loop t f =
  while not (Atomic.get t.stop_flag) do
    let now = fault_now_us t in
    for c = 0 to t.cfg.cores - 1 do
      let factor = Fault.Inject.slowdown f ~core:c ~now in
      let stall =
        if factor > 1.0 then
          int_of_float (Float.min 5000.0 ((factor -. 1.0) *. 100.0))
        else 0
      in
      Atomic.set t.stall_us.(c) stall;
      Atomic.set t.rx_cap.(c)
        (min t.cfg.ring_capacity (Fault.Inject.rx_capacity f ~queue:c ~now))
    done;
    Atomic.set t.ctrl_delayed (Fault.Inject.ctrl_delayed f ~now);
    Thread.delay 0.001
  done

(* Background expiry: one posix thread walks the store every sweep
   period, reclaiming lapsed slots — the eager companion to the read
   path's lazy expiry, same split as the DES engine's wheel-scheduled
   sweep event. *)
let expiry_sweep_loop t =
  while not (Atomic.get t.stop_flag) do
    ignore (Kvstore.Store.expire_sweep t.store ~now:(Unix.gettimeofday ()));
    Thread.delay t.cfg.expiry_sweep_s
  done

let start ?obs ?(config = default_config) store =
  if config.cores < 2 then invalid_arg "Server.start: need at least 2 cores";
  if config.batch < 1 then invalid_arg "Server.start: batch must be >= 1";
  if config.expiry_sweep_s < 0.0 then
    invalid_arg "Server.start: expiry_sweep_s must be >= 0";
  (* SCANs walk the sorted key index; build it before workers serve. *)
  Kvstore.Store.ensure_ordered store;
  let t =
    {
      cfg = config;
      store;
      workers =
        Array.init config.cores (fun id ->
            {
              id;
              rx = Netsim.Ring.create ~capacity:config.ring_capacity;
              swq = Netsim.Ring.create ~capacity:config.ring_capacity;
              hist = Atomic.make (fresh_hist ());
              served = Atomic.make 0;
              busy_ns = Atomic.make 0;
            });
      replies = Netsim.Ring.create ~capacity:65536;
      stash = Queue.create ();
      stash_lock = Mutex.create ();
      plan = Atomic.make (Kvserver.Control.initial ~cores:config.cores);
      handoffs = Atomic.make 0;
      epochs = Atomic.make 0;
      shed_small = Atomic.make 0;
      shed_large = Atomic.make 0;
      rx_rejected = Atomic.make 0;
      ctrl_stale = Atomic.make 0;
      stall_us = Array.init config.cores (fun _ -> Atomic.make 0);
      rx_cap = Array.init config.cores (fun _ -> Atomic.make config.ring_capacity);
      ctrl_delayed = Atomic.make false;
      started_ns = Monotonic_clock.now ();
      last_good_threshold = infinity;
      in_flight = Atomic.make 0;
      accepting = Atomic.make true;
      stop_flag = Atomic.make false;
      domains = [];
      stopped = false;
      obs;
    }
  in
  Log.info (fun m ->
      m "starting: %d worker domains, batch %d, %s mode" config.cores config.batch
        (match config.mode with Size_aware -> "size-aware" | Keyhash -> "keyhash"));
  t.domains <-
    List.init config.cores (fun i ->
        Domain.spawn (fun () -> worker_loop t t.workers.(i)));
  (match config.fault with
  | Some f -> ignore (Thread.create (fun () -> fault_clock_loop t f) ())
  | None -> ());
  if config.expiry_sweep_s > 0.0 then
    ignore (Thread.create (fun () -> expiry_sweep_loop t) ());
  t

type stats = {
  served : int array;
  handoffs : int;
  threshold : float;
  n_small : int;
  n_large : int;
  epochs : int;
  shed_small : int;
  shed_large : int;
  rx_rejected : int;
  ctrl_stale : int;
  expired : int;
}

let stats (t : t) =
  let plan = Atomic.get t.plan in
  {
    served = Array.map (fun (w : worker) -> Atomic.get w.served) t.workers;
    handoffs = Atomic.get t.handoffs;
    threshold = plan.Kvserver.Control.threshold;
    n_small = plan.Kvserver.Control.n_small;
    n_large = plan.Kvserver.Control.n_large;
    epochs = Atomic.get t.epochs;
    shed_small = Atomic.get t.shed_small;
    shed_large = Atomic.get t.shed_large;
    rx_rejected = Atomic.get t.rx_rejected;
    ctrl_stale = Atomic.get t.ctrl_stale;
    expired = (Kvstore.Store.stats t.store).Kvstore.Store.expired;
  }

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.accepting false;
    (* Drain: keep emptying the reply ring (on the clients' behalf) until
       every accepted request has been answered. *)
    while Atomic.get t.in_flight > 0 do
      (match Netsim.Ring.try_pop t.replies with
      | Some r ->
          Mutex.lock t.stash_lock;
          Queue.add r t.stash;
          Mutex.unlock t.stash_lock
      | None -> ());
      Domain.cpu_relax ()
    done;
    Atomic.set t.stop_flag true;
    List.iter Domain.join t.domains;
    t.domains <- [];
    Log.info (fun m ->
        m "stopped: %d requests served, %d handoffs"
          (Array.fold_left (fun acc (w : worker) -> acc + Atomic.get w.served) 0 t.workers)
          (Atomic.get t.handoffs))
  end
