type op = Get | Put of bytes | Put_ttl of bytes * float | Delete | Scan of int

type request = {
  id : int64;
  op : op;
  key : string;
  submitted_at : float;
  mutable obs_slot : int;
}

type status = Ok | Not_found | Overloaded

type reply = {
  request_id : int64;
  status : status;
  value : bytes option;
  value_size : int;
  served_by : int;
  completed_at : float;
}

let latency_us req rep = 1.0e6 *. (rep.completed_at -. req.submitted_at)
