(** Native multicore Minos server.

    This is the paper's data plane running on real OCaml 5 domains rather
    than in the simulator: worker domains poll lock-free RX rings in
    batches, classify requests by looking up the item size against the
    current threshold, serve small requests in place, and hand large ones
    over software rings to the large pool; core 0 runs the §3 control loop
    (merge per-core size histograms, EMA-smooth, re-derive the threshold
    and the core split) once per epoch.

    Differences from the paper's C/DPDK implementation are confined to the
    transport (in-process rings or kernel UDP instead of NIC queues) and
    the clock; the sharding logic, CREW/locking discipline, batching and
    adaptation are the real thing.  On a single-CPU host the domains
    time-slice, so absolute latencies are not meaningful — functional
    behaviour (classification, adaptation, exactly-once completion) is
    what this runtime demonstrates, and what its tests assert.

    Typical use:
    {[
      let store = Kvstore.Store.create () in
      (* populate store ... *)
      let server = Server.start ~config store in
      Server.submit server request;            (* from any domain *)
      let reply = (* poll *) Server.poll_reply server in
      Server.stop server
    ]} *)

type mode =
  | Size_aware  (** Minos: small/large pools + control loop *)
  | Keyhash     (** HKH baseline: every core serves its own ring only *)

type config = {
  cores : int;            (** worker domains (>= 2) *)
  batch : int;            (** ring poll batch *)
  epoch_s : float;        (** control-loop period, seconds *)
  alpha : float;          (** histogram smoothing (paper: 0.9) *)
  percentile : float;     (** threshold percentile (0.99) *)
  cost_fn : Kvserver.Cost_model.cost_fn;
  mode : mode;
  ring_capacity : int;    (** per-ring slots, power of two *)
  idle_backoff_s : float; (** sleep after repeated empty polls, so spinning
                              workers behave on machines with fewer
                              hardware threads than workers *)
  shed_watermark : int option;
      (** admission-control watermark on a worker's backlog (RX + software
          queue): above it, large requests are answered [Overloaded]
          instead of executed; small requests only shed above 4x the
          watermark.  [None] (default) disables shedding. *)
  clamp_threshold : float option;
      (** harden the control loop: reject NaN / non-positive thresholds
          and clamp per-epoch movement to this fraction of the last good
          value ({!Kvserver.Control.sanitize}).  [None] keeps the
          unguarded paper behaviour. *)
  expiry_sweep_s : float;
      (** period of the background expiry-sweep thread that reclaims
          TTL-lapsed items ({!Kvstore.Store.expire_sweep}); [0.0]
          (default) disables it — lapsed items are then reclaimed only
          lazily when a read misses them. *)
  fault : Fault.Inject.t option;
      (** deterministic fault plan to run the server under: a fault-clock
          thread samples the plan's windows ~every millisecond into
          per-core flags — core slowdowns become per-iteration stalls,
          ring squeezes lower the effective RX admission cap, and control
          stat-delay windows make the controller skip epochs. *)
}

val default_config : config
(** 4 cores, batch 32, 50 ms epochs, α = 0.9, p99, packets cost,
    size-aware mode. *)

type t

val start : ?obs:Obs.Instrument.t -> ?config:config -> Kvstore.Store.t -> t
(** Spawn the worker domains and the dispatcher state.  The store must
    outlive the server.  [obs] attaches a flight recorder: {!submit}
    samples requests by a hash of their id ({!Obs.Recorder.try_sample_id}
    — deterministic per id with no cross-domain RNG), workers record the
    poll / classify / handoff / service / reply stages with wall-clock
    microsecond timestamps, worker 0 appends one {!Obs.Decision_log}
    entry per control epoch and, when the instrument carries a timeline,
    samples per-core RX depth and busy time.  Export (e.g. with
    {!Obs.Chrome_trace}) only after {!stop}. *)

val submit : t -> Message.request -> bool
(** Hardware-dispatch stand-in: route the request to an RX ring (random
    for GETs/SCANs, keyhash for PUTs) — callable from any domain.  [false] when
    the chosen ring is full or squeezed below its capacity by a fault
    plan (client should back off and retry). *)

val poll_reply : t -> Message.reply option
(** Collect one completed reply, if any (multi-consumer safe). *)

val store_of : t -> Kvstore.Store.t
(** The store this server serves (for front ends that need direct access,
    e.g. for administrative inspection). *)

type stats = {
  served : int array;            (** per-core completed requests *)
  handoffs : int;                (** small->large ring transfers *)
  threshold : float;             (** current size threshold *)
  n_small : int;
  n_large : int;
  epochs : int;                  (** control-loop executions *)
  shed_small : int;              (** small requests answered [Overloaded] *)
  shed_large : int;              (** large requests answered [Overloaded] *)
  rx_rejected : int;             (** submissions refused at the RX ring
                                     (full ring or capacity squeeze) *)
  ctrl_stale : int;              (** control epochs skipped because the
                                     stat pipeline was delayed by a fault *)
  expired : int;                 (** TTL-lapsed slots reclaimed (lazily on
                                     read or by the sweep thread) *)
}

val stats : t -> stats

val stop : t -> unit
(** Drain in-flight work, stop the control loop and join all domains.
    Idempotent. *)
