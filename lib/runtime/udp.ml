let loopback = Unix.inet_addr_loopback

let max_datagram = Netsim.Frame.max_udp_payload

type pending = { addr : Unix.sockaddr; queue : int; client_ts : int64 }

type t = {
  server : Server.t;
  base_port : int;
  sockets : Unix.file_descr array;
  pending : (int64, pending) Hashtbl.t;
  pending_lock : Mutex.t;
  dedup : bytes Proto.Dedup.t; (* request id -> encoded reply *)
  dedup_lock : Mutex.t;
  stopping : bool Atomic.t;
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
}

let send_fragments sock addr ~msg_id payload =
  List.iter
    (fun frag -> ignore (Unix.sendto sock frag 0 (Bytes.length frag) [] addr))
    (Proto.Fragment.split ~msg_id payload)

let cached_reply t id =
  Mutex.lock t.dedup_lock;
  let r = Proto.Dedup.find t.dedup id in
  Mutex.unlock t.dedup_lock;
  r

let cache_reply t id encoded =
  Mutex.lock t.dedup_lock;
  let r, _ = Proto.Dedup.execute t.dedup ~id (fun () -> encoded) in
  Mutex.unlock t.dedup_lock;
  r

let register_pending t id p =
  Mutex.lock t.pending_lock;
  Hashtbl.replace t.pending id p;
  Mutex.unlock t.pending_lock

let take_pending t id =
  Mutex.lock t.pending_lock;
  let r = Hashtbl.find_opt t.pending id in
  Hashtbl.remove t.pending id;
  Mutex.unlock t.pending_lock;
  r

(* One reader domain per socket / RX queue. *)
let reader_loop t queue =
  let sock = t.sockets.(queue) in
  let buf = Bytes.create (max_datagram + 64) in
  let reassembler = Proto.Fragment.create_reassembler () in
  while not (Atomic.get t.stopping) do
    match Unix.recvfrom sock buf 0 (Bytes.length buf) [] with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | len, addr -> (
        match Proto.Fragment.offer reassembler (Bytes.sub buf 0 len) with
        | None -> ()
        | Some (_, msg) -> (
            match Proto.Wire.decode_request msg with
            | Error _ -> () (* malformed datagrams are dropped *)
            | Ok req -> (
                let id = req.Proto.Wire.id in
                match cached_reply t id with
                | Some encoded ->
                    (* Retransmission of a completed request: replay. *)
                    send_fragments sock addr ~msg_id:id encoded
                | None ->
                    register_pending t id
                      { addr; queue; client_ts = req.Proto.Wire.client_ts };
                    let message =
                      {
                        Message.id;
                        op =
                          (match req.Proto.Wire.op with
                          | Proto.Wire.Get -> Message.Get
                          | Proto.Wire.Put ->
                              Message.Put
                                (Option.value ~default:Bytes.empty req.Proto.Wire.value)
                          | Proto.Wire.Delete -> Message.Delete
                          | Proto.Wire.Scan ->
                              Message.Scan
                                (Option.value ~default:0
                                   (Option.bind req.Proto.Wire.value
                                      Proto.Wire.decode_scan_count)));
                        key = req.Proto.Wire.key;
                        submitted_at = Unix.gettimeofday ();
                        obs_slot = -1;
                      }
                    in
                    (* The server's RX ring applies backpressure; spin
                       briefly, then drop (the client retransmits). *)
                    let rec push n =
                      if Atomic.get t.stopping then ignore (take_pending t id)
                      else if not (Server.submit t.server message) then
                        if n > 1000 then ignore (take_pending t id)
                        else begin
                          Domain.cpu_relax ();
                          push (n + 1)
                        end
                    in
                    push 0)))
  done

(* The reply pump: collect completions, encode, cache for dedup, send. *)
let pump_loop t =
  let should_run () =
    (not (Atomic.get t.stopping))
    ||
    (Mutex.lock t.pending_lock;
     let busy = Hashtbl.length t.pending > 0 in
     Mutex.unlock t.pending_lock;
     busy)
  in
  while should_run () do
    match Server.poll_reply t.server with
    | None -> Unix.sleepf 0.0002
    | Some reply -> (
        let id = reply.Message.request_id in
        match take_pending t id with
        | None -> () (* request was dropped after backpressure *)
        | Some p ->
            let encoded =
              Proto.Wire.encode_reply
                {
                  Proto.Wire.id;
                  status =
                    (match reply.Message.status with
                    | Message.Ok -> Proto.Wire.Ok
                    | Message.Not_found -> Proto.Wire.Not_found
                    | Message.Overloaded -> Proto.Wire.Overloaded);
                  value = reply.Message.value;
                  client_ts = p.client_ts;
                }
            in
            (* Shed replies are not cached: a retransmission of a shed
               request should re-attempt execution once the overload
               passes, not replay the rejection. *)
            let encoded =
              match reply.Message.status with
              | Message.Overloaded -> encoded
              | Message.Ok | Message.Not_found -> cache_reply t id encoded
            in
            send_fragments t.sockets.(p.queue) p.addr ~msg_id:id encoded)
  done

let start ?obs ?(config = Server.default_config) ?(base_port = 47700)
    ?(dedup_capacity = 8192) store =
  let server = Server.start ?obs ~config store in
  let sockets =
    Array.init config.Server.cores (fun q ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.setsockopt_int sock Unix.SO_RCVBUF (4 * 1024 * 1024);
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.05;
        Unix.bind sock (Unix.ADDR_INET (loopback, base_port + q));
        sock)
  in
  let t =
    {
      server;
      base_port;
      sockets;
      pending = Hashtbl.create 256;
      pending_lock = Mutex.create ();
      dedup = Proto.Dedup.create ~capacity:dedup_capacity ();
      dedup_lock = Mutex.create ();
      stopping = Atomic.make false;
      domains = [];
      stopped = false;
    }
  in
  t.domains <-
    Domain.spawn (fun () -> pump_loop t)
    :: List.init config.Server.cores (fun q -> Domain.spawn (fun () -> reader_loop t q));
  t

let base_port t = t.base_port

let queues t = Array.length t.sockets

let server t = t.server

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    List.iter Domain.join t.domains;
    t.domains <- [];
    Server.stop t.server;
    Array.iter Unix.close t.sockets
  end

(* ------------------------------------------------------------------ *)

module Client = struct
  type c = {
    socks : Unix.file_descr array; (* one connect()ed socket per queue *)
    queues : int;
    retry : Proto.Retry.config;
    rng : Dsim.Rng.t;
    budget : Proto.Retry.Budget.t;
    reassembler : Proto.Fragment.reassembler;
    buf : Bytes.t;
    mutable next_id : int64;
    mutable sheds : int;
  }

  exception Timeout

  exception Budget_exhausted

  exception Server_dead

  let connect
      ?(retry =
        {
          Proto.Retry.max_attempts = 5;
          timeout_us = 200_000.0;
          backoff = 2.0;
          cap_us = infinity;
        })
      ?(budget = Proto.Retry.Budget.create ~capacity:50.0 ~earn_per_call:0.5 ())
      ?seed ?(base_port = 47700) ~queues () =
    (* One connect()ed socket per server queue: an unconnected datagram
       socket never learns of the ICMP port-unreachable a dead endpoint
       answers with, so a crashed server would silently burn the whole
       retry schedule.  Connected sockets surface it as [ECONNREFUSED]
       on the next send or receive, which {!rpc} turns into the typed
       {!Server_dead} — fail fast, retry budget untouched. *)
    let socks =
      Array.init queues (fun q ->
          let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
          Unix.setsockopt_int sock Unix.SO_RCVBUF (4 * 1024 * 1024);
          Unix.connect sock (Unix.ADDR_INET (loopback, base_port + q));
          sock)
    in
    (* Distinct client sessions must not reuse request ids: the server's
       dedup cache would replay another session's replies.  Each session
       draws a random id-space origin (a fixed [seed] makes it
       reproducible for tests). *)
    let seed =
      match seed with
      | Some s -> s
      | None -> Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ())
    in
    let rng = Dsim.Rng.create seed in
    {
      socks;
      queues;
      retry;
      rng;
      budget;
      reassembler = Proto.Fragment.create_reassembler ();
      buf = Bytes.create (max_datagram + 64);
      next_id = Dsim.Rng.bits64 rng;
      sheds = 0;
    }

  let close c = Array.iter Unix.close c.socks

  let key_queue c key =
    Kvstore.Keyhash.partition_of (Kvstore.Keyhash.hash key) ~bits:30 mod c.queues

  (* Wait up to [timeout_us] for the reply with [id], feeding any received
     fragments (late replies of other requests are discarded).  The
     deadline is tracked on the monotonic clock — a wall-clock step (NTP
     slew, suspend/resume) must not stretch or collapse the retry
     schedule — and the loop survives EINTR, spurious wakeups and
     truncated datagrams by re-checking the remaining time.  An
     [Overloaded] reply is consumed (counted on the connection) but the
     wait continues: the attempt then times out naturally and the caller
     backs off before retransmitting, which is exactly the reaction a
     shedding server asks for. *)
  let wait_reply c ~sock ~id ~timeout_us =
    let deadline =
      Int64.add (Monotonic_clock.now ()) (Int64.of_float (timeout_us *. 1.0e3))
    in
    let rec go () =
      let remaining_ns = Int64.sub deadline (Monotonic_clock.now ()) in
      if Int64.compare remaining_ns 0L <= 0 then None
      else begin
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO
          (Float.max 0.001 (Int64.to_float remaining_ns /. 1.0e9));
        match Unix.recvfrom sock c.buf 0 (Bytes.length c.buf) [] with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            go ()
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
            raise Server_dead
        | 0, _ -> go ()
        | len, _ -> (
            match Proto.Fragment.offer c.reassembler (Bytes.sub c.buf 0 len) with
            | Some (msg_id, msg) when msg_id = id -> (
                match Proto.Wire.decode_reply msg with
                | Ok { Proto.Wire.status = Proto.Wire.Overloaded; _ } ->
                    c.sheds <- c.sheds + 1;
                    go ()
                | Ok reply -> Some reply
                | Error _ -> go ())
            | Some _ | None -> go ())
      end
    in
    go ()

  let rpc c op key value =
    c.next_id <- Int64.add c.next_id 1L;
    let id = c.next_id in
    let queue =
      match op with
      | Proto.Wire.Get | Proto.Wire.Scan -> Dsim.Rng.int c.rng c.queues
      | Proto.Wire.Put | Proto.Wire.Delete -> key_queue c key
    in
    let sock = c.socks.(queue) in
    let encoded =
      Proto.Wire.encode_request
        { Proto.Wire.id; op; key; value; client_ts = 0L; target_rx = queue }
    in
    let send ~attempt:_ =
      try
        List.iter
          (fun frag -> ignore (Unix.send sock frag 0 (Bytes.length frag) []))
          (Proto.Fragment.split ~msg_id:id encoded)
      with Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> raise Server_dead
    in
    match
      Proto.Retry.call ~config:c.retry ~rng:c.rng ~budget:c.budget ~send
        ~wait_reply:(fun ~timeout_us -> wait_reply c ~sock ~id ~timeout_us)
        ()
    with
    | Ok reply -> reply
    | Error (`Timed_out _) -> raise Timeout
    | Error (`Budget_exhausted _) -> raise Budget_exhausted

  let get c key =
    let reply = rpc c Proto.Wire.Get key None in
    match reply.Proto.Wire.status with
    | Proto.Wire.Ok -> Some (Option.value ~default:Bytes.empty reply.Proto.Wire.value)
    | Proto.Wire.Not_found | Proto.Wire.Overloaded -> None

  let put c key value =
    let reply = rpc c Proto.Wire.Put key (Some value) in
    match reply.Proto.Wire.status with
    | Proto.Wire.Ok -> ()
    | Proto.Wire.Not_found | Proto.Wire.Overloaded ->
        failwith "Udp.Client.put: unexpected failure status"

  let delete c key =
    match (rpc c Proto.Wire.Delete key None).Proto.Wire.status with
    | Proto.Wire.Ok -> true
    | Proto.Wire.Not_found | Proto.Wire.Overloaded -> false

  let sheds c = c.sheds
end
