(** Messages exchanged between load generators and the native server.

    The native runtime ({!Server}) runs the size-aware sharding design on
    real OCaml domains.  In-process transport carries these records over
    lock-free rings; the UDP example converts them to {!Proto.Wire}
    datagrams instead. *)

type op =
  | Get
  | Put of bytes  (** the bytes to store *)
  | Put_ttl of bytes * float
      (** store with a TTL in seconds; the item expires lazily on read
          and eagerly via the server's background sweep *)
  | Delete        (** "considered [a] special version of PUT" (§3) *)
  | Scan of int
      (** ordered range read of up to this many items starting at [key]
          (inclusive); the reply reports the range's total bytes *)

type request = {
  id : int64;
  op : op;
  key : string;
  submitted_at : float; (** [Unix.gettimeofday] at submission, seconds *)
  mutable obs_slot : int;
      (** flight-recorder slot assigned by {!Server.submit} when the
          request is sampled; construct with [-1] *)
}

type status =
  | Ok
  | Not_found
  | Overloaded
      (** the server's admission control shed the request before
          execution; back off and retry *)

type reply = {
  request_id : int64;
  status : status;
  value : bytes option;  (** the item for a successful GET *)
  value_size : int;      (** bytes returned (GET) or written (PUT) *)
  served_by : int;       (** worker core id, for load accounting *)
  completed_at : float;
}

val latency_us : request -> reply -> float
(** End-to-end latency in microseconds. *)
