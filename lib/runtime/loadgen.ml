let populate store dataset =
  for id = 0 to Workload.Dataset.n_keys dataset - 1 do
    Kvstore.Store.put store ~guard:`Lock
      (Workload.Dataset.key_name id)
      (Bytes.create (Workload.Dataset.size_of_key dataset id))
  done

type result = {
  completed : int;
  not_found : int;
  latencies : Stats.Float_vec.t;
  rejected_submits : int;
}

(* The common client loop.  [make_id] namespaces request ids (concurrent
   clients must not collide) and [poll] supplies this client's replies.
   [ttl_s] attaches a TTL to every PUT; [scan_ratio]/[scan_len] mix in
   ordered range reads (both default off, preserving the original mix). *)
let client_loop ?(concurrency = 64) ?ttl_s ?(scan_ratio = 0.0) ?(scan_len = 16) ~server
    ~dataset ~requests ~seed ~make_id ~poll () =
  if requests < 0 then invalid_arg "Loadgen.run: negative request count";
  let gen = Workload.Generator.create ~seed ~scan_ratio ~scan_len dataset in
  let outstanding : (int64, Message.request) Hashtbl.t = Hashtbl.create concurrency in
  let latencies = Stats.Float_vec.create ~capacity:requests () in
  let completed = ref 0 and not_found = ref 0 and rejected = ref 0 in
  let next_id = ref 0L in
  let make_request () =
    let g = Workload.Generator.next gen in
    next_id := Int64.add !next_id 1L;
    {
      Message.id = make_id !next_id;
      op =
        (match g.Workload.Generator.op with
        | Workload.Generator.Get -> Message.Get
        | Workload.Generator.Scan -> Message.Scan g.Workload.Generator.scan_len
        | Workload.Generator.Put -> (
            let value = Bytes.create g.Workload.Generator.item_size in
            match ttl_s with
            | None -> Message.Put value
            | Some ttl -> Message.Put_ttl (value, ttl)));
      key = Workload.Dataset.key_name g.Workload.Generator.key_id;
      submitted_at = Unix.gettimeofday ();
      obs_slot = -1;
    }
  in
  let collect_one ~block =
    let rec go () =
      match poll () with
      | Some reply -> (
          match Hashtbl.find_opt outstanding reply.Message.request_id with
          | Some req ->
              Hashtbl.remove outstanding reply.Message.request_id;
              Stats.Float_vec.push latencies (Message.latency_us req reply);
              incr completed;
              if reply.Message.status = Message.Not_found then incr not_found;
              true
          | None ->
              (* A reply for a request we did not issue would be a bug. *)
              invalid_arg "Loadgen: unmatched reply id")
      | None ->
          if block then begin
            Domain.cpu_relax ();
            go ()
          end
          else false
    in
    go ()
  in
  let issued = ref 0 in
  while !issued < requests do
    if Hashtbl.length outstanding >= concurrency then ignore (collect_one ~block:true)
    else begin
      let req = make_request () in
      let rec try_submit () =
        if Server.submit server req then begin
          Hashtbl.replace outstanding req.Message.id req;
          incr issued
        end
        else begin
          incr rejected;
          (* Ring full: drain a reply (making progress) and retry. *)
          ignore (collect_one ~block:false);
          Domain.cpu_relax ();
          try_submit ()
        end
      in
      try_submit ()
    end
  done;
  while Hashtbl.length outstanding > 0 do
    ignore (collect_one ~block:true)
  done;
  {
    completed = !completed;
    not_found = !not_found;
    latencies;
    rejected_submits = !rejected;
  }

let run ?concurrency ?ttl_s ?scan_ratio ?scan_len ~server ~dataset ~requests ~seed () =
  client_loop ?concurrency ?ttl_s ?scan_ratio ?scan_len ~server ~dataset ~requests ~seed
    ~make_id:Fun.id
    ~poll:(fun () -> Server.poll_reply server)
    ()

(* Multi-client mode: ids carry the 1-based client index in bits 48+; a
   collector domain routes replies to per-client mailbox rings. *)
let client_of_id id = Int64.to_int (Int64.shift_right_logical id 48) - 1

let tag_id ~client id = Int64.logor (Int64.shift_left (Int64.of_int (client + 1)) 48) id

let run_concurrent ?(clients = 3) ?concurrency ~server ~dataset ~requests_per_client
    ~seed () =
  if clients < 1 then invalid_arg "Loadgen.run_concurrent: need at least one client";
  let mailboxes =
    Array.init clients (fun _ -> (Netsim.Ring.create ~capacity:4096 : Message.reply Netsim.Ring.t))
  in
  let total = clients * requests_per_client in
  let routed = Atomic.make 0 in
  let collector =
    Domain.spawn (fun () ->
        while Atomic.get routed < total do
          match Server.poll_reply server with
          | Some reply ->
              let c = client_of_id reply.Message.request_id in
              if c < 0 || c >= clients then
                invalid_arg "Loadgen.run_concurrent: reply for unknown client";
              while not (Netsim.Ring.try_push mailboxes.(c) reply) do
                Domain.cpu_relax ()
              done;
              Atomic.incr routed
          | None -> Domain.cpu_relax ()
        done)
  in
  let client_domains =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            client_loop ?concurrency ~server ~dataset ~requests:requests_per_client
              ~seed:(seed + (101 * c))
              ~make_id:(tag_id ~client:c)
              ~poll:(fun () -> Netsim.Ring.try_pop mailboxes.(c))
              ()))
  in
  let results = List.map Domain.join client_domains in
  Domain.join collector;
  let latencies = Stats.Float_vec.create ~capacity:total () in
  List.iter (fun r -> Stats.Float_vec.append latencies r.latencies) results;
  {
    completed = List.fold_left (fun acc r -> acc + r.completed) 0 results;
    not_found = List.fold_left (fun acc r -> acc + r.not_found) 0 results;
    latencies;
    rejected_submits = List.fold_left (fun acc r -> acc + r.rejected_submits) 0 results;
  }
