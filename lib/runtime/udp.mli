(** Kernel-UDP front end for the native server.

    The closest commodity-hardware analogue of the paper's deployment: one
    UDP socket per worker core plays the role of that core's NIC RX queue
    (the paper steers packets to queues with RSS; here the client picks
    the destination port, which is what its port probing achieves).
    Reader domains decode {!Proto.Wire} datagrams — reassembling
    multi-fragment PUTs — and feed the {!Server}; a reply pump encodes,
    fragments and transmits replies, and a {!Proto.Dedup} cache makes
    retransmitted idempotent requests observable-exactly-once.

    All operations — including DELETEs, which the paper treats as special
    PUTs (§3) — flow through the size-aware scheduler. *)

type t

val start :
  ?obs:Obs.Instrument.t ->
  ?config:Server.config ->
  ?base_port:int ->
  ?dedup_capacity:int ->
  Kvstore.Store.t ->
  t
(** Bind [config.cores] sockets on [base_port..base_port+cores-1]
    (default 47700) on the loopback interface and start serving.  [obs]
    is forwarded to {!Server.start}. *)

val base_port : t -> int

val queues : t -> int

val server : t -> Server.t

val stop : t -> unit
(** Stop intake, drain, join all domains and close the sockets. *)

(** A blocking client with client-side retransmission (§4.1). *)
module Client : sig
  type c

  exception Timeout

  exception Budget_exhausted
  (** The connection's {!Proto.Retry.Budget} blocked a retransmission:
      the server is systematically unresponsive or shedding, and piling
      on more retries would amplify the overload.  Fail fast instead. *)

  exception Server_dead
  (** The destination answered with ICMP port-unreachable
      ([ECONNREFUSED] on the connected socket): nothing listens there —
      the server process is gone, not slow.  Raised immediately, with
      the retry schedule abandoned and the retry budget untouched:
      crash recovery is the caller's (failover's) job, and burning
      timeouts or tokens on a dead endpoint would only delay it.  A
      {e silently} dead endpoint (e.g. a firewall eating packets) still
      surfaces as {!Timeout} after the full schedule. *)

  val connect :
    ?retry:Proto.Retry.config ->
    ?budget:Proto.Retry.Budget.t ->
    ?seed:int ->
    ?base_port:int ->
    queues:int ->
    unit ->
    c
  (** [connect ~queues ()] prepares a client for a server with that many
      RX queues.  GETs go to a uniformly random queue, PUTs to the key's
      master queue — the client-side dispatch of §3.  One [connect()]ed
      socket per queue, so a dead endpoint's ICMP rejection surfaces as
      {!Server_dead} instead of a silent retry burn.  Retransmission
      timeouts jitter decorrelated on the client's seeded RNG (a fixed
      [seed] reproduces the exact schedule); [budget] is the shared
      token bucket retries draw from (default: 50 tokens, 0.5 earned per
      call). *)

  val get : c -> string -> bytes option
  (** [None] when the key is absent.  Raises {!Timeout} when every
      retransmission went unanswered. *)

  val put : c -> string -> bytes -> unit

  val delete : c -> string -> bool

  val sheds : c -> int
  (** [Overloaded] replies this connection has absorbed — each one is a
      request the server's admission control rejected before execution
      (the client then backed off and retransmitted). *)

  val close : c -> unit
end
