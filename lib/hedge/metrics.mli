(** Result of one hedged-cluster run, with copy-level loss accounting.

    The unit of accounting is the {e copy}: every enqueue attempt of a
    request on some replica.  A GET routed once is one copy; its hedge
    or tied backup is a second; a crash-failover reissue is a third.
    Every copy resolves into exactly one of the legs below, so the run
    telescopes exactly ({!telescopes}):

    [issued = served + net_dropped + rx_dropped + shed + hedged_wasted
    + cancelled + in_flight_end]

    - [served]: the copy completed service and its result was wanted
      (the winning GET copy; every PUT write copy that completed).
    - [net_dropped]: the copy died with a killed server — in its queue,
      in service at the kill instant, or bounced off the dead NIC on
      arrival before the router detected the crash.
    - [rx_dropped] / [shed]: refused at enqueue by the per-core queue
      cap / the shed-large watermark.
    - [hedged_wasted]: a GET copy that completed after its request was
      already won by another copy (the hedge tax, measured).
    - [cancelled]: removed before service — a tied loser cancelled on
      its peer's dequeue, or a queued loser cancelled when the winner
      completed.
    - [in_flight_end]: still queued or in service when the run ended.

    Request-level counters sit alongside: [requests] arrivals split into
    [completed], [failed] (no routable replica, refused with no backup,
    or failover denied by the retry budget), and still-in-flight. *)

type t = {
  issued : int;
  served : int;
  net_dropped : int;
  rx_dropped : int;
  shed : int;
  hedged_wasted : int;
  cancelled : int;
  in_flight_end : int;
  requests : int;
  completed : int;
  failed : int;
  hedges_issued : int;
  ties_issued : int;
  failovers : int;  (** crash-failover reissues granted by the budget *)
  budget_exhausted : int;  (** failovers denied (request failed) *)
  budget_spent : float;  (** retry-budget tokens consumed *)
  server_killed : int;
  server_recovered : int;
  samples : int;  (** completions with arrival inside the measured window *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  p99_series : (float * float) list;
      (** (window start µs, window p99) over completion time *)
  hedge_delay_series : (float * float) list;
      (** (epoch end µs, re-estimated hedge delay) *)
  hedge_delay_final_us : float;
  large_cores : int;  (** per-server large pool (0 under keyhash) *)
  small_cores : int;
  events : int;  (** simulator events processed *)
}

val telescopes : t -> bool
(** The copy-level loss-accounting identity above, checked exactly. *)

val requests_account : t -> bool
(** [requests >= completed + failed] (the remainder is in flight). *)
