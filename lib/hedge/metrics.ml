type t = {
  issued : int;
  served : int;
  net_dropped : int;
  rx_dropped : int;
  shed : int;
  hedged_wasted : int;
  cancelled : int;
  in_flight_end : int;
  requests : int;
  completed : int;
  failed : int;
  hedges_issued : int;
  ties_issued : int;
  failovers : int;
  budget_exhausted : int;
  budget_spent : float;
  server_killed : int;
  server_recovered : int;
  samples : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  p99_series : (float * float) list;
  hedge_delay_series : (float * float) list;
  hedge_delay_final_us : float;
  large_cores : int;
  small_cores : int;
  events : int;
}

let telescopes m =
  m.issued
  = m.served + m.net_dropped + m.rx_dropped + m.shed + m.hedged_wasted
    + m.cancelled + m.in_flight_end

let requests_account m =
  m.requests >= m.completed + m.failed
