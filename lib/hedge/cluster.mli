(** Replica-aware tail-cutting over a replicated shard cluster.

    One discrete-event simulation covers every server — unlike
    {!Kvcluster.Run}, whose engines each own a private clock — because
    hedged and tied requests race copies {e across} replicas and cancel
    the loser through the kernel's O(1) timer handles
    ({!Dsim.Sim.schedule_timer_after}/{!Dsim.Sim.cancel}).

    The server model is deliberately smaller than {!Kvserver.Engine}
    (per-core FIFO queues + {!Kvserver.Cost_model} service times; either
    a static size-aware core split or keyhash dispatch): the quantity
    under study is the {e routing layer} — replica spread,
    power-of-two-choices, hedges, ties, crash failover — against the
    single-server size-aware story, not the engine internals measured
    elsewhere.

    Faults: the cluster consumes a {!Fault.Plan} through its own seeded
    injector.  [Core_stall] windows apply to global core
    [server * cores + core]; [Kill_server]/[Recover_server] crash and
    restart whole servers:

    - At the kill instant the server's in-service completions are
      cancelled (O(1) handles), its queues are wiped, and every copy it
      held is counted [net_dropped].  Requests that lost their
      completing leg park on the server's stuck list.
    - The router only learns at [kill + detect_us]
      ({!Config.detect_us}): until then the dead replica still looks
      routable — arrivals bounce off the dead NIC and wait — which is
      exactly why unhedged tails degrade by the detector timeout while
      hedged requests race past after one hedge delay.
    - At detection the replica is marked unroutable and every stuck
      request fails over to a survivor, spending one retry-budget token
      ({!Proto.Retry.Budget}); an empty bucket fails the request
      ([budget_exhausted]).
    - At recovery the server restarts empty and is immediately routable.

    Determinism: all randomness comes from streams forked off the one
    simulation RNG plus the injector's private stream, so a fixed
    [(config, dataset, plan, seed)] reproduces byte-identical metrics at
    any [MINOS_JOBS]. *)

type t

val create :
  Config.t ->
  dataset:Workload.Dataset.t ->
  offered_mops:float ->
  ?plan:Fault.Plan.t ->
  seed:int ->
  unit ->
  t
(** Build the cluster and schedule the first arrival, the epoch ticks
    and the plan's kill/recover/detect instants.  Raises
    [Invalid_argument] on an invalid config or plan. *)

val run :
  Config.t ->
  dataset:Workload.Dataset.t ->
  offered_mops:float ->
  ?plan:Fault.Plan.t ->
  seed:int ->
  unit ->
  Metrics.t
(** [create] + drive the simulation to [duration_us] + {!metrics}. *)

val metrics : t -> Metrics.t
(** Snapshot the accounting (including [in_flight_end] as of now). *)

val set_hooks :
  t ->
  ?on_kill:(float -> int -> unit) ->
  ?on_detect:(float -> int -> unit) ->
  ?on_recover:(float -> int -> unit) ->
  ?on_delay:(float -> float -> unit) ->
  unit ->
  unit
(** Cold observation hooks for the decision log / Chrome traces:
    [(time, server)] at kill/detect/recover, [(time, new delay)] when an
    epoch re-estimates the hedge delay. *)

val sim : t -> Dsim.Sim.t

val servers : t -> int

(** {2 Test probes} *)

val hedge_delay_us : t -> float
(** The delay the next hedge timer will use. *)

val pick_replica : t -> shard:int -> exclude:int -> int
(** Run the configured routing policy once (consumes routing-RNG draws);
    [-1] when no replica of [shard] is routable.  [exclude] removes one
    server from the candidate set ([-1] for none). *)

val routable_snapshot : t -> bool array
val alive_snapshot : t -> bool array

val load_snapshot : t -> int array
(** Outstanding copies per server (the p2c signal). *)
