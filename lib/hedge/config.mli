(** Configuration of the replicated tail-cutting cluster.

    Topology: [shards] primaries with [mirrors] full replicas each, laid
    out so replica [k] of shard [s] is server [k * shards + s] — the same
    ids {!Shardmgr.Table.compile} allocates when one [Add_replica] per
    shard (in shard order) opens the run.  Every server runs [cores]
    cores; within a server, dispatch is either size-aware (a static
    large/small core split derived from the workload's CPU shares) or
    keyhash (hash over all cores, the baseline the paper beats). *)

type mode =
  | Off  (** one copy per GET, no backup *)
  | Hedged
      (** a backup copy goes to a different replica after the current
          delay quantile; first response wins, the loser is cancelled *)
  | Tied
      (** two copies enqueue immediately; when one starts service the
          other is cancelled from its queue (Dean's tied requests) *)

type route =
  | Spread  (** uniform seeded choice over the routable replica set *)
  | P2c
      (** power-of-two-choices: two seeded draws, pick the replica with
          the smaller outstanding-copy count *)

type t = {
  shards : int;
  mirrors : int;  (** replicas per shard beyond the primary *)
  cores : int;  (** per server *)
  sizeaware : bool;  (** size-aware core split vs keyhash dispatch *)
  mode : mode;
  route : route;
  hedge_delay_us : float;
      (** initial hedge delay, used until the first epoch window has
          enough completions to estimate the quantile *)
  hedge_quantile : float;
      (** completion-latency quantile tracked as the hedge delay
          (default 0.95: hedge after the windowed p95) *)
  min_delay_samples : int;
      (** completions an epoch window needs before it may move the
          delay *)
  detect_us : float option;
      (** failure-detector timeout: how long after a [kill-server]
          instant the router learns and fails pending copies over.
          [None] derives 15 % of the measured window — see
          {!detect_us}. *)
  duration_us : float;
  warmup_us : float;
  epoch_us : float;  (** hedge-delay re-estimation period *)
  window_us : float;  (** p99 reporting window *)
  queue_capacity : int option;  (** per-core queue cap (tail-drop) *)
  shed_watermark : int option;
      (** shed large copies above this per-core queue depth *)
  budget_capacity : float;
      (** failover retry budget: token-bucket burst capacity.  A spend
          needs a whole token, so any value below 1.0 disables failover
          (every crash-stuck request is denied and fails). *)
  budget_earn_per_request : float;
      (** tokens earned per request issued (sustained failover rate) *)
  cost : Kvserver.Cost_model.t;
}

val default : t

val servers : t -> int
(** [shards * (mirrors + 1)]. *)

val detect_us : t -> float
(** The effective failure-detector timeout: the configured value, or
    15 % of [duration_us - warmup_us] when unset (a timeout that scales
    with the scenario keeps kill windows visible at any run scale). *)

val mode_name : mode -> string
val mode_of_name : string -> mode option
val route_name : route -> string
val route_of_name : string -> route option
val validate : t -> (unit, string) result
