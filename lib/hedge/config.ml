type mode = Off | Hedged | Tied
type route = Spread | P2c

type t = {
  shards : int;
  mirrors : int;
  cores : int;
  sizeaware : bool;
  mode : mode;
  route : route;
  hedge_delay_us : float;
  hedge_quantile : float;
  min_delay_samples : int;
  detect_us : float option;
  duration_us : float;
  warmup_us : float;
  epoch_us : float;
  window_us : float;
  queue_capacity : int option;
  shed_watermark : int option;
  budget_capacity : float;
  budget_earn_per_request : float;
  cost : Kvserver.Cost_model.t;
}

let default =
  {
    shards = 4;
    mirrors = 1;
    cores = 8;
    sizeaware = true;
    mode = Hedged;
    route = Spread;
    hedge_delay_us = 25.0;
    hedge_quantile = 0.95;
    min_delay_samples = 64;
    detect_us = None;
    duration_us = 1_500_000.0;
    warmup_us = 500_000.0;
    epoch_us = 150_000.0;
    window_us = 100_000.0;
    queue_capacity = None;
    shed_watermark = None;
    budget_capacity = 65_536.0;
    budget_earn_per_request = 0.1;
    cost = Kvserver.Cost_model.default;
  }

let servers t = t.shards * (t.mirrors + 1)

let detect_us t =
  match t.detect_us with
  | Some d -> d
  | None -> 0.15 *. (t.duration_us -. t.warmup_us)

let mode_name = function Off -> "off" | Hedged -> "hedged" | Tied -> "tied"

let mode_of_name = function
  | "off" -> Some Off
  | "hedged" -> Some Hedged
  | "tied" -> Some Tied
  | _ -> None

let route_name = function Spread -> "spread" | P2c -> "p2c"

let route_of_name = function
  | "spread" -> Some Spread
  | "p2c" -> Some P2c
  | _ -> None

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.shards < 1 then err "need at least 1 shard"
  else if t.mirrors < 0 then err "mirrors must be >= 0"
  else if t.cores < 1 then err "need at least 1 core per server"
  else if t.sizeaware && t.cores < 2 then
    err "size-aware dispatch needs at least 2 cores"
  else if not (t.hedge_delay_us > 0.0) then err "hedge delay must be > 0"
  else if not (t.hedge_quantile > 0.0 && t.hedge_quantile <= 1.0) then
    err "hedge quantile out of (0, 1]"
  else if t.min_delay_samples < 1 then err "min_delay_samples must be >= 1"
  else if
    match t.detect_us with Some d -> not (d >= 0.0) | None -> false
  then err "detect_us must be >= 0"
  else if not (t.warmup_us < t.duration_us) then
    err "warmup must precede duration end"
  else if not (t.epoch_us > 0.0) then err "epoch must be positive"
  else if not (t.window_us > 0.0) then err "window must be positive"
  else if (match t.queue_capacity with Some c -> c < 1 | None -> false) then
    err "queue_capacity must be >= 1"
  else if (match t.shed_watermark with Some w -> w < 1 | None -> false) then
    err "shed_watermark must be >= 1"
  else if not (t.budget_capacity >= 0.0) then err "budget capacity must be >= 0"
  else if not (t.budget_earn_per_request >= 0.0) then
    err "budget earn rate must be >= 0"
  else Ok ()
