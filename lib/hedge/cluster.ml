module Fifo = Netsim.Fifo
module Rng = Dsim.Rng
module Sim = Dsim.Sim
module Cost = Kvserver.Cost_model

(* Copy lifecycle.  A slot is [st_free] on the free list, [st_queued]
   while waiting in a per-core FIFO, [st_service] while a core works on
   it, and [st_marked] once cancelled in place — the FIFO still holds the
   slot id, so the slot is only reclaimed when the queue next pops it (or
   the queue is wiped by a kill).  Marked copies are counted at mark
   time; reclamation is pure bookkeeping. *)
let st_free = 0
let st_queued = 1
let st_service = 2
let st_marked = 3

(* Request resolution states. *)
let rs_pending = 0
let rs_done = 1
let rs_failed = 2

type t = {
  sim : Sim.t;
  gen : Workload.Generator.t;
  ds : Workload.Dataset.t;
  inj : Fault.Inject.t option;
  arrival_rng : Rng.t;
  route_rng : Rng.t;
  budget : Proto.Retry.Budget.t;
  (* topology *)
  shards : int;
  mirrors : int;
  cores : int;
  servers : int;
  small_cores : int;
  large_cores : int;
  sizeaware : bool;
  mode : Config.mode;
  route : Config.route;
  cost : Cost.t;
  shed_wm : int;  (* max_int when disabled *)
  q_cap : int;  (* max_int when disabled *)
  mean_iat_us : float;
  duration_us : float;
  warmup_us : float;
  epoch_us : float;
  hedge_quantile : float;
  min_delay_samples : int;
  (* per-server / per-core state *)
  queues : int Fifo.t array;  (* servers * cores *)
  core_copy : int array;  (* gcore -> in-service copy, or -1 *)
  core_handle : Sim.handle array;  (* completion timer of that copy *)
  alive : bool array;
  routable : bool array;
  load : int array;  (* outstanding (queued + in-service) copies *)
  stuck : int Fifo.t array;  (* per server: requests awaiting failover *)
  (* request pool (parallel arrays; slots recycled through a free list) *)
  mutable r_cap : int;
  mutable r_key : int array;
  mutable r_size : int array;
  mutable r_put : int array;
  mutable r_large : int array;
  mutable r_shard : int array;
  mutable r_last : int array;  (* server of the most recent copy *)
  mutable r_copy_a : int array;  (* GET leg links, -1 when absent *)
  mutable r_copy_b : int array;
  mutable r_out : int array;  (* live copies of this request *)
  mutable r_state : int array;
  mutable r_stuckref : int array;  (* 1 while a stuck list references it *)
  mutable r_hedge : Sim.handle array;
  mutable r_arrive : float array;
  mutable r_free : int array;
  mutable r_free_top : int;
  (* copy pool *)
  mutable c_cap : int;
  mutable c_req : int array;
  mutable c_server : int array;
  mutable c_state : int array;
  mutable c_peer : int array;  (* tied sibling, -1 *)
  mutable c_comp : int array;  (* 1 when this copy can complete the request *)
  mutable c_free : int array;
  mutable c_free_top : int;
  (* accounting *)
  mutable issued : int;
  mutable served : int;
  mutable net_dropped : int;
  mutable rx_dropped : int;
  mutable shed : int;
  mutable hedged_wasted : int;
  mutable cancelled : int;
  mutable requests : int;
  mutable completed : int;
  mutable failed : int;
  mutable hedges_issued : int;
  mutable ties_issued : int;
  mutable failovers : int;
  mutable budget_exhausted : int;
  mutable server_killed : int;
  mutable server_recovered : int;
  (* hedge delay estimation *)
  mutable hedge_delay_us : float;
  epoch_vec : Stats.Float_vec.t;
  lat : Stats.Float_vec.t;
  win : Stats.Windowed.t;
  mutable delays : (float * float) list;  (* newest first *)
  (* event tags, filled at registration *)
  mutable tag_arrive : int;
  mutable tag_service : int;
  mutable tag_hedge : int;
  mutable tag_epoch : int;
  (* hooks for the decision log (cold; default no-ops) *)
  mutable on_kill : float -> int -> unit;
  mutable on_detect : float -> int -> unit;
  mutable on_recover : float -> int -> unit;
  mutable on_delay : float -> float -> unit;
}

(* ------------------------------------------------------------------ *)
(* Replica routing.  Replica [k] of shard [s] is server [k * shards + s];
   only [routable] members (not yet detected dead, not shed by recovery
   lag) are candidates.  These run once (hedged: twice) per GET and are
   proved allocation-free by @analyze (see analyze_roots.txt). *)

let rec routable_count t s k excl acc =
  if k > t.mirrors then acc
  else
    let srv = (k * t.shards) + s in
    let acc = if srv <> excl && t.routable.(srv) then acc + 1 else acc in
    routable_count t s (k + 1) excl acc

let rec nth_routable t s k excl n =
  let srv = (k * t.shards) + s in
  if srv <> excl && t.routable.(srv) then
    if n = 0 then srv else nth_routable t s (k + 1) excl (n - 1)
  else nth_routable t s (k + 1) excl n

let pick_spread t s excl =
  let n = routable_count t s 0 excl 0 in
  if n = 0 then -1
  else if n = 1 then nth_routable t s 0 excl 0
  else nth_routable t s 0 excl (Rng.int t.route_rng n)

let pick_p2c t s excl =
  let n = routable_count t s 0 excl 0 in
  if n = 0 then -1
  else if n = 1 then nth_routable t s 0 excl 0
  else begin
    let a = nth_routable t s 0 excl (Rng.int t.route_rng n) in
    let b = nth_routable t s 0 excl (Rng.int t.route_rng n) in
    if t.load.(a) <= t.load.(b) then a else b
  end

let pick t s excl =
  match t.route with
  | Config.Spread -> pick_spread t s excl
  | Config.P2c -> pick_p2c t s excl

(* Core choice within a server: size-aware sends smalls to the first
   [small_cores] cores and larges to the rest; keyhash spreads both over
   every core, so a large ahead of a small blocks it — the single-server
   story this layer inherits from the paper. *)
let core_of t part large =
  if t.sizeaware then
    if large then t.small_cores + (part mod t.large_cores)
    else part mod t.small_cores
  else part mod t.cores

(* ------------------------------------------------------------------ *)
(* Pools *)

let grow_int a cap v =
  let b = Array.make (2 * cap) v in
  Array.blit a 0 b 0 cap;
  b

let grow_float a cap =
  let b = Array.make (2 * cap) 0.0 in
  Array.blit a 0 b 0 cap;
  b

let grow_reqs t =
  let cap = t.r_cap in
  t.r_key <- grow_int t.r_key cap 0;
  t.r_size <- grow_int t.r_size cap 0;
  t.r_put <- grow_int t.r_put cap 0;
  t.r_large <- grow_int t.r_large cap 0;
  t.r_shard <- grow_int t.r_shard cap 0;
  t.r_last <- grow_int t.r_last cap (-1);
  t.r_copy_a <- grow_int t.r_copy_a cap (-1);
  t.r_copy_b <- grow_int t.r_copy_b cap (-1);
  t.r_out <- grow_int t.r_out cap 0;
  t.r_state <- grow_int t.r_state cap rs_pending;
  t.r_stuckref <- grow_int t.r_stuckref cap 0;
  t.r_hedge <-
    (let b = Array.make (2 * cap) Sim.null_handle in
     Array.blit t.r_hedge 0 b 0 cap;
     b);
  t.r_arrive <- grow_float t.r_arrive cap;
  t.r_free <- grow_int t.r_free cap 0;
  for i = 0 to cap - 1 do
    t.r_free.(i) <- (2 * cap) - 1 - i
  done;
  t.r_free_top <- cap;
  t.r_cap <- 2 * cap

let alloc_req t =
  if t.r_free_top = 0 then grow_reqs t;
  t.r_free_top <- t.r_free_top - 1;
  let r = t.r_free.(t.r_free_top) in
  t.r_copy_a.(r) <- -1;
  t.r_copy_b.(r) <- -1;
  t.r_out.(r) <- 0;
  t.r_state.(r) <- rs_pending;
  t.r_stuckref.(r) <- 0;
  t.r_hedge.(r) <- Sim.null_handle;
  r

let free_req t r =
  t.r_free.(t.r_free_top) <- r;
  t.r_free_top <- t.r_free_top + 1

let grow_copies t =
  let cap = t.c_cap in
  t.c_req <- grow_int t.c_req cap (-1);
  t.c_server <- grow_int t.c_server cap (-1);
  t.c_state <- grow_int t.c_state cap st_free;
  t.c_peer <- grow_int t.c_peer cap (-1);
  t.c_comp <- grow_int t.c_comp cap 0;
  t.c_free <- grow_int t.c_free cap 0;
  for i = 0 to cap - 1 do
    t.c_free.(i) <- (2 * cap) - 1 - i
  done;
  t.c_free_top <- cap;
  t.c_cap <- 2 * cap

let alloc_copy t =
  if t.c_free_top = 0 then grow_copies t;
  t.c_free_top <- t.c_free_top - 1;
  t.c_free.(t.c_free_top)

let free_copy t c =
  t.c_state.(c) <- st_free;
  t.c_server.(c) <- -1;
  t.c_req.(c) <- -1;
  t.c_peer.(c) <- -1;
  t.c_free.(t.c_free_top) <- c;
  t.c_free_top <- t.c_free_top + 1

(* ------------------------------------------------------------------ *)
(* Copy resolution helpers *)

(* Break the peer's backlink before a copy resolves, so a recycled slot
   is never cancelled through a stale tied link. *)
let unlink_peer t c =
  let p = t.c_peer.(c) in
  if p >= 0 && t.c_peer.(p) = c then t.c_peer.(p) <- -1;
  t.c_peer.(c) <- -1

let unlink_req t r c =
  if t.r_copy_a.(r) = c then t.r_copy_a.(r) <- -1
  else if t.r_copy_b.(r) = c then t.r_copy_b.(r) <- -1

let maybe_free_req t r =
  if t.r_state.(r) <> rs_pending && t.r_out.(r) = 0 && t.r_stuckref.(r) = 0
  then free_req t r

(* Cancel a queued copy in place: counted now, reclaimed lazily.  Never
   frees the request here — both callers (the winner's completion, a
   tied sibling starting service) still hold a live leg whose own
   resolution path runs [maybe_free_req] afterwards; freeing early would
   double-free the slot under the winner's feet. *)
let cancel_queued t c =
  unlink_peer t c;
  t.c_state.(c) <- st_marked;
  t.cancelled <- t.cancelled + 1;
  t.load.(t.c_server.(c)) <- t.load.(t.c_server.(c)) - 1;
  let r = t.c_req.(c) in
  t.r_out.(r) <- t.r_out.(r) - 1;
  unlink_req t r c

let fail_req t r =
  t.r_state.(r) <- rs_failed;
  t.failed <- t.failed + 1;
  if not (Sim.is_null t.r_hedge.(r)) then begin
    ignore (Sim.cancel t.sim t.r_hedge.(r));
    t.r_hedge.(r) <- Sim.null_handle
  end;
  maybe_free_req t r

let complete_req t r =
  t.r_state.(r) <- rs_done;
  t.completed <- t.completed + 1;
  if not (Sim.is_null t.r_hedge.(r)) then begin
    ignore (Sim.cancel t.sim t.r_hedge.(r));
    t.r_hedge.(r) <- Sim.null_handle
  end;
  (* the losing leg, if still queued somewhere, is cancelled in place *)
  let a = t.r_copy_a.(r) in
  if a >= 0 && t.c_state.(a) = st_queued then cancel_queued t a;
  let b = t.r_copy_b.(r) in
  if b >= 0 && t.c_state.(b) = st_queued then cancel_queued t b;
  let now = Sim.now t.sim in
  let l = now -. t.r_arrive.(r) +. t.cost.Cost.pipeline_latency_us in
  Stats.Float_vec.push t.epoch_vec l;
  if t.r_arrive.(r) >= t.warmup_us then begin
    Stats.Float_vec.push t.lat l;
    Stats.Windowed.add t.win ~time:now l
  end

(* ------------------------------------------------------------------ *)
(* Service *)

let rec start_service t server core =
  let q = t.queues.((server * t.cores) + core) in
  if not (Fifo.is_empty q) then begin
    let c = Fifo.pop_exn q in
    if t.c_state.(c) = st_marked then begin
      free_copy t c;
      start_service t server core
    end
    else begin
      (* tied requests: starting service cancels the sibling copy *)
      let p = t.c_peer.(c) in
      if p >= 0 && t.c_state.(p) = st_queued then cancel_queued t p;
      t.c_state.(c) <- st_service;
      let gcore = (server * t.cores) + core in
      let r = t.c_req.(c) in
      let op = if t.r_put.(r) = 1 then Cost.Put else Cost.Get in
      let cpu = Cost.cpu_time t.cost op ~item_size:t.r_size.(r) in
      let now = Sim.now t.sim in
      let svc =
        match t.inj with
        | None -> cpu
        | Some inj ->
            let f = Fault.Inject.slowdown inj ~core:gcore ~now in
            if f = infinity then
              Fault.Inject.stall_end inj ~core:gcore ~now -. now +. cpu
            else cpu *. f
      in
      t.core_copy.(gcore) <- c;
      t.core_handle.(gcore) <-
        Sim.schedule_timer_after t.sim svc ~tag:t.tag_service ~i:gcore ~j:c
    end
  end

(* Enqueue one copy of request [r] on [server].  Return the copy slot, or
   a negative resolution code: -1 dead on arrival (the server's NIC is
   down), -2 shed, -3 queue-cap tail drop.  Every path counts the copy
   as issued exactly once. *)
let enqueue_copy t r server ~comp ~peer =
  t.issued <- t.issued + 1;
  t.r_last.(r) <- server;
  if not t.alive.(server) then begin
    t.net_dropped <- t.net_dropped + 1;
    -1
  end
  else begin
    let part = Workload.Dataset.key_partition t.ds t.r_key.(r) in
    let core = core_of t part (t.r_large.(r) = 1) in
    let q = t.queues.((server * t.cores) + core) in
    let len = Fifo.length q in
    if t.r_large.(r) = 1 && len >= t.shed_wm then begin
      t.shed <- t.shed + 1;
      -2
    end
    else if len >= t.q_cap then begin
      t.rx_dropped <- t.rx_dropped + 1;
      -3
    end
    else begin
      let c = alloc_copy t in
      t.c_req.(c) <- r;
      t.c_server.(c) <- server;
      t.c_state.(c) <- st_queued;
      t.c_peer.(c) <- peer;
      t.c_comp.(c) <- (if comp then 1 else 0);
      t.r_out.(r) <- t.r_out.(r) + 1;
      t.load.(server) <- t.load.(server) + 1;
      Fifo.push q c;
      let gcore = (server * t.cores) + core in
      if t.core_copy.(gcore) < 0 then start_service t server core;
      c
    end
  end

(* A pending request just lost its last live leg (code < 0 from the
   enqueue above).  Dead-on-arrival copies park the request on the dead
   server's stuck list — the failure detector fails them over in one
   sweep; a refused copy (shed / tail-drop) fails the request unless a
   hedge timer is still armed to rescue it. *)
let after_lost_leg t r code =
  if
    t.r_state.(r) = rs_pending
    && t.r_out.(r) = 0
    && Sim.is_null t.r_hedge.(r)
  then
    if code = -1 then begin
      if t.r_stuckref.(r) = 0 then begin
        t.r_stuckref.(r) <- 1;
        Fifo.push t.stuck.(t.r_last.(r)) r
      end
    end
    else fail_req t r

(* ------------------------------------------------------------------ *)
(* Event handlers *)

let on_service t gcore c =
  let server = gcore / t.cores in
  let core = gcore mod t.cores in
  t.core_copy.(gcore) <- -1;
  t.core_handle.(gcore) <- Sim.null_handle;
  unlink_peer t c;
  let r = t.c_req.(c) in
  t.load.(server) <- t.load.(server) - 1;
  t.r_out.(r) <- t.r_out.(r) - 1;
  unlink_req t r c;
  if t.r_put.(r) = 0 && t.r_state.(r) <> rs_pending then
    (* a GET leg whose request was already won elsewhere: the hedge tax *)
    t.hedged_wasted <- t.hedged_wasted + 1
  else begin
    t.served <- t.served + 1;
    if t.r_state.(r) = rs_pending && t.c_comp.(c) = 1 then complete_req t r
  end;
  free_copy t c;
  maybe_free_req t r;
  start_service t server core

let on_hedge t r =
  t.r_hedge.(r) <- Sim.null_handle;
  if t.r_state.(r) = rs_pending then begin
    let backup = pick t t.r_shard.(r) t.r_last.(r) in
    let backup =
      if backup >= 0 then backup else pick t t.r_shard.(r) (-1)
    in
    if backup >= 0 then begin
      t.hedges_issued <- t.hedges_issued + 1;
      let code = enqueue_copy t r backup ~comp:true ~peer:(-1) in
      if code >= 0 then begin
        if t.r_copy_a.(r) < 0 then t.r_copy_a.(r) <- code
        else t.r_copy_b.(r) <- code
      end
      else after_lost_leg t r code
    end
    else after_lost_leg t r (-2)
  end

let handle_get t r =
  let s = t.r_shard.(r) in
  let srv = pick t s (-1) in
  if srv < 0 then fail_req t r
  else begin
    match t.mode with
    | Config.Tied when routable_count t s 0 srv 0 > 0 ->
        let srv2 = pick t s srv in
        t.ties_issued <- t.ties_issued + 1;
        let c1 = enqueue_copy t r srv ~comp:true ~peer:(-1) in
        if c1 >= 0 then t.r_copy_a.(r) <- c1;
        let c2 = enqueue_copy t r srv2 ~comp:true ~peer:(max c1 (-1)) in
        if c2 >= 0 then begin
          t.r_copy_b.(r) <- c2;
          if c1 >= 0 then t.c_peer.(c1) <- c2
        end;
        if t.r_out.(r) = 0 then begin
          (* point the stuck push at whichever server was dead *)
          if c1 = -1 then t.r_last.(r) <- srv
          else if c2 = -1 then t.r_last.(r) <- srv2;
          after_lost_leg t r (if c1 = -1 || c2 = -1 then -1 else -2)
        end
    | _ ->
        let c = enqueue_copy t r srv ~comp:true ~peer:(-1) in
        if c >= 0 then t.r_copy_a.(r) <- c;
        (match t.mode with
        | Config.Hedged when t.mirrors > 0 ->
            t.r_hedge.(r) <-
              Sim.schedule_timer_after t.sim t.hedge_delay_us ~tag:t.tag_hedge
                ~i:r ~j:0
        | _ -> ());
        if c < 0 then after_lost_leg t r c
  end

let handle_put t r =
  let s = t.r_shard.(r) in
  (* write copies fan out to every routable replica; the first routable
     one (the primary, unless it is detected dead) completes the
     request *)
  let n = routable_count t s 0 (-1) 0 in
  if n = 0 then fail_req t r
  else begin
    let comp_dead = ref (-1) in
    let comp_refused = ref false in
    let first = ref true in
    for k = 0 to t.mirrors do
      let srv = (k * t.shards) + s in
      if t.routable.(srv) then begin
        let comp = !first in
        first := false;
        let code = enqueue_copy t r srv ~comp ~peer:(-1) in
        if comp && code = -1 then comp_dead := srv
        else if comp && code < 0 then
          (* the write was refused at admission; no backup leg retries
             PUTs, so the request fails (below, once fan-out is done) *)
          comp_refused := true
      end
    done;
    if !comp_dead >= 0 then begin
      if t.r_stuckref.(r) = 0 then begin
        t.r_stuckref.(r) <- 1;
        Fifo.push t.stuck.(!comp_dead) r
      end
    end
    else if !comp_refused then fail_req t r
  end

let on_request t =
  Workload.Generator.next_into t.gen;
  let r = alloc_req t in
  t.requests <- t.requests + 1;
  let key = Workload.Generator.last_key_id t.gen in
  t.r_key.(r) <- key;
  t.r_size.(r) <- Workload.Generator.last_item_size t.gen;
  t.r_large.(r) <- (if Workload.Generator.last_is_large t.gen then 1 else 0);
  t.r_put.(r) <-
    (* SCANs are reads: hedgeable/tieable like GETs. *)
    (match Workload.Generator.last_op t.gen with
    | Workload.Generator.Get | Workload.Generator.Scan -> 0
    | Workload.Generator.Put -> 1);
  t.r_shard.(r) <- Workload.Dataset.key_partition t.ds key mod t.shards;
  t.r_last.(r) <- -1;
  t.r_arrive.(r) <- Sim.now t.sim;
  Proto.Retry.Budget.earn t.budget;
  if t.r_put.(r) = 1 then handle_put t r else handle_get t r

let on_arrive t =
  let now = Sim.now t.sim in
  if now < t.duration_us then begin
    on_request t;
    let dt = Rng.exponential t.arrival_rng ~mean:t.mean_iat_us in
    Sim.schedule_call_after t.sim dt ~tag:t.tag_arrive ~i:0 ~j:0
  end

let on_epoch t =
  if Stats.Float_vec.length t.epoch_vec >= t.min_delay_samples then begin
    let d = Stats.Quantile.of_vec t.epoch_vec t.hedge_quantile in
    t.hedge_delay_us <- d;
    let now = Sim.now t.sim in
    t.delays <- (now, d) :: t.delays;
    t.on_delay now d
  end;
  Stats.Float_vec.clear t.epoch_vec;
  if Sim.now t.sim +. t.epoch_us <= t.duration_us then
    Sim.schedule_call_after t.sim t.epoch_us ~tag:t.tag_epoch ~i:0 ~j:0

(* ------------------------------------------------------------------ *)
(* Crash, detection, recovery (cold closures scheduled at setup) *)

let kill_server t s =
  if t.alive.(s) then begin
    t.server_killed <- t.server_killed + 1;
    t.alive.(s) <- false;
    t.on_kill (Sim.now t.sim) s;
    (* in-service completions die with the process: O(1) timer cancels *)
    for core = 0 to t.cores - 1 do
      let g = (s * t.cores) + core in
      if not (Sim.is_null t.core_handle.(g)) then begin
        ignore (Sim.cancel t.sim t.core_handle.(g));
        t.core_handle.(g) <- Sim.null_handle
      end;
      t.core_copy.(g) <- -1;
      Fifo.clear t.queues.(g)
    done;
    (* every copy on the server is lost; requests that lose their last
       (or completing) leg park on the stuck list until detection *)
    for c = 0 to t.c_cap - 1 do
      if t.c_server.(c) = s then begin
        let st = t.c_state.(c) in
        if st = st_queued || st = st_service then begin
          unlink_peer t c;
          t.net_dropped <- t.net_dropped + 1;
          t.load.(s) <- t.load.(s) - 1;
          let r = t.c_req.(c) in
          t.r_out.(r) <- t.r_out.(r) - 1;
          unlink_req t r c;
          let was_comp = t.c_comp.(c) = 1 in
          free_copy t c;
          if t.r_state.(r) = rs_pending then begin
            let needs_failover =
              if t.r_put.(r) = 1 then was_comp
              else t.r_out.(r) = 0 && Sim.is_null t.r_hedge.(r)
            in
            if needs_failover && t.r_stuckref.(r) = 0 then begin
              t.r_stuckref.(r) <- 1;
              Fifo.push t.stuck.(s) r
            end
          end
          else maybe_free_req t r
        end
        else if st = st_marked then free_copy t c
      end
    done
  end

let failover t r =
  let srv = pick t t.r_shard.(r) (-1) in
  if srv < 0 then fail_req t r
  else if Proto.Retry.Budget.try_spend t.budget then begin
    t.failovers <- t.failovers + 1;
    let code = enqueue_copy t r srv ~comp:true ~peer:(-1) in
    if code >= 0 then t.r_copy_a.(r) <- code else after_lost_leg t r code
  end
  else begin
    t.budget_exhausted <- t.budget_exhausted + 1;
    fail_req t r
  end

let detect_server t s =
  if not t.alive.(s) then begin
    t.routable.(s) <- false;
    t.on_detect (Sim.now t.sim) s
  end;
  let q = t.stuck.(s) in
  while not (Fifo.is_empty q) do
    let r = Fifo.pop_exn q in
    t.r_stuckref.(r) <- 0;
    if t.r_state.(r) = rs_pending then failover t r else maybe_free_req t r
  done

let recover_server t s =
  if not t.alive.(s) then begin
    t.server_recovered <- t.server_recovered + 1;
    t.alive.(s) <- true;
    t.routable.(s) <- true;
    t.on_recover (Sim.now t.sim) s
  end

(* ------------------------------------------------------------------ *)
(* Setup *)

(* Static size-aware core split: the large pool gets the workload's
   large-class share of CPU work, measured on a scratch request stream
   (seeded independently of the run's draws). *)
let split_cores (cfg : Config.t) ds seed =
  if not cfg.Config.sizeaware || cfg.Config.cores < 2 then
    (0, cfg.Config.cores)
  else begin
    let g = Workload.Generator.create ~seed:(seed lxor 0x5EED11) ds in
    let large = ref 0.0 and total = ref 0.0 in
    for _ = 1 to 4096 do
      Workload.Generator.next_into g;
      let op =
        match Workload.Generator.last_op g with
        | Workload.Generator.Get -> Cost.Get
        | Workload.Generator.Scan -> Cost.Scan
        | Workload.Generator.Put -> Cost.Put
      in
      let c =
        Cost.cpu_time cfg.Config.cost op
          ~item_size:(Workload.Generator.last_item_size g)
      in
      total := !total +. c;
      if Workload.Generator.last_is_large g then large := !large +. c
    done;
    let share = !large /. !total in
    let l =
      int_of_float (Float.round (share *. float_of_int cfg.Config.cores))
    in
    let l = max 1 (min (cfg.Config.cores - 1) l) in
    (l, cfg.Config.cores - l)
  end

let create (cfg : Config.t) ~dataset ~offered_mops ?plan ~seed () =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hedge.Cluster: " ^ msg));
  if not (offered_mops > 0.0) then
    invalid_arg "Hedge.Cluster: offered load must be > 0";
  let sim = Sim.create ~seed () in
  let servers = Config.servers cfg in
  let cores = cfg.Config.cores in
  let inj =
    match plan with
    | None -> None
    | Some p -> Some (Fault.Inject.create ~seed:(seed lxor 0x51ED) p)
  in
  let large_cores, small_cores = split_cores cfg dataset seed in
  let rcap = 1024 and ccap = 2048 in
  let t =
    {
      sim;
      gen = Workload.Generator.create ~seed:(seed lxor 0x9E41) dataset;
      ds = dataset;
      inj;
      arrival_rng = Sim.fork_rng sim;
      route_rng = Sim.fork_rng sim;
      budget =
        (* [try_spend] needs a whole token, so a capacity below 1.0 can
           never grant a failover: model it as a drained, non-earning
           bucket rather than violating Budget.create's >= 1 floor. *)
        (if cfg.Config.budget_capacity >= 1.0 then
           Proto.Retry.Budget.create ~capacity:cfg.Config.budget_capacity
             ~earn_per_call:cfg.Config.budget_earn_per_request ()
         else begin
           let b =
             Proto.Retry.Budget.create ~capacity:1.0 ~earn_per_call:0.0 ()
           in
           ignore (Proto.Retry.Budget.try_spend b : bool);
           b
         end);
      shards = cfg.Config.shards;
      mirrors = cfg.Config.mirrors;
      cores;
      servers;
      small_cores;
      large_cores;
      sizeaware = cfg.Config.sizeaware && large_cores > 0;
      mode = cfg.Config.mode;
      route = cfg.Config.route;
      cost = cfg.Config.cost;
      shed_wm =
        (match cfg.Config.shed_watermark with Some w -> w | None -> max_int);
      q_cap =
        (match cfg.Config.queue_capacity with Some c -> c | None -> max_int);
      mean_iat_us = 1.0 /. offered_mops;
      duration_us = cfg.Config.duration_us;
      warmup_us = cfg.Config.warmup_us;
      epoch_us = cfg.Config.epoch_us;
      hedge_quantile = cfg.Config.hedge_quantile;
      min_delay_samples = cfg.Config.min_delay_samples;
      queues =
        Array.init (servers * cores) (fun _ -> Fifo.create ~dummy:(-1) ());
      core_copy = Array.make (servers * cores) (-1);
      core_handle = Array.make (servers * cores) Sim.null_handle;
      alive = Array.make servers true;
      routable = Array.make servers true;
      load = Array.make servers 0;
      stuck = Array.init servers (fun _ -> Fifo.create ~dummy:(-1) ());
      r_cap = rcap;
      r_key = Array.make rcap 0;
      r_size = Array.make rcap 0;
      r_put = Array.make rcap 0;
      r_large = Array.make rcap 0;
      r_shard = Array.make rcap 0;
      r_last = Array.make rcap (-1);
      r_copy_a = Array.make rcap (-1);
      r_copy_b = Array.make rcap (-1);
      r_out = Array.make rcap 0;
      r_state = Array.make rcap rs_pending;
      r_stuckref = Array.make rcap 0;
      r_hedge = Array.make rcap Sim.null_handle;
      r_arrive = Array.make rcap 0.0;
      r_free = Array.init rcap (fun i -> rcap - 1 - i);
      r_free_top = rcap;
      c_cap = ccap;
      c_req = Array.make ccap (-1);
      c_server = Array.make ccap (-1);
      c_state = Array.make ccap st_free;
      c_peer = Array.make ccap (-1);
      c_comp = Array.make ccap 0;
      c_free = Array.init ccap (fun i -> ccap - 1 - i);
      c_free_top = ccap;
      issued = 0;
      served = 0;
      net_dropped = 0;
      rx_dropped = 0;
      shed = 0;
      hedged_wasted = 0;
      cancelled = 0;
      requests = 0;
      completed = 0;
      failed = 0;
      hedges_issued = 0;
      ties_issued = 0;
      failovers = 0;
      budget_exhausted = 0;
      server_killed = 0;
      server_recovered = 0;
      hedge_delay_us = cfg.Config.hedge_delay_us;
      epoch_vec = Stats.Float_vec.create ();
      lat = Stats.Float_vec.create ();
      win = Stats.Windowed.create ~width:cfg.Config.window_us ();
      delays = [];
      tag_arrive = -1;
      tag_service = -1;
      tag_hedge = -1;
      tag_epoch = -1;
      on_kill = (fun _ _ -> ());
      on_detect = (fun _ _ -> ());
      on_recover = (fun _ _ -> ());
      on_delay = (fun _ _ -> ());
    }
  in
  t.tag_arrive <- Sim.register_handler sim (fun _ _ -> on_arrive t);
  t.tag_service <- Sim.register_handler sim (fun i j -> on_service t i j);
  t.tag_hedge <- Sim.register_handler sim (fun r _ -> on_hedge t r);
  t.tag_epoch <- Sim.register_handler sim (fun _ _ -> on_epoch t);
  (* compile the plan's kill/recover windows into scheduled instants *)
  (match inj with
  | None -> ()
  | Some inj ->
      let schedule_window s kill_at recover_at =
        if kill_at < t.duration_us then begin
          Sim.schedule_at sim kill_at (fun () -> kill_server t s);
          let det = kill_at +. Config.detect_us cfg in
          if det <= t.duration_us then
            Sim.schedule_at sim det (fun () -> detect_server t s);
          if recover_at < t.duration_us then
            Sim.schedule_at sim recover_at (fun () -> recover_server t s)
        end
      in
      List.iter
        (fun (s, kill_at, recover_at) ->
          if s = Fault.Plan.all then
            for s = 0 to servers - 1 do
              schedule_window s kill_at recover_at
            done
          else if s < servers then schedule_window s kill_at recover_at)
        (Fault.Inject.dead_windows inj));
  let dt = Rng.exponential t.arrival_rng ~mean:t.mean_iat_us in
  Sim.schedule_call_after sim dt ~tag:t.tag_arrive ~i:0 ~j:0;
  Sim.schedule_call_after sim t.epoch_us ~tag:t.tag_epoch ~i:0 ~j:0;
  t

let set_hooks t ?on_kill ?on_detect ?on_recover ?on_delay () =
  (match on_kill with Some f -> t.on_kill <- f | None -> ());
  (match on_detect with Some f -> t.on_detect <- f | None -> ());
  (match on_recover with Some f -> t.on_recover <- f | None -> ());
  match on_delay with Some f -> t.on_delay <- f | None -> ()

let metrics t =
  let in_flight = ref 0 in
  for c = 0 to t.c_cap - 1 do
    let st = t.c_state.(c) in
    if st = st_queued || st = st_service then incr in_flight
  done;
  let n = Stats.Float_vec.length t.lat in
  let qs =
    if n = 0 then [ Float.nan; Float.nan; Float.nan; Float.nan ]
    else Stats.Quantile.many_of_vec t.lat [ 0.50; 0.95; 0.99; 0.999 ]
  in
  let p50, p95, p99, p999 =
    match qs with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> (Float.nan, Float.nan, Float.nan, Float.nan)
  in
  {
    Metrics.issued = t.issued;
    served = t.served;
    net_dropped = t.net_dropped;
    rx_dropped = t.rx_dropped;
    shed = t.shed;
    hedged_wasted = t.hedged_wasted;
    cancelled = t.cancelled;
    in_flight_end = !in_flight;
    requests = t.requests;
    completed = t.completed;
    failed = t.failed;
    hedges_issued = t.hedges_issued;
    ties_issued = t.ties_issued;
    failovers = t.failovers;
    budget_exhausted = t.budget_exhausted;
    budget_spent = float_of_int t.failovers;
    server_killed = t.server_killed;
    server_recovered = t.server_recovered;
    samples = n;
    mean_us = (if n = 0 then Float.nan else Stats.Quantile.mean_of_vec t.lat);
    p50_us = p50;
    p95_us = p95;
    p99_us = p99;
    p999_us = p999;
    p99_series = Stats.Windowed.quantile_series t.win 0.99;
    hedge_delay_series = List.rev t.delays;
    hedge_delay_final_us = t.hedge_delay_us;
    large_cores = t.large_cores;
    small_cores = t.small_cores;
    events = Sim.events_processed t.sim;
  }

let run (cfg : Config.t) ~dataset ~offered_mops ?plan ~seed () =
  let t = create cfg ~dataset ~offered_mops ?plan ~seed () in
  Sim.run t.sim ~until:t.duration_us;
  metrics t

(* Exposed for tests *)
let sim t = t.sim
let servers t = t.servers
let hedge_delay_us t = t.hedge_delay_us
let routable_snapshot t = Array.copy t.routable
let alive_snapshot t = Array.copy t.alive
let pick_replica t ~shard ~exclude = pick t shard exclude
let load_snapshot t = Array.copy t.load
