(* Latency-anatomy reporting on top of lib/obs; see obs_report.mli. *)

let stat_cells (s : Obs.Anatomy.stat) =
  [ Report.f1 s.Obs.Anatomy.mean; Report.f1 s.Obs.Anatomy.p50; Report.f1 s.Obs.Anatomy.p99 ]

let print_anatomy (a : Obs.Anatomy.t) =
  let row (r : Obs.Anatomy.row) =
    (r.Obs.Anatomy.component :: stat_cells r.Obs.Anatomy.small)
    @ stat_cells r.Obs.Anatomy.large
    @ stat_cells r.Obs.Anatomy.all
  in
  Report.table ~title:"latency anatomy (us)"
    ~headers:
      [
        "component";
        "small mean"; "small p50"; "small p99";
        "large mean"; "large p50"; "large p99";
        "all mean"; "all p50"; "all p99";
      ]
    (List.map row (a.Obs.Anatomy.rows @ [ a.Obs.Anatomy.end_to_end ]));
  Report.note "spans: %d complete; component sums match end-to-end within %.4f us"
    a.Obs.Anatomy.spans_used a.Obs.Anatomy.max_sum_error_us

let run ?(scale = Experiment.full_scale) ?(design = Kvserver.Design.minos) ?(seed = 1)
    ?(spans = 65536) ?(sample_rate = 1.0) ?trace_out spec ~offered_mops =
  let cfg = Experiment.config_of_scale scale in
  let obs =
    Obs.Instrument.create ~spans ~sample_rate ~cores:cfg.Kvserver.Config.cores
      ~seed:(cfg.Kvserver.Config.seed + seed) ()
  in
  let metrics = Experiment.run ~cfg ~obs ~seed design spec ~offered_mops in
  let anatomy = Obs.Anatomy.compute obs.Obs.Instrument.recorder in
  Report.section
    (Printf.sprintf "Latency anatomy: %s at %.2f Mops"
       (Experiment.design_name design) offered_mops);
  Report.note "%s" (Format.asprintf "%a" Kvserver.Metrics.pp_row metrics);
  Report.note "%s" (Format.asprintf "%a" Kvserver.Metrics.pp_breakdown metrics);
  if Kvserver.Metrics.lost_total metrics > 0 then
    Report.note
      "goodput: %d of %d issued served (%s); lost %d = %d net + %d ring + %d \
       shed (%d large)"
      metrics.Kvserver.Metrics.served_total metrics.Kvserver.Metrics.issued
      (Report.pct (Kvserver.Metrics.goodput_fraction metrics))
      (Kvserver.Metrics.lost_total metrics)
      metrics.Kvserver.Metrics.net_dropped metrics.Kvserver.Metrics.rx_dropped
      (Kvserver.Metrics.shed_total metrics)
      metrics.Kvserver.Metrics.shed_large;
  print_anatomy anatomy;
  let r = obs.Obs.Instrument.recorder in
  Report.note "recorder: %d spans recorded, %d dropped (capacity %d, rate %.3f)"
    (Obs.Recorder.recorded r) (Obs.Recorder.dropped r) (Obs.Recorder.capacity r)
    (Obs.Recorder.sample_rate r);
  let d = obs.Obs.Instrument.decisions in
  if Obs.Decision_log.length d > 0 then
    Report.note "control: %d epochs, %d core-count changes, final threshold %s B"
      (Obs.Decision_log.length d) (Obs.Decision_log.moves d)
      (Report.f0 (Obs.Decision_log.threshold d (Obs.Decision_log.length d - 1)));
  (match trace_out with
  | None -> ()
  | Some path ->
      Obs.Chrome_trace.write ~path
        ~name:(Printf.sprintf "minos %s" (Experiment.design_name design))
        ?timeline:obs.Obs.Instrument.timeline ~decisions:d r;
      Report.note "trace written to %s (load in Perfetto / chrome://tracing)" path);
  (obs, anatomy, metrics)
