(* Elastic-resharding experiment front end; see reshard.mli. *)

type t = {
  servers : int;
  n_servers : int;
  offered_mops : float;
  seed : int;
  plan : Shardmgr.Plan.t;
  manager_events : int;
  table : Shardmgr.Table.t;
  main : Shardmgr.Run.t;
  baseline : Shardmgr.Run.t;
}

let log_kind = function
  | Shardmgr.Table.Drain_start -> Obs.Decision_log.kind_drain_start
  | Shardmgr.Table.Dual_start -> Obs.Decision_log.kind_dual_start
  | Shardmgr.Table.Cutover -> Obs.Decision_log.kind_cutover
  | Shardmgr.Table.Replica_add -> Obs.Decision_log.kind_replica_add
  | Shardmgr.Table.Replica_drop -> Obs.Decision_log.kind_replica_drop

(* Shards the plan ever removes: the manager must not replicate them
   (compile rejects removing a shard with live replicas, and a replica
   of a gone shard is useless anyway). *)
let removed_shards (plan : Shardmgr.Plan.t) =
  List.filter_map
    (function
      | Shardmgr.Plan.Remove_server { server; _ } -> Some server
      | _ -> None)
    plan.Shardmgr.Plan.events

let manager_plan ~mcfg ~window_us ~duration_us ~servers ~plan
    (pass1 : Shardmgr.Run.t) =
  let series = Array.sub pass1.Shardmgr.Run.shard_series 0 servers in
  let removed = removed_shards plan in
  let events =
    Shardmgr.Manager.decide_all mcfg ~window_us series
    |> List.filter (function
         | Shardmgr.Plan.Add_replica { shard; at_us }
         | Shardmgr.Plan.Drop_replica { shard; at_us } ->
             (not (List.mem shard removed)) && at_us < duration_us
         | _ -> true)
  in
  ( { plan with Shardmgr.Plan.events = plan.Shardmgr.Plan.events @ events },
    List.length events )

let run ?cfg ?(design = Kvserver.Design.minos) ?(baseline = Kvserver.Design.hkh)
    ?vnodes ?groups ?probe ?(seed = 1) ?manage ?fault ?trace_out ?spans
    ?sample_rate ~servers ~plan workload ~offered_mops () =
  let cfg =
    match cfg with
    | Some c -> c
    | None ->
        let s = Experiment.full_scale in
        {
          (Experiment.config_of_scale s) with
          Kvserver.Config.window_us = Some s.Experiment.window_us;
        }
  in
  (* The reshard driver consumes the scenario's flat mix; arrival/TTL/scan
     extras are single-engine features (see Experiment.run_spec). *)
  let workload = workload.Workload.Scenario.spec in
  let dataset = Experiment.dataset_for workload in
  let duration_us = cfg.Kvserver.Config.duration_us in
  let compile plan =
    Shardmgr.Table.compile ?vnodes ?groups ?probe ~seed ~servers ~workload
      ~dataset ~duration_us ~offered_mops plan
  in
  let go ?instrument design table =
    Shardmgr.Run.run ~seed ?fault ?instrument ~map:Par.map_list ~cfg ~design
      ~workload ~table ()
  in
  (* Managed mode is two deterministic passes: record the per-shard p99
     series under the membership-only plan, fold it through the manager,
     replay with the emitted replica events appended.  (A mid-run
     feedback loop would not reproduce across MINOS_JOBS.) *)
  let plan, manager_events =
    match manage with
    | None -> (plan, 0)
    | Some mcfg ->
        let window_us =
          match cfg.Kvserver.Config.window_us with
          | Some w -> w
          | None ->
              invalid_arg "Reshard.run: manage mode needs cfg.window_us"
        in
        let pass1 = go design (compile plan) in
        manager_plan ~mcfg ~window_us ~duration_us ~servers ~plan pass1
  in
  let table = compile plan in
  let n_servers = Shardmgr.Table.n_servers table in
  let instruments =
    match trace_out with
    | None -> None
    | Some _ ->
        Some
          (Array.init n_servers (fun s ->
               Obs.Instrument.create ~server:s ?spans ?sample_rate
                 ~cores:cfg.Kvserver.Config.cores
                 ~seed:(seed + (97 * s) + 0x0b5) ()))
  in
  let instrument = Option.map (fun arr s -> arr.(s)) instruments in
  let main = go ?instrument design table in
  let baseline = go baseline table in
  (match (trace_out, instruments) with
  | Some path, Some arr ->
      (* One pseudo-process carries the planned reshard schedule, so the
         drain / dual / cutover / replica marks land on their own track
         next to the per-shard sections. *)
      let mgr =
        Obs.Instrument.create ~server:n_servers ~spans:1 ~timeline:false
          ~cores:1 ~seed:0 ()
      in
      List.iter
        (fun (ev : Shardmgr.Table.logged) ->
          Obs.Decision_log.record_reshard mgr.Obs.Instrument.decisions
            ~kind:(log_kind ev.Shardmgr.Table.kind) ~now:ev.Shardmgr.Table.at
            ~until:ev.Shardmgr.Table.until ~server:ev.Shardmgr.Table.server
            ~shard:ev.Shardmgr.Table.shard ~epoch:ev.Shardmgr.Table.epoch)
        (Shardmgr.Table.events table);
      let sections =
        Array.to_list
          (Array.mapi (fun s ins -> (Printf.sprintf "shard %d" s, ins)) arr)
        @ [ ("shardmgr", mgr) ]
      in
      Obs.Chrome_trace.write_cluster ~path sections
  | _ -> ());
  {
    servers;
    n_servers;
    offered_mops;
    seed;
    plan;
    manager_events;
    table;
    main;
    baseline;
  }

(* ------------------------------------------------------------------ *)
(* Printing *)

let kind_str k = Obs.Decision_log.kind_name (log_kind k)

let run_table label (r : Shardmgr.Run.t) =
  let m = r.Shardmgr.Run.metrics in
  let rows =
    Array.to_list
      (Array.mapi
         (fun s (sm : Kvserver.Metrics.t) ->
           [
             string_of_int s;
             Report.pct m.Kvcluster.Metrics.shard_share.(s);
             Report.f2 sm.Kvserver.Metrics.throughput_mops;
             Report.f1 sm.Kvserver.Metrics.p50_us;
             Report.f1 sm.Kvserver.Metrics.p99_us;
             string_of_int sm.Kvserver.Metrics.issued;
             (if sm.Kvserver.Metrics.stable then "yes" else "NO");
           ])
         m.Kvcluster.Metrics.per_shard)
  in
  Report.table
    ~title:(Printf.sprintf "%s: per-server (%s)" label r.Shardmgr.Run.design_name)
    ~headers:[ "srv"; "share"; "tput Mops"; "p50 us"; "p99 us"; "issued"; "stable" ]
    rows;
  let p = r.Shardmgr.Run.protocol in
  Report.note
    "cluster: tput %s Mops  p99 %s us  migration p99 %s us  steady p99 %s us"
    (Report.f2 m.Kvcluster.Metrics.throughput_mops)
    (Report.f1 m.Kvcluster.Metrics.p99_us)
    (Report.f1 r.Shardmgr.Run.mig_p99_us)
    (Report.f1 r.Shardmgr.Run.steady_p99_us);
  Report.note
    "loss accounting %s  keys: %d transferred, %d fallback reads, lost %d, duplicated %d, stale %d"
    (if Kvcluster.Metrics.telescopes m then "exact" else "BROKEN")
    p.Shardmgr.Protocol.transferred p.Shardmgr.Protocol.fallback_reads
    p.Shardmgr.Protocol.lost p.Shardmgr.Protocol.duplicated
    p.Shardmgr.Protocol.stale

let print t =
  Report.section
    (Printf.sprintf
       "Reshard: plan '%s', %d -> %d servers, %s Mops offered, seed %d"
       t.plan.Shardmgr.Plan.name t.servers t.n_servers
       (Report.f2 t.offered_mops) t.seed);
  let events = Shardmgr.Table.events t.table in
  Report.note "%d routing epochs, %d protocol events%s"
    (Shardmgr.Table.epoch_count t.table)
    (List.length events)
    (if t.manager_events > 0 then
       Printf.sprintf " (%d appended by the manager)" t.manager_events
     else "");
  List.iter
    (fun (ev : Shardmgr.Table.logged) ->
      Report.note "  %8s us  %-12s srv %d  shard/group %d  epoch %d"
        (Report.f1 ev.Shardmgr.Table.at)
        (kind_str ev.Shardmgr.Table.kind)
        ev.Shardmgr.Table.server ev.Shardmgr.Table.shard
        ev.Shardmgr.Table.epoch)
    events;
  run_table "main" t.main;
  run_table "baseline" t.baseline

(* ------------------------------------------------------------------ *)
(* JSON *)

let fl x = if Float.is_nan x then "null" else Printf.sprintf "%.3f" x

let run_json b indent (r : Shardmgr.Run.t) =
  let m = r.Shardmgr.Run.metrics in
  let pad = String.make indent ' ' in
  Buffer.add_string b
    (Printf.sprintf "%s\"design\": \"%s\",\n" pad r.Shardmgr.Run.design_name);
  Buffer.add_string b
    (Printf.sprintf
       "%s\"issued\": %d, \"served\": %d, \"net_dropped\": %d, \"rx_dropped\": \
        %d, \"shed_small\": %d, \"shed_large\": %d, \"in_flight_end\": %d,\n"
       pad m.Kvcluster.Metrics.issued m.Kvcluster.Metrics.served_total
       m.Kvcluster.Metrics.net_dropped m.Kvcluster.Metrics.rx_dropped
       m.Kvcluster.Metrics.shed_small m.Kvcluster.Metrics.shed_large
       m.Kvcluster.Metrics.in_flight_end);
  Buffer.add_string b
    (Printf.sprintf
       "%s\"throughput_mops\": %s, \"p50_us\": %s, \"p99_us\": %s, \
        \"worst_shard_p99_us\": %s, \"stable\": %b, \"telescopes\": %b,\n"
       pad
       (fl m.Kvcluster.Metrics.throughput_mops)
       (fl m.Kvcluster.Metrics.p50_us)
       (fl m.Kvcluster.Metrics.p99_us)
       (fl m.Kvcluster.Metrics.worst_shard_p99_us)
       m.Kvcluster.Metrics.stable
       (Kvcluster.Metrics.telescopes m));
  Buffer.add_string b
    (Printf.sprintf "%s\"mig_p99_us\": %s, \"steady_p99_us\": %s,\n" pad
       (fl r.Shardmgr.Run.mig_p99_us)
       (fl r.Shardmgr.Run.steady_p99_us));
  let p = r.Shardmgr.Run.protocol in
  Buffer.add_string b
    (Printf.sprintf
       "%s\"protocol\": {\"ops\": %d, \"puts\": %d, \"gets\": %d, \
        \"fallback_reads\": %d, \"transferred\": %d, \"lost\": %d, \
        \"duplicated\": %d, \"stale\": %d},\n"
       pad p.Shardmgr.Protocol.ops p.Shardmgr.Protocol.puts
       p.Shardmgr.Protocol.gets p.Shardmgr.Protocol.fallback_reads
       p.Shardmgr.Protocol.transferred p.Shardmgr.Protocol.lost
       p.Shardmgr.Protocol.duplicated p.Shardmgr.Protocol.stale);
  Buffer.add_string b (Printf.sprintf "%s\"p99_series\": [" pad);
  List.iteri
    (fun i (st, p99) ->
      Buffer.add_string b
        (Printf.sprintf "%s[%s, %s]" (if i = 0 then "" else ", ") (fl st)
           (fl p99)))
    r.Shardmgr.Run.p99_series;
  Buffer.add_string b "],\n";
  Buffer.add_string b (Printf.sprintf "%s\"per_shard\": [\n" pad);
  let n = Array.length m.Kvcluster.Metrics.per_shard in
  Array.iteri
    (fun s (sm : Kvserver.Metrics.t) ->
      Buffer.add_string b
        (Printf.sprintf
           "%s  {\"server\": %d, \"share\": %s, \"throughput_mops\": %s, \
            \"p99_us\": %s, \"issued\": %d, \"served\": %d, \"stable\": %b}%s\n"
           pad s
           (fl m.Kvcluster.Metrics.shard_share.(s))
           (fl sm.Kvserver.Metrics.throughput_mops)
           (fl sm.Kvserver.Metrics.p99_us)
           sm.Kvserver.Metrics.issued sm.Kvserver.Metrics.served_total
           sm.Kvserver.Metrics.stable
           (if s = n - 1 then "" else ",")))
    m.Kvcluster.Metrics.per_shard;
  Buffer.add_string b (Printf.sprintf "%s]\n" pad)

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"plan\": \"%s\",\n  \"servers\": %d,\n  \"n_servers\": %d,\n  \
        \"offered_mops\": %s,\n  \"seed\": %d,\n  \"manager_events\": %d,\n"
       t.plan.Shardmgr.Plan.name t.servers t.n_servers (fl t.offered_mops)
       t.seed t.manager_events);
  Buffer.add_string b "  \"events\": [\n";
  let events = Shardmgr.Table.events t.table in
  let ne = List.length events in
  List.iteri
    (fun i (ev : Shardmgr.Table.logged) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"kind\": \"%s\", \"at_us\": %s, \"until_us\": %s, \
            \"server\": %d, \"shard\": %d, \"epoch\": %d}%s\n"
           (kind_str ev.Shardmgr.Table.kind)
           (fl ev.Shardmgr.Table.at)
           (fl ev.Shardmgr.Table.until)
           ev.Shardmgr.Table.server ev.Shardmgr.Table.shard
           ev.Shardmgr.Table.epoch
           (if i = ne - 1 then "" else ",")))
    events;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"main\": {\n";
  run_json b 4 t.main;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"baseline\": {\n";
  run_json b 4 t.baseline;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b
