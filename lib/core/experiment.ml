type design = Kvserver.Design.t

let all_designs = Kvserver.Design.all ()

let design_name = Kvserver.Design.name

let design_of_name = Kvserver.Design.find

let maker = Kvserver.Design.make

type scale = {
  duration_us : float;
  warmup_us : float;
  epoch_us : float;
  slo_iters : int;
  phase_us : float;
  window_us : float;
}

let full_scale =
  {
    duration_us = 400_000.0;
    warmup_us = 150_000.0;
    epoch_us = 50_000.0;
    slo_iters = 7;
    phase_us = 2_000_000.0;
    window_us = 200_000.0;
  }

let quick_scale =
  {
    duration_us = 120_000.0;
    warmup_us = 40_000.0;
    epoch_us = 15_000.0;
    slo_iters = 7;
    phase_us = 500_000.0;
    window_us = 50_000.0;
  }

(* Dataset memoization: sizes depend on shape fields only, so the key is
   the tuple of those fields.  Guarded by a mutex — {!Par} runs experiment
   points on several domains, and all of them share this cache.  Creation
   happens under the lock so a dataset is built exactly once (a duplicate
   build would waste hundreds of milliseconds and break sharing). *)
let dataset_mutex = Mutex.create ()

let dataset_cache : (int * int * int * float * float * int, Workload.Dataset.t) Hashtbl.t
    =
  Hashtbl.create 8

let dataset_for (spec : Workload.Spec.t) =
  let key =
    ( spec.Workload.Spec.n_keys,
      spec.Workload.Spec.n_large_keys,
      spec.Workload.Spec.s_large_max,
      spec.Workload.Spec.tiny_fraction,
      spec.Workload.Spec.zipf_theta,
      spec.Workload.Spec.key_size )
  in
  Mutex.lock dataset_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock dataset_mutex)
    (fun () ->
      match Hashtbl.find_opt dataset_cache key with
      | Some d -> d
      | None ->
          let d = Workload.Dataset.create spec in
          Hashtbl.add dataset_cache key d;
          d)

let config_of_scale ?(base = Kvserver.Config.default) scale =
  {
    base with
    Kvserver.Config.duration_us = scale.duration_us;
    warmup_us = scale.warmup_us;
    epoch_us = scale.epoch_us;
  }

module Spec = struct
  type t = {
    design : Kvserver.Design.t;
    workload : Workload.Scenario.t;
    offered_mops : float;
    cfg : Kvserver.Config.t;
    seed : int;
    dynamic : Workload.Dynamic.t option;
    store : Kvstore.Store.t option;
    obs : Obs.Instrument.t option;
    fault : Fault.Inject.t option;
  }

  let make design =
    {
      design;
      workload = Workload.Scenario.default;
      offered_mops = 3.0;
      cfg = config_of_scale full_scale;
      seed = 1;
      dynamic = None;
      store = None;
      obs = None;
      fault = None;
    }

  let with_design design t = { t with design }
  let with_workload workload t = { t with workload }
  let with_workload_spec spec t = { t with workload = Workload.Scenario.of_spec spec }
  let with_load offered_mops t = { t with offered_mops }
  let with_cfg cfg t = { t with cfg }
  let with_seed seed t = { t with seed }
  let with_dynamic d t = { t with dynamic = Some d }
  let with_store s t = { t with store = Some s }
  let with_obs o t = { t with obs = Some o }
  let with_fault f t = { t with fault = Some f }
end

let with_scale scale (s : Spec.t) =
  { s with Spec.cfg = config_of_scale ~base:s.Spec.cfg scale }

(* How many requests a timed capture holds for a [replay] scenario: about
   one run's worth at the offered rate, clamped so captures stay cheap.
   The replay loops (re-based each lap) if the run outlasts it. *)
let capture_n ~offered_mops (cfg : Kvserver.Config.t) =
  let expected = offered_mops *. cfg.Kvserver.Config.duration_us in
  max 1024 (min 262_144 (int_of_float expected))

let run_spec_raw (s : Spec.t) =
  let sc = s.Spec.workload in
  (match Workload.Scenario.validate sc with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Experiment.run_spec: " ^ msg));
  let dataset = dataset_for sc.Workload.Scenario.spec in
  let gen = Workload.Scenario.generator ~seed:(s.Spec.seed + 101) sc dataset in
  let cfg =
    { s.Spec.cfg with Kvserver.Config.seed = s.Spec.cfg.Kvserver.Config.seed + s.Spec.seed }
  in
  (* Scenario extras.  Every one of these is [None] for a plain scenario,
     so runs through the original spec path stay byte-identical. *)
  let pacing =
    match sc.Workload.Scenario.arrival with
    | Workload.Arrival.Poisson -> None
    | arrival ->
        let base = s.Spec.offered_mops in
        Some
          {
            Kvserver.Engine.rate_at = (fun now -> Workload.Arrival.rate_at arrival ~base now);
            next_change = (fun now -> Workload.Arrival.next_change arrival ~base now);
          }
  in
  let residency =
    match (sc.Workload.Scenario.ttl_us, sc.Workload.Scenario.mem_fraction) with
    | None, None -> None
    | ttl_us, mem_fraction ->
        let budget_bytes =
          Option.map
            (fun f ->
              max 1
                (int_of_float
                   (f *. float_of_int (Workload.Dataset.total_value_bytes dataset))))
            mem_fraction
        in
        let res = Kvserver.Residency.create ?ttl_us ?budget_bytes dataset in
        ignore (Kvserver.Residency.populate res ~now:0.0);
        Some res
  in
  let sweep_us =
    match residency with None -> None | Some _ -> sc.Workload.Scenario.sweep_us
  in
  let timed =
    if not sc.Workload.Scenario.replay then None
    else
      Some
        (Workload.Scenario.capture ~seed:(s.Spec.seed + 211) sc dataset
           ~rate_mops:s.Spec.offered_mops
           ~n:(capture_n ~offered_mops:s.Spec.offered_mops cfg))
  in
  let eng =
    Kvserver.Engine.create ?dynamic:s.Spec.dynamic ?store:s.Spec.store ?pacing ?timed
      ?residency ?sweep_us ?obs:s.Spec.obs ?fault:s.Spec.fault cfg gen
      ~offered_mops:s.Spec.offered_mops
  in
  let metrics = Kvserver.Engine.run eng (Kvserver.Design.make s.Spec.design) in
  (metrics, Kvserver.Engine.raw_latencies eng)

let run_spec s = fst (run_spec_raw s)

let spec_of ?cfg ?dynamic ?store ?obs ?fault ?(seed = 1) design workload ~offered_mops =
  {
    Spec.design;
    workload = Workload.Scenario.of_spec workload;
    offered_mops;
    cfg = (match cfg with Some c -> c | None -> config_of_scale full_scale);
    seed;
    dynamic;
    store;
    obs;
    fault;
  }

let run_raw ?cfg ?dynamic ?store ?obs ?fault ?seed design spec ~offered_mops =
  run_spec_raw (spec_of ?cfg ?dynamic ?store ?obs ?fault ?seed design spec ~offered_mops)

let run ?cfg ?dynamic ?store ?obs ?fault ?seed design spec ~offered_mops =
  fst (run_raw ?cfg ?dynamic ?store ?obs ?fault ?seed design spec ~offered_mops)

let better (a : Kvserver.Metrics.t) (b : Kvserver.Metrics.t) =
  if a.Kvserver.Metrics.stable <> b.Kvserver.Metrics.stable then
    if a.Kvserver.Metrics.stable then a else b
  else if
    abs_float (a.Kvserver.Metrics.throughput_mops -. b.Kvserver.Metrics.throughput_mops)
    > 0.02 *. Float.max a.Kvserver.Metrics.throughput_mops 0.01
  then
    if a.Kvserver.Metrics.throughput_mops > b.Kvserver.Metrics.throughput_mops then a
    else b
  else if a.Kvserver.Metrics.p99_us <= b.Kvserver.Metrics.p99_us then a
  else b

let run_best_handoff ?cfg ?seed design spec ~offered_mops =
  let base = match cfg with Some c -> c | None -> config_of_scale full_scale in
  [ 1; 2; 3 ]
  |> List.filter (fun h -> h < base.Kvserver.Config.cores)
  |> Par.map_list (fun handoff_cores ->
         run ~cfg:{ base with Kvserver.Config.handoff_cores } ?seed design spec
           ~offered_mops)
  |> function
  | [] -> invalid_arg "run_sho_best: no valid handoff configuration"
  | first :: rest -> List.fold_left better first rest

let run_sho_best ?cfg ?seed spec ~offered_mops =
  run_best_handoff ?cfg ?seed Kvserver.Design.sho spec ~offered_mops

let run_trace ?cfg ?(seed = 1) design trace ~spec ~offered_mops =
  if Workload.Trace.length trace = 0 then invalid_arg "run_trace: empty trace";
  let cfg = match cfg with Some c -> c | None -> config_of_scale full_scale in
  let cfg = { cfg with Kvserver.Config.seed = cfg.Kvserver.Config.seed + seed } in
  let gen = Workload.Generator.create ~seed:(seed + 101) (dataset_for spec) in
  let eng =
    if Workload.Trace.timed trace then
      (* A timed trace carries its own arrival process: replay it at the
         recorded pacing (looping with rebasing if the run outlasts it)
         instead of drawing Poisson arrivals at [offered_mops]. *)
      Kvserver.Engine.create ~timed:trace cfg gen ~offered_mops
    else
      let next = Workload.Trace.replayer ~loop:true trace in
      let source () = Option.get (next ()) in
      Kvserver.Engine.create ~source cfg gen ~offered_mops
  in
  Kvserver.Engine.run eng (Kvserver.Design.make design)

type replicated = {
  runs : Kvserver.Metrics.t list;
  p99_mean : float;
  p99_stddev : float;
  throughput_mean : float;
}

let run_replicated ?cfg ?(seeds = [ 1; 2; 3 ]) design spec ~offered_mops =
  if seeds = [] then invalid_arg "run_replicated: need at least one seed";
  let runs = Par.map_list (fun seed -> run ?cfg ~seed design spec ~offered_mops) seeds in
  let p99s = Stats.Summary.create () and tput = Stats.Summary.create () in
  List.iter
    (fun (m : Kvserver.Metrics.t) ->
      if not (Float.is_nan m.Kvserver.Metrics.p99_us) then
        Stats.Summary.add p99s m.Kvserver.Metrics.p99_us;
      Stats.Summary.add tput m.Kvserver.Metrics.throughput_mops)
    runs;
  {
    runs;
    p99_mean = Stats.Summary.mean p99s;
    p99_stddev = Stats.Summary.stddev p99s;
    throughput_mean = Stats.Summary.mean tput;
  }

let sweep ?cfg ?(sho_best = false) design spec ~loads_mops =
  let search_handoff =
    sho_best && Kvserver.Design.supports design Kvserver.Design.Handoff_cores
  in
  Par.map_list
    (fun load ->
      let m =
        if search_handoff then run_best_handoff ?cfg design spec ~offered_mops:load
        else run ?cfg design spec ~offered_mops:load
      in
      (load, m))
    loads_mops
