type design = Minos | Hkh | Hkh_ws | Sho

let all_designs = [ Minos; Hkh; Hkh_ws; Sho ]

let design_name = function
  | Minos -> Kvserver.Design_minos.name
  | Hkh -> Kvserver.Design_hkh.name
  | Hkh_ws -> Kvserver.Design_hkh_ws.name
  | Sho -> Kvserver.Design_sho.name

let design_of_name s =
  match String.lowercase_ascii s with
  | "minos" -> Some Minos
  | "hkh" -> Some Hkh
  | "hkh+ws" | "hkh_ws" | "hkhws" | "ws" -> Some Hkh_ws
  | "sho" -> Some Sho
  | _ -> None

let maker = function
  | Minos -> Kvserver.Design_minos.make
  | Hkh -> Kvserver.Design_hkh.make
  | Hkh_ws -> Kvserver.Design_hkh_ws.make
  | Sho -> Kvserver.Design_sho.make

type scale = {
  duration_us : float;
  warmup_us : float;
  epoch_us : float;
  slo_iters : int;
  phase_us : float;
  window_us : float;
}

let full_scale =
  {
    duration_us = 400_000.0;
    warmup_us = 150_000.0;
    epoch_us = 50_000.0;
    slo_iters = 7;
    phase_us = 2_000_000.0;
    window_us = 200_000.0;
  }

let quick_scale =
  {
    duration_us = 120_000.0;
    warmup_us = 40_000.0;
    epoch_us = 15_000.0;
    slo_iters = 7;
    phase_us = 500_000.0;
    window_us = 50_000.0;
  }

(* Dataset memoization: sizes depend on shape fields only, so the key is
   the tuple of those fields.  Guarded by a mutex — {!Par} runs experiment
   points on several domains, and all of them share this cache.  Creation
   happens under the lock so a dataset is built exactly once (a duplicate
   build would waste hundreds of milliseconds and break sharing). *)
let dataset_mutex = Mutex.create ()

let dataset_cache : (int * int * int * float * float * int, Workload.Dataset.t) Hashtbl.t
    =
  Hashtbl.create 8

let dataset_for (spec : Workload.Spec.t) =
  let key =
    ( spec.Workload.Spec.n_keys,
      spec.Workload.Spec.n_large_keys,
      spec.Workload.Spec.s_large_max,
      spec.Workload.Spec.tiny_fraction,
      spec.Workload.Spec.zipf_theta,
      spec.Workload.Spec.key_size )
  in
  Mutex.lock dataset_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock dataset_mutex)
    (fun () ->
      match Hashtbl.find_opt dataset_cache key with
      | Some d -> d
      | None ->
          let d = Workload.Dataset.create spec in
          Hashtbl.add dataset_cache key d;
          d)

let config_of_scale ?(base = Kvserver.Config.default) scale =
  {
    base with
    Kvserver.Config.duration_us = scale.duration_us;
    warmup_us = scale.warmup_us;
    epoch_us = scale.epoch_us;
  }

let run_raw ?cfg ?dynamic ?store ?obs ?fault ?(seed = 1) design spec ~offered_mops =
  let cfg = match cfg with Some c -> c | None -> config_of_scale full_scale in
  let dataset = dataset_for spec in
  let gen =
    Workload.Generator.create ~seed:(seed + 101)
      ~p_large:spec.Workload.Spec.p_large ~get_ratio:spec.Workload.Spec.get_ratio dataset
  in
  let cfg = { cfg with Kvserver.Config.seed = cfg.Kvserver.Config.seed + seed } in
  let eng = Kvserver.Engine.create ?dynamic ?store ?obs ?fault cfg gen ~offered_mops in
  let metrics = Kvserver.Engine.run eng (maker design) in
  (metrics, Kvserver.Engine.raw_latencies eng)

let run ?cfg ?dynamic ?store ?obs ?fault ?seed design spec ~offered_mops =
  fst (run_raw ?cfg ?dynamic ?store ?obs ?fault ?seed design spec ~offered_mops)

let better (a : Kvserver.Metrics.t) (b : Kvserver.Metrics.t) =
  if a.Kvserver.Metrics.stable <> b.Kvserver.Metrics.stable then
    if a.Kvserver.Metrics.stable then a else b
  else if
    abs_float (a.Kvserver.Metrics.throughput_mops -. b.Kvserver.Metrics.throughput_mops)
    > 0.02 *. Float.max a.Kvserver.Metrics.throughput_mops 0.01
  then
    if a.Kvserver.Metrics.throughput_mops > b.Kvserver.Metrics.throughput_mops then a
    else b
  else if a.Kvserver.Metrics.p99_us <= b.Kvserver.Metrics.p99_us then a
  else b

let run_sho_best ?cfg ?seed spec ~offered_mops =
  let base = match cfg with Some c -> c | None -> config_of_scale full_scale in
  [ 1; 2; 3 ]
  |> List.filter (fun h -> h < base.Kvserver.Config.cores)
  |> Par.map_list (fun handoff_cores ->
         run ~cfg:{ base with Kvserver.Config.handoff_cores } ?seed Sho spec
           ~offered_mops)
  |> function
  | [] -> invalid_arg "run_sho_best: no valid handoff configuration"
  | first :: rest -> List.fold_left better first rest

let run_trace ?cfg ?(seed = 1) design trace ~spec ~offered_mops =
  if Array.length trace = 0 then invalid_arg "run_trace: empty trace";
  let cfg = match cfg with Some c -> c | None -> config_of_scale full_scale in
  let cfg = { cfg with Kvserver.Config.seed = cfg.Kvserver.Config.seed + seed } in
  let gen = Workload.Generator.create ~seed:(seed + 101) (dataset_for spec) in
  let next = Workload.Trace.replayer ~loop:true trace in
  let source () = Option.get (next ()) in
  let eng = Kvserver.Engine.create ~source cfg gen ~offered_mops in
  Kvserver.Engine.run eng (maker design)

type replicated = {
  runs : Kvserver.Metrics.t list;
  p99_mean : float;
  p99_stddev : float;
  throughput_mean : float;
}

let run_replicated ?cfg ?(seeds = [ 1; 2; 3 ]) design spec ~offered_mops =
  if seeds = [] then invalid_arg "run_replicated: need at least one seed";
  let runs = Par.map_list (fun seed -> run ?cfg ~seed design spec ~offered_mops) seeds in
  let p99s = Stats.Summary.create () and tput = Stats.Summary.create () in
  List.iter
    (fun (m : Kvserver.Metrics.t) ->
      if not (Float.is_nan m.Kvserver.Metrics.p99_us) then
        Stats.Summary.add p99s m.Kvserver.Metrics.p99_us;
      Stats.Summary.add tput m.Kvserver.Metrics.throughput_mops)
    runs;
  {
    runs;
    p99_mean = Stats.Summary.mean p99s;
    p99_stddev = Stats.Summary.stddev p99s;
    throughput_mean = Stats.Summary.mean tput;
  }

let sweep ?cfg ?(sho_best = false) design spec ~loads_mops =
  Par.map_list
    (fun load ->
      let m =
        if sho_best && design = Sho then run_sho_best ?cfg spec ~offered_mops:load
        else run ?cfg design spec ~offered_mops:load
      in
      (load, m))
    loads_mops
