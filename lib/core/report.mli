(** Plain-text rendering of experiment output.

    The benchmark harness prints each figure/table of the paper as an
    aligned text table; these helpers keep the formatting in one place. *)

val table : title:string -> headers:string list -> string list list -> unit
(** Print a titled, column-aligned table to stdout.  When the
    [MINOS_CSV_DIR] environment variable names a directory, the same data
    is also written there as a CSV file (named after the slugified title)
    so figures can be re-plotted externally. *)

val section : string -> unit
(** Print a section banner. *)

val note : ('a, unit, string, unit) format4 -> 'a
(** Print an indented free-form note line. *)

val f1 : float -> string
(** Format with 1 decimal, with [nan] rendered as ["-"]. *)

val f2 : float -> string

val f0 : float -> string

val pct : float -> string
(** Format a 0..1 fraction as a percentage. *)
