(** Running a (design × workload × arrival rate) point.

    This is the library's front door for the evaluation: pick a design,
    a workload spec and an offered load, get back {!Kvserver.Metrics.t}.
    Datasets are memoized across runs (their sizes depend only on the
    dataset-shape fields of the spec, not on the request mix); the cache
    is mutex-guarded, so runs may execute on any domain.

    Designs are {!Kvserver.Design} values — first-class modules looked up
    through the registry, so anything {!Kvserver.Design.register}ed is
    runnable here without new cases anywhere.

    {!sweep}, {!run_sho_best} and {!run_replicated} fan their independent
    points out over {!Par}'s domain pool.  Every point owns its own
    simulator and RNG streams and derives its seeds from the job, so
    parallel results are bit-identical to sequential ([MINOS_JOBS=1])
    ones. *)

type design = Kvserver.Design.t

val all_designs : design list
(** The registry's designs ({!Kvserver.Design.all}): builtins
    [minos; hkh; hkh_ws; sho] plus anything registered since. *)

val design_name : design -> string

val design_of_name : string -> design option
(** Case-insensitive registry lookup; accepts ["minos"], ["hkh"],
    ["hkh+ws"/"hkh_ws"/"ws"], ["sho"] and any registered alias. *)

val maker : design -> Kvserver.Engine.t -> Kvserver.Engine.design
(** [Kvserver.Design.make]. *)

(** Time parameters for one simulated run; see DESIGN.md on time scaling
    versus the paper's 60-second runs. *)
type scale = {
  duration_us : float;
  warmup_us : float;
  epoch_us : float;
  slo_iters : int;   (** bisection iterations for SLO searches *)
  phase_us : float;  (** dynamic-workload phase length (paper: 20 s) *)
  window_us : float; (** p99 reporting window (paper: 1 s) *)
}

val full_scale : scale
(** 400 ms runs (150 ms warm-up), 50 ms epochs, 7 bisection iterations,
    2 s dynamic phases with 200 ms windows. *)

val quick_scale : scale
(** Roughly 4× cheaper; used by tests and [--quick] benches. *)

val dataset_for : Workload.Spec.t -> Workload.Dataset.t
(** Memoized dataset construction. *)

val config_of_scale : ?base:Kvserver.Config.t -> scale -> Kvserver.Config.t

(** Typed run specification.

    One record holds everything {!run} used to take as optional
    arguments.  Build one with {!Spec.make} and refine it with the
    [with_*] builders (each returns an updated copy, so they chain with
    [|>]):

    {[
      Experiment.Spec.make Kvserver.Design.minos
      |> Experiment.Spec.with_scale Experiment.quick_scale
      |> Experiment.Spec.with_load 3.0
      |> Experiment.Spec.with_seed 7
      |> Experiment.run_spec
    ]} *)
module Spec : sig
  type t = {
    design : Kvserver.Design.t;
    workload : Workload.Scenario.t;
    offered_mops : float;
    cfg : Kvserver.Config.t;
    seed : int;
    dynamic : Workload.Dynamic.t option;
    store : Kvstore.Store.t option;
    obs : Obs.Instrument.t option;
    fault : Fault.Inject.t option;
  }

  val make : Kvserver.Design.t -> t
  (** Defaults: the default workload scenario, 3.0 Mops offered load,
      {!config_of_scale}[ full_scale], seed 1, no dynamic phase plan, no
      store, no recorder, no fault plan. *)

  val with_design : Kvserver.Design.t -> t -> t

  val with_workload : Workload.Scenario.t -> t -> t
  (** Select the workload as a scenario — registry entries
      ({!Workload.Scenario.find}) or hand-built records both work. *)

  val with_workload_spec : Workload.Spec.t -> t -> t
  (** Wrap a flat spec ({!Workload.Scenario.of_spec}); runs exactly as the
      pre-scenario API did. *)

  val with_load : float -> t -> t
  (** Offered load in million ops/s. *)

  val with_cfg : Kvserver.Config.t -> t -> t

  val with_seed : int -> t -> t

  val with_dynamic : Workload.Dynamic.t -> t -> t
  val with_store : Kvstore.Store.t -> t -> t
  val with_obs : Obs.Instrument.t -> t -> t
  val with_fault : Fault.Inject.t -> t -> t
end

val with_scale : scale -> Spec.t -> Spec.t
(** Rewrite the spec's config time parameters via {!config_of_scale}
    (keeping its other fields). *)

val run_spec : Spec.t -> Kvserver.Metrics.t
(** Simulate one point.  The spec's workload scenario is compiled onto the
    engine: a non-Poisson arrival process becomes a pacing function, a TTL
    or memory budget attaches a {!Kvserver.Residency} model (populated in
    key order up to the budget, with the background sweep scheduled when
    the scenario asks for one), scan knobs flow into the generator, and a
    [replay] scenario first captures a timed trace
    ({!Workload.Scenario.capture}, seeded from the spec's seed) and runs
    through it.  Plain scenarios take none of these paths and reproduce
    the pre-scenario byte streams exactly.  [spec.obs] attaches a flight
    recorder to the run (see {!Kvserver.Engine.create}); sampling draws
    from the recorder's own stream, so an instrumented run reports the
    same metrics as an uninstrumented one.  [spec.fault] runs the point
    under a deterministic fault plan ({!Fault.Inject.create}); each run
    needs its own injector (its RNG advances during the run).  Raises
    [Invalid_argument] on a scenario that fails
    {!Workload.Scenario.validate}. *)

val run_spec_raw : Spec.t -> Kvserver.Metrics.t * Stats.Float_vec.t
(** Like {!run_spec}, additionally returning the raw latency samples (µs)
    — for analyses that need the full distribution (fan-out, NUMA and
    cluster merging). *)

val run :
  ?cfg:Kvserver.Config.t ->
  ?dynamic:Workload.Dynamic.t ->
  ?store:Kvstore.Store.t ->
  ?obs:Obs.Instrument.t ->
  ?fault:Fault.Inject.t ->
  ?seed:int ->
  design ->
  Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t
(** @deprecated Thin wrapper over {!run_spec}; build a {!Spec.t}. *)

val run_raw :
  ?cfg:Kvserver.Config.t ->
  ?dynamic:Workload.Dynamic.t ->
  ?store:Kvstore.Store.t ->
  ?obs:Obs.Instrument.t ->
  ?fault:Fault.Inject.t ->
  ?seed:int ->
  design ->
  Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t * Stats.Float_vec.t
(** @deprecated Thin wrapper over {!run_spec_raw}; build a {!Spec.t}. *)

val run_sho_best :
  ?cfg:Kvserver.Config.t ->
  ?seed:int ->
  Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t
(** SHO with 1, 2 and 3 handoff cores, keeping the best result (the paper
    reports SHO's best configuration per workload, §5.2).  "Best" prefers
    stability, then higher throughput, then lower p99. *)

val sweep :
  ?cfg:Kvserver.Config.t ->
  ?sho_best:bool ->
  design ->
  Workload.Spec.t ->
  loads_mops:float list ->
  (float * Kvserver.Metrics.t) list
(** One run per offered load, computed in parallel across domains (results
    in load order, identical to a sequential run).  With [sho_best], a
    design supporting the [Handoff_cores] knob searches handoff core
    counts per load point. *)

val run_trace :
  ?cfg:Kvserver.Config.t ->
  ?seed:int ->
  design ->
  Workload.Trace.t ->
  spec:Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t
(** Trace-driven simulation: requests come from the captured trace
    (looping if the run outlasts it) instead of the synthetic generator.
    [spec] should be the spec the trace was captured under. *)

type replicated = {
  runs : Kvserver.Metrics.t list;
  p99_mean : float;
  p99_stddev : float;
  throughput_mean : float;
}

val run_replicated :
  ?cfg:Kvserver.Config.t ->
  ?seeds:int list ->
  design ->
  Workload.Spec.t ->
  offered_mops:float ->
  replicated
(** The same point under several seeds (default [1; 2; 3]), with the
    across-seed mean and standard deviation of the p99 — the error bars
    behind the single-seed numbers the tables report. *)
