(** Running a (design × workload × arrival rate) point.

    This is the library's front door for the evaluation: pick a design,
    a workload spec and an offered load, get back {!Kvserver.Metrics.t}.
    Datasets are memoized across runs (their sizes depend only on the
    dataset-shape fields of the spec, not on the request mix); the cache
    is mutex-guarded, so runs may execute on any domain.

    {!sweep}, {!run_sho_best} and {!run_replicated} fan their independent
    points out over {!Par}'s domain pool.  Every point owns its own
    simulator and RNG streams and derives its seeds from the job, so
    parallel results are bit-identical to sequential ([MINOS_JOBS=1])
    ones. *)

type design = Minos | Hkh | Hkh_ws | Sho

val all_designs : design list
(** [Minos; Hkh; Hkh_ws; Sho] *)

val design_name : design -> string

val design_of_name : string -> design option
(** Case-insensitive; accepts ["minos"], ["hkh"], ["hkh+ws"/"hkh_ws"/"ws"],
    ["sho"]. *)

val maker : design -> Kvserver.Engine.t -> Kvserver.Engine.design

(** Time parameters for one simulated run; see DESIGN.md on time scaling
    versus the paper's 60-second runs. *)
type scale = {
  duration_us : float;
  warmup_us : float;
  epoch_us : float;
  slo_iters : int;   (** bisection iterations for SLO searches *)
  phase_us : float;  (** dynamic-workload phase length (paper: 20 s) *)
  window_us : float; (** p99 reporting window (paper: 1 s) *)
}

val full_scale : scale
(** 400 ms runs (150 ms warm-up), 50 ms epochs, 7 bisection iterations,
    2 s dynamic phases with 200 ms windows. *)

val quick_scale : scale
(** Roughly 4× cheaper; used by tests and [--quick] benches. *)

val dataset_for : Workload.Spec.t -> Workload.Dataset.t
(** Memoized dataset construction. *)

val config_of_scale : ?base:Kvserver.Config.t -> scale -> Kvserver.Config.t

val run :
  ?cfg:Kvserver.Config.t ->
  ?dynamic:Workload.Dynamic.t ->
  ?store:Kvstore.Store.t ->
  ?obs:Obs.Instrument.t ->
  ?fault:Fault.Inject.t ->
  ?seed:int ->
  design ->
  Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t
(** Simulate one point.  [cfg] defaults to {!config_of_scale}[ full_scale].
    [obs] attaches a flight recorder to the run (see {!Kvserver.Engine.create});
    sampling draws from the recorder's own stream, so an instrumented run
    reports the same metrics as an uninstrumented one.  [fault] runs the
    point under a deterministic fault plan ({!Fault.Inject.create}); each
    run needs its own injector (its RNG advances during the run). *)

val run_sho_best :
  ?cfg:Kvserver.Config.t ->
  ?seed:int ->
  Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t
(** SHO with 1, 2 and 3 handoff cores, keeping the best result (the paper
    reports SHO's best configuration per workload, §5.2).  "Best" prefers
    stability, then higher throughput, then lower p99. *)

val sweep :
  ?cfg:Kvserver.Config.t ->
  ?sho_best:bool ->
  design ->
  Workload.Spec.t ->
  loads_mops:float list ->
  (float * Kvserver.Metrics.t) list
(** One run per offered load, computed in parallel across domains (results
    in load order, identical to a sequential run). *)

val run_raw :
  ?cfg:Kvserver.Config.t ->
  ?dynamic:Workload.Dynamic.t ->
  ?store:Kvstore.Store.t ->
  ?obs:Obs.Instrument.t ->
  ?fault:Fault.Inject.t ->
  ?seed:int ->
  design ->
  Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t * Stats.Float_vec.t
(** Like {!run}, additionally returning the raw latency samples (µs) —
    for analyses that need the full distribution (fan-out, NUMA
    merging). *)

val run_trace :
  ?cfg:Kvserver.Config.t ->
  ?seed:int ->
  design ->
  Workload.Trace.t ->
  spec:Workload.Spec.t ->
  offered_mops:float ->
  Kvserver.Metrics.t
(** Trace-driven simulation: requests come from the captured trace
    (looping if the run outlasts it) instead of the synthetic generator.
    [spec] should be the spec the trace was captured under. *)

type replicated = {
  runs : Kvserver.Metrics.t list;
  p99_mean : float;
  p99_stddev : float;
  throughput_mean : float;
}

val run_replicated :
  ?cfg:Kvserver.Config.t ->
  ?seeds:int list ->
  design ->
  Workload.Spec.t ->
  offered_mops:float ->
  replicated
(** The same point under several seeds (default [1; 2; 3]), with the
    across-seed mean and standard deviation of the p99 — the error bars
    behind the single-seed numbers the tables report. *)
