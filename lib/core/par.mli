(** Deterministic parallel execution of independent jobs.

    A reusable pool of OCaml 5 domains underneath the experiment harness:
    every paper artifact is a set of independent simulator runs (sweep
    points, seeds, SLO probes, figure cells), so they can use all cores.

    {b Determinism contract.}  [map f arr] returns exactly
    [Array.map f arr]: results are delivered in input order and each job's
    outcome must depend only on its input.  Jobs therefore must not share
    mutable state — each simulation point owns its own {!Dsim.Sim.t} and
    RNGs, seeds derive from the job itself, and any cross-job cache (e.g.
    {!Experiment.dataset_for}) must be domain-safe.  Under that contract a
    parallel run is bit-identical to a sequential ([MINOS_JOBS=1]) run.

    Nested calls (a job itself calling [map]) degrade gracefully to
    sequential execution inside the worker, so composed parallel code
    cannot deadlock the pool. *)

val jobs : unit -> int
(** The parallelism degree: the {!set_jobs} override if set, else the
    [MINOS_JOBS] environment variable (read once), else
    [Domain.recommended_domain_count ()].  [1] means fully sequential. *)

val set_jobs : int option -> unit
(** Override the degree ([Some 1] forces sequential execution; [None]
    restores the environment/default behaviour).  Values below 1 are
    clamped to 1.  Used by tests and the CLI's [--jobs]. *)

val map : ('a -> 'b) -> 'a array -> 'b array
(** [map f arr] = [Array.map f arr], computed on up to {!jobs} domains.
    The calling domain participates.  If any [f] raises, the first
    exception (in completion order) is re-raised after all jobs finish. *)

val map_list : ('a -> 'b) -> 'a list -> 'b list
(** [map_list f l] = [List.map f l], via {!map}. *)
