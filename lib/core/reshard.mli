(** Elastic-resharding experiment front end.

    Compiles a {!Shardmgr.Plan} against a concrete run, simulates the
    same workload through it twice — once under the chosen (size-aware)
    design, once under a baseline — and reports the p99 timeline across
    mid-run server add/remove, the key-conservation audit and exact loss
    accounting for both.  Per-engine jobs fan out over {!Par}'s domain
    pool; results are bit-identical at any [MINOS_JOBS].

    With [manage] set, the run becomes the shard manager's two
    deterministic passes: a membership-only pass records each shard's
    per-window p99 series, {!Shardmgr.Manager.decide_all} folds it into
    timed add/drop-replica events, and the final pass replays with those
    appended to the plan. *)

type t = {
  servers : int;  (** base membership *)
  n_servers : int;  (** engines: base plus plan-allocated ids *)
  offered_mops : float;
  seed : int;
  plan : Shardmgr.Plan.t;  (** final plan, manager events included *)
  manager_events : int;  (** how many events the manager appended *)
  table : Shardmgr.Table.t;
  main : Shardmgr.Run.t;
  baseline : Shardmgr.Run.t;
}

val run :
  ?cfg:Kvserver.Config.t ->
  ?design:Kvserver.Design.t ->
  ?baseline:Kvserver.Design.t ->
  ?vnodes:int ->
  ?groups:int ->
  ?probe:int ->
  ?seed:int ->
  ?manage:Shardmgr.Manager.cfg ->
  ?fault:Fault.Plan.t ->
  ?trace_out:string ->
  ?spans:int ->
  ?sample_rate:float ->
  servers:int ->
  plan:Shardmgr.Plan.t ->
  Workload.Scenario.t ->
  offered_mops:float ->
  unit ->
  t
(** [design] defaults to {!Kvserver.Design.minos}, [baseline] to
    {!Kvserver.Design.hkh}; both replay the same compiled table.  The
    workload is a registry scenario; the reshard driver uses its flat
    request mix (arrival/TTL/scan extras are single-engine features).  The
    default [cfg] is {!Experiment.full_scale} with its p99 window
    enabled (a caller-supplied [cfg] needs [window_us] set to get the
    timeline, and manage mode requires it).  [trace_out] writes a merged
    Chrome trace of the main run: one process per server plus a
    "shardmgr" pseudo-process whose track carries the planned drain /
    dual-route / cutover / replica marks.  Remaining knobs pass through
    to {!Shardmgr.Table.compile} and {!Shardmgr.Run.run}. *)

val print : t -> unit
(** Aligned text report: the compiled event schedule, per-server
    breakdown for both designs, migration vs steady-state p99 and the
    key-conservation audit. *)

val to_json : t -> string
(** The BENCH_reshard.json payload: the event schedule, and per design
    the aggregate metrics, telescoping flag, p99 timeline, migration vs
    steady p99 and protocol audit counts. *)
