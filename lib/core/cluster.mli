(** Cluster-scale experiment front end.

    Runs the same workload through a sharded cluster twice — once under
    the chosen (size-aware) design, once under a baseline — over the
    deterministic multi-server layer in {!Kvcluster.Run}, with the
    per-shard engine jobs fanned out over {!Par}'s domain pool (results
    are bit-identical to sequential, any [MINOS_JOBS]).  The headline
    comparison: per-shard p99 and the fan-out multi-GET p99 (max over
    shards) of size-aware sharding versus the keyhash baseline at the
    same offered load. *)

type t = {
  servers : int;
  offered_mops : float; (** total cluster load, split by routed share *)
  seed : int;
  main : Kvcluster.Run.t;
  baseline : Kvcluster.Run.t;
}

val run :
  ?cfg:Kvserver.Config.t ->
  ?design:Kvserver.Design.t ->
  ?baseline:Kvserver.Design.t ->
  ?policy:Kvcluster.Run.policy ->
  ?vnodes:int ->
  ?rebalance:bool ->
  ?fanouts:int list ->
  ?trials:int ->
  ?seed:int ->
  ?trace_out:string ->
  ?spans:int ->
  ?sample_rate:float ->
  servers:int ->
  Workload.Scenario.t ->
  offered_mops:float ->
  t
(** [design] defaults to {!Kvserver.Design.minos}, [baseline] to
    {!Kvserver.Design.hkh}; both runs share the router policy ([policy],
    [vnodes], [rebalance]) and seed, so they see identical shard splits.
    The workload is a registry scenario; the cluster driver uses its flat
    request mix (arrival/TTL/scan extras are single-engine features).
    [trace_out] attaches one flight recorder per shard to the main run
    and writes a merged Chrome trace whose process ids are the server
    ids ({!Obs.Chrome_trace.write_cluster}); [spans] / [sample_rate]
    configure those recorders.  Remaining knobs are passed through to
    {!Kvcluster.Run.run}. *)

val print : t -> unit
(** Aligned text tables: per-shard breakdown for both designs, loss
    accounting, rebalance effect (when enabled) and the fan-out p99
    comparison. *)

val to_json : t -> string
(** The BENCH_cluster.json payload: per-shard and aggregate metrics for
    both designs, telescoping flags, and p99 versus fan-out degree. *)
