(** The scenario suite: every registry scenario that exercises a feature
    beyond the paper's static Poisson mix, run size-aware vs keyhash.

    Each point is one {!Experiment.run_spec} call, so a scenario gets the
    full compilation: diurnal/burst arrivals become pacing, TTL and memory
    budgets attach the residency model, scans flow through dispatch and
    the cost model, and [cold-tier] runs through a captured timed trace.
    Points fan out over {!Par} and derive their seeds from the point, so
    results are byte-identical at any [MINOS_JOBS].

    The headline per scenario is the size-aware vs keyhash p99 — the
    paper's claim carried into richer operating regimes — plus the
    extended telescoping identity (issued = served + dropped + shed +
    expired_misses + in_flight_end), checked per row. *)

type row = {
  scenario : string;  (** registry name, e.g. ["ttl-churn"] *)
  design : string;    (** ["minos"] or ["hkh"] *)
  offered_mops : float;
  metrics : Kvserver.Metrics.t;
  telescopes : bool;  (** extended loss-accounting identity exact *)
}

type t = { seed : int; offered_mops : float; rows : row list }

val suite : string list
(** [["diurnal"; "bursts"; "ttl-churn"; "scan-heavy"; "cold-tier"]]. *)

val telescopes : Kvserver.Metrics.t -> bool
(** [issued = served + net_dropped + rx_dropped + shed_small + shed_large
    + expired_misses + in_flight_end]. *)

val run :
  ?cfg:Kvserver.Config.t ->
  ?seed:int ->
  ?offered_mops:float ->
  ?names:string list ->
  unit ->
  t
(** Run [names] (default {!suite}) × [minos; hkh] at [offered_mops]
    (default 2.5).  Raises [Invalid_argument] on an unregistered name. *)

val print : t -> unit
(** One table per scenario with the size-aware/keyhash p99 ratio note. *)

val to_json : t -> string
(** The BENCH_scenarios.json payload. *)
