(** Chaos harness: the evaluation under deterministic fault plans.

    Each chaos point runs one fault plan against three server variants at
    the same offered load and seed:

    - {b Minos+guard} — size-aware sharding with every robustness feature
      on: watchdog core exclusion, shed-large-first admission control and
      threshold clamping;
    - {b Minos} — the plain paper design, faults on, guards off;
    - {b HKH+WS} — the strongest size-unaware baseline, with the same
      admission control (it has no watchdog or threshold to guard).

    The contract mirrors the healthy-path determinism guarantee: a fixed
    [(plan, seed)] yields byte-identical metrics across reruns, because
    the injector owns its own SplitMix64 stream and every fault decision
    is a pure function of [(event windows, stream, arrival order)]. *)

type row = {
  plan : string;    (** canned plan name or the file-loaded plan's name *)
  label : string;   (** server variant, e.g. ["Minos+guard"] *)
  offered_mops : float;  (** offered load this row ran at *)
  metrics : Kvserver.Metrics.t;
}

type t = { seed : int; rows : row list }

val variants : string list
(** [["Minos+guard"; "Minos"; "HKH+WS"]] in run order. *)

val plan_load : ?base:float -> string -> float
(** The offered load a canned plan runs at, scaled off [base] (default
    4.0 Mops): [loss10] at 1.75x (the retransmission storm only separates
    the variants near saturation), [overload] at 2x (the squeezed ring
    must be pushed past its service rate or nothing is shed), everything
    else at [base]. *)

val guard_config : Kvserver.Config.t -> Kvserver.Config.t
(** The hardened configuration: watchdog on, shed watermark 256, threshold
    clamp 0.5, RX capacity bounded at 4096. *)

val run_plan :
  ?cfg:Kvserver.Config.t ->
  ?workload:Workload.Scenario.t ->
  ?seed:int ->
  ?offered_mops:float ->
  Fault.Plan.t ->
  row list
(** Run the three variants under one plan (in parallel over {!Par}).
    Each variant gets a fresh injector over the same plan and seed.
    [workload] (default {!Workload.Scenario.default}) composes with the
    faults — TTL churn or an arrival ramp under a fault plan is a valid
    point. *)

val run :
  ?cfg:Kvserver.Config.t ->
  ?workload:Workload.Scenario.t ->
  ?seed:int ->
  ?offered_mops:float ->
  ?plans:string list ->
  unit ->
  t
(** All canned plans (default {!Fault.Plan.canned_names}), three variants
    each.  Plan windows are derived from the config's warmup/duration;
    each plan runs at {!plan_load} scaled off [offered_mops]. *)

val print : t -> unit
(** Render as report tables, one per plan. *)

val to_json : t -> string
(** The BENCH_chaos.json payload: per plan and variant, p99 / throughput /
    goodput / loss counters, plus the seed for rerun verification. *)
