(** Replica-aware tail-cutting experiment: hedged and tied requests
    versus crash chaos.

    One call runs the {!Kvhedge.Cluster} variant grid — size-aware
    versus keyhash dispatch, hedged / tied / no backup, uniform spread
    versus power-of-two-choices routing — fault-free and under the
    canned [kill-server] plan, in parallel over {!Par}.  The canned
    crash kills the first {e mirror} (server id [shards]) 30 % into the
    measured window and restarts it at 80 %, so every PUT's completion
    leg stays alive and the GET tail isolates the routing layer's
    reaction: a hedged cluster races past the dead replica after one
    hedge delay, an unhedged one waits out the failure detector.

    Alongside the latency grid, {!Shardmgr.Protocol.check}[ ?fault]
    replays the same crash against the equivalent replicated routing
    table and proves it key-lossless (the [audit] field), and the
    fault-free hedged run prices the hedge tax (wasted backup legs per
    request).

    Deterministic: a fixed [(config, workload, offered_mops, seed)]
    reproduces every entry byte-identically at any [MINOS_JOBS]. *)

type entry = {
  label : string;
      (** ["<variant>/<plan>"], e.g. ["sizeaware+hedged/kill-server"] *)
  sizeaware : bool;
  mode : string;  (** {!Kvhedge.Config.mode_name} *)
  route : string;  (** {!Kvhedge.Config.route_name} *)
  plan : string;  (** ["none"] or ["kill-server"] *)
  metrics : Kvhedge.Metrics.t;
}

type t = {
  shards : int;
  mirrors : int;
  cores : int;
  offered_mops : float;
  seed : int;
  detect_us : float;  (** effective failure-detector timeout *)
  kill_at_us : float;
  recover_at_us : float;
  killed_server : int;  (** the first mirror: server id [shards] *)
  hedge_tax : float;
      (** fault-free hedged run: wasted backup legs per request *)
  entries : entry list;
  audit : Shardmgr.Protocol.result;
      (** key-level conservation across the crash *)
}

val config_of_scale : Experiment.scale -> Kvhedge.Config.t
(** {!Kvhedge.Config.default} with the scale's duration / warmup /
    epoch, and the epoch as the p99 reporting window. *)

val run :
  ?config:Kvhedge.Config.t ->
  ?seed:int ->
  ?trace_out:string ->
  ?workload:Workload.Scenario.t ->
  offered_mops:float ->
  unit ->
  t
(** Run the nine-variant grid.  [workload] is a registry scenario; the
    hedge driver uses its flat request mix (arrival/TTL/scan extras are
    single-engine features).  [config] defaults to
    {!config_of_scale}[ Experiment.full_scale]; its [mode] and [route]
    fields are overridden per variant, everything else (topology,
    quantile, budget, detector) applies to all.  [trace_out] writes a
    Chrome trace whose decision track carries the traced hedged-kill
    variant's kill / recover / hedge-delay instants
    ({!Obs.Decision_log.record_hedge}).  Raises [Invalid_argument] on an
    invalid config or [mirrors = 0] (tail-cutting needs a replica to
    hedge to). *)

val print : t -> unit
(** Render as a report table plus audit / tax notes. *)

val to_json : t -> string
(** The BENCH_hedge.json payload: per-entry latency quantiles and the
    full copy-accounting ledger, the crash window, the hedge tax and the
    key audit — everything CI's chaos-SLO asserts read. *)
