(** Multi-NUMA-domain operation (§3).

    "Minos can seamlessly scale to multiple NUMA domains by running an
    independent set of small and large cores within each NUMA domain, and
    by having clients send requests to the NUMA domain that stores the
    target key."  We model exactly that: each domain is an independent
    server instance (its own cores, RX queues, TX line and control loop)
    over a disjoint slice of the key space; clients route by key, so each
    domain sees [1/domains] of the offered load.

    The combined latency distribution is the union of the per-domain
    distributions (computed from raw samples, not by averaging
    percentiles). *)

type result = {
  per_domain : Kvserver.Metrics.t list;
  total_throughput_mops : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  stable : bool; (** all domains stable *)
}

val run :
  ?cfg:Kvserver.Config.t ->
  ?design:Experiment.design ->
  ?seed:int ->
  domains:int ->
  Workload.Spec.t ->
  offered_mops:float ->
  result
(** [run ~domains spec ~offered_mops] simulates [domains] independent
    instances, each with the per-domain share of keys and load, and
    combines the results.  [offered_mops] is the total across domains. *)
