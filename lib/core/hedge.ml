(* Replica-aware tail-cutting experiment front end; see hedge.mli. *)

type entry = {
  label : string;
  sizeaware : bool;
  mode : string;
  route : string;
  plan : string;
  metrics : Kvhedge.Metrics.t;
}

type t = {
  shards : int;
  mirrors : int;
  cores : int;
  offered_mops : float;
  seed : int;
  detect_us : float;
  kill_at_us : float;
  recover_at_us : float;
  killed_server : int;
  hedge_tax : float;
  entries : entry list;
  audit : Shardmgr.Protocol.result;
}

let config_of_scale (s : Experiment.scale) =
  {
    Kvhedge.Config.default with
    Kvhedge.Config.duration_us = s.Experiment.duration_us;
    warmup_us = s.Experiment.warmup_us;
    epoch_us = s.Experiment.epoch_us;
    (* the experiment scales' reporting window outlasts the measured
       interval at quick scale; the epoch gives a usable p99 series *)
    window_us = s.Experiment.epoch_us;
  }

(* The canned crash: kill the FIRST MIRROR (server id [shards], i.e.
   replica 1 of shard 0) 30 % into the measured window, restart it at
   80 %.  Killing a mirror rather than a primary keeps every PUT's
   completion leg alive, so the hedged GET path is what the tail
   measures; the audit proves the crash is key-lossless either way
   (every key still has its primary copy). *)
let kill_fractions = (0.3, 0.8)

let kill_plan ~server ~kill_at_us ~recover_at_us =
  {
    Fault.Plan.name = "kill-server";
    events =
      [
        Fault.Plan.Kill_server { server; at_us = kill_at_us };
        Fault.Plan.Recover_server { server; at_us = recover_at_us };
      ];
  }

(* The replicated routing table the audit replays: one [add-replica] per
   shard per mirror, in shard order, opening the run — exactly the
   server-id layout {!Kvhedge.Config} documents (replica [k] of shard
   [s] is server [k * shards + s]). *)
let audit_plan ~shards ~mirrors =
  {
    Shardmgr.Plan.name = "hedge-replicas";
    events =
      List.concat
        (List.init mirrors (fun _ ->
             List.init shards (fun shard ->
                 Shardmgr.Plan.Add_replica { shard; at_us = 0.0 })));
  }

let run ?(config = config_of_scale Experiment.full_scale) ?(seed = 1)
    ?trace_out ?(workload = Workload.Scenario.default) ~offered_mops () =
  (* The hedge driver consumes the scenario's flat mix; arrival/TTL/scan
     extras are single-engine features (see Experiment.run_spec). *)
  let workload = workload.Workload.Scenario.spec in
  (match Kvhedge.Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hedge.run: " ^ msg));
  if config.Kvhedge.Config.mirrors < 1 then
    invalid_arg "Hedge.run: tail-cutting needs at least one mirror per shard";
  let shards = config.Kvhedge.Config.shards in
  let mirrors = config.Kvhedge.Config.mirrors in
  let duration = config.Kvhedge.Config.duration_us in
  let warmup = config.Kvhedge.Config.warmup_us in
  let measured = duration -. warmup in
  let f_kill, f_recover = kill_fractions in
  let kill_at_us = warmup +. (f_kill *. measured) in
  let recover_at_us = warmup +. (f_recover *. measured) in
  let killed_server = shards in
  let plan = kill_plan ~server:killed_server ~kill_at_us ~recover_at_us in
  let dataset = Experiment.dataset_for workload in
  let base = { config with Kvhedge.Config.mode = Kvhedge.Config.Off } in
  let variants =
    [
      ( "sizeaware+hedged/none",
        { base with Kvhedge.Config.mode = Kvhedge.Config.Hedged },
        None );
      ("sizeaware/none", base, None);
      ( "sizeaware+hedged/kill-server",
        { base with Kvhedge.Config.mode = Kvhedge.Config.Hedged },
        Some plan );
      ("sizeaware/kill-server", base, Some plan);
      ( "sizeaware+tied/kill-server",
        { base with Kvhedge.Config.mode = Kvhedge.Config.Tied },
        Some plan );
      ( "keyhash+hedged/kill-server",
        {
          base with
          Kvhedge.Config.sizeaware = false;
          mode = Kvhedge.Config.Hedged;
        },
        Some plan );
      ("keyhash/none", { base with Kvhedge.Config.sizeaware = false }, None);
      ( "p2c+hedged/kill-server",
        {
          base with
          Kvhedge.Config.route = Kvhedge.Config.P2c;
          mode = Kvhedge.Config.Hedged;
        },
        Some plan );
      ( "p2c/kill-server",
        { base with Kvhedge.Config.route = Kvhedge.Config.P2c },
        Some plan );
    ]
  in
  let job (label, cfg, plan) =
    let c =
      Kvhedge.Cluster.create cfg ~dataset ~offered_mops ?plan ~seed ()
    in
    (* Every job records its tail-cutting decisions locally (cheap, cold
       path); the traced variant's list feeds the Chrome trace after the
       parallel map. *)
    let events = ref [] in
    Kvhedge.Cluster.set_hooks c
      ~on_kill:(fun now s ->
        events := (Obs.Decision_log.kind_server_kill, now, s, Float.nan) :: !events)
      ~on_recover:(fun now s ->
        events :=
          (Obs.Decision_log.kind_server_recover, now, s, Float.nan) :: !events)
      ~on_delay:(fun now d ->
        events := (Obs.Decision_log.kind_hedge_delay, now, -1, d) :: !events)
      ();
    Dsim.Sim.run (Kvhedge.Cluster.sim c) ~until:cfg.Kvhedge.Config.duration_us;
    let m = Kvhedge.Cluster.metrics c in
    let plan_name =
      match plan with None -> "none" | Some p -> p.Fault.Plan.name
    in
    ( {
        label;
        sizeaware = cfg.Kvhedge.Config.sizeaware;
        mode = Kvhedge.Config.mode_name cfg.Kvhedge.Config.mode;
        route = Kvhedge.Config.route_name cfg.Kvhedge.Config.route;
        plan = plan_name;
        metrics = m;
      },
      List.rev !events )
  in
  let results = Par.map_list job variants in
  let entries = List.map fst results in
  (match trace_out with
  | None -> ()
  | Some path ->
      (* One pseudo-process carries the traced variant's kill / recover
         / hedge-delay instants on its decision track. *)
      let traced =
        match
          List.find_opt
            (fun (e, _) -> e.label = "sizeaware+hedged/kill-server")
            results
        with
        | Some (_, evs) -> evs
        | None -> []
      in
      let ins =
        Obs.Instrument.create ~server:0 ~spans:1 ~timeline:false ~cores:1
          ~seed:0 ()
      in
      List.iter
        (fun (kind, now, server, delay_us) ->
          Obs.Decision_log.record_hedge ins.Obs.Instrument.decisions ~kind ~now
            ~server ~delay_us)
        traced;
      Obs.Chrome_trace.write_cluster ~path [ ("hedge", ins) ]);
  (* The hedge tax, measured where hedging buys nothing: the fault-free
     hedged run's wasted backup legs per request. *)
  let hedge_tax =
    match List.find_opt (fun e -> e.label = "sizeaware+hedged/none") entries with
    | Some e when e.metrics.Kvhedge.Metrics.requests > 0 ->
        float_of_int e.metrics.Kvhedge.Metrics.hedged_wasted
        /. float_of_int e.metrics.Kvhedge.Metrics.requests
    | _ -> Float.nan
  in
  (* Key-level conservation across the same crash, on the equivalent
     replicated routing table. *)
  let table =
    Shardmgr.Table.compile ~seed ~servers:shards ~workload ~dataset
      ~duration_us:duration ~offered_mops
      (audit_plan ~shards ~mirrors)
  in
  let audit = Shardmgr.Protocol.check ~seed ~fault:plan ~workload table in
  {
    shards;
    mirrors;
    cores = config.Kvhedge.Config.cores;
    offered_mops;
    seed;
    detect_us = Kvhedge.Config.detect_us config;
    kill_at_us;
    recover_at_us;
    killed_server;
    hedge_tax;
    entries;
    audit;
  }

(* ------------------------------------------------------------------ *)
(* Printing *)

let print t =
  Report.section
    (Printf.sprintf
       "Hedge: %d shards x %d replicas x %d cores, %s Mops offered, seed %d"
       t.shards (t.mirrors + 1) t.cores (Report.f2 t.offered_mops) t.seed);
  Report.note
    "kill-server: server %d down %s..%s us, detector timeout %s us"
    t.killed_server (Report.f0 t.kill_at_us) (Report.f0 t.recover_at_us)
    (Report.f0 t.detect_us);
  let rows =
    List.map
      (fun e ->
        let m = e.metrics in
        [
          e.label;
          Report.f1 m.Kvhedge.Metrics.p50_us;
          Report.f1 m.Kvhedge.Metrics.p99_us;
          Report.f1 m.Kvhedge.Metrics.p999_us;
          string_of_int m.Kvhedge.Metrics.hedges_issued;
          string_of_int m.Kvhedge.Metrics.hedged_wasted;
          string_of_int m.Kvhedge.Metrics.cancelled;
          string_of_int m.Kvhedge.Metrics.failovers;
          string_of_int m.Kvhedge.Metrics.net_dropped;
          string_of_int m.Kvhedge.Metrics.failed;
          (if Kvhedge.Metrics.telescopes m then "exact" else "BROKEN");
        ])
      t.entries
  in
  Report.table ~title:"variants (latency us; copy accounting)"
    ~headers:
      [
        "variant"; "p50"; "p99"; "p999"; "hedges"; "wasted"; "canc"; "failover";
        "netdrop"; "failed"; "acct";
      ]
    rows;
  Report.note "hedge tax (fault-free wasted backups per request): %s"
    (Report.pct t.hedge_tax);
  (match
     List.find_opt (fun e -> e.label = "sizeaware+hedged/kill-server") t.entries
   with
  | Some e ->
      Report.note "final hedge delay %s us (windowed-quantile estimate)"
        (Report.f1 e.metrics.Kvhedge.Metrics.hedge_delay_final_us)
  | None -> ());
  Report.note
    "key audit under the crash: %d transferred, %d fallback reads, lost %d, \
     duplicated %d, stale %d -> %s"
    t.audit.Shardmgr.Protocol.transferred
    t.audit.Shardmgr.Protocol.fallback_reads t.audit.Shardmgr.Protocol.lost
    t.audit.Shardmgr.Protocol.duplicated t.audit.Shardmgr.Protocol.stale
    (if Shardmgr.Protocol.ok t.audit then "clean" else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* JSON *)

let fl x = if Float.is_nan x then "null" else Printf.sprintf "%.3f" x

let entry_json b (e : entry) ~last =
  let m = e.metrics in
  Buffer.add_string b
    (Printf.sprintf
       "    {\"label\": \"%s\", \"sizeaware\": %b, \"mode\": \"%s\", \
        \"route\": \"%s\", \"plan\": \"%s\",\n"
       e.label e.sizeaware e.mode e.route e.plan);
  Buffer.add_string b
    (Printf.sprintf
       "     \"p50_us\": %s, \"p95_us\": %s, \"p99_us\": %s, \"p999_us\": %s, \
        \"mean_us\": %s, \"samples\": %d,\n"
       (fl m.Kvhedge.Metrics.p50_us) (fl m.Kvhedge.Metrics.p95_us)
       (fl m.Kvhedge.Metrics.p99_us)
       (fl m.Kvhedge.Metrics.p999_us)
       (fl m.Kvhedge.Metrics.mean_us)
       m.Kvhedge.Metrics.samples);
  Buffer.add_string b
    (Printf.sprintf
       "     \"issued\": %d, \"served\": %d, \"net_dropped\": %d, \
        \"rx_dropped\": %d, \"shed\": %d, \"hedged_wasted\": %d, \
        \"cancelled\": %d, \"in_flight_end\": %d, \"telescopes\": %b,\n"
       m.Kvhedge.Metrics.issued m.Kvhedge.Metrics.served
       m.Kvhedge.Metrics.net_dropped m.Kvhedge.Metrics.rx_dropped
       m.Kvhedge.Metrics.shed m.Kvhedge.Metrics.hedged_wasted
       m.Kvhedge.Metrics.cancelled m.Kvhedge.Metrics.in_flight_end
       (Kvhedge.Metrics.telescopes m));
  Buffer.add_string b
    (Printf.sprintf
       "     \"requests\": %d, \"completed\": %d, \"failed\": %d, \
        \"hedges_issued\": %d, \"ties_issued\": %d, \"failovers\": %d, \
        \"budget_exhausted\": %d, \"budget_spent\": %s,\n"
       m.Kvhedge.Metrics.requests m.Kvhedge.Metrics.completed
       m.Kvhedge.Metrics.failed m.Kvhedge.Metrics.hedges_issued
       m.Kvhedge.Metrics.ties_issued m.Kvhedge.Metrics.failovers
       m.Kvhedge.Metrics.budget_exhausted
       (fl m.Kvhedge.Metrics.budget_spent));
  Buffer.add_string b
    (Printf.sprintf
       "     \"server_killed\": %d, \"server_recovered\": %d, \
        \"hedge_delay_final_us\": %s, \"large_cores\": %d, \"events\": %d}%s\n"
       m.Kvhedge.Metrics.server_killed m.Kvhedge.Metrics.server_recovered
       (fl m.Kvhedge.Metrics.hedge_delay_final_us)
       m.Kvhedge.Metrics.large_cores m.Kvhedge.Metrics.events
       (if last then "" else ","))

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"shards\": %d, \"mirrors\": %d, \"cores\": %d, \"offered_mops\": \
        %s, \"seed\": %d,\n"
       t.shards t.mirrors t.cores (fl t.offered_mops) t.seed);
  Buffer.add_string b
    (Printf.sprintf
       "  \"killed_server\": %d, \"kill_at_us\": %s, \"recover_at_us\": %s, \
        \"detect_us\": %s,\n"
       t.killed_server (fl t.kill_at_us) (fl t.recover_at_us) (fl t.detect_us));
  Buffer.add_string b (Printf.sprintf "  \"hedge_tax\": %s,\n" (fl t.hedge_tax));
  Buffer.add_string b
    (Printf.sprintf
       "  \"audit\": {\"ops\": %d, \"puts\": %d, \"gets\": %d, \
        \"fallback_reads\": %d, \"transferred\": %d, \"lost\": %d, \
        \"duplicated\": %d, \"stale\": %d, \"ok\": %b},\n"
       t.audit.Shardmgr.Protocol.ops t.audit.Shardmgr.Protocol.puts
       t.audit.Shardmgr.Protocol.gets t.audit.Shardmgr.Protocol.fallback_reads
       t.audit.Shardmgr.Protocol.transferred t.audit.Shardmgr.Protocol.lost
       t.audit.Shardmgr.Protocol.duplicated t.audit.Shardmgr.Protocol.stale
       (Shardmgr.Protocol.ok t.audit));
  Buffer.add_string b "  \"entries\": [\n";
  let n = List.length t.entries in
  List.iteri (fun i e -> entry_json b e ~last:(i = n - 1)) t.entries;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
