type scale = Experiment.scale

let default_loads = [ 0.5; 1.0; 2.0; 3.0; 4.0; 4.5; 5.0; 5.5; 6.0; 6.5 ]

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

let fig1_sizes =
  [ 1; 4; 13; 64; 256; 1_000; 1_400; 4_000; 16_000; 64_000; 125_000; 250_000;
    500_000; 1_000_000 ]

let fig1 () =
  let cost = Kvserver.Cost_model.default in
  let tx = Netsim.Txlink.create ~gbps:40.0 in
  List.map
    (fun size ->
      let cpu = Kvserver.Cost_model.cpu_time cost Kvserver.Cost_model.Get ~item_size:size in
      let wire_bytes =
        Netsim.Frame.wire_bytes_for_payload
          (Kvserver.Cost_model.reply_payload Kvserver.Cost_model.Get ~item_size:size)
      in
      (* A single closed-loop client: no queueing anywhere, so the reply
         occupies an idle line.  Like the paper's Figure 1, this is the
         server-internal interval (request reception to reply
         transmission), so the fixed client/NIC pipeline latency is
         excluded. *)
      let wire_us = float_of_int wire_bytes *. 8.0e-3 /. Netsim.Txlink.gbps tx in
      (size, cpu +. wire_us))
    fig1_sizes

let print_fig1 () =
  Report.section "Figure 1: GET service time vs item size (closed loop)";
  let rows =
    List.map
      (fun (size, us) -> [ Printf.sprintf "%d" size; Report.f2 us ])
      (fig1 ())
  in
  Report.table ~title:"service time" ~headers:[ "item bytes"; "service us" ] rows;
  let small = List.assoc 64 (fig1 ()) and big = List.assoc 1_000_000 (fig1 ()) in
  Report.note "1MB / 64B service-time ratio: %.0fx (paper: up to ~4 orders of magnitude)"
    (big /. small)

(* ------------------------------------------------------------------ *)
(* Figure 2 *)

type fig2_series = {
  discipline : Queueing.Models.discipline;
  k : float;
  points : (float * float) list;
}

let fig2_loads = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]
let fig2_ks = [ 1.0; 10.0; 100.0; 1000.0 ]

let fig2 ?(requests = 200_000) ?(loads = fig2_loads) () =
  List.concat_map
    (fun discipline -> List.map (fun k -> (discipline, k)) fig2_ks)
    [ Queueing.Models.Per_core_queues; Queueing.Models.Single_queue;
      Queueing.Models.Work_stealing ]
  |> Par.map_list (fun (discipline, k) ->
         let cfg = { Queueing.Models.default_config with k; requests } in
         let points =
           Queueing.Models.sweep discipline cfg ~loads
           |> List.map (fun (load, r) -> (load, r.Queueing.Models.p99))
         in
         { discipline; k; points })

let print_fig2 ?requests () =
  Report.section
    "Figure 2: 99p response time vs load, size-unaware sharding (bimodal service, \
     pL=0.125%)";
  let series = fig2 ?requests () in
  List.iter
    (fun (d : Queueing.Models.discipline) ->
      let of_k k =
        (List.find (fun s -> s.discipline = d && s.k = k) series).points
      in
      let k1 = of_k 1.0 and k10 = of_k 10.0 and k100 = of_k 100.0 and k1000 = of_k 1000.0 in
      let rows =
        List.map2
          (fun (load, p1) ((_, p10), (_, p100), (_, p1000)) ->
            [ Report.f2 load; Report.f1 p1; Report.f1 p10; Report.f1 p100;
              Report.f1 p1000 ])
          k1
          (List.map2
             (fun a (b, c) -> (a, b, c))
             k10
             (List.map2 (fun b c -> (b, c)) k100 k1000))
      in
      Report.table
        ~title:(Queueing.Models.discipline_name d ^ " (p99 in small-service units)")
        ~headers:[ "load"; "K=1"; "K=10"; "K=100"; "K=1000" ]
        rows)
    [ Queueing.Models.Per_core_queues; Queueing.Models.Single_queue;
      Queueing.Models.Work_stealing ]

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1 ?(mc_samples = 500_000) () =
  Par.map_list
    (fun (p_large, s_large_max) ->
      let spec =
        { Workload.Spec.default with Workload.Spec.p_large; s_large_max }
      in
      let analytic = Workload.Spec.percent_data_large spec in
      (* Monte-Carlo check through the actual generator. *)
      let dataset = Experiment.dataset_for spec in
      let gen = Workload.Generator.create ~p_large ~get_ratio:1.0 dataset in
      let total = ref 0.0 and large = ref 0.0 in
      for _ = 1 to mc_samples do
        let r = Workload.Generator.next gen in
        let b = float_of_int r.Workload.Generator.item_size in
        total := !total +. b;
        if r.Workload.Generator.is_large then large := !large +. b
      done;
      (p_large, s_large_max, analytic, 100.0 *. !large /. !total))
    Workload.Spec.table1_profiles

let print_table1 () =
  Report.section "Table 1: item size variability profiles";
  let rows =
    List.map
      (fun (p, s, analytic, mc) ->
        [ Printf.sprintf "%.4f" p; Printf.sprintf "%d KB" (s / 1000);
          Report.f1 analytic; Report.f1 mc ])
      (table1 ())
  in
  Report.table ~title:"% of transferred data due to large requests"
    ~headers:[ "% large reqs"; "max size"; "% data (analytic)"; "% data (measured)" ]
    rows;
  Report.note "paper reports: 25 / 40 / 60 / 25 / 60 / 75 / 80"

(* ------------------------------------------------------------------ *)
(* Figures 3, 4, 5 *)

type curve = {
  design : Experiment.design;
  points : (float * Kvserver.Metrics.t) list;
}

let run_curves ?(scale = Experiment.full_scale) ?(loads = default_loads) spec designs =
  let cfg = Experiment.config_of_scale scale in
  List.map
    (fun design ->
      { design; points = Experiment.sweep ~cfg ~sho_best:true design spec ~loads_mops:loads })
    designs

let print_curves title curves =
  let headers =
    "offered Mops"
    :: List.concat_map
         (fun c ->
           let n = Experiment.design_name c.design in
           [ n ^ " tput"; n ^ " p99us" ])
         curves
  in
  let loads = List.map fst (List.hd curves).points in
  let rows =
    List.mapi
      (fun i load ->
        Report.f2 load
        :: List.concat_map
             (fun c ->
               let _, m = List.nth c.points i in
               [
                 Report.f2 m.Kvserver.Metrics.throughput_mops;
                 (if m.Kvserver.Metrics.stable then Report.f1 m.Kvserver.Metrics.p99_us
                  else "sat");
               ])
             curves)
      loads
  in
  Report.table ~title ~headers rows

let fig3 ?scale ?loads () =
  run_curves ?scale ?loads Workload.Spec.default Experiment.all_designs

let print_fig3 ?scale ?loads () =
  Report.section "Figure 3: throughput vs 99p latency, default workload";
  print_curves "default workload (95:5, pL=0.125%, sL=500KB)" (fig3 ?scale ?loads ())

let fig5 ?scale ?loads () =
  run_curves ?scale ?loads Workload.Spec.write_intensive Experiment.all_designs

let print_fig5 ?scale ?loads () =
  Report.section "Figure 5: throughput vs 99p latency, 50:50 GET:PUT";
  print_curves "write-intensive workload" (fig5 ?scale ?loads ())

let fig4 ?scale ?loads () =
  run_curves ?scale ?loads Workload.Spec.default [ Kvserver.Design.minos; Kvserver.Design.hkh_ws ]

let print_fig4 ?scale ?loads () =
  Report.section "Figure 4: 99p latency of LARGE requests, default workload";
  let curves = fig4 ?scale ?loads () in
  let loads = List.map fst (List.hd curves).points in
  let rows =
    List.mapi
      (fun i load ->
        Report.f2 load
        :: List.map
             (fun c ->
               let _, m = List.nth c.points i in
               if m.Kvserver.Metrics.stable then
                 Report.f0 m.Kvserver.Metrics.large_p99_us
               else "sat")
             curves)
      loads
  in
  Report.table ~title:"99p of requests for large items (us)"
    ~headers:[ "offered Mops"; "Minos"; "HKH+WS" ]
    rows;
  (* Per-class tails and wait breakdown at each design's highest stable
     load — where the small/large split pays off. *)
  List.iter
    (fun c ->
      match
        List.filter (fun (_, m) -> m.Kvserver.Metrics.stable) c.points
        |> List.rev
      with
      | (_, m) :: _ ->
          Report.note "%s" (Format.asprintf "%a" Kvserver.Metrics.pp_breakdown m)
      | [] -> ())
    curves

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7 *)

type slo_row = {
  varied : float;
  slo_us : float;
  minos_mops : float;
  hkh_mops : float;
  hkh_ws_mops : float;
  sho_mops : float;
}

(* Pick SHO's handoff-core count once per workload at a moderate load,
   then keep it fixed during the bisection. *)
let sho_handoff_for ~cfg spec =
  let score h =
    let m =
      Experiment.run ~cfg:{ cfg with Kvserver.Config.handoff_cores = h } Kvserver.Design.sho
        spec ~offered_mops:3.0
    in
    (m.Kvserver.Metrics.stable, m.Kvserver.Metrics.throughput_mops)
  in
  [ 1; 2; 3 ]
  |> List.map (fun h -> (h, score h))
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.hd |> fst

let max_under_slo ~cfg ~iters design spec ~slo_us =
  let cfg =
    if Kvserver.Design.supports design Kvserver.Design.Handoff_cores then
      { cfg with Kvserver.Config.handoff_cores = sho_handoff_for ~cfg spec }
    else cfg
  in
  let eval rate = Experiment.run ~cfg design spec ~offered_mops:rate in
  (Slo_search.search ~eval ~slo_p99_us:slo_us ~lo_mops:0.25 ~hi_mops:8.0 ~iters)
    .Slo_search.max_mops

(* SLO searches run many simulations per reported number; a shorter
   measurement window (still >= 10^5 samples per point at the loads that
   matter) keeps Figures 6 and 7 tractable without changing the verdicts. *)
let slo_cfg scale =
  let cfg = Experiment.config_of_scale scale in
  {
    cfg with
    Kvserver.Config.duration_us = 0.6 *. cfg.Kvserver.Config.duration_us;
    warmup_us = 0.6 *. cfg.Kvserver.Config.warmup_us;
    epoch_us = 0.6 *. cfg.Kvserver.Config.epoch_us;
  }

let slo_rows ?(scale = Experiment.full_scale) specs ~varied_of =
  let cfg = slo_cfg scale in
  (* One parallel job per (workload, SLO) row; each row runs its four
     bisections sequentially inside the job. *)
  List.concat_map (fun spec -> List.map (fun slo_us -> (spec, slo_us)) [ 50.0; 100.0 ])
    specs
  |> Par.map_list (fun (spec, slo_us) ->
         let max d = max_under_slo ~cfg ~iters:scale.Experiment.slo_iters d spec ~slo_us in
         {
           varied = varied_of spec;
           slo_us;
           minos_mops = max Kvserver.Design.minos;
           hkh_mops = max Kvserver.Design.hkh;
           hkh_ws_mops = max Kvserver.Design.hkh_ws;
           sho_mops = max Kvserver.Design.sho;
         })

let fig6 ?scale ?(p_values = [ 0.0625; 0.125; 0.25; 0.5; 0.75 ]) () =
  let specs = List.map (Workload.Spec.with_p_large Workload.Spec.default) p_values in
  slo_rows ?scale specs ~varied_of:(fun s -> s.Workload.Spec.p_large)

let fig7 ?scale ?(s_values = [ 250_000; 500_000; 1_000_000 ]) () =
  let specs = List.map (Workload.Spec.with_s_large Workload.Spec.default) s_values in
  slo_rows ?scale specs ~varied_of:(fun s -> float_of_int s.Workload.Spec.s_large_max)

let speedup a b = if b > 0.0 then a /. b else Float.infinity

let print_slo_rows ~varied_label ~format_varied rows =
  let rows_txt =
    List.map
      (fun r ->
        [
          format_varied r.varied;
          Report.f0 r.slo_us;
          Report.f2 r.minos_mops;
          Report.f2 r.hkh_mops;
          Report.f2 r.hkh_ws_mops;
          Report.f2 r.sho_mops;
          Report.f2 (speedup r.minos_mops r.hkh_mops);
          Report.f2 (speedup r.minos_mops r.hkh_ws_mops);
          Report.f2 (speedup r.minos_mops r.sho_mops);
        ])
      rows
  in
  Report.table ~title:"max throughput under SLO (Mops) and Minos speedups"
    ~headers:
      [ varied_label; "SLO us"; "Minos"; "HKH"; "HKH+WS"; "SHO"; "xHKH"; "xWS"; "xSHO" ]
    rows_txt

let print_fig6 ?scale ?p_values () =
  Report.section "Figure 6: max throughput under 99p SLO vs % of large requests";
  print_slo_rows ~varied_label:"pL %"
    ~format_varied:(Printf.sprintf "%.4f")
    (fig6 ?scale ?p_values ())

let print_fig7 ?scale ?s_values () =
  Report.section "Figure 7: max throughput under 99p SLO vs max large item size";
  print_slo_rows ~varied_label:"sL"
    ~format_varied:(fun s -> Printf.sprintf "%.0f KB" (s /. 1000.0))
    (fig7 ?scale ?s_values ())

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

type fig8_series = {
  sampling : float;
  points : (float * Kvserver.Metrics.t) list;
}

let fig8_loads = [ 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0; 4.5 ]

let fig8 ?(scale = Experiment.full_scale) ?(samplings = [ 1.0; 0.75; 0.5; 0.25 ])
    ?(loads = fig8_loads) () =
  let spec = Workload.Spec.with_p_large Workload.Spec.default 0.75 in
  (* The sweep inside each series already fans out across domains. *)
  List.map
    (fun sampling ->
      let cfg =
        { (Experiment.config_of_scale scale) with Kvserver.Config.sampling }
      in
      { sampling; points = Experiment.sweep ~cfg Kvserver.Design.minos spec ~loads_mops:loads })
    samplings

let print_fig8 ?scale () =
  Report.section
    "Figure 8: Minos with more network bandwidth (reply sampling, pL=0.75)";
  let series = fig8 ?scale () in
  let loads = List.map fst (List.hd series).points in
  let rows =
    List.mapi
      (fun i load ->
        Report.f2 load
        :: List.concat_map
             (fun s ->
               let _, m = List.nth s.points i in
               [
                 (if m.Kvserver.Metrics.stable then Report.f1 m.Kvserver.Metrics.p99_us
                  else "sat");
                 Report.pct m.Kvserver.Metrics.nic_tx_utilization;
               ])
             series)
      loads
  in
  Report.table ~title:"p99 (us) and NIC utilization per sampling rate S"
    ~headers:
      ("offered Mops"
      :: List.concat_map
           (fun s ->
             let l = Printf.sprintf "S=%.0f" (100.0 *. s.sampling) in
             [ l ^ " p99"; l ^ " nic" ])
           series)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

type fig9_row = {
  p_large : float;
  n_small : int;
  ops_share : float array;
  packet_share : float array;
}

let fig9 ?(scale = Experiment.full_scale) ?(p_values = [ 0.0625; 0.25; 0.75 ]) () =
  let cfg = Experiment.config_of_scale scale in
  Par.map_list
    (fun p_large ->
      let spec = Workload.Spec.with_p_large Workload.Spec.default p_large in
      (* A high-but-stable load so the balance is meaningful. *)
      let m = Experiment.run ~cfg Kvserver.Design.minos spec ~offered_mops:2.0 in
      let share arr =
        let total = Array.fold_left ( + ) 0 arr in
        Array.map (fun v -> float_of_int v /. float_of_int (max total 1)) arr
      in
      {
        p_large;
        n_small =
          Array.length m.Kvserver.Metrics.per_core_ops
          - m.Kvserver.Metrics.final_large_cores;
        ops_share = share m.Kvserver.Metrics.per_core_ops;
        packet_share = share m.Kvserver.Metrics.per_core_packets;
      })
    p_values

let print_fig9 ?scale () =
  Report.section "Figure 9: per-core load breakdown in Minos (at 2.0 Mops)";
  List.iter
    (fun row ->
      let cores = Array.length row.ops_share in
      let rows_txt =
        List.init cores (fun i ->
            [
              Printf.sprintf "core %d%s" i (if i >= row.n_small then " (large)" else "");
              Report.pct row.ops_share.(i);
              Report.pct row.packet_share.(i);
            ])
      in
      Report.table
        ~title:(Printf.sprintf "pL = %.4f%% (%d small cores)" row.p_large row.n_small)
        ~headers:[ "core"; "% ops"; "% packets" ]
        rows_txt)
    (fig9 ?scale ())

(* ------------------------------------------------------------------ *)
(* Figure 10 *)

type fig10_result = {
  minos_p99 : (float * float) list;
  hkh_ws_p99 : (float * float) list;
  large_cores : (float * int) list;
}

(* The paper fixes the arrival rate at 2.25 Mops ("high load for
   pL = 0.75").  Our NIC-bound calibration saturates slightly below that
   in the heavy phase (see EXPERIMENTS.md), so the default here is 2.0 —
   still ~95 % NIC utilization at pL = 0.75. *)
let fig10 ?(scale = Experiment.full_scale) ?(rate_mops = 2.0) () =
  let phase p =
    { Workload.Dynamic.duration_us = scale.Experiment.phase_us; p_large = p }
  in
  let schedule =
    Workload.Dynamic.create
      (List.map phase [ 0.125; 0.25; 0.5; 0.75; 0.5; 0.25; 0.125 ])
  in
  let total = Workload.Dynamic.total_duration schedule in
  let cfg =
    {
      (Experiment.config_of_scale scale) with
      Kvserver.Config.duration_us = total;
      warmup_us = 0.0;
      window_us = Some scale.Experiment.window_us;
    }
  in
  let run design =
    Experiment.run ~cfg ~dynamic:schedule design Workload.Spec.default
      ~offered_mops:rate_mops
  in
  let minos, ws =
    match Par.map_list run [ Kvserver.Design.minos; Kvserver.Design.hkh_ws ] with
    | [ m; w ] -> (m, w)
    | _ -> assert false
  in
  let to_seconds series = List.map (fun (t, v) -> (t /. 1.0e6, v)) series in
  {
    minos_p99 = to_seconds minos.Kvserver.Metrics.p99_series;
    hkh_ws_p99 = to_seconds ws.Kvserver.Metrics.p99_series;
    large_cores =
      List.map (fun (t, v) -> (t /. 1.0e6, v)) minos.Kvserver.Metrics.large_core_series;
  }

let print_fig10 ?scale () =
  Report.section "Figure 10: dynamic workload (pL cycles 0.125 -> 0.75 -> 0.125)";
  let r = fig10 ?scale () in
  let cores_at t =
    (* The latest control decision at or before this window. *)
    List.fold_left
      (fun acc (ct, n) -> if ct <= t then n else acc)
      0 r.large_cores
  in
  let rows =
    List.map2
      (fun (t, minos) (_, ws) ->
        [ Report.f2 t; Report.f1 minos; Report.f1 ws;
          string_of_int (cores_at t) ])
      r.minos_p99 r.hkh_ws_p99
  in
  Report.table ~title:"per-window 99p latency and Minos large-core count"
    ~headers:[ "t (s)"; "Minos p99us"; "HKH+WS p99us"; "large cores" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fan-out analysis *)

type fanout_row = { fanout : int; minos_p99_us : float; hkh_p99_us : float }

let max_of_n_quantile ~rng latencies n ~q ~trials =
  let len = Stats.Float_vec.length latencies in
  let samples =
    Array.init trials (fun _ ->
        let m = ref 0.0 in
        for _ = 1 to n do
          let v = Stats.Float_vec.get latencies (Dsim.Rng.int rng len) in
          if v > !m then m := v
        done;
        !m)
  in
  Stats.Quantile.of_array samples q

let fanout ?(scale = Experiment.full_scale) ?(fanouts = [ 1; 10; 40; 100 ])
    ?(load = 4.0) () =
  let cfg = Experiment.config_of_scale scale in
  let minos_lat, hkh_lat =
    match
      Par.map_list
        (fun design ->
          snd (Experiment.run_raw ~cfg design Workload.Spec.default ~offered_mops:load))
        [ Kvserver.Design.minos; Kvserver.Design.hkh ]
    with
    | [ m; h ] -> (m, h)
    | _ -> assert false
  in
  let rng = Dsim.Rng.create 1234 in
  List.map
    (fun n ->
      {
        fanout = n;
        minos_p99_us = max_of_n_quantile ~rng minos_lat n ~q:0.99 ~trials:50_000;
        hkh_p99_us = max_of_n_quantile ~rng hkh_lat n ~q:0.99 ~trials:50_000;
      })
    fanouts

let print_fanout ?scale () =
  Report.section
    "Fan-out analysis: p99 of a request that fans out to N parallel lookups (4 Mops)";
  let rows =
    List.map
      (fun r ->
        [ string_of_int r.fanout; Report.f1 r.minos_p99_us; Report.f1 r.hkh_p99_us;
          Printf.sprintf "%.1fx" (r.hkh_p99_us /. r.minos_p99_us) ])
      (fanout ?scale ())
  in
  Report.table ~title:"max-of-N response time, default workload"
    ~headers:[ "fan-out N"; "Minos p99 us"; "HKH p99 us"; "gap" ]
    rows;
  Report.note
    "with high fan-out, nearly every user-visible operation samples the server's tail \
     (Dean & Barroso, 'The Tail at Scale') — which is why the paper optimizes p99"

(* ------------------------------------------------------------------ *)
(* Ablations *)

let print_ablation_threshold ?(scale = Experiment.full_scale) () =
  Report.section
    "Ablation: adaptive vs static threshold (write-intensive, cf. §6.2)";
  let cfg = Experiment.config_of_scale scale in
  let static =
    { cfg with Kvserver.Config.static_threshold = Some 1472.0 }
  in
  let rows =
    Par.map_list
      (fun (label, cfg) ->
        let m =
          Experiment.run ~cfg Kvserver.Design.minos Workload.Spec.write_intensive
            ~offered_mops:5.5
        in
        [ label; Report.f2 m.Kvserver.Metrics.throughput_mops;
          (if m.Kvserver.Metrics.stable then Report.f1 m.Kvserver.Metrics.p99_us
           else "sat");
          Report.f0 m.Kvserver.Metrics.final_threshold ])
      [ ("adaptive", cfg); ("static 1472B", static) ]
  in
  Report.table ~title:"Minos at 5.5 Mops offered, 50:50"
    ~headers:[ "variant"; "tput Mops"; "p99 us"; "threshold B" ]
    rows

let print_ablation_cost_fn ?(scale = Experiment.full_scale) () =
  Report.section "Ablation: control-loop cost function";
  let base = Experiment.config_of_scale scale in
  let rows =
    Par.map_list
      (fun cost_fn ->
        let cfg = { base with Kvserver.Config.cost_fn } in
        let m =
          Experiment.run ~cfg Kvserver.Design.minos Workload.Spec.default ~offered_mops:4.5
        in
        [ Kvserver.Cost_model.cost_fn_name cost_fn;
          Report.f2 m.Kvserver.Metrics.throughput_mops;
          Report.f1 m.Kvserver.Metrics.p99_us;
          string_of_int m.Kvserver.Metrics.final_large_cores ])
      [ Kvserver.Cost_model.Packets; Kvserver.Cost_model.Bytes;
        Kvserver.Cost_model.Constant_plus_bytes 1500.0 ]
  in
  Report.table ~title:"Minos at 4.5 Mops, default workload"
    ~headers:[ "cost fn"; "tput Mops"; "p99 us"; "large cores" ]
    rows

let print_ablation_steal ?(scale = Experiment.full_scale) () =
  Report.section "Ablation: large-core RX stealing (future-work variant of §6.1)";
  let base = Experiment.config_of_scale scale in
  let rows =
    Par.map_list
      (fun (label, large_rx_steal) ->
        let cfg = { base with Kvserver.Config.large_rx_steal } in
        let m =
          Experiment.run ~cfg Kvserver.Design.minos Workload.Spec.default ~offered_mops:4.5
        in
        [ label;
          Report.f1 m.Kvserver.Metrics.p99_us;
          Report.f0 m.Kvserver.Metrics.large_p99_us;
          string_of_int m.Kvserver.Metrics.final_large_cores ])
      [ ("baseline Minos", false); ("+1 large core & RX steal", true) ]
  in
  Report.table ~title:"Minos at 4.5 Mops, default workload"
    ~headers:[ "variant"; "p99 us"; "large p99 us"; "large cores" ]
    rows

let print_ablation_erew ?(scale = Experiment.full_scale) () =
  Report.section "Ablation: HKH dispatch mode — CREW vs EREW under zipf skew";
  let base = Experiment.config_of_scale scale in
  let rows =
    List.concat_map
      (fun (label, hkh_erew) -> List.map (fun load -> (label, hkh_erew, load)) [ 3.0; 5.0 ])
      [ ("CREW", false); ("EREW", true) ]
    |> Par.map_list (fun (label, hkh_erew, load) ->
           let cfg = { base with Kvserver.Config.hkh_erew } in
           let m =
             Experiment.run ~cfg Kvserver.Design.hkh Workload.Spec.default ~offered_mops:load
           in
           let ops = m.Kvserver.Metrics.per_core_ops in
           let total = Array.fold_left ( + ) 0 ops in
           let hottest = Array.fold_left max 0 ops in
           [ label; Report.f2 load;
             (if m.Kvserver.Metrics.stable then Report.f1 m.Kvserver.Metrics.p99_us
              else "sat");
             Printf.sprintf "%.2fx"
               (float_of_int hottest *. float_of_int (Array.length ops)
               /. float_of_int (max total 1)) ])
  in
  Report.table ~title:"HKH on the default (zipf 0.99) workload"
    ~headers:[ "mode"; "offered Mops"; "p99 us"; "hottest core / mean" ]
    rows

let print_ablation_epoch ?(scale = Experiment.full_scale) () =
  Report.section "Ablation: control epoch length and smoothing alpha (dynamic workload)";
  let phase p =
    { Workload.Dynamic.duration_us = scale.Experiment.phase_us /. 2.0; p_large = p }
  in
  let schedule = Workload.Dynamic.create (List.map phase [ 0.125; 0.75; 0.125 ]) in
  let total = Workload.Dynamic.total_duration schedule in
  let rows =
    Par.map_list
      (fun (epoch_us, alpha) ->
        let cfg =
          {
            (Experiment.config_of_scale scale) with
            Kvserver.Config.duration_us = total;
            warmup_us = 0.0;
            epoch_us;
            alpha;
            window_us = Some scale.Experiment.window_us;
          }
        in
        let m =
          Experiment.run ~cfg ~dynamic:schedule Kvserver.Design.minos Workload.Spec.default
            ~offered_mops:2.25
        in
        let p99s = List.map snd m.Kvserver.Metrics.p99_series in
        let worst = List.fold_left Float.max 0.0 p99s in
        let mean =
          List.fold_left ( +. ) 0.0 p99s /. float_of_int (max 1 (List.length p99s))
        in
        [ Report.f0 (epoch_us /. 1000.0); Report.f2 alpha; Report.f1 mean;
          Report.f1 worst ])
      [ (scale.Experiment.epoch_us /. 2.0, 0.9);
        (scale.Experiment.epoch_us, 0.9);
        (scale.Experiment.epoch_us *. 2.0, 0.9);
        (scale.Experiment.epoch_us, 0.5) ]
  in
  Report.table ~title:"windowed p99 across a pL step (2.25 Mops)"
    ~headers:[ "epoch ms"; "alpha"; "mean p99 us"; "worst p99 us" ]
    rows
