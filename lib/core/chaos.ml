type row = {
  plan : string;
  label : string;
  offered_mops : float;
  metrics : Kvserver.Metrics.t;
}

type t = { seed : int; rows : row list }

let variants = [ "Minos+guard"; "Minos"; "HKH+WS" ]

(* Each canned plan is run at the load that makes its failure mode bite.
   A core stall or a corrupted control loop collapses the tail even at
   moderate load, but 10% loss only separates the variants once the
   retransmission storm matters, and the overload plan needs offered
   load past the squeezed ring's service rate or nothing is ever shed. *)
let plan_load ?(base = 4.0) = function
  | "loss10" -> base *. 1.75
  | "overload" -> base *. 2.0
  | _ -> base

let guard_config (base : Kvserver.Config.t) =
  {
    base with
    Kvserver.Config.watchdog = true;
    shed_watermark = Some 256;
    clamp_threshold = Some 0.5;
    rx_capacity = Some 4096;
  }

(* The baseline gets the same admission control as the guarded Minos — it
   has no watchdog or threshold to harden, so this is the strongest
   size-unaware contender under overload, not a strawman. *)
let baseline_config (base : Kvserver.Config.t) =
  { base with Kvserver.Config.shed_watermark = Some 256; rx_capacity = Some 4096 }

let variant_points base =
  [
    ("Minos+guard", Kvserver.Design.minos, guard_config base);
    ("Minos", Kvserver.Design.minos, base);
    ("HKH+WS", Kvserver.Design.hkh_ws, baseline_config base);
  ]

let run_plan ?cfg ?(workload = Workload.Scenario.default) ?(seed = 1)
    ?(offered_mops = 4.0) plan =
  let base =
    match cfg with Some c -> c | None -> Experiment.config_of_scale Experiment.full_scale
  in
  variant_points base
  |> Par.map_list (fun (label, design, cfg) ->
         (* Each run owns its injector: the fault stream advances as the
            run consumes it, so sharing one across runs would entangle
            their decisions. *)
         let fault = Fault.Inject.create ~seed plan in
         let metrics =
           Experiment.Spec.make design
           |> Experiment.Spec.with_workload workload
           |> Experiment.Spec.with_cfg cfg
           |> Experiment.Spec.with_seed seed
           |> Experiment.Spec.with_load offered_mops
           |> Experiment.Spec.with_fault fault
           |> Experiment.run_spec
         in
         { plan = plan.Fault.Plan.name; label; offered_mops; metrics })

let run ?cfg ?workload ?(seed = 1) ?offered_mops ?plans () =
  let base =
    match cfg with Some c -> c | None -> Experiment.config_of_scale Experiment.full_scale
  in
  let names = match plans with Some l -> l | None -> Fault.Plan.canned_names in
  let rows =
    List.concat_map
      (fun name ->
        let plan =
          match
            Fault.Plan.canned name ~cores:base.Kvserver.Config.cores
              ~warmup_us:base.Kvserver.Config.warmup_us
              ~duration_us:base.Kvserver.Config.duration_us
          with
          | Some p -> p
          | None -> invalid_arg ("Chaos.run: unknown canned plan " ^ name)
        in
        run_plan ~cfg:base ?workload ~seed
          ~offered_mops:(plan_load ?base:offered_mops name)
          plan)
      names
  in
  { seed; rows }

let print t =
  let plans =
    List.fold_left
      (fun acc r -> if List.mem r.plan acc then acc else acc @ [ r.plan ])
      [] t.rows
  in
  List.iter
    (fun plan ->
      Report.section ("Chaos: " ^ plan ^ " (seed " ^ string_of_int t.seed ^ ")");
      let plan_rows = List.filter (fun r -> r.plan = plan) t.rows in
      let offered =
        match plan_rows with r :: _ -> r.offered_mops | [] -> 0.0
      in
      let rows =
        plan_rows
        |> List.map (fun r ->
               let m = r.metrics in
               [
                 r.label;
                 Report.f1 m.Kvserver.Metrics.p50_us;
                 Report.f1 m.Kvserver.Metrics.p99_us;
                 Report.f2 m.Kvserver.Metrics.throughput_mops;
                 Report.pct (Kvserver.Metrics.goodput_fraction m);
                 string_of_int (Kvserver.Metrics.shed_total m);
                 string_of_int
                   (m.Kvserver.Metrics.net_dropped + m.Kvserver.Metrics.rx_dropped);
                 (if m.Kvserver.Metrics.stable then "yes" else "no");
               ])
      in
      Report.table ~title:("offered " ^ Report.f1 offered ^ " Mops")
        ~headers:
          [ "variant"; "p50 us"; "p99 us"; "tput Mops"; "goodput"; "shed"; "dropped";
            "stable" ]
        rows)
    plans

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b " "
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  let fl x = Printf.sprintf "%.3f" x in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" t.seed);
  Buffer.add_string b "  \"plans\": {\n";
  let plans =
    List.fold_left
      (fun acc r -> if List.mem r.plan acc then acc else acc @ [ r.plan ])
      [] t.rows
  in
  List.iteri
    (fun pi plan ->
      Buffer.add_string b (Printf.sprintf "    \"%s\": {\n" (json_escape plan));
      let rows = List.filter (fun r -> r.plan = plan) t.rows in
      (match rows with
      | r :: _ ->
          Buffer.add_string b
            (Printf.sprintf "      \"offered_mops\": %s,\n" (fl r.offered_mops))
      | [] -> ());
      List.iteri
        (fun ri r ->
          let m = r.metrics in
          Buffer.add_string b
            (Printf.sprintf
               "      \"%s\": {\"p99_us\": %s, \"p50_us\": %s, \
                \"throughput_mops\": %s, \"goodput\": %s, \"served\": %d, \
                \"shed_small\": %d, \"shed_large\": %d, \"net_dropped\": %d, \
                \"rx_dropped\": %d, \"stable\": %b}%s\n"
               (json_escape r.label)
               (fl m.Kvserver.Metrics.p99_us)
               (fl m.Kvserver.Metrics.p50_us)
               (fl m.Kvserver.Metrics.throughput_mops)
               (fl (Kvserver.Metrics.goodput_fraction m))
               m.Kvserver.Metrics.served_total m.Kvserver.Metrics.shed_small
               m.Kvserver.Metrics.shed_large m.Kvserver.Metrics.net_dropped
               m.Kvserver.Metrics.rx_dropped m.Kvserver.Metrics.stable
               (if ri = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string b
        (Printf.sprintf "    }%s\n" (if pi = List.length plans - 1 then "" else ",")))
    plans;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b
