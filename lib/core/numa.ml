type result = {
  per_domain : Kvserver.Metrics.t list;
  total_throughput_mops : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  stable : bool;
}

let run ?cfg ?(design = Kvserver.Design.minos) ?(seed = 1) ~domains spec ~offered_mops =
  if domains < 1 then invalid_arg "Numa.run: need at least one domain";
  let cfg = match cfg with Some c -> c | None -> Experiment.config_of_scale Experiment.full_scale in
  (* Each domain owns a disjoint key-space slice: same size distribution,
     1/domains of the keys and of the large keys. *)
  let domain_spec =
    {
      spec with
      Workload.Spec.n_keys = max 2 (spec.Workload.Spec.n_keys / domains);
      n_large_keys = max 1 (spec.Workload.Spec.n_large_keys / domains);
    }
  in
  let per_rate = offered_mops /. float_of_int domains in
  let runs =
    List.init domains (fun d ->
        let dataset = Experiment.dataset_for domain_spec in
        let gen =
          Workload.Generator.create
            ~seed:(seed + 101 + (31 * d))
            ~p_large:spec.Workload.Spec.p_large
            ~get_ratio:spec.Workload.Spec.get_ratio dataset
        in
        let cfg = { cfg with Kvserver.Config.seed = cfg.Kvserver.Config.seed + d } in
        let eng = Kvserver.Engine.create cfg gen ~offered_mops:per_rate in
        let metrics = Kvserver.Engine.run eng (Experiment.maker design) in
        (metrics, Kvserver.Engine.raw_latencies eng))
  in
  let per_domain = List.map fst runs in
  let all = Stats.Float_vec.create () in
  List.iter (fun (_, vec) -> Stats.Float_vec.append all vec) runs;
  let q p =
    if Stats.Float_vec.length all = 0 then Float.nan else Stats.Quantile.of_vec all p
  in
  {
    per_domain;
    total_throughput_mops =
      List.fold_left (fun acc m -> acc +. m.Kvserver.Metrics.throughput_mops) 0.0 per_domain;
    p50_us = q 0.5;
    p99_us = q 0.99;
    p999_us = q 0.999;
    stable = List.for_all (fun m -> m.Kvserver.Metrics.stable) per_domain;
  }
