let section title =
  Printf.printf "\n=== %s ===\n" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    (String.lowercase_ascii title)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~headers rows =
  match Sys.getenv_opt "MINOS_CSV_DIR" with
  | None -> ()
  | Some dir ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        let path = Filename.concat dir (slug title ^ ".csv") in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun row ->
                output_string oc (String.concat "," (List.map csv_escape row));
                output_char oc '\n')
              (headers :: rows))
      end

let table ~title ~headers rows =
  write_csv ~title ~headers rows;
  let all = headers :: rows in
  let cols = List.length headers in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init cols width in
  let render row =
    row
    |> List.mapi (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell)
    |> String.concat "  "
  in
  Printf.printf "\n-- %s --\n" title;
  Printf.printf "%s\n" (render headers);
  Printf.printf "%s\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows

let with_nan f v = if Float.is_nan v then "-" else f v

let f1 = with_nan (Printf.sprintf "%.1f")
let f2 = with_nan (Printf.sprintf "%.2f")
let f0 = with_nan (Printf.sprintf "%.0f")
let pct = with_nan (fun v -> Printf.sprintf "%.0f%%" (100.0 *. v))
