(* A small reusable domain pool.

   Workers are spawned lazily (at most [jobs () - 1], growing if a larger
   degree is requested later) and live for the rest of the process; an
   [at_exit] hook quits and joins them so the main domain never exits with
   domains still running.  Each [map] call claims indices from a shared
   atomic counter, so results land at their input index regardless of which
   domain computes them — execution order varies, results do not. *)

let main_domain = Domain.self ()

let env_jobs =
  match Sys.getenv_opt "MINOS_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> Some (max 1 v)
      | None -> None)
  | None -> None

let override : int option Atomic.t = Atomic.make None

let set_jobs o = Atomic.set override (Option.map (max 1) o)

let jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* The pool *)

let pool_mutex = Mutex.create ()
let pool_cond = Condition.create ()
let task_queue : (unit -> unit) Queue.t = Queue.create ()
let quitting = ref false
let workers : unit Domain.t list ref = ref []
let worker_count = ref 0

let rec worker_loop () =
  Mutex.lock pool_mutex;
  while Queue.is_empty task_queue && not !quitting do
    Condition.wait pool_cond pool_mutex
  done;
  if Queue.is_empty task_queue then Mutex.unlock pool_mutex
  else begin
    let task = Queue.pop task_queue in
    Mutex.unlock pool_mutex;
    task ();
    worker_loop ()
  end

let shutdown () =
  Mutex.lock pool_mutex;
  quitting := true;
  Condition.broadcast pool_cond;
  let ws = !workers in
  workers := [];
  worker_count := 0;
  Mutex.unlock pool_mutex;
  List.iter Domain.join ws

let at_exit_registered = ref false

(* Called with [pool_mutex] held. *)
let ensure_workers_locked target =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit shutdown
  end;
  while !worker_count < target do
    workers := Domain.spawn worker_loop :: !workers;
    incr worker_count
  done

let submit target task =
  Mutex.lock pool_mutex;
  ensure_workers_locked target;
  for _ = 1 to target do
    Queue.push task task_queue
  done;
  Condition.broadcast pool_cond;
  Mutex.unlock pool_mutex

(* ------------------------------------------------------------------ *)
(* map *)

let sequential f arr = Array.map f arr

let parallel_map f arr ~degree =
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let remaining = Atomic.make n in
  let error = Atomic.make None in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let work () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue := false
      else begin
        (try results.(i) <- Some (f arr.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set error None (Some (e, bt))));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex
        end
      end
    done
  in
  let helpers = min (degree - 1) (n - 1) in
  submit helpers work;
  work ();
  Mutex.lock done_mutex;
  while Atomic.get remaining > 0 do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex;
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let map f arr =
  let n = Array.length arr in
  let degree = jobs () in
  (* Nested calls (from a worker) and trivial inputs run sequentially in
     the calling domain: same results, no pool interaction, no deadlock. *)
  if n <= 1 || degree <= 1 || Domain.self () <> main_domain then sequential f arr
  else parallel_map f arr ~degree

let map_list f l = Array.to_list (map f (Array.of_list l))
