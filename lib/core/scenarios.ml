type row = {
  scenario : string;
  design : string;
  offered_mops : float;
  metrics : Kvserver.Metrics.t;
  telescopes : bool;
}

type t = { seed : int; offered_mops : float; rows : row list }

let suite = [ "diurnal"; "bursts"; "ttl-churn"; "scan-heavy"; "cold-tier" ]

let designs () = [ Kvserver.Design.minos; Kvserver.Design.hkh ]

(* The extended telescoping identity: every issued request is accounted
   for by exactly one fate, with the TTL/eviction leg included. *)
let telescopes (m : Kvserver.Metrics.t) =
  m.Kvserver.Metrics.issued
  = m.Kvserver.Metrics.served_total + m.Kvserver.Metrics.net_dropped
    + m.Kvserver.Metrics.rx_dropped + m.Kvserver.Metrics.shed_small
    + m.Kvserver.Metrics.shed_large + m.Kvserver.Metrics.expired_misses
    + m.Kvserver.Metrics.in_flight_end

let run ?cfg ?(seed = 1) ?(offered_mops = 2.5) ?(names = suite) () =
  let cfg =
    match cfg with
    | Some c -> c
    | None -> Experiment.config_of_scale Experiment.full_scale
  in
  let points =
    List.concat_map
      (fun name ->
        let info =
          match Workload.Scenario.find name with
          | Some i -> i
          | None -> invalid_arg ("Scenarios.run: unknown scenario " ^ name)
        in
        List.map (fun design -> (info, design)) (designs ()))
      names
  in
  let rows =
    Par.map_list
      (fun ((info : Workload.Scenario.info), design) ->
        let metrics =
          Experiment.Spec.make design
          |> Experiment.Spec.with_workload info.Workload.Scenario.base
          |> Experiment.Spec.with_cfg cfg
          |> Experiment.Spec.with_seed seed
          |> Experiment.Spec.with_load offered_mops
          |> Experiment.run_spec
        in
        {
          scenario = info.Workload.Scenario.name;
          design = Kvserver.Design.name design;
          offered_mops;
          metrics;
          telescopes = telescopes metrics;
        })
      points
  in
  { seed; offered_mops; rows }

let scenario_names t =
  List.fold_left
    (fun acc r -> if List.mem r.scenario acc then acc else acc @ [ r.scenario ])
    [] t.rows

let print t =
  Report.section
    (Printf.sprintf "Scenarios: %s Mops offered, seed %d" (Report.f2 t.offered_mops)
       t.seed);
  List.iter
    (fun name ->
      let rows = List.filter (fun r -> r.scenario = name) t.rows in
      let summary =
        match Workload.Scenario.find name with
        | Some i -> i.Workload.Scenario.summary
        | None -> ""
      in
      Report.table
        ~title:(Printf.sprintf "%s — %s" name summary)
        ~headers:
          [ "design"; "p50 us"; "p99 us"; "tput Mops"; "miss"; "expired"; "evicted";
            "exact" ]
        (List.map
           (fun r ->
             let m = r.metrics in
             [
               r.design;
               Report.f1 m.Kvserver.Metrics.p50_us;
               Report.f1 m.Kvserver.Metrics.p99_us;
               Report.f2 m.Kvserver.Metrics.throughput_mops;
               string_of_int m.Kvserver.Metrics.expired_misses;
               string_of_int m.Kvserver.Metrics.expired_keys;
               string_of_int m.Kvserver.Metrics.evicted_keys;
               (if r.telescopes then "yes" else "BROKEN");
             ])
           rows);
      match
        ( List.find_opt (fun r -> r.design = "minos") rows,
          List.find_opt (fun r -> r.design = "hkh") rows )
      with
      | Some a, Some b ->
          Report.note "size-aware p99 %s us vs keyhash %s us (%sx)"
            (Report.f1 a.metrics.Kvserver.Metrics.p99_us)
            (Report.f1 b.metrics.Kvserver.Metrics.p99_us)
            (Report.f2
               (b.metrics.Kvserver.Metrics.p99_us
               /. Float.max a.metrics.Kvserver.Metrics.p99_us 0.001))
      | _ -> ())
    (scenario_names t)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b " "
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  let fl x = if Float.is_nan x then "null" else Printf.sprintf "%.3f" x in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"seed\": %d,\n  \"offered_mops\": %s,\n" t.seed
       (fl t.offered_mops));
  Buffer.add_string b "  \"scenarios\": {\n";
  let names = scenario_names t in
  List.iteri
    (fun ni name ->
      Buffer.add_string b (Printf.sprintf "    \"%s\": {\n" (json_escape name));
      let rows = List.filter (fun r -> r.scenario = name) t.rows in
      List.iteri
        (fun ri r ->
          let m = r.metrics in
          Buffer.add_string b
            (Printf.sprintf
               "      \"%s\": {\"p50_us\": %s, \"p99_us\": %s, \
                \"throughput_mops\": %s, \"issued\": %d, \"served\": %d, \
                \"expired_misses\": %d, \"expired_keys\": %d, \"evicted_keys\": \
                %d, \"shed\": %d, \"in_flight_end\": %d, \"stable\": %b, \
                \"telescopes\": %b}%s\n"
               (json_escape r.design)
               (fl m.Kvserver.Metrics.p50_us)
               (fl m.Kvserver.Metrics.p99_us)
               (fl m.Kvserver.Metrics.throughput_mops)
               m.Kvserver.Metrics.issued m.Kvserver.Metrics.served_total
               m.Kvserver.Metrics.expired_misses m.Kvserver.Metrics.expired_keys
               m.Kvserver.Metrics.evicted_keys
               (Kvserver.Metrics.shed_total m)
               m.Kvserver.Metrics.in_flight_end m.Kvserver.Metrics.stable
               r.telescopes
               (if ri = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string b
        (Printf.sprintf "    }%s\n" (if ni = List.length names - 1 then "" else ",")))
    names;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b
