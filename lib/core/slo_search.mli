(** Maximum throughput under a tail-latency SLO (§6.3).

    The paper's headline metric: the largest arrival rate at which the
    99th-percentile latency stays within X times the mean service time.
    Found by bisection on the offered load, treating a run as satisfying
    the SLO when it is stable and its p99 is within the bound. *)

type result = {
  max_mops : float;           (** 0.0 when even the lowest load misses *)
  metrics : Kvserver.Metrics.t option; (** the run at [max_mops] *)
  evaluations : int;
}

val search :
  eval:(float -> Kvserver.Metrics.t) ->
  slo_p99_us:float ->
  lo_mops:float ->
  hi_mops:float ->
  iters:int ->
  result
(** [search ~eval ~slo_p99_us ~lo_mops ~hi_mops ~iters] bisects on
    \[lo, hi\].  [eval] runs one simulation at the given rate.  Assumes p99
    is (noisily) nondecreasing in load, which holds for these systems.

    The two bracket endpoints are evaluated eagerly, through {!Par} —
    [eval] must therefore be domain-safe ({!Experiment.run} closures are).
    The bisection itself is inherently sequential.  Results are identical
    whether or not domains are available. *)
