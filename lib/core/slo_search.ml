type result = {
  max_mops : float;
  metrics : Kvserver.Metrics.t option;
  evaluations : int;
}

let meets (m : Kvserver.Metrics.t) ~slo_p99_us =
  m.Kvserver.Metrics.stable
  && (not (Float.is_nan m.Kvserver.Metrics.p99_us))
  && m.Kvserver.Metrics.p99_us <= slo_p99_us

let search ~eval ~slo_p99_us ~lo_mops ~hi_mops ~iters =
  if not (0.0 < lo_mops && lo_mops < hi_mops) then
    invalid_arg "Slo_search.search: need 0 < lo < hi";
  (* Establish the bracket: both endpoints are probed up front — in
     parallel when domains are available — so the bisection starts from a
     known [lo passes, hi fails] interval.  Probing [hi] eagerly also makes
     the evaluation count independent of the outcome, which keeps parallel
     and sequential runs identical. *)
  let m_lo, m_hi =
    match Par.map_list eval [ lo_mops; hi_mops ] with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let evaluations = ref 2 in
  let probe rate =
    incr evaluations;
    eval rate
  in
  if not (meets m_lo ~slo_p99_us) then
    { max_mops = 0.0; metrics = None; evaluations = !evaluations }
  else begin
    if meets m_hi ~slo_p99_us then
      { max_mops = hi_mops; metrics = Some m_hi; evaluations = !evaluations }
    else begin
      let best = ref (lo_mops, m_lo) in
      let lo = ref lo_mops and hi = ref hi_mops in
      for _ = 1 to iters do
        let mid = 0.5 *. (!lo +. !hi) in
        let m = probe mid in
        if meets m ~slo_p99_us then begin
          best := (mid, m);
          lo := mid
        end
        else hi := mid
      done;
      let rate, m = !best in
      { max_mops = rate; metrics = Some m; evaluations = !evaluations }
    end
  end
