(** Flight-recorder front end: run one instrumented simulation point and
    report where its latency went.

    This is what [minos obs] drives: it attaches an {!Obs.Instrument} to a
    single {!Experiment.run}, prints the {!Kvserver.Metrics} summary and
    breakdown rows, the per-component latency-anatomy table (CSV via
    [MINOS_CSV_DIR], like every {!Report.table}), recorder occupancy and
    the control-loop decision summary, and optionally writes the Chrome
    trace-event JSON. *)

val print_anatomy : Obs.Anatomy.t -> unit
(** Just the anatomy table + invariant note, for callers that computed
    the anatomy themselves. *)

val run :
  ?scale:Experiment.scale ->
  ?design:Experiment.design ->
  ?seed:int ->
  ?spans:int ->
  ?sample_rate:float ->
  ?trace_out:string ->
  Workload.Spec.t ->
  offered_mops:float ->
  Obs.Instrument.t * Obs.Anatomy.t * Kvserver.Metrics.t
(** Run one instrumented point and print the report.  [spans] bounds the
    recorder ring, [sample_rate] the fraction of requests recorded,
    [trace_out] names the Chrome trace JSON to write.  Returns the
    instrument (for exporters/tests), the computed anatomy and the run's
    metrics. *)
