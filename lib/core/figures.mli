(** One runner per table/figure of the paper's evaluation (see DESIGN.md's
    per-experiment index).  Each [figN] returns the figure's data; each
    [print_figN] renders it as a text table the way the paper reports it.

    All runners accept a {!Experiment.scale} so tests can run miniature
    versions ([Experiment.quick_scale]) while the benchmark harness runs
    the full versions. *)

type scale = Experiment.scale

(** {1 Figure 1 — service time vs item size} *)

val fig1 : unit -> (int * float) list
(** Closed-loop (no queueing) service latency for GETs of each size:
    pipeline + CPU + reply wire time. *)

val print_fig1 : unit -> unit

(** {1 Figure 2 — queueing simulation of size-unaware sharding} *)

type fig2_series = {
  discipline : Queueing.Models.discipline;
  k : float;
  points : (float * float) list; (** (normalized load, p99 in small units) *)
}

val fig2 : ?requests:int -> ?loads:float list -> unit -> fig2_series list

val print_fig2 : ?requests:int -> unit -> unit

(** {1 Table 1 — item size variability profiles} *)

val table1 : ?mc_samples:int -> unit -> (float * int * float * float) list
(** (p_l, s_l, analytic % data large, Monte-Carlo % data large). *)

val print_table1 : unit -> unit

(** {1 Figures 3/5 — throughput vs 99p latency, default and 50:50} *)

type curve = {
  design : Experiment.design;
  points : (float * Kvserver.Metrics.t) list;
}

val fig3 : ?scale:scale -> ?loads:float list -> unit -> curve list

val print_fig3 : ?scale:scale -> ?loads:float list -> unit -> unit

val fig5 : ?scale:scale -> ?loads:float list -> unit -> curve list

val print_fig5 : ?scale:scale -> ?loads:float list -> unit -> unit

(** {1 Figure 4 — 99p latency of large requests} *)

val fig4 : ?scale:scale -> ?loads:float list -> unit -> curve list
(** Minos and HKH+WS only; read [large_p99_us] from the metrics. *)

val print_fig4 : ?scale:scale -> ?loads:float list -> unit -> unit

(** {1 Figures 6/7 — max throughput under an SLO} *)

type slo_row = {
  varied : float; (** p_l (fig 6) or s_l in bytes (fig 7) *)
  slo_us : float;
  minos_mops : float;
  hkh_mops : float;
  hkh_ws_mops : float;
  sho_mops : float;
}

val fig6 : ?scale:scale -> ?p_values:float list -> unit -> slo_row list

val print_fig6 : ?scale:scale -> ?p_values:float list -> unit -> unit

val fig7 : ?scale:scale -> ?s_values:int list -> unit -> slo_row list

val print_fig7 : ?scale:scale -> ?s_values:int list -> unit -> unit

(** {1 Figure 8 — scaling with network bandwidth via reply sampling} *)

type fig8_series = {
  sampling : float;
  points : (float * Kvserver.Metrics.t) list;
}

val fig8 : ?scale:scale -> ?samplings:float list -> ?loads:float list -> unit ->
  fig8_series list

val print_fig8 : ?scale:scale -> unit -> unit

(** {1 Figure 9 — per-core load breakdown} *)

type fig9_row = {
  p_large : float;
  n_small : int;
  ops_share : float array;     (** per core, fraction of total ops *)
  packet_share : float array;  (** per core, fraction of total packets *)
}

val fig9 : ?scale:scale -> ?p_values:float list -> unit -> fig9_row list

val print_fig9 : ?scale:scale -> unit -> unit

(** {1 Figure 10 — dynamic workload} *)

type fig10_result = {
  minos_p99 : (float * float) list;   (** (window start s, p99 µs) *)
  hkh_ws_p99 : (float * float) list;
  large_cores : (float * int) list;   (** (time s, Minos n_large) *)
}

val fig10 : ?scale:scale -> ?rate_mops:float -> unit -> fig10_result

val print_fig10 : ?scale:scale -> unit -> unit

(** {1 Fan-out analysis (the §1 motivation, quantified)} *)

type fanout_row = {
  fanout : int;
  minos_p99_us : float;  (** p99 of the max of [fanout] parallel requests *)
  hkh_p99_us : float;
}

val fanout : ?scale:scale -> ?fanouts:int list -> ?load:float -> unit -> fanout_row list
(** Monte-Carlo estimate of the response time of a fan-out-[N] operation
    (its latency is the maximum of N independent KV requests), from
    measured latency distributions at [load] (default 4 Mops).  Shows how
    head-of-line blocking compounds with fan-out: with N = 100, {e most}
    user operations hit the server's tail. *)

val print_fanout : ?scale:scale -> unit -> unit

(** {1 Ablations (beyond the paper's figures)} *)

val print_ablation_threshold : ?scale:scale -> unit -> unit
(** Adaptive vs static threshold on the write-intensive workload (§6.2). *)

val print_ablation_cost_fn : ?scale:scale -> unit -> unit
(** Packets vs bytes vs constant+bytes control-loop cost functions. *)

val print_ablation_steal : ?scale:scale -> unit -> unit
(** §6.1 variant: extra large core + RX stealing by idle large cores. *)

val print_ablation_epoch : ?scale:scale -> unit -> unit
(** Control-epoch length and smoothing-α sensitivity on the dynamic
    workload. *)

val print_ablation_erew : ?scale:scale -> unit -> unit
(** MICA CREW vs EREW dispatch for the HKH baseline under zipfian skew
    (the paper picks CREW, §5.2: "This policy performs the best on skewed
    read-dominated workloads"). *)
