type t = {
  servers : int;
  offered_mops : float;
  seed : int;
  main : Kvcluster.Run.t;
  baseline : Kvcluster.Run.t;
}

let run ?cfg ?(design = Kvserver.Design.minos) ?(baseline = Kvserver.Design.hkh)
    ?policy ?vnodes ?rebalance ?fanouts ?trials ?(seed = 1) ?trace_out ?spans
    ?sample_rate ~servers workload ~offered_mops =
  let cfg =
    match cfg with
    | Some c -> c
    | None -> Experiment.config_of_scale Experiment.full_scale
  in
  (* The cluster driver consumes the scenario's flat mix; arrival/TTL/scan
     extras are single-engine features (see Experiment.run_spec). *)
  let workload = workload.Workload.Scenario.spec in
  let dataset = Experiment.dataset_for workload in
  let instruments =
    match trace_out with
    | None -> None
    | Some _ ->
        Some
          (Array.init servers (fun s ->
               Obs.Instrument.create ~server:s ?spans ?sample_rate
                 ~cores:cfg.Kvserver.Config.cores
                 ~seed:(seed + (97 * s) + 0x0b5) ()))
  in
  let instrument =
    Option.map (fun arr s -> arr.(s)) instruments
  in
  let go design ?instrument () =
    Kvcluster.Run.run ?policy ?vnodes ?rebalance ?fanouts ?trials ~seed
      ?instrument ~map:Par.map_list ~cfg ~design ~dataset ~servers ~workload
      ~offered_mops ()
  in
  let main = go design ?instrument () in
  let baseline = go baseline () in
  (match (trace_out, instruments) with
  | Some path, Some arr ->
      let sections =
        Array.to_list
          (Array.mapi (fun s ins -> (Printf.sprintf "shard %d" s, ins)) arr)
      in
      Obs.Chrome_trace.write_cluster ~path sections
  | _ -> ());
  { servers; offered_mops; seed; main; baseline }

(* ------------------------------------------------------------------ *)
(* Printing *)

let shard_table label (r : Kvcluster.Run.t) =
  let m = r.Kvcluster.Run.metrics in
  let rows =
    Array.to_list
      (Array.mapi
         (fun s (sm : Kvserver.Metrics.t) ->
           [
             string_of_int s;
             Report.pct m.Kvcluster.Metrics.shard_share.(s);
             Report.f2 sm.Kvserver.Metrics.throughput_mops;
             Report.f1 sm.Kvserver.Metrics.p50_us;
             Report.f1 sm.Kvserver.Metrics.p99_us;
             Report.f1 sm.Kvserver.Metrics.p999_us;
             string_of_int (sm.Kvserver.Metrics.shed_small + sm.Kvserver.Metrics.shed_large);
             (if sm.Kvserver.Metrics.stable then "yes" else "NO");
           ])
         m.Kvcluster.Metrics.per_shard)
  in
  Report.table
    ~title:(Printf.sprintf "%s: per-shard (%s)" label r.Kvcluster.Run.design_name)
    ~headers:[ "shard"; "share"; "tput Mops"; "p50 us"; "p99 us"; "p99.9 us"; "shed"; "stable" ]
    rows;
  Report.note "cluster: tput %s Mops  p50 %s  p99 %s  p99.9 %s us  worst-shard p99 %s us"
    (Report.f2 m.Kvcluster.Metrics.throughput_mops)
    (Report.f1 m.Kvcluster.Metrics.p50_us)
    (Report.f1 m.Kvcluster.Metrics.p99_us)
    (Report.f1 m.Kvcluster.Metrics.p999_us)
    (Report.f1 m.Kvcluster.Metrics.worst_shard_p99_us);
  Report.note "loss accounting %s  imbalance (max/mean share) %s"
    (if Kvcluster.Metrics.telescopes m then "exact" else "BROKEN")
    (Report.f2 m.Kvcluster.Metrics.imbalance);
  match r.Kvcluster.Run.rebalance with
  | None -> ()
  | Some rb ->
      Report.note "rebalance: imbalance %s -> %s, moved %s of traffic"
        (Report.f2 rb.Kvcluster.Run.imbalance_before)
        (Report.f2 rb.Kvcluster.Run.imbalance_after)
        (Report.pct rb.Kvcluster.Run.moved_share)

let print t =
  Report.section
    (Printf.sprintf "Cluster: %d servers, %s routing, %s Mops offered, seed %d"
       t.servers t.main.Kvcluster.Run.policy_name
       (Report.f2 t.offered_mops) t.seed);
  shard_table "main" t.main;
  shard_table "baseline" t.baseline;
  let fanout_rows =
    List.map2
      (fun (a : Kvcluster.Fanout.point) (b : Kvcluster.Fanout.point) ->
        [
          string_of_int a.Kvcluster.Fanout.fanout;
          Report.f1 a.Kvcluster.Fanout.p50_us;
          Report.f1 a.Kvcluster.Fanout.p99_us;
          Report.f1 b.Kvcluster.Fanout.p50_us;
          Report.f1 b.Kvcluster.Fanout.p99_us;
          Report.f2 (b.Kvcluster.Fanout.p99_us /. a.Kvcluster.Fanout.p99_us);
        ])
      t.main.Kvcluster.Run.fanout t.baseline.Kvcluster.Run.fanout
  in
  Report.table
    ~title:
      (Printf.sprintf "Multi-GET completion vs fan-out (%s vs %s)"
         t.main.Kvcluster.Run.design_name t.baseline.Kvcluster.Run.design_name)
    ~headers:
      [ "fanout"; "main p50"; "main p99"; "base p50"; "base p99"; "base/main p99" ]
    fanout_rows

(* ------------------------------------------------------------------ *)
(* JSON *)

let fl x = if Float.is_nan x then "null" else Printf.sprintf "%.3f" x

let run_json b indent (r : Kvcluster.Run.t) =
  let m = r.Kvcluster.Run.metrics in
  let pad = String.make indent ' ' in
  Buffer.add_string b (Printf.sprintf "%s\"design\": \"%s\",\n" pad r.Kvcluster.Run.design_name);
  Buffer.add_string b (Printf.sprintf "%s\"policy\": \"%s\",\n" pad r.Kvcluster.Run.policy_name);
  Buffer.add_string b
    (Printf.sprintf
       "%s\"issued\": %d, \"served\": %d, \"net_dropped\": %d, \"rx_dropped\": \
        %d, \"shed_small\": %d, \"shed_large\": %d, \"in_flight_end\": %d,\n"
       pad m.Kvcluster.Metrics.issued m.Kvcluster.Metrics.served_total
       m.Kvcluster.Metrics.net_dropped m.Kvcluster.Metrics.rx_dropped
       m.Kvcluster.Metrics.shed_small m.Kvcluster.Metrics.shed_large
       m.Kvcluster.Metrics.in_flight_end);
  Buffer.add_string b
    (Printf.sprintf
       "%s\"throughput_mops\": %s, \"p50_us\": %s, \"p99_us\": %s, \
        \"p999_us\": %s, \"worst_shard_p99_us\": %s, \"imbalance\": %s, \
        \"stable\": %b, \"telescopes\": %b,\n"
       pad
       (fl m.Kvcluster.Metrics.throughput_mops)
       (fl m.Kvcluster.Metrics.p50_us)
       (fl m.Kvcluster.Metrics.p99_us)
       (fl m.Kvcluster.Metrics.p999_us)
       (fl m.Kvcluster.Metrics.worst_shard_p99_us)
       (fl m.Kvcluster.Metrics.imbalance)
       m.Kvcluster.Metrics.stable
       (Kvcluster.Metrics.telescopes m));
  (match r.Kvcluster.Run.rebalance with
  | None -> ()
  | Some rb ->
      Buffer.add_string b
        (Printf.sprintf
           "%s\"rebalance\": {\"imbalance_before\": %s, \"imbalance_after\": \
            %s, \"moved_share\": %s},\n"
           pad
           (fl rb.Kvcluster.Run.imbalance_before)
           (fl rb.Kvcluster.Run.imbalance_after)
           (fl rb.Kvcluster.Run.moved_share)));
  Buffer.add_string b (Printf.sprintf "%s\"per_shard\": [\n" pad);
  let n = Array.length m.Kvcluster.Metrics.per_shard in
  Array.iteri
    (fun s (sm : Kvserver.Metrics.t) ->
      Buffer.add_string b
        (Printf.sprintf
           "%s  {\"shard\": %d, \"share\": %s, \"throughput_mops\": %s, \
            \"p50_us\": %s, \"p99_us\": %s, \"p999_us\": %s, \"issued\": %d, \
            \"served\": %d, \"stable\": %b}%s\n"
           pad s
           (fl m.Kvcluster.Metrics.shard_share.(s))
           (fl sm.Kvserver.Metrics.throughput_mops)
           (fl sm.Kvserver.Metrics.p50_us)
           (fl sm.Kvserver.Metrics.p99_us)
           (fl sm.Kvserver.Metrics.p999_us)
           sm.Kvserver.Metrics.issued sm.Kvserver.Metrics.served_total
           sm.Kvserver.Metrics.stable
           (if s = n - 1 then "" else ",")))
    m.Kvcluster.Metrics.per_shard;
  Buffer.add_string b (Printf.sprintf "%s],\n" pad);
  Buffer.add_string b (Printf.sprintf "%s\"fanout\": [\n" pad);
  let nf = List.length r.Kvcluster.Run.fanout in
  List.iteri
    (fun i (p : Kvcluster.Fanout.point) ->
      Buffer.add_string b
        (Printf.sprintf
           "%s  {\"fanout\": %d, \"p50_us\": %s, \"p99_us\": %s, \"mean_us\": \
            %s}%s\n"
           pad p.Kvcluster.Fanout.fanout
           (fl p.Kvcluster.Fanout.p50_us)
           (fl p.Kvcluster.Fanout.p99_us)
           (fl p.Kvcluster.Fanout.mean_us)
           (if i = nf - 1 then "" else ",")))
    r.Kvcluster.Run.fanout;
  Buffer.add_string b (Printf.sprintf "%s]\n" pad)

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"servers\": %d,\n  \"offered_mops\": %s,\n  \"seed\": %d,\n"
       t.servers (fl t.offered_mops) t.seed);
  Buffer.add_string b "  \"main\": {\n";
  run_json b 4 t.main;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"baseline\": {\n";
  run_json b 4 t.baseline;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b
