(* Analysis roots come from two places: [[@hot]] attributes picked up by
   the scanner, and a roots file with lines

     hot  <qualified-function>     # allocation-proof root
     sink <module-prefix>          # determinism sink: every function under it

   '#' starts a comment; blank lines are skipped.  A [hot] line that
   names no known function, or a [sink] prefix matching no function, is
   an error — the roots file must not rot. *)

type t = {
  hot_roots : Ir.func list;
  sink_roots : Ir.func list;
  errors : string list;
}

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | [ "hot"; fn ] -> Ok (Some (`Hot fn))
  | [ "sink"; prefix ] -> Ok (Some (`Sink prefix))
  | _ -> Error (Printf.sprintf "malformed roots line: %S" (String.trim line))

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let load (prog : Ir.program) path =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let hot = ref [] in
  let sinks = ref [] in
  (if Sys.file_exists path then
     List.iter
       (fun line ->
         match parse_line line with
         | Ok None -> ()
         | Ok (Some (`Hot fn)) -> (
             match Hashtbl.find_opt prog.Ir.funcs fn with
             | Some f -> hot := f :: !hot
             | None -> err "roots: no function named %s (stale 'hot' line)" fn)
         | Ok (Some (`Sink prefix)) ->
             let matched =
               Hashtbl.fold
                 (fun name f acc ->
                   if name = prefix || has_prefix ~prefix:(prefix ^ ".") name
                   then f :: acc
                   else acc)
                 prog.Ir.funcs []
             in
             if matched = [] then
               err "roots: 'sink %s' matches no function (stale line)" prefix
             else sinks := matched @ !sinks
         | Error e -> err "roots: %s" e)
       (read_lines path)
   else err "roots: file %s not found" path);
  (* Attribute roots, added after file roots so file order is stable. *)
  let attr_hot =
    Hashtbl.fold
      (fun _ f acc -> if f.Ir.hot then f :: acc else acc)
      prog.Ir.funcs []
    |> List.sort (fun a b -> String.compare a.Ir.fname b.Ir.fname)
  in
  let dedup fs =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun f ->
        if Hashtbl.mem seen f.Ir.fname then false
        else (
          Hashtbl.add seen f.Ir.fname ();
          true))
      fs
  in
  {
    hot_roots = dedup (List.rev !hot @ attr_hot);
    sink_roots =
      dedup
        (List.sort (fun a b -> String.compare a.Ir.fname b.Ir.fname)
           !sinks);
    errors = List.rev !errors;
  }
