(* Whole-program call-graph resolution and rooted traversal.

   Nodes are (function, substitution) pairs: a functor body is analyzed
   once by {!Scan} with symbolic [Functor_param] calls, and each
   instantiation path through an [Ir.Apply] alias re-enters it with the
   actual argument substituted — so [Ring.Make(Traced_atomic).try_push]
   and the hand-specialized default are distinct nodes with distinct
   verdicts.

   Resolution is name-based over the alias/def tables, innermost scope
   first.  Anything that cannot be resolved — higher-order heads,
   un-instantiated functor parameters, members no packed module provides
   — yields a conservative "unknown-callee" finding rather than a silent
   pass. *)

(* Parameter substitution: functor param -> (argument module, scopes the
   argument name is relative to). *)
type subst = (string * (string * string list)) list

type resolved =
  | Found of Ir.func * subst
  | Extern of Tables.extern_class * string  (** stdlib/primitive verdict *)
  | Unresolved of string  (** best-normalized name, for the message *)

let take n l =
  let rec go n acc = function
    | x :: tl when n > 0 -> go (n - 1) (x :: acc) tl
    | _ -> List.rev acc
  in
  go n [] l

let drop n l =
  let rec go n = function _ :: tl when n > 0 -> go (n - 1) tl | l -> l in
  go n l

(* Does [name] look like a module path the program knows anything about?
   Used to re-qualify scope-relative alias targets. *)
let known_prefixes (prog : Ir.program) =
  let t = Hashtbl.create 1024 in
  let add_prefixes name =
    let parts = String.split_on_char '.' name in
    let n = List.length parts in
    for k = 1 to n - 1 do
      Hashtbl.replace t (String.concat "." (take k parts)) ()
    done
  in
  Hashtbl.iter (fun k _ -> add_prefixes (k ^ ".x")) prog.aliases;
  Hashtbl.iter (fun k _ -> add_prefixes k) prog.funcs;
  Hashtbl.iter (fun k _ -> add_prefixes (k ^ ".x")) prog.packed;
  t

type t = {
  prog : Ir.program;
  known : (string, unit) Hashtbl.t;
}

let create prog = { prog; known = known_prefixes prog }

(* Qualify a possibly-scope-relative name: pick the first scope under
   which its head module is known to the program. *)
let qualify g ~scopes name =
  let head =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let rec go = function
    | [] -> name
    | s :: tl ->
        if Hashtbl.mem g.known (s ^ "." ^ head) then s ^ "." ^ name else go tl
  in
  if Hashtbl.mem g.known head then name else go scopes

type norm =
  | NName of string
  | NApply of {
      functor_path : string;
      ascopes : string list;
      args : string list;
      rest : string list;  (** path components after the instantiation *)
    }

(* Rewrite [name] through [Plain] aliases to a fixpoint; stop at the
   first [Apply] alias (the caller expands the functor body). *)
let normalize g name =
  let rec go fuel name =
    if fuel = 0 then NName name
    else
      let parts = String.split_on_char '.' name in
      let n = List.length parts in
      let rec try_len k =
        if k = 0 then NName name
        else
          let prefix = String.concat "." (take k parts) in
          match Hashtbl.find_opt g.prog.aliases prefix with
          | Some (Ir.Plain target, ascopes) ->
              let target = qualify g ~scopes:ascopes target in
              go (fuel - 1)
                (String.concat "." (target :: drop k parts))
          | Some (Ir.Apply { functor_path; args }, ascopes) ->
              NApply { functor_path; ascopes; args; rest = drop k parts }
          | None -> try_len (k - 1)
      in
      try_len (n - 1)
  in
  go 10 name

(* Normalize a module name all the way to a canonical [Plain] name (for
   functor arguments); an argument that is itself an instantiated
   functor keeps its alias key so later member lookups expand it. *)
let normalize_module g ~scopes name =
  match normalize g (qualify g ~scopes name) with
  | NName n -> n
  | NApply _ -> qualify g ~scopes name

let functor_params_of g fpath = Hashtbl.find_opt g.prog.functor_params fpath

(* Resolve a dotted value name, trying [scopes] innermost-first, then
   the raw name; expand at most one functor instantiation per lookup
   (nested instantiations resolve through the kept alias keys). *)
let rec resolve_direct g ~scopes ~(subst : subst) name : resolved =
  let candidates = List.map (fun s -> s ^ "." ^ name) scopes @ [ name ] in
  let rec try_cands best = function
    | [] -> (
        (* No project definition: maybe it is a stdlib name. *)
        let stripped = Tables.strip_stdlib name in
        if Tables.is_stdlib_name name then
          Extern (Tables.classify_stdlib stripped, stripped)
        else Unresolved (match best with Some b -> b | None -> name))
    | cand :: tl -> (
        match normalize g cand with
        | NName n -> (
            match Hashtbl.find_opt g.prog.funcs n with
            | Some f -> Found (f, [])
            | None -> try_cands (if best = None then Some n else best) tl)
        | NApply { functor_path; ascopes; args; rest } -> (
            match expand_apply g ~ascopes ~subst ~functor_path ~args ~rest with
            | Some r -> r
            | None -> try_cands best tl))
  in
  try_cands None candidates

and expand_apply g ~ascopes ~subst ~functor_path ~args ~rest =
  let fpath =
    match normalize g (qualify g ~scopes:ascopes functor_path) with
    | NName n -> n
    | NApply _ -> qualify g ~scopes:ascopes functor_path
  in
  let fn = String.concat "." (fpath :: rest) in
  match Hashtbl.find_opt g.prog.funcs fn with
  | None -> None
  | Some f ->
      let params =
        match functor_params_of g fpath with Some ps -> ps | None -> []
      in
      let arg_binding a =
        (* An argument that names a parameter of the *enclosing* functor
           resolves through the current node's substitution. *)
        match List.assoc_opt a subst with
        | Some binding -> binding
        | None -> (normalize_module g ~scopes:ascopes a, ascopes)
      in
      let rec zip ps args =
        match (ps, args) with
        | p :: ps, a :: args -> (p, arg_binding a) :: zip ps args
        | _ -> []
      in
      Some (Found (f, zip params args))

(* ------------------------------------------------------------------ *)
(* Traversal *)

type node_state = {
  nkey : string;
  nfunc : Ir.func;
  nsubst : subst;
  parent : (string * Ir.site) option;  (** parent node key + call site *)
}

let subst_key subst =
  String.concat ","
    (List.map (fun (p, (a, _)) -> p ^ "=" ^ a) subst)

let node_key fname subst =
  match subst with [] -> fname | _ -> fname ^ "[" ^ subst_key subst ^ "]"

type pass = Alloc_pass | Taint_pass

type stats = { mutable visited : int; mutable edges : int }

(* Walk the graph from [roots]; [emit] receives each finding with its
   full root-to-site witness. *)
let traverse g ~pass ~roots ~emit =
  let states : (string, node_state) Hashtbl.t = Hashtbl.create 512 in
  let stats = { visited = 0; edges = 0 } in
  let queue = Queue.create () in
  let push ~parent f subst =
    let key = node_key f.Ir.fname subst in
    if not (Hashtbl.mem states key) then begin
      let st = { nkey = key; nfunc = f; nsubst = subst; parent } in
      Hashtbl.add states key st;
      Queue.add st queue
    end
  in
  List.iter (fun f -> push ~parent:None f []) roots;
  let rec witness key acc =
    match Hashtbl.find_opt states key with
    | None -> acc
    | Some st -> (
        match st.parent with
        | None -> (st.nfunc.Ir.fname, st.nfunc.Ir.fsite) :: acc
        | Some (pkey, via) -> witness pkey ((st.nfunc.Ir.fname, via) :: acc))
  in
  let root_of key =
    match witness key [] with (r, _) :: _ -> r | [] -> "?"
  in
  let emit_at st ~category ~ident ~message ~fsite_ =
    emit
      {
        Ir.category;
        ident;
        message;
        fsite_;
        root = root_of st.nkey;
        witness = witness st.nkey [];
      }
  in
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    let f = st.nfunc in
    stats.visited <- stats.visited + 1;
    (* Local findings. *)
    (match pass with
    | Alloc_pass ->
        List.iter
          (fun (a : Ir.alloc) ->
            emit_at st
              ~category:(Ir.alloc_category a.akind)
              ~ident:a.aident
              ~message:
                (match a.akind with
                | Ir.C_stub ->
                    "C stub the analyzer has no verdict for (may allocate)"
                | Ir.Closure -> "closure allocated per enclosing call"
                | Ir.Partial_apply -> "partial application builds a closure"
                | _ -> "allocates on the hot path")
              ~fsite_:a.asite)
          f.Ir.allocs
    | Taint_pass ->
        List.iter
          (fun (t : Ir.taint) ->
            emit_at st ~category:"taint" ~ident:t.source
              ~message:
                (Printf.sprintf
                   "nondeterminism source %s flows into a deterministic sink"
                   t.source)
              ~fsite_:t.tsite)
          f.Ir.taints);
    (* Edges. *)
    let unknown_category =
      match pass with
      | Alloc_pass -> "unknown-callee"
      | Taint_pass -> "taint-unknown-callee"
    in
    (* Partial application: decided here, where the callee's definition
       arity is known (see Ir.call).  Escape edges never flag — a bare
       reference to a top-level function is a static closure. *)
    let partial_check ~via ~escape (c : Ir.call) ~arity ~label =
      if
        pass = Alloc_pass && (not escape) && c.Ir.ret_arrow
        && c.Ir.supplied < arity
      then
        emit_at st ~category:(Ir.alloc_category Ir.Partial_apply) ~ident:label
          ~message:"partial application builds a closure" ~fsite_:via
    in
    let follow ~via ~(call : Ir.call) (r : resolved) ~escape ~label =
      match r with
      | Found (callee, subst) ->
          partial_check ~via ~escape call ~arity:callee.Ir.arity ~label;
          if not (callee.Ir.diverging || callee.Ir.cold) then begin
            stats.edges <- stats.edges + 1;
            push ~parent:(Some (st.nkey, via)) callee subst
          end
      | Extern (cls, name) -> (
          (* No definition arity for stdlib functions: an arrow-typed
             result is treated as a partial application (the rare
             function-returning stdlib call can be allowlisted). *)
          (match cls with
          | Tables.Terminal -> ()
          | _ -> partial_check ~via ~escape call ~arity:max_int ~label:name);
          match (pass, cls) with
          | Alloc_pass, Tables.Alloc k ->
              emit_at st ~category:(Ir.alloc_category k) ~ident:name
                ~message:"allocating stdlib call on the hot path" ~fsite_:via
          | Alloc_pass, Tables.Unknown when not escape ->
              emit_at st ~category:unknown_category ~ident:name
                ~message:"stdlib call with no allocation verdict" ~fsite_:via
          | _ -> ())
      | Unresolved n ->
          if not escape then
            emit_at st ~category:unknown_category ~ident:label
              ~message:
                (Printf.sprintf "cannot resolve callee '%s' statically" n)
              ~fsite_:via
    in
    List.iter
      (fun (c : Ir.call) ->
        let via = c.Ir.csite in
        match c.Ir.callee with
        | Ir.Direct { path; escape } ->
            follow ~via ~call:c
              (resolve_direct g ~scopes:f.Ir.scopes ~subst:st.nsubst path)
              ~escape ~label:path
        | Ir.Functor_param { param; member } -> (
            match List.assoc_opt param st.nsubst with
            | Some (arg, ascopes) ->
                follow ~via ~call:c
                  (resolve_direct g ~scopes:ascopes ~subst:st.nsubst
                     (arg ^ "." ^ member))
                  ~escape:false
                  ~label:(param ^ "." ^ member)
            | None ->
                emit_at st ~category:unknown_category
                  ~ident:(param ^ "." ^ member)
                  ~message:
                    "call through an un-instantiated functor parameter"
                  ~fsite_:via)
        | Ir.First_class { member } -> (
            (* Conservative: every module the program ever packs that
               provides [member] is a candidate callee. *)
            let cands =
              Hashtbl.fold
                (fun p () acc ->
                  match
                    resolve_direct g ~scopes:[] ~subst:[] (p ^ "." ^ member)
                  with
                  | Found (f, s) -> (f, s) :: acc
                  | _ -> acc)
                g.prog.packed []
            in
            match cands with
            | [] ->
                emit_at st ~category:unknown_category ~ident:member
                  ~message:
                    (Printf.sprintf
                       "first-class module call '.%s': no packed module \
                        provides it"
                       member)
                  ~fsite_:via
            | _ ->
                List.iter
                  (fun (callee, subst) ->
                    partial_check ~via ~escape:false c
                      ~arity:callee.Ir.arity ~label:member;
                    if not (callee.Ir.diverging || callee.Ir.cold) then begin
                      stats.edges <- stats.edges + 1;
                      push ~parent:(Some (st.nkey, via)) callee subst
                    end)
                  cands)
        | Ir.Higher_order { label } ->
            (* Taint pass: calls through a plain local/parameter binding
               are not reported — the closure's body was scanned inline
               where it was built, and named functions passed as
               arguments create escape edges, so the passing site (in
               the cone if reachable) already covers them.  Field and
               expression dispatch stays a finding in both passes. *)
            let param_call =
              label <> "" && label.[0] <> '.' && label.[0] <> '<'
            in
            if not (pass = Taint_pass && param_call) then
              emit_at st ~category:unknown_category ~ident:label
                ~message:"higher-order call site; callee statically unknown"
                ~fsite_:via)
      f.Ir.calls
  done;
  stats
