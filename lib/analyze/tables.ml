(* Classification tables for calls that leave the project: OCaml
   primitives and stdlib functions we cannot (and do not want to)
   analyze from .cmt files.  Kept deliberately explicit — an unknown
   name yields a conservative [Unknown] verdict, never a silent pass. *)

let strip_stdlib name =
  match String.index_opt name '.' with
  | Some i when String.sub name 0 i = "Stdlib" ->
      String.sub name (i + 1) (String.length name - i - 1)
  | _ -> name

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Allocation classification for external (out-of-project) calls. *)

type extern_class =
  | Safe  (** provably allocation-free for our purposes *)
  | Alloc of Ir.alloc_kind  (** definitely allocates *)
  | Terminal  (** diverges (raise helpers): cold path, not traversed *)
  | Unknown  (** no verdict: conservative unknown-callee finding *)

(* Structural comparison stubs: C calls, but they allocate nothing. *)
let compare_stubs =
  [
    "caml_equal"; "caml_notequal"; "caml_lessthan"; "caml_lessequal";
    "caml_greaterthan"; "caml_greaterequal"; "caml_compare";
    "caml_int_compare"; "caml_float_compare"; "caml_string_compare";
    "caml_bytes_compare"; "caml_string_equal"; "caml_bytes_equal";
    "caml_string_notequal"; "caml_int64_compare"; "caml_int32_compare";
    "caml_nativeint_compare";
  ]

(* C stubs that never allocate on the OCaml heap (beyond possible
   exceptions, which the Terminal handling of their callers covers). *)
let noalloc_stubs =
  [
    "caml_array_blit"; "caml_array_fill"; "caml_floatarray_blit";
    "caml_bytes_blit"; "caml_bytes_blit_string"; "caml_blit_string";
    "caml_blit_bytes"; "caml_fill_bytes"; "caml_string_get";
    "caml_bytes_get"; "caml_bytes_set"; "caml_ml_flush";
    "caml_ml_output"; "caml_ml_output_char"; "caml_ml_output_bytes";
    "caml_sys_exit";
  ]

(* C stubs that allocate an OCaml block on every call. *)
let alloc_stubs =
  [
    "caml_make_vect"; "caml_floatarray_create"; "caml_make_float_vect";
    "caml_array_sub"; "caml_array_append"; "caml_array_concat";
    "caml_create_bytes"; "caml_string_of_bytes"; "caml_bytes_of_string";
    "caml_string_concat"; "caml_format_int"; "caml_format_float";
    "caml_float_of_string"; "caml_int_of_string"; "caml_obj_dup";
    "caml_obj_block"; "caml_input_line"; "caml_gc_stat";
    "caml_gc_quick_stat";
  ]

(* Verdict for an OCaml [external], from its primitive description.
   Compiler-intrinsic [%] primitives compile to inline code and do not
   allocate — except the explicitly-listed block builders.  Float
   results of [%]-primitives may box depending on context; that is
   beyond a Typedtree-level analysis and stays the Gc-counter bench
   gate's job (see DESIGN.md §13 soundness caveats). *)
let classify_prim (p : Primitive.description) : extern_class =
  let n = p.prim_name in
  if n = "" then Unknown
  else if n.[0] = '%' then begin
    match n with
    | "%makemutable" -> Alloc Ir.Ref_cell
    | "%lazy_force" | "%obj_dup" -> Unknown
    | "%raise" | "%reraise" | "%raise_notrace" ->
        (* The raise itself is fine; any allocating payload is visible
           as a separate Texp_construct at the call site. *)
        Safe
    | _ -> Safe
  end
  else if List.mem n compare_stubs then Safe
  else if List.mem n noalloc_stubs then Safe
  else if List.mem n alloc_stubs then Alloc Ir.Stdlib_alloc
  else if not p.prim_alloc then Safe
  else Unknown

(* Non-external stdlib functions, by [Stdlib.]-stripped dotted name.
   [Terminal] names diverge by contract. *)
let stdlib_terminal =
  [ "invalid_arg"; "failwith"; "exit"; "assert_failure" ]

let stdlib_safe =
  [
    (* comparisons / arithmetic helpers (specialized or allocation-free) *)
    "min"; "max"; "abs"; "compare"; "not"; "ignore";
    "Int.min"; "Int.max"; "Int.abs"; "Int.compare"; "Int.equal";
    "Float.max"; "Float.min"; "Float.compare"; "Float.equal";
    "Float.is_nan"; "Float.is_integer"; "Float.abs";
    "Char.equal"; "Char.compare"; "Bool.not";
    "String.length"; "String.equal"; "String.compare"; "Bytes.length";
    "Array.length"; "Float.Array.length";
    "Float.is_finite"; "Float.of_int"; "Float.to_int";
    (* blits/fills: bounds-checked wrappers over noalloc C stubs *)
    "Array.blit"; "Array.fill"; "Bytes.blit"; "Bytes.blit_string";
    "Bytes.fill"; "String.blit"; "Bytes.unsafe_blit";
    (* Atomic: every operation is a [%atomic_*] intrinsic or a
       non-allocating wrapper around one *)
    "Atomic.get"; "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
    "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr";
    (* misc non-allocating *)
    "Hashtbl.length"; "Queue.length"; "Queue.is_empty";
    "Option.is_none"; "Option.is_some"; "Fun.id";
  ]

let stdlib_alloc =
  [
    "ref"; "^"; "@";
    "string_of_int"; "string_of_float"; "string_of_bool"; "float_of_string";
    "int_of_string"; "string_of_format";
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.concat";
    "Array.sub"; "Array.of_list"; "Array.to_list"; "Array.map"; "Array.mapi";
    "Array.map2"; "Array.to_seq"; "Array.split"; "Array.combine";
    "List.map"; "List.mapi"; "List.rev"; "List.rev_map"; "List.append";
    "List.concat"; "List.concat_map"; "List.filter"; "List.filteri";
    "List.filter_map"; "List.init"; "List.sort"; "List.stable_sort";
    "List.fast_sort"; "List.split"; "List.combine"; "List.of_seq";
    "List.to_seq"; "List.cons"; "List.partition";
    "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.cat"; "String.map"; "String.mapi"; "String.split_on_char";
    "String.lowercase_ascii"; "String.uppercase_ascii"; "String.trim";
    "String.escaped"; "String.of_seq"; "String.to_seq";
    "Bytes.create"; "Bytes.make"; "Bytes.init"; "Bytes.copy"; "Bytes.sub";
    "Bytes.cat"; "Bytes.of_string"; "Bytes.to_string"; "Bytes.extend";
    "Buffer.create"; "Buffer.contents"; "Buffer.to_bytes"; "Buffer.add_string";
    "Buffer.add_char"; "Buffer.add_substring"; "Buffer.add_buffer";
    "Hashtbl.create"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.copy";
    "Hashtbl.fold"; "Hashtbl.to_seq";
    "Option.some"; "Option.map"; "Option.bind"; "Option.to_list";
    "Result.ok"; "Result.error"; "Result.map"; "Result.bind";
    "Queue.create"; "Queue.push"; "Queue.add"; "Stack.create"; "Stack.push";
    "Seq.map"; "Seq.filter"; "Seq.cons"; "Seq.of_list";
    "Printf.sprintf"; "Printf.printf"; "Printf.eprintf"; "Printf.ksprintf";
    "Printf.fprintf"; "Printf.kfprintf"; "Printf.ifprintf";
    "Format.sprintf"; "Format.printf"; "Format.eprintf"; "Format.fprintf";
    "Format.asprintf"; "Format.kasprintf"; "Format.ksprintf";
    "Format.pp_print_string"; "Format.pp_print_int"; "Format.pp_print_float";
    "Format.pp_print_list"; "Format.pp_print_char"; "Format.pp_print_space";
    "Format.pp_print_cut"; "Format.pp_print_newline";
    "Gc.minor_words"; "Gc.stat"; "Gc.quick_stat"; "Gc.counters";
    "Marshal.to_string"; "Marshal.to_bytes";
  ]

(* Whole modules whose (pure, deterministic, non-project) functions we
   accept without a verdict table — used by the classification fallback
   to distinguish "stdlib function we have no entry for" (Unknown for
   the allocation pass) from "project path that failed to resolve". *)
let stdlib_modules =
  [
    "Array"; "List"; "String"; "Bytes"; "Buffer"; "Char"; "Int"; "Float";
    "Bool"; "Option"; "Result"; "Seq"; "Map"; "Set"; "Hashtbl"; "Queue";
    "Stack"; "Printf"; "Format"; "Scanf"; "Fun"; "Either"; "Lazy";
    "Atomic"; "Gc"; "Sys"; "Filename"; "In_channel"; "Out_channel";
    "Printexc"; "Marshal"; "Random"; "Domain"; "Unix"; "Obj"; "Arg";
    "Lexing"; "Parsing"; "Stdlib"; "Complex"; "Uchar"; "Weak"; "Ephemeron";
    "Int32"; "Int64"; "Nativeint"; "Condition"; "Mutex"; "Thread";
    "Semaphore"; "Bigarray"; "Str";
  ]

let module_head name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let is_stdlib_name name =
  let name = strip_stdlib name in
  List.mem (module_head name) stdlib_modules
  (* operators and bare Stdlib values: [^], [@], [ref], [incr], ... *)
  || not (String.contains name '.')

(* Verdict for a non-external call that did not resolve to a project
   definition.  Callers pass the [Stdlib.]-stripped dotted name. *)
let classify_stdlib name : extern_class =
  if List.mem name stdlib_terminal then Terminal
  else if List.mem name stdlib_safe then Safe
  else if List.mem name stdlib_alloc then Alloc Ir.Stdlib_alloc
  else Unknown

(* ------------------------------------------------------------------ *)
(* Determinism-taint sources.  Matching is on the stripped dotted name;
   [Random.State.*] is deliberately absent (seeded streams are the
   sanctioned source of randomness), while global [Random.*] and
   [Random.State.make_self_init] are sources. *)

let taint_sources =
  [
    ("Unix.gettimeofday", "wall clock");
    ("Unix.time", "wall clock");
    ("Unix.times", "process CPU clock");
    ("Unix.clock_gettime", "system clock");
    ("Unix.getpid", "process id");
    ("Unix.getenv", "environment read");
    ("Unix.environment", "environment read");
    ("Sys.time", "process CPU clock");
    ("Sys.getenv", "environment read");
    ("Sys.getenv_opt", "environment read");
    ("Random.State.make_self_init", "self-seeded RNG");
    ("Domain.self", "domain identity");
    ("Hashtbl.hash", "polymorphic hash (unstable on cycles/floats)");
    ("Hashtbl.seeded_hash", "polymorphic hash (unstable on cycles/floats)");
    ("Gc.minor_words", "GC counter");
    ("Gc.stat", "GC counter");
    ("Gc.quick_stat", "GC counter");
    ("Gc.counters", "GC counter");
  ]

let taint_source name =
  let name = strip_stdlib name in
  match List.assoc_opt name taint_sources with
  | Some why -> Some why
  | None ->
      (* All of global [Random] except the explicitly-threaded state API. *)
      if
        has_prefix ~prefix:"Random." name
        && not (has_prefix ~prefix:"Random.State." name)
      then Some "global Random state"
      else None
