(* Human-readable findings report with full call-path witnesses. *)

let pp_witness ppf (w : (string * Ir.site) list) =
  List.iteri
    (fun i (fn, site) ->
      if i = 0 then Format.fprintf ppf "    %s (root, %a)@," fn Ir.pp_site site
      else Format.fprintf ppf "    -> %s (called at %a)@," fn Ir.pp_site site)
    w

let pp_finding ppf (f : Ir.finding) =
  Format.fprintf ppf "@[<v>%a: [%s] %s: %s@,  root: %s@,  path:@,%a@]"
    Ir.pp_site f.Ir.fsite_ f.Ir.category f.Ir.ident f.Ir.message f.Ir.root
    pp_witness f.Ir.witness

let print_findings ~header findings =
  if findings <> [] then begin
    Format.printf "== %s (%d) ==@." header (List.length findings);
    List.iter (fun f -> Format.printf "%a@." pp_finding f) findings
  end

(* Stable ordering so output is diffable run to run. *)
let sort findings =
  List.sort
    (fun (a : Ir.finding) (b : Ir.finding) ->
      match compare a.fsite_.file b.fsite_.file with
      | 0 -> (
          match compare a.fsite_.line b.fsite_.line with
          | 0 -> compare (a.category, a.ident) (b.category, b.ident)
          | c -> c)
      | c -> c)
    findings

(* Dedup: the same site can be reached from several roots; keep the
   first (shortest-witness-first) occurrence per (category, ident,
   site). *)
let dedup findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (f : Ir.finding) ->
      let k = (f.category, f.ident, f.fsite_) in
      if Hashtbl.mem seen k then false
      else (
        Hashtbl.add seen k ();
        true))
    (List.sort
       (fun (a : Ir.finding) b ->
         compare (List.length a.witness) (List.length b.witness))
       findings)
