(* Reviewed exceptions for analyzer findings, same contract as
   lint_allow.txt: every entry must match at least one live finding or
   the build fails (stale entries rot into blanket waivers).

   Line format:

     <containing-function> <category>[:<ident>]   # justification

   where <containing-function> is the function the finding site lives
   in (the last element of the witness path) and <category> is the
   finding category, optionally pinned to the ident detail.  Example:

     Dsim__Sim.dispatch_head unknown-callee   # handler-table dispatch *)

type entry = { key : string; line : int; mutable used : bool }

type t = { entries : entry list; errors : string list }

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | [ fn; key ] -> Ok (Some { key = fn ^ " " ^ key; line = lineno; used = false })
  | _ -> Error (Printf.sprintf "line %d: expected '<function> <category[:ident]>'" lineno)

let load path =
  if not (Sys.file_exists path) then { entries = []; errors = [] }
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] and errors = ref [] in
        let lineno = ref 0 in
        (try
           while true do
             incr lineno;
             let line = input_line ic in
             match parse_line !lineno line with
             | Ok None -> ()
             | Ok (Some e) -> entries := e :: !entries
             | Error e -> errors := e :: !errors
           done
         with End_of_file -> ());
        { entries = List.rev !entries; errors = List.rev !errors })
  end

(* The function a finding is attributed to: last hop of the witness
   path (falls back to the root for witness-less findings). *)
let containing_function (f : Ir.finding) =
  match List.rev f.Ir.witness with (fn, _) :: _ -> fn | [] -> f.Ir.root

(* Returns [true] (and marks the entry used) if the finding is covered. *)
let covers t (f : Ir.finding) =
  let cf = containing_function f in
  let keys = List.map (fun k -> cf ^ " " ^ k) (Ir.allow_keys f) in
  match List.find_opt (fun e -> List.mem e.key keys) t.entries with
  | Some e ->
      e.used <- true;
      true
  | None -> false

let stale t =
  List.filter_map
    (fun e ->
      if e.used then None
      else
        Some
          (Printf.sprintf "stale allowlist entry (line %d): %s" e.line e.key))
    t.entries
