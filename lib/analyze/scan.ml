(* Typedtree scanner: turns each compilation unit's .cmt into {!Ir.func}
   summaries plus the program-wide module facts (aliases, functor
   parameters, packed modules) that {!Graph} resolves calls against.

   Scanning happens once per unit, context-free: a functor body is
   summarized a single time with symbolic [Functor_param] calls, and the
   traversal later substitutes the actual argument per instantiation. *)

open Typedtree

module SMap = Map.Make (String)

type local_kind = Lval | Lfun

type env = {
  locals : local_kind SMap.t;  (** value binders in scope (params, lets) *)
  unpacked : unit SMap.t;  (** local modules bound by [let (module D) = ...] *)
  lmods : Ir.alias SMap.t;  (** expression-local module aliases *)
}

let env0 = { locals = SMap.empty; unpacked = SMap.empty; lmods = SMap.empty }

type ctx = {
  prog : Ir.program;
  file : string;
  mutable gensym : int;  (** for per-site synthetic alias/pack names *)
}

type acc = {
  mutable allocs : Ir.alloc list;
  mutable calls : Ir.call list;
  mutable taints : Ir.taint list;
}

let fresh_acc () = { allocs = []; calls = []; taints = [] }

let site ctx (e : expression) = Ir.site_of_loc ~file:ctx.file e.exp_loc

(* ------------------------------------------------------------------ *)
(* Small helpers *)

let suffix_after_head name =
  match String.index_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let add_binders ?(kind = Lval) env ids =
  {
    env with
    locals =
      List.fold_left
        (fun m id -> SMap.add (Ident.name id) kind m)
        env.locals ids;
  }

(* [(module M)] / [(module M : S)] in binding position: a [Tpat_var]
   carrying a [Tpat_unpack] extra.  Such binders join [env.unpacked]
   (first-class dispatch), not [env.locals]. *)
let unpack_ident : type k. k general_pattern -> Ident.t option =
 fun p ->
  if
    List.exists
      (fun (ex, _, _) -> match ex with Tpat_unpack -> true | _ -> false)
      p.pat_extra
  then
    match p.pat_desc with Tpat_var (id, _) -> Some id | _ -> None
  else None

let bind_pat : type k. env -> k general_pattern -> env =
 fun env p ->
  match unpack_ident p with
  | Some id -> { env with unpacked = SMap.add (Ident.name id) () env.unpacked }
  | None -> add_binders env (pat_bound_idents p)

let rec unwrap_mod (me : module_expr) =
  match me.mod_desc with
  | Tmod_constraint (me, _, _, _) -> unwrap_mod me
  | _ -> me

let mod_ident_name me =
  match (unwrap_mod me).mod_desc with
  | Tmod_ident (p, _) -> Some (Path.name p)
  | _ -> None

(* F(X)(Y) -> Some ("F", ["X"; "Y"]); arguments that are not simple
   module paths become ["?"], which resolution treats as unknown. *)
let rec decompose_apply me args =
  match (unwrap_mod me).mod_desc with
  | Tmod_apply (f, a, _) ->
      let a_name = match mod_ident_name a with Some s -> s | None -> "?" in
      decompose_apply f (a_name :: args)
  | Tmod_apply_unit f -> decompose_apply f args
  | Tmod_ident (p, _) -> Some (Path.name p, args)
  | _ -> None

(* Return type reached after consuming every arrow. *)
let rec arrow_split ty args =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, b, _) -> arrow_split b (a :: args)
  | Types.Tpoly (t, _) -> arrow_split t args
  | _ -> (List.rev args, ty)

let is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> (
      match Types.get_desc t with Types.Tarrow _ -> true | _ -> false)
  | _ -> false

let var_ids ty =
  let seen = Hashtbl.create 16 in
  let out = Hashtbl.create 16 in
  let rec go ty =
    let id = Types.get_id ty in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      (match Types.get_desc ty with
      | Types.Tvar _ -> Hashtbl.replace out id ()
      | _ -> ());
      Btype.iter_type_expr go ty
    end
  in
  go ty;
  out

(* A function whose return type is a type variable that appears in none
   of its argument types can only exit by raising: a cold error helper
   ([reject_past], [invalid_arg] wrappers).  The allocation pass skips
   such bodies — allocation on a raise path does not affect the
   steady-state hot path. *)
let diverging ty =
  let args, ret = arrow_split ty [] in
  args <> []
  &&
  match Types.get_desc ret with
  | Types.Tvar _ ->
      let id = Types.get_id ret in
      not (List.exists (fun a -> Hashtbl.mem (var_ids a) id) args)
  | _ -> false

(* Structured constants ([Some 3], [(1, 2)]) are statically allocated by
   the compiler and cost nothing at run time. *)
let rec static_const (e : expression) =
  match e.exp_desc with
  | Texp_constant _ -> true
  | Texp_construct (_, _, args) -> List.for_all static_const args
  | Texp_tuple es -> List.for_all static_const es
  | Texp_variant (_, eo) -> (
      match eo with None -> true | Some e -> static_const e)
  | _ -> false

(* Syntactic parameter count of a definition; multi-branch [function]
   bodies take the minimum over branches so a full application is never
   mistaken for a partial one. *)
let rec spine_arity (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = []; _ } -> 1
  | Texp_function { cases; _ } ->
      1 + List.fold_left (fun m c -> min m (spine_arity c.c_rhs)) max_int cases
  | _ -> 0

let hot_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with "hot" | "analyze.hot" -> true | _ -> false)
    attrs

let cold_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with "cold" | "analyze.cold" -> true | _ -> false)
    attrs

(* ------------------------------------------------------------------ *)
(* Expression walk *)

let add_alloc acc akind aident asite =
  acc.allocs <- { Ir.akind; aident; asite } :: acc.allocs

let add_call ?(supplied = 0) ?(ret_arrow = false) acc callee csite =
  acc.calls <- { Ir.callee; csite; supplied; ret_arrow } :: acc.calls

(* ------------------------------------------------------------------ *)
(* Simplif ref-elimination model.

   [let r = ref e in body] where every use of [r] in [body] is a direct
   [!r], [r := v], [incr r] or [decr r] — and none sits under a nested
   [fun] (a closure captures the cell for real) — is rewritten by the
   compiler's [Simplif.eliminate_ref] pass into a mutable local
   variable: no heap cell is ever allocated, in bytecode or native
   code.  The scanner mirrors that rule exactly, so the idiomatic
   allocation-free loop style (an [int ref] as a loop cursor) is not
   flagged.  Refs that escape — passed to a function, returned, stored,
   or captured by a local closure — still count as [Ref_cell]
   allocations. *)

let ref_op_prims = [ "%field0"; "%setfield0"; "%incr"; "%decr" ]

let is_prim_named names (e : expression) =
  match e.exp_desc with
  | Texp_ident (_, _, { Types.val_kind = Types.Val_prim p; _ }) ->
      List.mem p.Primitive.prim_name names
  | _ -> false

let ref_eliminable id body =
  let ok = ref true in
  let in_fun = ref false in
  let open Tast_iterator in
  let expr it (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident i, _, _) when Ident.same i id -> ok := false
    | Texp_apply
        ( head,
          (_, Some { exp_desc = Texp_ident (Path.Pident i, _, _); _ }) :: rest )
      when Ident.same i id && is_prim_named ref_op_prims head ->
        if !in_fun then ok := false;
        List.iter (fun (_, a) -> Option.iter (it.expr it) a) rest
    | Texp_function _ ->
        let saved = !in_fun in
        in_fun := true;
        default_iterator.expr it e;
        in_fun := saved
    | _ -> default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  !ok

(* [let r = ref e in body] with [r] eliminable: returns the [ref]
   argument to walk in place of the whole binding expression. *)
let eliminable_ref_arg rf (vb : value_binding) body =
  match (rf, vb.vb_expr.exp_desc, pat_bound_idents vb.vb_pat) with
  | ( Asttypes.Nonrecursive,
      Texp_apply (head, [ (_, Some arg) ]),
      [ id ] )
    when is_prim_named [ "%makemutable" ] head && ref_eliminable id body ->
      Some arg
  | _ -> None

let check_taint acc name tsite =
  match Tables.taint_source name with
  | Some _why -> acc.taints <- { Ir.source = Tables.strip_stdlib name; tsite } :: acc.taints
  | None -> ()

(* Resolve a dotted path text through expression-local module aliases.
   [Apply] aliases get a synthetic program-wide alias entry so the graph
   can expand them exactly like structure-level instantiations. *)
let rewrite_local ctx env ~scopes name head_name =
  match SMap.find_opt head_name env.lmods with
  | None -> name
  | Some (Ir.Plain t) -> t ^ "." ^ suffix_after_head name
  | Some (Ir.Apply _ as a) ->
      ctx.gensym <- ctx.gensym + 1;
      let key = Printf.sprintf "%s.<l%d>" (List.hd scopes) ctx.gensym in
      Hashtbl.replace ctx.prog.aliases key (a, scopes);
      key ^ "." ^ suffix_after_head name

let register_packed ctx name = Hashtbl.replace ctx.prog.packed name ()

let rec walk ctx ~scopes ~fparams acc env (e : expression) =
  let w = walk ctx ~scopes ~fparams acc in
  match e.exp_desc with
  | Texp_ident (path, _, vd) -> (
      let name = Path.name path in
      check_taint acc name (site ctx e);
      match vd.Types.val_kind with
      | Types.Val_prim _ -> ()
      | _ ->
          let head = Ident.name (Path.head path) in
          let local = SMap.mem head env.locals in
          if (not local) && is_arrow e.exp_type then
            (* A bare function reference escaping into data/arguments:
               follow it if it resolves, stay silent otherwise. *)
            let name =
              match path with
              | Path.Pident _ -> name
              | _ -> rewrite_local ctx env ~scopes name head
            in
            add_call acc (Ir.Direct { path = name; escape = true }) (site ctx e))
  | Texp_apply (head, args) ->
      walk_apply ctx ~scopes ~fparams acc env e head args
  | Texp_function _ ->
      add_alloc acc Ir.Closure "<fun>" (site ctx e);
      walk_fn_spine ctx ~scopes ~fparams acc env e
  | Texp_let (rf, vbs, body) ->
      let env' =
        List.fold_left
          (fun env' vb ->
            match unpack_ident vb.vb_pat with
            | Some id ->
                {
                  env' with
                  unpacked = SMap.add (Ident.name id) () env'.unpacked;
                }
            | None ->
                let kind =
                  match vb.vb_expr.exp_desc with
                  | Texp_function _ -> Lfun
                  | _ -> Lval
                in
                add_binders ~kind env' (pat_bound_idents vb.vb_pat))
          env vbs
      in
      let rhs_env = match rf with Asttypes.Recursive -> env' | _ -> env in
      List.iter
        (fun vb ->
          match vb.vb_expr.exp_desc with
          | Texp_function _ ->
              let n =
                match pat_bound_idents vb.vb_pat with
                | [ id ] -> Ident.name id
                | _ -> "<fn>"
              in
              (* A function defined inside a function body closes over
                 its environment: one closure block per enclosing call
                 (constant closures excepted — reviewed via allowlist).
                 Its body's allocations are attributed to the enclosing
                 function, conservatively. *)
              add_alloc acc Ir.Closure n
                (Ir.site_of_loc ~file:ctx.file vb.vb_loc);
              walk_fn_spine ctx ~scopes ~fparams acc rhs_env vb.vb_expr
          | _ -> (
              match eliminable_ref_arg rf vb body with
              | Some arg ->
                  (* Simplif-eliminable ref: the cell never
                     materializes, only its initializer runs. *)
                  walk ctx ~scopes ~fparams acc rhs_env arg
              | None -> walk ctx ~scopes ~fparams acc rhs_env vb.vb_expr))
        vbs;
      walk ctx ~scopes ~fparams acc env' body
  | Texp_match (scrut, cases, _) ->
      w env scrut;
      List.iter (walk_case ctx ~scopes ~fparams acc env) cases
  | Texp_try (body, cases) ->
      w env body;
      List.iter (walk_case ctx ~scopes ~fparams acc env) cases
  | Texp_construct (_, cd, args) ->
      if args <> [] && not (static_const e) then
        add_alloc acc Ir.Construct cd.Types.cstr_name (site ctx e);
      List.iter (w env) args
  | Texp_record { fields; extended_expression; _ } ->
      if not (static_const e) then
        add_alloc acc Ir.Record
          (match e.exp_type |> Types.get_desc with
          | Types.Tconstr (p, _, _) -> Path.name p
          | _ -> "<record>")
          (site ctx e);
      Option.iter (w env) extended_expression;
      Array.iter
        (fun (_, def) ->
          match def with Overridden (_, e) -> w env e | Kept _ -> ())
        fields
  | Texp_tuple es ->
      if not (static_const e) then add_alloc acc Ir.Tuple "<tuple>" (site ctx e);
      List.iter (w env) es
  | Texp_variant (l, eo) ->
      (match eo with
      | Some _ when not (static_const e) ->
          add_alloc acc Ir.Variant l (site ctx e)
      | _ -> ());
      Option.iter (w env) eo
  | Texp_array es ->
      if es <> [] then add_alloc acc Ir.Array_lit "<array>" (site ctx e);
      List.iter (w env) es
  | Texp_lazy body ->
      add_alloc acc Ir.Lazy_val "<lazy>" (site ctx e);
      w env body
  | Texp_object _ | Texp_new _ | Texp_override _ | Texp_instvar _
  | Texp_setinstvar _ ->
      add_alloc acc Ir.Object_alloc "<object>" (site ctx e)
  | Texp_send (obj, _) ->
      add_call acc (Ir.Higher_order { label = "#method" }) (site ctx e);
      w env obj
  | Texp_letop { let_; ands; body; _ } ->
      (* Binding operators thread closures by construction. *)
      add_alloc acc Ir.Closure "<letop>" (site ctx e);
      w env let_.bop_exp;
      List.iter (fun (a : binding_op) -> w env a.bop_exp) ands;
      walk_case ctx ~scopes ~fparams acc env body
  | Texp_letmodule (id, _, _, mexpr, body) ->
      let env =
        match id with
        | None -> env
        | Some id -> (
            let n = Ident.name id in
            match (unwrap_mod mexpr).mod_desc with
            | Tmod_unpack (inner, _) ->
                w env inner;
                { env with unpacked = SMap.add n () env.unpacked }
            | Tmod_ident (p, _) ->
                { env with lmods = SMap.add n (Ir.Plain (Path.name p)) env.lmods }
            | Tmod_apply _ | Tmod_apply_unit _ -> (
                match decompose_apply mexpr [] with
                | Some (f, args) ->
                    {
                      env with
                      lmods =
                        SMap.add n
                          (Ir.Apply { functor_path = f; args })
                          env.lmods;
                    }
                | None -> env)
            | _ ->
                (* A local [module M = struct .. end]: building the module
                   allocates; calls into it stay conservative. *)
                add_alloc acc Ir.Closure "<local-module>" (site ctx e);
                env)
      in
      w env body
  | Texp_pack mexpr -> scan_pack ctx ~scopes ~fparams acc mexpr
  | Texp_field (r, _, _) -> w env r
  | Texp_setfield (r, _, _, v) ->
      w env r;
      w env v
  | Texp_ifthenelse (c, t, f) ->
      w env c;
      w env t;
      Option.iter (w env) f
  | Texp_sequence (a, b) ->
      w env a;
      w env b
  | Texp_while (c, body) ->
      w env c;
      w env body
  | Texp_for (id, _, lo, hi, _, body) ->
      w env lo;
      w env hi;
      walk ctx ~scopes ~fparams acc (add_binders env [ id ]) body
  | Texp_assert (cond, _) -> w env cond
  | Texp_letexception (_, body) -> w env body
  | Texp_open (_, body) -> w env body
  | Texp_constant _ | Texp_unreachable | Texp_extension_constructor _ -> ()

and walk_case :
    type k.
      ctx -> scopes:string list -> fparams:string list -> acc -> env ->
      k case -> unit =
 fun ctx ~scopes ~fparams acc env c ->
  let env = bind_pat env c.c_lhs in
  Option.iter (walk ctx ~scopes ~fparams acc env) c.c_guard;
  walk ctx ~scopes ~fparams acc env c.c_rhs

(* Descend a function's parameter spine without flagging the spine
   itself as a closure: the cases' patterns are the parameters. *)
and walk_fn_spine ctx ~scopes ~fparams acc env (e : expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun c ->
          let env = bind_pat env c.c_lhs in
          Option.iter (walk ctx ~scopes ~fparams acc env) c.c_guard;
          walk_fn_spine ctx ~scopes ~fparams acc env c.c_rhs)
        cases
  | _ -> walk ctx ~scopes ~fparams acc env e

and walk_apply ctx ~scopes ~fparams acc env whole head args =
  (* Flatten curried application chains: [x |> f a] and
     [t.handlers.(tag) i j] both typecheck as an apply whose head is
     itself an apply; combining the argument lists recovers the real
     head ([f], [Array.get]) instead of reporting an opaque [<expr>]
     higher-order site. *)
  match head.exp_desc with
  | Texp_apply (head2, args2) ->
      walk_apply ctx ~scopes ~fparams acc env whole head2 (args2 @ args)
  | _ -> walk_apply1 ctx ~scopes ~fparams acc env whole head args

and walk_apply1 ctx ~scopes ~fparams acc env whole head args =
  let s = site ctx head in
  (* Partial-application detection needs the callee's definition arity
     (types alone cannot tell [t -> unit -> unit] from a function that
     returns a stored closure), so calls carry the supplied count and
     whether the result is arrow-typed; {!Graph} decides after
     resolution.  Only primitives are decided here, from [prim_arity].
     An omitted optional argument makes the application partial. *)
  let supplied =
    List.length (List.filter (fun (_, a) -> a <> None) args)
  in
  let omitted = List.exists (fun (_, a) -> a = None) args in
  let ret_arrow = is_arrow whole.exp_type in
  let supplied = if omitted then 0 else supplied in
  let call = add_call ~supplied ~ret_arrow acc in
  (match head.exp_desc with
  | Texp_ident (path, _, vd) -> (
      let name = Path.name path in
      check_taint acc name s;
      match vd.Types.val_kind with
      | Types.Val_prim p -> (
          if ret_arrow && supplied < p.Primitive.prim_arity then
            add_alloc acc Ir.Partial_apply
              (Tables.strip_stdlib name) (site ctx whole);
          (* Over-application: the primitive's result (e.g. a function
             fetched from an array) is itself called — an indirect call
             with a statically unknown target. *)
          if supplied > p.Primitive.prim_arity then
            call (Ir.Higher_order { label = "<indirect>" }) s;
          match Tables.classify_prim p with
          | Tables.Safe | Tables.Terminal -> ()
          | Tables.Alloc k -> add_alloc acc k (Tables.strip_stdlib name) s
          | Tables.Unknown ->
              add_alloc acc Ir.C_stub p.Primitive.prim_name s)
      | _ -> (
          let head_name = Ident.name (Path.head path) in
          match path with
          | Path.Pident _ -> (
              match SMap.find_opt head_name env.locals with
              | Some Lfun -> ()  (* local fn: body attributed inline *)
              | Some Lval -> call (Ir.Higher_order { label = head_name }) s
              | None -> call (Ir.Direct { path = name; escape = false }) s)
          | _ ->
              if SMap.mem head_name env.unpacked then
                call (Ir.First_class { member = suffix_after_head name }) s
              else if SMap.mem head_name env.lmods then
                call
                  (Ir.Direct
                     {
                       path = rewrite_local ctx env ~scopes name head_name;
                       escape = false;
                     })
                  s
              else if List.mem head_name fparams then
                call
                  (Ir.Functor_param
                     { param = head_name; member = suffix_after_head name })
                  s
              else call (Ir.Direct { path = name; escape = false }) s))
  | Texp_field (r, _, ld) ->
      call (Ir.Higher_order { label = "." ^ ld.Types.lbl_name }) s;
      walk ctx ~scopes ~fparams acc env r
  | _ ->
      call (Ir.Higher_order { label = "<expr>" }) s;
      walk ctx ~scopes ~fparams acc env head);
  List.iter
    (fun (_, a) -> Option.iter (walk ctx ~scopes ~fparams acc env) a)
    args

(* A packed module: [(module M)] registers M as a first-class dispatch
   candidate; [(module struct .. end)] is scanned as a pseudo-module so
   its members participate in conservative first-class resolution (this
   is how the [Kvserver.Design] registry entries stay analyzable). *)
and scan_pack ctx ~scopes ~fparams acc mexpr =
  match (unwrap_mod mexpr).mod_desc with
  | Tmod_ident (p, _) -> register_packed ctx (Path.name p)
  | Tmod_structure str ->
      ctx.gensym <- ctx.gensym + 1;
      let pseudo = Printf.sprintf "%s.<pack%d>" (List.hd scopes) ctx.gensym in
      scan_structure ctx ~scopes:(pseudo :: scopes) ~fparams str;
      register_packed ctx pseudo
  | Tmod_apply _ | Tmod_apply_unit _ -> (
      match decompose_apply mexpr [] with
      | Some (f, args) ->
          ctx.gensym <- ctx.gensym + 1;
          let key = Printf.sprintf "%s.<p%d>" (List.hd scopes) ctx.gensym in
          Hashtbl.replace ctx.prog.aliases key
            (Ir.Apply { functor_path = f; args }, scopes);
          register_packed ctx key
      | None -> ())
  | _ -> ignore (acc : acc)

(* ------------------------------------------------------------------ *)
(* Structure scan *)

and scan_structure ctx ~scopes ~fparams (str : structure) =
  List.iter (scan_item ctx ~scopes ~fparams) str.str_items

and scan_item ctx ~scopes ~fparams item =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      List.iter (scan_binding ctx ~scopes ~fparams) vbs
  | Tstr_module mb -> scan_module ctx ~scopes ~fparams mb
  | Tstr_recmodule mbs -> List.iter (scan_module ctx ~scopes ~fparams) mbs
  | Tstr_eval (e, _) ->
      (* Module-initialization code: not reachable from any hot root,
         but packed modules registered here must still be seen. *)
      walk ctx ~scopes ~fparams (fresh_acc ()) env0 e
  | _ -> ()

and scan_binding ctx ~scopes ~fparams vb =
  match pat_bound_idents vb.vb_pat with
  | [ id ]
    when (match vb.vb_expr.exp_desc with Texp_function _ -> true | _ -> false)
         || is_arrow vb.vb_expr.exp_type ->
      let fname = List.hd scopes ^ "." ^ Ident.name id in
      let acc = fresh_acc () in
      walk_fn_spine ctx ~scopes ~fparams acc env0 vb.vb_expr;
      let f =
        {
          Ir.fname;
          fsite = Ir.site_of_loc ~file:ctx.file vb.vb_loc;
          hot = hot_attr vb.vb_attributes;
          cold = cold_attr vb.vb_attributes;
          diverging = diverging vb.vb_expr.exp_type;
          arity = spine_arity vb.vb_expr;
          scopes;
          fparams;
          allocs = List.rev acc.allocs;
          calls = List.rev acc.calls;
          taints = List.rev acc.taints;
        }
      in
      (* Shadowing redefinitions: last definition wins (documented
         approximation; see DESIGN.md §13). *)
      Hashtbl.replace ctx.prog.funcs fname f
  | _ ->
      (* Non-function or destructuring binding: module-initialization
         code.  Walk it only to register packed modules. *)
      walk ctx ~scopes ~fparams (fresh_acc ()) env0 vb.vb_expr

and scan_module ctx ~scopes ~fparams mb =
  match mb.mb_name.txt with
  | None -> ()
  | Some name ->
      let qual = List.hd scopes ^ "." ^ name in
      let rec go fparams params_acc me =
        match (unwrap_mod me).mod_desc with
        | Tmod_ident (p, _) ->
            Hashtbl.replace ctx.prog.aliases qual
              (Ir.Plain (Path.name p), scopes)
        | Tmod_structure str ->
            if params_acc <> [] then
              Hashtbl.replace ctx.prog.functor_params qual
                (List.rev params_acc);
            scan_structure ctx ~scopes:(qual :: scopes) ~fparams str
        | Tmod_functor (param, body) ->
            let fparams, params_acc =
              match param with
              | Named (Some id, _, _) ->
                  (Ident.name id :: fparams, Ident.name id :: params_acc)
              | Named (None, _, _) | Unit -> (fparams, params_acc)
            in
            go fparams params_acc body
        | Tmod_apply _ | Tmod_apply_unit _ -> (
            match decompose_apply me [] with
            | Some (f, args) ->
                Hashtbl.replace ctx.prog.aliases qual
                  (Ir.Apply { functor_path = f; args }, scopes)
            | None -> ())
        | Tmod_unpack _ | Tmod_constraint _ -> ()
      in
      go fparams [] mb.mb_expr

(* ------------------------------------------------------------------ *)

let scan_unit (prog : Ir.program) (u : Loader.unit_info) =
  prog.units <- u.modname :: prog.units;
  let ctx = { prog; file = u.source; gensym = 0 } in
  scan_structure ctx ~scopes:[ u.modname ] ~fparams:[] u.structure

let scan_units prog units = List.iter (scan_unit prog) units
