(* Orchestration: load .cmt units, scan them into the program IR,
   resolve roots, run the allocation and taint traversals, apply the
   allowlist, and report.  Returns [true] when the build may pass. *)

type result = {
  ok : bool;
  alloc_findings : Ir.finding list;
  taint_findings : Ir.finding list;
  errors : string list;
  units : int;
  hot_roots : int;
  sink_roots : int;
}

let run ~cmt_roots ~roots_file ~allow_file =
  let units = Loader.load_roots cmt_roots in
  let prog = Ir.create_program () in
  Scan.scan_units prog units;
  let g = Graph.create prog in
  let roots = Roots.load prog roots_file in
  let allow = Allowlist.load allow_file in
  let collect pass roots =
    let acc = ref [] in
    let (_ : Graph.stats) =
      Graph.traverse g ~pass ~roots ~emit:(fun f -> acc := f :: !acc)
    in
    Report.dedup !acc
  in
  let alloc_all = collect Graph.Alloc_pass roots.Roots.hot_roots in
  let taint_all = collect Graph.Taint_pass roots.Roots.sink_roots in
  (* Allowlist filter: covered findings disappear; then any entry that
     covered nothing is itself an error. *)
  let alloc_findings =
    Report.sort (List.filter (fun f -> not (Allowlist.covers allow f)) alloc_all)
  in
  let taint_findings =
    Report.sort (List.filter (fun f -> not (Allowlist.covers allow f)) taint_all)
  in
  let errors = roots.Roots.errors @ allow.Allowlist.errors @ Allowlist.stale allow in
  {
    ok = alloc_findings = [] && taint_findings = [] && errors = [];
    alloc_findings;
    taint_findings;
    errors;
    units = List.length prog.Ir.units;
    hot_roots = List.length roots.Roots.hot_roots;
    sink_roots = List.length roots.Roots.sink_roots;
  }

let print_result r =
  Report.print_findings ~header:"hot-path allocation findings" r.alloc_findings;
  Report.print_findings ~header:"determinism taint findings" r.taint_findings;
  List.iter (fun e -> Format.printf "error: %s@." e) r.errors;
  if r.ok then
    Format.printf
      "analyze: OK (%d units, %d hot roots allocation-free, %d sink \
       functions taint-free)@."
      r.units r.hot_roots r.sink_roots
  else
    Format.printf "analyze: FAILED (%d alloc findings, %d taint findings, %d errors)@."
      (List.length r.alloc_findings)
      (List.length r.taint_findings)
      (List.length r.errors)
