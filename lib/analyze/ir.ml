(* Shared data model for the interprocedural analyzer: what the scanner
   extracts from each .cmt and what the graph traversal consumes.  One
   [func] per named function definition; calls keep the raw path text
   plus enough classification (functor parameter, first-class member,
   higher-order) for {!Graph} to resolve them later against the whole
   program. *)

type site = { file : string; line : int; col : int }

let site_of_loc ~file (loc : Location.t) =
  let p = loc.Location.loc_start in
  { file; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

let pp_site ppf s = Format.fprintf ppf "%s:%d:%d" s.file s.line s.col

(* A statically-detected allocation in a function body.  [ident] is a
   short human label (constructor/binder name, primitive, ...) used both
   in the report and as the allowlist key detail. *)
type alloc_kind =
  | Record
  | Tuple
  | Construct
  | Variant
  | Array_lit
  | Closure
  | Partial_apply
  | Ref_cell
  | Stdlib_alloc
  | C_stub
  | Lazy_val
  | Object_alloc

let alloc_category = function
  | Record -> "alloc-record"
  | Tuple -> "alloc-tuple"
  | Construct -> "alloc-construct"
  | Variant -> "alloc-variant"
  | Array_lit -> "alloc-array"
  | Closure -> "alloc-closure"
  | Partial_apply -> "alloc-partial-apply"
  | Ref_cell -> "alloc-ref"
  | Stdlib_alloc -> "alloc-stdlib"
  | C_stub -> "alloc-c-stub"
  | Lazy_val -> "alloc-lazy"
  | Object_alloc -> "alloc-object"

type alloc = { akind : alloc_kind; aident : string; asite : site }

(* Call-site classification, decided while the defining unit is scanned
   (when local scope information is still available):
   - [Direct]: a value path such as ["Kvserver.Engine.execute"] or a
     bare same-unit name such as ["refill"]; resolved later against the
     definition table, innermost scope first.  [escape] marks a bare
     function reference in argument position (not the applied head): it
     adds an edge when it resolves but is silent when it does not (most
     bare idents are plain data).
   - [Functor_param]: a call through the enclosing functor's parameter,
     e.g. [A.make] inside [Ring.Make]; resolvable only once the functor
     instantiation that led the traversal here is known.
   - [First_class]: a call through a module unpacked from a first-class
     value, e.g. [D.make] after [let (module D) = ...]; resolved
     conservatively against every module the program ever packs.
   - [Higher_order]: the head is a function-typed local (parameter,
     record field, expression) — statically unknowable; the traversal
     reports an unknown-callee verdict. *)
type callee =
  | Direct of { path : string; escape : bool }
  | Functor_param of { param : string; member : string }
  | First_class of { member : string }
  | Higher_order of { label : string }

(* [supplied]/[ret_arrow] feed partial-application detection, which can
   only be decided once the callee's definition arity is known (OCaml
   types cannot distinguish [t -> unit -> unit] from a function that
   returns a stored closure): a call whose result is arrow-typed while
   fewer arguments than the definition takes were supplied builds a
   closure. *)
type call = {
  callee : callee;
  csite : site;
  supplied : int;  (** arguments given at the call site *)
  ret_arrow : bool;  (** the application's result is function-typed *)
}

type taint = { source : string; tsite : site }

type func = {
  fname : string;  (** canonical: [Unit[.Sub].fn], e.g. [Dsim__Sim.run] *)
  fsite : site;
  hot : bool;  (** carries a [[@hot]]/[[@analyze.hot]] attribute *)
  cold : bool;
      (** carries a [[@cold]]/[[@analyze.cold]] attribute: a reviewed
          amortized path (capacity doubling, error reporting) that the
          traversal does not descend into *)
  diverging : bool;
      (** return type is a free type variable: the function never
          returns normally (error/raise helper), so its body is a cold
          path the allocation proof skips *)
  arity : int;  (** syntactic parameter count of the definition *)
  scopes : string list;  (** resolution scopes, innermost first *)
  fparams : string list;  (** enclosing functor parameters, if any *)
  allocs : alloc list;
  calls : call list;
  taints : taint list;
}

(* Module-alias facts harvested from the whole program.  [Plain] covers
   dune's generated alias units ([module Sim = Dsim__Sim]) and ordinary
   aliases; [Apply] records a functor instantiation, which resolution
   expands into the functor body plus a parameter substitution. *)
type alias = Plain of string | Apply of { functor_path : string; args : string list }

type program = {
  funcs : (string, func) Hashtbl.t;
  aliases : (string, alias * string list) Hashtbl.t;
      (** qualified module name -> (target, scopes the target is
          relative to — needed because [module A = B] may name a
          same-unit module) *)
  functor_params : (string, string list) Hashtbl.t;
      (** functor path -> parameter names, in order *)
  packed : (string, unit) Hashtbl.t;  (** module paths packed as first-class values *)
  mutable units : string list;  (** compilation units scanned, for reporting *)
}

let create_program () =
  {
    funcs = Hashtbl.create 1024;
    aliases = Hashtbl.create 256;
    functor_params = Hashtbl.create 16;
    packed = Hashtbl.create 16;
    units = [];
  }

(* ------------------------------------------------------------------ *)
(* Findings *)

type finding = {
  category : string;  (** e.g. ["alloc-closure"], ["unknown-callee"], ["taint"] *)
  ident : string;  (** detail label; second half of the allowlist key *)
  message : string;
  fsite_ : site;  (** where the offending site is *)
  root : string;  (** the root that reaches it *)
  witness : (string * site) list;
      (** call path, root first: [(function, call-site-into-next)] *)
}

let allow_keys f =
  (* An allowlist entry may name just the category, or pin the detail. *)
  [ f.category; f.category ^ ":" ^ f.ident ]
