(* .cmt discovery and deserialization.  The analyzer is pointed at one
   or more roots — typically dune's install tree
   (_build/install/default/lib/minos) or a .objs directory — and loads
   every implementation .cmt it can find.  Dot-directories are NOT
   skipped: dune keeps per-library objects under [.libname.objs]. *)

type unit_info = {
  modname : string;  (** compilation unit, e.g. [Dsim__Sim] *)
  source : string;  (** source path as recorded at compile time *)
  structure : Typedtree.structure;
}

let rec cmt_files path =
  match Sys.is_directory path with
  | true ->
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun name -> cmt_files (Filename.concat path name))
  | false -> if Filename.check_suffix path ".cmt" then [ path ] else []
  | exception Sys_error _ -> []

let load_cmt path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation structure; cmt_modname; cmt_sourcefile; _ }
    ->
      let source =
        match cmt_sourcefile with Some s -> s | None -> cmt_modname
      in
      Some { modname = cmt_modname; source; structure }
  | _ -> None
  | exception _ -> None

(* Load every unit under [roots], deduplicating by unit name (the same
   .cmt can appear both under .objs and in the install tree). *)
let load_roots roots =
  let seen = Hashtbl.create 64 in
  List.concat_map cmt_files roots
  |> List.filter_map (fun path ->
         match load_cmt path with
         | Some u when not (Hashtbl.mem seen u.modname) ->
             Hashtbl.add seen u.modname ();
             Some u
         | _ -> None)
