(** Reservoir sampling (Vitter's algorithm R).

    Keeps a uniform random subset of bounded size from an unbounded stream;
    used to bound memory when recording latencies of very long runs. *)

type t

val create : ?seed:int -> capacity:int -> unit -> t

val add : t -> float -> unit

val seen : t -> int
(** Total number of samples offered. *)

val size : t -> int
(** Number of samples currently retained, [min seen capacity]. *)

val to_array : t -> float array
(** The retained samples, in arbitrary order. *)

val quantile : t -> float -> float
(** Quantile estimate over the retained samples. *)
