(** Exact quantiles of in-memory samples.

    Uses the nearest-rank definition: the [q]-quantile of [n] sorted samples
    is the element at index [ceil(q * n) - 1] (clamped), so the 0.99-quantile
    of 100 samples is the 99th smallest.  This matches how the paper reports
    "the 99th percentile". *)

val sort_floats : float array -> unit
(** In-place float-specialized sort (no per-element boxing, unlike
    [Array.sort compare] on a [float array]).  Samples must be finite:
    NaNs are not ordered. *)

val merge_sorted : float array -> float array -> float array
(** Merge two sorted arrays into a fresh sorted array.  When the inputs
    partition a sample (e.g. per-class latency vectors), this reproduces
    the sorted union for half the sorting work. *)

val of_sorted : float array -> float -> float
(** [of_sorted sorted q] with [0 < q <= 1].  Raises [Invalid_argument] on an
    empty array or out-of-range [q]. *)

val of_array : float array -> float -> float
(** Sorts a copy, then applies {!of_sorted}. *)

val of_vec : Float_vec.t -> float -> float

val many_of_vec : Float_vec.t -> float list -> float list
(** Compute several quantiles with a single sort. *)

val mean_of_vec : Float_vec.t -> float
(** Arithmetic mean; 0 for an empty vector. *)
