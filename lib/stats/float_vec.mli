(** Growable array of floats.

    Used to record per-request latencies during a simulation run; keeps
    allocation unboxed ([float array]) and amortized O(1) per append. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val push : t -> float -> unit

val get : t -> int -> float
(** Raises [Invalid_argument] when out of bounds. *)

val to_array : t -> float array
(** A fresh array with exactly [length t] elements. *)

val iter : (float -> unit) -> t -> unit

val append : t -> t -> unit
(** [append dst src] pushes every element of [src] onto [dst] with a
    single blit (no per-element work).  [src] is unchanged. *)

val sum : t -> float
(** Sum of all elements; allocation-free (unlike [fold ( +. ) 0.0]). *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val clear : t -> unit
