(* Monomorphic in-place sort.  [Array.sort compare] on a [float array]
   reads elements through the generic array primitives (boxing each one)
   and dispatches the polymorphic comparison per pair — on the
   million-sample latency vectors this was the simulator's single largest
   source of minor allocation.  A float-specialized quicksort does direct
   unboxed comparisons and allocates nothing per element.  NaNs are not
   ordered ([compare] ordered them); latency samples are always finite. *)
let sort_floats (a : float array) =
  let swap i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  in
  let rec qsort lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      (* Median-of-three pivot, then Hoare partition. *)
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do incr i done;
        while a.(!j) > pivot do decr j done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  if Array.length a > 1 then qsort 0 (Array.length a - 1)

(* Standard two-finger merge.  Equal elements are interchangeable (they
   are plain floats), so merging two sorted class-partitioned arrays
   yields exactly the array a direct sort of their union would. *)
let merge_sorted a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else if nb = 0 then Array.copy a
  else begin
    let out = Array.make (na + nb) 0.0 in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !j >= nb || (!i < na && a.(!i) <= b.(!j)) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

let of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty sample";
  if q <= 0.0 || q > 1.0 then invalid_arg "Quantile.of_sorted: q out of (0, 1]";
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  sorted.(idx)

let of_array arr q =
  let copy = Array.copy arr in
  sort_floats copy;
  of_sorted copy q

let of_vec vec q = of_array (Float_vec.to_array vec) q

let many_of_vec vec qs =
  let copy = Float_vec.to_array vec in
  sort_floats copy;
  List.map (of_sorted copy) qs

let mean_of_vec vec =
  let n = Float_vec.length vec in
  if n = 0 then 0.0 else Float_vec.sum vec /. float_of_int n
