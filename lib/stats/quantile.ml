let of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty sample";
  if q <= 0.0 || q > 1.0 then invalid_arg "Quantile.of_sorted: q out of (0, 1]";
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  sorted.(idx)

let of_array arr q =
  let copy = Array.copy arr in
  Array.sort compare copy;
  of_sorted copy q

let of_vec vec q = of_array (Float_vec.to_array vec) q

let many_of_vec vec qs =
  let copy = Float_vec.to_array vec in
  Array.sort compare copy;
  List.map (of_sorted copy) qs

let mean_of_vec vec =
  let n = Float_vec.length vec in
  if n = 0 then 0.0 else Float_vec.fold ( +. ) 0.0 vec /. float_of_int n
