type t = {
  min_value : float;
  max_value : float;
  inv_log_gamma : float;
  gamma : float;
  counts : float array;
  mutable total : float;
}

let create ?(buckets_per_decade = 32) ~min_value ~max_value () =
  if not (0.0 < min_value && min_value < max_value) then
    invalid_arg "Log_histogram.create: need 0 < min_value < max_value";
  if buckets_per_decade < 1 then
    invalid_arg "Log_histogram.create: buckets_per_decade must be >= 1";
  let gamma = Float.pow 10.0 (1.0 /. float_of_int buckets_per_decade) in
  let log_gamma = log gamma in
  let n =
    1 + int_of_float (ceil (log (max_value /. min_value) /. log_gamma))
  in
  {
    min_value;
    max_value;
    inv_log_gamma = 1.0 /. log_gamma;
    gamma;
    counts = Array.make (max n 1) 0.0;
    total = 0.0;
  }

let copy t = { t with counts = Array.copy t.counts }

let same_layout a b =
  a.min_value = b.min_value
  && a.max_value = b.max_value
  && Array.length a.counts = Array.length b.counts

let bucket_count t = Array.length t.counts

let index_of t v =
  if v <= t.min_value then 0
  else begin
    let i = int_of_float (log (v /. t.min_value) *. t.inv_log_gamma) in
    if i < 0 then 0
    else if i >= Array.length t.counts then Array.length t.counts - 1
    else i
  end

let record_n t v w =
  let i = index_of t v in
  t.counts.(i) <- t.counts.(i) +. w;
  t.total <- t.total +. w

let record t v = record_n t v 1.0

let total t = t.total

let is_empty t = t.total = 0.0

let bucket_upper_bound t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Log_histogram.bucket_upper_bound: index out of range";
  t.min_value *. Float.pow t.gamma (float_of_int (i + 1))

let quantile t q =
  if is_empty t then invalid_arg "Log_histogram.quantile: empty histogram";
  if q <= 0.0 || q > 1.0 then invalid_arg "Log_histogram.quantile: q out of (0, 1]";
  let target = q *. t.total in
  let n = Array.length t.counts in
  let rec go i acc =
    if i >= n - 1 then bucket_upper_bound t (n - 1)
    else begin
      let acc = acc +. t.counts.(i) in
      if acc >= target then bucket_upper_bound t i else go (i + 1) acc
    end
  in
  go 0 0.0

let merge_into ~dst src =
  if not (same_layout dst src) then
    invalid_arg "Log_histogram.merge_into: layout mismatch";
  for i = 0 to Array.length src.counts - 1 do
    dst.counts.(i) <- dst.counts.(i) +. src.counts.(i)
  done;
  dst.total <- dst.total +. src.total

let smooth ~prev ~current ~alpha =
  if not (same_layout prev current) then
    invalid_arg "Log_histogram.smooth: layout mismatch";
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Log_histogram.smooth: alpha out of [0, 1]";
  let out = { prev with counts = Array.copy prev.counts; total = 0.0 } in
  let total = ref 0.0 in
  for i = 0 to Array.length out.counts - 1 do
    let v = ((1.0 -. alpha) *. prev.counts.(i)) +. (alpha *. current.counts.(i)) in
    out.counts.(i) <- v;
    total := !total +. v
  done;
  out.total <- !total;
  out

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0.0;
  t.total <- 0.0

let fold f t init =
  let acc = ref init in
  for i = 0 to Array.length t.counts - 1 do
    if t.counts.(i) > 0.0 then acc := f i t.counts.(i) !acc
  done;
  !acc
