type window = { start_time : float; samples : Float_vec.t }

type t = { width : float; table : (int, window) Hashtbl.t }

let create ~width () =
  if not (width > 0.0) then invalid_arg "Windowed.create: width must be > 0";
  { width; table = Hashtbl.create 64 }

let add t ~time x =
  if time < 0.0 then invalid_arg "Windowed.add: negative time";
  let idx = int_of_float (time /. t.width) in
  let w =
    match Hashtbl.find_opt t.table idx with
    | Some w -> w
    | None ->
        let w =
          { start_time = float_of_int idx *. t.width; samples = Float_vec.create () }
        in
        Hashtbl.add t.table idx w;
        w
  in
  Float_vec.push w.samples x

let windows t =
  Hashtbl.fold (fun _ w acc -> w :: acc) t.table []
  |> List.sort (fun a b -> Float.compare a.start_time b.start_time)

let quantile_series t q =
  windows t
  |> List.filter_map (fun w ->
         if Float_vec.length w.samples = 0 then None
         else Some (w.start_time, Quantile.of_vec w.samples q))

let mean_series t =
  windows t
  |> List.filter_map (fun w ->
         if Float_vec.length w.samples = 0 then None
         else Some (w.start_time, Quantile.mean_of_vec w.samples))
