(* All fields are floats so the record uses OCaml's flat float layout:
   [add] then updates fields without boxing (a mixed int/float record
   boxes every float store, and [add] sits on the simulator's per-request
   path).  The count is kept as a float — exact up to 2^53 samples. *)
type t = {
  mutable n : float;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0.0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let[@inline] add t x =
  t.n <- t.n +. 1.0;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = int_of_float t.n

let mean t = if t.n = 0.0 then 0.0 else t.mean

let variance t = if t.n < 2.0 then 0.0 else t.m2 /. (t.n -. 1.0)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let sum t = t.mean *. t.n

let merge a b =
  if a.n = 0.0 then { b with n = b.n }
  else if b.n = 0.0 then { a with n = a.n }
  else begin
    let n = a.n +. b.n in
    let delta = b.mean -. a.mean in
    {
      n;
      mean = a.mean +. (delta *. b.n /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. a.n *. b.n /. n);
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
    }
  end

let reset t =
  t.n <- 0.0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity
