(** Log-bucketed histogram with fractional (smoothable) counts.

    This is the histogram each Minos core keeps over observed item sizes
    (§3 of the paper, "How to find the threshold between large and small")
    and that we also use for memory-bounded latency recording.

    Values in [\[min_value, max_value\]] are mapped to geometrically spaced
    buckets: bucket [i] covers [min_value * gamma^i, min_value * gamma^(i+1))].
    Values below [min_value] land in the first bucket, values above
    [max_value] in the last.  Counts are floats so that histograms can be
    exponentially smoothed across epochs (the paper's α = 0.9 moving
    average) and merged across cores. *)

type t

val create : ?buckets_per_decade:int -> min_value:float -> max_value:float -> unit -> t
(** [buckets_per_decade] controls resolution (default 32, i.e. ~7.5 % wide
    buckets).  Requires [0 < min_value < max_value]. *)

val copy : t -> t

val same_layout : t -> t -> bool
(** Whether two histograms can be merged / smoothed together. *)

val record : t -> float -> unit
(** Add one observation. *)

val record_n : t -> float -> float -> unit
(** [record_n t v w] adds [w] observations of value [v]. *)

val total : t -> float
(** Sum of all counts. *)

val is_empty : t -> bool

val bucket_count : t -> int

val bucket_upper_bound : t -> int -> float
(** Exclusive upper bound of bucket [i]; observations reported by
    {!quantile} use this as the representative value, so quantiles
    over-estimate by at most one bucket width. *)

val quantile : t -> float -> float
(** [quantile t q] for [0 < q <= 1]: the upper bound of the first bucket at
    which the cumulative count reaches [q * total].  Raises
    [Invalid_argument] if the histogram is empty. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds [src]'s counts into [dst].  Layouts must
    match. *)

val smooth : prev:t -> current:t -> alpha:float -> t
(** The paper's epoch smoothing: a fresh histogram whose counts are
    [(1 - alpha) * prev + alpha * current].  With [alpha = 0.9] the new
    epoch dominates.  Layouts must match. *)

val reset : t -> unit
(** Zero all counts. *)

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over (bucket index, count) for nonzero buckets, in order. *)
