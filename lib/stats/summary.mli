(** Streaming summary statistics (Welford's online algorithm).

    Constant memory; numerically stable mean/variance. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float

val merge : t -> t -> t
(** Combine two summaries as if all samples were seen by one. *)

val reset : t -> unit
