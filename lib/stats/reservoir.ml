type t = {
  capacity : int;
  arr : float array;
  mutable seen : int;
  rng : Dsim.Rng.t;
}

let create ?(seed = 0x5eed) ~capacity () =
  if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be > 0";
  { capacity; arr = Array.make capacity 0.0; seen = 0; rng = Dsim.Rng.create seed }

let add t x =
  if t.seen < t.capacity then t.arr.(t.seen) <- x
  else begin
    let j = Dsim.Rng.int t.rng (t.seen + 1) in
    if j < t.capacity then t.arr.(j) <- x
  end;
  t.seen <- t.seen + 1

let seen t = t.seen

let size t = min t.seen t.capacity

let to_array t = Array.sub t.arr 0 (size t)

let quantile t q = Quantile.of_array (to_array t) q
