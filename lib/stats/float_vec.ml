type t = { mutable arr : float array; mutable len : int }

let create ?(capacity = 1024) () =
  { arr = Array.make (max capacity 1) 0.0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.arr then begin
    let arr = Array.make (2 * t.len) 0.0 in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Float_vec.get: index out of bounds";
  t.arr.(i)

let to_array t = Array.sub t.arr 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let clear t = t.len <- 0
