type t = { mutable arr : float array; mutable len : int }

let create ?(capacity = 1024) () =
  { arr = Array.make (max capacity 1) 0.0; len = 0 }

let length t = t.len

let[@inline] push t x =
  if t.len = Array.length t.arr then begin
    let arr = Array.make (2 * t.len) 0.0 in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Float_vec.get: index out of bounds";
  t.arr.(i)

let to_array t = Array.sub t.arr 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let append dst src =
  let need = dst.len + src.len in
  if need > Array.length dst.arr then begin
    let cap = ref (max 1 (Array.length dst.arr)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let arr = Array.make !cap 0.0 in
    Array.blit dst.arr 0 arr 0 dst.len;
    dst.arr <- arr
  end;
  Array.blit src.arr 0 dst.arr dst.len src.len;
  dst.len <- need

let sum t =
  (* Accumulate through a one-element float array: flat float storage, so
     the loop allocates nothing (a [float ref] would box every update,
     and [fold ( +. )] boxes both arguments per element). *)
  let acc = [| 0.0 |] in
  for i = 0 to t.len - 1 do
    acc.(0) <- acc.(0) +. t.arr.(i)
  done;
  acc.(0)

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let clear t = t.len <- 0
