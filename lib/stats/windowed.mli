(** Fixed-width time windows of samples.

    Figure 10 of the paper reports the 99th-percentile latency over 1-second
    windows of a 140-second run; this recorder buckets timestamped samples
    into windows and reports per-window aggregates. *)

type t

val create : width:float -> unit -> t
(** [width] is the window length (same unit as the timestamps, µs in our
    simulations). *)

val add : t -> time:float -> float -> unit
(** Record a sample observed at [time].  Timestamps may arrive slightly out
    of order (completions are not monotonic in arrival order); each sample
    is routed to the window containing its timestamp.  Negative times are
    rejected. *)

type window = { start_time : float; samples : Float_vec.t }

val windows : t -> window list
(** All non-empty windows in increasing time order. *)

val quantile_series : t -> float -> (float * float) list
(** [(window start time, q-quantile of that window)] for each non-empty
    window. *)

val mean_series : t -> (float * float) list
