(* Name-based parsetree lint; see lint_core.mli for scope and the
   deliberate "no typedtree" trade-off. *)

type violation = {
  file : string;
  line : int;
  col : int;
  ident : string;
  rule : string;
  message : string;
}

let hot_dirs =
  [
    "lib/dsim/"; "lib/netsim/"; "lib/server/"; "lib/kv/"; "lib/obs/";
    "lib/stats/"; "lib/fault/"; "lib/cluster/"; "lib/shardmgr/";
  ]

(* Match the dir anywhere in the path so invocations from outside the
   repo root (absolute paths, sandboxes) still classify. *)
let contains ~sub s =
  let n = String.length sub in
  let rec at i = i >= 0 && (String.sub s i n = sub || at (i - 1)) in
  at (String.length s - n)

let is_hot_path path =
  let path = String.concat "/" (String.split_on_char '\\' path) in
  List.exists (fun dir -> contains ~sub:dir path) hot_dirs

(* ------------------------------------------------------------------ *)
(* Rules *)

let strip_stdlib ident =
  match String.index_opt ident '.' with
  | Some i when String.sub ident 0 i = "Stdlib" ->
      String.sub ident (i + 1) (String.length ident - i - 1)
  | _ -> ident

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Returns [Some (rule, message)] if [ident] (already Stdlib-stripped) is
   banned in the given scope. *)
let classify ~hot ident =
  if ident = "Obj.magic" then
    Some ("obj-magic", "unsafe cast defeats the type system")
  else if has_prefix ~prefix:"Obj." ident then
    Some ("obj-primitive", "unsafe runtime representation access")
  else if not hot then None
  else if ident = "compare" || ident = "Pervasives.compare" then
    Some ("polymorphic-compare", "allocates and walks the representation; use a monomorphic compare")
  else if ident = "Hashtbl.hash" || ident = "Hashtbl.seeded_hash" then
    Some ("polymorphic-hash", "polymorphic hash on the hot path; use a keyed/monomorphic hash")
  else if has_prefix ~prefix:"Printf." ident || has_prefix ~prefix:"Format." ident
  then
    Some ("printf-in-hot-path", "formatting allocates; keep it out of sim/server hot paths")
  else if
    has_prefix ~prefix:"Random." ident
    && not (has_prefix ~prefix:"Random.State." ident)
  then
    Some ("global-random", "global Random state breaks determinism; thread a Random.State.t")
  else if ident = "Unix.gettimeofday" || ident = "Unix.time" || ident = "Sys.time"
  then
    Some ("wallclock", "wall-clock read; simulated components must use sim time")
  else None

(* ------------------------------------------------------------------ *)
(* Per-file walk *)

let flatten_longident lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

let violations_of_structure ~hot ~file ast =
  let acc = ref [] in
  let visit_ident (loc : Location.t) lid =
    let raw = flatten_longident lid in
    let ident = strip_stdlib raw in
    match classify ~hot ident with
    | None -> ()
    | Some (rule, message) ->
        let p = loc.loc_start in
        acc :=
          {
            file;
            line = p.pos_lnum;
            col = p.pos_cnum - p.pos_bol;
            ident = raw;
            rule;
            message;
          }
          :: !acc
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> visit_ident loc txt
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast;
  List.rev !acc

let lint_file ~hot path =
  let parsed =
    In_channel.with_open_text path (fun ic ->
        let lexbuf = Lexing.from_channel ic in
        Lexing.set_filename lexbuf path;
        match Parse.implementation lexbuf with
        | ast -> Ok ast
        | exception exn -> Error (Printexc.to_string exn))
  in
  match parsed with
  | Ok ast -> violations_of_structure ~hot ~file:path ast
  | Error err ->
      [
        {
          file = path;
          line = 1;
          col = 0;
          ident = "";
          rule = "parse-error";
          message = err;
        };
      ]

(* ------------------------------------------------------------------ *)
(* Allowlist *)

type allow_entry = { allow_path : string; allow_ident : string }

let parse_allowlist path =
  In_channel.with_open_text path (fun ic ->
      let rec go n acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some line ->
            let line =
              match String.index_opt line '#' with
              | Some i -> String.sub line 0 i
              | None -> line
            in
            let acc =
              match
                String.split_on_char ' ' line
                |> List.concat_map (String.split_on_char '\t')
                |> List.filter (fun s -> s <> "")
              with
              | [] -> acc
              | [ allow_path; allow_ident ] -> { allow_path; allow_ident } :: acc
              | _ ->
                  failwith
                    (Printf.sprintf
                       "%s:%d: malformed allowlist line (want: <path> <ident>)"
                       path n)
            in
            go (n + 1) acc
      in
      go 1 [])

let entry_covers entry (v : violation) =
  let has_suffix ~suffix s =
    String.length s >= String.length suffix
    && String.sub s
         (String.length s - String.length suffix)
         (String.length suffix)
       = suffix
  in
  v.ident = entry.allow_ident
  && (v.file = entry.allow_path || has_suffix ~suffix:("/" ^ entry.allow_path) v.file)

(* ------------------------------------------------------------------ *)
(* Tree walk + report *)

type report = {
  violations : violation list;
  suppressed : violation list;
  stale : allow_entry list;
}

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           if name = "" || name.[0] = '.' || name.[0] = '_' then []
           else ml_files (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_tree ~allow roots =
  let files = List.concat_map ml_files roots in
  let all =
    List.concat_map (fun f -> lint_file ~hot:(is_hot_path f) f) files
  in
  let used = Array.make (List.length allow) false in
  let violations, suppressed =
    List.partition
      (fun v ->
        let covered = ref false in
        List.iteri
          (fun i e ->
            if entry_covers e v then begin
              used.(i) <- true;
              covered := true
            end)
          allow;
        not !covered)
      all
  in
  let stale =
    List.filteri (fun i _ -> not used.(i)) allow
  in
  { violations; suppressed; stale }

let pp_report ppf r =
  List.iter
    (fun v ->
      Format.fprintf ppf "%s:%d:%d: [%s] %s: %s@." v.file v.line v.col v.rule
        v.ident v.message)
    r.violations;
  List.iter
    (fun e ->
      Format.fprintf ppf
        "allowlist: stale entry '%s %s' matches nothing; remove it@."
        e.allow_path e.allow_ident)
    r.stale

let report_clean r = r.violations = [] && r.stale = []
