(** AST-level hot-path lint for the simulator and server kernel.

    Parses every [.ml] file with compiler-libs and walks the parsetree
    flagging identifiers from a ban list.  Two scopes:

    - {b all} of [lib/]: unsafe [Obj.*] primitives;
    - {b hot-path} directories ([lib/dsim], [lib/netsim], [lib/server],
      [lib/kv]): polymorphic [compare]/[Hashtbl.hash], [Printf.*] and
      [Format.*], the global [Random] state (per-state [Random.State.*]
      is fine), and wall-clock reads ([Unix.gettimeofday], [Unix.time],
      [Sys.time]) which break simulator determinism.

    Matching is purely name-based on flattened [Longident]s after
    stripping a leading [Stdlib.]; a module alias or [open] that renames
    a banned module evades it.  That trade-off (no typedtree, so no
    build-context coupling) is documented in DESIGN.md §8.

    Known-good uses are suppressed by an allowlist file of
    [<path> <ident>] lines; entries that no longer match anything are
    themselves reported, so the file cannot rot. *)

type violation = {
  file : string;
  line : int;
  col : int;
  ident : string;  (** flattened identifier as written, e.g. ["Printf.sprintf"] *)
  rule : string;  (** rule name, e.g. ["printf-in-hot-path"] *)
  message : string;
}

val is_hot_path : string -> bool
(** [true] for files under a hot-path directory (see above). *)

val lint_file : hot:bool -> string -> violation list
(** Parse [path] and return its violations, in source order.  A file that
    fails to parse yields a single [rule = "parse-error"] violation. *)

type allow_entry = { allow_path : string; allow_ident : string }

val parse_allowlist : string -> allow_entry list
(** Parse an allowlist file: one [<path> <ident>] pair per line, [#]
    comments and blank lines ignored. *)

type report = {
  violations : violation list;  (** not covered by any allow entry *)
  suppressed : violation list;  (** covered by an allow entry *)
  stale : allow_entry list;  (** entries that matched no violation *)
}

val lint_tree : allow:allow_entry list -> string list -> report
(** Recursively lint every [.ml] file under the given roots (directories
    or single files; dot- and [_]-prefixed directories are skipped),
    classifying each file as hot via [is_hot_path]. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable [file:line:col: [rule] ...] lines, plus stale allowlist
    entries. *)

val report_clean : report -> bool
(** No violations and no stale allowlist entries. *)
