let name = "Minos"

type core = {
  id : int;
  mutable idle : bool;
  batch : int Netsim.Fifo.t; (* small-core run-to-completion batch *)
  swq : int Netsim.Fifo.t; (* software queue when large/standby *)
  (* Queues hold pool slots (see [Engine.rx]): pushing ints skips the
     GC write barrier that pointer queues pay on every store. *)
  hist : Stats.Log_histogram.t; (* item sizes observed this epoch *)
}

(* Roles are assigned to {e slots}, not physical cores: [slot_core] is a
   permutation of the physical ids, the plan covers slots
   [0 .. n_active - 1] (small cores first, large cores at the tail), and a
   core the watchdog excluded sits in the slots beyond [n_active], where
   no role ever reaches it.  With no watchdog the permutation stays the
   identity and every slot computation reduces to the physical id. *)
type state = {
  eng : Engine.t;
  cfg : Config.t;
  cores : core array;
  slot_core : int array; (* slot -> physical core id *)
  core_slot : int array; (* physical core id -> slot *)
  mutable n_active : int;
  mutable excluded : int; (* physical id, -1 when none *)
  wd : Watchdog.t option;
  mutable plan : Control.plan; (* over the [n_active] slots *)
  mutable smoothed : Stats.Log_histogram.t option;
  mutable last_good_threshold : float;
  mutable standby_engaged : bool;
      (** In standby mode (n_large = 0), whether the standby core is
          currently acting as a large core.  While engaged it stops
          reading RX queues and the small cores drain its RX queue for it
          — "if a large request arrives, it is sent to this core, which
          then becomes a large core" (§3). *)
}

let size_histogram () =
  Stats.Log_histogram.create ~buckets_per_decade:32 ~min_value:1.0 ~max_value:2.0e6 ()

let profiling_cost st =
  (* The §6.2 static-threshold variant skips per-request profiling. *)
  match st.cfg.Config.static_threshold with
  | Some _ -> 0.0
  | None -> st.cfg.Config.cost.Cost_model.profile_us

let phys st slot = st.slot_core.(slot)
let standby_phys st = phys st (Control.standby_core ~cores:st.n_active)

(* PUTs on keys mastered by a large (or excluded) core may be written by
   any core and need the partition spinlock (§4.2). *)
let put_lock_cost st (req : Engine.request) =
  match req.Engine.op with
  | Cost_model.Put
    when st.core_slot.(Engine.put_master st.eng req) >= st.plan.Control.n_small ->
      st.cfg.Config.cost.Cost_model.lock_us
  | Cost_model.Put | Cost_model.Get | Cost_model.Scan -> 0.0

let standby_mode st = st.plan.Control.n_large = 0

let is_small st id =
  let slot = st.core_slot.(id) in
  slot < st.plan.Control.n_small
  && not
       (standby_mode st && st.standby_engaged
       && slot = Control.standby_core ~cores:st.n_active)

let rec step st c =
  if is_small st c.id then small_step st c else large_step st c

and wake st c =
  if c.idle then begin
    c.idle <- false;
    step st c
  end

(* ---------------- small cores ---------------- *)

and small_step st c =
  if Netsim.Fifo.is_empty c.batch then refill st c
  else classify_and_serve st c (Netsim.Fifo.pop_exn c.batch)

and classify_and_serve st c slot =
  let req = Engine.req_of_slot st.eng slot in
  let size = float_of_int req.Engine.item_size in
  Stats.Log_histogram.record c.hist size;
  Engine.obs_classify st.eng req;
  let profile = profiling_cost st in
  (* [route_idx] rather than [route]: [Some j] is a boxed allocation on
     the per-request path; [-1] encodes small. *)
  let j = Control.route_idx st.plan size in
  if j < 0 then begin
    if Engine.try_shed st.eng req ~large:false then
      Engine.busy st.eng ~core:c.id profile
    else
      Engine.execute st.eng ~core:c.id ~tx_queue:c.id
        ~extra_cpu:(profile +. put_lock_cost st req)
        req
  end
  else begin
    if Engine.try_shed st.eng req ~large:true then
      Engine.busy st.eng ~core:c.id profile
    else begin
      (* Software handoff: push onto the owning large core's queue.  In
         standby mode this engages the standby core as a large core. *)
      let target =
        st.cores.(phys st (Control.large_core_id st.plan ~cores:st.n_active j))
      in
      if standby_mode st then st.standby_engaged <- true;
      Engine.obs_handoff_enq st.eng req;
      Netsim.Fifo.push target.swq slot;
      wake st target;
      Engine.busy st.eng ~core:c.id
        (st.cfg.Config.cost.Cost_model.handoff_us +. profile)
    end
  end

(* Pull up to [limit] requests from [rx] into [c.batch]; returns the
   count.  Part of the [step] recursion rather than a local closure so
   the per-poll path allocates nothing (depth is bounded by the batch
   size, so the non-tail recursion is safe). *)
and pull_from st c rx limit =
  if limit <= 0 || Netsim.Fifo.is_empty rx then 0
  else begin
    let r = Netsim.Fifo.pop_exn rx in
    Engine.obs_poll st.eng (Engine.req_of_slot st.eng r);
    Netsim.Fifo.push c.batch r;
    1 + pull_from st c rx (limit - 1)
  end

and pull_large_shares st c share slot acc =
  if slot >= st.n_active then acc
  else
    pull_large_shares st c share (slot + 1)
      (acc + pull_from st c (Engine.rx st.eng (phys st slot)) share)

and refill st c =
  let b = st.cfg.Config.batch in
  (* Own RX queue first, then an equal share of every large core's RX
     queue, so all queues drain at the same rate (§3).  An engaged standby
     core counts as a large core here, and so does an excluded core: the
     hardware keeps spraying arrivals at both, and the small cores drain
     their RX queues for them. *)
  let pulled = pull_from st c (Engine.rx st.eng c.id) b in
  let standby_engaged = standby_mode st && st.standby_engaged in
  let ns = max 1 (st.plan.Control.n_small - if standby_engaged then 1 else 0) in
  let share = (b + ns - 1) / ns in
  let pulled = pull_large_shares st c share st.plan.Control.n_small pulled in
  let pulled =
    if standby_engaged && c.id <> standby_phys st then
      pulled + pull_from st c (Engine.rx st.eng (standby_phys st)) share
    else pulled
  in
  let pulled =
    if st.excluded >= 0 then
      pulled + pull_from st c (Engine.rx st.eng st.excluded) share
    else pulled
  in
  if pulled > 0 then
    Engine.busy st.eng ~core:c.id st.cfg.Config.cost.Cost_model.poll_us
  else c.idle <- true

(* ---------------- large cores ---------------- *)

and large_step st c =
  if not (Netsim.Fifo.is_empty c.swq) then begin
    let req = Engine.req_of_slot st.eng (Netsim.Fifo.pop_exn c.swq) in
    Engine.obs_handoff_deq st.eng req;
    Engine.execute st.eng ~core:c.id ~tx_queue:c.id
      ~extra_cpu:(put_lock_cost st req) req
  end
  else if
    (* A core that just turned large may still hold a batch it pulled
       while small; classify those so nothing is stranded. *)
    not (Netsim.Fifo.is_empty c.batch)
  then classify_and_serve st c (Netsim.Fifo.pop_exn c.batch)
  else if
    st.cfg.Config.large_rx_steal
    && st.plan.Control.n_large > 0
    && c.id <> st.excluded
  then rx_steal_step st c
  else
    (* An engaged standby core stays a large core until the next
       control epoch re-designates roles; reverting per-request
       would re-expose every batch it pulls to head-of-line
       blocking behind the next large arrival.  An excluded core
       parks here until readmitted. *)
    c.idle <- true

(* §6.1 variant: an idle large core steals a single request from a small
   core's RX queue — one at a time, so a small request is never queued
   behind a large one. *)
and rx_steal_step st c = rx_steal_scan st c 0

and rx_steal_scan st c slot =
  if slot >= st.plan.Control.n_small then c.idle <- true
  else begin
    let victim = phys st slot in
    if not (Netsim.Fifo.is_empty (Engine.rx st.eng victim)) then begin
        let req = Engine.req_of_slot st.eng (Netsim.Fifo.pop_exn (Engine.rx st.eng victim)) in
        Engine.obs_poll st.eng req;
        let size = float_of_int req.Engine.item_size in
        Stats.Log_histogram.record c.hist size;
        Engine.obs_classify st.eng req;
        if Engine.try_shed st.eng req ~large:(size > st.plan.Control.threshold)
        then
          Engine.busy st.eng ~core:c.id
            (st.cfg.Config.cost.Cost_model.steal_us +. profiling_cost st)
        else begin
          (* TX-queue discipline mirrors the size split: a stolen small
             replies on the victim's (small) TX queue so it never
             serializes behind this core's in-flight large replies; a
             stolen large stays on this large core's queue so it never
             blocks a small queue. *)
          let tx_queue = if size <= st.plan.Control.threshold then victim else c.id in
          Engine.execute st.eng ~core:c.id ~tx_queue
            ~extra_cpu:
              (st.cfg.Config.cost.Cost_model.steal_us
              +. profiling_cost st +. put_lock_cost st req)
            req
        end
    end
    else rx_steal_scan st c (slot + 1)
  end

(* ---------------- watchdog ---------------- *)

(* Swap the physical core into / out of the tail of the slot permutation;
   the plan is recomputed over the shrunken or regrown active set by the
   caller (the epoch handler). *)
let exclude st p =
  let s = st.core_slot.(p) in
  let last = st.n_active - 1 in
  let q = st.slot_core.(last) in
  st.slot_core.(s) <- q;
  st.slot_core.(last) <- p;
  st.core_slot.(q) <- s;
  st.core_slot.(p) <- last;
  st.n_active <- st.n_active - 1;
  st.excluded <- p

let readmit st p =
  (* The excluded core already sits at slot [n_active]; growing the
     active set re-covers it. *)
  st.n_active <- st.n_active + 1;
  st.excluded <- -1;
  ignore p

let watchdog_tick st =
  match st.wd with
  | None -> false
  | Some wd -> (
      match
        Watchdog.observe wd
          ~ops:(Engine.core_ops_live st.eng)
          ~depth:(fun c -> Netsim.Fifo.length (Engine.rx st.eng c))
      with
      | Watchdog.No_change -> false
      | Watchdog.Exclude p ->
          exclude st p;
          true
      | Watchdog.Readmit p ->
          readmit st p;
          true)

(* ---------------- control loop ---------------- *)

(* Recompute the plan over the current active set.  The raw threshold (the
   configured override or the smoothed histogram's percentile) passes
   through the fault plan's corruption window, then — when hardening is
   configured — through {!Control.sanitize}; the plan is derived from
   whatever survives. *)
let recompute st =
  match st.smoothed with
  | None -> (
      match st.cfg.Config.static_threshold with
      | Some threshold -> { (Control.initial ~cores:st.n_active) with Control.threshold }
      | None -> Control.initial ~cores:st.n_active)
  | Some smoothed ->
      let raw =
        match st.cfg.Config.static_threshold with
        | Some t -> t
        | None -> Stats.Log_histogram.quantile smoothed st.cfg.Config.percentile
      in
      let corrupted = Engine.corrupt_threshold st.eng raw in
      let threshold =
        match st.cfg.Config.clamp_threshold with
        | None -> corrupted
        | Some _ ->
            Control.sanitize ~last_good:st.last_good_threshold
              ~clamp:st.cfg.Config.clamp_threshold corrupted
      in
      if Float.is_finite threshold && threshold > 0.0 then
        st.last_good_threshold <- threshold;
      Control.compute ~cores:st.n_active ~cost_fn:st.cfg.Config.cost_fn
        ~percentile:st.cfg.Config.percentile ~threshold_override:threshold
        ~extra_large_core:st.cfg.Config.large_rx_steal smoothed

let on_epoch st () =
  let set_changed = watchdog_tick st in
  let stale = Engine.ctrl_delayed st.eng in
  let merged = size_histogram () in
  Array.iter
    (fun c ->
      Stats.Log_histogram.merge_into ~dst:merged c.hist;
      Stats.Log_histogram.reset c.hist)
    st.cores;
  let fresh = (not stale) && not (Stats.Log_histogram.is_empty merged) in
  if fresh then
    st.smoothed <-
      Some
        (match st.smoothed with
        | None -> merged
        | Some prev ->
            Stats.Log_histogram.smooth ~prev ~current:merged
              ~alpha:st.cfg.Config.alpha);
  if fresh || set_changed then begin
    let new_plan = recompute st in
    let old_plan = st.plan in
    st.plan <- new_plan;
    (* Each epoch re-designates roles; a previously engaged standby core
       returns to small duty once its queue is clear. *)
    st.standby_engaged <-
      new_plan.Control.n_large = 0
      && not (Netsim.Fifo.is_empty st.cores.(standby_phys st).swq);
    (* Requests queued for cores whose role or range changed are
       re-routed under the new plan; an active-set change displaces
       everything queued at the excluded/readmitted core too. *)
    if
      set_changed
      || new_plan.Control.n_small <> old_plan.Control.n_small
      || new_plan.Control.ranges <> old_plan.Control.ranges
    then begin
      let displaced = ref [] in
      Array.iter
        (fun c ->
          let rec drain () =
            match Netsim.Fifo.pop c.swq with
            | Some r ->
                displaced := r :: !displaced;
                drain ()
            | None -> ()
          in
          drain ();
          (* An excluded core's staged batch would otherwise be served at
             its degraded speed; reclaim it. *)
          if c.id = st.excluded then
            while not (Netsim.Fifo.is_empty c.batch) do
              displaced := Netsim.Fifo.pop_exn c.batch :: !displaced
            done)
        st.cores;
      List.iter
        (fun slot ->
          let r = Engine.req_of_slot st.eng slot in
          match Control.route st.plan (float_of_int r.Engine.item_size) with
          | Some j ->
              if standby_mode st then st.standby_engaged <- true;
              Engine.obs_handoff_enq st.eng r;
              Netsim.Fifo.push
                st.cores.(phys st (Control.large_core_id st.plan ~cores:st.n_active j))
                  .swq slot
          | None ->
              (* Under the new threshold this queued request counts as
                 small; stage it in a (small) core's local batch. *)
              Netsim.Fifo.push st.cores.(standby_phys st).batch slot)
        (List.rev !displaced)
    end;
    (* Charge the aggregation work to the first active core if it is
       idle; when busy the merge overlaps with request processing. *)
    let c0 = st.cores.(phys st 0) in
    if c0.idle then begin
      c0.idle <- false;
      Engine.busy st.eng ~core:c0.id st.cfg.Config.cost.Cost_model.epoch_aggregate_us
    end;
    (* Roles may have changed: give every core a chance to find work. *)
    Array.iter (fun c -> wake st c) st.cores
  end

let make eng =
  let cfg = Engine.config eng in
  let n = Engine.cores eng in
  let st =
    {
      eng;
      cfg;
      cores =
        Array.init n (fun id ->
            {
              id;
              idle = true;
              batch = Netsim.Fifo.create ~dummy:(-1) ();
              swq = Netsim.Fifo.create ~dummy:(-1) ();
              hist = size_histogram ();
            });
      slot_core = Array.init n (fun i -> i);
      core_slot = Array.init n (fun i -> i);
      n_active = n;
      excluded = -1;
      wd = (if cfg.Config.watchdog then Some (Watchdog.create ~cores:n ()) else None);
      plan =
        (match cfg.Config.static_threshold with
        | Some threshold ->
            { (Control.initial ~cores:n) with Control.threshold }
        | None -> Control.initial ~cores:n);
      smoothed = None;
      last_good_threshold = infinity;
      standby_engaged = false;
    }
  in
  Engine.set_resume eng (fun id -> step st st.cores.(id));
  {
    Engine.name;
    dispatch =
      (fun req ->
        (* Clients are unaware of roles: GETs (and SCANs) go to a random
           RX queue, PUTs to the keyhash queue (§3). *)
        match req.Engine.op with
        | Cost_model.Get | Cost_model.Scan -> Engine.uniform_queue eng
        | Cost_model.Put -> Engine.put_master eng req);
    on_arrival =
      (fun ~queue ->
        if is_small st queue then begin
          let owner = st.cores.(queue) in
          if owner.idle then wake st owner
          else if st.cfg.Config.large_rx_steal then
            (* An idle large core may steal the queued request. *)
            match
              Array.find_opt
                (fun c -> c.idle && (not (is_small st c.id)) && c.id <> st.excluded)
                st.cores
            with
            | Some thief -> wake st thief
            | None -> ()
        end
        else
          (* Large (and excluded) cores never read their own RX queue;
             wake an idle small core to drain it. *)
          match
            Array.find_opt (fun c -> c.idle && is_small st c.id) st.cores
          with
          | Some helper -> wake st helper
          | None -> ());
    on_epoch = on_epoch st;
    large_core_count =
      (fun () ->
        if standby_mode st && st.standby_engaged then 1 else st.plan.Control.n_large);
    current_threshold = (fun () -> st.plan.Control.threshold);
  }
