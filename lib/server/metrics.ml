type t = {
  design : string;
  offered_mops : float;
  issued : int;
  completed : int;
  throughput_mops : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  small_p99_us : float;
  large_p99_us : float;
  nic_tx_utilization : float;
  stable : bool;
  per_core_ops : int array;
  per_core_packets : int array;
  final_large_cores : int;
  final_threshold : float;
  p99_series : (float * float) list;
  large_core_series : (float * int) list;
  in_flight_end : int;
  mean_queue_wait_us : float;
  mean_service_us : float;
  mean_tx_wait_us : float;
  served_total : int;
  net_dropped : int;
  rx_dropped : int;
  shed_small : int;
  shed_large : int;
  expired_misses : int;
  expired_keys : int;
  evicted_keys : int;
}

let shed_total t = t.shed_small + t.shed_large
let lost_total t = t.net_dropped + t.rx_dropped + shed_total t

let goodput_fraction t =
  if t.issued = 0 then 1.0
  else float_of_int (t.issued - lost_total t) /. float_of_int t.issued

let pp_row fmt t =
  Format.fprintf fmt
    "%-10s offered=%.2fM tput=%.2fM mean=%.1fus p50=%.1f p99=%.1f p999=%.1f nic=%.0f%%%s"
    t.design t.offered_mops t.throughput_mops t.mean_us t.p50_us t.p99_us t.p999_us
    (100.0 *. t.nic_tx_utilization)
    (if t.stable then "" else " UNSTABLE");
  if lost_total t > 0 then
    Format.fprintf fmt " lost: net=%d ring=%d shed=%d(%dL) goodput=%.1f%%"
      t.net_dropped t.rx_dropped (shed_total t) t.shed_large
      (100.0 *. goodput_fraction t);
  if t.expired_misses > 0 || t.expired_keys > 0 || t.evicted_keys > 0 then
    Format.fprintf fmt " residency: miss=%d expired=%d evicted=%d" t.expired_misses
      t.expired_keys t.evicted_keys

let pp_breakdown fmt t =
  Format.fprintf fmt
    "%-10s small_p99=%.1fus large_p99=%.1fus wait: queue=%.1f service=%.1f tx=%.1f (mean us)"
    t.design t.small_p99_us t.large_p99_us t.mean_queue_wait_us t.mean_service_us
    t.mean_tx_wait_us
