type knob =
  | Handoff_cores
  | Static_threshold
  | Large_rx_steal
  | Watchdog
  | Erew_dispatch

let knob_name = function
  | Handoff_cores -> "handoff_cores"
  | Static_threshold -> "static_threshold"
  | Large_rx_steal -> "large_rx_steal"
  | Watchdog -> "watchdog"
  | Erew_dispatch -> "hkh_erew"

let knob_equal (a : knob) (b : knob) =
  match (a, b) with
  | Handoff_cores, Handoff_cores
  | Static_threshold, Static_threshold
  | Large_rx_steal, Large_rx_steal
  | Watchdog, Watchdog
  | Erew_dispatch, Erew_dispatch ->
      true
  | _ -> false

module type S = sig
  val name : string
  val aliases : string list
  val summary : string
  val knobs : knob list
  val make : Engine.t -> Engine.design
end

type t = (module S)

let name (d : t) =
  let module D = (val d) in
  D.name

let summary (d : t) =
  let module D = (val d) in
  D.summary

let knobs (d : t) =
  let module D = (val d) in
  D.knobs

let supports d k = List.exists (knob_equal k) (knobs d)

let make (d : t) =
  let module D = (val d) in
  D.make

let equal a b = String.equal (name a) (name b)

(* ---------------- builtins ---------------- *)

let minos : t =
  (module struct
    let name = Design_minos.name
    let aliases = [ "minos" ]
    let summary = "size-aware sharding: adaptive threshold + core partition"
    let knobs = [ Static_threshold; Large_rx_steal; Watchdog ]
    let make = Design_minos.make
  end)

let hkh : t =
  (module struct
    let name = Design_hkh.name
    let aliases = [ "hkh"; "keyhash" ]
    let summary = "hardware keyhash baseline (CREW GETs, keyed PUTs)"
    let knobs = [ Erew_dispatch ]
    let make = Design_hkh.make
  end)

let hkh_ws : t =
  (module struct
    let name = Design_hkh_ws.name
    let aliases = [ "hkh+ws"; "hkh_ws"; "hkhws"; "ws" ]
    let summary = "keyhash dispatch with idle-core work stealing"
    let knobs = []
    let make = Design_hkh_ws.make
  end)

let sho : t =
  (module struct
    let name = Design_sho.name
    let aliases = [ "sho" ]
    let summary = "static handoff cores forwarding by size class"
    let knobs = [ Handoff_cores ]
    let make = Design_sho.make
  end)

(* ---------------- registry ---------------- *)

let registry : t list ref = ref []

let spellings d =
  let module D = (val d : S) in
  String.lowercase_ascii D.name :: List.map String.lowercase_ascii D.aliases

let register d =
  let taken = List.concat_map spellings !registry in
  List.iter
    (fun s ->
      if List.exists (String.equal s) taken then
        invalid_arg ("Design.register: name or alias already taken: " ^ s))
    (spellings d);
  registry := !registry @ [ d ]

let () = List.iter register [ minos; hkh; hkh_ws; sho ]

let all () = !registry

let find s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun d -> List.exists (String.equal s) (spellings d)) !registry
