(** Results of one simulated run. *)

type t = {
  design : string;
  offered_mops : float;       (** configured arrival rate *)
  issued : int;               (** requests generated *)
  completed : int;            (** replies delivered inside the window *)
  throughput_mops : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  small_p99_us : float;       (** 99p over requests for truly small items;
                                  [nan] when no samples *)
  large_p99_us : float;       (** 99p over requests for truly large items *)
  nic_tx_utilization : float; (** over the measurement window *)
  stable : bool;              (** backlog did not grow without bound *)
  per_core_ops : int array;
  per_core_packets : int array;
  final_large_cores : int;    (** Minos: n_large at end of run; others 0 *)
  final_threshold : float;    (** Minos: size threshold; [nan] otherwise *)
  p99_series : (float * float) list;
      (** per-window (start µs, p99 µs), when windowing was enabled *)
  large_core_series : (float * int) list;
      (** per-epoch (time µs, n_large), Minos only *)
  in_flight_end : int;
  mean_queue_wait_us : float;
      (** time from arrival to the start of service — where head-of-line
          blocking shows up *)
  mean_service_us : float; (** CPU occupancy per request *)
  mean_tx_wait_us : float;
      (** from end of service to the reply leaving the wire (queueing at
          the NIC + transmission) *)
  served_total : int;
      (** operations fully processed {e with a live item} over the whole
          run (incl. warmup); with the loss counters below this
          telescopes:
          [issued = served_total + net_dropped + rx_dropped + shed_small
          + shed_large + expired_misses + in_flight_end] *)
  net_dropped : int;  (** lost by the (faulty) NIC before any queue *)
  rx_dropped : int;   (** tail-dropped at a full RX ring *)
  shed_small : int;   (** shed by admission control, small-classified *)
  shed_large : int;   (** shed by admission control, large-classified *)
  expired_misses : int;
      (** GETs processed but answered not-found because the item had
          expired, been evicted, or was never loaded (TTL / larger-than-
          memory scenarios); 0 otherwise *)
  expired_keys : int; (** items reclaimed past their TTL deadline *)
  evicted_keys : int; (** live items evicted by the memory budget *)
}

val shed_total : t -> int
val lost_total : t -> int
(** [net_dropped + rx_dropped + shed]: offered load that produced no
    reply.  A lossy run can never masquerade as a healthy one — {!pp_row}
    appends the loss/goodput segment whenever this is nonzero. *)

val goodput_fraction : t -> float
(** Fraction of issued requests not lost ([1.0] for a healthy run). *)

val pp_row : Format.formatter -> t -> unit
(** One human-readable summary line. *)

val pp_breakdown : Format.formatter -> t -> unit
(** Verbose companion to {!pp_row}: per-class tails ([small_p99]/
    [large_p99]) plus the mean wait breakdown (queue / service / TX), the
    coarse engine-side counterpart of the per-span {!Obs.Anatomy}. *)
