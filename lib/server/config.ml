type t = {
  cores : int;
  batch : int;
  tx_gbps : float;
  cost : Cost_model.t;
  cost_fn : Cost_model.cost_fn;
  sampling : float;
  duration_us : float;
  warmup_us : float;
  seed : int;
  epoch_us : float;
  alpha : float;
  percentile : float;
  handoff_cores : int;
  static_threshold : float option;
  window_us : float option;
  large_rx_steal : bool;
  hkh_erew : bool;
  rx_capacity : int option;
  shed_watermark : int option;
  watchdog : bool;
  clamp_threshold : float option;
}

let default =
  {
    cores = 8;
    batch = 32;
    tx_gbps = 40.0;
    cost = Cost_model.default;
    cost_fn = Cost_model.Packets;
    sampling = 1.0;
    duration_us = 1_500_000.0;
    warmup_us = 500_000.0;
    seed = 42;
    epoch_us = 150_000.0;
    alpha = 0.9;
    percentile = 0.99;
    handoff_cores = 1;
    static_threshold = None;
    window_us = None;
    large_rx_steal = false;
    hkh_erew = false;
    rx_capacity = None;
    shed_watermark = None;
    watchdog = false;
    clamp_threshold = None;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.cores < 2 then err "need at least 2 cores"
  else if t.batch < 1 then err "batch must be >= 1"
  else if not (t.tx_gbps > 0.0) then err "tx_gbps must be > 0"
  else if t.sampling <= 0.0 || t.sampling > 1.0 then err "sampling out of (0, 1]"
  else if not (t.warmup_us < t.duration_us) then err "warmup must precede duration end"
  else if not (t.epoch_us > 0.0) then err "epoch must be positive"
  else if t.alpha < 0.0 || t.alpha > 1.0 then err "alpha out of [0, 1]"
  else if t.percentile <= 0.0 || t.percentile > 1.0 then err "percentile out of (0, 1]"
  else if t.handoff_cores < 1 || t.handoff_cores >= t.cores then
    err "handoff_cores out of [1, cores)"
  else if (match t.rx_capacity with Some c -> c < 1 | None -> false) then
    err "rx_capacity must be >= 1"
  else if (match t.shed_watermark with Some w -> w < 1 | None -> false) then
    err "shed_watermark must be >= 1"
  else if
    match t.clamp_threshold with
    | Some c -> not (c > 0.0) || Float.is_nan c
    | None -> false
  then err "clamp_threshold must be > 0"
  else Ok ()
