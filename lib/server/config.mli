(** Server/simulation configuration shared by all designs. *)

type t = {
  cores : int;            (** physical cores = RX queues (paper: 8) *)
  batch : int;            (** RX poll batch size (paper: 32) *)
  tx_gbps : float;        (** NIC line rate (paper: 40) *)
  cost : Cost_model.t;
  cost_fn : Cost_model.cost_fn; (** control-loop cost function (§3) *)
  sampling : float;       (** fraction of GET replies actually sent (§6.4);
                              1.0 = reply to everything *)
  duration_us : float;    (** simulated run length *)
  warmup_us : float;      (** excluded from all reported statistics *)
  seed : int;
  epoch_us : float;       (** Minos statistics/adaptation epoch (paper: 1 s;
                              scaled down with our shorter runs) *)
  alpha : float;          (** histogram smoothing weight of the new epoch
                              (paper: 0.9) *)
  percentile : float;     (** size percentile defining the threshold (0.99) *)
  handoff_cores : int;    (** SHO handoff core count (paper tried 1–3) *)
  static_threshold : float option;
      (** §6.2 offline variant: fix the size threshold and skip per-request
          profiling (no [profile_us] charge) *)
  window_us : float option; (** record per-window p99 series (Fig. 10) *)
  large_rx_steal : bool;  (** §6.1 future-work variant: large cores steal
                              single requests from small cores' RX queues
                              when their own queue is empty *)
  hkh_erew : bool;        (** MICA EREW mode for the HKH baseline: GETs are
                              also dispatched to the key's master core
                              (better locality, but zipfian skew
                              concentrates load on hot cores).  The paper
                              uses CREW — GETs to random cores — "the best
                              on skewed read-dominated workloads". *)
  rx_capacity : int option;
      (** bound each RX queue's depth; arrivals beyond it are tail-dropped
          and counted ([None] = unbounded, the healthy-NIC model).  A
          fault plan's ring squeeze lowers the effective bound further. *)
  shed_watermark : int option;
      (** overload control: when the total RX backlog exceeds this depth,
          large-class requests are shed at classification (small requests
          too beyond 4x the watermark); [None] disables shedding *)
  watchdog : bool;
      (** detect a stalled/degraded core from per-epoch progress and RX
          depth, and re-derive the small/large split excluding it
          (Minos only) *)
  clamp_threshold : float option;
      (** control-loop hardening: maximum fractional movement of the size
          threshold per epoch (e.g. [0.5] allows x0.5..x1.5); NaN or
          non-positive thresholds always fall back to the last good one
          when set *)
}

val default : t
(** 8 cores, batch 32, 40 Gbit, 1.5 s simulated (0.5 s warm-up), 150 ms
    epochs, α = 0.9, packets cost function, 1 SHO handoff core. *)

val validate : t -> (unit, string) result
