type t = {
  base_cpu_us : float;
  per_packet_us : float;
  per_byte_us : float;
  pipeline_latency_us : float;
  poll_us : float;
  handoff_us : float;
  steal_us : float;
  lock_us : float;
  profile_us : float;
  epoch_aggregate_us : float;
}

(* Calibration (see DESIGN.md §3): the NIC must be the first bottleneck on
   the default workload, as on the paper's platform — mean TX bytes/op
   ≈ 810 B gives a 40 Gbit ceiling of ≈ 6.2 Mops (the paper's peak, at 93 %
   NIC utilization), while 8 cores at ≈ 1.03 µs CPU/op could do ≈ 7.7 Mops.
   The ≈ 5 µs no-load mean service latency comes from pipeline + CPU +
   wire. *)
let default =
  {
    base_cpu_us = 0.75;
    per_packet_us = 0.10;
    per_byte_us = 0.0002;
    pipeline_latency_us = 3.5;
    poll_us = 0.2;
    handoff_us = 0.18;
    steal_us = 0.3;
    lock_us = 0.05;
    profile_us = 0.03;
    epoch_aggregate_us = 100.0;
  }

let key_size = 8

type op = Get | Put | Scan

(* For a SCAN, [item_size] is the total bytes of the scanned range: the
   reply carries them all, so the per-byte and per-frame terms below price
   the whole range exactly like an equally-sized GET. *)
let reply_payload op ~item_size =
  match op with
  | Get | Scan -> Proto.Wire.get_reply_size ~value_len:item_size
  | Put -> Proto.Wire.put_reply_size

let request_payload op ~item_size =
  match op with
  | Get -> Proto.Wire.get_request_size ~key_len:key_size
  | Put -> Proto.Wire.put_request_size ~key_len:key_size ~value_len:item_size
  | Scan -> Proto.Wire.scan_request_size ~key_len:key_size

let request_frames op ~item_size =
  Netsim.Frame.frames_for_payload (request_payload op ~item_size)

let reply_frames op ~item_size =
  Netsim.Frame.frames_for_payload (reply_payload op ~item_size)

let cpu_time t op ~item_size =
  (* The dominant per-byte work is on the side that carries the value:
     the reply for a GET, the request for a PUT. *)
  let frames = request_frames op ~item_size + reply_frames op ~item_size in
  t.base_cpu_us
  +. (t.per_packet_us *. float_of_int frames)
  +. (t.per_byte_us *. float_of_int item_size)

type cost_fn = Packets | Bytes | Constant_plus_bytes of float

let request_cost fn op ~item_size =
  match fn with
  | Packets ->
      (* "either the number of packets in an incoming PUT request or the
         number of packets in an outgoing GET reply" (§3) *)
      float_of_int
        (match op with
        | Get -> reply_frames Get ~item_size
        | Put -> request_frames Put ~item_size
        | Scan -> reply_frames Scan ~item_size)
  | Bytes -> float_of_int item_size
  | Constant_plus_bytes c -> c +. float_of_int item_size

let cost_fn_name = function
  | Packets -> "packets"
  | Bytes -> "bytes"
  | Constant_plus_bytes c -> Printf.sprintf "const(%.0f)+bytes" c

let cost_of_size fn size =
  let item_size = int_of_float (Float.max 0.0 size) in
  request_cost fn Get ~item_size
