(** First-class server designs and the design registry.

    Every server policy the repo implements (Minos, the keyhash baseline,
    keyhash + work stealing, the static handoff design) is exposed as one
    value of type {!t}: a first-class module carrying the display name,
    CLI aliases, a one-line summary, the set of {!Config.t} knobs the
    design reads, and the [make] entry point {!Engine.run} consumes.

    Callers select designs exclusively through this interface — by value
    ({!minos}, {!hkh}, …), by name ({!find}) or by enumeration ({!all});
    nothing outside this module pattern-matches on which design is which.
    Extensions can {!register} additional designs and they become
    reachable from the CLI, sweeps and the cluster layer for free. *)

type knob =
  | Handoff_cores      (** [Config.handoff_cores] *)
  | Static_threshold   (** [Config.static_threshold] *)
  | Large_rx_steal     (** [Config.large_rx_steal] *)
  | Watchdog           (** [Config.watchdog] *)
  | Erew_dispatch      (** [Config.hkh_erew] *)

val knob_name : knob -> string
(** The [Config.t] field the knob corresponds to, e.g. ["handoff_cores"]. *)

(** The signature a server design implements. *)
module type S = sig
  val name : string
  (** Display name, unique across the registry (e.g. ["Minos"]). *)

  val aliases : string list
  (** Extra lowercase spellings {!find} accepts, e.g. ["hkh_ws"; "ws"]. *)

  val summary : string
  (** One-line description for [--help] and reports. *)

  val knobs : knob list
  (** Which {!Config.t} knobs this design reads. *)

  val make : Engine.t -> Engine.design
  (** Build the scheduling policy for one engine run. *)
end

type t = (module S)

val name : t -> string
val summary : t -> string
val knobs : t -> knob list

val supports : t -> knob -> bool
(** Whether the design reads the given knob (e.g. SHO supports
    [Handoff_cores], so sweeps may search over handoff core counts). *)

val make : t -> Engine.t -> Engine.design

val equal : t -> t -> bool
(** Designs compare by {!name} (first-class modules have no meaningful
    structural equality). *)

val minos : t
(** The paper's size-aware design: adaptive threshold + core partition. *)

val hkh : t
(** Hardware keyhash baseline (CREW; EREW under [Erew_dispatch]). *)

val hkh_ws : t
(** Keyhash dispatch with idle-core work stealing. *)

val sho : t
(** Static handoff: dedicated handoff cores forward by size class. *)

val register : t -> unit
(** Add a design to the registry.  Raises [Invalid_argument] when a design
    with the same {!name} (or a clashing alias) is already registered. *)

val all : unit -> t list
(** Registered designs, in registration order (builtins first:
    [minos; hkh; hkh_ws; sho]). *)

val find : string -> t option
(** Case-insensitive lookup by name or alias. *)
