type t = {
  cores : int;
  condemn_after : int;
  forgive_after : int;
  depth_floor : int;
  ops_frac : float;
  last_ops : int array;
  sick_streak : int array;
  delta_ops : int array; (* scratch, rewritten every observe *)
  mutable excluded : int;
  mutable excluded_for : int;
}

type verdict = No_change | Exclude of int | Readmit of int

let create ?(condemn_after = 2) ?(forgive_after = 8) ?(depth_floor = 64)
    ?(ops_frac = 0.25) ~cores () =
  if cores < 2 then invalid_arg "Watchdog.create: need at least 2 cores";
  if condemn_after < 1 || forgive_after < 1 then
    invalid_arg "Watchdog.create: epochs must be >= 1";
  {
    cores;
    condemn_after;
    forgive_after;
    depth_floor;
    ops_frac;
    last_ops = Array.make cores 0;
    sick_streak = Array.make cores 0;
    delta_ops = Array.make cores 0;
    excluded = -1;
    excluded_for = 0;
  }

let excluded t = t.excluded

let observe t ~ops ~depth =
  for c = 0 to t.cores - 1 do
    t.delta_ops.(c) <- ops.(c) - t.last_ops.(c);
    t.last_ops.(c) <- ops.(c)
  done;
  (* Best per-epoch progress among active peers: the yardstick a healthy
     core should track. *)
  let max_peer = ref 0 in
  for c = 0 to t.cores - 1 do
    if c <> t.excluded && t.delta_ops.(c) > !max_peer then
      max_peer := t.delta_ops.(c)
  done;
  let floor_ops =
    int_of_float (t.ops_frac *. float_of_int !max_peer)
  in
  for c = 0 to t.cores - 1 do
    if c = t.excluded then t.sick_streak.(c) <- 0
    else if
      depth c > t.depth_floor
      && (!max_peer = 0 || t.delta_ops.(c) < floor_ops)
    then t.sick_streak.(c) <- t.sick_streak.(c) + 1
    else t.sick_streak.(c) <- 0
  done;
  if t.excluded >= 0 then begin
    t.excluded_for <- t.excluded_for + 1;
    if t.excluded_for >= t.forgive_after then begin
      let c = t.excluded in
      t.excluded <- -1;
      t.excluded_for <- 0;
      t.sick_streak.(c) <- 0;
      Readmit c
    end
    else No_change
  end
  else begin
    (* Condemn the worst offender: longest streak, deepest queue on ties.
       Never drop below 2 active cores. *)
    let worst = ref (-1) in
    for c = 0 to t.cores - 1 do
      if t.sick_streak.(c) >= t.condemn_after then
        if
          !worst < 0
          || t.sick_streak.(c) > t.sick_streak.(!worst)
          || (t.sick_streak.(c) = t.sick_streak.(!worst) && depth c > depth !worst)
        then worst := c
    done;
    if !worst >= 0 && t.cores > 2 then begin
      t.excluded <- !worst;
      t.excluded_for <- 0;
      Exclude !worst
    end
    else No_change
  end
