(** Stalled-core detection for the Minos control loop.

    Consumes the same per-epoch signals {!Obs.Timeline} records — per-core
    served-operation progress and RX queue depth — and decides, with
    hysteresis, whether one core should be excluded from the small/large
    split.  (Utilization alone cannot distinguish a degraded core from a
    loaded one: a 50x-slowed core is fully busy; a dead one is fully
    idle.  Progress-versus-peers catches both.)

    A core is {e sick} in an epoch when its RX queue is backed up beyond
    [depth_floor] {e and} it is making almost no progress relative to its
    best peer ([ops_frac]) — that covers both a dead core (utilization
    ~0, queue growing) and a degraded one (fully busy at 50x cost, queue
    growing).  [condemn_after] consecutive sick epochs exclude it;
    [forgive_after] epochs later it is readmitted on probation and must
    prove itself again (a still-sick core is re-condemned after another
    [condemn_after] epochs).  At most one core is excluded at a time, and
    never below 2 remaining active cores. *)

type t

type verdict =
  | No_change
  | Exclude of int  (** physical core id to remove from the active set *)
  | Readmit of int  (** probation over: return the core to duty *)

val create :
  ?condemn_after:int ->
  ?forgive_after:int ->
  ?depth_floor:int ->
  ?ops_frac:float ->
  cores:int ->
  unit ->
  t
(** Defaults: condemn after 2 sick epochs, forgive after 8 excluded
    epochs, depth floor 64 requests, progress fraction 0.25. *)

val observe : t -> ops:int array -> depth:(int -> int) -> verdict
(** Called once per control epoch with the live cumulative per-core
    served-ops counters ({!Engine.core_ops_live}); the watchdog keeps
    last-epoch snapshots internally and diffs.  Returns at most one
    exclusion/readmission per call. *)

val excluded : t -> int
(** Currently excluded physical core, [-1] when none. *)
