(** Model-side residency: TTL expiry and memory-budgeted eviction for the
    simulated store.

    Tracks, per key id, whether the item is in memory, its TTL deadline
    and its last access, without materializing values — item sizes come
    from the dataset, so [populated + inserts = resident + evicted +
    expired] holds exactly (the eviction-conservation test asserts it).

    Eviction is sampled LRU (pick a few random residents, evict the
    coldest), and the background expiry sweep is chunked and cursor-based
    so the DES can schedule it as a periodic event.  All per-request
    operations ({!on_get}, {!on_put}, {!sweep_step}) are allocation-free. *)

type t

val create : ?ttl_us:float -> ?budget_bytes:int -> Workload.Dataset.t -> t
(** Defaults: no TTL ([infinity]), no memory budget ([max_int]). *)

val populate : t -> now:float -> int
(** Load keys in id order until the budget is reached; returns the number
    resident (the whole dataset when it fits). *)

val on_get : t -> now:float -> int -> bool
(** True iff the key is resident and live at [now].  An expired resident
    key is reclaimed here (lazy expiry); any [false] counts as a miss
    ({!expired_misses}). *)

val on_put : t -> now:float -> Dsim.Rng.t -> int -> unit
(** (Re)insert the key and refresh its TTL deadline, then evict sampled-
    LRU victims while over budget. *)

val sweep_step : t -> now:float -> chunk:int -> int
(** Examine up to [chunk] resident keys from a wrapping cursor, reclaiming
    lapsed ones; returns the number reclaimed. *)

val is_resident : t -> int -> bool

val resident : t -> int

val mem_used : t -> int

val budget_bytes : t -> int

val inserts : t -> int
(** Insertions, including the initial {!populate}. *)

val evicted_keys : t -> int
(** Victims evicted while still live (past-deadline victims count as
    {!expired_keys} instead). *)

val expired_keys : t -> int
(** Keys reclaimed past their deadline — lazily on read, by the sweep, or
    as already-dead eviction victims. *)

val expired_misses : t -> int
(** GETs that found no live resident item (expired, evicted, or never
    loaded) — the new leg of the telescoping identity. *)
