(** Service-cost model of the simulated server.

    Two distinct quantities per request (see DESIGN.md §3):

    - {b CPU occupancy}: the time a core is unavailable while serving the
      request.  Calibrated so that 8 cores peak around the paper's 6.2 Mops
      on the default workload.
    - {b pipeline latency}: fixed non-CPU latency (NIC DMA, PCIe, wires)
      added to every response time but overlapped across requests.
      Calibrated so the default workload's mean service latency is ~5 µs,
      as the paper states for its platform.

    Reply transmission time on the 40 Gbit link is modelled separately by
    {!Netsim.Txlink}.

    The module also provides the {e cost function} used by Minos' control
    loop to size the small/large core pools (§3: "currently uses the number
    of network packets handled to serve the request"). *)

type t = {
  base_cpu_us : float;       (** per-request fixed CPU cost *)
  per_packet_us : float;     (** per network frame handled *)
  per_byte_us : float;       (** per payload byte touched *)
  pipeline_latency_us : float; (** non-CPU latency added to response time *)
  poll_us : float;           (** cost of one RX/ring poll that found work *)
  handoff_us : float;        (** software dispatch of one request *)
  steal_us : float;          (** one steal attempt that found work *)
  lock_us : float;           (** taking the partition spinlock on a PUT *)
  profile_us : float;        (** Minos per-request size-histogram update *)
  epoch_aggregate_us : float;(** Minos per-epoch histogram merge on core 0 *)
}

val default : t

val key_size : int
(** Constant 8-byte keys (§5.3). *)

type op = Get | Put | Scan

val reply_payload : op -> item_size:int -> int
(** Encoded reply bytes: GET (and SCAN) replies carry the value bytes —
    for a SCAN, [item_size] is the {e total} bytes of the scanned range —
    PUT replies do not. *)

val request_payload : op -> item_size:int -> int

val request_frames : op -> item_size:int -> int

val reply_frames : op -> item_size:int -> int

val cpu_time : t -> op -> item_size:int -> float
(** CPU occupancy of serving the request (excluding poll/handoff/steal
    surcharges, which depend on the design). *)

(** The control loop's per-request cost function (§3). *)
type cost_fn =
  | Packets                   (** frames in + frames out (paper default) *)
  | Bytes                     (** payload bytes *)
  | Constant_plus_bytes of float (** [c] + payload bytes *)

val request_cost : cost_fn -> op -> item_size:int -> float

val cost_fn_name : cost_fn -> string

val cost_of_size : cost_fn -> float -> float
(** Cost of a GET for an item of (bucketized, hence float) size; used when
    deriving core allocations from size histograms. *)
