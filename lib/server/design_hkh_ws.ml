let name = "HKH+WS"

(* [swq] holds pool slots (see [Engine.rx]): int queues skip the GC
   write barrier on every push. *)
type core = { id : int; mutable idle : bool; swq : int Netsim.Fifo.t }

let make eng =
  let cfg = Engine.config eng in
  let n = Engine.cores eng in
  let cost = cfg.Config.cost in
  let cores =
    Array.init n (fun id ->
        { id; idle = true; swq = Netsim.Fifo.create ~dummy:(-1) () })
  in
  let steal_rng = Dsim.Sim.fork_rng (Engine.sim eng) in
  let move_batch src dst =
    let pulled = ref 0 in
    while !pulled < cfg.Config.batch && not (Netsim.Fifo.is_empty src) do
      (* Both call sites move RX → software queue: the pop is the poll,
         the push the handoff enqueue. *)
      let r = Netsim.Fifo.pop_exn src in
      let req = Engine.req_of_slot eng r in
      Engine.obs_poll eng req;
      Engine.obs_handoff_enq eng req;
      Netsim.Fifo.push dst r;
      incr pulled
    done;
    !pulled
  in
  (* PUTs executed by a non-master core need the partition spinlock. *)
  let put_lock_cost c req =
    match req.Engine.op with
    | Cost_model.Put when Engine.put_master eng req <> c.id -> cost.Cost_model.lock_us
    | Cost_model.Put | Cost_model.Get | Cost_model.Scan -> 0.0
  in
  (* Size-oblivious: admission control classifies by a fixed cutoff. *)
  let shed_large (req : Engine.request) = req.Engine.item_size > 65536 in
  let rec step c =
    if not (Netsim.Fifo.is_empty c.swq) then begin
      let req = Engine.req_of_slot eng (Netsim.Fifo.pop_exn c.swq) in
      Engine.obs_handoff_deq eng req;
      if Engine.try_shed eng req ~large:(shed_large req) then step c
      else
        Engine.execute eng ~core:c.id ~tx_queue:c.id
          ~extra_cpu:(put_lock_cost c req) req
    end
    else if not (Netsim.Fifo.is_empty (Engine.rx eng c.id)) then begin
      ignore (move_batch (Engine.rx eng c.id) c.swq);
      Engine.busy eng ~core:c.id cost.Cost_model.poll_us
    end
    else begin
          (* Steal one queued request from another core's software queue,
             scanning from a random start. *)
          let start = Dsim.Rng.int steal_rng n in
          let rec steal_swq i =
            if i >= n then None
            else begin
              let victim = cores.((start + i) mod n) in
              if victim.id = c.id then steal_swq (i + 1)
              else
                match Netsim.Fifo.pop victim.swq with
                | Some slot ->
                    let r = Engine.req_of_slot eng slot in
                    Engine.obs_handoff_deq eng r;
                    Some r
                | None -> steal_swq (i + 1)
            end
          in
          match steal_swq 0 with
          | Some req ->
              if Engine.try_shed eng req ~large:(shed_large req) then step c
              else
                Engine.execute eng ~core:c.id ~tx_queue:c.id
                  ~extra_cpu:(cost.Cost_model.steal_us +. put_lock_cost c req)
                  req
          | None -> (
              (* All software queues empty: steal a batch of packets from
                 another core's RX queue into our software queue. *)
              let rec steal_rx i =
                if i >= n then 0
                else begin
                  let victim = cores.((start + i) mod n) in
                  if victim.id = c.id then steal_rx (i + 1)
                  else begin
                    let got = move_batch (Engine.rx eng victim.id) c.swq in
                    if got > 0 then got else steal_rx (i + 1)
                  end
                end
              in
              match steal_rx 0 with
              | 0 -> c.idle <- true
              | _ ->
                  Engine.busy eng ~core:c.id
                    (cost.Cost_model.poll_us +. cost.Cost_model.steal_us))
    end
  in
  Engine.set_resume eng (fun id -> step cores.(id));
  let wake c =
    if c.idle then begin
      c.idle <- false;
      step c
    end
  in
  {
    Engine.name;
    dispatch =
      (fun req ->
        match req.Engine.op with
        | Cost_model.Get | Cost_model.Scan -> Engine.uniform_queue eng
        | Cost_model.Put -> Engine.put_master eng req);
    on_arrival =
      (fun ~queue ->
        let owner = cores.(queue) in
        if owner.idle then wake owner
        else
          (* The owner is busy; an idle core (if any) can pick the request
             up by stealing.  One thief suffices for one request. *)
          match Array.find_opt (fun c -> c.idle) cores with
          | Some thief -> wake thief
          | None -> ());
    on_epoch = ignore;
    large_core_count = (fun () -> 0);
    current_threshold = (fun () -> Float.nan);
  }
