let name = "SHO"

type handoff = {
  id : int;
  mutable idle : bool;
  staged : int Netsim.Fifo.t;
      (* batch pulled from RX, not yet dispatched; both queues hold pool
         slots (see [Engine.rx]) so pushes skip the GC write barrier *)
  swq : int Netsim.Fifo.t;
}

type worker = { wid : int; mutable idle : bool; mutable rr : int }

let make eng =
  let cfg = Engine.config eng in
  let n = Engine.cores eng in
  let n_handoff = cfg.Config.handoff_cores in
  let handoffs =
    Array.init n_handoff (fun id ->
        {
          id;
          idle = true;
          staged = Netsim.Fifo.create ~dummy:(-1) ();
          swq = Netsim.Fifo.create ~dummy:(-1) ();
        })
  in
  let workers =
    Array.init (n - n_handoff) (fun i -> { wid = n_handoff + i; idle = true; rr = 0 })
  in
  let rec worker_step w =
    (* Round-robin across handoff queues, one request at a time. *)
    let rec find i =
      if i >= n_handoff then None
      else begin
        let h = handoffs.((w.rr + i) mod n_handoff) in
        if not (Netsim.Fifo.is_empty h.swq) then begin
          let r = Engine.req_of_slot eng (Netsim.Fifo.pop_exn h.swq) in
          Engine.obs_handoff_deq eng r;
          w.rr <- (w.rr + i + 1) mod n_handoff;
          Some r
        end
        else find (i + 1)
      end
    in
    match find 0 with
    | Some req ->
        (* Size-oblivious: admission control classifies by a fixed cutoff. *)
        if Engine.try_shed eng req ~large:(req.Engine.item_size > 65536) then
          worker_step w
        else Engine.execute eng ~core:w.wid ~tx_queue:w.wid ~extra_cpu:0.0 req
    | None -> w.idle <- true
  in
  let wake_idle_worker () =
    match Array.find_opt (fun w -> w.idle) workers with
    | Some w ->
        w.idle <- false;
        worker_step w
    | None -> ()
  in
  let handoff_step h =
    if not (Netsim.Fifo.is_empty h.staged) then begin
      let slot = Netsim.Fifo.pop_exn h.staged in
      Engine.obs_handoff_enq eng (Engine.req_of_slot eng slot);
      Netsim.Fifo.push h.swq slot;
      wake_idle_worker ();
      Engine.busy eng ~core:h.id cfg.Config.cost.Cost_model.handoff_us
    end
    else begin
      let rx = Engine.rx eng h.id in
      if Netsim.Fifo.is_empty rx then h.idle <- true
      else begin
        let pulled = ref 0 in
        while !pulled < cfg.Config.batch && not (Netsim.Fifo.is_empty rx) do
          let r = Netsim.Fifo.pop_exn rx in
          Engine.obs_poll eng (Engine.req_of_slot eng r);
          Netsim.Fifo.push h.staged r;
          incr pulled
        done;
        Engine.busy eng ~core:h.id cfg.Config.cost.Cost_model.poll_us
      end
    end
  in
  Engine.set_resume eng (fun core ->
      if core < n_handoff then handoff_step handoffs.(core)
      else worker_step workers.(core - n_handoff));
  {
    Engine.name;
    dispatch =
      (fun _req ->
        (* Clients know the handoff cores and spray uniformly over them. *)
        Dsim.Rng.int (Engine.dispatch_rng eng) n_handoff);
    on_arrival =
      (fun ~queue ->
        let h = handoffs.(queue) in
        if h.idle then begin
          h.idle <- false;
          handoff_step h
        end);
    on_epoch = ignore;
    large_core_count = (fun () -> 0);
    current_threshold = (fun () -> Float.nan);
  }
