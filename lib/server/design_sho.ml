let name = "SHO"

type handoff = {
  id : int;
  mutable idle : bool;
  staged : Engine.request Queue.t; (* batch pulled from RX, not yet dispatched *)
  swq : Engine.request Netsim.Fifo.t;
}

type worker = { wid : int; mutable idle : bool; mutable rr : int }

let make eng =
  let cfg = Engine.config eng in
  let n = Engine.cores eng in
  let n_handoff = cfg.Config.handoff_cores in
  let handoffs =
    Array.init n_handoff (fun id ->
        { id; idle = true; staged = Queue.create (); swq = Netsim.Fifo.create () })
  in
  let workers =
    Array.init (n - n_handoff) (fun i -> { wid = n_handoff + i; idle = true; rr = 0 })
  in
  let rec worker_step w =
    (* Round-robin across handoff queues, one request at a time. *)
    let rec find i =
      if i >= n_handoff then None
      else begin
        let h = handoffs.((w.rr + i) mod n_handoff) in
        match Netsim.Fifo.pop h.swq with
        | Some r ->
            Engine.obs_handoff_deq eng r;
            w.rr <- (w.rr + i + 1) mod n_handoff;
            Some r
        | None -> find (i + 1)
      end
    in
    match find 0 with
    | Some req ->
        (* Size-oblivious: admission control classifies by a fixed cutoff. *)
        if Engine.try_shed eng ~large:(req.Engine.item_size > 65536) then
          worker_step w
        else Engine.execute eng ~core:w.wid req ~k:(fun () -> worker_step w)
    | None -> w.idle <- true
  in
  let wake_idle_worker () =
    match Array.find_opt (fun w -> w.idle) workers with
    | Some w ->
        w.idle <- false;
        worker_step w
    | None -> ()
  in
  let rec handoff_step h =
    match Queue.take_opt h.staged with
    | Some req ->
        Engine.obs_handoff_enq eng req;
        Netsim.Fifo.push h.swq req;
        wake_idle_worker ();
        Engine.busy eng ~core:h.id cfg.Config.cost.Cost_model.handoff_us ~k:(fun () ->
            handoff_step h)
    | None ->
        let rx = Engine.rx eng h.id in
        if Netsim.Fifo.is_empty rx then h.idle <- true
        else begin
          let pulled = ref 0 in
          while
            !pulled < cfg.Config.batch
            &&
            match Netsim.Fifo.pop rx with
            | Some r ->
                Engine.obs_poll eng r;
                Queue.add r h.staged;
                incr pulled;
                true
            | None -> false
          do
            ()
          done;
          Engine.busy eng ~core:h.id cfg.Config.cost.Cost_model.poll_us ~k:(fun () ->
              handoff_step h)
        end
  in
  {
    Engine.name;
    dispatch =
      (fun _req ->
        (* Clients know the handoff cores and spray uniformly over them. *)
        Dsim.Rng.int (Engine.dispatch_rng eng) n_handoff);
    on_arrival =
      (fun ~queue ->
        let h = handoffs.(queue) in
        if h.idle then begin
          h.idle <- false;
          handoff_step h
        end);
    on_epoch = ignore;
    large_core_count = (fun () -> 0);
    current_threshold = (fun () -> Float.nan);
  }
