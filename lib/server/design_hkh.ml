let name = "HKH"

(* [batch] holds pool slots (see [Engine.rx]): int queues skip the GC
   write barrier on every push. *)
type core = { id : int; mutable idle : bool; batch : int Netsim.Fifo.t }

(* Size-oblivious designs have no threshold to classify against; for
   admission control they fall back to a fixed engineering cutoff (a
   64 KB item spans many frames either way). *)
let shed_large (req : Engine.request) = req.Engine.item_size > 65536

let make eng =
  let cfg = Engine.config eng in
  let cores =
    Array.init (Engine.cores eng) (fun id ->
        { id; idle = true; batch = Netsim.Fifo.create ~dummy:(-1) () })
  in
  let rec step c =
    if not (Netsim.Fifo.is_empty c.batch) then begin
      let req = Engine.req_of_slot eng (Netsim.Fifo.pop_exn c.batch) in
      if Engine.try_shed eng req ~large:(shed_large req) then step c
      else Engine.execute eng ~core:c.id ~tx_queue:c.id ~extra_cpu:0.0 req
    end
    else begin
      let rx = Engine.rx eng c.id in
      if Netsim.Fifo.is_empty rx then c.idle <- true
      else begin
        let pulled = ref 0 in
        while !pulled < cfg.Config.batch && not (Netsim.Fifo.is_empty rx) do
          let r = Netsim.Fifo.pop_exn rx in
          Engine.obs_poll eng (Engine.req_of_slot eng r);
          Netsim.Fifo.push c.batch r;
          incr pulled
        done;
        Engine.busy eng ~core:c.id cfg.Config.cost.Cost_model.poll_us
      end
    end
  in
  Engine.set_resume eng (fun id -> step cores.(id));
  let wake c =
    if c.idle then begin
      c.idle <- false;
      step c
    end
  in
  {
    Engine.name;
    dispatch =
      (fun req ->
        match req.Engine.op with
        | Cost_model.Get | Cost_model.Scan ->
            (* CREW sprays GETs (and SCANs); EREW sends them to the key's
               master core (all-exclusive, better locality,
               skew-sensitive). *)
            if cfg.Config.hkh_erew then Engine.put_master eng req
            else Engine.uniform_queue eng
        | Cost_model.Put -> Engine.put_master eng req);
    on_arrival = (fun ~queue -> wake cores.(queue));
    on_epoch = ignore;
    large_core_count = (fun () -> 0);
    current_threshold = (fun () -> Float.nan);
  }
