let name = "HKH"

type core = { id : int; mutable idle : bool; batch : Engine.request Queue.t }

(* Size-oblivious designs have no threshold to classify against; for
   admission control they fall back to a fixed engineering cutoff (a
   64 KB item spans many frames either way). *)
let shed_large (req : Engine.request) = req.Engine.item_size > 65536

let make eng =
  let cfg = Engine.config eng in
  let cores =
    Array.init (Engine.cores eng) (fun id -> { id; idle = true; batch = Queue.create () })
  in
  let rec step c =
    match Queue.take_opt c.batch with
    | Some req ->
        if Engine.try_shed eng ~large:(shed_large req) then step c
        else Engine.execute eng ~core:c.id req ~k:(fun () -> step c)
    | None ->
        let rx = Engine.rx eng c.id in
        if Netsim.Fifo.is_empty rx then c.idle <- true
        else begin
          let pulled = ref 0 in
          while
            !pulled < cfg.Config.batch
            &&
            match Netsim.Fifo.pop rx with
            | Some r ->
                Engine.obs_poll eng r;
                Queue.add r c.batch;
                incr pulled;
                true
            | None -> false
          do
            ()
          done;
          Engine.busy eng ~core:c.id cfg.Config.cost.Cost_model.poll_us ~k:(fun () ->
              step c)
        end
  in
  let wake c =
    if c.idle then begin
      c.idle <- false;
      step c
    end
  in
  {
    Engine.name;
    dispatch =
      (fun req ->
        match req.Engine.op with
        | Cost_model.Get ->
            (* CREW sprays GETs; EREW sends them to the key's master core
               (all-exclusive, better locality, skew-sensitive). *)
            if cfg.Config.hkh_erew then Engine.put_master eng req
            else Engine.uniform_queue eng
        | Cost_model.Put -> Engine.put_master eng req);
    on_arrival = (fun ~queue -> wake cores.(queue));
    on_epoch = ignore;
    large_core_count = (fun () -> 0);
    current_threshold = (fun () -> Float.nan);
  }
