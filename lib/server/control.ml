type plan = {
  threshold : float;
  n_small : int;
  n_large : int;
  ranges : (float * float) array;
}

let initial ~cores =
  { threshold = infinity; n_small = cores; n_large = 0; ranges = [||] }

let standby_core ~cores = cores - 1

(* Split the above-threshold buckets of [hist] into [n] contiguous ranges
   of approximately equal total cost.  Walk the cumulative cost and cut
   whenever it crosses a multiple of [total / n]. *)
let split_ranges hist ~cost_fn ~threshold ~n =
  let module H = Stats.Log_histogram in
  let buckets =
    H.fold
      (fun i count acc ->
        let ub = H.bucket_upper_bound hist i in
        if ub > threshold then (ub, count *. Cost_model.cost_of_size cost_fn ub) :: acc
        else acc)
      hist []
    |> List.rev
  in
  let total = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 buckets in
  if total <= 0.0 || n = 0 then
    Array.init n (fun i -> if i = n - 1 then (threshold, infinity) else (threshold, threshold))
  else begin
    let per_core = total /. float_of_int n in
    let ranges = Array.make n (threshold, infinity) in
    let core = ref 0 in
    let lo = ref threshold in
    let acc = ref 0.0 in
    List.iter
      (fun (ub, cost) ->
        acc := !acc +. cost;
        if !acc >= float_of_int (!core + 1) *. per_core && !core < n - 1 then begin
          ranges.(!core) <- (!lo, ub);
          lo := ub;
          incr core
        end)
      buckets;
    (* Whatever remains belongs to the last active core; its range is
       open-ended so oversized outliers still route somewhere. *)
    ranges.(!core) <- (!lo, infinity);
    (* Cores after [!core] (possible when there are fewer distinct buckets
       than cores) get empty ranges. *)
    for i = !core + 1 to n - 1 do
      ranges.(i) <- (infinity, infinity)
    done;
    ranges
  end

let compute ~cores ~cost_fn ~percentile ?threshold_override ?(extra_large_core = false)
    hist =
  let module H = Stats.Log_histogram in
  if H.is_empty hist then initial ~cores
  else begin
    let threshold =
      match threshold_override with
      | Some t -> t
      | None -> H.quantile hist percentile
    in
    let small_cost, large_cost =
      H.fold
        (fun i count (s, l) ->
          let ub = H.bucket_upper_bound hist i in
          let c = count *. Cost_model.cost_of_size cost_fn ub in
          if ub <= threshold then (s +. c, l) else (s, l +. c))
        hist (0.0, 0.0)
    in
    let total = small_cost +. large_cost in
    let frac_small = if total > 0.0 then small_cost /. total else 1.0 in
    let n_small =
      int_of_float (ceil (frac_small *. float_of_int cores)) |> max 1 |> min cores
    in
    let n_large = cores - n_small in
    let n_large =
      if extra_large_core && n_large > 0 then min (cores - 1) (n_large + 1) else n_large
    in
    let n_small = cores - n_large in
    if n_large = 0 then { threshold; n_small = cores; n_large = 0; ranges = [||] }
    else
      {
        threshold;
        n_small;
        n_large;
        ranges = split_ranges hist ~cost_fn ~threshold ~n:n_large;
      }
  end

(* Control-loop hardening: never let a corrupt or wildly moving threshold
   reach the routing plan.  NaN and non-positive candidates fall back to
   the last good value; with a clamp, one epoch may move the threshold by
   at most the given fraction in either direction. *)
let sanitize ~last_good ~clamp candidate =
  let bad v = Float.is_nan v || v <= 0.0 in
  if bad candidate then if bad last_good then infinity else last_good
  else
    match clamp with
    | None -> candidate
    | Some c ->
        if Float.is_finite last_good && last_good > 0.0 then
          let lo = last_good /. (1.0 +. c) in
          let hi = last_good *. (1.0 +. c) in
          Float.min hi (Float.max lo candidate)
        else candidate

(* Top-level recursion: a local [let rec] would close over [plan]/[size]
   and allocate a closure per routed request. *)
let rec route_range ranges size n i =
  if i >= n - 1 then n - 1
  else begin
    let _, hi = ranges.(i) in
    if size <= hi then i else route_range ranges size n (i + 1)
  end

(* Allocation-free variant for the per-request dispatch path: [-1] means
   small (the [None] of [route]); [0] in standby mode is the standby
   core by convention. *)
let route_idx plan size =
  if size <= plan.threshold then -1
  else if plan.n_large = 0 then 0 (* standby core, by convention *)
  else route_range plan.ranges size (Array.length plan.ranges) 0

let route plan size =
  let j = route_idx plan size in
  if j < 0 then None else Some j

let is_small_core plan id = id < plan.n_small

let large_core_id plan ~cores j =
  if plan.n_large = 0 then standby_core ~cores else plan.n_small + j
