(* Requests are pooled: [slot] is the request's permanent index in the
   engine's pool, every other field is overwritten when the slot is
   reused for a new arrival.  The slot doubles as the typed-event operand
   for service completion and as the TX-scheduler token. *)
type request = {
  slot : int;
  mutable op : Cost_model.op;
  mutable key_id : int;
  mutable item_size : int;
  mutable is_large_truth : bool;
  mutable scan_len : int; (* keys covered by a SCAN, 0 otherwise *)
  mutable miss : bool; (* GET found no live item (TTL / eviction) *)
  mutable frames_in : int; (* doubled when a fault duplicates the frames *)
  mutable rx_queue : int;
  mutable span : int; (* flight-recorder slot, -1 when not sampled *)
}
(* The arrival timestamp lives in the engine's [arrivals] float array
   (indexed by slot), not here: a float field in this mixed record would
   box on every overwrite, once per request. *)

let fresh_request slot =
  {
    slot;
    op = Cost_model.Get;
    key_id = 0;
    item_size = 0;
    is_large_truth = false;
    scan_len = 0;
    miss = false;
    frames_in = 0;
    rx_queue = 0;
    span = -1;
  }

let dummy_request = fresh_request (-1)

(* Time-varying offered load for reshard runs: [rate_at now] is the
   offered rate (Mops) at simulated time [now]; [next_change now] is the
   next time the rate changes (so a parked arrival loop knows when to
   wake).  Both must be pure functions of [now].  A constant-rate pacing
   equal to [offered_mops] reproduces the unpaced arrival stream draw
   for draw. *)
type pacing = {
  rate_at : float -> float;
  next_change : float -> float;
}

type t = {
  cfg : Config.t;
  sim : Dsim.Sim.t;
  gen : Workload.Generator.t;
  dataset : Workload.Dataset.t;
  key_names : string array;
      (* materialized key strings, only when a real store is attached *)
  source : (unit -> Workload.Generator.request) option;
  pacing : pacing option;
  timed : Workload.Trace.t option;
      (* replay requests at their recorded timestamps (overrides the
         Poisson arrival loop; [source]/[pacing] are ignored) *)
  dynamic : Workload.Dynamic.t option;
  store : Kvstore.Store.t option;
  residency : Residency.t option;
      (* TTL/eviction model for scenario runs; [None] on the plain path *)
  sweep_us : float option; (* background expiry-sweep period *)
  nic : int Netsim.Nic.t;
      (* RX queues carry pool slots, not request pointers: int queues keep
         [Fifo] push/pop free of the pointer-store write barrier, which is
         measurable at millions of events per second *)
  mutable tx : Netsim.Txsched.t;
      (* mutable only to break the creation knot: the scheduler's
         completion callback needs [t] *)
  offered_mops : float;
  (* Request pool: an array-stack of free slots over parallel storage.
     [arrivals] and [cpu_dones] ride alongside as float arrays (not
     record fields) so the per-request stores do not box. *)
  mutable pool : request array;
  mutable free_slots : int array;
  mutable free_top : int;
  mutable arrivals : float array;
  mutable cpu_dones : float array;
  (* Typed-event plumbing: designs install [resume] once; the engine
     dispatches core wake-ups and service completions through these
     handler tags instead of per-event closures. *)
  mutable resume : int -> unit;
  mutable tag_resume : int;
  mutable tag_service : int;
  (* Per-core accounting as parallel arrays: float stores into a float
     array don't box, unlike stores into a mixed record's float field. *)
  core_ops : int array;
  core_packets : int array;
  core_busy_us : float array;
  latencies : Stats.Float_vec.t;
  small_latencies : Stats.Float_vec.t;
  large_latencies : Stats.Float_vec.t;
  windowed : Stats.Windowed.t option;
  mutable issued : int;
  mutable processed_total : int; (* served ops, stability accounting *)
  mutable processed_window : int; (* served ops inside the window: throughput *)
  queue_wait : Stats.Summary.t;
  service : Stats.Summary.t;
  tx_wait : Stats.Summary.t;
  mutable large_core_series : (float * int) list;
  arrival_rng : Dsim.Rng.t;
  sampling_rng : Dsim.Rng.t;
  dispatch_rng : Dsim.Rng.t;
  mutable eviction_rng : Dsim.Rng.t;
      (* forked from the sim only when residency is attached, after the
         three streams above — plain runs fork exactly as before, so
         every pre-scenario golden stays byte-identical *)
  put_value : bytes; (* scratch buffer reused for real-store writes *)
  mutable probe : (core:int -> request -> unit) option;
  obs : Obs.Instrument.t option;
  fault : Fault.Inject.t option;
  server : int; (* id kill-server plan events match against *)
  rx_cap : int; (* configured RX ring bound, [max_int] when unbounded *)
  mutable net_dropped : int;
  mutable rx_dropped : int;
  mutable shed_small : int;
  mutable shed_large : int;
  mutable expired_misses : int;
      (* GETs processed but answered not-found: the new telescoping leg *)
}

let set_probe t f = t.probe <- Some f

let set_resume t f = t.resume <- f

(* ---------------- request pool ---------------- *)

let[@cold] grow_pool t =
  let old = Array.length t.pool in
  let n = 2 * old in
  let pool = Array.make n dummy_request in
  Array.blit t.pool 0 pool 0 old;
  for i = old to n - 1 do
    pool.(i) <- fresh_request i
  done;
  let free = Array.make n 0 in
  Array.blit t.free_slots 0 free 0 t.free_top;
  for i = old to n - 1 do
    free.(t.free_top) <- i;
    t.free_top <- t.free_top + 1
  done;
  let ar = Array.make n 0.0 in
  Array.blit t.arrivals 0 ar 0 old;
  let cd = Array.make n 0.0 in
  Array.blit t.cpu_dones 0 cd 0 old;
  t.pool <- pool;
  t.free_slots <- free;
  t.arrivals <- ar;
  t.cpu_dones <- cd

let alloc_req t =
  if t.free_top = 0 then grow_pool t;
  t.free_top <- t.free_top - 1;
  t.pool.(t.free_slots.(t.free_top))

(* Exactly one free per allocated request, at whichever point retires it:
   fault drop, RX tail-drop, shed, unsampled (no-reply) completion, or
   reply TX completion.  Requests still sitting in queues when the run
   ends are never freed — the pool dies with the engine. *)
let free_req t (req : request) =
  t.free_slots.(t.free_top) <- req.slot;
  t.free_top <- t.free_top + 1

(* ---------------- flight-recorder hooks ----------------

   Each hook is a conditional store into the recorder's preallocated
   arrays: nothing here allocates, so instrumented designs keep the
   zero-allocation hot path. *)

let obs_mark t field (req : request) =
  if req.span >= 0 then
    match t.obs with
    | None -> ()
    | Some o ->
        Obs.Recorder.set_ts o.Obs.Instrument.recorder req.span field
          (Dsim.Sim.now t.sim)

let obs_poll t req = obs_mark t Obs.Span.ts_poll req
let obs_classify t req = obs_mark t Obs.Span.ts_classify req
let obs_handoff_enq t req = obs_mark t Obs.Span.ts_handoff_enq req
let obs_handoff_deq t req = obs_mark t Obs.Span.ts_handoff_deq req

let obs_sample_arrival t (req : request) ~queue =
  match t.obs with
  | None -> ()
  | Some o ->
      let r = o.Obs.Instrument.recorder in
      let slot = Obs.Recorder.try_sample r in
      if slot >= 0 then begin
        req.span <- slot;
        Obs.Recorder.set_ts r slot Obs.Span.ts_rx_enq t.arrivals.(req.slot);
        Obs.Recorder.set_meta r slot Obs.Span.meta_seq (t.issued - 1);
        Obs.Recorder.set_meta r slot Obs.Span.meta_rx_queue queue;
        Obs.Recorder.set_meta r slot Obs.Span.meta_class
          (if req.is_large_truth then Obs.Span.class_large else Obs.Span.class_small);
        Obs.Recorder.set_meta r slot Obs.Span.meta_op
          (match req.op with
          | Cost_model.Get -> Obs.Span.op_get
          | Cost_model.Put -> Obs.Span.op_put
          | Cost_model.Scan -> Obs.Span.op_scan);
        Obs.Recorder.set_meta r slot Obs.Span.meta_size req.item_size
      end

let sim t = t.sim
let config t = t.cfg
let cores t = t.cfg.Config.cores
let now t = Dsim.Sim.now t.sim
let rx t i = Netsim.Nic.rx t.nic i

let[@inline] req_of_slot t slot = t.pool.(slot)
let dispatch_rng t = t.dispatch_rng

(* Keyhash-based master core: mix the key id so that dense ids spread, as a
   real keyhash would.  The 30-bit partition of each key's name hash is
   precomputed in the dataset, so dispatch is a table lookup. *)
let put_master t req =
  Workload.Dataset.key_partition t.dataset req.key_id mod t.cfg.Config.cores

let uniform_queue t = Dsim.Rng.int t.dispatch_rng t.cfg.Config.cores

let in_window t time =
  time >= t.cfg.Config.warmup_us && time <= t.cfg.Config.duration_us

(* ---------------- fault hooks ----------------

   Same discipline as the flight-recorder hooks: with no injector
   attached, every hook is one [match] on an immutable [None] field and
   costs nothing — no call, no boxed float, no allocation.  The faulty
   branches may allocate freely. *)

(* CPU time under an open stall window: a finite factor slows the work, an
   infinite one parks the core until the window closes (the work itself
   then runs at full speed). *)
let slowed t f ~core dt =
  let now = Dsim.Sim.now t.sim in
  let m = Fault.Inject.slowdown f ~core ~now in
  if m = 1.0 then dt
  else if Float.is_finite m then dt *. m
  else Fault.Inject.stall_end f ~core ~now -. now +. dt

let busy t ~core dt =
  let dt = match t.fault with None -> dt | Some f -> slowed t f ~core dt in
  t.core_busy_us.(core) <- t.core_busy_us.(core) +. dt;
  Dsim.Sim.schedule_call_after t.sim dt ~tag:t.tag_resume ~i:core ~j:0

(* Top-level recursion, not a local [let rec]: a local recursive
   function closes over [t] and allocates on every call, and this runs
   per admission decision on the hot path. *)
let rec rx_backlog_scan t n i acc =
  if i >= n then acc
  else rx_backlog_scan t n (i + 1) (acc + Netsim.Fifo.length (Netsim.Nic.rx t.nic i))

let total_rx_backlog t = rx_backlog_scan t t.cfg.Config.cores 0 0

(* Admission control: above the watermark the large class is shed first —
   large requests are rare but expensive (the paper's core insight), so
   shedding them recovers the most capacity for the least goodput loss.
   Smalls are shed only past 4x the watermark, when the backlog says the
   system is drowning regardless of class. *)
let try_shed t req ~large =
  match t.cfg.Config.shed_watermark with
  | None -> false
  | Some wm ->
      let backlog = total_rx_backlog t in
      if backlog > wm && (large || backlog > 4 * wm) then begin
        if large then t.shed_large <- t.shed_large + 1
        else t.shed_small <- t.shed_small + 1;
        free_req t req;
        true
      end
      else false

let ctrl_delayed t =
  match t.fault with
  | None -> false
  | Some f -> Fault.Inject.ctrl_delayed f ~now:(Dsim.Sim.now t.sim)

let corrupt_threshold t threshold =
  match t.fault with
  | None -> threshold
  | Some f -> Fault.Inject.corrupt_threshold f ~now:(Dsim.Sim.now t.sim) threshold

let lost t = t.net_dropped + t.rx_dropped + t.shed_small + t.shed_large
let core_ops_live t = t.core_ops
let core_busy_live t = t.core_busy_us

let touch_real_store t req =
  match t.store with
  | None -> ()
  | Some store -> (
      let key = t.key_names.(req.key_id) in
      match req.op with
      | Cost_model.Get -> ignore (Kvstore.Store.size_of store key)
      | Cost_model.Scan ->
          (* Fidelity touch only: the simulated scan's bytes/frames come
             from the dataset; real ordered iteration is exercised by
             {!Kvstore.Store.scan} in the runtime server and tests. *)
          ignore (Kvstore.Store.size_of store key)
      | Cost_model.Put ->
          (* Write a small marker value: materializing multi-hundred-KB
             values for every simulated PUT would swamp the run without
             changing the queueing behaviour; real value handling is
             exercised by the KV tests and examples. *)
          Kvstore.Store.put store ~guard:`Lock key t.put_value)

(* Called when the reply's last frame leaves the wire. *)
let record_reply t req ~finish_time =
  if in_window t finish_time then begin
    let latency =
      finish_time +. t.cfg.Config.cost.Cost_model.pipeline_latency_us
      -. t.arrivals.(req.slot)
    in
    Stats.Float_vec.push t.latencies latency;
    if req.is_large_truth then Stats.Float_vec.push t.large_latencies latency
    else Stats.Float_vec.push t.small_latencies latency;
    match t.windowed with
    | Some w -> Stats.Windowed.add w ~time:finish_time latency
    | None -> ()
  end

(* Called when the reply's last frame leaves the wire ([Txsched]'s
   completion callback); the token is the request's pool slot. *)
let tx_done t slot finish_time =
  let req = t.pool.(slot) in
  if in_window t finish_time then
    Stats.Summary.add t.tx_wait (finish_time -. t.cpu_dones.(slot));
  (if req.span >= 0 then
     match t.obs with
     | None -> ()
     | Some o ->
         let r = o.Obs.Instrument.recorder in
         Obs.Recorder.set_ts r req.span Obs.Span.ts_tx_done finish_time;
         Obs.Recorder.set_ts r req.span Obs.Span.ts_end
           (finish_time +. t.cfg.Config.cost.Cost_model.pipeline_latency_us));
  record_reply t req ~finish_time;
  free_req t req

(* Service completion (typed event): [slot] names the request, [j] packs
   the serving core and the TX queue. *)
let service_done t slot j =
  let req = t.pool.(slot) in
  let core = j land 0xffff in
  let tx_queue = j lsr 16 in
  touch_real_store t req;
  (* §6.4: under reply sampling the server does all the processing but
     sends only a fraction of the replies; throughput counts processed
     operations, latency is measured on delivered replies. *)
  let replied =
    match req.op with
    | Cost_model.Put -> true
    | Cost_model.Scan -> true (* the reply carries the range; never elided *)
    | Cost_model.Get ->
        t.cfg.Config.sampling >= 1.0
        || Dsim.Rng.unit_float t.sampling_rng < t.cfg.Config.sampling
  in
  let reply_frames = Cost_model.reply_frames req.op ~item_size:req.item_size in
  t.core_ops.(core) <- t.core_ops.(core) + 1;
  t.core_packets.(core) <-
    t.core_packets.(core) + req.frames_in + (if replied then reply_frames else 0);
  t.processed_total <- t.processed_total + 1;
  if req.miss then t.expired_misses <- t.expired_misses + 1;
  if in_window t (Dsim.Sim.now t.sim) then
    t.processed_window <- t.processed_window + 1;
  obs_mark t Obs.Span.ts_service_end req;
  if replied then begin
    t.cpu_dones.(slot) <- Dsim.Sim.now t.sim;
    Netsim.Txsched.send t.tx ~queue:tx_queue
      ~payload_bytes:(Cost_model.reply_payload req.op ~item_size:req.item_size)
      ~token:slot
  end
  else free_req t req;
  (* The core is free as soon as the reply is handed to the NIC. *)
  t.resume core

let execute t ~core ~tx_queue ~extra_cpu req =
  (* Residency is consulted at service start: a GET that finds no live
     item (expired, evicted, never loaded) becomes a cheap not-found
     reply; a PUT (re)loads its key, evicting under the memory budget. *)
  (match t.residency with
  | None -> ()
  | Some res -> (
      match req.op with
      | Cost_model.Get ->
          if not (Residency.on_get res ~now:(Dsim.Sim.now t.sim) req.key_id) then begin
            req.miss <- true;
            req.item_size <- 0
          end
      | Cost_model.Put ->
          Residency.on_put res ~now:(Dsim.Sim.now t.sim) t.eviction_rng req.key_id
      | Cost_model.Scan -> () (* scans read the ordered index, not residency *)));
  let cpu =
    Cost_model.cpu_time t.cfg.Config.cost req.op ~item_size:req.item_size +. extra_cpu
  in
  let cpu =
    match t.fault with
    | None -> cpu
    | Some f ->
        (* Duplicated frames (retransmission echoes) cost their per-packet
           handling; the request itself is still served once, so request
           conservation is untouched. *)
        let nominal = Cost_model.request_frames req.op ~item_size:req.item_size in
        let cpu =
          if req.frames_in > nominal then
            cpu
            +. float_of_int (req.frames_in - nominal)
               *. t.cfg.Config.cost.Cost_model.per_packet_us
          else cpu
        in
        slowed t f ~core cpu
  in
  (match t.probe with Some f -> f ~core req | None -> ());
  let start = Dsim.Sim.now t.sim in
  (if req.span >= 0 then
     match t.obs with
     | None -> ()
     | Some o ->
         let r = o.Obs.Instrument.recorder in
         Obs.Recorder.set_ts r req.span Obs.Span.ts_service_start start;
         Obs.Recorder.set_meta r req.span Obs.Span.meta_core core;
         Obs.Recorder.set_meta r req.span Obs.Span.meta_tx_queue tx_queue);
  if in_window t start then begin
    Stats.Summary.add t.queue_wait (start -. t.arrivals.(req.slot));
    Stats.Summary.add t.service cpu
  end;
  t.core_busy_us.(core) <- t.core_busy_us.(core) +. cpu;
  Dsim.Sim.schedule_call_after t.sim cpu ~tag:t.tag_service ~i:req.slot
    ~j:(core lor (tx_queue lsl 16))

let create ?dynamic ?store ?source ?pacing ?timed ?residency ?sweep_us ?obs ?fault
    ?(server = 0) cfg gen ~offered_mops =
  if server < 0 then invalid_arg "Engine.create: server must be >= 0";
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.create: " ^ msg));
  if not (offered_mops > 0.0) then invalid_arg "Engine.create: offered_mops must be > 0";
  (match timed with
  | Some trace when not (Workload.Trace.timed trace) ->
      invalid_arg "Engine.create: timed replay needs a timestamped trace"
  | Some trace when Workload.Trace.length trace = 0 ->
      invalid_arg "Engine.create: timed trace is empty"
  | Some _ | None -> ());
  (match sweep_us with
  | Some s when not (s > 0.0) ->
      invalid_arg "Engine.create: sweep_us must be positive"
  | Some _ | None -> ());
  let sim = Dsim.Sim.create ~seed:cfg.Config.seed () in
  let dataset = Workload.Generator.dataset gen in
  let pool_init = 256 in
  let t =
    {
      cfg;
      sim;
      gen;
      dataset;
      key_names =
        (match store with
        | None -> [||]
        | Some _ ->
            Array.init (Workload.Dataset.n_keys dataset) Workload.Dataset.key_name);
      source;
      pacing;
      timed;
      dynamic;
      store;
      residency;
      sweep_us;
      nic =
        Netsim.Nic.create ~queues:cfg.Config.cores ~tx_gbps:cfg.Config.tx_gbps
          ~dummy:(-1);
      tx =
        (* placeholder, replaced below once [t] exists for the completion
           callback *)
        Netsim.Txsched.create ~gbps:1.0 ~queues:1
          ~schedule:(fun _ -> ())
          ~now:(fun () -> 0.0)
          ~on_complete:(fun _ _ -> ());
      offered_mops;
      pool = Array.init pool_init fresh_request;
      free_slots = Array.init pool_init (fun i -> i);
      free_top = pool_init;
      arrivals = Array.make pool_init 0.0;
      cpu_dones = Array.make pool_init 0.0;
      resume = ignore;
      tag_resume = -1;
      tag_service = -1;
      core_ops = Array.make cfg.Config.cores 0;
      core_packets = Array.make cfg.Config.cores 0;
      core_busy_us = Array.make cfg.Config.cores 0.0;
      latencies = Stats.Float_vec.create ~capacity:65536 ();
      small_latencies = Stats.Float_vec.create ~capacity:65536 ();
      large_latencies = Stats.Float_vec.create ~capacity:1024 ();
      windowed =
        (match cfg.Config.window_us with
        | Some w -> Some (Stats.Windowed.create ~width:w ())
        | None -> None);
      issued = 0;
      processed_total = 0;
      processed_window = 0;
      queue_wait = Stats.Summary.create ();
      service = Stats.Summary.create ();
      tx_wait = Stats.Summary.create ();
      large_core_series = [];
      arrival_rng = Dsim.Sim.fork_rng sim;
      sampling_rng = Dsim.Sim.fork_rng sim;
      dispatch_rng = Dsim.Sim.fork_rng sim;
      eviction_rng = Dsim.Rng.create 0 (* replaced below iff residency *);
      put_value = Bytes.create 16;
      probe = None;
      obs;
      fault;
      server;
      rx_cap = (match cfg.Config.rx_capacity with Some c -> c | None -> max_int);
      net_dropped = 0;
      rx_dropped = 0;
      shed_small = 0;
      shed_large = 0;
      expired_misses = 0;
    }
  in
  (* Forked after the record is built so it always comes after the three
     streams above, whatever the literal's evaluation order — and only
     when residency is attached, keeping plain runs' fork sequence (and
     hence every existing golden) untouched. *)
  (match residency with
  | Some _ -> t.eviction_rng <- Dsim.Sim.fork_rng sim
  | None -> ());
  (* TX frame completions go through a typed event: the wire serializes
     frames, so one handler tag (reading [t.tx] at fire time) covers every
     frame with no per-frame closure. *)
  let tag_frame =
    Dsim.Sim.register_handler sim (fun _ _ -> Netsim.Txsched.frame_done t.tx)
  in
  t.tx <-
    Netsim.Txsched.create ~gbps:cfg.Config.tx_gbps ~queues:cfg.Config.cores
      ~schedule:(fun delay ->
        Dsim.Sim.schedule_call_after sim delay ~tag:tag_frame ~i:0 ~j:0)
      ~now:(fun () -> Dsim.Sim.now sim)
      ~on_complete:(fun token finish_time -> tx_done t token finish_time);
  t.tag_resume <- Dsim.Sim.register_handler sim (fun core _ -> t.resume core);
  t.tag_service <- Dsim.Sim.register_handler sim (fun slot j -> service_done t slot j);
  t

type design = {
  name : string;
  dispatch : request -> int;
  on_arrival : queue:int -> unit;
  on_epoch : unit -> unit;
  large_core_count : unit -> int;
  current_threshold : unit -> float;
}

(* Overwrite a pooled request's fields for a new arrival. *)
let fill_request t req op ~key_id ~item_size ~is_large ~scan_len =
  req.op <- op;
  req.key_id <- key_id;
  req.item_size <- item_size;
  req.is_large_truth <- is_large;
  req.scan_len <- scan_len;
  req.miss <- false;
  t.arrivals.(req.slot) <- Dsim.Sim.now t.sim;
  req.frames_in <- Cost_model.request_frames op ~item_size;
  req.rx_queue <- 0;
  req.span <- -1

let raw_latencies t = t.latencies
let windowed t = t.windowed

let run t make_design =
  let design = make_design t in
  let cfg = t.cfg in
  let mean_gap = 1.0 /. t.offered_mops (* µs between arrivals at X Mops *) in
  (* Final delivery step, after any fault fate was applied: tail-drop when
     the RX ring (possibly squeezed by the plan) is full, else enqueue and
     wake the design. *)
  let deliver (req : request) =
    let queue = req.rx_queue in
    let cap =
      match t.fault with
      | None -> t.rx_cap
      | Some f ->
          min t.rx_cap
            (Fault.Inject.rx_capacity f ~queue ~now:(Dsim.Sim.now t.sim))
    in
    if cap < max_int && Netsim.Fifo.length (Netsim.Nic.rx t.nic queue) >= cap then begin
      t.rx_dropped <- t.rx_dropped + 1;
      free_req t req
    end
    else begin
      let wire_bytes =
        Netsim.Frame.wire_bytes_for_payload
          (Cost_model.request_payload req.op ~item_size:req.item_size)
      in
      let wire_bytes =
        if req.frames_in > Cost_model.request_frames req.op ~item_size:req.item_size
        then 2 * wire_bytes
        else wire_bytes
      in
      Netsim.Nic.deliver t.nic ~queue ~wire_bytes ~frames:req.frames_in req.slot;
      design.on_arrival ~queue
    end
  in
  (* Dispatch + issue accounting + fault fate, shared by the Poisson
     arrival loop and the timed-trace pump. *)
  let admit (req : request) =
    let queue = design.dispatch req in
    req.rx_queue <- queue;
    t.issued <- t.issued + 1;
    obs_sample_arrival t req ~queue;
    match t.fault with
    | None -> deliver req
    | Some f when Fault.Inject.server_dead f ~server:t.server ~now:(Dsim.Sim.now t.sim)
      ->
        (* The whole server is crashed: the arrival bounces off a dead
           NIC, same leg as a net-fault drop. *)
        t.net_dropped <- t.net_dropped + 1;
        free_req t req
    | Some f -> (
        match Fault.Inject.fate f ~queue ~now:(Dsim.Sim.now t.sim) with
        | Fault.Inject.Pass -> deliver req
        | Fault.Inject.Drop ->
            t.net_dropped <- t.net_dropped + 1;
            free_req t req
        | Fault.Inject.Duplicate ->
            req.frames_in <- 2 * req.frames_in;
            deliver req
        | Fault.Inject.Reorder ->
            let d = Fault.Inject.reorder_delay_us f ~queue ~now:(Dsim.Sim.now t.sim) in
            Dsim.Sim.schedule_after t.sim d (fun () -> deliver req))
  in
  (* Arrivals are a typed event too: the generator loop is one event per
     request, so the closure-payload path would pay two pointer stores
     (write barrier) per arrival for the same one handler. *)
  let tag_arrive = ref (-1) in
  let arrive () =
    let arrive_now = Dsim.Sim.now t.sim in
    if arrive_now < cfg.Config.duration_us then begin
      match t.pacing with
      | Some p when p.rate_at arrive_now <= 0.0 ->
          (* Parked: the engine serves no traffic in the current routing
             interval.  Nothing is generated and no RNG stream advances,
             so the draws made inside active intervals are identical to
             those of an engine that was never parked. *)
          let wake = p.next_change arrive_now in
          if wake < cfg.Config.duration_us then
            Dsim.Sim.schedule_call_after t.sim (wake -. arrive_now)
              ~tag:!tag_arrive ~i:0 ~j:0
      | pacing ->
      let req = alloc_req t in
      (match t.source with
      | Some next ->
          let g = next () in
          let op =
            match g.Workload.Generator.op with
            | Workload.Generator.Get -> Cost_model.Get
            | Workload.Generator.Put -> Cost_model.Put
            | Workload.Generator.Scan -> Cost_model.Scan
          in
          fill_request t req op ~key_id:g.Workload.Generator.key_id
            ~item_size:g.Workload.Generator.item_size
            ~is_large:g.Workload.Generator.is_large
            ~scan_len:g.Workload.Generator.scan_len
      | None ->
          (match t.dynamic with
          | Some sched ->
              Workload.Generator.set_p_large t.gen
                (Workload.Dynamic.p_large_at sched (Dsim.Sim.now t.sim))
          | None -> ());
          let gen = t.gen in
          Workload.Generator.next_into gen;
          let op =
            match Workload.Generator.last_op gen with
            | Workload.Generator.Get -> Cost_model.Get
            | Workload.Generator.Put -> Cost_model.Put
            | Workload.Generator.Scan -> Cost_model.Scan
          in
          fill_request t req op
            ~key_id:(Workload.Generator.last_key_id gen)
            ~item_size:(Workload.Generator.last_item_size gen)
            ~is_large:(Workload.Generator.last_is_large gen)
            ~scan_len:(Workload.Generator.last_scan_len gen));
      admit req;
      let mean =
        match pacing with None -> mean_gap | Some p -> 1.0 /. p.rate_at arrive_now
      in
      Dsim.Sim.schedule_call_after t.sim
        (Dsim.Rng.exponential t.arrival_rng ~mean)
        ~tag:!tag_arrive ~i:0 ~j:0
    end
  in
  tag_arrive := Dsim.Sim.register_handler t.sim (fun _ _ -> arrive ());
  let rec epoch () =
    if Dsim.Sim.now t.sim < cfg.Config.duration_us then begin
      design.on_epoch ();
      t.large_core_series <-
        (Dsim.Sim.now t.sim, design.large_core_count ()) :: t.large_core_series;
      (match t.obs with
      | None -> ()
      | Some o ->
          let n_large = design.large_core_count () in
          Obs.Decision_log.record o.Obs.Instrument.decisions ~lost:(lost t)
            ~now:(Dsim.Sim.now t.sim)
            ~threshold:(design.current_threshold ())
            ~n_small:(cfg.Config.cores - n_large) ~n_large ());
      Dsim.Sim.schedule_after t.sim cfg.Config.epoch_us epoch
    end
  in
  (* Timed-trace replay: each recorded request is injected at its recorded
     offset from the trace start (re-based to the run's origin), looping
     with a re-base each lap so the recorded rate carries across the
     seam.  A typed event with the trace index as operand — no per-request
     closure. *)
  (match t.timed with
  | None -> Dsim.Sim.schedule_call_after t.sim 0.0 ~tag:!tag_arrive ~i:0 ~j:0
  | Some trace ->
      let reqs = Workload.Trace.requests trace in
      let ts = Workload.Trace.timestamps trace in
      let n = Array.length reqs in
      let t0 = ts.(0) in
      let span =
        if n = 1 then 1.0
        else (ts.(n - 1) -. t0) *. float_of_int n /. float_of_int (n - 1)
      in
      let tag_replay = ref (-1) in
      let pump i =
        if Dsim.Sim.now t.sim < cfg.Config.duration_us then begin
          let r = reqs.(i) in
          let req = alloc_req t in
          let op =
            match r.Workload.Generator.op with
            | Workload.Generator.Get -> Cost_model.Get
            | Workload.Generator.Put -> Cost_model.Put
            | Workload.Generator.Scan -> Cost_model.Scan
          in
          fill_request t req op ~key_id:r.Workload.Generator.key_id
            ~item_size:r.Workload.Generator.item_size
            ~is_large:r.Workload.Generator.is_large
            ~scan_len:r.Workload.Generator.scan_len;
          admit req;
          let gap =
            if i + 1 < n then ts.(i + 1) -. ts.(i) else span -. (ts.(n - 1) -. t0)
          in
          Dsim.Sim.schedule_call_after t.sim gap ~tag:!tag_replay ~i:((i + 1) mod n)
            ~j:0
        end
      in
      tag_replay := Dsim.Sim.register_handler t.sim (fun i _ -> pump i);
      Dsim.Sim.schedule_call_after t.sim 0.0 ~tag:!tag_replay ~i:0 ~j:0);
  Dsim.Sim.schedule_after t.sim cfg.Config.epoch_us epoch;
  (* Background expiry sweep: a chunked cursor walk per period, sized to
     cover the resident set a few times per run without a stop-the-world
     pass. *)
  (match (t.residency, t.sweep_us) with
  | Some res, Some period ->
      let rec sweep () =
        if Dsim.Sim.now t.sim < cfg.Config.duration_us then begin
          let chunk = max 1024 (Residency.resident res / 4) in
          ignore (Residency.sweep_step res ~now:(Dsim.Sim.now t.sim) ~chunk);
          Dsim.Sim.schedule_after t.sim period sweep
        end
      in
      Dsim.Sim.schedule_after t.sim period sweep
  | (Some _ | None), _ -> ());
  (match t.obs with
  | Some { Obs.Instrument.timeline = Some tl; _ } ->
      let rec tick () =
        if Dsim.Sim.now t.sim < cfg.Config.duration_us then begin
          let s = Obs.Timeline.start_sample tl ~now:(Dsim.Sim.now t.sim) in
          if s >= 0 then
            for c = 0 to cfg.Config.cores - 1 do
              Obs.Timeline.set_core tl ~sample:s ~core:c
                ~depth:(Netsim.Fifo.length (Netsim.Nic.rx t.nic c))
                ~busy_us:t.core_busy_us.(c)
            done;
          Dsim.Sim.schedule_after t.sim (Obs.Timeline.interval_us tl) tick
        end
      in
      Dsim.Sim.schedule_after t.sim 0.0 tick
  | Some _ | None -> ());
  (* Reset NIC counters at the start of the measurement window so TX
     utilization covers only the measured interval. *)
  Dsim.Sim.schedule_at t.sim cfg.Config.warmup_us (fun () ->
      Netsim.Txsched.reset_counters t.tx);
  Dsim.Sim.run t.sim ~until:cfg.Config.duration_us;
  let window = cfg.Config.duration_us -. cfg.Config.warmup_us in
  (* Telescoping identity: everything issued was either served, lost to a
     fault/overload mechanism (each loss counted exactly once), or is
     still in flight. *)
  let in_flight = t.issued - t.processed_total - lost t in
  (* Unstable when the leftover backlog exceeds what a loaded-but-stable
     system would plausibly hold in flight. *)
  let backlog_cap = max 2000 (int_of_float (0.02 *. float_of_int t.issued)) in
  (* Every recorded latency lands in exactly one class vector, so sorting
     the two classes and merging reproduces the sorted overall sample —
     one full sort instead of three (overall + per class). *)
  let p50, p95, p99, p999, small_p99, large_p99 =
    let small = Stats.Float_vec.to_array t.small_latencies in
    let large = Stats.Float_vec.to_array t.large_latencies in
    Stats.Quantile.sort_floats small;
    Stats.Quantile.sort_floats large;
    let all = Stats.Quantile.merge_sorted small large in
    let q a p =
      if Array.length a = 0 then Float.nan else Stats.Quantile.of_sorted a p
    in
    (q all 0.5, q all 0.95, q all 0.99, q all 0.999, q small 0.99, q large 0.99)
  in
  {
    Metrics.design = design.name;
    offered_mops = t.offered_mops;
    issued = t.issued;
    completed = t.processed_window;
    throughput_mops = float_of_int t.processed_window /. window;
    mean_us = Stats.Quantile.mean_of_vec t.latencies;
    p50_us = p50;
    p95_us = p95;
    p99_us = p99;
    p999_us = p999;
    small_p99_us = small_p99;
    large_p99_us = large_p99;
    nic_tx_utilization = Netsim.Txsched.utilization t.tx ~elapsed:window;
    stable = in_flight <= backlog_cap;
    per_core_ops = Array.copy t.core_ops;
    per_core_packets = Array.copy t.core_packets;
    final_large_cores = design.large_core_count ();
    final_threshold = design.current_threshold ();
    p99_series =
      (match t.windowed with
      | Some w -> Stats.Windowed.quantile_series w 0.99
      | None -> []);
    large_core_series = List.rev t.large_core_series;
    in_flight_end = in_flight;
    mean_queue_wait_us = Stats.Summary.mean t.queue_wait;
    mean_service_us = Stats.Summary.mean t.service;
    mean_tx_wait_us = Stats.Summary.mean t.tx_wait;
    served_total = t.processed_total - t.expired_misses;
    net_dropped = t.net_dropped;
    rx_dropped = t.rx_dropped;
    shed_small = t.shed_small;
    shed_large = t.shed_large;
    expired_misses = t.expired_misses;
    expired_keys =
      (match t.residency with Some r -> Residency.expired_keys r | None -> 0);
    evicted_keys =
      (match t.residency with Some r -> Residency.evicted_keys r | None -> 0);
  }
