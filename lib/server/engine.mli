(** Shared simulation harness underneath every server design.

    The engine owns the clock, the open-loop Poisson clients, the NIC (RX
    queues + TX line), the per-core accounting and the latency recorders.
    A {!design} supplies the scheduling policy: where an incoming request
    is aimed (client-side dispatch), what each core does next, and what
    happens on a control-loop epoch.

    Designs call back into the engine to consume CPU ({!busy}) and to
    serve requests ({!execute}); the engine handles completion, reply
    transmission, sampling and statistics. *)

type request = {
  slot : int;
      (** permanent index in the engine's request pool; every other field
          is overwritten when the slot is reused for a new arrival *)
  mutable op : Cost_model.op;
  mutable key_id : int;
  mutable item_size : int;
      (** GET: stored size (discovered at lookup);
          PUT: size carried in the request *)
  mutable is_large_truth : bool;
      (** dataset ground truth, for per-class metrics *)
  mutable scan_len : int;
      (** keys covered by a SCAN ([item_size] is the range's total
          bytes); 0 for GET/PUT *)
  mutable miss : bool;
      (** the GET found no live item — expired, evicted or never loaded;
          set at service start when a residency model is attached *)
  mutable frames_in : int;
      (** RX frames carrying the request; a fault plan's duplication
          doubles it (retransmission echo) *)
  mutable rx_queue : int;
  mutable span : int;
      (** flight-recorder slot assigned at arrival, [-1] when the request
          is not sampled (or no recorder is attached) *)
}

type t

(** Time-varying offered load, for elastic-resharding runs
    ({!Shardmgr}).  [rate_at now] is the offered rate (Mops) at simulated
    time [now]; [next_change now] is the next time the rate changes.
    Both must be pure functions of [now], piecewise-constant between
    changes.  While [rate_at] is [0.0] the arrival loop parks until
    [next_change] — no request is generated and no RNG stream advances —
    so a constant positive rate reproduces the unpaced arrival stream
    draw for draw. *)
type pacing = {
  rate_at : float -> float;
  next_change : float -> float;
}

(** The policy interface a server design implements. *)
type design = {
  name : string;
  dispatch : request -> int;
      (** client-side choice of RX queue (hardware dispatch) *)
  on_arrival : queue:int -> unit;
      (** a request was enqueued on [queue]; wake whoever polls it *)
  on_epoch : unit -> unit;  (** control-loop tick *)
  large_core_count : unit -> int;
  current_threshold : unit -> float;
}

val create :
  ?dynamic:Workload.Dynamic.t ->
  ?store:Kvstore.Store.t ->
  ?source:(unit -> Workload.Generator.request) ->
  ?pacing:pacing ->
  ?timed:Workload.Trace.t ->
  ?residency:Residency.t ->
  ?sweep_us:float ->
  ?obs:Obs.Instrument.t ->
  ?fault:Fault.Inject.t ->
  ?server:int ->
  Config.t ->
  Workload.Generator.t ->
  offered_mops:float ->
  t
(** [create cfg gen ~offered_mops] prepares a run at the given arrival rate
    (million ops/s).  [dynamic] varies the generator's p_large over time
    (§6.6).  [store] routes every simulated operation through a real
    {!Kvstore.Store} (used by examples and integration tests; the store
    must already contain the dataset's keys).  [source] overrides the
    generator as the supplier of request descriptors — e.g. a looping
    {!Workload.Trace.replayer} for trace-driven simulation; [dynamic] is
    ignored in that case.  [pacing] makes the offered rate time-varying
    (reshard and diurnal/burst scenario runs); [offered_mops] then only
    labels the metrics.  [timed] replays a {e timestamped} trace at its
    recorded arrival times (looping, re-based each lap), overriding the
    Poisson arrival loop entirely — [source] and [pacing] are ignored;
    raises [Invalid_argument] on an untimed or empty trace.
    [residency] attaches the TTL/eviction model ({!Residency}): GETs that
    find no live item become not-found replies counted in
    [Metrics.expired_misses], PUTs (re)load their key and evict under the
    memory budget (from an RNG stream forked only when residency is
    attached, so plain runs are byte-identical to pre-scenario builds);
    [sweep_us] additionally schedules the chunked background expiry sweep
    at that period.  [obs] attaches a flight recorder: arrivals are
    sampled into spans (from the recorder's own RNG stream, so attaching
    it perturbs no simulation randomness), the engine records RX-enqueue /
    service / TX / end-to-end timestamps, per-core timeline samples and
    one {!Obs.Decision_log} entry per control epoch; designs fill in the
    poll / classify / handoff stages via the [obs_*] hooks below.
    [fault] attaches a seeded fault injector ({!Fault.Inject}): arrivals
    draw a delivery fate (drop / duplicate / reorder), RX rings honour
    plan squeezes (and [cfg.rx_capacity]), and core work is slowed or
    stalled per the plan's windows.  The injector owns its RNG stream, so
    attaching it perturbs none of the engine's randomness.  [server]
    (default 0) is the id the plan's [kill-server]/[recover-server]
    windows match against: while this server is dead, every arrival
    bounces off the crashed NIC and counts [net_dropped] — multi-engine
    drivers ({!Shardmgr.Run}) pass each engine its cluster id. *)

val sim : t -> Dsim.Sim.t
val config : t -> Config.t
val cores : t -> int
val now : t -> float
val rx : t -> int -> int Netsim.Fifo.t
(** RX queue [i].  Queues carry pool {e slots} (resolve with
    {!req_of_slot}), not request pointers: int queues keep the
    per-request push/pop free of the GC write barrier.  Use [-1] as the
    [dummy] for design-side slot queues. *)

val req_of_slot : t -> int -> request
(** The pooled request currently occupying [slot].  Valid until the
    engine retires the slot (see {!execute}). *)

val dispatch_rng : t -> Dsim.Rng.t
(** RNG stream reserved for design dispatch decisions. *)

val put_master : t -> request -> int
(** The core that masters this request's key (keyhash-based): the RX queue
    for PUT dispatch under CREW. *)

val uniform_queue : t -> int
(** A uniformly random RX queue (GET dispatch). *)

val set_resume : t -> (int -> unit) -> unit
(** Install the design's continuation: [resume core] is called whenever
    [core] finishes a {!busy} interval or a request's service completes.
    Dispatched through a typed simulator event, so neither {!busy} nor
    {!execute} allocates a per-event closure.  A design installs it once
    at construction; the engine does nothing until it is set. *)

val busy : t -> core:int -> float -> unit
(** Occupy [core] for the given CPU time, then resume it (see
    {!set_resume}). *)

val execute : t -> core:int -> tx_queue:int -> extra_cpu:float -> request -> unit
(** Serve [request] on [core]: consumes its CPU cost (+ [extra_cpu]),
    then transmits the reply (subject to sampling), records latency and
    per-core counters, and finally resumes [core] (see {!set_resume}).
    [tx_queue] is the TX queue the reply leaves on (normally [core]'s own
    queue) — the §6.1 RX-stealing variant sends stolen smalls' replies
    through the victim's queue so they never serialize behind a large
    reply.  The engine retires the request (returns its pool slot) once
    the reply leaves the wire, or at completion when sampling elides the
    reply; designs must not touch it afterwards. *)

val run : t -> (t -> design) -> Metrics.t
(** Build the design, generate load, simulate, and report. *)

val raw_latencies : t -> Stats.Float_vec.t
(** All recorded end-to-end latencies (µs) of the last {!run}; used to
    combine distributions across NUMA domains ({!Minos.Numa}). *)

val windowed : t -> Stats.Windowed.t option
(** The per-window latency recorder (present when [cfg.window_us] is
    set); reshard runs union the raw windows across engines for a
    cluster-level p99 timeline. *)

val try_shed : t -> request -> large:bool -> bool
(** Admission control, called by designs at classification time with
    their view of the request's class.  [true] when the request must be
    dropped instead of served: the total RX backlog exceeds
    [cfg.shed_watermark] and the request is large-classified (smalls are
    shed only beyond 4x the watermark).  Counted per class in
    {!Metrics}.  On [true] the engine retires the request (returns its
    pool slot); the caller must not touch it afterwards.  Always [false]
    (and free) when no watermark is set. *)

val ctrl_delayed : t -> bool
(** Whether a fault plan is currently starving the control loop of fresh
    statistics; designs skip their epoch recomputation when it holds. *)

val corrupt_threshold : t -> float -> float
(** Apply the fault plan's control-corruption window (if open) to a
    freshly computed threshold; identity otherwise. *)

val lost : t -> int
(** NIC drops + ring drops + shed so far (cumulative, whole run). *)

val total_rx_backlog : t -> int
(** Sum of all RX queue depths right now. *)

val core_ops_live : t -> int array
(** The live per-core served-operation counters (do not mutate); the
    watchdog diffs them across epochs to detect a stalled core. *)

val core_busy_live : t -> float array
(** The live per-core busy-time accumulators (do not mutate). *)

val set_probe : t -> (core:int -> request -> unit) -> unit
(** Install an observer called at the start of every request execution
    (with the executing core).  For tests asserting scheduling invariants;
    no effect on simulated behaviour. *)

(** {2 Flight-recorder hooks}

    Called by designs at the corresponding scheduling points; each is a
    single timestamp store when the request carries a sampled span and a
    no-op otherwise (never allocates, safe on the hot path). *)

val obs_poll : t -> request -> unit
(** The request was dequeued from its RX queue. *)

val obs_classify : t -> request -> unit
(** The request was size-classified (size-aware designs). *)

val obs_handoff_enq : t -> request -> unit
(** Pushed onto a software handoff queue. *)

val obs_handoff_deq : t -> request -> unit
(** Popped from a software handoff queue by its serving core. *)
