(** HKH + work stealing (HKH+WS) — the ZygOS-style baseline.

    Hardware keyhash dispatch as in {!Design_hkh}, but each core stages the
    requests from its RX queue in a software queue and serves them one at a
    time; an idle core steals single requests from other cores' software
    queues, and — when all software queues are empty — batches of packets
    from other cores' RX queues (stolen packets land in the thief's
    software queue so they can be stolen in turn, §5.2).

    Stealing narrows the window for head-of-line blocking but cannot close
    it: it only happens when a core is idle, which becomes rare at high
    load, and a stolen request has usually already waited behind a large
    one. *)

val name : string

val make : Engine.t -> Engine.design
