(* Model-side residency: which keys are in memory, their TTL deadlines and
   LRU state.  Drives the larger-than-memory and TTL scenarios in the DES
   without materializing values — sizes come from the dataset, so the
   conservation identity (populated + inserts = resident + evicted +
   expired) is exact.

   Hot-path discipline: every per-request operation is allocation-free.
   Key state lives in flat float/int arrays indexed by key id; the
   resident set is a dense array with a position index for O(1)
   swap-remove, which also gives the eviction sampler O(1) uniform picks. *)

type t = {
  dataset : Workload.Dataset.t;
  ttl_us : float; (* infinity = no TTL *)
  budget_bytes : int; (* max_int = no memory budget *)
  expire_at : float array; (* per key id; nan = not resident *)
  last_access : float array; (* per resident key id *)
  resident_ids : int array; (* dense prefix of length [resident] *)
  pos_of : int array; (* key id -> index in resident_ids, -1 if absent *)
  mutable resident : int;
  mutable mem_used : int;
  mutable sweep_pos : int; (* cursor into resident_ids for chunked sweeps *)
  (* counters *)
  mutable inserts : int;
  mutable evicted_keys : int;
  mutable expired_keys : int;
  mutable expired_misses : int;
}

let evict_sample = 5

let create ?(ttl_us = infinity) ?(budget_bytes = max_int) dataset =
  if ttl_us <= 0.0 then invalid_arg "Residency.create: ttl_us must be positive";
  if budget_bytes <= 0 then invalid_arg "Residency.create: budget_bytes must be positive";
  let n = Workload.Dataset.n_keys dataset in
  {
    dataset;
    ttl_us;
    budget_bytes;
    expire_at = Array.make n nan;
    last_access = Array.make n 0.0;
    resident_ids = Array.make n 0;
    pos_of = Array.make n (-1);
    resident = 0;
    mem_used = 0;
    sweep_pos = 0;
    inserts = 0;
    evicted_keys = 0;
    expired_keys = 0;
    expired_misses = 0;
  }

let[@inline] is_resident t id = t.pos_of.(id) >= 0

let[@inline] size_of t id = Workload.Dataset.size_of_key t.dataset id

(* Remove from the dense set by swapping the last element into the hole. *)
let remove t id =
  let pos = t.pos_of.(id) in
  let last = t.resident - 1 in
  let moved = t.resident_ids.(last) in
  t.resident_ids.(pos) <- moved;
  t.pos_of.(moved) <- pos;
  t.resident <- last;
  t.pos_of.(id) <- -1;
  t.expire_at.(id) <- nan;
  t.mem_used <- t.mem_used - size_of t id;
  if t.sweep_pos > last then t.sweep_pos <- 0

let insert t ~now id =
  t.resident_ids.(t.resident) <- id;
  t.pos_of.(id) <- t.resident;
  t.resident <- t.resident + 1;
  t.expire_at.(id) <- now +. t.ttl_us;
  t.last_access.(id) <- now;
  t.mem_used <- t.mem_used + size_of t id

(* Sampled LRU: pick [evict_sample] random resident keys, evict the one
   with the oldest last access (Redis-style approximation — no global
   recency list to maintain on the hot path). *)
let evict_one t ~now rng =
  let victim = ref t.resident_ids.(Dsim.Rng.int rng t.resident) in
  for _ = 2 to evict_sample do
    let c = t.resident_ids.(Dsim.Rng.int rng t.resident) in
    if t.last_access.(c) < t.last_access.(!victim) then victim := c
  done;
  let id = !victim in
  (* A victim already past its deadline was dead weight, not working set:
     account it to the expiry leg, not the eviction leg. *)
  if t.expire_at.(id) <= now then t.expired_keys <- t.expired_keys + 1
  else t.evicted_keys <- t.evicted_keys + 1;
  remove t id

let populate t ~now =
  (* Fill in id order until the budget is reached — the initial resident
     prefix of a larger-than-memory dataset. *)
  let n = Workload.Dataset.n_keys t.dataset in
  let id = ref 0 in
  while !id < n && t.mem_used + size_of t !id <= t.budget_bytes do
    insert t ~now !id;
    t.inserts <- t.inserts + 1;
    incr id
  done;
  t.resident

(* GET path: true iff the key is resident and live at [now].  An expired
   resident key is reclaimed here (lazy expiry) and counts as a miss. *)
let on_get t ~now id =
  if t.pos_of.(id) < 0 then begin
    t.expired_misses <- t.expired_misses + 1;
    false
  end
  else if t.expire_at.(id) <= now then begin
    t.expired_keys <- t.expired_keys + 1;
    t.expired_misses <- t.expired_misses + 1;
    remove t id;
    false
  end
  else begin
    t.last_access.(id) <- now;
    true
  end

(* PUT path: (re)insert the key, refresh its deadline, and evict while
   over budget.  The new item itself is never the victim. *)
let on_put t ~now rng id =
  if t.pos_of.(id) >= 0 then begin
    t.expire_at.(id) <- now +. t.ttl_us;
    t.last_access.(id) <- now
  end
  else begin
    insert t ~now id;
    t.inserts <- t.inserts + 1
  end;
  while t.mem_used > t.budget_bytes && t.resident > 1 do
    evict_one t ~now rng
  done

(* One chunk of the background expiry sweep: examine up to [chunk]
   resident keys from the cursor, reclaiming lapsed ones.  Returns the
   number reclaimed.  The cursor wraps, so periodic chunks cover the whole
   set without a stop-the-world walk. *)
let sweep_step t ~now ~chunk =
  let reclaimed = ref 0 in
  let examined = ref 0 in
  while !examined < chunk && t.resident > 0 do
    if t.sweep_pos >= t.resident then t.sweep_pos <- 0;
    let id = t.resident_ids.(t.sweep_pos) in
    if t.expire_at.(id) <= now then begin
      t.expired_keys <- t.expired_keys + 1;
      remove t id;
      incr reclaimed
      (* [remove] swapped an unexamined key into [sweep_pos]; do not
         advance, so it is examined next. *)
    end
    else t.sweep_pos <- t.sweep_pos + 1;
    incr examined
  done;
  !reclaimed

let resident t = t.resident

let mem_used t = t.mem_used

let budget_bytes t = t.budget_bytes

let inserts t = t.inserts

let evicted_keys t = t.evicted_keys

let expired_keys t = t.expired_keys

let expired_misses t = t.expired_misses
