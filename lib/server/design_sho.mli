(** Software handoff (SHO) — the M/G/n baseline.

    The RAMCloud-style design (§5.2): a fixed set of handoff cores drains
    the RX queues into software queues; worker cores pull {e one request at
    a time} (late binding) from those queues, round-robin, and serve it.
    Clients only target the handoff cores' RX queues.

    Late binding mostly avoids head-of-line blocking, but peak throughput
    is bounded by the handoff cores' dispatch rate, and bursts of large
    requests can still occupy all workers at once. *)

val name : string

val make : Engine.t -> Engine.design
