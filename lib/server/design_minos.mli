(** Minos: size-aware sharding (§3) — the paper's contribution.

    Cores are split into a small pool and a large pool.  Only small cores
    read RX queues: each drains a batch of B from its own queue plus
    B/n_small from every large core's queue, so all queues drain at the
    same rate and a large core never pulls a small request behind a large
    one.  A small core classifies each request by item size against the
    current threshold: small requests are served in place (pure hardware
    dispatch — no software handoff on the 99 % path); large ones are pushed
    onto the software queue of the large core whose size range covers them.

    A control loop (implemented in {!Control}) re-derives the threshold
    (the 99th percentile of observed item sizes, smoothed across epochs)
    and the core split (proportional to cost share) every epoch, and
    re-shards the large size ranges so each large core carries equal cost.
    When no core needs to be large, the last core becomes a standby large
    core: it serves small requests but accepts any large request that
    shows up.

    Options (see {!Config}): a static threshold (the §6.2 offline variant,
    which also drops the per-request profiling cost) and large-core RX
    stealing (the §6.1 future-work variant: one extra large core, and idle
    large cores steal single requests from small cores' RX queues). *)

val name : string

val make : Engine.t -> Engine.design
