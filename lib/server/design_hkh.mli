(** Hardware keyhash-based sharding (HKH) — the n×M/G/1 baseline.

    The MICA-style design (§5.2): every request is dispatched in hardware
    to one core's RX queue (GETs to a random queue, PUTs to the key's
    master queue, per CREW) and is served by that core, run-to-completion,
    in batches of B.  No software queues, no stealing — and therefore full
    exposure to head-of-line blocking behind large requests. *)

val name : string

val make : Engine.t -> Engine.design
