type t = {
  per_shard : Kvserver.Metrics.t array;
  shard_share : float array;
  issued : int;
  served_total : int;
  net_dropped : int;
  rx_dropped : int;
  shed_small : int;
  shed_large : int;
  in_flight_end : int;
  throughput_mops : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  worst_shard_p99_us : float;
  imbalance : float;
  stable : bool;
}

let shard_telescopes (m : Kvserver.Metrics.t) =
  m.Kvserver.Metrics.issued
  = m.Kvserver.Metrics.served_total + m.Kvserver.Metrics.net_dropped
    + m.Kvserver.Metrics.rx_dropped + m.Kvserver.Metrics.shed_small
    + m.Kvserver.Metrics.shed_large + m.Kvserver.Metrics.in_flight_end

let aggregate ~shard_share results =
  let n = Array.length results in
  if n = 0 then invalid_arg "Cluster metrics: no shards";
  if Array.length shard_share <> n then
    invalid_arg "Cluster metrics: share/results length mismatch";
  let per_shard = Array.map fst results in
  let sum f = Array.fold_left (fun acc m -> acc + f m) 0 per_shard in
  let sumf f = Array.fold_left (fun acc m -> acc +. f m) 0.0 per_shard in
  let union = Stats.Float_vec.create () in
  Array.iter (fun (_, lat) -> Stats.Float_vec.append union lat) results;
  let qs =
    if Stats.Float_vec.length union = 0 then [ Float.nan; Float.nan; Float.nan ]
    else Stats.Quantile.many_of_vec union [ 0.5; 0.99; 0.999 ]
  in
  let p50_us, p99_us, p999_us =
    match qs with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let worst =
    Array.fold_left
      (fun acc (m : Kvserver.Metrics.t) ->
        let p = m.Kvserver.Metrics.p99_us in
        if Float.is_nan p then acc
        else if Float.is_nan acc then p
        else Float.max acc p)
      Float.nan per_shard
  in
  let max_share = Array.fold_left Float.max 0.0 shard_share in
  let mean_share =
    Array.fold_left ( +. ) 0.0 shard_share /. float_of_int n
  in
  {
    per_shard;
    shard_share = Array.copy shard_share;
    issued = sum (fun m -> m.Kvserver.Metrics.issued);
    served_total = sum (fun m -> m.Kvserver.Metrics.served_total);
    net_dropped = sum (fun m -> m.Kvserver.Metrics.net_dropped);
    rx_dropped = sum (fun m -> m.Kvserver.Metrics.rx_dropped);
    shed_small = sum (fun m -> m.Kvserver.Metrics.shed_small);
    shed_large = sum (fun m -> m.Kvserver.Metrics.shed_large);
    in_flight_end = sum (fun m -> m.Kvserver.Metrics.in_flight_end);
    throughput_mops = sumf (fun m -> m.Kvserver.Metrics.throughput_mops);
    mean_us =
      (if Stats.Float_vec.length union = 0 then Float.nan
       else Stats.Quantile.mean_of_vec union);
    p50_us;
    p99_us;
    p999_us;
    worst_shard_p99_us = worst;
    imbalance = (if mean_share > 0.0 then max_share /. mean_share else Float.nan);
    stable =
      Array.for_all (fun (m : Kvserver.Metrics.t) -> m.Kvserver.Metrics.stable) per_shard;
  }

let telescopes t =
  t.issued
  = t.served_total + t.net_dropped + t.rx_dropped + t.shed_small + t.shed_large
    + t.in_flight_end
  && Array.for_all shard_telescopes t.per_shard
