(** Aggregated results of one cluster run, with per-shard breakdown.

    Cluster-level quantiles come from the union of the shards' raw
    latency samples (each shard contributes in proportion to the traffic
    it actually served, so the union is the client-observed single-key
    distribution).  Loss accounting sums the per-shard counters, and
    because every {!Kvserver.Metrics.t} telescopes exactly, so does the
    cluster total:

    [issued = served_total + net_dropped + rx_dropped + shed_small
            + shed_large + in_flight_end]

    summed over shards — checked by {!telescopes}. *)

type t = {
  per_shard : Kvserver.Metrics.t array;
  shard_share : float array;  (** routed traffic fraction per shard *)
  issued : int;
  served_total : int;
  net_dropped : int;
  rx_dropped : int;
  shed_small : int;
  shed_large : int;
  in_flight_end : int;
  throughput_mops : float;    (** sum of per-shard throughputs *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  worst_shard_p99_us : float; (** max over shards of per-shard p99 *)
  imbalance : float;          (** max shard share / mean shard share *)
  stable : bool;              (** every shard stable *)
}

val aggregate :
  shard_share:float array ->
  (Kvserver.Metrics.t * Stats.Float_vec.t) array ->
  t
(** [aggregate ~shard_share results] combines per-shard metrics and raw
    latency vectors (as returned by the per-shard engine runs).  The
    latency vectors are only read, not retained. *)

val telescopes : t -> bool
(** Exact cluster-wide loss accounting, and per-shard for good measure. *)
