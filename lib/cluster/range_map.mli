(** Explicit key-range sharding over the dense key space [0, n_keys).

    Each server owns one contiguous id range; {!lookup} is a binary
    search over the range starts.  Under a skewed workload equal-width
    ranges produce unequal load, which is the point: {!rebalance} takes
    observed per-bucket load weights and re-cuts the ranges so each
    server carries (approximately) the same weight — the between-epoch
    rebalance step of a cluster run. *)

type t

val create : ?starts:int array -> servers:int -> n_keys:int -> unit -> t
(** [starts], when given, must have length [servers], begin with 0 and be
    strictly increasing below [n_keys]; server [i] owns
    [[starts.(i), starts.(i+1))].  Default: equal-width ranges.
    [servers] must be in [1, n_keys]. *)

val servers : t -> int
val n_keys : t -> int

val starts : t -> int array
(** A copy of the range starts (length [servers], [starts.(0) = 0]). *)

val lookup : t -> int -> int
(** [lookup t key_id] is the owning server.  Raises [Invalid_argument]
    when [key_id] is outside [0, n_keys). *)

(** Why a probe-weight array cannot drive a {!rebalance}: degenerate
    inputs (an all-zero or negative/NaN probe) used to be silently
    accepted and could yield a stale or empty cut — now they are typed
    errors the caller must handle. *)
type weight_error =
  | All_zero  (** the probe saw no load at all — nothing to cut on *)
  | Negative of int  (** bucket index with a negative weight *)
  | Not_finite of int  (** bucket index with a NaN/infinite weight *)
  | Too_few_buckets of { buckets : int; servers : int }
  | Too_many_buckets of { buckets : int; n_keys : int }

exception Bad_weights of weight_error

val weight_error_to_string : weight_error -> string

val check_weights : t -> weights:float array -> (unit, weight_error) result
(** Validate a probe-weight array against this map without cutting. *)

val rebalance : t -> weights:float array -> t
(** [rebalance t ~weights] re-cuts the ranges from observed load.
    [weights.(b)] is the load seen in bucket [b] of the key space (the
    array length sets the bucket count; buckets are equal-width in key
    ids).  Cuts are placed greedily at bucket granularity so each
    server's cumulative weight approaches [total / servers].  Raises
    {!Bad_weights} when {!check_weights} rejects the array (all-zero,
    negative or non-finite weights, bucket count out of range). *)
