(** One deterministic multi-server cluster run.

    N independent {!Kvserver.Engine} instances — each with its own NIC,
    cores, RNG streams and size-aware control loop — serve disjoint
    keyspace shards behind a client-side {!Router}.  The client request
    stream is an open-loop Poisson process; routing a Poisson stream
    splits it into independent Poisson streams (thinning), so each shard
    is simulated as its own engine at its routed share of the offered
    load, replaying the same seeded request stream filtered down to the
    keys it owns.  Per-shard results are therefore independent jobs —
    [map] lets the caller fan them out over a domain pool, and results
    are bit-identical to the sequential order by construction.

    A run proceeds as: probe the routed shard shares (and per-bucket key
    load) with a dedicated seeded generator; optionally rebalance a
    range router from the observed bucket weights; run one engine per
    shard; aggregate ({!Metrics.aggregate}); and measure fan-out
    multi-GET completion ({!Fanout.measure}) over the recorded per-shard
    latency distributions. *)

type shard_result = Kvserver.Metrics.t * Stats.Float_vec.t

type policy = Hash | Range

type rebalance_info = {
  imbalance_before : float; (** max/mean shard share before re-cutting *)
  imbalance_after : float;
  moved_share : float;      (** fraction of probed traffic that changed shard *)
}

type t = {
  servers : int;
  policy_name : string;
  design_name : string;
  offered_mops : float;
  seed : int;
  metrics : Metrics.t;
  fanout : Fanout.point list;
  rebalance : rebalance_info option;
}

val run :
  ?vnodes:int ->
  ?policy:policy ->
  ?rebalance:bool ->
  ?fanouts:int list ->
  ?trials:int ->
  ?probe:int ->
  ?seed:int ->
  ?instrument:(int -> Obs.Instrument.t) ->
  ?map:((int -> shard_result) -> int list -> shard_result list) ->
  cfg:Kvserver.Config.t ->
  design:Kvserver.Design.t ->
  dataset:Workload.Dataset.t ->
  servers:int ->
  workload:Workload.Spec.t ->
  offered_mops:float ->
  unit ->
  t
(** [policy] defaults to [Hash] (with [vnodes], default 128); [rebalance]
    (default false) re-cuts a [Range] router between the probe and the
    measured run and is a no-op under [Hash].  [fanouts] (default
    [1; 2; 4; 8; 16]) and [trials] (default 20_000) drive the multi-GET
    measurement; [probe] (default 65_536) is the number of routed probe
    requests behind the share estimate.  [offered_mops] is the total
    cluster load; each shard runs at its routed share of it.
    [instrument s] supplies the per-shard flight recorder (create it
    with [~server:s] so exported traces tag the shard); [map] supplies
    the parallel fan-out (default: sequential [List.map]) and must
    preserve order and length. *)
