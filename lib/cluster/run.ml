type shard_result = Kvserver.Metrics.t * Stats.Float_vec.t

type policy = Hash | Range

type rebalance_info = {
  imbalance_before : float;
  imbalance_after : float;
  moved_share : float;
}

type t = {
  servers : int;
  policy_name : string;
  design_name : string;
  offered_mops : float;
  seed : int;
  metrics : Metrics.t;
  fanout : Fanout.point list;
  rebalance : rebalance_info option;
}

let probe_buckets = 128

(* Replay [probe] requests from a dedicated generator stream through the
   router: per-shard routed counts plus per-bucket key-load weights (the
   input to a range rebalance).  The generator seed depends only on the
   run seed, so the probe — and hence the shares every engine's offered
   load derives from — is a pure function of (seed, dataset, router). *)
let probe_shares ~probe ~seed ~workload ~dataset router =
  let n_servers = Router.servers router in
  let n_keys = Workload.Dataset.n_keys dataset in
  let gen =
    Workload.Generator.create ~seed:(seed + 7919)
      ~p_large:workload.Workload.Spec.p_large
      ~get_ratio:workload.Workload.Spec.get_ratio dataset
  in
  let counts = Array.make n_servers 0 in
  let weights = Array.make probe_buckets 0.0 in
  for _ = 1 to probe do
    let r = Workload.Generator.next gen in
    let s = Router.route router r.Workload.Generator.key_id in
    counts.(s) <- counts.(s) + 1;
    let b = r.Workload.Generator.key_id * probe_buckets / n_keys in
    weights.(b) <- weights.(b) +. 1.0
  done;
  let floor_share = 1.0 /. float_of_int probe in
  let shares =
    Array.map
      (fun c -> Float.max floor_share (float_of_int c /. float_of_int probe))
      counts
  in
  (shares, weights)

(* Fraction of the probe stream whose owning shard differs between the
   two routers. *)
let moved_share ~probe ~seed ~workload ~dataset before after =
  let gen =
    Workload.Generator.create ~seed:(seed + 7919)
      ~p_large:workload.Workload.Spec.p_large
      ~get_ratio:workload.Workload.Spec.get_ratio dataset
  in
  let moved = ref 0 in
  for _ = 1 to probe do
    let r = Workload.Generator.next gen in
    let k = r.Workload.Generator.key_id in
    if Router.route before k <> Router.route after k then incr moved
  done;
  float_of_int !moved /. float_of_int probe

let imbalance_of shares =
  let n = Array.length shares in
  let max_s = Array.fold_left Float.max 0.0 shares in
  let mean_s = Array.fold_left ( +. ) 0.0 shares /. float_of_int n in
  if mean_s > 0.0 then max_s /. mean_s else Float.nan

let run ?(vnodes = 128) ?(policy = Hash) ?(rebalance = false)
    ?(fanouts = [ 1; 2; 4; 8; 16 ]) ?trials ?(probe = 65_536) ?(seed = 1)
    ?instrument ?(map = fun f xs -> List.map f xs) ~cfg ~design ~dataset ~servers
    ~workload ~offered_mops () =
  if servers < 1 then invalid_arg "Cluster.run: servers must be >= 1";
  if probe < 1 then invalid_arg "Cluster.run: probe must be >= 1";
  if offered_mops <= 0.0 then invalid_arg "Cluster.run: offered load must be > 0";
  let n_keys = Workload.Dataset.n_keys dataset in
  let router =
    match policy with
    | Hash ->
        Router.hash
          ~key_hash:(Workload.Dataset.key_partition dataset)
          (Ring.create ~vnodes ~servers ())
    | Range -> Router.range (Range_map.create ~servers ~n_keys ())
  in
  let shares, weights = probe_shares ~probe ~seed ~workload ~dataset router in
  let router, shares, rebalance =
    if not rebalance then (router, shares, None)
    else begin
      let router' = Router.rebalance router ~weights in
      let shares', _ = probe_shares ~probe ~seed ~workload ~dataset router' in
      let info =
        {
          imbalance_before = imbalance_of shares;
          imbalance_after = imbalance_of shares';
          moved_share = moved_share ~probe ~seed ~workload ~dataset router router';
        }
      in
      (router', shares', Some info)
    end
  in
  let route k = Router.route router k in
  let shard_job s =
    let gen =
      Workload.Generator.create ~seed:(seed + 101)
        ~p_large:workload.Workload.Spec.p_large
        ~get_ratio:workload.Workload.Spec.get_ratio dataset
    in
    (* Thin the shared request stream down to this shard's keys: the
       shard sees its own requests in global order, at its routed share
       of the total Poisson rate. *)
    let rec source () =
      let r = Workload.Generator.next gen in
      if route r.Workload.Generator.key_id = s then r else source ()
    in
    let cfg_s =
      { cfg with Kvserver.Config.seed = cfg.Kvserver.Config.seed + seed + (97 * s) }
    in
    let obs = match instrument with None -> None | Some f -> Some (f s) in
    let eng =
      Kvserver.Engine.create ~source ?obs cfg_s gen
        ~offered_mops:(offered_mops *. shares.(s))
    in
    let m = Kvserver.Engine.run eng (Kvserver.Design.make design) in
    (m, Kvserver.Engine.raw_latencies eng)
  in
  let results = Array.of_list (map shard_job (List.init servers Fun.id)) in
  if Array.length results <> servers then
    invalid_arg "Cluster.run: map must preserve length";
  let metrics = Metrics.aggregate ~shard_share:shares results in
  let fanout =
    Fanout.measure
      ~rng:(Dsim.Rng.create (seed lxor 0x0fa17007))
      ~route
      ~sample_key:(fun rng -> Workload.Dataset.sample_get_key dataset rng)
      ~latencies:(Array.map snd results) ?trials ~fanouts ()
  in
  {
    servers;
    policy_name = Router.policy_name router;
    design_name = Kvserver.Design.name design;
    offered_mops;
    seed;
    metrics;
    fanout;
    rebalance;
  }
