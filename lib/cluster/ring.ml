(* SplitMix64-style finalizer on native ints (constants truncated to 63
   bits, mirroring Dsim.Rng); positions are masked non-negative so the
   binary search below works on a totally ordered int ring. *)
let mix z =
  let z = (z + 0x1E3779B97F4A7C15) * 0x2F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

type t = {
  servers : int;
  vnodes : int;
  points : int array; (* sorted ring positions *)
  owner : int array;  (* owner.(i) = server owning points.(i) *)
}

(* Feed (seed, server, vnode) through the mixer twice so vnode points of
   one server are spread independently.  A server's points depend only on
   (seed, server, vnode): growing or shrinking the membership never moves
   another server's points, which is what makes add/remove migrations
   minimal. *)
let point ~seed s v = mix (mix ((seed * 0x3779) lxor (s * 0x10001) lxor v) + v)

let of_members ?(vnodes = 128) ?(seed = 0) members =
  let m = Array.of_list members in
  let k = Array.length m in
  if k < 1 then invalid_arg "Ring.of_members: need at least one member";
  if vnodes < 1 then invalid_arg "Ring.of_members: vnodes must be >= 1";
  Array.iter
    (fun s ->
      if s < 0 then invalid_arg "Ring.of_members: negative server id")
    m;
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if m.(i) = m.(j) then invalid_arg "Ring.of_members: duplicate server id"
    done
  done;
  let n = k * vnodes in
  let pairs = Array.make n (0, 0) in
  for i = 0 to k - 1 do
    let s = m.(i) in
    for v = 0 to vnodes - 1 do
      pairs.((i * vnodes) + v) <- (point ~seed s v, s)
    done
  done;
  Array.sort
    (fun (a, sa) (b, sb) ->
      if a <> b then Int.compare a b else Int.compare sa sb)
    pairs;
  {
    servers = k;
    vnodes;
    points = Array.map fst pairs;
    owner = Array.map snd pairs;
  }

let create ?(vnodes = 128) ?(seed = 0) ~servers () =
  if servers < 1 then invalid_arg "Ring.create: servers must be >= 1";
  of_members ~vnodes ~seed (List.init servers Fun.id)

let servers t = t.servers
let vnodes t = t.vnodes

let lookup t h =
  let h = mix h in
  let n = Array.length t.points in
  (* First point >= h, else wrap to point 0. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  t.owner.(if !lo = n then 0 else !lo)

let remove t s =
  if t.servers <= 1 then invalid_arg "Ring.remove: cannot remove the last server";
  let keep = ref [] in
  for i = Array.length t.points - 1 downto 0 do
    if t.owner.(i) <> s then keep := (t.points.(i), t.owner.(i)) :: !keep
  done;
  let pairs = Array.of_list !keep in
  {
    servers = t.servers - 1;
    vnodes = t.vnodes;
    points = Array.map fst pairs;
    owner = Array.map snd pairs;
  }
