type t = { n_keys : int; starts : int array }

type weight_error =
  | All_zero
  | Negative of int
  | Not_finite of int
  | Too_few_buckets of { buckets : int; servers : int }
  | Too_many_buckets of { buckets : int; n_keys : int }

exception Bad_weights of weight_error

let weight_error_to_string = function
  | All_zero -> "all probe weights are zero"
  | Negative b -> "negative weight in bucket " ^ string_of_int b
  | Not_finite b -> "non-finite weight in bucket " ^ string_of_int b
  | Too_few_buckets { buckets; servers } ->
      "only " ^ string_of_int buckets ^ " buckets for " ^ string_of_int servers
      ^ " servers (need at least one per server)"
  | Too_many_buckets { buckets; n_keys } ->
      string_of_int buckets ^ " buckets exceed the " ^ string_of_int n_keys
      ^ "-key space"

let validate_starts ~servers ~n_keys starts =
  if Array.length starts <> servers then
    invalid_arg "Range_map: starts length must equal servers";
  if starts.(0) <> 0 then invalid_arg "Range_map: starts must begin at 0";
  for i = 1 to servers - 1 do
    if starts.(i) <= starts.(i - 1) || starts.(i) >= n_keys then
      invalid_arg "Range_map: starts must be strictly increasing below n_keys"
  done

let create ?starts ~servers ~n_keys () =
  if servers < 1 then invalid_arg "Range_map.create: servers must be >= 1";
  if n_keys < servers then invalid_arg "Range_map.create: n_keys < servers";
  let starts =
    match starts with
    | Some s ->
        validate_starts ~servers ~n_keys s;
        Array.copy s
    | None -> Array.init servers (fun i -> i * n_keys / servers)
  in
  { n_keys; starts }

let servers t = Array.length t.starts
let n_keys t = t.n_keys
let starts t = Array.copy t.starts

let lookup t key_id =
  if key_id < 0 || key_id >= t.n_keys then
    invalid_arg "Range_map.lookup: key id out of range";
  (* Greatest i with starts.(i) <= key_id. *)
  let lo = ref 0 and hi = ref (Array.length t.starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.starts.(mid) <= key_id then lo := mid else hi := mid - 1
  done;
  !lo

let check_weights t ~weights =
  let n_servers = Array.length t.starts in
  let buckets = Array.length weights in
  if buckets < n_servers then
    Error (Too_few_buckets { buckets; servers = n_servers })
  else if buckets > t.n_keys then
    Error (Too_many_buckets { buckets; n_keys = t.n_keys })
  else begin
    let err = ref None in
    let total = ref 0.0 in
    for b = buckets - 1 downto 0 do
      let w = weights.(b) in
      if not (Float.is_finite w) then err := Some (Not_finite b)
      else if w < 0.0 then err := Some (Negative b);
      total := !total +. w
    done;
    match !err with
    | Some e -> Error e
    | None -> if !total <= 0.0 then Error All_zero else Ok ()
  end

let rebalance t ~weights =
  (match check_weights t ~weights with
  | Ok () -> ()
  | Error e -> raise (Bad_weights e));
  let n_servers = Array.length t.starts in
  let buckets = Array.length weights in
  let total = ref 0.0 in
  Array.iter (fun w -> total := !total +. w) weights;
  begin
    (* Walk the buckets, cutting a new range once the running weight
       passes the next multiple of total/servers.  A cut at bucket
       boundary [b + 1] is only legal when it advances past the previous
       start and leaves every remaining server at least one key, so the
       result is always a valid strictly-increasing starts array. *)
    let target = !total /. float_of_int n_servers in
    let starts = Array.make n_servers 0 in
    let next = ref 1 in
    let acc = ref 0.0 in
    for b = 0 to buckets - 1 do
      acc := !acc +. weights.(b);
      if !next < n_servers && !acc >= target *. float_of_int !next then begin
        let cut = (b + 1) * t.n_keys / buckets in
        if cut > starts.(!next - 1) && cut <= t.n_keys - (n_servers - !next) then begin
          starts.(!next) <- cut;
          incr next
        end
      end
    done;
    (* Degenerate tail (e.g. all weight in the last buckets): any server
       still without a cut takes the smallest remaining range. *)
    while !next < n_servers do
      let min_start = starts.(!next - 1) + 1 in
      let even = !next * t.n_keys / n_servers in
      starts.(!next) <- (if even > min_start then even else min_start);
      incr next
    done;
    validate_starts ~servers:n_servers ~n_keys:t.n_keys starts;
    { t with starts }
  end
