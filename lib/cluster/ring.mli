(** Consistent-hash ring with virtual nodes.

    Each server owns [vnodes] pseudo-random points on a ring of hash
    positions; a key is served by the owner of the first point at or
    after the key's own hashed position (wrapping around).  Virtual nodes
    smooth the load split: with 128 vnodes the heaviest shard carries
    within ~1.3× the mean key share (pinned by test/test_cluster.ml).

    The construction is a pure function of [(servers, vnodes, seed)] —
    no global state — so routing is deterministic, and {!remove} shows
    the defining property of consistent hashing: deleting one server
    moves only the keys that server owned. *)

type t

val create : ?vnodes:int -> ?seed:int -> servers:int -> unit -> t
(** [vnodes] defaults to 128, [seed] to 0.  [servers] must be >= 1.
    Equivalent to [of_members (List.init servers Fun.id)]. *)

val of_members : ?vnodes:int -> ?seed:int -> int list -> t
(** The ring over an explicit membership (arbitrary non-negative,
    distinct server ids).  A server's points are a pure function of
    [(seed, server, vnode)], independent of the other members — so
    [of_members (ms @ [s])] moves only keys that land on [s]'s new
    points, and [remove (of_members ms) s] routes identically to
    [of_members] over [ms] without [s] (pinned by qcheck in
    test/test_cluster.ml).  The elastic-resharding cutover protocol
    ({!Shardmgr}) relies on exactly these two properties. *)

val servers : t -> int
(** Number of members (not the largest id). *)

val vnodes : t -> int

val lookup : t -> int -> int
(** [lookup t h] is the server owning hash [h] (any non-negative int;
    it is re-mixed internally, so raw key ids are acceptable input). *)

val remove : t -> int -> t
(** [remove t s] is the ring without server [s]'s points (server ids keep
    their numbering).  Keys not owned by [s] keep their owner — the
    stability property {!lookup} inherits from the ring structure.
    Raises [Invalid_argument] when removing the last server. *)
