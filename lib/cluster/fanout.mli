(** Fan-out multi-GET completion times: the tail-at-scale effect.

    A multi-GET of degree [k] issues [k] single-key GETs, routed to
    their shards, and completes when the slowest shard replies — its
    latency is the max over the involved shards.  With per-shard p99
    around [x], the p99 of a k-way fan-out approaches the per-shard
    [1 - 0.01/k] quantile, which is how a modest per-shard tail becomes
    the common case at scale (Dean & Barroso, "The Tail at Scale").

    {!measure} estimates the fan-out latency distribution empirically by
    seeded Monte-Carlo over the shards' recorded latency samples;
    {!analytic_max_quantile} gives the closed-form iid order-statistics
    answer the tests compare against. *)

type point = {
  fanout : int;
  p50_us : float;
  p99_us : float;
  mean_us : float;
}

val measure :
  rng:Dsim.Rng.t ->
  route:(int -> int) ->
  sample_key:(Dsim.Rng.t -> int) ->
  latencies:Stats.Float_vec.t array ->
  ?trials:int ->
  fanouts:int list ->
  unit ->
  point list
(** For each degree [k] in [fanouts], run [trials] (default 20_000)
    simulated multi-GETs: draw [k] keys with [sample_key], route each to
    its shard, draw one latency sample per {e distinct} involved shard
    from that shard's recorded distribution, and record the max.  Shards
    with no recorded samples contribute nothing.  All draws come from
    [rng], so results are a pure function of the RNG state and inputs.
    Raises [Invalid_argument] if every routed shard is empty. *)

val analytic_max_quantile : float array -> k:int -> q:float -> float
(** [analytic_max_quantile sorted ~k ~q]: the [q]-quantile of the max of
    [k] iid draws from the empirical distribution given by [sorted]
    (ascending), i.e. the [q{^ 1/k}]-quantile of the base distribution —
    the inverse-CDF identity [P(max <= x) = F(x){^ k}]. *)

val analytic_hedge_quantile : float array -> d:float -> q:float -> float
(** [analytic_hedge_quantile sorted ~d ~q]: the [q]-quantile of a hedged
    request's completion time [min (X{_1}, d + X{_2})] — primary issued
    at 0, backup after delay [d], both latencies iid draws from the
    empirical distribution given by [sorted] (ascending).  The hedged
    CDF is [G(x) = F(x) + (1 - F(x)) * F(x - d)]: for [x < d] only the
    primary can have finished, beyond that the backup cuts the tail.
    [G] is a step function jumping only at the sample points and their
    [d]-shifts, so the quantile is found by exact inversion over that
    candidate set.  [d = 0] degenerates to min-of-two (tied requests);
    large [d] recovers the unhedged quantile. *)

val sample_hedge_quantile :
  rng:Dsim.Rng.t ->
  float array ->
  d:float ->
  q:float ->
  ?trials:int ->
  unit ->
  float
(** Monte-Carlo estimate of {!analytic_hedge_quantile}: [trials]
    (default 20_000) draws of [min (X{_1}, d + X{_2})] resampled from
    [sorted] with [rng].  The tests check it converges to the analytic
    answer. *)
