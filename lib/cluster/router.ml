type policy = Hash of (int -> int) * Ring.t | Range of Range_map.t

type t = { policy : policy }

let hash ~key_hash ring = { policy = Hash (key_hash, ring) }

let range map = { policy = Range map }

let servers t =
  match t.policy with
  | Hash (_, ring) -> Ring.servers ring
  | Range map -> Range_map.servers map

let policy_name t =
  match t.policy with Hash _ -> "hash" | Range _ -> "range"

let route t key_id =
  match t.policy with
  | Hash (key_hash, ring) -> Ring.lookup ring (key_hash key_id)
  | Range map -> Range_map.lookup map key_id

let rebalance t ~weights =
  match t.policy with
  | Hash _ -> t
  | Range map -> { policy = Range (Range_map.rebalance map ~weights) }
