(** Client-side request router: key id → server id.

    Two policies: consistent hashing over the key's name hash
    ({!Ring}), and explicit key-id ranges ({!Range_map}).  The hash
    policy takes a [key_hash] function so callers can route on the same
    precomputed hash the engines dispatch on
    ({!Workload.Dataset.key_partition}); routing is then a pure function
    of the dataset and ring, independent of request order. *)

type t

val hash : key_hash:(int -> int) -> Ring.t -> t
(** Route by consistent hashing: server = [Ring.lookup ring (key_hash
    key_id)]. *)

val range : Range_map.t -> t

val servers : t -> int

val policy_name : t -> string
(** ["hash"] or ["range"]. *)

val route : t -> int -> int
(** [route t key_id] is the server the key's operations go to. *)

val rebalance : t -> weights:float array -> t
(** Re-cut a range router from observed per-bucket load
    ({!Range_map.rebalance}); a hash router is returned unchanged
    (consistent hashing has no explicit cut points to move). *)
