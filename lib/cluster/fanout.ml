type point = {
  fanout : int;
  p50_us : float;
  p99_us : float;
  mean_us : float;
}

let measure ~rng ~route ~sample_key ~latencies ?(trials = 20_000) ~fanouts () =
  if trials < 1 then invalid_arg "Fanout.measure: trials must be >= 1";
  let n_shards = Array.length latencies in
  let involved = Array.make n_shards false in
  let draw_max k =
    Array.fill involved 0 n_shards false;
    for _ = 1 to k do
      let shard = route (sample_key rng) in
      involved.(shard) <- true
    done;
    let m = ref Float.nan in
    for s = 0 to n_shards - 1 do
      if involved.(s) then begin
        let v = latencies.(s) in
        let len = Stats.Float_vec.length v in
        if len > 0 then begin
          let x = Stats.Float_vec.get v (Dsim.Rng.int rng len) in
          if Float.is_nan !m || x > !m then m := x
        end
      end
    done;
    !m
  in
  List.map
    (fun k ->
      if k < 1 then invalid_arg "Fanout.measure: fanout degree must be >= 1";
      let samples = Stats.Float_vec.create ~capacity:trials () in
      for _ = 1 to trials do
        let x = draw_max k in
        if not (Float.is_nan x) then Stats.Float_vec.push samples x
      done;
      if Stats.Float_vec.length samples = 0 then
        invalid_arg "Fanout.measure: no latency samples on any routed shard";
      match Stats.Quantile.many_of_vec samples [ 0.5; 0.99 ] with
      | [ p50_us; p99_us ] ->
          { fanout = k; p50_us; p99_us; mean_us = Stats.Quantile.mean_of_vec samples }
      | _ -> assert false)
    fanouts

let analytic_max_quantile sorted ~k ~q =
  if k < 1 then invalid_arg "Fanout.analytic_max_quantile: k must be >= 1";
  if not (q > 0.0 && q <= 1.0) then
    invalid_arg "Fanout.analytic_max_quantile: q out of (0, 1]";
  Stats.Quantile.of_sorted sorted (q ** (1.0 /. float_of_int k))

(* Empirical CDF of [sorted]: fraction of samples <= x, by binary search
   for the first index strictly greater than x. *)
let ecdf sorted x =
  let n = Array.length sorted in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sorted.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  float_of_int !lo /. float_of_int n

let analytic_hedge_quantile sorted ~d ~q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Fanout.analytic_hedge_quantile: empty sample";
  if not (Float.is_finite d && d >= 0.0) then
    invalid_arg "Fanout.analytic_hedge_quantile: d must be finite and >= 0";
  if not (q > 0.0 && q <= 1.0) then
    invalid_arg "Fanout.analytic_hedge_quantile: q out of (0, 1]";
  (* Completion is min (X1, d + X2) with X1, X2 iid from the empirical
     distribution, so G(x) = F(x) + (1 - F(x)) * F(x - d).  G only jumps
     at the sample points and their d-shifts; invert over that set. *)
  let g x = ecdf sorted x +. ((1.0 -. ecdf sorted x) *. ecdf sorted (x -. d)) in
  let candidates = Array.make (2 * n) 0.0 in
  Array.blit sorted 0 candidates 0 n;
  for i = 0 to n - 1 do
    candidates.(n + i) <- sorted.(i) +. d
  done;
  Array.sort Float.compare candidates;
  let lo = ref 0 and hi = ref (Array.length candidates - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if g candidates.(mid) >= q then hi := mid else lo := mid + 1
  done;
  candidates.(!lo)

let sample_hedge_quantile ~rng sorted ~d ~q ?(trials = 20_000) () =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Fanout.sample_hedge_quantile: empty sample";
  if trials < 1 then invalid_arg "Fanout.sample_hedge_quantile: trials must be >= 1";
  let samples = Stats.Float_vec.create ~capacity:trials () in
  for _ = 1 to trials do
    let x1 = sorted.(Dsim.Rng.int rng n) in
    let x2 = sorted.(Dsim.Rng.int rng n) in
    Stats.Float_vec.push samples (Float.min x1 (d +. x2))
  done;
  Stats.Quantile.of_vec samples q
