type point = {
  fanout : int;
  p50_us : float;
  p99_us : float;
  mean_us : float;
}

let measure ~rng ~route ~sample_key ~latencies ?(trials = 20_000) ~fanouts () =
  if trials < 1 then invalid_arg "Fanout.measure: trials must be >= 1";
  let n_shards = Array.length latencies in
  let involved = Array.make n_shards false in
  let draw_max k =
    Array.fill involved 0 n_shards false;
    for _ = 1 to k do
      let shard = route (sample_key rng) in
      involved.(shard) <- true
    done;
    let m = ref Float.nan in
    for s = 0 to n_shards - 1 do
      if involved.(s) then begin
        let v = latencies.(s) in
        let len = Stats.Float_vec.length v in
        if len > 0 then begin
          let x = Stats.Float_vec.get v (Dsim.Rng.int rng len) in
          if Float.is_nan !m || x > !m then m := x
        end
      end
    done;
    !m
  in
  List.map
    (fun k ->
      if k < 1 then invalid_arg "Fanout.measure: fanout degree must be >= 1";
      let samples = Stats.Float_vec.create ~capacity:trials () in
      for _ = 1 to trials do
        let x = draw_max k in
        if not (Float.is_nan x) then Stats.Float_vec.push samples x
      done;
      if Stats.Float_vec.length samples = 0 then
        invalid_arg "Fanout.measure: no latency samples on any routed shard";
      match Stats.Quantile.many_of_vec samples [ 0.5; 0.99 ] with
      | [ p50_us; p99_us ] ->
          { fanout = k; p50_us; p99_us; mean_us = Stats.Quantile.mean_of_vec samples }
      | _ -> assert false)
    fanouts

let analytic_max_quantile sorted ~k ~q =
  if k < 1 then invalid_arg "Fanout.analytic_max_quantile: k must be >= 1";
  if not (q > 0.0 && q <= 1.0) then
    invalid_arg "Fanout.analytic_max_quantile: q out of (0, 1]";
  Stats.Quantile.of_sorted sorted (q ** (1.0 /. float_of_int k))
