type 'reply t = {
  capacity : int;
  table : (int64, 'reply) Hashtbl.t;
  order : int64 Queue.t; (* insertion order, for FIFO eviction *)
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Dedup.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (min capacity 4096); order = Queue.create () }

let find t id = Hashtbl.find_opt t.table id

let mem t id = Hashtbl.mem t.table id

let size t = Hashtbl.length t.table

let capacity t = t.capacity

let insert t id reply =
  if Hashtbl.length t.table >= t.capacity then begin
    match Queue.take_opt t.order with
    | Some oldest -> Hashtbl.remove t.table oldest
    | None -> ()
  end;
  Hashtbl.replace t.table id reply;
  Queue.add id t.order

let execute t ~id f =
  match find t id with
  | Some reply -> (reply, `Replayed)
  | None ->
      let reply = f () in
      insert t id reply;
      (reply, `Fresh)
