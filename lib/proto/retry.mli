(** Client-side retransmission with exponential backoff (§4.1:
    "Retransmission is handled by the client").

    The driver is transport-agnostic: the caller supplies [send] (emit the
    request, possibly again) and [wait_reply] (block up to a deadline for
    a matching reply).  Paired with a server-side {!Dedup} cache this
    yields exactly-once-observable semantics over a lossy datagram
    transport.

    Two hardening features guard the tail when the server misbehaves:

    - {e Decorrelated jitter}: with an [rng], attempt [n]'s timeout is
      drawn uniformly from [[timeout_us, min cap_us (prev *. backoff)]]
      instead of the deterministic [timeout_us *. backoff^(n-1)].  Synced
      clients thundering-herd their retransmissions into the same epoch
      is exactly the overload amplifier admission control sheds against;
      jitter decorrelates them.  The stream is seeded ({!Dsim.Rng}), so a
      fixed seed reproduces the exact schedule — no global [Random]
      state.
    - {e Retry budget}: a token bucket shared by every call on a
      connection.  Each call earns a fraction of a token; each
      retransmission (not the first send) spends one.  When the bucket is
      empty the call fails fast with [`Budget_exhausted] instead of
      piling timed-out retransmissions onto a server that is already
      shedding load. *)

type config = {
  max_attempts : int;   (** total transmissions, >= 1 *)
  timeout_us : float;   (** wait after the first transmission *)
  backoff : float;      (** timeout multiplier per retry, >= 1.0 *)
  cap_us : float;       (** upper bound on any single attempt's timeout;
                            [infinity] disables the cap *)
}

val default_config : config
(** 5 attempts, 1000 µs initial timeout, 2x backoff, no cap. *)

(** Token-bucket retry budget, shared across the calls of one
    connection. *)
module Budget : sig
  type t

  val create : ?capacity:float -> ?earn_per_call:float -> unit -> t
  (** Bucket starting full at [capacity] (default 10.0) tokens; every
      {!Retry.call} that uses the budget earns [earn_per_call] (default
      0.1) tokens, and every retransmission spends 1.0.  The defaults
      allow a sustained retry rate of one per ten calls — enough for
      sporadic loss, fail-fast under systemic loss. *)

  val tokens : t -> float

  val try_spend : t -> bool
  (** Take one token; [false] (and no change) when fewer than one
      remains. *)

  val earn : t -> unit
end

val call :
  ?config:config ->
  ?rng:Dsim.Rng.t ->
  ?budget:Budget.t ->
  send:(attempt:int -> unit) ->
  wait_reply:(timeout_us:float -> 'reply option) ->
  unit ->
  ('reply, [ `Timed_out of int | `Budget_exhausted of int ]) result
(** [call ~send ~wait_reply ()] transmits, waits, and retransmits until a
    reply arrives or the attempt budget is exhausted.  [`Timed_out n]
    reports the number of transmissions made; [`Budget_exhausted n] that
    the shared {!Budget} blocked the [n+1]th transmission.

    With [rng], timeouts jitter decorrelated: attempt 1 waits exactly
    [timeout_us]; attempt [n+1] waits
    [timeout_us +. u *. (min cap_us (t_n *. backoff) -. timeout_us)]
    for [u] uniform in [\[0,1)].  Every attempt's timeout therefore stays
    within [[timeout_us, min cap_us (timeout_us *. backoff^(n-1))]] — the
    same bounds {!total_budget_us} sums. *)

val total_budget_us : config -> float
(** Worst-case time the call can take: the sum of all attempt timeouts at
    their upper bounds (with or without jitter).  A server {!Dedup} cache
    must retain replies at least this long. *)

val min_budget_us : config -> float
(** Best-case (fully jittered) total wait:
    [max_attempts *. timeout_us]. *)
