(** Client-side retransmission with exponential backoff (§4.1:
    "Retransmission is handled by the client").

    The driver is transport-agnostic: the caller supplies [send] (emit the
    request, possibly again) and [wait_reply] (block up to a deadline for
    a matching reply).  Paired with a server-side {!Dedup} cache this
    yields exactly-once-observable semantics over a lossy datagram
    transport. *)

type config = {
  max_attempts : int;   (** total transmissions, >= 1 *)
  timeout_us : float;   (** wait after the first transmission *)
  backoff : float;      (** timeout multiplier per retry, >= 1.0 *)
}

val default_config : config
(** 5 attempts, 1000 µs initial timeout, 2x backoff. *)

val call :
  ?config:config ->
  send:(attempt:int -> unit) ->
  wait_reply:(timeout_us:float -> 'reply option) ->
  unit ->
  ('reply, [ `Timed_out of int ]) result
(** [call ~send ~wait_reply ()] transmits, waits, and retransmits until a
    reply arrives or the attempt budget is exhausted.  [`Timed_out n]
    reports the number of transmissions made. *)

val total_budget_us : config -> float
(** Worst-case time the call can take: the sum of all attempt timeouts.
    A server {!Dedup} cache must retain replies at least this long. *)
