(** Minos wire protocol: binary request/reply codecs.

    Clients and the server exchange UDP datagrams (§4.1).  A request names
    the operation, carries the client's send timestamp (echoed in the reply
    and used for end-to-end latency measurement, §5.4), the RX queue the
    client aimed the packet at, and a request id for client-side
    retransmission of idempotent operations.

    The encoding is little-endian with fixed-width fields — no varints, so
    sizes are predictable for the framing arithmetic. *)

type op =
  | Get
  | Put
  | Delete
  | Scan
      (** ordered range read: [key] is the start key; the value payload
          carries the requested entry count ({!encode_scan_count}) *)

type request = {
  id : int64;          (** client-chosen id, echoed in the reply *)
  op : op;
  key : string;
  value : bytes option;(** present for [Put] and [Scan] *)
  client_ts : int64;   (** client send timestamp (ns or µs; opaque) *)
  target_rx : int;     (** RX queue id the client aimed at, 0..65535 *)
}

type status =
  | Ok
  | Not_found
  | Overloaded
      (** admission control shed the request; the client should back off
          and retry (the request was {e not} executed) *)

type reply = {
  id : int64;
  status : status;
  value : bytes option;(** present for a successful [Get] *)
  client_ts : int64;   (** echoed request timestamp *)
}

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
      (** the header carried this (unsupported) protocol version *)
  | Bad_op
  | Bad_status

val pp_error : Format.formatter -> error -> unit

val version : int
(** Protocol version this build speaks, carried in byte 1 of every
    message (right after the magic).  Decoders reject any other value
    with {!Bad_version} — additions to the format must bump it. *)

val request_size : request -> int
(** Exact encoded size in bytes, without encoding. *)

val reply_size : reply -> int

val encode_request : request -> bytes

val decode_request : bytes -> (request, error) result

val encode_reply : reply -> bytes

val decode_reply : bytes -> (reply, error) result

val get_reply_size : value_len:int -> int
(** Encoded size of a successful GET reply carrying a value of this length;
    used by the simulator without materializing values. *)

val put_request_size : key_len:int -> value_len:int -> int
(** Encoded size of a PUT request; used by the simulator. *)

val get_request_size : key_len:int -> int

val put_reply_size : int
(** PUT replies carry no value payload — the reason 50:50 workloads push
    more ops through the same NIC (§6.2). *)

val scan_request_size : key_len:int -> int
(** Encoded size of a SCAN request: header + start key + the 4-byte entry
    count carried as its value payload. *)

val encode_scan_count : int -> bytes
(** The 4-byte SCAN value payload.  Raises [Invalid_argument] outside
    [0, 0xFFFFFF]. *)

val decode_scan_count : bytes -> int option
(** Inverse of {!encode_scan_count}; [None] on wrong length or an
    out-of-range count. *)
