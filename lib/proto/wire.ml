type op = Get | Put | Delete | Scan

type request = {
  id : int64;
  op : op;
  key : string;
  value : bytes option;
  client_ts : int64;
  target_rx : int;
}

type status = Ok | Not_found | Overloaded

type reply = { id : int64; status : status; value : bytes option; client_ts : int64 }

type error = Truncated | Bad_magic | Bad_version of int | Bad_op | Bad_status

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated message"
  | Bad_magic -> Format.pp_print_string fmt "bad magic byte"
  | Bad_version v -> Format.fprintf fmt "unsupported protocol version %d" v
  | Bad_op -> Format.pp_print_string fmt "unknown opcode"
  | Bad_status -> Format.pp_print_string fmt "unknown status"

let request_magic = 0xA5
let reply_magic = 0x5A

(* v2 added the SCAN opcode (3).  Decoders reject any other version, so a
   v1 peer fails fast with [Bad_version 2] instead of misparsing. *)
let version = 2

(* Request layout:
   magic(1) version(1) op(1) id(8) client_ts(8) target_rx(2) key_len(2)
   value_len(4) key value.  value_len = 0xFFFFFFFF encodes "no value". *)
let request_header = 1 + 1 + 1 + 8 + 8 + 2 + 2 + 4

(* Reply layout:
   magic(1) version(1) status(1) id(8) client_ts(8) value_len(4) value. *)
let reply_header = 1 + 1 + 1 + 8 + 8 + 4

let no_value = 0xFFFFFFFF

let op_code = function Get -> 0 | Put -> 1 | Delete -> 2 | Scan -> 3

let op_of_code = function
  | 0 -> Some Get
  | 1 -> Some Put
  | 2 -> Some Delete
  | 3 -> Some Scan
  | _ -> None

let status_code = function Ok -> 0 | Not_found -> 1 | Overloaded -> 2

let status_of_code = function
  | 0 -> Some Ok
  | 1 -> Some Not_found
  | 2 -> Some Overloaded
  | _ -> None

let value_len = function None -> 0 | Some v -> Bytes.length v

let request_size r = request_header + String.length r.key + value_len r.value

let reply_size r = reply_header + value_len r.value

let get_request_size ~key_len = request_header + key_len

let put_request_size ~key_len ~value_len = request_header + key_len + value_len

(* A SCAN names its start key and carries the requested entry count as a
   4-byte value payload — the request record itself is unchanged. *)
let scan_request_size ~key_len = request_header + key_len + 4

let encode_scan_count count =
  if count < 0 || count > 0xFFFFFF then invalid_arg "Wire.encode_scan_count";
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int count);
  b

let decode_scan_count b =
  if Bytes.length b <> 4 then None
  else
    let v = Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF in
    if v > 0xFFFFFF then None else Some v

let get_reply_size ~value_len = reply_header + value_len

let put_reply_size = reply_header

(* [check_version b] assumes the magic at offset 0 already matched. *)
let check_version b =
  let v = Bytes.get_uint8 b 1 in
  if v = version then None else Some (Bad_version v)

let encode_request r =
  if String.length r.key > 0xFFFF then invalid_arg "Wire.encode_request: key too long";
  if r.target_rx < 0 || r.target_rx > 0xFFFF then
    invalid_arg "Wire.encode_request: target_rx out of range";
  let klen = String.length r.key in
  let vlen = value_len r.value in
  let b = Bytes.create (request_header + klen + vlen) in
  Bytes.set_uint8 b 0 request_magic;
  Bytes.set_uint8 b 1 version;
  Bytes.set_uint8 b 2 (op_code r.op);
  Bytes.set_int64_le b 3 r.id;
  Bytes.set_int64_le b 11 r.client_ts;
  Bytes.set_uint16_le b 19 r.target_rx;
  Bytes.set_uint16_le b 21 klen;
  Bytes.set_int32_le b 23
    (match r.value with None -> Int32.of_int no_value | Some _ -> Int32.of_int vlen);
  Bytes.blit_string r.key 0 b request_header klen;
  (match r.value with
  | Some v -> Bytes.blit v 0 b (request_header + klen) vlen
  | None -> ());
  b

let decode_request b =
  let len = Bytes.length b in
  if len < request_header then Error Truncated
  else if Bytes.get_uint8 b 0 <> request_magic then Error Bad_magic
  else
    match check_version b with
    | Some e -> Error e
    | None -> (
        match op_of_code (Bytes.get_uint8 b 2) with
        | None -> Error Bad_op
        | Some op ->
            let id = Bytes.get_int64_le b 3 in
            let client_ts = Bytes.get_int64_le b 11 in
            let target_rx = Bytes.get_uint16_le b 19 in
            let klen = Bytes.get_uint16_le b 21 in
            let vfield = Int32.to_int (Bytes.get_int32_le b 23) land 0xFFFFFFFF in
            let vlen = if vfield = no_value then 0 else vfield in
            if len < request_header + klen + vlen then Error Truncated
            else begin
              let key = Bytes.sub_string b request_header klen in
              let value =
                if vfield = no_value then None
                else Some (Bytes.sub b (request_header + klen) vlen)
              in
              Stdlib.Ok { id; op; key; value; client_ts; target_rx }
            end)

let encode_reply r =
  let vlen = value_len r.value in
  let b = Bytes.create (reply_header + vlen) in
  Bytes.set_uint8 b 0 reply_magic;
  Bytes.set_uint8 b 1 version;
  Bytes.set_uint8 b 2 (status_code r.status);
  Bytes.set_int64_le b 3 r.id;
  Bytes.set_int64_le b 11 r.client_ts;
  Bytes.set_int32_le b 19
    (match r.value with None -> Int32.of_int no_value | Some _ -> Int32.of_int vlen);
  (match r.value with Some v -> Bytes.blit v 0 b reply_header vlen | None -> ());
  b

let decode_reply b =
  let len = Bytes.length b in
  if len < reply_header then Error Truncated
  else if Bytes.get_uint8 b 0 <> reply_magic then Error Bad_magic
  else
    match check_version b with
    | Some e -> Error e
    | None -> (
        match status_of_code (Bytes.get_uint8 b 2) with
        | None -> Error Bad_status
        | Some status ->
            let id = Bytes.get_int64_le b 3 in
            let client_ts = Bytes.get_int64_le b 11 in
            let vfield = Int32.to_int (Bytes.get_int32_le b 19) land 0xFFFFFFFF in
            let vlen = if vfield = no_value then 0 else vfield in
            if len < reply_header + vlen then Error Truncated
            else begin
              let value =
                if vfield = no_value then None else Some (Bytes.sub b reply_header vlen)
              in
              Stdlib.Ok { id; status; value; client_ts }
            end)
