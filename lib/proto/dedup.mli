(** At-most-once execution of retransmitted requests.

    §4.1: "Retransmission is handled by the client.  [Minos] does not
    support exactly-once semantics and assumes idempotent operations.
    Guaranteeing exactly-once semantics can be achieved by means of
    request identifiers."  This module is that mechanism: a bounded reply
    cache keyed by request id.  When a retransmitted request arrives, the
    cached reply is returned instead of re-executing the operation.

    Eviction is FIFO over a fixed capacity: the cache need only hold
    replies for as long as a client may retransmit, which is bounded by
    the client's retry budget ({!Retry}). *)

type 'reply t

val create : ?capacity:int -> unit -> 'reply t
(** [capacity] bounds the number of cached replies (default 65536). *)

val execute : 'reply t -> id:int64 -> (unit -> 'reply) -> 'reply * [ `Fresh | `Replayed ]
(** [execute t ~id f] runs [f] and caches its reply if [id] is new;
    otherwise returns the cached reply without running [f]. *)

val find : 'reply t -> int64 -> 'reply option

val mem : 'reply t -> int64 -> bool

val size : 'reply t -> int

val capacity : 'reply t -> int
