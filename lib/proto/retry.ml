type config = {
  max_attempts : int;
  timeout_us : float;
  backoff : float;
  cap_us : float;
}

let default_config =
  { max_attempts = 5; timeout_us = 1000.0; backoff = 2.0; cap_us = infinity }

let validate c =
  if c.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if not (c.timeout_us > 0.0) then invalid_arg "Retry: timeout must be > 0";
  if c.backoff < 1.0 then invalid_arg "Retry: backoff must be >= 1.0";
  if not (c.cap_us >= c.timeout_us) then
    invalid_arg "Retry: cap_us must be >= timeout_us"

module Budget = struct
  type t = { capacity : float; earn_per_call : float; mutable tokens : float }

  let create ?(capacity = 10.0) ?(earn_per_call = 0.1) () =
    if not (capacity >= 1.0) then invalid_arg "Retry.Budget: capacity must be >= 1";
    if not (earn_per_call >= 0.0) then
      invalid_arg "Retry.Budget: earn_per_call must be >= 0";
    { capacity; earn_per_call; tokens = capacity }

  let tokens t = t.tokens

  let try_spend t =
    if t.tokens >= 1.0 then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else false

  let earn t = t.tokens <- Float.min t.capacity (t.tokens +. t.earn_per_call)
end

(* Next attempt's timeout.  Deterministic: previous * backoff, capped.
   Jittered (decorrelated): uniform in [base, min cap (previous * backoff)]
   — never below the base timeout, never above the deterministic
   schedule. *)
let next_timeout c rng prev =
  let ceiling = Float.min c.cap_us (prev *. c.backoff) in
  match rng with
  | None -> ceiling
  | Some rng ->
      let u = Dsim.Rng.unit_float rng in
      c.timeout_us +. (u *. (ceiling -. c.timeout_us))

let call ?(config = default_config) ?rng ?budget ~send ~wait_reply () =
  validate config;
  (match budget with Some b -> Budget.earn b | None -> ());
  let rec attempt n timeout =
    send ~attempt:n;
    match wait_reply ~timeout_us:timeout with
    | Some reply -> Ok reply
    | None ->
        if n >= config.max_attempts then Error (`Timed_out n)
        else if
          match budget with Some b -> not (Budget.try_spend b) | None -> false
        then Error (`Budget_exhausted n)
        else attempt (n + 1) (next_timeout config rng timeout)
  in
  attempt 1 (Float.min config.timeout_us config.cap_us)

let total_budget_us c =
  validate c;
  let rec go n timeout acc =
    if n > c.max_attempts then acc
    else go (n + 1) (Float.min c.cap_us (timeout *. c.backoff)) (acc +. timeout)
  in
  go 1 (Float.min c.timeout_us c.cap_us) 0.0

let min_budget_us c =
  validate c;
  float_of_int c.max_attempts *. c.timeout_us
