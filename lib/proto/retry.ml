type config = { max_attempts : int; timeout_us : float; backoff : float }

let default_config = { max_attempts = 5; timeout_us = 1000.0; backoff = 2.0 }

let validate c =
  if c.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if not (c.timeout_us > 0.0) then invalid_arg "Retry: timeout must be > 0";
  if c.backoff < 1.0 then invalid_arg "Retry: backoff must be >= 1.0"

let call ?(config = default_config) ~send ~wait_reply () =
  validate config;
  let rec attempt n timeout =
    send ~attempt:n;
    match wait_reply ~timeout_us:timeout with
    | Some reply -> Ok reply
    | None ->
        if n >= config.max_attempts then Error (`Timed_out n)
        else attempt (n + 1) (timeout *. config.backoff)
  in
  attempt 1 config.timeout_us

let total_budget_us c =
  validate c;
  let rec go n timeout acc =
    if n > c.max_attempts then acc else go (n + 1) (timeout *. c.backoff) (acc +. timeout)
  in
  go 1 c.timeout_us 0.0
