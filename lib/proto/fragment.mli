(** UDP-level fragmentation and reassembly.

    "Requests that span multiple frames (large PUT requests and large GET
    replies) are fragmented and defragmented at the UDP level" (§4.1).
    Each fragment carries a small header naming the message, its index and
    the fragment count, so the receiver can reassemble messages that
    interleave on the same queue and discard incomplete ones. *)

val header_size : int
(** Bytes of fragment header per frame: magic(1) msg_id(8) index(2)
    count(2) payload_len(2) = 15. *)

val max_fragment_payload : int
(** Message bytes that fit in one fragment:
    [Netsim.Frame.max_udp_payload - header_size]. *)

val fragments_for : int -> int
(** Number of fragments needed for an encoded message of this size. *)

val split : msg_id:int64 -> bytes -> bytes list
(** Split an encoded message into ready-to-send datagrams (each at most
    {!Netsim.Frame.max_udp_payload} bytes, including the fragment
    header). *)

type reassembler

val create_reassembler : unit -> reassembler

val offer : reassembler -> bytes -> (int64 * bytes) option
(** Feed one received datagram.  Returns [Some (msg_id, message)] when this
    datagram completes a message.  Malformed or duplicate fragments are
    ignored ([None]).  Fragments of different messages may interleave. *)

val pending : reassembler -> int
(** Number of partially reassembled messages currently buffered. *)

val drop_incomplete : reassembler -> unit
(** Discard all partial messages (e.g. on epoch change or timeout). *)
