let fragment_magic = 0xF7

let header_size = 1 + 8 + 2 + 2 + 2

let max_fragment_payload = Netsim.Frame.max_udp_payload - header_size

let fragments_for size =
  if size < 0 then invalid_arg "Fragment.fragments_for: negative size";
  if size = 0 then 1 else (size + max_fragment_payload - 1) / max_fragment_payload

let split ~msg_id msg =
  let total = Bytes.length msg in
  let count = fragments_for total in
  if count > 0xFFFF then invalid_arg "Fragment.split: message too large";
  List.init count (fun i ->
      let off = i * max_fragment_payload in
      let len = min max_fragment_payload (total - off) in
      let b = Bytes.create (header_size + len) in
      Bytes.set_uint8 b 0 fragment_magic;
      Bytes.set_int64_le b 1 msg_id;
      Bytes.set_uint16_le b 9 i;
      Bytes.set_uint16_le b 11 count;
      Bytes.set_uint16_le b 13 len;
      Bytes.blit msg off b header_size len;
      b)

type partial = {
  count : int;
  parts : bytes option array;
  mutable received : int;
}

type reassembler = (int64, partial) Hashtbl.t

let create_reassembler () = Hashtbl.create 16

let offer t datagram =
  let len = Bytes.length datagram in
  if len < header_size then None
  else if Bytes.get_uint8 datagram 0 <> fragment_magic then None
  else begin
    let msg_id = Bytes.get_int64_le datagram 1 in
    let index = Bytes.get_uint16_le datagram 9 in
    let count = Bytes.get_uint16_le datagram 11 in
    let plen = Bytes.get_uint16_le datagram 13 in
    if count = 0 || index >= count || len < header_size + plen then None
    else begin
      let partial =
        match Hashtbl.find_opt t msg_id with
        | Some p when p.count = count -> Some p
        | Some _ -> None (* conflicting fragment count: drop *)
        | None ->
            let p = { count; parts = Array.make count None; received = 0 } in
            Hashtbl.add t msg_id p;
            Some p
      in
      match partial with
      | None -> None
      | Some p ->
          (match p.parts.(index) with
          | Some _ -> () (* duplicate fragment *)
          | None ->
              p.parts.(index) <- Some (Bytes.sub datagram header_size plen);
              p.received <- p.received + 1);
          if p.received = p.count then begin
            Hashtbl.remove t msg_id;
            let total =
              Array.fold_left
                (fun acc part ->
                  match part with Some b -> acc + Bytes.length b | None -> acc)
                0 p.parts
            in
            let msg = Bytes.create total in
            let off = ref 0 in
            Array.iter
              (function
                | Some b ->
                    Bytes.blit b 0 msg !off (Bytes.length b);
                    off := !off + Bytes.length b
                | None -> assert false)
              p.parts;
            Some (msg_id, msg)
          end
          else None
    end
  end

let pending t = Hashtbl.length t

let drop_incomplete t = Hashtbl.reset t
