(** Per-request flight recorder.

    A bounded trace ring of {!Span} records backed by preallocated flat
    arrays.  The record path — {!try_sample} / {!try_sample_id} followed
    by {!set_ts} / {!set_meta} stores — performs no allocation: floats go
    into an unboxed [float array], metadata into an [int array], and slot
    acquisition is an atomic counter bump.  When the ring is full,
    further samples are counted in {!dropped} and recording stops (spans
    never alias, so a trace is a prefix of the run, flight-recorder
    style).

    {b Determinism.}  {!try_sample}'s decisions come from a dedicated
    {!Dsim.Rng} stream derived from [seed]: the simulator calls it once
    per offered request in arrival order, so two runs with the same seed
    sample the same request set and produce bit-identical traces — also
    under {!Par} parallelism, where each engine owns its recorder.
    {!try_sample_id} instead hashes the caller-supplied request id (the
    multicore runtime has no ordered request stream to share an RNG
    over); it is deterministic per id.

    {b Concurrency.}  Slot acquisition is thread-safe; each slot is then
    owned by the single request it was assigned to.  Readers
    ({!get_ts}/{!get_meta} and the exporters) must run after the
    producers quiesce. *)

type t

val create :
  ?server:int -> ?capacity:int -> ?sample_rate:float -> seed:int -> unit -> t
(** [capacity] (default 65536) bounds the number of recorded spans;
    memory is [capacity * (n_ts + n_meta)] words, allocated up front.
    [sample_rate] in (0, 1] (default 1.0) is the fraction of requests
    recorded.  [server] (default 0) tags every span with the id of the
    server instance that produced it — cluster runs give each shard its
    own recorder, and exporters use the tag as the trace process id. *)

val server : t -> int
(** The server id the recorder was created with. *)

val capacity : t -> int
val sample_rate : t -> float

val recorded : t -> int
(** Number of spans recorded so far (at most [capacity]). *)

val dropped : t -> int
(** Samples lost because the ring was full. *)

val try_sample : t -> int
(** Sampling decision plus slot acquisition: the slot index to record
    into, or [-1] (not sampled, or ring full).  Allocation-free.
    Consumes one RNG draw per call even when the ring is full, so the
    sample decision stream is a pure function of the seed and call
    count. *)

val try_sample_id : t -> id:int -> int
(** Like {!try_sample} but decides by a hash of [id] instead of the RNG
    stream; safe to call concurrently from several domains. *)

val set_ts : t -> int -> int -> float -> unit
(** [set_ts t slot field time_us] with [field] a [Span.ts_*] index. *)

val get_ts : t -> int -> int -> float

val set_meta : t -> int -> int -> int -> unit
(** [set_meta t slot field v] with [field] a [Span.meta_*] index. *)

val get_meta : t -> int -> int -> int

val complete : t -> int -> bool
(** A span is complete once [Span.ts_end] has been recorded. *)

val reset : t -> unit
(** Forget all recorded spans (slots are re-zeroed on acquisition). *)
