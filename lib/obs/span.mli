(** Field layout of one flight-recorder span.

    A span is one sampled request's timeline, stored as [n_ts] cells of a
    flat [float array] (timestamps, µs; unset cells are [nan]) plus
    [n_meta] cells of a flat [int array] (identity and classification).
    The indices below are the schema; {!Recorder} owns the storage.

    Timestamp order on the happy path is
    [rx_enq <= poll <= classify <= handoff_enq <= handoff_deq <=
     service_start <= service_end <= tx_done <= end]; any of the middle
    stages may be unset (e.g. no handoff for a small request, no classify
    for size-unaware designs).  [ts_end] doubles as the completeness flag:
    a span is complete iff it is set. *)

val ts_rx_enq : int
(** Request enqueued on an RX queue (its arrival time). *)

val ts_poll : int
(** Request dequeued from the RX queue by a core. *)

val ts_classify : int
(** Size classification (size-aware designs only). *)

val ts_handoff_enq : int
(** Pushed onto a software handoff queue (Minos/SHO; HKH+WS uses it for
    the local software queue). *)

val ts_handoff_deq : int
(** Popped from the software handoff queue by the serving core. *)

val ts_service_start : int
val ts_service_end : int

val ts_tx_done : int
(** Last frame of the reply left the wire. *)

val ts_end : int
(** End-to-end completion ([ts_tx_done] plus the constant pipeline
    latency).  Set iff the span is complete. *)

val n_ts : int

val ts_name : int -> string
(** Stable label for a timestamp index; raises on out-of-range. *)

val meta_seq : int
(** Request issue index / id. *)

val meta_rx_queue : int

val meta_core : int
(** Serving core. *)

val meta_tx_queue : int

val meta_class : int
(** {!class_small} or {!class_large}. *)

val meta_op : int
(** {!op_get}, {!op_put} or {!op_scan}. *)

val meta_size : int
(** Item size in bytes. *)

val n_meta : int

val class_small : int
val class_large : int
val op_get : int
val op_put : int
val op_scan : int

val n_components : int
(** Number of latency-anatomy components (see {!Anatomy}). *)

val component_name : int -> string
(** [rx_wait], [dispatch], [service], [tx], [pipeline]. *)
